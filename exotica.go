// Package exotica is the top-level facade of the reproduction of
// "Advanced Transaction Models in Workflow Contexts" (Alonso, Agrawal,
// El Abbadi, Kamath, Günthör, Mohan — ICDE 1996): a FlowMark-class
// workflow management system in Go, plus the Exotica/FMTM pre-processor
// that compiles advanced transaction models (linear Sagas and Flexible
// Transactions) into workflow processes.
//
// The building blocks live in internal packages:
//
//   - internal/engine — the navigation engine (§3.2 semantics: activity
//     states, AND/OR joins, transition and exit conditions, dead path
//     elimination, blocks, data containers, worklists, WAL + forward
//     recovery);
//   - internal/model, internal/expr, internal/fdl — the process meta-model,
//     the condition language and the definition language;
//   - internal/org — the §3.3 organization model (roles, worklists,
//     notifications);
//   - internal/atm/saga, internal/atm/flexible — the two transaction
//     models, each with a native executor used as the baseline;
//   - internal/fmtm — the Figure 5 pipeline and the Figure 2 / Figure 4
//     translations;
//   - internal/txdb, internal/rm — the multidatabase substrate (strict 2PL
//     stores) and failure-injectable resource managers;
//   - internal/sim — workload generators and the E1–E5 / B1–B7 evaluation
//     harness.
//
// This package exposes the single most common flow — compile a
// specification and execute one of the generated processes with scripted
// subtransaction outcomes — so the quickest possible use of the system is
// a handful of lines; anything richer should use the internal packages
// directly (see examples/).
package exotica

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fmtm"
	"repro/internal/rm"
	"repro/internal/sim"
)

// CompileResult is the outcome of compiling an FMTM specification: the
// emitted FDL text and an engine factory for executing the generated
// process templates.
type CompileResult struct {
	res *fmtm.PipelineResult
}

// FDL returns the generated definition-language text.
func (c *CompileResult) FDL() string { return c.res.FDL }

// Processes returns the names of the generated process templates.
func (c *CompileResult) Processes() []string {
	out := make([]string, 0, len(c.res.File.Processes))
	for _, p := range c.res.File.Processes {
		out = append(out, p.Name)
	}
	return out
}

// Compile runs the full Exotica/FMTM pipeline (parse, model checks,
// translation, FDL export, FDL re-import, semantic checks) on a
// specification text containing SAGA and FLEXIBLE definitions.
func Compile(spec string) (*CompileResult, error) {
	res, err := fmtm.Pipeline(spec)
	if err != nil {
		return nil, err
	}
	return &CompileResult{res: res}, nil
}

// Run executes one generated process with pure (storage-free)
// subtransactions whose outcomes are scripted by the decider (nil commits
// everything). It returns the observable transactional history.
func (c *CompileResult) Run(process string, dec rm.Decider) ([]rm.Event, error) {
	e := engine.New()
	if err := fmtm.RegisterRuntime(e); err != nil {
		return nil, err
	}
	rec := &rm.Recorder{}
	for _, s := range c.res.Specs.Sagas {
		if err := fmtm.RegisterSaga(e, s, fmtm.PureSagaBinding(s), dec, rec); err != nil {
			return nil, err
		}
	}
	for _, g := range c.res.Specs.General {
		if err := fmtm.RegisterGeneralSaga(e, g, fmtm.PureGeneralBinding(g), dec, rec); err != nil {
			return nil, err
		}
	}
	for _, f := range c.res.Specs.Flexible {
		if err := fmtm.RegisterFlexible(e, f, fmtm.PureFlexibleBinding(f), dec, rec); err != nil {
			return nil, err
		}
	}
	if err := fmtm.Install(e, c.res.File); err != nil {
		return nil, err
	}
	inst, err := e.CreateInstance(process, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := inst.Start(); err != nil {
		return nil, err
	}
	if !inst.Finished() {
		return nil, fmt.Errorf("exotica: process %s did not run to completion", process)
	}
	return rec.Events(), nil
}

// SimulateSaga estimates the outcome distribution of a compiled saga under
// independent per-step abort probabilities (§3.3 simulation): commit rate,
// abort-position distribution, mean compensations. Deterministic per seed.
func (c *CompileResult) SimulateSaga(name string, abort map[string]float64, trials int, seed int64) (sim.SagaSimResult, error) {
	for _, s := range c.res.Specs.Sagas {
		if s.Name == name {
			return sim.SimulateSaga(s, abort, trials, seed)
		}
	}
	return sim.SagaSimResult{}, fmt.Errorf("exotica: no saga named %q in the compiled specification", name)
}

// SimulateFlexible estimates the outcome distribution of a compiled
// flexible transaction: which execution path commits how often, global
// abort rate, mean path switches. Deterministic per seed.
func (c *CompileResult) SimulateFlexible(name string, abort map[string]float64, trials int, seed int64) (sim.FlexSimResult, error) {
	for _, f := range c.res.Specs.Flexible {
		if f.Name == name {
			return sim.SimulateFlexible(f, abort, trials, seed)
		}
	}
	return sim.FlexSimResult{}, fmt.Errorf("exotica: no flexible transaction named %q in the compiled specification", name)
}
