// Benchmarks B1–B8 of EXPERIMENTS.md. Each benchmark regenerates one
// measurement table of the evaluation; cmd/wfbench prints the same series
// as aligned tables.
package exotica_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/model"
	"repro/internal/rm"
	"repro/internal/sim"
	"repro/internal/txdb"
	"repro/internal/wal"
)

// ---------------------------------------------------------------- B1 ----

func benchNavigate(b *testing.B, proc *model.Process) {
	b.Helper()
	e := sim.NewEngine()
	if err := e.RegisterProcess(proc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst, err := e.CreateInstance(proc.Name, nil, wal.Discard)
		if err == nil {
			err = inst.Start()
		}
		if err != nil || !inst.Finished() {
			b.Fatal(err)
		}
	}
}

func BenchmarkNavigationChain(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchNavigate(b, sim.Chain(fmt.Sprintf("c%d", n), n))
		})
	}
}

func BenchmarkNavigationFanOutIn(b *testing.B) {
	for _, w := range []int{10, 100} {
		b.Run(fmt.Sprintf("width=%d", w), func(b *testing.B) {
			benchNavigate(b, sim.FanOutIn(fmt.Sprintf("f%d", w), w))
		})
	}
}

func BenchmarkNavigationDPE(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchNavigate(b, sim.DPEChain(fmt.Sprintf("d%d", n), n))
		})
	}
}

// ---------------------------------------------------------------- B2 ----

func BenchmarkSagaNative(b *testing.B) {
	for _, n := range []int{5, 10, 20, 50} {
		for _, abort := range []bool{false, true} {
			b.Run(fmt.Sprintf("n=%d/abort=%v", n, abort), func(b *testing.B) {
				spec := sim.NStepSaga("s", n)
				binding := fmtm.PureSagaBinding(spec)
				dec := sagaDecider(n, abort)
				ex := &saga.Executor{Decider: dec}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ex.Execute(spec, binding, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// sagaDecider aborts T(n/2) on every attempt when abort is set, statelessly
// so it can be reused across b.N iterations.
func sagaDecider(n int, abort bool) rm.Decider {
	if !abort {
		return nil
	}
	victim := fmt.Sprintf("T%d", n/2)
	return deciderFunc(func(name string) rm.Outcome {
		if name == victim {
			return rm.Abort
		}
		return rm.Commit
	})
}

type deciderFunc func(string) rm.Outcome

func (f deciderFunc) Decide(name string) rm.Outcome { return f(name) }

func BenchmarkSagaWorkflow(b *testing.B) {
	for _, n := range []int{5, 10, 20, 50} {
		for _, abort := range []bool{false, true} {
			b.Run(fmt.Sprintf("n=%d/abort=%v", n, abort), func(b *testing.B) {
				spec := sim.NStepSaga("s", n)
				e := engine.New()
				if err := fmtm.RegisterRuntime(e); err != nil {
					b.Fatal(err)
				}
				if err := fmtm.RegisterSaga(e, spec, fmtm.PureSagaBinding(spec), sagaDecider(n, abort), nil); err != nil {
					b.Fatal(err)
				}
				p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if err := e.RegisterProcess(p); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inst, err := e.CreateInstance(spec.Name, nil, wal.Discard)
					if err == nil {
						err = inst.Start()
					}
					if err != nil || !inst.Finished() {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---------------------------------------------------------------- B3 ----

// flexDecider statically forces one of the Figure 3 scenarios.
func flexDecider(abortSub string) rm.Decider {
	if abortSub == "" {
		return nil
	}
	return deciderFunc(func(name string) rm.Outcome {
		if name == abortSub {
			return rm.Abort
		}
		return rm.Commit
	})
}

func BenchmarkFlexibleNative(b *testing.B) {
	for _, sc := range []struct{ name, abort string }{
		{"p1", ""}, {"p2_via_T8", "T8"}, {"p3_via_T4", "T4"}, {"abort_via_T2", "T2"},
	} {
		b.Run(sc.name, func(b *testing.B) {
			spec := sim.Fig3Flexible()
			binding := fmtm.PureFlexibleBinding(spec)
			ex := &flexible.Executor{Decider: flexDecider(sc.abort)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Execute(spec, binding, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFlexibleWorkflow(b *testing.B) {
	for _, sc := range []struct{ name, abort string }{
		{"p1", ""}, {"p2_via_T8", "T8"}, {"p3_via_T4", "T4"}, {"abort_via_T2", "T2"},
	} {
		b.Run(sc.name, func(b *testing.B) {
			spec := sim.Fig3Flexible()
			e := engine.New()
			if err := fmtm.RegisterRuntime(e); err != nil {
				b.Fatal(err)
			}
			if err := fmtm.RegisterFlexible(e, spec, fmtm.PureFlexibleBinding(spec), flexDecider(sc.abort), nil); err != nil {
				b.Fatal(err)
			}
			p, err := fmtm.TranslateFlexible(spec)
			if err != nil {
				b.Fatal(err)
			}
			if err := e.RegisterProcess(p); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := e.CreateInstance(spec.Name, nil, wal.Discard)
				if err == nil {
					err = inst.Start()
				}
				if err != nil || !inst.Finished() {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- B4 ----

func BenchmarkTranslateSaga(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			spec := sim.NStepSaga("s", n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTranslateFlexible(b *testing.B) {
	for _, pivots := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("pivots=%d", pivots), func(b *testing.B) {
			spec := sim.RandomFlexible("f", rand.New(rand.NewSource(1)), pivots)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fmtm.TranslateFlexible(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFDLExport(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p, err := fmtm.TranslateSaga(sim.NStepSaga("s", n), fmtm.SagaOptions{})
			if err != nil {
				b.Fatal(err)
			}
			file := &fdl.File{Types: p.Types, Processes: []*model.Process{p}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = fdl.Export(file)
			}
		})
	}
}

func BenchmarkFDLParse(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p, err := fmtm.TranslateSaga(sim.NStepSaga("s", n), fmtm.SagaOptions{})
			if err != nil {
				b.Fatal(err)
			}
			text := fdl.Export(&fdl.File{Types: p.Types, Processes: []*model.Process{p}})
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fdl.Parse(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- B5 ----

func BenchmarkRecoveryReplay(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e := sim.NewEngine()
			proc := sim.Chain(fmt.Sprintf("c%d", n), n)
			if err := e.RegisterProcess(proc); err != nil {
				b.Fatal(err)
			}
			log := &wal.MemLog{}
			inst, err := e.CreateInstance(proc.Name, nil, log)
			if err == nil {
				err = inst.Start()
			}
			if err != nil {
				b.Fatal(err)
			}
			records := log.Records()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := engine.Recover(e, records, wal.Discard)
				if err != nil || !rec.Finished() {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWALMarshal(b *testing.B) {
	rec := wal.Record{
		Type: wal.RecFinishedActivity, Instance: "inst-1", Path: "Forward#0/T7", Iter: 3,
		Values: sim.Chain("x", 1).Types.MustContainer(model.DefaultType).Snapshot(),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wal.Marshal(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------- B6 ----

func BenchmarkTxDBCommit(b *testing.B) {
	s := txdb.Open("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := s.Do(func(tx *txdb.Tx) error {
			return tx.Put(fmt.Sprintf("k%d", i%1024), "v")
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTxDBContention(b *testing.B) {
	for _, keys := range []int{4, 1024} {
		b.Run(fmt.Sprintf("keys=%d", keys), func(b *testing.B) {
			s := txdb.Open("bench")
			var seq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				r := rand.New(rand.NewSource(seq.Add(1)))
				for pb.Next() {
					k1 := fmt.Sprintf("k%d", r.Intn(keys))
					k2 := fmt.Sprintf("k%d", r.Intn(keys))
					_ = s.DoRetry(50, func(tx *txdb.Tx) error {
						if _, _, err := tx.Get(k1); err != nil {
							return err
						}
						return tx.Put(k2, "v")
					})
				}
			})
		})
	}
}

// ---------------------------------------------------------------- B7 ----

func BenchmarkAblationWAL(b *testing.B) {
	const n = 200
	e := sim.NewEngine()
	proc := sim.Chain("live", n)
	if err := e.RegisterProcess(proc); err != nil {
		b.Fatal(err)
	}
	b.Run("wal=off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, _ := e.CreateInstance("live", nil, wal.Discard)
			if err := inst.Start(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wal=mem", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, _ := e.CreateInstance("live", nil, &wal.MemLog{})
			if err := inst.Start(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAblationDeadPath(b *testing.B) {
	const n = 200
	e := sim.NewEngine()
	if err := e.RegisterProcess(sim.Chain("live", n)); err != nil {
		b.Fatal(err)
	}
	if err := e.RegisterProcess(sim.DPEChain("dead", n)); err != nil {
		b.Fatal(err)
	}
	// Executed activities vs. dead-path-eliminated activities: the latter
	// skip program invocation, container construction and logging.
	for _, name := range []string{"live", "dead"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst, _ := e.CreateInstance(name, nil, wal.Discard)
				if err := inst.Start(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------- B8 ----

func BenchmarkConcurrentScheduler(b *testing.B) {
	const width = 8
	const latency = 500 * time.Microsecond
	for _, pool := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			e := engine.New(engine.WithConcurrency(pool))
			if err := e.RegisterProgram("ok", sim.OKProgram); err != nil {
				b.Fatal(err)
			}
			if err := e.RegisterProgram("slow", engine.ProgramFunc(func(inv *engine.Invocation) error {
				time.Sleep(latency)
				inv.Out.SetRC(0)
				return nil
			})); err != nil {
				b.Fatal(err)
			}
			proc := sim.FanOutIn("fan", width)
			for _, a := range proc.Activities {
				if a.Name != "A" && a.Name != "Z" {
					a.Program = "slow"
				}
			}
			if err := e.RegisterProcess(proc); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inst, err := e.CreateInstance("fan", nil, wal.Discard)
				if err == nil {
					err = inst.Start()
				}
				if err != nil || !inst.Finished() {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWALCompact(b *testing.B) {
	e := sim.NewEngine()
	proc := sim.Chain("c1000", 1000)
	if err := e.RegisterProcess(proc); err != nil {
		b.Fatal(err)
	}
	log := &wal.MemLog{}
	inst, err := e.CreateInstance("c1000", nil, log)
	if err == nil {
		err = inst.Start()
	}
	if err != nil {
		b.Fatal(err)
	}
	records := log.Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := wal.Compact(records); len(got) >= len(records) {
			b.Fatal("compaction removed nothing")
		}
	}
}

// ---------------------------------------------------------------- B13 ---

// benchRecord is the representative navigation-step record the B13
// encode/decode/append benchmarks measure.
func benchRecord() wal.Record {
	return wal.Record{
		Type: wal.RecFinishedActivity, Instance: "inst-000042", Path: "Book/Flight", Iter: 1,
		Values: sim.Chain("x", 1).Types.MustContainer(model.DefaultType).Snapshot(),
	}
}

func BenchmarkWALEncode(b *testing.B) {
	rec := benchRecord()
	for _, f := range []wal.Format{wal.FormatText, wal.FormatBinary} {
		b.Run(f.String(), func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = wal.EncodeRecord(buf[:0], rec, f)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWALDecode(b *testing.B) {
	rec := benchRecord()
	const n = 1000
	for _, f := range []wal.Format{wal.FormatText, wal.FormatBinary} {
		b.Run(f.String(), func(b *testing.B) {
			var data []byte
			if f == wal.FormatBinary {
				data = append(data, wal.FileHeader(f)...)
			}
			for i := 0; i < n; i++ {
				var err error
				data, err = wal.EncodeRecord(data, rec, f)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				recs, err := wal.ReadAll(bytes.NewReader(data))
				if err != nil || len(recs) != n {
					b.Fatalf("%d records, %v", len(recs), err)
				}
			}
		})
	}
}

// BenchmarkWALFileAppend is the end-to-end append hot path without
// per-record fsync (the group-commit regime). The binary/allocs figure is
// the B13 zero-alloc gate.
func BenchmarkWALFileAppend(b *testing.B) {
	rec := benchRecord()
	for _, f := range []wal.Format{wal.FormatText, wal.FormatBinary} {
		b.Run(f.String(), func(b *testing.B) {
			l, err := wal.OpenFileLog(filepath.Join(b.TempDir(), "bench.wal"), wal.WithFormat(f))
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
