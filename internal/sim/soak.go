package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/fmtm"
	"repro/internal/rm"
	"repro/internal/wal"
)

// TravelSaga is the running example of the paper's §4.1: book a flight, a
// hotel and a car, with a cancellation compensating each booking.
func TravelSaga() *saga.Spec {
	return &saga.Spec{
		Name: "travel",
		Steps: []saga.Step{
			{Name: "book_flight", Compensation: "cancel_flight"},
			{Name: "book_hotel", Compensation: "cancel_hotel"},
			{Name: "book_car", Compensation: "cancel_car"},
		},
	}
}

// travelWorkload builds an engine running the travel saga with book_car
// aborting, so every execution takes the compensation path. Shared by the
// E7 and E9 soaks.
func travelWorkload() (*engine.Engine, string) {
	return travelWorkloadOpts()
}

// travelWorkloadOpts is travelWorkload with engine options — the E13
// queryable-history soak threads a fresh metrics registry, bus and trail
// observer through here.
func travelWorkloadOpts(opts ...engine.Option) (*engine.Engine, string) {
	spec := TravelSaga()
	e := engine.New(opts...)
	if err := fmtm.RegisterRuntime(e); err != nil {
		panic(err)
	}
	inj := rm.NewInjector()
	inj.AbortAlways("book_car") // forces the compensation path
	if err := fmtm.RegisterSaga(e, spec, fmtm.PureSagaBinding(spec), inj, &rm.Recorder{}); err != nil {
		panic(err)
	}
	p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
	if err != nil {
		panic(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		panic(err)
	}
	return e, spec.Name
}

// flexibleWorkload builds an engine running the Figure 3 flexible
// transaction with T6 aborting (C5 compensates, alternate path via T7).
// Shared by the E7 and E9 soaks.
func flexibleWorkload() (*engine.Engine, string) {
	return flexibleWorkloadOpts()
}

// flexibleWorkloadOpts is flexibleWorkload with engine options (E13).
func flexibleWorkloadOpts(opts ...engine.Option) (*engine.Engine, string) {
	spec := Fig3Flexible()
	e := engine.New(opts...)
	if err := fmtm.RegisterRuntime(e); err != nil {
		panic(err)
	}
	inj := rm.NewInjector()
	inj.AbortAlways("T6")
	if err := fmtm.RegisterFlexible(e, spec, fmtm.PureFlexibleBinding(spec), inj, &rm.Recorder{}); err != nil {
		panic(err)
	}
	p, err := fmtm.TranslateFlexible(spec)
	if err != nil {
		panic(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		panic(err)
	}
	return e, spec.Name
}

// RunE7 is the crash-point soak for the file-backed WAL: run the travel
// saga and the Figure 3 flexible transaction to completion over a real
// FileLog — in both the text and the binary record framing — then re-run
// each workload with a FaultLog that kills the server at every record
// boundary, both as a clean crash (the record never reaches the file) and
// as a short write (a torn partial frame lands on disk). Each crashed log
// is repaired with RepairFile (truncate-and-resume) and recovered; the
// soak passes only if every recovery reproduces the baseline's audit
// trail and a bit-identical final output container.
func RunE7() *Report {
	r := &Report{
		ID:      "E7",
		Title:   "WAL soak: crash + short-write at every file-log record boundary, repair, identical outcome",
		Columns: []string{"workload", "format", "mode", "log records", "crash points", "torn tails repaired", "recovered ok"},
		Pass:    true,
	}
	type workload struct {
		name string
		mk   func() (*engine.Engine, string)
	}

	dir, err := os.MkdirTemp("", "wal-soak")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)

	for _, w := range []workload{{"travel saga abort@book_car", travelWorkload}, {"flexible Fig.3 abort@T6", flexibleWorkload}} {
		for _, format := range []wal.Format{wal.FormatText, wal.FormatBinary} {
			r.addE7Rows(dir, w.name, format, w.mk)
		}
	}
	return r
}

// addE7Rows runs one E7 workload in one record format: baseline, then the
// full crash-point sweep in both crash modes.
func (r *Report) addE7Rows(dir, name string, format wal.Format, mk func() (*engine.Engine, string)) {
	path := filepath.Join(dir, fmt.Sprintf("soak-%s.wal", format))

	// Baseline run over a durable (fsync-on-append) file log.
	flog, err := wal.OpenFileLog(path, wal.WithFsync(), wal.WithFormat(format))
	if err != nil {
		r.Pass = false
		r.Err = err
		return
	}
	e, proc := mk()
	base, err := e.CreateInstance(proc, nil, flog)
	if err == nil {
		err = base.Start()
	}
	if cerr := flog.Close(); err == nil {
		err = cerr
	}
	if err != nil || !base.Finished() {
		r.Pass = false
		r.Err = fmt.Errorf("E7 %s/%s baseline: %v", name, format, err)
		return
	}
	baseTrail := fmt.Sprint(trailStrings(base))
	records, err := wal.ReadFile(path) // strict read: every CRC must verify
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("E7 %s/%s baseline read-back: %v", name, format, err)
		return
	}
	total := len(records)

	for _, mode := range []struct {
		name       string
		shortWrite bool
	}{{"clean crash", false}, {"short write", true}} {
		okAll := true
		repaired := 0
		for crashAt := 1; crashAt < total; crashAt++ {
			flog, err := wal.OpenFileLog(path, wal.WithFormat(format))
			if err != nil {
				okAll = false
				break
			}
			fl := wal.NewFaultLog(flog, crashAt, mode.shortWrite)
			e2, proc2 := mk()
			inst, err := e2.CreateInstance(proc2, nil, fl)
			if err != nil {
				okAll = false
				break
			}
			if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
				okAll = false
				break
			}
			if err := flog.Close(); err != nil {
				okAll = false
				break
			}
			recs, dropped, err := wal.RepairFile(path)
			if err != nil || len(recs) != crashAt {
				okAll = false
				break
			}
			if mode.shortWrite && dropped == 0 {
				okAll = false // the torn tail must have been detected
				break
			}
			if dropped > 0 {
				repaired++
				// The repaired file must now read back clean.
				if again, err := wal.ReadFile(path); err != nil || len(again) != crashAt {
					okAll = false
					break
				}
			}
			e3, _ := mk()
			rec, err := engine.Recover(e3, recs, nil)
			if err != nil || !rec.Finished() {
				okAll = false
				break
			}
			if fmt.Sprint(trailStrings(rec)) != baseTrail || !rec.Output().Equal(base.Output()) {
				okAll = false
				break
			}
		}
		if !okAll {
			r.Pass = false
		}
		verdict := "yes"
		if !okAll {
			verdict = "NO"
		}
		r.AddRow(name, format.String(), mode.name, fmt.Sprint(total), fmt.Sprint(total-1), fmt.Sprint(repaired), verdict)
	}
}
