package sim

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
)

// e12ArchiverOpts are the fast test timings every E12 archiver runs
// with: millisecond backoff so retries resolve inside the sweep, a
// breaker that trips after two failures, and a pinned jitter seed so a
// failing case replays byte-for-byte.
func e12ArchiverOpts(reg *obs.Registry) []wal.ArchiverOption {
	return []wal.ArchiverOption{
		wal.ArchiveOpTimeout(250 * time.Millisecond),
		wal.ArchiveBackoff(time.Millisecond, 4*time.Millisecond),
		wal.ArchiveBreakerAfter(2),
		wal.ArchiveBreakerCooldown(2 * time.Millisecond),
		wal.ArchiveMetricsRegistry(reg),
		wal.ArchiveSeed(1),
	}
}

// archiveGateHolds checks the archive-gated pruning invariant over one
// WAL directory: every sealed segment pruned locally (an index gap below
// the newest local segment) must be fetchable from the archive and
// strict-parse clean. A violated gate means retention deleted a local
// file whose archived copy was never verified — exactly the data-loss
// window the gate exists to close.
func archiveGateHolds(dir string, st wal.Store) error {
	segs, err := wal.ListSegments(dir)
	if err != nil {
		return err
	}
	have := map[int]bool{}
	max := 0
	for _, s := range segs {
		have[s.Index] = true
		if s.Index > max {
			max = s.Index
		}
	}
	for i := 1; i <= max; i++ {
		if have[i] {
			continue
		}
		name := fmt.Sprintf("wal-%06d.seg", i)
		data, err := st.Get(name)
		if err != nil {
			return fmt.Errorf("segment %d pruned locally but unreadable in archive: %w", i, err)
		}
		if _, err := wal.ReadAll(bytes.NewReader(data)); err != nil {
			return fmt.Errorf("segment %d pruned locally but archived copy corrupt: %w", i, err)
		}
	}
	return nil
}

// e12Recover runs the full recovery ladder (archive rung included) over
// one crashed case directory and checks the outcome against the
// baseline: exactly one travel instance, finished, baseline trail,
// bit-identical output, and the saga compensation guarantee over its
// program runs.
func e12Recover(dir string, st wal.Store, baseTrail string, base *engine.Instance) error {
	cp, _, err := wal.LoadCheckpointStore(dir, st)
	if err != nil {
		return err
	}
	cover := 0
	if cp != nil {
		cover = cp.Cover
	}
	tail, _, err := wal.RepairSegmentsStore(dir, cover, st)
	if err != nil {
		return err
	}
	e, _ := travelWorkload()
	insts, err := engine.RecoverAllFromCheckpoint(e, cp, tail, nil)
	if err != nil {
		return err
	}
	doneN := 0
	if cp != nil {
		doneN = len(cp.Done)
	}
	if len(insts)+doneN != 1 {
		return fmt.Errorf("recovered %d + done %d != 1", len(insts), doneN)
	}
	spec := TravelSaga()
	for _, inst := range insts {
		if !inst.Finished() {
			return errors.New("recovered instance did not finish")
		}
		if fmt.Sprint(trailStrings(inst)) != baseTrail {
			return errors.New("recovered trail diverges from baseline")
		}
		if !inst.Output().Equal(base.Output()) {
			return errors.New("recovered output container differs from baseline")
		}
		if err := saga.CheckGuarantee(spec, sagaEventsFromRuns(spec, inst)); err != nil {
			return fmt.Errorf("compensation oracle: %w", err)
		}
	}
	return nil
}

// RunE12 is the archive-tier soak. A travel-saga workload runs over a
// segmented WAL with a synchronous checkpoint pass every 4 appends and
// an Archiver copying every sealed segment and checkpoint into a Store,
// with local pruning gated on verified archived copies. Three parts:
//
//   - Part A — WAL crash sweep × archive states: the server crashes at
//     every WAL record boundary (clean and short-write) against a
//     healthy archive (DirStore), a flaky one (one typed transient
//     fault, kind rotating over unavailable/timeout/partial-write/
//     corrupt-read), and a down one (sticky unavailable from op 1).
//     After every crash: recovery through the full ladder must be
//     output-identical to the baseline with the compensation oracle
//     intact, the archive-gated invariant must hold (nothing pruned
//     locally without a CRC-clean archived copy), and with the archive
//     down nothing may be pruned at all — retention grows, the run
//     itself never stalls.
//
//   - Part B — archiver-op fault sweep: a count-only FaultStore pass
//     sizes the store-op schedule of a clean run, then every op index ×
//     every fault kind is injected in turn. The workload must always
//     complete (archival is asynchronous — no fault may stall an
//     append or checkpoint), the archiver must retry through the fault
//     and drain, and recovery must stay exact.
//
//   - Part C — the archive rung: all local checkpoints plus one sealed
//     tail segment are destroyed after a clean run; recovery must fetch
//     both from the archive (rung "archive-checkpoint", counted in
//     recover.archive_fetches). A corrupt archived newest checkpoint
//     must be CRC-rejected and counted in recover.checkpoint_fallbacks
//     while recovery still lands exactly.
func RunE12() *Report {
	r := &Report{
		ID:      "E12",
		Title:   "archive-tier soak: crash + typed archive faults at every op boundary, gated pruning, archive-rung recovery",
		Columns: []string{"case", "archive", "mode", "points", "archived", "retries", "recovered ok"},
		Pass:    true,
	}
	root, err := os.MkdirTemp("", "archive-soak")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(root)
	caseDir := func(name string) string {
		dir := filepath.Join(root, name)
		os.RemoveAll(dir)
		return dir
	}
	fail := func(err error) *Report {
		r.Pass = false
		if r.Err == nil {
			r.Err = err
		}
		return r
	}

	// Baseline: the travel saga on an in-memory log.
	eb, proc := travelWorkload()
	clean := &wal.MemLog{}
	base, err := eb.CreateInstance(proc, nil, clean)
	if err == nil {
		err = base.Start()
	}
	if err != nil || !base.Finished() {
		return fail(fmt.Errorf("E12 baseline: %v", err))
	}
	baseTrail := fmt.Sprint(trailStrings(base))
	total := clean.Len()

	// runCase executes one crashed-or-clean travel run against the given
	// store: segmented WAL, checkpoint every 4 appends, archiver attached.
	// crashAt 0 runs to completion. It returns the case directory and the
	// archiver's metrics registry; the archiver is drained (bounded) and
	// stopped, the log closed.
	runCase := func(dir string, st wal.Store, crashAt int, shortWrite bool, drain time.Duration) (*obs.Registry, error) {
		slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4))
		if err != nil {
			return nil, err
		}
		reg := obs.NewRegistry()
		arch := wal.NewArchiver(st, e12ArchiverOpts(reg)...)
		arch.Start()
		ck := engine.NewCheckpointer(slog, engine.CheckpointArchive(arch))
		var log wal.Log = &checkpointingLog{inner: slog, ck: ck, every: 4}
		if crashAt > 0 {
			log = &checkpointingLog{inner: wal.NewSegmentedFaultLog(slog, crashAt, shortWrite), ck: ck, every: 4}
		}
		e2, proc2 := travelWorkload()
		inst, err := e2.CreateInstance(proc2, nil, log)
		if err != nil {
			arch.Stop()
			slog.Close()
			return nil, err
		}
		err = inst.Start()
		if crashAt > 0 {
			if !errors.Is(err, wal.ErrCrash) {
				arch.Stop()
				slog.Close()
				return nil, fmt.Errorf("crashAt %d: want crash, got %v", crashAt, err)
			}
		} else if err != nil || !inst.Finished() {
			arch.Stop()
			slog.Close()
			return nil, fmt.Errorf("clean run: %v", err)
		}
		// Post-crash checkpoint pass: folds the segments sealed at crash
		// time and gives gated retention one more chance to run.
		if err := ck.CheckpointNow(); err != nil {
			arch.Stop()
			slog.Close()
			return nil, err
		}
		if drain > 0 {
			arch.Drain(drain)
		}
		arch.Stop()
		if err := slog.Close(); err != nil {
			return nil, err
		}
		return reg, nil
	}

	// Part A: WAL crash sweep × archive states.
	kinds := []wal.StoreFaultKind{wal.StoreUnavailable, wal.StoreTimeout, wal.StorePartialWrite, wal.StoreCorruptRead}
	states := []struct {
		name  string
		mk    func(inner wal.Store, crashAt int) wal.Store
		drain time.Duration
	}{
		{"healthy", func(inner wal.Store, _ int) wal.Store { return inner }, 2 * time.Second},
		{"flaky", func(inner wal.Store, crashAt int) wal.Store {
			return wal.NewFaultStore(inner, kinds[crashAt%len(kinds)], int64(1+crashAt%3),
				wal.StoreTimeoutDelay(time.Millisecond))
		}, 2 * time.Second},
		// A dead backend: no drain (it would only time out); retention must
		// simply grow.
		{"down", func(inner wal.Store, _ int) wal.Store {
			return wal.NewFaultStore(inner, wal.StoreUnavailable, 1, wal.StoreSticky())
		}, 0},
	}
	for _, state := range states {
		for _, mode := range []struct {
			name       string
			shortWrite bool
		}{{"clean crash", false}, {"short write", true}} {
			var archived, retries int64
			var caseErr error
			for crashAt := 1; crashAt < total && caseErr == nil; crashAt++ {
				dir := caseDir("sweep")
				inner, err := wal.NewDirStore(caseDir("sweep-arch"))
				if err != nil {
					caseErr = err
					break
				}
				st := state.mk(inner, crashAt)
				reg, err := runCase(dir, st, crashAt, mode.shortWrite, state.drain)
				if err != nil {
					caseErr = err
					break
				}
				snap := reg.Snapshot()
				archived += snap.Counters["wal.archive.archived"]
				retries += snap.Counters["wal.archive.retries"]
				if state.name == "down" {
					if snap.Counters["wal.archive.archived"] != 0 {
						caseErr = fmt.Errorf("crashAt %d: down archive verified an upload", crashAt)
						break
					}
					// Gated retention: a dead archive means nothing is pruned.
					segs, err := wal.ListSegments(dir)
					if err != nil {
						caseErr = err
						break
					}
					for i, s := range segs {
						if s.Index != i+1 {
							caseErr = fmt.Errorf("crashAt %d: segment %d pruned with the archive down", crashAt, i+1)
							break
						}
					}
					if caseErr != nil {
						break
					}
				}
				// Nothing locally pruned without a clean archived copy — checked
				// against the inner store so injected read faults don't mask it.
				if err := archiveGateHolds(dir, inner); err != nil {
					caseErr = fmt.Errorf("crashAt %d: %w", crashAt, err)
					break
				}
				if err := e12Recover(dir, st, baseTrail, base); err != nil {
					caseErr = fmt.Errorf("crashAt %d: %w", crashAt, err)
					break
				}
			}
			if state.name == "healthy" && retries != 0 && caseErr == nil {
				caseErr = fmt.Errorf("healthy archive needed %d retries", retries)
			}
			if state.name == "down" && retries == 0 && caseErr == nil {
				caseErr = errors.New("down archive recorded no retries")
			}
			verdict := "yes"
			if caseErr != nil {
				verdict = "NO"
				r.Pass = false
				if r.Err == nil {
					r.Err = fmt.Errorf("E12 A %s/%s: %w", state.name, mode.name, caseErr)
				}
			}
			r.AddRow("A crash sweep: travel saga", state.name, mode.name,
				fmt.Sprint(total-1), fmt.Sprint(archived), fmt.Sprint(retries), verdict)
		}
	}

	// Part B: archiver-op fault sweep. Size the schedule with a count-only
	// pass, then inject every fault kind at every store-op index.
	inner, err := wal.NewDirStore(caseDir("b-arch"))
	if err != nil {
		return fail(err)
	}
	counter := wal.NewFaultStore(inner, wal.StoreUnavailable, 0)
	if _, err := runCase(caseDir("b"), counter, 0, false, 2*time.Second); err != nil {
		return fail(fmt.Errorf("E12 B sizing pass: %w", err))
	}
	opCount := counter.Ops()
	if opCount < 4 {
		return fail(fmt.Errorf("E12 B sizing pass saw only %d store ops", opCount))
	}
	for _, kind := range kinds {
		var archived, retries int64
		var caseErr error
		fired := 0
		for k := int64(1); k <= opCount && caseErr == nil; k++ {
			dir := caseDir("b")
			binner, err := wal.NewDirStore(caseDir("b-arch"))
			if err != nil {
				caseErr = err
				break
			}
			st := wal.NewFaultStore(binner, kind, k, wal.StoreTimeoutDelay(time.Millisecond))
			reg, err := runCase(dir, st, 0, false, 2*time.Second)
			if err != nil {
				caseErr = fmt.Errorf("fault@%d: %w", k, err)
				break
			}
			if st.Fired() {
				fired++
			}
			snap := reg.Snapshot()
			archived += snap.Counters["wal.archive.archived"]
			retries += snap.Counters["wal.archive.retries"]
			if err := archiveGateHolds(dir, binner); err != nil {
				caseErr = fmt.Errorf("fault@%d: %w", k, err)
				break
			}
			if err := e12Recover(dir, binner, baseTrail, base); err != nil {
				caseErr = fmt.Errorf("fault@%d: %w", k, err)
				break
			}
		}
		if caseErr == nil && fired == 0 {
			caseErr = errors.New("no scheduled fault ever fired")
		}
		if caseErr == nil && retries == 0 {
			caseErr = errors.New("faults fired but the archiver never retried")
		}
		verdict := "yes"
		if caseErr != nil {
			verdict = "NO"
			r.Pass = false
			if r.Err == nil {
				r.Err = fmt.Errorf("E12 B %s: %w", kind, caseErr)
			}
		}
		r.AddRow("B archiver-op faults", kind.String(), "transient fault at each op",
			fmt.Sprint(opCount), fmt.Sprint(archived), fmt.Sprint(retries), verdict)
	}

	// Part C: the archive rung. A clean fully-archived run loses all its
	// local checkpoints and one sealed tail segment; then the newest
	// archived checkpoint is corrupted in place.
	cErr := func() error {
		dir := caseDir("c")
		st, err := wal.NewDirStore(caseDir("c-arch"))
		if err != nil {
			return err
		}
		if _, err := runCase(dir, st, 0, false, 2*time.Second); err != nil {
			return err
		}
		cps, err := wal.ListCheckpoints(dir)
		if err != nil {
			return err
		}
		if len(cps) == 0 {
			return errors.New("clean run left no checkpoints")
		}
		newest, err := wal.ReadCheckpoint(cps[len(cps)-1].Path)
		if err != nil {
			return err
		}
		for _, ci := range cps {
			if err := os.Remove(ci.Path); err != nil {
				return err
			}
		}
		// Destroy one sealed tail segment (covered blobs are prunable and
		// may already be gone; tail segments past the cover must be
		// re-fetchable too, since they were sealed and archived).
		segs, err := wal.ListSegments(dir)
		if err != nil {
			return err
		}
		removedSeg := false
		for _, s := range segs[:len(segs)-1] { // the last file is the unarchived active segment
			if s.Index > newest.Cover {
				if err := os.Remove(s.Path); err != nil {
					return err
				}
				removedSeg = true
				break
			}
		}
		fetches := obs.Default.Counter("recover.archive_fetches").Value()
		cp, src, err := wal.LoadCheckpointStore(dir, st)
		if err != nil {
			return err
		}
		if src != wal.SourceArchiveCheckpoint {
			return fmt.Errorf("rung = %q, want %q", src, wal.SourceArchiveCheckpoint)
		}
		if cp == nil || cp.Seq != newest.Seq {
			return fmt.Errorf("archive rung returned seq %v, want %d", cp, newest.Seq)
		}
		if err := e12Recover(dir, st, baseTrail, base); err != nil {
			return err
		}
		wantFetches := int64(1)
		if removedSeg {
			wantFetches = 2
		}
		// e12Recover loads the checkpoint again, so the delta doubles the
		// checkpoint fetch.
		if d := obs.Default.Counter("recover.archive_fetches").Value() - fetches; d < wantFetches {
			return fmt.Errorf("archive_fetches delta = %d, want >= %d", d, wantFetches)
		}

		// Corrupt the newest archived checkpoint: recovery must CRC-reject
		// it (counted as a fallback) and still land exactly.
		name := fmt.Sprintf("ckpt-%06d.ckpt", newest.Seq)
		blob, err := st.Get(name)
		if err != nil {
			return err
		}
		blob[len(blob)/2] ^= 0x40
		if err := st.Put(name, blob); err != nil {
			return err
		}
		before := fallbackCount()
		if err := e12Recover(dir, st, baseTrail, base); err != nil {
			return fmt.Errorf("after corrupting archived checkpoint: %w", err)
		}
		if fallbackCount() == before {
			return errors.New("corrupt archived checkpoint not counted as a fallback")
		}
		return nil
	}()
	verdict := "yes"
	if cErr != nil {
		verdict = "NO"
		r.Pass = false
		if r.Err == nil {
			r.Err = fmt.Errorf("E12 C: %w", cErr)
		}
	}
	r.AddRow("C archive rung: local ckpts + tail segment lost, corrupt blob", "healthy", "-", "-", "-", "-", verdict)
	return r
}

// b15Chain matches the B9 reference workload length.
const b15Chain = 20

// RunB15 measures the archive tier's overhead on the hot path: the same
// sharded group-committed fleet workload with and without an Archiver
// attached (DirStore backend). Archival is asynchronous and pruning is
// verification-gated, so the with-archive configuration must sustain at
// least 95% of the no-archive records/sec — the <5%-overhead acceptance
// gate. Three interleaved trials, best of each configuration, to damp
// scheduler noise. The trailing row repeats the run against a down
// archive (sticky unavailable FaultStore): throughput must hold the same
// bound while retention grows instead of stalling.
func RunB15() *Report {
	r := &Report{
		ID:      "B15",
		Title:   "archival overhead: fleet records/sec with vs. without the archive tier",
		Columns: []string{"config", "trials", "wall (best)", "records/sec", "archived", "vs no-archive"},
		Pass:    true,
	}
	dir, err := os.MkdirTemp("", "wfbench-archive")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)

	const fleetN = 32
	proc := Chain("b15", b15Chain)
	recsPerInst := 2*b15Chain + 2

	type outcome struct {
		wallNs     float64
		recsPerSec float64
		archived   int64
	}
	run := func(trial int, mode string) (outcome, error) {
		root := filepath.Join(dir, fmt.Sprintf("%s-%d", mode, trial))
		cfg := engine.FleetConfig{
			Shards: 2, Dir: root, Parallel: 8, MaxQueue: 16,
			GroupCommit: true, SegmentMaxRecords: 64,
			CheckpointEveryRecords: 64,
		}
		if mode != "no-archive" {
			cfg.ArchiveDir = filepath.Join(root, "archive")
			cfg.ArchiveOpts = func(shard int) []wal.ArchiverOption {
				return []wal.ArchiverOption{
					wal.ArchiveBackoff(time.Millisecond, 8*time.Millisecond),
					wal.ArchiveBreakerCooldown(4 * time.Millisecond),
					wal.ArchiveSeed(int64(shard))}
			}
		}
		if mode == "archive-down" {
			cfg.ArchiveStore = func(shard int) wal.Store {
				return wal.NewFaultStore(&nullStore{}, wal.StoreUnavailable, 1, wal.StoreSticky())
			}
		}
		e := NewEngine()
		if err := e.RegisterProcess(proc); err != nil {
			return outcome{}, err
		}
		f, err := engine.NewFleet(e, cfg)
		if err != nil {
			return outcome{}, err
		}
		res, err := f.Run(proc.Name, fleetN, nil)
		if err == nil && res.Finished != fleetN {
			err = fmt.Errorf("finished %d of %d: %v", res.Finished, fleetN, res.Err)
		}
		if err == nil && mode == "archive" {
			// Flush outside the timed window so the blob count below is the
			// full run's archive output, not a shutdown race.
			for _, sh := range f.Shards() {
				if a := sh.Archiver(); a != nil {
					a.Drain(2 * time.Second)
				}
			}
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return outcome{}, err
		}
		var archived int64
		if cfg.ArchiveDir != "" {
			filepath.Walk(cfg.ArchiveDir, func(_ string, fi os.FileInfo, err error) error {
				if err == nil && fi != nil && !fi.IsDir() {
					archived++
				}
				return nil
			})
		}
		secs := res.Elapsed.Seconds()
		return outcome{
			wallNs:     float64(res.Elapsed.Nanoseconds()),
			recsPerSec: float64(fleetN*recsPerInst) / secs,
			archived:   archived,
		}, nil
	}

	const trials = 3
	best := map[string]outcome{}
	for trial := 0; trial < trials; trial++ {
		for _, mode := range []string{"no-archive", "archive", "archive-down"} {
			out, err := run(trial, mode)
			if err != nil {
				r.Pass = false
				r.Err = fmt.Errorf("B15 %s trial %d: %w", mode, trial, err)
				return r
			}
			if b, ok := best[mode]; !ok || out.recsPerSec > b.recsPerSec {
				best[mode] = out
			}
		}
	}

	base := best["no-archive"].recsPerSec
	for _, mode := range []string{"no-archive", "archive", "archive-down"} {
		out := best[mode]
		rel := "-"
		if mode != "no-archive" && base > 0 {
			rel = fmt.Sprintf("%.2f", out.recsPerSec/base)
		}
		r.AddRow(mode, fmt.Sprint(trials), fmtNs(out.wallNs),
			fmt.Sprintf("%.0f", out.recsPerSec), fmt.Sprint(out.archived), rel)
		r.AddSample(Sample{Name: "B15/" + mode, NsOp: out.wallNs, Iters: 1,
			RecordsPerSec: out.recsPerSec})
		if mode != "no-archive" && base > 0 && out.recsPerSec < 0.95*base {
			r.Pass = false
			if r.Err == nil {
				r.Err = fmt.Errorf("B15: %s best %.0f records/sec < 95%% of no-archive %.0f",
					mode, out.recsPerSec, base)
			}
		}
	}
	return r
}

// nullStore discards everything — the inner store behind B15's
// permanently-down FaultStore (never reached, since the fault is sticky
// from op 1).
type nullStore struct{}

func (nullStore) Put(string, []byte) error   { return nil }
func (nullStore) Get(string) ([]byte, error) { return nil, wal.ErrStoreMiss }
func (nullStore) List() ([]string, error)    { return nil, nil }
func (nullStore) Delete(string) error        { return nil }
