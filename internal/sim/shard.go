package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/wal"
)

// B14 workload shape: a chain of b14Chain activities whose program
// sleeps b14Service and commits, so one instance costs b14Chain *
// b14Service of worker time and 2*b14Chain+2 WAL records. Each shard
// brings b14Parallel workers plus its own group-commit segmented WAL —
// per-shard capacity is b14Parallel/(b14Chain*b14Service) instances/sec
// by construction, and adding shards multiplies it. That is the fleet's
// scaling claim: shards share nothing on the execute or append path.
// b14Service is deliberately large relative to the Go timer's wakeup
// granularity (~1ms on a loaded single-CPU box): the per-activity cost
// must be dominated by the modeled I/O wait, not by timer overhead that
// varies with how many sleepers happen to coalesce, or per-shard
// capacity would drift between rows.
const (
	b14Chain    = 4
	b14Service  = 5 * time.Millisecond
	b14Parallel = 2
	b14Queue    = 8 // admission queue beyond the worker slots, per shard
)

// b14Workload returns an engine plus the B14 chain process (registered).
func b14Workload() (*engine.Engine, *model.Process) {
	e := engine.New()
	mustRegister(e, "b14work", engine.ProgramFunc(func(inv *engine.Invocation) error {
		time.Sleep(b14Service)
		inv.Out.SetRC(0)
		return nil
	}))
	p := model.NewProcess("b14")
	for i := 1; i <= b14Chain; i++ {
		p.Activities = append(p.Activities, &model.Activity{
			Name: actName(i), Kind: model.KindProgram, Program: "b14work",
		})
		if i > 1 {
			p.Control = append(p.Control, &model.ControlConnector{
				From: actName(i - 1), To: actName(i), Condition: expr.MustParse("RC = 0"),
			})
		}
	}
	if err := e.RegisterProcess(p); err != nil {
		panic(err)
	}
	return e, p
}

// b14Outcome is one shard count's measured behavior at the offered load.
type b14Outcome struct {
	accepted   int
	shed       int
	failed     int
	rebalanced int64
	wall       time.Duration
	lat        []time.Duration // scheduled arrival -> completion, accepted only
}

// b14Offered drives the open-loop arrival process against a sharded
// fleet: n arrivals paced at the given rate on an absolute schedule
// (arrival i fires at start + i/rate regardless of how the fleet is
// coping — coordinated omission cannot flatter the numbers, and latency
// is measured from the scheduled arrival, so pacing overshoot counts
// against the fleet, not for it). Every arrival is admitted with the
// shedding policy; accepted work records arrival-to-completion latency.
func b14Offered(shards int, rate float64, n int, dir string) (b14Outcome, error) {
	e, p := b14Workload()
	f, err := engine.NewFleet(e, engine.FleetConfig{
		Shards: shards, Dir: dir, Parallel: b14Parallel,
		MaxQueue: b14Queue, HotQueue: b14Parallel + b14Queue/2,
		Shed: true, GroupCommit: true,
	})
	if err != nil {
		return b14Outcome{}, err
	}
	interval := time.Duration(float64(time.Second) / rate)
	lat := make([]time.Duration, n)
	done := make([]bool, n)
	accepted := 0
	failed := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		arrive := start.Add(time.Duration(i) * interval)
		if d := time.Until(arrive); d > 0 {
			time.Sleep(d)
		}
		i := i
		_, err := f.Submit(p.Name, nil, func(_ *engine.Instance, err error) {
			if err == nil {
				lat[i] = time.Since(arrive)
				done[i] = true
			}
		})
		if err == nil {
			accepted++
		} else if !errors.Is(err, engine.ErrOverloaded) {
			failed++
		}
	}
	f.Drain()
	out := b14Outcome{
		accepted:   accepted,
		failed:     failed,
		wall:       time.Since(start),
		rebalanced: f.Stats().Rebalanced,
		shed:       int(f.Stats().Shed),
	}
	if err := f.Close(); err != nil {
		return out, err
	}
	for i := range done {
		if done[i] {
			out.lat = append(out.lat, lat[i])
		}
	}
	if len(out.lat) != accepted {
		return out, fmt.Errorf("accepted %d instances but %d completed", accepted, len(out.lat))
	}
	return out, nil
}

// RunB14 measures sharded-fleet scaling under a fixed open-loop offered
// load. A closed-loop calibration run first measures one shard's
// capacity C1; every row then offers 4.5*C1 arrivals/sec — well past
// what one shard can absorb — to shard counts {1, 2, 4, 8} with load
// shedding on. Because each shard owns its workers and its WAL, the
// single-shard row saturates and sheds while wider fleets convert the
// same offered load into throughput.
//
// Gates (enforced by this table as run by wfbench; the test suite
// asserts structure only, the B9/B12 -race precedent):
//
//   - the 1-shard row must shed (the load really is beyond one shard);
//   - records/sec at 4 shards >= 3x the 1-shard row (near-linear
//     scaling to 4 shards at equal offered load);
//   - accepted p99 stays within the bounded-queue latency envelope at
//     every shard count — 4x (chain service + full-queue drain), the
//     B12 bound shape.
func RunB14() *Report {
	r := &Report{
		ID:      "B14",
		Title:   "sharded fleet: records/sec and accepted p99 vs shard count at equal open-loop offered load",
		Columns: []string{"shards", "workers/shard", "offered/s", "accepted", "shed", "rebalanced", "records/sec", "p50", "p99", "scaling x"},
		Pass:    true,
	}
	recsPerInst := 2*b14Chain + 2
	dir, err := os.MkdirTemp("", "wfbench-shard")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)

	// Closed-loop calibration: one shard's real capacity on this machine.
	calN := 60
	e, p := b14Workload()
	cal, err := engine.NewFleet(e, engine.FleetConfig{
		Shards: 1, Dir: filepath.Join(dir, "cal"), Parallel: b14Parallel,
		MaxQueue: b14Queue, GroupCommit: true,
	})
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	calRes, err := cal.Run(p.Name, calN, nil)
	if cerr := cal.Close(); err == nil {
		err = cerr
	}
	if err == nil && calRes.Finished != calN {
		err = fmt.Errorf("calibration finished %d of %d: %v", calRes.Finished, calN, calRes.Err)
	}
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("B14 calibration: %w", err)
		return r
	}
	c1 := float64(calN) / calRes.Elapsed.Seconds()
	r.AddRow("1 (closed loop)", fmt.Sprint(b14Parallel), "capacity",
		fmt.Sprint(calN), "0", "0",
		fmt.Sprintf("%.0f", c1*float64(recsPerInst)), "-", "-", "-")

	rate := 4.5 * c1
	n := int(rate * 0.5) // half a second of arrivals per row
	if n < 200 {
		n = 200
	}
	chainSvc := time.Duration(b14Chain) * b14Service
	latBound := 4 * (chainSvc + time.Duration(b14Queue/b14Parallel)*chainSvc)

	var baseRps float64
	var errs []error
	for _, shards := range []int{1, 2, 4, 8} {
		out, err := b14Offered(shards, rate, n, filepath.Join(dir, fmt.Sprintf("s%d", shards)))
		if err != nil || out.failed > 0 {
			r.Pass = false
			r.Err = fmt.Errorf("B14 shards=%d: %v (%d failed)", shards, err, out.failed)
			return r
		}
		rps := float64(out.accepted*recsPerInst) / out.wall.Seconds()
		scaling := "-"
		if shards == 1 {
			baseRps = rps
		} else if baseRps > 0 {
			scaling = fmt.Sprintf("%.2f", rps/baseRps)
		}
		p50 := b12Percentile(out.lat, 0.50)
		p99 := b12Percentile(out.lat, 0.99)
		r.AddRow(fmt.Sprint(shards), fmt.Sprint(b14Parallel), fmt.Sprintf("%.0f", rate),
			fmt.Sprint(out.accepted), fmt.Sprint(out.shed), fmt.Sprint(out.rebalanced),
			fmt.Sprintf("%.0f", rps),
			fmtNs(float64(p50.Nanoseconds())), fmtNs(float64(p99.Nanoseconds())), scaling)
		r.AddSample(Sample{Name: fmt.Sprintf("B14/shards=%d", shards),
			NsOp: float64(out.wall.Nanoseconds()), Iters: 1, RecordsPerSec: rps})
		if shards == 1 && out.shed == 0 {
			errs = append(errs, errors.New("B14: 1-shard row shed nothing at 4.5x capacity"))
		}
		if shards == 4 && baseRps > 0 && rps < 3*baseRps {
			errs = append(errs, fmt.Errorf("B14: 4-shard scaling %.2fx, want >= 3x", rps/baseRps))
		}
		if p99 > latBound {
			errs = append(errs, fmt.Errorf("B14: shards=%d accepted p99 %v exceeds bound %v", shards, p99, latBound))
		}
	}
	if len(errs) > 0 {
		r.Pass = false
		r.Err = errors.Join(errs...)
	}
	return r
}

// e11Fleet builds the E11 sharded travel-saga fleet over root. victim <
// 0 runs crash-free; otherwise that shard's group commit crashes after
// crashAt records (short-write mode tears the batch). track receives
// each shard's ack-tracking wrapper.
func e11Fleet(root string, victim, crashAt int, shortWrite bool, track []*ackTrackingLog) (*engine.Fleet, string, error) {
	e, proc := travelWorkload()
	f, err := engine.NewFleet(e, engine.FleetConfig{
		Shards: e11Shards, Dir: root, Parallel: 2, MaxQueue: e11FleetN,
		NoRebalance: true, // placement must be pure hash: the sweep relies on a stable victim
		GroupCommit: true, SegmentMaxRecords: 8,
		GroupOpts: func(shard int) []wal.GroupOption {
			if shard == victim {
				return []wal.GroupOption{wal.GroupCrashAfter(crashAt, shortWrite)}
			}
			return nil
		},
		WrapLog: func(shard int, log wal.Log) wal.Log {
			track[shard] = &ackTrackingLog{inner: log}
			return track[shard]
		},
	})
	return f, proc, err
}

// E11 scale: e11FleetN saga instances over e11Shards shards.
const (
	e11Shards = 3
	e11FleetN = 6
)

// RunE11 is the shard-crash soak: a sharded fleet runs the travel saga
// (book_car aborts, so every instance takes the compensation path) with
// one shard's group-commit WAL crashed at every batch boundary — clean
// and short-write — while the other shards keep serving. After each
// crash the fleet directory is recovered with RecoverFleet (per-shard
// repair + checkpoint ladder). The soak passes only if, at every crash
// point:
//
//   - every instance placed on a surviving shard still finishes during
//     the crashed run (shard isolation: one shard's storage death does
//     not take the fleet down);
//   - no append acknowledged by the victim shard is missing after its
//     directory is repaired (zero acked-append loss);
//   - every recovered instance — the victim's partial instances resumed
//     and re-driven — finishes with the crash-free baseline's output and
//     audit trail (output-identical recovery);
//   - the compensation-ordering oracle (saga.CheckGuarantee) holds on
//     every recovered instance's program history.
func RunE11() *Report {
	r := &Report{
		ID:      "E11",
		Title:   "shard-crash soak: one shard dies at every batch boundary, survivors serve, recovery exact",
		Columns: []string{"mode", "shards", "fleet", "victim", "crash points", "survivors ok", "acks lost", "recovered ok", "oracle ok"},
		Pass:    true,
	}
	spec := TravelSaga()
	root, err := os.MkdirTemp("", "wfsoak-shard")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(root)

	// Crash-free baseline: one instance's output and trail (every
	// instance runs the identical workload).
	be, bproc := travelWorkload()
	base, err := be.CreateInstance(bproc, nil, nil)
	if err == nil {
		err = base.Start()
	}
	if err != nil || !base.Finished() {
		r.Pass = false
		r.Err = fmt.Errorf("E11 baseline: %v", err)
		return r
	}
	baseTrail := fmt.Sprint(trailStrings(base))

	// Clean fleet run: find the victim (the shard carrying the most
	// records) and its batch-boundary count, and pin down placement.
	track := make([]*ackTrackingLog, e11Shards)
	f, proc, err := e11Fleet(filepath.Join(root, "clean"), -1, 0, false, track)
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	res, err := f.Run(proc, e11FleetN, nil)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil && res.Finished != e11FleetN {
		err = fmt.Errorf("clean run finished %d of %d: %v", res.Finished, e11FleetN, res.Err)
	}
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("E11 clean run: %w", err)
		return r
	}
	victim, boundaries := 0, 0
	for s, tr := range track {
		if n := len(tr.acked); n > boundaries {
			victim, boundaries = s, n
		}
	}
	// Instances homed on the victim vs. survivors (placement is pure
	// hash with NoRebalance, so it is identical in every run).
	onVictim := make(map[string]bool)
	for i := 1; i <= e11FleetN; i++ {
		id := fmt.Sprintf("inst-%d", i)
		if engine.ShardFor(id, e11Shards) == victim {
			onVictim[id] = true
		}
	}
	survivors := e11FleetN - len(onVictim)
	if len(onVictim) == 0 || survivors == 0 {
		r.Pass = false
		r.Err = fmt.Errorf("E11: degenerate placement, %d of %d instances on victim shard %d",
			len(onVictim), e11FleetN, victim)
		return r
	}

	for _, mode := range []struct {
		name       string
		shortWrite bool
	}{{"clean crash", false}, {"short write", true}} {
		okSurvivors, okAcks, okRecovered, okOracle := true, true, true, true
		acksLost := 0
		for crashAt := 1; crashAt < boundaries; crashAt++ {
			runRoot := filepath.Join(root, fmt.Sprintf("%s-%d", mode.name[:5], crashAt))
			tr := make([]*ackTrackingLog, e11Shards)
			f, proc, err := e11Fleet(runRoot, victim, crashAt, mode.shortWrite, tr)
			if err != nil {
				r.fail(fmt.Errorf("E11 %s@%d: %w", mode.name, crashAt, err))
				return r
			}
			res, err := f.Run(proc, e11FleetN, nil)
			f.Close() // the victim's crashed log seals with ErrCrash; tolerated
			if err != nil {
				r.fail(fmt.Errorf("E11 %s@%d run: %w", mode.name, crashAt, err))
				return r
			}
			// The crash must have fired on the victim...
			if res.Failed == 0 || !errors.Is(res.Err, wal.ErrCrash) {
				okSurvivors = false
			}
			// ...while every survivor-shard instance finished.
			if res.Finished < survivors {
				okSurvivors = false
			}
			// Zero acked-append loss on the repaired victim directory.
			vdir := filepath.Join(runRoot, engine.ShardDirName(victim))
			recs, _, err := wal.RepairSegments(vdir, 0)
			if err != nil {
				r.fail(fmt.Errorf("E11 %s@%d repair: %w", mode.name, crashAt, err))
				return r
			}
			onDisk := make(map[string]bool, len(recs))
			for _, rec := range recs {
				onDisk[recKey(rec)] = true
			}
			for _, rec := range tr[victim].acked {
				if !onDisk[recKey(rec)] {
					okAcks = false
					acksLost++
				}
			}
			// Recover the whole fleet directory; every recovered instance
			// must reproduce the baseline exactly and satisfy the oracle.
			re, _ := travelWorkload()
			insts, err := engine.RecoverFleet(re, runRoot, nil)
			if err != nil || len(insts) < survivors {
				okRecovered = false
			}
			for _, inst := range insts {
				if !inst.Finished() || !inst.Output().Equal(base.Output()) ||
					fmt.Sprint(trailStrings(inst)) != baseTrail {
					okRecovered = false
				}
				if err := saga.CheckGuarantee(spec, sagaEventsFromRuns(spec, inst)); err != nil {
					okOracle = false
				}
			}
			os.RemoveAll(runRoot)
		}
		ok := okSurvivors && okAcks && okRecovered && okOracle
		if !ok {
			r.Pass = false
			if r.Err == nil {
				r.Err = fmt.Errorf("E11 %s: survivors=%v acks=%v recovered=%v oracle=%v",
					mode.name, okSurvivors, okAcks, okRecovered, okOracle)
			}
		}
		r.AddRow(mode.name, fmt.Sprint(e11Shards), fmt.Sprint(e11FleetN),
			fmt.Sprintf("shard-%02d (%d inst)", victim, len(onVictim)),
			fmt.Sprint(boundaries-1), yesNo(okSurvivors), fmt.Sprint(acksLost),
			yesNo(okRecovered), yesNo(okOracle))
	}
	return r
}

// fail marks the report failed with err.
func (r *Report) fail(err error) {
	r.Pass = false
	r.Err = err
}

func yesNo(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
