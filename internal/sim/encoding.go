package sim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/expr"
	"repro/internal/wal"
)

// b13Record is the representative hot-path record B13 measures: an
// activity completion with a small output container, the shape the engine
// appends once per navigation step.
func b13Record() wal.Record {
	return wal.Record{
		Type: wal.RecFinishedActivity, Instance: "inst-000042", Path: "Book/Flight", Iter: 1,
		Values: map[string]expr.Value{
			"RC":    expr.Int(0),
			"PNR":   expr.String_("X4QZ81"),
			"price": expr.Float(412.50),
			"held":  expr.Bool(true),
		},
	}
}

// RunB13 measures the binary WAL record framing against the text framing:
// raw encode, raw decode (full-log read), and end-to-end FileLog append
// without fsync — the navigation hot path when group commit owns
// durability. Gates: binary encode and decode must be at least 2x the text
// throughput, binary append must not regress records/sec, and the
// idle-bus binary append path must not allocate.
func RunB13() *Report {
	r := &Report{
		ID:      "B13",
		Title:   "WAL record encoding: binary vs text framing",
		Columns: []string{"operation", "text ns/op", "binary ns/op", "speedup x", "gate"},
		Pass:    true,
	}
	rec := b13Record()
	gate := func(name string, ok bool) string {
		if !ok {
			r.Pass = false
			return fmt.Sprintf("FAIL %s", name)
		}
		return "ok"
	}

	// Raw encode: one framed record into a reused buffer, exactly what
	// every log backend does per append.
	var enc []byte
	encTm := make(map[wal.Format]Timing)
	for _, f := range []wal.Format{wal.FormatText, wal.FormatBinary} {
		f := f
		encTm[f] = measureStats(func() {
			var err error
			enc, err = wal.EncodeRecord(enc[:0], rec, f)
			if err != nil {
				panic(err)
			}
		})
	}
	encSpeed := encTm[wal.FormatText].MeanNs / encTm[wal.FormatBinary].MeanNs
	r.AddRow("encode record", fmtNs(encTm[wal.FormatText].MeanNs), fmtNs(encTm[wal.FormatBinary].MeanNs),
		fmt.Sprintf("%.1f", encSpeed), gate(">=2x encode", encSpeed >= 2))
	r.AddSample(sampleFrom("B13/encode/text", encTm[wal.FormatText], 0))
	r.AddSample(sampleFrom("B13/encode/binary", encTm[wal.FormatBinary], 0))

	// Raw decode: strict read of an in-memory 1000-record log, per-record
	// cost — the recovery replay path.
	const decN = 1000
	logs := make(map[wal.Format][]byte)
	for _, f := range []wal.Format{wal.FormatText, wal.FormatBinary} {
		var data []byte
		if f == wal.FormatBinary {
			data = append(data, wal.FileHeader(f)...)
		}
		for i := 0; i < decN; i++ {
			var err error
			data, err = wal.EncodeRecord(data, rec, f)
			if err != nil {
				r.Pass = false
				r.Err = err
				return r
			}
		}
		logs[f] = data
	}
	decTm := make(map[wal.Format]Timing)
	for _, f := range []wal.Format{wal.FormatText, wal.FormatBinary} {
		data := logs[f]
		decTm[f] = measureStats(func() {
			recs, err := wal.ReadAll(bytes.NewReader(data))
			if err != nil || len(recs) != decN {
				panic(fmt.Sprintf("B13 decode: %d records, %v", len(recs), err))
			}
		})
	}
	decText := decTm[wal.FormatText].MeanNs / decN
	decBin := decTm[wal.FormatBinary].MeanNs / decN
	decSpeed := decText / decBin
	r.AddRow(fmt.Sprintf("decode log (%d recs, per rec)", decN), fmtNs(decText), fmtNs(decBin),
		fmt.Sprintf("%.1f", decSpeed), gate(">=2x decode", decSpeed >= 2))
	r.AddSample(Sample{Name: "B13/decode/text", NsOp: decText, Iters: decTm[wal.FormatText].Iters * decN,
		RecordsPerSec: 1e9 / decText})
	r.AddSample(Sample{Name: "B13/decode/binary", NsOp: decBin, Iters: decTm[wal.FormatBinary].Iters * decN,
		RecordsPerSec: 1e9 / decBin})

	// End-to-end append, no per-record fsync (the group-commit regime):
	// encode + buffered file write + metrics. The binary path must not
	// regress text throughput (5% noise allowance on the batch minimum).
	dir, err := os.MkdirTemp("", "wfbench-b13-")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)
	appTm := make(map[wal.Format]Timing)
	for _, f := range []wal.Format{wal.FormatText, wal.FormatBinary} {
		l, err := wal.OpenFileLog(filepath.Join(dir, "append-"+f.String()+".wal"), wal.WithFormat(f))
		if err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		appTm[f] = measureStats(func() {
			if err := l.Append(rec); err != nil {
				panic(err)
			}
		})
		if err := l.Close(); err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
	}
	appSpeed := appTm[wal.FormatText].MinNs / appTm[wal.FormatBinary].MinNs
	r.AddRow("file append (no fsync)", fmtNs(appTm[wal.FormatText].MeanNs), fmtNs(appTm[wal.FormatBinary].MeanNs),
		fmt.Sprintf("%.1f", appSpeed), gate("no append regression", appSpeed >= 0.95))
	r.AddSample(sampleFrom("B13/append/text", appTm[wal.FormatText], 1e9/appTm[wal.FormatText].MeanNs))
	r.AddSample(sampleFrom("B13/append/binary", appTm[wal.FormatBinary], 1e9/appTm[wal.FormatBinary].MeanNs))

	// Idle-bus allocation gate: the binary append path must be zero
	// allocs/op once its encode scratch is warm.
	l, err := wal.OpenFileLog(filepath.Join(dir, "allocs.wal"), wal.WithFormat(wal.FormatBinary))
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	for i := 0; i < 64; i++ {
		if err := l.Append(rec); err != nil {
			panic(err)
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := l.Append(rec); err != nil {
			panic(err)
		}
	})
	if err := l.Close(); err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	r.AddRow("append allocs/op (idle bus)", "-", fmt.Sprintf("%.1f", allocs), "-",
		gate("0 allocs/op", allocs == 0))
	r.AddSample(Sample{Name: "B13/append/binary-allocs", NsOp: allocs})
	return r
}
