package sim

import "testing"

// TestE12ArchiveSoak runs the archive-tier soak; its verdicts are
// deterministic (crash sweeps, typed faults, counters), so the full
// report is asserted even under -race.
func TestE12ArchiveSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("archive soak skipped in -short mode")
	}
	rep := RunE12()
	if !rep.Pass {
		t.Fatalf("E12 failed:\n%s", rep)
	}
	if len(rep.Rows) != 11 {
		t.Errorf("E12: rows=%d, want 11 (6 crash-sweep + 4 fault-kind + 1 rung)", len(rep.Rows))
	}
}

// TestB15Structure smoke-runs the archival-overhead table. The <5%
// overhead gate is a wall-clock ratio wfbench enforces in CI without
// -race (B9/B14 precedent); here the structure is asserted: three rows,
// blobs actually archived in the archive row, none in the down row.
func TestB15Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement smoke tests skipped in -short mode")
	}
	rep := RunB15()
	if len(rep.Rows) != 3 {
		t.Fatalf("B15: rows=%d, want 3 (%v)", len(rep.Rows), rep.Err)
	}
	if rep.Rows[1][4] == "0" {
		t.Errorf("B15: archive row archived nothing: %v", rep.Rows)
	}
	if rep.Rows[2][4] != "0" {
		t.Errorf("B15: down-archive row archived blobs: %v", rep.Rows)
	}
}
