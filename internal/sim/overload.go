package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/engine"
)

// b12Percentile returns the p-th percentile (0 < p <= 1) of the given
// latencies, computed exactly from the sorted raw samples.
func b12Percentile(lat []time.Duration, p float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s))*p+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// b12Outcome is one scheduler configuration's measured behavior under a
// fixed offered load.
type b12Outcome struct {
	accepted int
	shed     int
	wall     time.Duration
	lat      []time.Duration // arrival -> completion, accepted tasks only
}

// b12Offered drives an open-loop arrival process: n tasks of the given
// service time, paced at the given inter-arrival interval, each admitted
// with TrySubmit (shedding on a full queue). interval <= 0 degenerates to
// a closed loop using blocking Submit — the no-overload baseline.
func b12Offered(sched *engine.Scheduler, n int, service, interval time.Duration) b12Outcome {
	lat := make([]time.Duration, n) // slot per task; only accepted slots written
	accepted := make([]bool, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		if interval > 0 {
			// Open loop: arrivals keep their own clock, independent of how
			// the scheduler is coping (that independence is what makes the
			// load "offered" rather than self-throttled).
			if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
				time.Sleep(d)
			}
		}
		i := i
		arrived := time.Now()
		task := func() {
			time.Sleep(service)
			lat[i] = time.Since(arrived)
		}
		if interval <= 0 {
			sched.Submit(task)
			accepted[i] = true
			continue
		}
		if err := sched.TrySubmit(task); err == nil {
			accepted[i] = true
		}
	}
	sched.Wait()
	out := b12Outcome{wall: time.Since(start), shed: int(sched.Sheds())}
	for i, ok := range accepted {
		if ok {
			out.accepted++
			out.lat = append(out.lat, lat[i])
		}
	}
	return out
}

// RunB12 measures overload behavior of the bounded admission scheduler.
// A fleet of W workers serves fixed-cost tasks; capacity is W/service
// tasks per second. The no-overload baseline runs closed-loop at exactly
// that capacity. The overload rows then offer 2x capacity open-loop:
//
//   - with a bounded queue (2W) and shedding, the scheduler must keep
//     accepted-work latency bounded — queue wait can never exceed the
//     queue drain time — and keep goodput within 10% of the baseline
//     (shedding rejects work instead of destroying throughput);
//   - with an effectively unbounded queue, the same offered load makes
//     latency grow with the backlog — the contrast row motivating
//     admission control. Its latency column is reported but not gated
//     (its exact magnitude is timing-sensitive).
//
// The gates (shed > 0, p99 bounded, goodput >= 90% of baseline) are
// enforced by this table as run by wfbench; the test suite asserts the
// table's structure only, since wall-clock figures distort under -race
// (the B9 precedent).
func RunB12() *Report {
	r := &Report{
		ID:      "B12",
		Title:   "overload: bounded admission + shedding vs unbounded queueing at 2x offered load",
		Columns: []string{"mode", "workers", "queue", "offered", "accepted", "shed", "tasks/sec", "p50", "p99", "goodput vs base"},
		Pass:    true,
	}
	const (
		workers  = 4
		service  = 2 * time.Millisecond
		baseN    = 400 // closed-loop baseline tasks
		overN    = 800 // open-loop arrivals at 2x capacity
		maxQueue = 2 * workers
	)
	interval := service / (2 * workers) // 2x capacity inter-arrival gap

	row := func(mode string, queue string, offered string, out b12Outcome, vsBase float64) {
		tps := float64(out.accepted) / out.wall.Seconds()
		vs := "-"
		if vsBase > 0 {
			vs = fmt.Sprintf("%.2f", vsBase)
		}
		r.AddRow(mode, fmt.Sprint(workers), queue, offered,
			fmt.Sprint(out.accepted), fmt.Sprint(out.shed),
			fmt.Sprintf("%.0f", tps),
			fmtNs(float64(b12Percentile(out.lat, 0.50).Nanoseconds())),
			fmtNs(float64(b12Percentile(out.lat, 0.99).Nanoseconds())),
			vs)
		r.AddSample(Sample{Name: "B12/" + mode, NsOp: float64(out.wall.Nanoseconds()),
			Iters: 1, RecordsPerSec: tps})
	}

	// No-overload baseline: closed loop at capacity.
	base := b12Offered(engine.NewBoundedScheduler(workers, 0), baseN, service, 0)
	baseTps := float64(base.accepted) / base.wall.Seconds()
	row("baseline closed-loop", "0", "capacity", base, 0)

	// 2x overload, bounded queue, shedding.
	shed := b12Offered(engine.NewBoundedScheduler(workers, maxQueue), overN, service, interval)
	shedTps := float64(shed.accepted) / shed.wall.Seconds()
	goodput := shedTps / baseTps
	row("shed bounded-queue", fmt.Sprint(maxQueue), "2x capacity", shed, goodput)

	// 2x overload, effectively unbounded queue: every arrival is accepted
	// and the backlog turns into latency.
	unbounded := b12Offered(engine.NewBoundedScheduler(workers, overN), overN, service, interval)
	row("unbounded queue", fmt.Sprint(overN), "2x capacity", unbounded, 0)

	var errs []error
	if shed.shed == 0 {
		errs = append(errs, errors.New("B12: no work shed at 2x offered load with a bounded queue"))
	}
	// Accepted-work latency bound: service + full-queue drain, with 4x
	// headroom for scheduler noise.
	if limit := 4 * (service + time.Duration(maxQueue/workers)*service); b12Percentile(shed.lat, 0.99) > limit {
		errs = append(errs, fmt.Errorf("B12: shed-mode p99 %v exceeds bound %v", b12Percentile(shed.lat, 0.99), limit))
	}
	if goodput < 0.9 {
		errs = append(errs, fmt.Errorf("B12: goodput %.2fx of baseline, want >= 0.9", goodput))
	}
	if unbounded.accepted != overN || unbounded.shed != 0 {
		errs = append(errs, fmt.Errorf("B12: unbounded row shed %d of %d arrivals", unbounded.shed, overN))
	}
	if len(errs) > 0 {
		r.Pass = false
		r.Err = errors.Join(errs...)
	}
	return r
}
