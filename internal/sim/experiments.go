package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/fmtm"
	"repro/internal/model"
	"repro/internal/rm"
	"repro/internal/wal"
)

// RunAllExperiments runs E1–E13 and returns their reports.
func RunAllExperiments() []*Report {
	return []*Report{RunE1(), RunE2(), RunE3(), RunE4(), RunE5(), RunE6(), RunE7(), RunE8(), RunE9(), RunE10(), RunE11(), RunE12(), RunE13()}
}

// historyString renders a recorder history as a compact string.
func historyString(rec *rm.Recorder) string {
	var parts []string
	for _, e := range rec.Events() {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, " ")
}

// runSagaAsWorkflow translates and executes a saga on a fresh engine.
func runSagaAsWorkflow(spec *saga.Spec, dec rm.Decider) (*engine.Instance, *rm.Recorder, error) {
	e := engine.New()
	if err := fmtm.RegisterRuntime(e); err != nil {
		return nil, nil, err
	}
	rec := &rm.Recorder{}
	if err := fmtm.RegisterSaga(e, spec, fmtm.PureSagaBinding(spec), dec, rec); err != nil {
		return nil, nil, err
	}
	p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterProcess(p); err != nil {
		return nil, nil, err
	}
	inst, err := e.CreateInstance(spec.Name, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := inst.Start(); err != nil {
		return inst, rec, err
	}
	return inst, rec, nil
}

// runFlexibleAsWorkflow translates and executes a flexible transaction.
func runFlexibleAsWorkflow(spec *flexible.Spec, dec rm.Decider) (*engine.Instance, *rm.Recorder, error) {
	e := engine.New()
	if err := fmtm.RegisterRuntime(e); err != nil {
		return nil, nil, err
	}
	rec := &rm.Recorder{}
	if err := fmtm.RegisterFlexible(e, spec, fmtm.PureFlexibleBinding(spec), dec, rec); err != nil {
		return nil, nil, err
	}
	p, err := fmtm.TranslateFlexible(spec)
	if err != nil {
		return nil, nil, err
	}
	if err := e.RegisterProcess(p); err != nil {
		return nil, nil, err
	}
	inst, err := e.CreateInstance(spec.Name, nil, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := inst.Start(); err != nil {
		return inst, rec, err
	}
	return inst, rec, nil
}

// RunE1 reproduces Figure 2 and the appendix saga trace: for several saga
// sizes and every abort point, the workflow encoding's history satisfies
// the saga guarantee and equals the native executor's history.
func RunE1() *Report {
	r := &Report{
		ID:    "E1",
		Title: "saga as workflow (Fig. 2): guarantee T1..Tn or T1..Tj;Cj..C1 under every abort point",
		Columns: []string{
			"n", "abort at", "guarantee", "history = native", "history",
		},
		Pass: true,
	}
	for _, n := range []int{3, 5, 10} {
		for abortAt := 0; abortAt <= n; abortAt++ {
			spec := NStepSaga("s", n)
			mkInj := func() *rm.Injector {
				inj := rm.NewInjector()
				if abortAt > 0 {
					inj.AbortAlways(fmt.Sprintf("T%d", abortAt))
				}
				return inj
			}
			_, rec, err := runSagaAsWorkflow(spec, mkInj())
			if err != nil {
				r.Pass = false
				r.Err = err
				return r
			}
			guarantee := "ok"
			if err := saga.CheckGuarantee(spec, rec.Events()); err != nil {
				guarantee = "VIOLATED"
				r.Pass = false
			}
			nativeRec := &rm.Recorder{}
			ex := &saga.Executor{Decider: mkInj()}
			if _, err := ex.Execute(spec, fmtm.PureSagaBinding(spec), nativeRec); err != nil {
				r.Pass = false
				r.Err = err
				return r
			}
			same := "yes"
			if historyString(rec) != historyString(nativeRec) {
				same = "NO"
				r.Pass = false
			}
			at := "-"
			if abortAt > 0 {
				at = fmt.Sprintf("T%d", abortAt)
			}
			hist := historyString(rec)
			if n > 3 && abortAt != 2 {
				hist = fmt.Sprintf("(%d events)", len(rec.Events()))
			}
			r.AddRow(fmt.Sprint(n), at, guarantee, same, hist)
		}
	}
	return r
}

// RunE2 reproduces Figures 3–4 and the appendix flexible-transaction
// trace: every abort scenario of the appendix, executed through the
// generated workflow process, matches the described behaviour and the
// native executor.
func RunE2() *Report {
	r := &Report{
		ID:      "E2",
		Title:   "flexible transaction as workflow (Figs. 3-4): appendix abort scenarios",
		Columns: []string{"scenario", "result", "matches native", "history"},
		Pass:    true,
	}
	scenarios := []struct {
		name   string
		inject func(*rm.Injector)
	}{
		{"all commit (p1)", func(*rm.Injector) {}},
		{"T1 aborts (clean abort)", func(i *rm.Injector) { i.AbortAlways("T1") }},
		{"T2 aborts (compensate T1)", func(i *rm.Injector) { i.AbortAlways("T2") }},
		{"T4 aborts (T3 retried, p3)", func(i *rm.Injector) { i.AbortAlways("T4"); i.AbortN("T3", 2) }},
		{"T5 aborts (T7, p2)", func(i *rm.Injector) { i.AbortAlways("T5") }},
		{"T6 aborts (C5 then T7)", func(i *rm.Injector) { i.AbortAlways("T6") }},
		{"T8 aborts (C6 C5 then T7)", func(i *rm.Injector) { i.AbortAlways("T8") }},
	}
	for _, sc := range scenarios {
		spec := Fig3Flexible()
		inj := rm.NewInjector()
		sc.inject(inj)
		inst, rec, err := runFlexibleAsWorkflow(spec, inj)
		if err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		inj2 := rm.NewInjector()
		sc.inject(inj2)
		nativeRec := &rm.Recorder{}
		ex := &flexible.Executor{Decider: inj2}
		res, err := ex.Execute(spec, fmtm.PureFlexibleBinding(spec), nativeRec)
		if err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		same := "yes"
		if historyString(rec) != historyString(nativeRec) {
			same = "NO"
			r.Pass = false
		}
		outcome := "aborted"
		if res.Committed {
			outcome = "committed " + strings.Join(res.Path, ",")
		}
		wfResult := inst.Output().MustGet("Result").AsInt()
		if res.Committed != (wfResult == 0) {
			r.Pass = false
			outcome += " (workflow disagrees)"
		}
		r.AddRow(sc.name, outcome, same, historyString(rec))
	}
	return r
}

// e3Spec is the mixed specification the E3 pipeline run compiles.
const e3Spec = `
SAGA 'travel'
  STEP 'book_flight' COMPENSATION 'cancel_flight'
  STEP 'book_hotel'  COMPENSATION 'cancel_hotel'
  STEP 'book_car'    COMPENSATION 'cancel_car'
END 'travel'
FLEXIBLE 'multidb'
  SUB 'F1' COMPENSATABLE COMPENSATION 'FC1'
  SUB 'F2' PIVOT
  SUB 'F3' RETRIABLE
  PATH 'F1' 'F2'
  PATH 'F1' 'F3'
END 'multidb'
`

// RunE3 reproduces Figure 5: the full Exotica/FMTM pipeline from
// specification text to executable templates, plus rejection of invalid
// input at each stage.
func RunE3() *Report {
	r := &Report{
		ID:      "E3",
		Title:   "Exotica/FMTM pipeline (Fig. 5): spec -> check -> FDL -> import -> semantic check -> template",
		Columns: []string{"stage", "outcome"},
		Pass:    true,
	}
	res, err := fmtm.Pipeline(e3Spec)
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	r.AddRow("specification check", fmt.Sprintf("ok (%d sagas, %d flexible)", len(res.Specs.Sagas), len(res.Specs.Flexible)))
	r.AddRow("translation + FDL export", fmt.Sprintf("ok (%d bytes of FDL)", len(res.FDL)))
	r.AddRow("FDL import + semantic check", fmt.Sprintf("ok (%d processes, %d programs)", len(res.File.Processes), len(res.File.Programs)))

	// Run one instance of each template.
	e := engine.New()
	if err := fmtm.RegisterRuntime(e); err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	rec := &rm.Recorder{}
	inj := rm.NewInjector()
	sg := res.Specs.Sagas[0]
	fx := res.Specs.Flexible[0]
	err = fmtm.RegisterSaga(e, sg, fmtm.PureSagaBinding(sg), inj, rec)
	if err == nil {
		err = fmtm.RegisterFlexible(e, fx, fmtm.PureFlexibleBinding(fx), inj, rec)
	}
	if err == nil {
		err = fmtm.Install(e, res.File)
	}
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	for _, name := range []string{"travel", "multidb"} {
		inst, err := e.CreateInstance(name, nil, nil)
		if err == nil {
			err = inst.Start()
		}
		if err != nil || !inst.Finished() {
			r.Pass = false
			r.AddRow("instance "+name, fmt.Sprintf("FAILED: %v", err))
			continue
		}
		r.AddRow("instance "+name, "executed to completion")
	}

	// Invalid specs must be rejected with diagnostics.
	bad := map[string]string{
		"syntax error":           "SAGA 'x' STEP oops END 'x'",
		"ill-formed flexible":    "FLEXIBLE 'f' SUB 'p1' PIVOT SUB 'p2' PIVOT PATH 'p1' 'p2' END 'f'",
		"undeclared sub in path": "FLEXIBLE 'f' SUB 's' PIVOT PATH 'zz' END 'f'",
	}
	for name, src := range bad {
		if _, err := fmtm.Pipeline(src); err == nil {
			r.Pass = false
			r.AddRow("reject "+name, "NOT REJECTED")
		} else {
			r.AddRow("reject "+name, "rejected with diagnostic")
		}
	}
	return r
}

// RunE4 reproduces the §3.3 forward-recovery guarantee: crash the engine
// at every log record of a saga-as-workflow execution, recover, and
// require the identical history and final output.
func RunE4() *Report {
	r := &Report{
		ID:      "E4",
		Title:   "forward recovery (§3.3): crash at every navigation point, resume, identical outcome",
		Columns: []string{"workload", "log records", "crash points", "recovered ok"},
		Pass:    true,
	}
	type workload struct {
		name string
		mk   func() (*engine.Engine, string)
	}
	mkSagaEngine := func() (*engine.Engine, string) {
		spec := NStepSaga("s", 5)
		e := engine.New()
		if err := fmtm.RegisterRuntime(e); err != nil {
			panic(err)
		}
		inj := rm.NewInjector()
		inj.AbortAlways("T4")
		if err := fmtm.RegisterSaga(e, spec, fmtm.PureSagaBinding(spec), inj, &rm.Recorder{}); err != nil {
			panic(err)
		}
		p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
		if err != nil {
			panic(err)
		}
		if err := e.RegisterProcess(p); err != nil {
			panic(err)
		}
		return e, spec.Name
	}
	mkChainEngine := func() (*engine.Engine, string) {
		e := NewEngine()
		if err := e.RegisterProcess(Chain("chain", 20)); err != nil {
			panic(err)
		}
		return e, "chain"
	}
	for _, w := range []workload{{"saga n=5 abort@T4", mkSagaEngine}, {"chain n=20", mkChainEngine}} {
		// Baseline.
		e, proc := w.mk()
		clean := &wal.MemLog{}
		inst, err := e.CreateInstance(proc, nil, clean)
		if err == nil {
			err = inst.Start()
		}
		if err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		baseline := fmt.Sprint(trailStrings(inst))
		total := clean.Len()
		okAll := true
		for crashAt := 1; crashAt < total; crashAt++ {
			e2, proc2 := w.mk()
			log := &wal.MemLog{CrashAfter: crashAt}
			inst2, err := e2.CreateInstance(proc2, nil, log)
			if err != nil {
				okAll = false
				break
			}
			if err := inst2.Start(); !errors.Is(err, wal.ErrCrash) {
				okAll = false
				break
			}
			e3, _ := w.mk()
			rec, err := engine.Recover(e3, log.Records(), nil)
			if err != nil || !rec.Finished() || fmt.Sprint(trailStrings(rec)) != baseline {
				okAll = false
				break
			}
		}
		if !okAll {
			r.Pass = false
		}
		verdict := "yes"
		if !okAll {
			verdict = "NO"
		}
		r.AddRow(w.name, fmt.Sprint(total), fmt.Sprint(total-1), verdict)
	}
	return r
}

func trailStrings(inst *engine.Instance) []string {
	var out []string
	for _, ev := range inst.Trail() {
		out = append(out, ev.String())
	}
	return out
}

// RunE5 checks the §3.2 navigation semantics properties on random DAGs:
// every instance terminates with all activities terminated (DPE guarantees
// progress; the synchronizing or-join never deadlocks).
func RunE5() *Report {
	r := &Report{
		ID:      "E5",
		Title:   "navigation properties (§3.2): random DAGs always terminate; joins and DPE sound",
		Columns: []string{"seed range", "instances", "stuck", "violations"},
		Pass:    true,
	}
	const trials = 300
	stuck, violations := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rr := rand.New(rand.NewSource(seed))
		n := 2 + rr.Intn(14)
		proc := RandomDAG("rand", rr, n, 0.1+0.5*rr.Float64())
		e := engine.New()
		mustRegister(e, "coin", CoinProgram(seed))
		if err := e.RegisterProcess(proc); err != nil {
			violations++
			continue
		}
		inst, err := e.CreateInstance("rand", nil, nil)
		if err == nil {
			err = inst.Start()
		}
		if err != nil {
			violations++
			continue
		}
		if !inst.Finished() {
			stuck++
			continue
		}
		for i := 1; i <= n; i++ {
			if s, ok := inst.ActivityState(fmt.Sprintf("A%d", i)); !ok || s != engine.StateTerminated {
				violations++
				break
			}
		}
	}
	if stuck > 0 || violations > 0 {
		r.Pass = false
	}
	r.AddRow(fmt.Sprintf("0..%d", trials-1), fmt.Sprint(trials), fmt.Sprint(stuck), fmt.Sprint(violations))
	return r
}

// RunE6 checks the generalized (parallel) saga extension the paper's §4.1
// references: for a diamond-shaped saga, every abort point produces a
// history satisfying the generalized guarantee (committed steps all
// compensated, compensation after the compensations of committed
// dependents), including the concurrent in-flight-sibling behaviour linear
// sagas cannot exhibit.
func RunE6() *Report {
	r := &Report{
		ID:      "E6",
		Title:   "generalized (parallel) saga as workflow: guarantee under every abort point",
		Columns: []string{"abort at", "guarantee", "history"},
		Pass:    true,
	}
	spec := &saga.GeneralSpec{
		Name: "diamond",
		Steps: []saga.Step{
			{Name: "a", Compensation: "ca"},
			{Name: "b", Compensation: "cb"},
			{Name: "c", Compensation: "cc"},
			{Name: "d", Compensation: "cd"},
		},
		Deps: map[string][]string{"b": {"a"}, "c": {"a"}, "d": {"b", "c"}},
	}
	for _, victim := range []string{"", "a", "b", "c", "d"} {
		inj := rm.NewInjector()
		if victim != "" {
			inj.AbortAlways(victim)
		}
		e := engine.New()
		rec := &rm.Recorder{}
		err := fmtm.RegisterRuntime(e)
		if err == nil {
			err = fmtm.RegisterGeneralSaga(e, spec, fmtm.PureGeneralBinding(spec), inj, rec)
		}
		if err == nil {
			var proc *model.Process
			proc, err = fmtm.TranslateGeneralSaga(spec, fmtm.SagaOptions{})
			if err == nil {
				err = e.RegisterProcess(proc)
			}
		}
		if err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		inst, err := e.CreateInstance(spec.Name, nil, nil)
		if err == nil {
			err = inst.Start()
		}
		if err != nil || !inst.Finished() {
			r.Pass = false
			r.Err = err
			return r
		}
		verdict := "ok"
		if err := saga.CheckGeneralGuarantee(spec, rec.Events()); err != nil {
			verdict = "VIOLATED: " + err.Error()
			r.Pass = false
		}
		at := victim
		if at == "" {
			at = "-"
		}
		r.AddRow(at, verdict, historyString(rec))
	}
	return r
}
