package sim

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestFmtNs covers all four unit branches and their boundaries — the
// seconds case was missing entirely before PR 2, so anything slower than
// a second rendered as e.g. "1500.00ms".
func TestFmtNs(t *testing.T) {
	cases := []struct {
		ns   float64
		want string
	}{
		{0, "0ns"},
		{1, "1ns"},
		{999, "999ns"},
		{1e3, "1.0us"},
		{1500, "1.5us"},
		{999_900, "999.9us"},
		{1e6, "1.00ms"},
		{2.5e6, "2.50ms"},
		{999_990_000, "999.99ms"},
		{1e9, "1.00s"},
		{1.5e9, "1.50s"},
		{12.34e9, "12.34s"},
	}
	for _, c := range cases {
		if got := fmtNs(c.ns); got != c.want {
			t.Errorf("fmtNs(%v) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// TestMeasureStats sanity-checks the warm-up calibration: the reported
// mean and minimum must be positive, the minimum can't exceed the mean,
// and a trivial function must have measured more than one iteration
// (the pre-PR2 single-cold-call calibration could land on iters=1).
func TestMeasureStats(t *testing.T) {
	calls := 0
	tm := measureStats(func() { calls++ })
	if tm.MeanNs <= 0 || tm.MinNs <= 0 {
		t.Fatalf("non-positive timing: %+v", tm)
	}
	if tm.MinNs > tm.MeanNs*1.01 {
		t.Errorf("min %v exceeds mean %v", tm.MinNs, tm.MeanNs)
	}
	if tm.Iters < 2 {
		t.Errorf("iters = %d, want >= 2 for a trivial op", tm.Iters)
	}
	if calls <= tm.Iters {
		t.Errorf("calls = %d, want > timed iters %d (warm-up must run)", calls, tm.Iters)
	}
}

// TestBenchFileSchema round-trips a BenchFile through disk and checks
// the schema-stable fields cmd/wfbench relies on.
func TestBenchFileSchema(t *testing.T) {
	bf := NewBenchFile()
	if bf.Schema != BenchSchema || bf.Go == "" || bf.OS == "" || bf.Arch == "" {
		t.Fatalf("runtime identity missing: %+v", bf)
	}
	r := &Report{ID: "B0", Title: "probe", Columns: []string{"x"}, Pass: true}
	r.AddRow("1")
	r.AddSample(Sample{Name: "B0/case", NsOp: 42, MinNsOp: 40, Iters: 3, RecordsPerSec: 10})
	bf.Add(r)
	failed := &Report{ID: "E0", Title: "broken", Pass: false, Err: errors.New("boom")}
	bf.Add(failed)

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := bf.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchFile
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Schema != BenchSchema || len(back.Reports) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	b0 := back.Reports[0]
	if !b0.Pass || b0.ID != "B0" || len(b0.Samples) != 1 || b0.Samples[0].NsOp != 42 {
		t.Fatalf("report 0: %+v", b0)
	}
	if b0.Metrics == nil {
		t.Fatal("report 0: metric snapshot missing")
	}
	e0 := back.Reports[1]
	if e0.Pass || e0.Error != "boom" {
		t.Fatalf("report 1: %+v", e0)
	}
}
