package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/fmtm"
	"repro/internal/model"
	"repro/internal/rm"
	"repro/internal/wal"
)

func TestWorkloadGenerators(t *testing.T) {
	e := NewEngine()
	chain := Chain("chain", 10)
	fan := FanOutIn("fan", 5)
	dpe := DPEChain("dpe", 10)
	for _, p := range []*model.Process{chain, fan, dpe} {
		if err := p.Validate(nil); err != nil {
			t.Fatalf("generated process %s invalid: %v", p.Name, err)
		}
		if err := e.RegisterProcess(p); err != nil {
			t.Fatal(err)
		}
	}
	// Chain executes all 10.
	inst, err := e.CreateInstance("chain", nil, wal.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil || !inst.Finished() {
		t.Fatalf("chain: %v", err)
	}
	if got := len(inst.ProgramRuns()); got != 10 {
		t.Fatalf("chain runs = %d", got)
	}
	// Fan executes A + 5 workers + Z.
	inst2, _ := e.CreateInstance("fan", nil, wal.Discard)
	if err := inst2.Start(); err != nil || !inst2.Finished() {
		t.Fatalf("fan: %v", err)
	}
	if got := len(inst2.ProgramRuns()); got != 7 {
		t.Fatalf("fan runs = %d", got)
	}
	// DPE chain executes only the aborting head.
	inst3, _ := e.CreateInstance("dpe", nil, wal.Discard)
	if err := inst3.Start(); err != nil || !inst3.Finished() {
		t.Fatalf("dpe: %v", err)
	}
	if got := len(inst3.ProgramRuns()); got != 1 {
		t.Fatalf("dpe runs = %d", got)
	}
}

func TestRandomDAGGeneratorValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := RandomDAG("rand", r, 2+r.Intn(12), 0.4)
		if err := p.Validate(nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomFlexibleWellFormed(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		spec := RandomFlexible("rf", r, 1+r.Intn(4))
		if err := spec.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		trie, err := flexible.BuildTrie(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := trie.CheckWellFormed(); err != nil {
			t.Fatalf("seed %d: generator made an ill-formed spec: %v", seed, err)
		}
		// And it translates and runs.
		p, err := fmtm.TranslateFlexible(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_ = p
	}
}

// TestRandomFlexibleEquivalence: the generated random flexible specs run
// identically as workflows and natively under random failure scripts.
func TestRandomFlexibleEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		spec := RandomFlexible("rf", r, 1+r.Intn(3))
		mkInj := func() *rm.Injector {
			rr := rand.New(rand.NewSource(seed * 77))
			inj := rm.NewInjector()
			for _, sub := range spec.Subs {
				if sub.Retriable {
					if rr.Intn(3) == 0 {
						inj.AbortN(sub.Name, 1+rr.Intn(2))
					}
					continue
				}
				if rr.Intn(3) == 0 {
					inj.AbortAlways(sub.Name)
				}
			}
			return inj
		}
		_, rec, err := runFlexibleAsWorkflow(spec, mkInj())
		if err != nil {
			t.Fatalf("seed %d: workflow: %v", seed, err)
		}
		nativeRec := &rm.Recorder{}
		ex := &flexible.Executor{Decider: mkInj()}
		if _, err := ex.Execute(spec, fmtm.PureFlexibleBinding(spec), nativeRec); err != nil {
			t.Fatalf("seed %d: native: %v", seed, err)
		}
		if historyString(rec) != historyString(nativeRec) {
			t.Fatalf("seed %d histories diverge:\nworkflow: %s\nnative:   %s",
				seed, historyString(rec), historyString(nativeRec))
		}
	}
}

func TestExperimentsAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	for _, rep := range RunAllExperiments() {
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", rep.ID, rep)
		}
		if !strings.Contains(rep.String(), rep.ID) {
			t.Errorf("%s: report rendering broken", rep.ID)
		}
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "X", Title: "demo", Columns: []string{"a", "bb"}, Pass: true}
	r.AddRow("1", "2")
	out := r.String()
	if !strings.Contains(out, "PASS") || !strings.Contains(out, "demo") {
		t.Fatalf("report: %s", out)
	}
	r.Pass = false
	if !strings.Contains(r.String(), "FAIL") {
		t.Fatal("fail verdict missing")
	}
}

// TestFastBenchTables smoke-runs the cheap measurement harnesses so the
// table-generating code is covered by the test suite; the full sweep
// (including the multi-second contention series) is cmd/wfbench's job.
func TestFastBenchTables(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement smoke tests skipped in -short mode")
	}
	for _, f := range []func() *Report{RunB1, RunB3, RunB5, RunB7, RunB8} {
		rep := f()
		if !rep.Pass || len(rep.Rows) == 0 {
			t.Errorf("%s: pass=%v rows=%d", rep.ID, rep.Pass, len(rep.Rows))
		}
	}
	// B10's >=10x gate is a replayed-record ratio — a deterministic count,
	// not a wall-clock figure — so it holds under -race too.
	if rep := RunB10(); !rep.Pass || len(rep.Rows) != 6 {
		t.Errorf("B10: pass=%v rows=%d, want pass with 6 rows (%v)", rep.Pass, len(rep.Rows), rep.Err)
	}
	// B9's >=5x speedup gate is a wall-clock ratio that the race
	// detector's instrumentation distorts (compute slows, so the fsync
	// amortization matters relatively less), and even the mean batch size
	// is load-sensitive: when the whole suite races for CPU the fleet
	// workers serialize and batches of one are correct behavior. wfbench
	// enforces the gate in CI without -race, and the batching mechanism
	// itself is pinned deterministically by the wal package
	// (TestGroupCommitWindowAndMaxBatch); here only the table structure
	// is asserted.
	rep := RunB9()
	if len(rep.Rows) != 6 {
		t.Errorf("B9: rows=%d, want 6", len(rep.Rows))
	}
	last := rep.Rows[len(rep.Rows)-1]
	if mean := last[6]; mean == "-" {
		t.Errorf("B9: fleet-32 group commit row reports no batch stats")
	}
	// B12's p99/goodput gates are wall-clock figures wfbench enforces in
	// CI without -race; here the structure is asserted: three rows, work
	// actually shed on the bounded-queue row, nothing shed on the others.
	b12 := RunB12()
	if len(b12.Rows) != 3 {
		t.Fatalf("B12: rows=%d, want 3", len(b12.Rows))
	}
	if shed := b12.Rows[1][5]; shed == "0" {
		t.Errorf("B12: bounded-queue row shed nothing at 2x offered load")
	}
	if b12.Rows[0][5] != "0" || b12.Rows[2][5] != "0" {
		t.Errorf("B12: baseline/unbounded rows shed work: %v", b12.Rows)
	}
	// B14's scaling/p99 gates are wall-clock figures wfbench enforces in
	// CI without -race; here the structure is asserted: a closed-loop
	// calibration row plus one open-loop row per shard count, with the
	// saturated 1-shard row shedding work.
	b14 := RunB14()
	if len(b14.Rows) != 5 {
		t.Fatalf("B14: rows=%d, want 5 (calibration + shards 1/2/4/8)", len(b14.Rows))
	}
	if shed := b14.Rows[1][4]; shed == "0" {
		t.Errorf("B14: 1-shard row shed nothing at 4.5x calibrated capacity")
	}
}

func TestSimulateSaga(t *testing.T) {
	spec := NStepSaga("s", 4)
	// No failures: always commits, never compensates.
	res, err := SimulateSaga(spec, nil, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitRate != 1 || res.MeanCompensations != 0 {
		t.Fatalf("clean run: %+v", res)
	}
	// T3 aborts with p=1: always aborts at step 3, compensating 2 steps.
	res, err = SimulateSaga(spec, map[string]float64{"T3": 1}, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitRate != 0 || res.AbortAt[2] != 1 || res.MeanCompensations != 2 {
		t.Fatalf("forced abort: %+v", res)
	}
	// Intermediate probability: commit rate in (0,1), determinism by seed.
	a, err := SimulateSaga(spec, map[string]float64{"T2": 0.3}, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SimulateSaga(spec, map[string]float64{"T2": 0.3}, 2000, 7)
	if a.CommitRate != b.CommitRate {
		t.Fatal("not deterministic by seed")
	}
	if a.CommitRate < 0.6 || a.CommitRate > 0.8 {
		t.Fatalf("commit rate = %v, want about 0.7", a.CommitRate)
	}
	// Invalid spec rejected.
	if _, err := SimulateSaga(&saga.Spec{}, nil, 1, 1); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestSimulateFlexible(t *testing.T) {
	spec := Fig3Flexible()
	// No failures: p1 always.
	res, err := SimulateFlexible(spec, nil, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.PathRate["T1,T2,T4,T5,T6,T8"] != 1 || res.AbortRate != 0 {
		t.Fatalf("clean run: %+v", res)
	}
	// T8 always aborts: p2 always, exactly one switch.
	res, err = SimulateFlexible(spec, map[string]float64{"T8": 1}, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.PathRate["T1,T2,T4,T7"] != 1 || res.MeanSwitches != 1 {
		t.Fatalf("forced p2: %+v", res)
	}
	// Moderate failure everywhere non-retriable: mass distributes over the
	// three paths plus global abort, in preference order p1 first.
	abort := map[string]float64{}
	for _, sub := range spec.Subs {
		if !sub.Retriable {
			abort[sub.Name] = 0.2
		}
	}
	res, err = SimulateFlexible(spec, abort, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	paths := res.sortedPaths()
	if len(paths) == 0 || paths[0] != "T1,T2,T4,T5,T6,T8" {
		t.Fatalf("p1 should dominate at p=0.2: %v %v", paths, res.PathRate)
	}
	if res.AbortRate == 0 || res.AbortRate > 0.5 {
		t.Fatalf("abort rate = %v", res.AbortRate)
	}
	sum := res.AbortRate
	for _, v := range res.PathRate {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("rates sum to %v", sum)
	}
	// Ill-formed spec rejected.
	bad := Fig3Flexible()
	bad.Subs[4] = flexible.SubSpec{Name: "T5"} // pivot: breaks well-formedness
	if _, err := SimulateFlexible(bad, nil, 1, 1); err == nil {
		t.Fatal("ill-formed spec accepted")
	}
}

func TestRunS1(t *testing.T) {
	rep := RunS1()
	if !rep.Pass || len(rep.Rows) != 5 {
		t.Fatalf("S1: %+v", rep)
	}
	// At p=0, everything commits on p1.
	if rep.Rows[0][1] != "1.000" || rep.Rows[0][4] != "0.000" {
		t.Fatalf("p=0 row: %v", rep.Rows[0])
	}
}
