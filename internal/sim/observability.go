package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
)

// RunB11 measures the cost of the live observability plane on the hot
// path: the same fleet-32 chain workload over a shared group-commit WAL
// is run (a) with nothing attached to the event bus — the idle fast
// path, one atomic load per would-be publish; (b) with the flight
// recorder attached as a synchronous tap; (c) with an SSE-like
// subscriber that JSON-encodes every event off a bounded queue, the
// shape of cmd/wfrun's /events handler. Each mode reports its best of
// three runs. The acceptance gates are the PR's zero-cost contract:
// the flight recorder must stay within 5% of the no-subscriber
// records/sec, and — being a synchronous tap — must drop nothing.
func RunB11() *Report {
	r := &Report{
		ID:      "B11",
		Title:   "observability overhead: bus idle vs. flight recorder vs. SSE subscriber (fleet 32, shared group-commit WAL)",
		Columns: []string{"mode", "wall", "records/sec", "events", "drops", "vs idle"},
		Pass:    true,
	}
	dir, err := os.MkdirTemp("", "wfbench-obs")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)

	proc := Chain("b11", b9Chain)
	recsPerInst := 2*b9Chain + 2
	const fleet, parallel = 32, 16

	type outcome struct {
		recsPerSec float64
		wallNs     float64
		published  int64
		drops      int64
	}
	run := func(mode string) (outcome, error) {
		flog, err := wal.OpenFileLog(filepath.Join(dir, "b11.wal"), wal.WithFsync())
		if err != nil {
			return outcome{}, err
		}
		g := wal.NewGroupCommitLog(flog, wal.GroupWithMetricsRegistry(obs.NewRegistry()))

		bus := obs.NewBus()
		var detach func()
		var sub *obs.Subscription
		var drained sync.WaitGroup
		switch mode {
		case "flight recorder":
			rec := obs.NewRecorder(obs.DefaultRecorderSize)
			detach = bus.Attach(rec.Record)
		case "sse subscriber":
			sub = bus.Subscribe(256)
			enc := json.NewEncoder(io.Discard)
			drained.Add(1)
			go func() {
				defer drained.Done()
				for ev := range sub.Events() {
					_ = enc.Encode(ev)
				}
			}()
		}

		e := engine.New(engine.WithBus(bus))
		mustRegister(e, "ok", OKProgram)
		if err := e.RegisterProcess(proc); err != nil {
			return outcome{}, err
		}
		res, err := e.RunFleet(engine.FleetOptions{
			Process: proc.Name, N: fleet, Parallel: parallel, Log: g,
		})
		if err == nil && res.Failed > 0 {
			err = fmt.Errorf("%d of %d instances failed: %v", res.Failed, fleet, res.Err)
		}
		if cerr := g.Close(); err == nil {
			err = cerr
		}
		if sub != nil {
			bus.Unsubscribe(sub)
			drained.Wait()
		}
		if detach != nil {
			detach()
		}
		if err != nil {
			return outcome{}, err
		}
		return outcome{
			recsPerSec: float64(fleet*recsPerInst) / res.Elapsed.Seconds(),
			wallNs:     float64(res.Elapsed.Nanoseconds()),
			published:  bus.Published(),
			drops:      bus.Dropped(),
		}, nil
	}
	best := func(mode string) (outcome, error) {
		var top outcome
		for i := 0; i < 3; i++ {
			out, err := run(mode)
			if err != nil {
				return outcome{}, err
			}
			if out.recsPerSec > top.recsPerSec {
				top = out
			}
		}
		return top, nil
	}

	idle, err := best("idle")
	if err == nil {
		var rec, sse outcome
		if rec, err = best("flight recorder"); err == nil {
			sse, err = best("sse subscriber")
		}
		if err == nil {
			row := func(mode string, out outcome) {
				events := "-"
				if out.published > 0 {
					events = fmt.Sprint(out.published)
				}
				r.AddRow(mode, fmtNs(out.wallNs), fmt.Sprintf("%.0f", out.recsPerSec),
					events, fmt.Sprint(out.drops),
					fmt.Sprintf("%.2f", out.recsPerSec/idle.recsPerSec))
				r.AddSample(Sample{Name: "B11/" + mode, NsOp: out.wallNs, Iters: 1,
					RecordsPerSec: out.recsPerSec})
			}
			row("idle (no subscriber)", idle)
			row("flight recorder", rec)
			row("sse subscriber", sse)
			if rec.recsPerSec < 0.95*idle.recsPerSec {
				r.Pass = false
				r.Err = fmt.Errorf("B11: flight recorder throughput %.0f rec/s is below 95%% of idle %.0f rec/s",
					rec.recsPerSec, idle.recsPerSec)
			}
			if rec.drops != 0 {
				r.Pass = false
				r.Err = fmt.Errorf("B11: flight recorder dropped %d events; a synchronous tap must drop none", rec.drops)
			}
		}
	}
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("B11: %w", err)
	}
	return r
}
