package sim

import (
	"encoding/json"
	"os"
	"runtime"

	"repro/internal/obs"
)

// BenchSchema identifies the wfbench JSON layout; bump it when a field
// changes meaning so trajectory tooling can refuse mixed files.
const BenchSchema = "wfbench/v1"

// BenchFile is the machine-readable output of a wfbench run: one entry
// per experiment/benchmark report, in run order, so CI can archive
// BENCH_<PR>.json files and diff performance across PRs.
type BenchFile struct {
	Schema  string        `json:"schema"`
	Go      string        `json:"go"`
	OS      string        `json:"os"`
	Arch    string        `json:"arch"`
	Reports []BenchReport `json:"reports"`
}

// BenchReport is one report plus the process-wide metric snapshot taken
// when the report was added — the delta between consecutive snapshots is
// what that run contributed.
type BenchReport struct {
	ID      string        `json:"id"`
	Title   string        `json:"title"`
	Pass    bool          `json:"pass"`
	Error   string        `json:"error,omitempty"`
	Columns []string      `json:"columns,omitempty"`
	Rows    [][]string    `json:"rows,omitempty"`
	Samples []Sample      `json:"samples,omitempty"`
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// NewBenchFile stamps the runtime identity.
func NewBenchFile() *BenchFile {
	return &BenchFile{
		Schema: BenchSchema,
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
	}
}

// Add converts a Report and appends it together with the current
// obs.Default snapshot.
func (b *BenchFile) Add(r *Report) {
	br := BenchReport{
		ID:      r.ID,
		Title:   r.Title,
		Pass:    r.Pass,
		Columns: r.Columns,
		Rows:    r.Rows,
		Samples: r.Samples,
	}
	if r.Err != nil {
		br.Error = r.Err.Error()
	}
	br.Metrics = obs.Default.Snapshot()
	b.Reports = append(b.Reports, br)
}

// WriteFile serializes the bench file as indented JSON.
func (b *BenchFile) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
