package sim

import (
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/wal"
)

// TestRunB16 asserts the bounded-rung gate. Like B10, the >=10x gate is
// a records-read ratio — a deterministic count, not a wall-clock figure
// — so it holds under -race too.
func TestRunB16(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-128 trail generation skipped in -short mode")
	}
	rep := RunB16()
	if !rep.Pass || len(rep.Rows) != 2 {
		t.Fatalf("B16: pass=%v rows=%d (%v)\n%s", rep.Pass, len(rep.Rows), rep.Err, rep)
	}
	if rep.Rows[1][1] == wal.SourceFullReplay {
		t.Errorf("B16: bounded row used the full-replay rung:\n%s", rep)
	}
}

// bucketIndex locates the decade bucket v falls into; the satellite
// agreement gate is "within one decade bucket".
func bucketIndex(snap obs.HistogramSnapshot, v int64) int {
	for i, b := range snap.Buckets {
		if b.LE == -1 || v <= b.LE {
			return i
		}
	}
	return len(snap.Buckets) - 1
}

// TestPairQuantilesAgreeWithRegistryHistogram runs a single-program
// chain workload and compares the per-program latency quantiles wfquery
// derives from dispatch/finished event pairs against the metric
// registry's engine.program.ns histogram on the same run: the
// observation counts must match exactly, and every quantile must land
// within one decade bucket of the registry's estimate (the pair wall
// time includes dispatch overhead the program timer excludes, so exact
// equality is not the contract — same-decade is).
func TestPairQuantilesAgreeWithRegistryHistogram(t *testing.T) {
	const steps = 40
	proc := Chain("lat", steps)
	reg := obs.NewRegistry()
	bus := obs.NewBus()
	var mu sync.Mutex
	var evs []obs.Event
	detach := bus.Attach(func(ev obs.Event) {
		mu.Lock()
		evs = append(evs, ev)
		mu.Unlock()
	})
	defer detach()

	e := engine.New(engine.WithMetrics(reg), engine.WithBus(bus))
	mustRegister(e, "ok", OKProgram)
	if err := e.RegisterProcess(proc); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance(proc.Name, nil, wal.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil || !inst.Finished() {
		t.Fatalf("start: %v finished=%v", err, inst.Finished())
	}

	c := history.NewContinuous()
	for _, ev := range evs {
		c.Feed(history.FromObs(ev))
	}
	pair, ok := c.PairHistogram("ok")
	if !ok {
		t.Fatal("no pair histogram for program ok")
	}
	progNs := reg.Histogram("engine.program.ns").SnapshotNow()
	if pair.Count != progNs.Count || pair.Count != steps {
		t.Fatalf("pair count %d, engine.program.ns count %d, want %d", pair.Count, progNs.Count, steps)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		pi := bucketIndex(pair, pair.Quantile(q))
		ri := bucketIndex(progNs, progNs.Quantile(q))
		if d := pi - ri; d < -1 || d > 1 {
			t.Errorf("q%.0f: pair bucket %d vs registry bucket %d (pair=%dns registry=%dns) — more than one decade apart",
				q*100, pi, ri, pair.Quantile(q), progNs.Quantile(q))
		}
	}
}
