package sim

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/model"
	"repro/internal/rm"
	"repro/internal/txdb"
	"repro/internal/wal"
)

// RunAllBenchTables runs the B1–B8 harness tables (coarse wall-clock
// versions of the bench_test.go benchmarks, for cmd/wfbench).
func RunAllBenchTables() []*Report {
	return []*Report{RunB1(), RunB2(), RunB3(), RunB4(), RunB5(), RunB6(), RunB7(), RunB8()}
}

// measure runs f repeatedly for at least minDuration and returns ns/op.
func measure(f func()) float64 {
	const minDuration = 30 * time.Millisecond
	// Warm up and calibrate.
	start := time.Now()
	f()
	per := time.Since(start)
	if per <= 0 {
		per = time.Nanosecond
	}
	iters := int(minDuration/per) + 1
	start = time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// RunB1 measures navigation throughput across topologies.
func RunB1() *Report {
	r := &Report{
		ID:      "B1",
		Title:   "navigation throughput by topology",
		Columns: []string{"topology", "activities", "ns/instance", "activities/sec"},
		Pass:    true,
	}
	cases := []struct {
		name string
		proc *model.Process
		acts int
	}{
		{"chain", Chain("c10", 10), 10},
		{"chain", Chain("c100", 100), 100},
		{"chain", Chain("c1000", 1000), 1000},
		{"fan-out/in", FanOutIn("f10", 10), 12},
		{"fan-out/in", FanOutIn("f100", 100), 102},
		{"dpe-chain", DPEChain("d100", 100), 100},
	}
	for _, c := range cases {
		e := NewEngine()
		if err := e.RegisterProcess(c.proc); err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		ns := measure(func() {
			inst, err := e.CreateInstance(c.proc.Name, nil, wal.Discard)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(fmt.Sprintf("B1 %s: %v", c.proc.Name, err))
			}
		})
		r.AddRow(c.name, strconv.Itoa(c.acts), fmtNs(ns), fmt.Sprintf("%.0f", float64(c.acts)/(ns/1e9)))
	}
	return r
}

// RunB2 compares saga-as-workflow against the native saga executor.
func RunB2() *Report {
	r := &Report{
		ID:      "B2",
		Title:   "saga: workflow encoding (Fig. 2) vs native executor",
		Columns: []string{"n", "abort", "native ns/op", "workflow ns/op", "overhead x"},
		Pass:    true,
	}
	for _, n := range []int{5, 10, 20, 50} {
		for _, abort := range []bool{false, true} {
			spec := NStepSaga("s", n)
			abortName := ""
			if abort {
				abortName = fmt.Sprintf("T%d", n/2)
			}
			mkDec := func() rm.Decider {
				inj := rm.NewInjector()
				if abortName != "" {
					inj.AbortAlways(abortName)
				}
				return inj
			}
			nativeNs := measure(func() {
				ex := &saga.Executor{Decider: mkDec()}
				if _, err := ex.Execute(spec, fmtm.PureSagaBinding(spec), nil); err != nil {
					panic(err)
				}
			})
			// Engine and template are prepared once (template reuse is how
			// FlowMark amortizes translation); per-op cost is instance
			// creation + navigation.
			e := engine.New()
			if err := fmtm.RegisterRuntime(e); err != nil {
				panic(err)
			}
			dec := mkDec()
			if err := fmtm.RegisterSaga(e, spec, fmtm.PureSagaBinding(spec), dec, nil); err != nil {
				panic(err)
			}
			p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
			if err != nil {
				panic(err)
			}
			if err := e.RegisterProcess(p); err != nil {
				panic(err)
			}
			wfNs := measure(func() {
				inst, err := e.CreateInstance(spec.Name, nil, wal.Discard)
				if err == nil {
					err = inst.Start()
				}
				if err != nil || !inst.Finished() {
					panic(err)
				}
			})
			ab := "-"
			if abort {
				ab = abortName
			}
			r.AddRow(strconv.Itoa(n), ab, fmtNs(nativeNs), fmtNs(wfNs), fmt.Sprintf("%.1f", wfNs/nativeNs))
		}
	}
	return r
}

// RunB3 compares flexible-as-workflow against the native executor on the
// Figure 3 example, forcing each execution path.
func RunB3() *Report {
	r := &Report{
		ID:      "B3",
		Title:   "flexible transaction: workflow encoding (Fig. 4) vs native executor",
		Columns: []string{"scenario", "native ns/op", "workflow ns/op", "overhead x"},
		Pass:    true,
	}
	scenarios := []struct {
		name   string
		inject func(*rm.Injector)
	}{
		{"p1 commits", func(*rm.Injector) {}},
		{"p2 via T8 abort", func(i *rm.Injector) { i.AbortAlways("T8") }},
		{"p3 via T4 abort", func(i *rm.Injector) { i.AbortAlways("T4") }},
		{"clean abort via T2", func(i *rm.Injector) { i.AbortAlways("T2") }},
	}
	for _, sc := range scenarios {
		spec := Fig3Flexible()
		mkDec := func() rm.Decider {
			inj := rm.NewInjector()
			sc.inject(inj)
			return inj
		}
		nativeNs := measure(func() {
			ex := &flexible.Executor{Decider: mkDec()}
			if _, err := ex.Execute(spec, fmtm.PureFlexibleBinding(spec), nil); err != nil {
				panic(err)
			}
		})
		e := engine.New()
		if err := fmtm.RegisterRuntime(e); err != nil {
			panic(err)
		}
		if err := fmtm.RegisterFlexible(e, spec, fmtm.PureFlexibleBinding(spec), mkDec(), nil); err != nil {
			panic(err)
		}
		p, err := fmtm.TranslateFlexible(spec)
		if err != nil {
			panic(err)
		}
		if err := e.RegisterProcess(p); err != nil {
			panic(err)
		}
		wfNs := measure(func() {
			inst, err := e.CreateInstance(spec.Name, nil, wal.Discard)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(err)
			}
		})
		r.AddRow(sc.name, fmtNs(nativeNs), fmtNs(wfNs), fmt.Sprintf("%.1f", wfNs/nativeNs))
	}
	return r
}

// RunB4 measures FMTM translation and FDL round-trip cost vs. spec size.
func RunB4() *Report {
	r := &Report{
		ID:      "B4",
		Title:   "Exotica/FMTM translation and FDL round trip vs. saga size",
		Columns: []string{"steps", "translate ns/op", "fdl export ns/op", "fdl parse ns/op"},
		Pass:    true,
	}
	for _, n := range []int{10, 100, 1000} {
		spec := NStepSaga("s", n)
		trNs := measure(func() {
			if _, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{}); err != nil {
				panic(err)
			}
		})
		p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
		if err != nil {
			panic(err)
		}
		file := &fdl.File{Types: p.Types, Processes: []*model.Process{p}}
		var text string
		expNs := measure(func() { text = fdl.Export(file) })
		parseNs := measure(func() {
			if _, err := fdl.Parse(text); err != nil {
				panic(err)
			}
		})
		r.AddRow(strconv.Itoa(n), fmtNs(trNs), fmtNs(expNs), fmtNs(parseNs))
	}
	return r
}

// RunB5 measures WAL replay: recovery time vs. log length.
func RunB5() *Report {
	r := &Report{
		ID:      "B5",
		Title:   "forward recovery: replay time vs. log length",
		Columns: []string{"chain length", "log records", "recover ns/op", "ns/record", "records/sec"},
		Pass:    true,
	}
	for _, n := range []int{100, 1000, 10000} {
		e := NewEngine()
		proc := Chain(fmt.Sprintf("c%d", n), n)
		if err := e.RegisterProcess(proc); err != nil {
			panic(err)
		}
		log := &wal.MemLog{}
		inst, err := e.CreateInstance(proc.Name, nil, log)
		if err == nil {
			err = inst.Start()
		}
		if err != nil {
			panic(err)
		}
		records := log.Records()
		recNs := measure(func() {
			rec, err := engine.Recover(e, records, wal.Discard)
			if err != nil || !rec.Finished() {
				panic(err)
			}
		})
		r.AddRow(strconv.Itoa(n), strconv.Itoa(len(records)), fmtNs(recNs),
			fmt.Sprintf("%.0f", recNs/float64(len(records))),
			fmt.Sprintf("%.0f", float64(len(records))/(recNs/1e9)))
	}
	return r
}

// RunB6 measures txdb commit throughput and deadlock aborts under
// contention.
func RunB6() *Report {
	r := &Report{
		ID:      "B6",
		Title:   "txdb (strict 2PL): throughput and deadlock aborts vs. concurrency",
		Columns: []string{"workers", "keyspace", "txs", "commits/sec", "deadlock aborts"},
		Pass:    true,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, keys := range []int{4, 1024} {
			s := txdb.Open("bench")
			const txPerWorker = 2000
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < txPerWorker; i++ {
						k1 := fmt.Sprintf("k%d", rr.Intn(keys))
						k2 := fmt.Sprintf("k%d", rr.Intn(keys))
						_ = s.DoRetry(50, func(tx *txdb.Tx) error {
							if _, _, err := tx.Get(k1); err != nil {
								return err
							}
							// Widen the window between lock acquisitions so
							// transactions actually overlap; without it the
							// per-transaction critical section is too short
							// for the deadlock series to show anything.
							runtime.Gosched()
							if err := tx.Put(k2, "v"); err != nil {
								return err
							}
							return tx.Put(k1, "v")
						})
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			commits, _, deadlocks := s.Stats()
			total := workers * txPerWorker
			r.AddRow(strconv.Itoa(workers), strconv.Itoa(keys), strconv.Itoa(total),
				fmt.Sprintf("%.0f", float64(commits)/elapsed.Seconds()), fmt.Sprint(deadlocks))
		}
	}
	return r
}

// RunB7 runs the design ablations: per-event WAL vs. disabled, and the
// relative cost of a dead-path-eliminated activity vs. an executed one.
func RunB7() *Report {
	r := &Report{
		ID:      "B7",
		Title:   "ablations: WAL on/off; executed vs. dead-path-eliminated activity cost",
		Columns: []string{"configuration", "ns/instance", "vs baseline x"},
		Pass:    true,
	}
	const n = 200
	e := NewEngine()
	live := Chain("live", n)
	dead := DPEChain("dead", n)
	for _, proc := range []*model.Process{live, dead} {
		if err := e.RegisterProcess(proc); err != nil {
			panic(err)
		}
	}
	run := func(name string, log wal.Log) float64 {
		return measure(func() {
			inst, err := e.CreateInstance(name, nil, log)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(err)
			}
		})
	}
	base := run("live", wal.Discard)
	r.AddRow(fmt.Sprintf("chain n=%d, WAL off (baseline)", n), fmtNs(base), "1.0")
	withWal := run("live", &wal.MemLog{})
	r.AddRow(fmt.Sprintf("chain n=%d, in-memory WAL", n), fmtNs(withWal), fmt.Sprintf("%.2f", withWal/base))
	dpe := run("dead", wal.Discard)
	r.AddRow(fmt.Sprintf("dpe-chain n=%d (1 executed, %d eliminated)", n, n-1), fmtNs(dpe), fmt.Sprintf("%.2f", dpe/base))
	// File-backed WAL.
	path := filepath.Join(os.TempDir(), fmt.Sprintf("wfbench-%d.wal", os.Getpid()))
	defer os.Remove(path)
	if flog, ferr := wal.OpenFileLog(path); ferr == nil {
		fileNs := run("live", flog)
		flog.Close()
		r.AddRow(fmt.Sprintf("chain n=%d, file WAL", n), fmtNs(fileNs), fmt.Sprintf("%.2f", fileNs/base))
	}
	return r
}

// RunB8 measures the concurrent scheduler: a fan of latency-bound
// activities (each sleeping a fixed time, simulating calls to external
// applications — the realistic WFMS regime) navigated sequentially vs.
// with program worker pools of increasing size.
func RunB8() *Report {
	r := &Report{
		ID:      "B8",
		Title:   "concurrent scheduler: latency-bound fan-out (2ms per activity) vs. pool size",
		Columns: []string{"fan width", "pool", "wall ms/instance", "speedup x"},
		Pass:    true,
	}
	const width = 8
	const latency = 2 * time.Millisecond
	mkEngine := func(pool int) *engine.Engine {
		e := engine.New(engine.WithConcurrency(pool))
		mustRegister(e, "ok", OKProgram)
		mustRegister(e, "slow", engine.ProgramFunc(func(inv *engine.Invocation) error {
			time.Sleep(latency)
			inv.Out.SetRC(0)
			return nil
		}))
		proc := FanOutIn("fan", width)
		for _, a := range proc.Activities {
			if a.Name != "A" && a.Name != "Z" {
				a.Program = "slow"
			}
		}
		if err := e.RegisterProcess(proc); err != nil {
			panic(err)
		}
		return e
	}
	run := func(e *engine.Engine) float64 {
		const iters = 5
		start := time.Now()
		for i := 0; i < iters; i++ {
			inst, err := e.CreateInstance("fan", nil, wal.Discard)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	base := run(mkEngine(1))
	r.AddRow(strconv.Itoa(width), "1 (sequential)", fmt.Sprintf("%.1f", base/1e6), "1.0")
	for _, pool := range []int{2, 4, 8} {
		ns := run(mkEngine(pool))
		r.AddRow(strconv.Itoa(width), strconv.Itoa(pool), fmt.Sprintf("%.1f", ns/1e6), fmt.Sprintf("%.1f", base/ns))
	}
	return r
}
