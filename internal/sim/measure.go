package sim

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/fmtm"
	"repro/internal/model"
	"repro/internal/rm"
	"repro/internal/txdb"
	"repro/internal/wal"
)

// RunAllBenchTables runs the B1–B10 harness tables (coarse wall-clock
// versions of the bench_test.go benchmarks, for cmd/wfbench).
func RunAllBenchTables() []*Report {
	return []*Report{RunB1(), RunB2(), RunB3(), RunB4(), RunB5(), RunB6(), RunB7(), RunB8(), RunB9(), RunB10()}
}

// Timing is the result of one measured operation: the mean over every
// timed iteration, the per-op time of the fastest batch (the noise floor —
// the statistic to compare across PRs, since it is least disturbed by GC
// and scheduling), and how many iterations were timed.
type Timing struct {
	MeanNs float64
	MinNs  float64
	Iters  int
}

// measureStats times f. Calibration runs over a short warm-up *window*
// rather than a single cold call — the first execution of a workload pays
// lazy initialization and cold caches, and letting it alone pick the
// iteration count made ns/op swing between runs. The timed phase then
// runs in a few equal batches so a per-batch minimum is available.
func measureStats(f func()) Timing {
	const (
		warmDuration = 5 * time.Millisecond
		minDuration  = 30 * time.Millisecond
		batches      = 3
	)
	// Warm-up window: at least two calls, then until the window elapses,
	// calibrating on the fastest call observed.
	per := time.Duration(1<<63 - 1)
	warmStart := time.Now()
	for calls := 0; calls < 2 || time.Since(warmStart) < warmDuration; calls++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < per {
			per = d
		}
	}
	if per <= 0 {
		per = time.Nanosecond
	}
	iters := int(minDuration/batches/per) + 1
	var total time.Duration
	minBatch := math.MaxFloat64
	for b := 0; b < batches; b++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		elapsed := time.Since(start)
		total += elapsed
		if perOp := float64(elapsed.Nanoseconds()) / float64(iters); perOp < minBatch {
			minBatch = perOp
		}
	}
	return Timing{
		MeanNs: float64(total.Nanoseconds()) / float64(batches*iters),
		MinNs:  minBatch,
		Iters:  batches * iters,
	}
}

// measure runs f repeatedly and returns mean ns/op (see measureStats).
func measure(f func()) float64 { return measureStats(f).MeanNs }

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// RunB1 measures navigation throughput across topologies.
func RunB1() *Report {
	r := &Report{
		ID:      "B1",
		Title:   "navigation throughput by topology",
		Columns: []string{"topology", "activities", "ns/instance", "activities/sec"},
		Pass:    true,
	}
	cases := []struct {
		name string
		proc *model.Process
		acts int
	}{
		{"chain", Chain("c10", 10), 10},
		{"chain", Chain("c100", 100), 100},
		{"chain", Chain("c1000", 1000), 1000},
		{"fan-out/in", FanOutIn("f10", 10), 12},
		{"fan-out/in", FanOutIn("f100", 100), 102},
		{"dpe-chain", DPEChain("d100", 100), 100},
	}
	for _, c := range cases {
		e := NewEngine()
		if err := e.RegisterProcess(c.proc); err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		tm := measureStats(func() {
			inst, err := e.CreateInstance(c.proc.Name, nil, wal.Discard)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(fmt.Sprintf("B1 %s: %v", c.proc.Name, err))
			}
		})
		actsPerSec := float64(c.acts) / (tm.MeanNs / 1e9)
		r.AddRow(c.name, strconv.Itoa(c.acts), fmtNs(tm.MeanNs), fmt.Sprintf("%.0f", actsPerSec))
		r.AddSample(sampleFrom(fmt.Sprintf("B1/%s/%d", c.name, c.acts), tm, actsPerSec))
	}
	return r
}

// RunB2 compares saga-as-workflow against the native saga executor.
func RunB2() *Report {
	r := &Report{
		ID:      "B2",
		Title:   "saga: workflow encoding (Fig. 2) vs native executor",
		Columns: []string{"n", "abort", "native ns/op", "workflow ns/op", "overhead x"},
		Pass:    true,
	}
	for _, n := range []int{5, 10, 20, 50} {
		for _, abort := range []bool{false, true} {
			spec := NStepSaga("s", n)
			abortName := ""
			if abort {
				abortName = fmt.Sprintf("T%d", n/2)
			}
			mkDec := func() rm.Decider {
				inj := rm.NewInjector()
				if abortName != "" {
					inj.AbortAlways(abortName)
				}
				return inj
			}
			nativeTm := measureStats(func() {
				ex := &saga.Executor{Decider: mkDec()}
				if _, err := ex.Execute(spec, fmtm.PureSagaBinding(spec), nil); err != nil {
					panic(err)
				}
			})
			nativeNs := nativeTm.MeanNs
			// Engine and template are prepared once (template reuse is how
			// FlowMark amortizes translation); per-op cost is instance
			// creation + navigation.
			e := engine.New()
			if err := fmtm.RegisterRuntime(e); err != nil {
				panic(err)
			}
			dec := mkDec()
			if err := fmtm.RegisterSaga(e, spec, fmtm.PureSagaBinding(spec), dec, nil); err != nil {
				panic(err)
			}
			p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
			if err != nil {
				panic(err)
			}
			if err := e.RegisterProcess(p); err != nil {
				panic(err)
			}
			wfTm := measureStats(func() {
				inst, err := e.CreateInstance(spec.Name, nil, wal.Discard)
				if err == nil {
					err = inst.Start()
				}
				if err != nil || !inst.Finished() {
					panic(err)
				}
			})
			wfNs := wfTm.MeanNs
			ab := "-"
			if abort {
				ab = abortName
			}
			r.AddRow(strconv.Itoa(n), ab, fmtNs(nativeNs), fmtNs(wfNs), fmt.Sprintf("%.1f", wfNs/nativeNs))
			caseName := fmt.Sprintf("B2/n=%d/abort=%s", n, ab)
			r.AddSample(sampleFrom(caseName+"/native", nativeTm, 0))
			r.AddSample(sampleFrom(caseName+"/workflow", wfTm, 0))
		}
	}
	return r
}

// RunB3 compares flexible-as-workflow against the native executor on the
// Figure 3 example, forcing each execution path.
func RunB3() *Report {
	r := &Report{
		ID:      "B3",
		Title:   "flexible transaction: workflow encoding (Fig. 4) vs native executor",
		Columns: []string{"scenario", "native ns/op", "workflow ns/op", "overhead x"},
		Pass:    true,
	}
	scenarios := []struct {
		name   string
		inject func(*rm.Injector)
	}{
		{"p1 commits", func(*rm.Injector) {}},
		{"p2 via T8 abort", func(i *rm.Injector) { i.AbortAlways("T8") }},
		{"p3 via T4 abort", func(i *rm.Injector) { i.AbortAlways("T4") }},
		{"clean abort via T2", func(i *rm.Injector) { i.AbortAlways("T2") }},
	}
	for _, sc := range scenarios {
		spec := Fig3Flexible()
		mkDec := func() rm.Decider {
			inj := rm.NewInjector()
			sc.inject(inj)
			return inj
		}
		nativeTm := measureStats(func() {
			ex := &flexible.Executor{Decider: mkDec()}
			if _, err := ex.Execute(spec, fmtm.PureFlexibleBinding(spec), nil); err != nil {
				panic(err)
			}
		})
		nativeNs := nativeTm.MeanNs
		e := engine.New()
		if err := fmtm.RegisterRuntime(e); err != nil {
			panic(err)
		}
		if err := fmtm.RegisterFlexible(e, spec, fmtm.PureFlexibleBinding(spec), mkDec(), nil); err != nil {
			panic(err)
		}
		p, err := fmtm.TranslateFlexible(spec)
		if err != nil {
			panic(err)
		}
		if err := e.RegisterProcess(p); err != nil {
			panic(err)
		}
		wfTm := measureStats(func() {
			inst, err := e.CreateInstance(spec.Name, nil, wal.Discard)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(err)
			}
		})
		wfNs := wfTm.MeanNs
		r.AddRow(sc.name, fmtNs(nativeNs), fmtNs(wfNs), fmt.Sprintf("%.1f", wfNs/nativeNs))
		r.AddSample(sampleFrom("B3/"+sc.name+"/native", nativeTm, 0))
		r.AddSample(sampleFrom("B3/"+sc.name+"/workflow", wfTm, 0))
	}
	return r
}

// RunB4 measures FMTM translation and FDL round-trip cost vs. spec size.
func RunB4() *Report {
	r := &Report{
		ID:      "B4",
		Title:   "Exotica/FMTM translation and FDL round trip vs. saga size",
		Columns: []string{"steps", "translate ns/op", "fdl export ns/op", "fdl parse ns/op"},
		Pass:    true,
	}
	for _, n := range []int{10, 100, 1000} {
		spec := NStepSaga("s", n)
		trTm := measureStats(func() {
			if _, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{}); err != nil {
				panic(err)
			}
		})
		p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
		if err != nil {
			panic(err)
		}
		file := &fdl.File{Types: p.Types, Processes: []*model.Process{p}}
		var text string
		expTm := measureStats(func() { text = fdl.Export(file) })
		parseTm := measureStats(func() {
			if _, err := fdl.Parse(text); err != nil {
				panic(err)
			}
		})
		r.AddRow(strconv.Itoa(n), fmtNs(trTm.MeanNs), fmtNs(expTm.MeanNs), fmtNs(parseTm.MeanNs))
		r.AddSample(sampleFrom(fmt.Sprintf("B4/n=%d/translate", n), trTm, 0))
		r.AddSample(sampleFrom(fmt.Sprintf("B4/n=%d/fdl-export", n), expTm, 0))
		r.AddSample(sampleFrom(fmt.Sprintf("B4/n=%d/fdl-parse", n), parseTm, 0))
	}
	return r
}

// RunB5 measures WAL replay: recovery time vs. log length.
func RunB5() *Report {
	r := &Report{
		ID:      "B5",
		Title:   "forward recovery: replay time vs. log length",
		Columns: []string{"chain length", "log records", "recover ns/op", "ns/record", "records/sec"},
		Pass:    true,
	}
	for _, n := range []int{100, 1000, 10000} {
		e := NewEngine()
		proc := Chain(fmt.Sprintf("c%d", n), n)
		if err := e.RegisterProcess(proc); err != nil {
			panic(err)
		}
		log := &wal.MemLog{}
		inst, err := e.CreateInstance(proc.Name, nil, log)
		if err == nil {
			err = inst.Start()
		}
		if err != nil {
			panic(err)
		}
		records := log.Records()
		recTm := measureStats(func() {
			rec, err := engine.Recover(e, records, wal.Discard)
			if err != nil || !rec.Finished() {
				panic(err)
			}
		})
		recNs := recTm.MeanNs
		recsPerSec := float64(len(records)) / (recNs / 1e9)
		r.AddRow(strconv.Itoa(n), strconv.Itoa(len(records)), fmtNs(recNs),
			fmt.Sprintf("%.0f", recNs/float64(len(records))),
			fmt.Sprintf("%.0f", recsPerSec))
		r.AddSample(sampleFrom(fmt.Sprintf("B5/chain=%d/records=%d", n, len(records)), recTm, recsPerSec))
	}
	return r
}

// RunB6 measures txdb commit throughput and deadlock aborts under
// contention.
func RunB6() *Report {
	r := &Report{
		ID:      "B6",
		Title:   "txdb (strict 2PL): throughput and deadlock aborts vs. concurrency",
		Columns: []string{"workers", "keyspace", "txs", "commits/sec", "deadlock aborts"},
		Pass:    true,
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, keys := range []int{4, 1024} {
			s := txdb.Open("bench")
			const txPerWorker = 2000
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rr := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < txPerWorker; i++ {
						k1 := fmt.Sprintf("k%d", rr.Intn(keys))
						k2 := fmt.Sprintf("k%d", rr.Intn(keys))
						_ = s.DoRetry(50, func(tx *txdb.Tx) error {
							if _, _, err := tx.Get(k1); err != nil {
								return err
							}
							// Widen the window between lock acquisitions so
							// transactions actually overlap; without it the
							// per-transaction critical section is too short
							// for the deadlock series to show anything.
							runtime.Gosched()
							if err := tx.Put(k2, "v"); err != nil {
								return err
							}
							return tx.Put(k1, "v")
						})
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			commits, _, deadlocks := s.Stats()
			total := workers * txPerWorker
			commitsPerSec := float64(commits) / elapsed.Seconds()
			r.AddRow(strconv.Itoa(workers), strconv.Itoa(keys), strconv.Itoa(total),
				fmt.Sprintf("%.0f", commitsPerSec), fmt.Sprint(deadlocks))
			r.AddSample(Sample{
				Name:          fmt.Sprintf("B6/workers=%d/keys=%d", workers, keys),
				NsOp:          float64(elapsed.Nanoseconds()) / float64(total),
				Iters:         total,
				RecordsPerSec: commitsPerSec,
			})
		}
	}
	return r
}

// RunB7 runs the design ablations: per-event WAL vs. disabled, and the
// relative cost of a dead-path-eliminated activity vs. an executed one.
func RunB7() *Report {
	r := &Report{
		ID:      "B7",
		Title:   "ablations: WAL on/off; executed vs. dead-path-eliminated activity cost",
		Columns: []string{"configuration", "ns/instance", "vs baseline x"},
		Pass:    true,
	}
	const n = 200
	e := NewEngine()
	live := Chain("live", n)
	dead := DPEChain("dead", n)
	for _, proc := range []*model.Process{live, dead} {
		if err := e.RegisterProcess(proc); err != nil {
			panic(err)
		}
	}
	run := func(name string, log wal.Log) Timing {
		return measureStats(func() {
			inst, err := e.CreateInstance(name, nil, log)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(err)
			}
		})
	}
	baseTm := run("live", wal.Discard)
	base := baseTm.MeanNs
	r.AddRow(fmt.Sprintf("chain n=%d, WAL off (baseline)", n), fmtNs(base), "1.0")
	r.AddSample(sampleFrom("B7/wal-off", baseTm, 0))
	withWalTm := run("live", &wal.MemLog{})
	r.AddRow(fmt.Sprintf("chain n=%d, in-memory WAL", n), fmtNs(withWalTm.MeanNs), fmt.Sprintf("%.2f", withWalTm.MeanNs/base))
	r.AddSample(sampleFrom("B7/wal-mem", withWalTm, 0))
	dpeTm := run("dead", wal.Discard)
	r.AddRow(fmt.Sprintf("dpe-chain n=%d (1 executed, %d eliminated)", n, n-1), fmtNs(dpeTm.MeanNs), fmt.Sprintf("%.2f", dpeTm.MeanNs/base))
	r.AddSample(sampleFrom("B7/dpe-chain", dpeTm, 0))
	// File-backed WAL.
	path := filepath.Join(os.TempDir(), fmt.Sprintf("wfbench-%d.wal", os.Getpid()))
	defer os.Remove(path)
	if flog, ferr := wal.OpenFileLog(path); ferr == nil {
		fileTm := run("live", flog)
		flog.Close()
		r.AddRow(fmt.Sprintf("chain n=%d, file WAL", n), fmtNs(fileTm.MeanNs), fmt.Sprintf("%.2f", fileTm.MeanNs/base))
		r.AddSample(sampleFrom("B7/wal-file", fileTm, 0))
	}
	return r
}

// RunB8 measures the concurrent scheduler: a fan of latency-bound
// activities (each sleeping a fixed time, simulating calls to external
// applications — the realistic WFMS regime) navigated sequentially vs.
// with program worker pools of increasing size.
func RunB8() *Report {
	r := &Report{
		ID:      "B8",
		Title:   "concurrent scheduler: latency-bound fan-out (2ms per activity) vs. pool size",
		Columns: []string{"fan width", "pool", "wall ms/instance", "speedup x"},
		Pass:    true,
	}
	const width = 8
	const latency = 2 * time.Millisecond
	mkEngine := func(pool int) *engine.Engine {
		e := engine.New(engine.WithConcurrency(pool))
		mustRegister(e, "ok", OKProgram)
		mustRegister(e, "slow", engine.ProgramFunc(func(inv *engine.Invocation) error {
			time.Sleep(latency)
			inv.Out.SetRC(0)
			return nil
		}))
		proc := FanOutIn("fan", width)
		for _, a := range proc.Activities {
			if a.Name != "A" && a.Name != "Z" {
				a.Program = "slow"
			}
		}
		if err := e.RegisterProcess(proc); err != nil {
			panic(err)
		}
		return e
	}
	run := func(e *engine.Engine) float64 {
		const iters = 5
		start := time.Now()
		for i := 0; i < iters; i++ {
			inst, err := e.CreateInstance("fan", nil, wal.Discard)
			if err == nil {
				err = inst.Start()
			}
			if err != nil || !inst.Finished() {
				panic(err)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	base := run(mkEngine(1))
	r.AddRow(strconv.Itoa(width), "1 (sequential)", fmt.Sprintf("%.1f", base/1e6), "1.0")
	r.AddSample(Sample{Name: "B8/pool=1", NsOp: base, Iters: 5})
	for _, pool := range []int{2, 4, 8} {
		ns := run(mkEngine(pool))
		r.AddRow(strconv.Itoa(width), strconv.Itoa(pool), fmt.Sprintf("%.1f", ns/1e6), fmt.Sprintf("%.1f", base/ns))
		r.AddSample(Sample{Name: fmt.Sprintf("B8/pool=%d", pool), NsOp: ns, Iters: 5})
	}
	return r
}
