// Package sim provides workload generators, experiment runners and timing
// harnesses for the reproduction's evaluation (EXPERIMENTS.md): process
// topologies for navigation benchmarks, random saga and flexible
// transaction specifications, and the E1–E5 correctness experiments with
// their printable reports.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
)

// OKProgram commits immediately.
var OKProgram = engine.ProgramFunc(func(inv *engine.Invocation) error {
	inv.Out.SetRC(0)
	return nil
})

// AbortProgram aborts immediately.
var AbortProgram = engine.ProgramFunc(func(inv *engine.Invocation) error {
	inv.Out.SetRC(1)
	return nil
})

// NewEngine returns an engine with the standard simulation programs
// registered: "ok" (commits) and "abort" (aborts).
func NewEngine() *engine.Engine {
	e := engine.New()
	mustRegister(e, "ok", OKProgram)
	mustRegister(e, "abort", AbortProgram)
	return e
}

func mustRegister(e *engine.Engine, name string, p engine.Program) {
	if err := e.RegisterProgram(name, p); err != nil {
		panic(err)
	}
}

// Chain builds a linear process A1 -> A2 -> ... -> An with "RC = 0"
// transition conditions; every activity commits.
func Chain(name string, n int) *model.Process {
	p := model.NewProcess(name)
	for i := 1; i <= n; i++ {
		p.Activities = append(p.Activities, &model.Activity{
			Name: actName(i), Kind: model.KindProgram, Program: "ok",
		})
		if i > 1 {
			p.Control = append(p.Control, &model.ControlConnector{
				From: actName(i - 1), To: actName(i), Condition: expr.MustParse("RC = 0"),
			})
		}
	}
	return p
}

// FanOutIn builds A -> (W1..Ww) -> Z with an AND join at Z.
func FanOutIn(name string, width int) *model.Process {
	p := model.NewProcess(name)
	p.Activities = append(p.Activities, &model.Activity{Name: "A", Kind: model.KindProgram, Program: "ok"})
	for i := 1; i <= width; i++ {
		w := fmt.Sprintf("W%d", i)
		p.Activities = append(p.Activities, &model.Activity{Name: w, Kind: model.KindProgram, Program: "ok"})
		p.Control = append(p.Control,
			&model.ControlConnector{From: "A", To: w, Condition: expr.MustParse("RC = 0")},
			&model.ControlConnector{From: w, To: "Z", Condition: expr.MustParse("RC = 0")},
		)
	}
	p.Activities = append(p.Activities, &model.Activity{Name: "Z", Kind: model.KindProgram, Program: "ok"})
	return p
}

// DPEChain builds a chain whose first activity aborts, so the remaining
// n-1 activities are eliminated by dead path elimination — the
// DPE-dominated workload of benchmark B7.
func DPEChain(name string, n int) *model.Process {
	p := Chain(name, n)
	p.Activities[0].Program = "abort"
	return p
}

// RandomDAG builds a random acyclic process over n "coin" activities with
// forward-edge probability pEdge, random RC conditions and random joins.
// Program "coin" must be registered by the caller (see CoinProgram).
func RandomDAG(name string, r *rand.Rand, n int, pEdge float64) *model.Process {
	p := model.NewProcess(name)
	for i := 1; i <= n; i++ {
		a := &model.Activity{Name: actName(i), Kind: model.KindProgram, Program: "coin"}
		if r.Intn(2) == 0 {
			a.Join = model.JoinOr
		}
		p.Activities = append(p.Activities, a)
	}
	conds := []string{"RC = 0", "RC <> 0", ""}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			if r.Float64() >= pEdge {
				continue
			}
			c := &model.ControlConnector{From: actName(i), To: actName(j)}
			if s := conds[r.Intn(len(conds))]; s != "" {
				c.Condition = expr.MustParse(s)
			}
			p.Control = append(p.Control, c)
		}
	}
	return p
}

// CoinProgram commits or aborts deterministically per (path, iter) from
// the seed.
func CoinProgram(seed int64) engine.Program {
	return engine.ProgramFunc(func(inv *engine.Invocation) error {
		h := seed
		for _, b := range inv.Path {
			h = h*131 + int64(b)
		}
		r := rand.New(rand.NewSource(h ^ int64(inv.Iter)))
		inv.Out.SetRC(int64(r.Intn(2)))
		return nil
	})
}

func actName(i int) string { return fmt.Sprintf("A%d", i) }

// NStepSaga builds the standard T1..Tn / C1..Cn saga.
func NStepSaga(name string, n int) *saga.Spec {
	s := &saga.Spec{Name: name}
	for i := 1; i <= n; i++ {
		s.Steps = append(s.Steps, saga.Step{
			Name: fmt.Sprintf("T%d", i), Compensation: fmt.Sprintf("C%d", i),
		})
	}
	return s
}

// Fig3Flexible is the paper's Figure 3 example.
func Fig3Flexible() *flexible.Spec {
	return &flexible.Spec{
		Name: "Fig3",
		Subs: []flexible.SubSpec{
			{Name: "T1", Compensatable: true, Compensation: "C1"},
			{Name: "T2"},
			{Name: "T3", Retriable: true},
			{Name: "T4"},
			{Name: "T5", Compensatable: true, Compensation: "C5"},
			{Name: "T6", Compensatable: true, Compensation: "C6"},
			{Name: "T7", Retriable: true},
			{Name: "T8"},
		},
		Paths: [][]string{
			{"T1", "T2", "T4", "T5", "T6", "T8"},
			{"T1", "T2", "T4", "T7"},
			{"T1", "T2", "T3"},
		},
	}
}

// RandomFlexible generates a well-formed flexible transaction by
// construction, mirroring the shape of the paper's Figure 3: the primary
// path is seg_1 p_1 seg_2 p_2 ... seg_N p_N tail where each seg_k is a
// compensatable segment, each p_k a pivot and tail is retriable; for each
// pivot p_k an alternative path diverges immediately *after* p_k into a
// retriable rescue subtransaction. A failure anywhere after p_k commits is
// then absorbed by rescue_k after compensating only compensatable work —
// exactly the ZNBB94 well-formedness discipline. A failure before p_1
// commits unwinds to a clean global abort.
func RandomFlexible(name string, r *rand.Rand, pivots int) *flexible.Spec {
	spec := &flexible.Spec{Name: name}
	var primary []string
	sub := 0
	newSub := func(s flexible.SubSpec) string {
		sub++
		s.Name = fmt.Sprintf("S%d", sub)
		if s.Compensatable {
			s.Compensation = fmt.Sprintf("CS%d", sub)
		}
		spec.Subs = append(spec.Subs, s)
		return s.Name
	}
	var alts [][]string
	for k := 0; k < pivots; k++ {
		for i := 0; i < 1+r.Intn(3); i++ {
			primary = append(primary, newSub(flexible.SubSpec{Compensatable: true}))
		}
		primary = append(primary, newSub(flexible.SubSpec{})) // pivot p_k
		// Rescue path diverging right after p_k.
		rescue := newSub(flexible.SubSpec{Retriable: true})
		alts = append(alts, append(append([]string(nil), primary...), rescue))
	}
	// Terminal retriable so the primary path is guaranteed past p_N.
	primary = append(primary, newSub(flexible.SubSpec{Retriable: true}))
	// Most preferred first, then the rescues of the deepest pivots first
	// (preference among disjoint divergences is immaterial).
	spec.Paths = append([][]string{primary}, alts...)
	return spec
}
