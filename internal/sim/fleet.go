package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
)

// b9Chain is the B9/E8 reference workload length: Chain(n) writes
// created + n×(started+activity) + done = 2n+2 WAL records per instance.
const b9Chain = 20

// RunB9 measures fleet throughput on the durable path: N instances of a
// chain workload executed by engine.RunFleet against a shared on-disk
// WAL, comparing per-record fsync (FileLog+WithFsync — every record
// waits out its own disk sync) with group commit (GroupCommitLog — one
// sync per batch, batch size self-tuned to the fsync latency by commit
// pipelining). The headline acceptance number is the fleet-32 speedup,
// which must be at least 5× records/sec; "mean batch" shows the fsync
// amortization that produces it.
func RunB9() *Report {
	r := &Report{
		ID:      "B9",
		Title:   "fleet throughput: group commit vs. per-record fsync on a shared durable WAL",
		Columns: []string{"fleet", "parallel", "mode", "wall", "records/sec", "instances/sec", "mean batch", "speedup x"},
		Pass:    true,
	}
	dir, err := os.MkdirTemp("", "wfbench-fleet")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)

	proc := Chain("b9", b9Chain)
	recsPerInst := 2*b9Chain + 2

	type outcome struct {
		recsPerSec  float64
		instsPerSec float64
		wallNs      float64
		meanBatch   float64 // 0 for per-record mode
	}
	run := func(fleet, parallel int, group bool) (outcome, error) {
		path := filepath.Join(dir, "fleet.wal")
		flog, err := wal.OpenFileLog(path, wal.WithFsync())
		if err != nil {
			return outcome{}, err
		}
		var log wal.Log = flog
		reg := obs.NewRegistry()
		var g *wal.GroupCommitLog
		if group {
			g = wal.NewGroupCommitLog(flog, wal.GroupWithMetricsRegistry(reg))
			log = g
		}
		e := NewEngine()
		if err := e.RegisterProcess(proc); err != nil {
			return outcome{}, err
		}
		res, err := e.RunFleet(engine.FleetOptions{
			Process: proc.Name, N: fleet, Parallel: parallel, Log: log,
		})
		if err == nil && res.Failed > 0 {
			err = fmt.Errorf("%d of %d instances failed: %v", res.Failed, fleet, res.Err)
		}
		if g != nil {
			if cerr := g.Close(); err == nil {
				err = cerr
			}
		} else if cerr := flog.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return outcome{}, err
		}
		records := float64(fleet * recsPerInst)
		secs := res.Elapsed.Seconds()
		out := outcome{
			recsPerSec:  records / secs,
			instsPerSec: float64(fleet) / secs,
			wallNs:      float64(res.Elapsed.Nanoseconds()),
		}
		if group {
			snap := reg.Snapshot()
			if b := snap.Counters["wal.group.batches"]; b > 0 {
				out.meanBatch = float64(snap.Counters["wal.group.records"]) / float64(b)
			}
		}
		return out, nil
	}

	for _, fleet := range []int{1, 8, 32} {
		parallel := fleet
		if parallel > 16 {
			parallel = 16
		}
		perRec, err := run(fleet, parallel, false)
		if err == nil {
			// The per-record baseline warms the file cache; run group mode
			// second so any one-time cost lands on the slower config.
			var grp outcome
			grp, err = run(fleet, parallel, true)
			if err == nil {
				speedup := grp.recsPerSec / perRec.recsPerSec
				r.AddRow(fmt.Sprint(fleet), fmt.Sprint(parallel), "per-record fsync",
					fmtNs(perRec.wallNs), fmt.Sprintf("%.0f", perRec.recsPerSec),
					fmt.Sprintf("%.1f", perRec.instsPerSec), "-", "1.0")
				r.AddRow(fmt.Sprint(fleet), fmt.Sprint(parallel), "group commit",
					fmtNs(grp.wallNs), fmt.Sprintf("%.0f", grp.recsPerSec),
					fmt.Sprintf("%.1f", grp.instsPerSec),
					fmt.Sprintf("%.1f", grp.meanBatch), fmt.Sprintf("%.1f", speedup))
				r.AddSample(Sample{Name: fmt.Sprintf("B9/fleet=%d/per-record", fleet),
					NsOp: perRec.wallNs, Iters: 1, RecordsPerSec: perRec.recsPerSec})
				r.AddSample(Sample{Name: fmt.Sprintf("B9/fleet=%d/group", fleet),
					NsOp: grp.wallNs, Iters: 1, RecordsPerSec: grp.recsPerSec})
				if fleet >= 32 && speedup < 5 {
					r.Pass = false
					r.Err = fmt.Errorf("B9: fleet %d group-commit speedup %.1fx, want >= 5x", fleet, speedup)
				}
			}
		}
		if err != nil {
			r.Pass = false
			r.Err = fmt.Errorf("B9 fleet %d: %w", fleet, err)
			return r
		}
	}
	return r
}

// ackTrackingLog wraps a Log and records every acknowledged append — the
// ground truth for the E8 durability invariant: an append whose error was
// nil must survive any later crash.
type ackTrackingLog struct {
	inner wal.Log
	mu    sync.Mutex
	acked []wal.Record
}

func (l *ackTrackingLog) Append(rec wal.Record) error {
	err := l.inner.Append(rec)
	if err == nil {
		l.mu.Lock()
		l.acked = append(l.acked, rec)
		l.mu.Unlock()
	}
	return err
}

func recKey(r wal.Record) string {
	return fmt.Sprintf("%s|%s|%s|%d", r.Instance, r.Type, r.Path, r.Iter)
}

// RunE8 is the group-commit counterpart of the E7 soak: a fleet of
// concurrent chain instances shares one GroupCommitLog, and the server
// is crashed at every batch boundary (GroupCrashAfter sweeping every
// record count, clean and short-write). After each crash the file is
// repaired and the fleet recovered with RecoverAll. The soak proves the
// group-commit durability contract:
//
//   - no acknowledged append is ever missing from the repaired log
//     (batch-granularity acks: a crashed batch acknowledges nothing);
//   - unacknowledged complete lines from a torn batch may survive, and
//     recovery replays them harmlessly;
//   - every instance with surviving records recovers to the same output
//     as the crash-free baseline.
func RunE8() *Report {
	r := &Report{
		ID:      "E8",
		Title:   "group-commit soak: crash + short-write at every batch boundary, no acknowledged append lost",
		Columns: []string{"mode", "fleet", "records", "crash points", "torn tails repaired", "acks lost", "recovered ok"},
		Pass:    true,
	}
	const fleet = 4
	const chainN = 5
	proc := Chain("e8", chainN)
	total := fleet * (2*chainN + 2)

	dir, err := os.MkdirTemp("", "wal-gc-soak")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)

	// Crash-free baseline: the expected output container of every
	// instance (all instances run the identical workload).
	base := NewEngine()
	if err := base.RegisterProcess(proc); err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	baseRes, err := base.RunFleet(engine.FleetOptions{Process: proc.Name, N: 1})
	if err != nil || baseRes.Finished != 1 {
		r.Pass = false
		r.Err = fmt.Errorf("E8 baseline: %v (%v)", err, baseRes)
		return r
	}
	baseOut := baseRes.Instances[0].Output()

	for _, mode := range []struct {
		name       string
		shortWrite bool
	}{{"clean crash", false}, {"short write", true}} {
		okAll := true
		repaired := 0
		acksLost := 0
		for crashAt := 1; crashAt < total && okAll; crashAt++ {
			path := filepath.Join(dir, "soak.wal")
			flog, err := wal.OpenFileLog(path)
			if err != nil {
				okAll = false
				break
			}
			g := wal.NewGroupCommitLog(flog,
				wal.GroupCrashAfter(crashAt, mode.shortWrite),
				wal.GroupWithMetricsRegistry(obs.NewRegistry()))
			track := &ackTrackingLog{inner: g}
			e := NewEngine()
			if err := e.RegisterProcess(proc); err != nil {
				okAll = false
				break
			}
			res, err := e.RunFleet(engine.FleetOptions{
				Process: proc.Name, N: fleet, Parallel: fleet, Log: track,
			})
			if err != nil {
				okAll = false
				break
			}
			// The crash must actually have fired and failed at least one
			// instance with ErrCrash.
			if res.Failed == 0 || !errors.Is(res.Err, wal.ErrCrash) {
				okAll = false
				break
			}
			if err := flog.Close(); err != nil {
				okAll = false
				break
			}
			recs, dropped, err := wal.RepairFile(path)
			if err != nil {
				okAll = false
				break
			}
			if dropped > 0 {
				repaired++
			}
			onDisk := make(map[string]bool, len(recs))
			for _, rec := range recs {
				onDisk[recKey(rec)] = true
			}
			track.mu.Lock()
			acked := append([]wal.Record(nil), track.acked...)
			track.mu.Unlock()
			for _, rec := range acked {
				if !onDisk[recKey(rec)] {
					acksLost++
					okAll = false
				}
			}
			if !okAll {
				break
			}
			e2 := NewEngine()
			if err := e2.RegisterProcess(proc); err != nil {
				okAll = false
				break
			}
			insts, err := engine.RecoverAll(e2, recs, nil)
			if err != nil {
				okAll = false
				break
			}
			for _, inst := range insts {
				if !inst.Finished() || !inst.Output().Equal(baseOut) {
					okAll = false
					break
				}
			}
		}
		if !okAll {
			r.Pass = false
		}
		verdict := "yes"
		if !okAll {
			verdict = "NO"
		}
		r.AddRow(mode.name, fmt.Sprint(fleet), fmt.Sprint(total),
			fmt.Sprint(total-1), fmt.Sprint(repaired), fmt.Sprint(acksLost), verdict)
	}
	return r
}
