package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/wal"
)

// aggMatchesRegistry checks the 1:1 mapping between a recorded trail's
// aggregation and the metric registry that instrumented the same run
// live (instance.finished events ↔ engine.instances.finished, and so
// on). It returns the names of the counters that disagree.
func aggMatchesRegistry(a *history.Aggregate, reg *obs.Registry) []string {
	var bad []string
	for _, m := range []struct {
		name string
		agg  int64
		ctr  string
	}{
		{"created", a.Created, "engine.instances.created"},
		{"finished", a.Finished, "engine.instances.finished"},
		{"failed", a.Failed, "engine.instances.failed"},
		{"canceled", a.Canceled, "engine.instances.canceled"},
		{"retries", a.Retries, "engine.program.retries"},
		{"dead paths", a.DeadPaths, "engine.deadpath.eliminations"},
		{"loops", a.Loops, "engine.loops"},
		{"sheds", a.Sheds, "engine.fleet.shed"},
		{"breaker trips", a.BreakerTrips, "engine.breaker.trips"},
		{"rebalances", a.Rebalances, "engine.fleet.rebalanced"},
	} {
		if got := reg.Counter(m.ctr).Value(); m.agg != got {
			bad = append(bad, fmt.Sprintf("%s: trail %d != registry %d", m.name, m.agg, got))
		}
	}
	return bad
}

// continuousEqualsBatch feeds the event stream one event at a time and
// asserts after every single event that the incremental evaluator's
// aggregate equals the batch aggregation of the same prefix — the
// prefix-consistency contract of the continuous query class.
func continuousEqualsBatch(evs []obs.Event) error {
	c := history.NewContinuous()
	for i, ev := range evs {
		c.Feed(history.FromObs(ev))
		batch := history.FromEvents(evs[:i+1]).Aggregate()
		if !reflect.DeepEqual(c.Result(), batch) {
			return fmt.Errorf("prefix %d/%d: continuous %+v != batch %+v", i+1, len(evs), c.Result(), batch)
		}
	}
	return nil
}

// e13Scenario is one E13 workload run: the recorded bus events, the
// per-instance live snapshots captured at every trail boundary, the
// registry that instrumented the run, and a builder that reconstructs
// the workload's engine for replay.
type e13Scenario struct {
	name   string
	evs    []obs.Event
	snaps  map[string][]*engine.InstanceSnapshot
	reg    *obs.Registry
	build  history.Builder
	onDisk *history.Source // nil: query via StateAsOf over in-memory records
	recs   []wal.Record
}

// runE13Single executes one reference workload (single instance over an
// in-memory log) under full observation.
func runE13Single(name string, mk func(opts ...engine.Option) (*engine.Engine, string)) (*e13Scenario, error) {
	s := &e13Scenario{
		name:  name,
		snaps: make(map[string][]*engine.InstanceSnapshot),
		reg:   obs.NewRegistry(),
	}
	bus := obs.NewBus()
	var mu sync.Mutex
	detach := bus.Attach(func(ev obs.Event) {
		mu.Lock()
		s.evs = append(s.evs, ev)
		mu.Unlock()
	})
	defer detach()

	e, proc := mk(
		engine.WithMetrics(s.reg),
		engine.WithBus(bus),
		engine.WithTrailObserver(func(inst *engine.Instance, _ engine.Event) {
			mu.Lock()
			s.snaps[inst.ID()] = append(s.snaps[inst.ID()], inst.Snapshot())
			mu.Unlock()
		}),
	)
	log := &wal.MemLog{}
	inst, err := e.CreateInstance(proc, nil, log)
	if err == nil {
		err = inst.Start()
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	if !inst.Finished() {
		return nil, fmt.Errorf("%s: instance did not finish", name)
	}
	s.recs = log.Records()
	s.build = func(opts ...engine.Option) (*engine.Engine, error) {
		e, _ := mk(opts...)
		return e, nil
	}
	return s, nil
}

// runE13Fleet executes the travel saga as a 3-shard fleet over a real
// sharded WAL layout under full observation. No checkpointer runs:
// every-boundary time travel needs the full history retained (bounded
// rungs and retention are B16's and E9's subject).
func runE13Fleet(dir string, n int) (*e13Scenario, error) {
	s := &e13Scenario{
		name:  fmt.Sprintf("fleet 3-shard %dx travel", n),
		snaps: make(map[string][]*engine.InstanceSnapshot),
		reg:   obs.NewRegistry(),
	}
	bus := obs.NewBus()
	var mu sync.Mutex
	detach := bus.Attach(func(ev obs.Event) {
		mu.Lock()
		s.evs = append(s.evs, ev)
		mu.Unlock()
	})
	defer detach()

	e, proc := travelWorkloadOpts(
		engine.WithMetrics(s.reg),
		engine.WithBus(bus),
		engine.WithTrailObserver(func(inst *engine.Instance, _ engine.Event) {
			mu.Lock()
			s.snaps[inst.ID()] = append(s.snaps[inst.ID()], inst.Snapshot())
			mu.Unlock()
		}),
	)
	f, err := engine.NewFleet(e, engine.FleetConfig{Shards: 3, Dir: dir, Parallel: 2})
	if err != nil {
		return nil, err
	}
	res, err := f.Run(proc, n, nil)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: %v", err)
	}
	if res.Finished != n {
		return nil, fmt.Errorf("fleet: finished %d of %d (failed %d: %v)", res.Finished, n, res.Failed, res.Err)
	}
	s.build = func(opts ...engine.Option) (*engine.Engine, error) {
		e, _ := travelWorkloadOpts(opts...)
		return e, nil
	}
	s.onDisk = &history.Source{WAL: dir}
	return s, nil
}

// stateAt answers one as-of-T query for the scenario, through the
// recovery ladder for on-disk layouts or straight from the recorded
// records otherwise.
func (s *e13Scenario) stateAt(id string, k int) (*engine.InstanceSnapshot, int, error) {
	if s.onDisk != nil {
		snap, n, _, err := s.onDisk.StateAt(s.build, id, k)
		return snap, n, err
	}
	return history.StateAsOf(s.build, s.recs, id, k)
}

// RunE13 is the queryable-history soak: both reference workloads (the
// travel saga and the Figure 3 flexible transaction) and a 3-shard
// fleet run under full observation — a metrics registry, an event bus
// feeding the history store, and a trail observer capturing a live
// Instance.Snapshot at every audit-trail boundary. The soak then proves
// the three dynamic query classes against that ground truth:
//
//   - time travel: the as-of-T reconstruction at EVERY boundary of
//     every instance is identical to the live snapshot captured there;
//   - fleet aggregation: the trail aggregation's counts equal the metric
//     registry of the same run exactly (the 1:1 mapping);
//   - continuous queries: the incremental evaluator equals the batch
//     aggregation at every prefix of the stream.
func RunE13() *Report {
	r := &Report{
		ID:      "E13",
		Title:   "queryable history: as-of-T == live snapshot at every boundary; trail agg == metrics; continuous == batch",
		Columns: []string{"scenario", "events", "instances", "as-of queries", "as-of == live", "agg == metrics", "continuous == batch"},
		Pass:    true,
	}
	dir, err := os.MkdirTemp("", "wfbench-e13")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(dir)

	scenarios := make([]*e13Scenario, 0, 3)
	if s, err := runE13Single("travel saga abort@book_car", travelWorkloadOpts); err == nil {
		scenarios = append(scenarios, s)
	} else {
		r.Pass, r.Err = false, err
		return r
	}
	if s, err := runE13Single("flexible Fig.3 abort@T6", flexibleWorkloadOpts); err == nil {
		scenarios = append(scenarios, s)
	} else {
		r.Pass, r.Err = false, err
		return r
	}
	if s, err := runE13Fleet(filepath.Join(dir, "fleet"), 24); err == nil {
		scenarios = append(scenarios, s)
	} else {
		r.Pass, r.Err = false, err
		return r
	}

	for _, s := range scenarios {
		queries := 0
		asOfOK := true
		for id, lives := range s.snaps {
			for k := 1; k <= len(lives); k++ {
				snap, n, err := s.stateAt(id, k)
				queries++
				if err != nil || n != len(lives) || !snap.Equal(lives[k-1]) {
					asOfOK = false
					r.Err = fmt.Errorf("E13 %s: %s as of %d: err=%v n=%d want %d", s.name, id, k, err, n, len(lives))
				}
			}
		}
		aggBad := aggMatchesRegistry(history.FromEvents(s.evs).Aggregate(), s.reg)
		contErr := continuousEqualsBatch(s.evs)
		if !asOfOK || len(aggBad) > 0 || contErr != nil {
			r.Pass = false
			if r.Err == nil && len(aggBad) > 0 {
				r.Err = fmt.Errorf("E13 %s: agg vs metrics: %v", s.name, aggBad)
			}
			if r.Err == nil {
				r.Err = fmt.Errorf("E13 %s: %v", s.name, contErr)
			}
		}
		r.AddRow(s.name, fmt.Sprint(len(s.evs)), fmt.Sprint(len(s.snaps)), fmt.Sprint(queries),
			verdict(asOfOK), verdict(len(aggBad) == 0), verdict(contErr == nil))
	}
	return r
}

func verdict(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// RunB16 measures what the checkpoint ladder buys a time-travel query on
// a fleet-128 trail: the same "state of the crashed instance as of its
// newest boundary" question answered through the bounded
// checkpoint+tail rung versus the full-history rung. The acceptance
// gate is deterministic — the bounded path must read at least 10x fewer
// records off disk than full-history replay — and the wall-clock
// column shows what that buys (the reported ratio is records read,
// wall time is informational).
func RunB16() *Report {
	r := &Report{
		ID:      "B16",
		Title:   "time travel on a fleet-128 trail: bounded checkpoint+tail rung vs full-history replay",
		Columns: []string{"mode", "rung", "records read", "records replayed", "query wall", "read ratio x"},
		Pass:    true,
	}
	const fleetN = 128
	const chainN = 20
	proc := Chain("b16", chainN)
	recsPerInst := 2*chainN + 2

	root, err := os.MkdirTemp("", "wfbench-b16")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(root)

	build := func(opts ...engine.Option) (*engine.Engine, error) {
		e := engine.New(opts...)
		mustRegister(e, "ok", OKProgram)
		mustRegister(e, "abort", AbortProgram)
		if err := e.RegisterProcess(proc); err != nil {
			return nil, err
		}
		return e, nil
	}

	// run executes fleetN chain instances sequentially over a fresh
	// segmented log in dir, crashing mid-way through the last one so a
	// live instance sits in the tail (the one worth time-traveling into
	// after a crash), checkpointing every 64 appends when ckpt is set.
	// It returns the crashed instance's ID.
	run := func(dir string, ckpt bool) (string, error) {
		slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(64))
		if err != nil {
			return "", err
		}
		var log wal.Log = slog
		var wl *checkpointingLog
		if ckpt {
			ck := engine.NewCheckpointer(slog, engine.CheckpointEveryRecords(64))
			wl = &checkpointingLog{inner: slog, ck: ck, every: 64}
			log = wl
		}
		e, err := build()
		if err != nil {
			return "", err
		}
		for i := 0; i < fleetN-1; i++ {
			inst, err := e.CreateInstance(proc.Name, nil, log)
			if err == nil {
				err = inst.Start()
			}
			if err != nil {
				return "", err
			}
		}
		fl := wal.NewSegmentedFaultLog(slog, recsPerInst/2, true)
		inst, err := e.CreateInstance(proc.Name, nil, fl)
		if err != nil {
			return "", err
		}
		id := inst.ID()
		if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
			return "", fmt.Errorf("want crash, got %v", err)
		}
		if wl != nil {
			if wl.err != nil {
				return "", wl.err
			}
			if err := wl.ck.CheckpointNow(); err != nil {
				return "", err
			}
		}
		return id, slog.Close()
	}

	// Full-history trail: no checkpoints exist, so the query must read
	// everything the fleet ever logged.
	dirA := filepath.Join(root, "full")
	idA, err := run(dirA, false)
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("B16 full trail: %w", err)
		return r
	}
	srcA := &history.Source{WAL: dirA, Full: true}
	startA := time.Now()
	snapA, nA, stA, err := srcA.StateAt(build, idA, 0)
	wallA := time.Since(startA)
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("B16 full query: %w", err)
		return r
	}

	// Checkpointed trail: the bounded rung answers from the newest
	// checkpoint plus the segment tail.
	dirB := filepath.Join(root, "ckpt")
	idB, err := run(dirB, true)
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("B16 ckpt trail: %w", err)
		return r
	}
	srcB := &history.Source{WAL: dirB}
	startB := time.Now()
	snapB, nB, stB, err := srcB.StateAt(build, idB, 0)
	wallB := time.Since(startB)
	if err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("B16 bounded query: %w", err)
		return r
	}

	r.AddRow("full history", stA.Rung, fmt.Sprint(stA.RecordsRead), fmt.Sprint(stA.RecordsReplayed), wallA.String(), "1.0")
	ratio := float64(stA.RecordsRead) / float64(max(stB.RecordsRead, 1))
	r.AddRow("checkpoint+tail", stB.Rung, fmt.Sprint(stB.RecordsRead), fmt.Sprint(stB.RecordsReplayed), wallB.String(), fmt.Sprintf("%.1f", ratio))

	// Gates: the bounded rung actually engaged, it read >= 10x less, and
	// both rungs reconstruct the same crashed-instance state (IDs differ
	// across the two runs; the navigational state must not).
	switch {
	case stB.Rung == wal.SourceFullReplay:
		r.Pass = false
		r.Err = fmt.Errorf("B16: bounded query fell back to full replay")
	case ratio < 10:
		r.Pass = false
		r.Err = fmt.Errorf("B16: read ratio %.1fx < 10x (full %d, bounded %d)", ratio, stA.RecordsRead, stB.RecordsRead)
	case snapA.Status != snapB.Status || snapA.TrailLen != snapB.TrailLen || nA != nB ||
		len(snapA.Activities) != len(snapB.Activities):
		r.Pass = false
		r.Err = fmt.Errorf("B16: rungs disagree: full %s/%d (%d boundaries) vs bounded %s/%d (%d)",
			snapA.Status, snapA.TrailLen, nA, snapB.Status, snapB.TrailLen, nB)
	}
	return r
}
