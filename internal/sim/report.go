package sim

import (
	"fmt"
	"strings"
)

// Report is one experiment's printable result: a header, column names,
// rows, and an overall pass/fail verdict for the correctness experiments.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Pass    bool
	Err     error
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "== %s: %s [%s]\n", r.ID, r.Title, verdict)
	if r.Err != nil {
		fmt.Fprintf(&sb, "   error: %v\n", r.Err)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		sb.WriteString("   ")
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}
