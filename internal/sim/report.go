package sim

import (
	"fmt"
	"strings"
)

// Report is one experiment's printable result: a header, column names,
// rows, and an overall pass/fail verdict for the correctness experiments.
// Measurement reports additionally carry machine-readable Samples — the
// numbers behind the formatted cells — which cmd/wfbench -json serializes
// for the perf trajectory.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Pass    bool
	Err     error
	Samples []Sample
}

// Sample is one measured data point of a report, in raw (unformatted)
// units so BENCH_*.json files can be compared across PRs.
type Sample struct {
	// Name identifies the measured case within the report, e.g.
	// "B1/chain/1000".
	Name string `json:"name"`
	// NsOp is the mean ns per operation; MinNsOp the fastest batch's
	// per-op time (the cross-PR comparison statistic, see measureStats);
	// Iters how many timed iterations contributed.
	NsOp    float64 `json:"ns_op"`
	MinNsOp float64 `json:"min_ns_op,omitempty"`
	Iters   int     `json:"iters,omitempty"`
	// RecordsPerSec is the report-specific throughput figure (activities,
	// log records, or commits per second); 0 when not applicable.
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddSample records a machine-readable data point.
func (r *Report) AddSample(s Sample) {
	r.Samples = append(r.Samples, s)
}

// sampleFrom converts a Timing into a Sample.
func sampleFrom(name string, tm Timing, recordsPerSec float64) Sample {
	return Sample{Name: name, NsOp: tm.MeanNs, MinNsOp: tm.MinNs, Iters: tm.Iters, RecordsPerSec: recordsPerSec}
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var sb strings.Builder
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "== %s: %s [%s]\n", r.ID, r.Title, verdict)
	if r.Err != nil {
		fmt.Fprintf(&sb, "   error: %v\n", r.Err)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		sb.WriteString("   ")
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return sb.String()
}
