package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/fmtm"
	"repro/internal/rm"
)

// The paper (§2, §3.3) lists simulation among the capabilities that make
// workflow systems useful beyond anything transaction models offer. This
// file implements a Monte-Carlo simulator for advanced transaction
// specifications: given per-subtransaction abort probabilities, it
// estimates outcome distributions — which execution path a flexible
// transaction commits on, how often a saga must compensate, how many
// compensations run — before anything touches a real system.

// probDecider aborts each named subtransaction independently with its
// configured probability (retriable semantics emerge from the executors'
// retry loops). Unlisted names always commit.
type probDecider struct {
	r     *rand.Rand
	abort map[string]float64
}

func (d *probDecider) Decide(name string) rm.Outcome {
	if p, ok := d.abort[name]; ok && d.r.Float64() < p {
		return rm.Abort
	}
	return rm.Commit
}

// SagaSimResult is the estimated outcome distribution of a saga.
type SagaSimResult struct {
	Trials            int
	CommitRate        float64
	MeanCompensations float64
	// AbortAt[i] is the fraction of trials that aborted at step i+1.
	AbortAt []float64
}

// SimulateSaga runs the saga spec through the native executor trials times
// under independent per-step abort probabilities.
func SimulateSaga(spec *saga.Spec, abort map[string]float64, trials int, seed int64) (SagaSimResult, error) {
	if err := spec.Validate(); err != nil {
		return SagaSimResult{}, err
	}
	dec := &probDecider{r: rand.New(rand.NewSource(seed)), abort: abort}
	binding := fmtm.PureSagaBinding(spec)
	res := SagaSimResult{Trials: trials, AbortAt: make([]float64, len(spec.Steps))}
	var commits int
	var compensations int
	compSet := map[string]bool{}
	for _, st := range spec.Steps {
		compSet[st.Compensation] = true
	}
	for i := 0; i < trials; i++ {
		rec := &rm.Recorder{}
		ex := &saga.Executor{Decider: dec}
		out, err := ex.Execute(spec, binding, rec)
		if err != nil {
			return SagaSimResult{}, err
		}
		if out.Committed {
			commits++
		} else {
			res.AbortAt[out.AbortedAt-1]++
		}
		for _, ev := range rec.Events() {
			if compSet[ev.Name] && ev.Kind == rm.EvCommit {
				compensations++
			}
		}
	}
	res.CommitRate = float64(commits) / float64(trials)
	res.MeanCompensations = float64(compensations) / float64(trials)
	for i := range res.AbortAt {
		res.AbortAt[i] /= float64(trials)
	}
	return res, nil
}

// FlexSimResult is the estimated outcome distribution of a flexible
// transaction.
type FlexSimResult struct {
	Trials int
	// PathRate maps a committed path (subtransaction names joined with
	// ",") to its frequency; the empty key is global abort.
	PathRate map[string]float64
	// AbortRate is the global-abort frequency.
	AbortRate float64
	// MeanSwitches is the average number of path switches per trial.
	MeanSwitches float64
}

// SimulateFlexible runs the flexible-transaction spec through the native
// executor trials times under independent abort probabilities. Retriable
// subtransactions retry inside the executor, so their abort probability
// shapes latency, not outcome.
func SimulateFlexible(spec *flexible.Spec, abort map[string]float64, trials int, seed int64) (FlexSimResult, error) {
	trie, err := flexible.BuildTrie(spec)
	if err != nil {
		return FlexSimResult{}, err
	}
	if err := trie.CheckWellFormed(); err != nil {
		return FlexSimResult{}, err
	}
	dec := &probDecider{r: rand.New(rand.NewSource(seed)), abort: abort}
	binding := fmtm.PureFlexibleBinding(spec)
	res := FlexSimResult{Trials: trials, PathRate: map[string]float64{}}
	var switches int
	for i := 0; i < trials; i++ {
		ex := &flexible.Executor{Decider: dec}
		out, err := ex.Execute(spec, binding, nil)
		if err != nil {
			return FlexSimResult{}, err
		}
		switches += out.Switches
		if out.Committed {
			res.PathRate[strings.Join(out.Path, ",")]++
		} else {
			res.AbortRate++
		}
	}
	for k := range res.PathRate {
		res.PathRate[k] /= float64(trials)
	}
	res.AbortRate /= float64(trials)
	res.MeanSwitches = float64(switches) / float64(trials)
	return res, nil
}

// RunS1 is the simulation table printed by cmd/wfbench: the outcome
// distribution of the paper's Figure 3 flexible transaction as the abort
// probability of every non-retriable subtransaction sweeps upward — the
// quantitative version of the alternatives argument of §4.2: higher
// failure rates shift commits from the preferred path p1 to the rescue
// paths p2/p3 before any trial ends in a global abort, because global
// abort requires T1 or T2 to fail.
func RunS1() *Report {
	r := &Report{
		ID:      "S1",
		Title:   "simulation (§3.3): Fig. 3 outcome distribution vs per-subtransaction abort probability",
		Columns: []string{"p(abort)", "p1 rate", "p2 rate", "p3 rate", "global abort", "mean switches"},
		Pass:    true,
	}
	spec := Fig3Flexible()
	const trials = 4000
	p1 := "T1,T2,T4,T5,T6,T8"
	p2 := "T1,T2,T4,T7"
	p3 := "T1,T2,T3"
	for _, p := range []float64{0.0, 0.05, 0.1, 0.2, 0.4} {
		abort := map[string]float64{}
		for _, sub := range spec.Subs {
			if !sub.Retriable {
				abort[sub.Name] = p
			}
		}
		out, err := SimulateFlexible(spec, abort, trials, 42)
		if err != nil {
			r.Pass = false
			r.Err = err
			return r
		}
		// Sanity: rates sum to 1.
		sum := out.AbortRate
		for _, v := range out.PathRate {
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			r.Pass = false
		}
		r.AddRow(
			fmt.Sprintf("%.2f", p),
			fmt.Sprintf("%.3f", out.PathRate[p1]),
			fmt.Sprintf("%.3f", out.PathRate[p2]),
			fmt.Sprintf("%.3f", out.PathRate[p3]),
			fmt.Sprintf("%.3f", out.AbortRate),
			fmt.Sprintf("%.2f", out.MeanSwitches),
		)
	}
	return r
}

// sortedPaths lists the observed committed paths of a FlexSimResult in
// decreasing frequency, for reports and tests.
func (r FlexSimResult) sortedPaths() []string {
	out := make([]string, 0, len(r.PathRate))
	for k := range r.PathRate {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return r.PathRate[out[i]] > r.PathRate[out[j]] })
	return out
}
