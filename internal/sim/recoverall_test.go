package sim

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/wal"
)

// flakyProcess is a 3-step chain whose middle activity fails transiently
// on its first two attempts, so a crash-time log can hold a
// started-without-finish witness for an activity mid-retry.
func flakyProcess() *model.Process {
	p := model.NewProcess("Flaky")
	p.Activities = []*model.Activity{
		{Name: "F1", Kind: model.KindProgram, Program: "ok"},
		{Name: "F2", Kind: model.KindProgram, Program: "flaky",
			Retry: &model.RetryPolicy{MaxAttempts: 3, BackoffMS: 1}},
		{Name: "F3", Kind: model.KindProgram, Program: "ok"},
	}
	p.Control = []*model.ControlConnector{
		{From: "F1", To: "F2", Condition: expr.MustParse("RC = 0")},
		{From: "F2", To: "F3", Condition: expr.MustParse("RC = 0")},
	}
	return p
}

// mixedFleetEngine registers every workload the interleaved RecoverAll
// test uses on one engine: the plain chain, the travel saga on its
// compensation path, and the flaky retry chain.
func mixedFleetEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, _ := travelWorkload()
	mustRegister(e, "ok", OKProgram)
	mustRegister(e, "flaky", engine.ProgramFunc(func(inv *engine.Invocation) error {
		if inv.Attempt < 3 {
			return engine.Transient(errors.New("resource manager unavailable"))
		}
		inv.Out.SetRC(0)
		return nil
	}))
	if err := e.RegisterProcess(Chain("c4", 4)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(flakyProcess()); err != nil {
		t.Fatal(err)
	}
	return e
}

// firstIndex returns the position of the first record matching pred, or -1.
func firstIndex(recs []wal.Record, pred func(wal.Record) bool) int {
	for i, rec := range recs {
		if pred(rec) {
			return i
		}
	}
	return -1
}

// TestRecoverAllInterleavedFleet checks RecoverAll over a shared
// group-commit log holding nine interleaved instances in every
// interesting crash posture: finished (chain and saga), crashed
// mid-chain, crashed mid-compensation (after the first cancellation, and
// with a cancellation started but unfinished), and crashed mid-retry
// (a started-without-finish witness under a RetryPolicy). Each instance
// runs solo first to fix its baseline and its surviving record prefix;
// the prefixes are interleaved round-robin, pushed through a real
// GroupCommitLog onto disk, repaired, and recovered on a fresh engine.
// Every recovered instance must finish with its baseline's trail and
// output.
func TestRecoverAllInterleavedFleet(t *testing.T) {
	// Clean travel baseline, used both for expectations and to find the
	// compensation-phase crash points.
	e0 := mixedFleetEngine(t)
	cleanTravel := &wal.MemLog{}
	travelBase, err := e0.CreateInstance("travel", nil, cleanTravel)
	if err == nil {
		err = travelBase.Start()
	}
	if err != nil || !travelBase.Finished() {
		t.Fatalf("travel baseline: %v", err)
	}
	travelRecs := cleanTravel.Records()
	// Crash right after the first compensation completed...
	cancelDone := firstIndex(travelRecs, func(r wal.Record) bool {
		return r.Type == wal.RecFinishedActivity && strings.Contains(r.Path, "cancel")
	})
	// ...and right after a compensation started but before it finished.
	cancelStarted := firstIndex(travelRecs, func(r wal.Record) bool {
		return r.Type == wal.RecStartedActivity && strings.Contains(r.Path, "cancel")
	})
	if cancelDone < 0 || cancelStarted < 0 {
		t.Fatalf("no compensation records in travel baseline (%d records)", len(travelRecs))
	}

	// Flaky baseline: crash right after the mid-retry activity's started
	// record, leaving a half-executed witness for an activity that was
	// inside its retry/backoff loop.
	cleanFlaky := &wal.MemLog{}
	flakyBase, err := e0.CreateInstance("Flaky", nil, cleanFlaky)
	if err == nil {
		err = flakyBase.Start()
	}
	if err != nil || !flakyBase.Finished() {
		t.Fatalf("flaky baseline: %v", err)
	}
	flakyStarted := firstIndex(cleanFlaky.Records(), func(r wal.Record) bool {
		return r.Type == wal.RecStartedActivity && strings.Contains(r.Path, "F2")
	})
	if flakyStarted < 0 {
		t.Fatal("no started record for F2 in flaky baseline")
	}

	cleanChain := &wal.MemLog{}
	chainBase, err := e0.CreateInstance("c4", nil, cleanChain)
	if err == nil {
		err = chainBase.Start()
	}
	if err != nil || !chainBase.Finished() {
		t.Fatalf("chain baseline: %v", err)
	}

	type member struct {
		process    string
		crashAfter int // 0 = run to completion
		baseline   *engine.Instance
	}
	fleet := []member{
		{"c4", 0, chainBase},
		{"c4", 0, chainBase},
		{"c4", 3, chainBase}, // crashed mid-chain
		{"travel", 0, travelBase},
		{"travel", cancelDone + 1, travelBase},    // first compensation done, rest pending
		{"travel", cancelStarted + 1, travelBase}, // compensation half-executed
		{"Flaky", 0, flakyBase},
		{"Flaky", flakyStarted + 1, flakyBase}, // mid-retry witness
		{"c4", 0, chainBase},
	}

	// Solo runs on one engine (unique instance IDs) fix each member's
	// surviving records and expected end state.
	e1 := mixedFleetEngine(t)
	perInst := make(map[string][]wal.Record)
	expect := make(map[string]*engine.InstanceSnapshot)
	expectTrail := make(map[string]string)
	expectOut := make(map[string]*model.Container)
	var order []string
	for i, m := range fleet {
		log := &wal.MemLog{CrashAfter: m.crashAfter}
		inst, err := e1.CreateInstance(m.process, nil, log)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		err = inst.Start()
		if m.crashAfter == 0 {
			if err != nil || !inst.Finished() {
				t.Fatalf("member %d (%s): %v", i, m.process, err)
			}
		} else if !errors.Is(err, wal.ErrCrash) {
			t.Fatalf("member %d (%s): want crash, got %v", i, m.process, err)
		}
		perInst[inst.ID()] = log.Records()
		expect[inst.ID()] = m.baseline.Snapshot()
		expectTrail[inst.ID()] = fmt.Sprint(trailStrings(m.baseline))
		expectOut[inst.ID()] = m.baseline.Output()
		order = append(order, inst.ID())
	}

	// Interleave round-robin and push through a real group-commit log so
	// the on-disk file is what a shared fleet WAL looks like.
	path := filepath.Join(t.TempDir(), "fleet.wal")
	flog, err := wal.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	g := wal.NewGroupCommitLog(flog)
	for i := 0; ; i++ {
		wrote := false
		for _, id := range order {
			if i < len(perInst[id]) {
				if err := g.Append(perInst[id][i]); err != nil {
					t.Fatal(err)
				}
				wrote = true
			}
		}
		if !wrote {
			break
		}
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	recs, dropped, err := wal.RepairFile(path)
	if err != nil || dropped != 0 {
		t.Fatalf("repair: %v (dropped %d)", err, dropped)
	}

	e2 := mixedFleetEngine(t)
	insts, err := engine.RecoverAll(e2, recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != len(fleet) {
		t.Fatalf("recovered %d instances, want %d", len(insts), len(fleet))
	}
	for _, inst := range insts {
		want, ok := expect[inst.ID()]
		if !ok {
			t.Fatalf("recovered unknown instance %s", inst.ID())
		}
		if !inst.Finished() {
			t.Fatalf("%s not finished after recovery: %v", inst.ID(), inst.Err())
		}
		if got := fmt.Sprint(trailStrings(inst)); got != expectTrail[inst.ID()] {
			t.Fatalf("%s trail diverges:\ngot:  %s\nwant: %s", inst.ID(), got, expectTrail[inst.ID()])
		}
		if !inst.Output().Equal(expectOut[inst.ID()]) {
			t.Fatalf("%s output diverges from baseline", inst.ID())
		}
		got := inst.Snapshot()
		// The IDs differ between baseline and fleet member; compare the
		// rest of the snapshot.
		got.ID = want.ID
		if !got.Equal(want) {
			t.Fatalf("%s snapshot diverges:\n%+v\nvs\n%+v", inst.ID(), got, want)
		}
	}
}
