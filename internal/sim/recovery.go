package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/wal"
)

// checkpointingLog wraps a Log and runs a synchronous checkpoint pass
// every `every` acknowledged appends — a deterministic stand-in for the
// background Checkpointer, so soak iterations are reproducible down to
// which records each checkpoint covers.
type checkpointingLog struct {
	inner wal.Log
	ck    *engine.Checkpointer
	every int
	n     int
	err   error
}

func (l *checkpointingLog) Append(rec wal.Record) error {
	if err := l.inner.Append(rec); err != nil {
		return err
	}
	l.n++
	if l.every > 0 && l.n%l.every == 0 {
		if err := l.ck.CheckpointNow(); err != nil && l.err == nil {
			l.err = err
		}
	}
	return nil
}

// fallbackCount reads the global checkpoint-fallback counter that
// wal.LoadCheckpoint increments when it skips a damaged checkpoint.
func fallbackCount() int64 {
	return obs.Default.Counter("recover.checkpoint_fallbacks").Value()
}

// segmentBytes sums the on-disk size of every WAL segment in dir.
func segmentBytes(dir string) int64 {
	segs, err := wal.ListSegments(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, s := range segs {
		if fi, err := os.Stat(s.Path); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// RunE9 is the checkpointed-recovery soak. It extends E7/E8 to the
// segmented WAL and the checkpoint fallback ladder:
//
//   - both E7 workloads (travel saga on the compensation path, Figure 3
//     flexible transaction) crash at every record boundary — clean and
//     short-write, in both the text and the binary record framing — over a
//     SegmentedLog; a checkpoint pass folds the segments sealed at crash
//     time (the checkpointer reads only sealed, immutable files, so a
//     post-crash pass is byte-identical to a background pass that ran just
//     before the crash), and recovery seeds from the checkpoint plus the
//     repaired tail. Crash points inside the compensation phase exercise
//     checkpoints taken mid-compensation; crash points just after a
//     rotation leave an empty or torn fresh segment behind.
//   - a mixed-format handoff: a text-era segment directory is reopened
//     with the binary format, crashed at every binary record boundary with
//     a torn frame, and both the text-era and binary-era instances must
//     recover across the framing switch.
//   - the ladder cases: a leftover checkpoint .tmp file is ignored, a
//     torn newest checkpoint falls back to the previous one, and a run
//     whose only checkpoint is damaged (nothing pruned yet) falls all the
//     way back to full replay.
//   - a fleet of 4 chain instances shares one group-committed segmented
//     log, crashed at every batch boundary; no acknowledged append may be
//     lost and RecoverAllFromCheckpoint must restore or Done-account every
//     instance.
//
// Every recovery must reproduce the baseline's audit trail and a
// bit-identical output container.
func RunE9() *Report {
	r := &Report{
		ID:      "E9",
		Title:   "checkpointed recovery soak: segmented WAL + checkpoint ladder, identical outcome at every crash point",
		Columns: []string{"case", "format", "mode", "records", "crash points", "ckpt recoveries", "torn tails", "recovered ok"},
		Pass:    true,
	}
	root, err := os.MkdirTemp("", "ckpt-soak")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(root)
	caseDir := func(name string) string {
		dir := filepath.Join(root, name)
		os.RemoveAll(dir)
		return dir
	}

	// Part 1: single-instance crash sweep over a segmented log.
	type workload struct {
		name string
		mk   func() (*engine.Engine, string)
	}
	for _, w := range []workload{{"travel saga abort@book_car", travelWorkload}, {"flexible Fig.3 abort@T6", flexibleWorkload}} {
		// Baseline on an in-memory log for trail, output and record count.
		e, proc := w.mk()
		clean := &wal.MemLog{}
		base, err := e.CreateInstance(proc, nil, clean)
		if err == nil {
			err = base.Start()
		}
		if err != nil || !base.Finished() {
			r.Pass = false
			r.Err = fmt.Errorf("E9 %s baseline: %v", w.name, err)
			return r
		}
		baseTrail := fmt.Sprint(trailStrings(base))
		total := clean.Len()

		for _, format := range []wal.Format{wal.FormatText, wal.FormatBinary} {
			for _, mode := range []struct {
				name       string
				shortWrite bool
			}{{"clean crash", false}, {"short write", true}} {
				okAll := true
				ckptUsed := 0
				repaired := 0
				for crashAt := 1; crashAt < total && okAll; crashAt++ {
					dir := caseDir("sweep")
					slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4), wal.SegmentFormat(format))
					if err != nil {
						okAll = false
						break
					}
					fl := wal.NewSegmentedFaultLog(slog, crashAt, mode.shortWrite)
					e2, proc2 := w.mk()
					inst, err := e2.CreateInstance(proc2, nil, fl)
					if err != nil {
						okAll = false
						break
					}
					if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
						okAll = false
						break
					}
					// Fold the segments sealed at crash time into a checkpoint,
					// then flush the torn active segment to disk.
					ck := engine.NewCheckpointer(slog)
					if err := ck.CheckpointNow(); err != nil {
						okAll = false
						break
					}
					if err := slog.Close(); err != nil {
						okAll = false
						break
					}
					cp, err := wal.LoadCheckpoint(dir)
					if err != nil {
						okAll = false
						break
					}
					cover := 0
					if cp != nil {
						ckptUsed++
						cover = cp.Cover
					}
					tail, dropped, err := wal.RepairSegments(dir, cover)
					if err != nil {
						okAll = false
						break
					}
					if mode.shortWrite && dropped == 0 {
						okAll = false // the torn tail must have been detected
						break
					}
					if dropped > 0 {
						repaired++
					}
					e3, _ := w.mk()
					insts, err := engine.RecoverAllFromCheckpoint(e3, cp, tail, nil)
					if err != nil || len(insts) != 1 {
						okAll = false
						break
					}
					rec := insts[0]
					if !rec.Finished() || fmt.Sprint(trailStrings(rec)) != baseTrail || !rec.Output().Equal(base.Output()) {
						okAll = false
						break
					}
				}
				if ckptUsed == 0 {
					okAll = false // late crash points must have sealed segments to fold
				}
				if !okAll {
					r.Pass = false
				}
				verdict := "yes"
				if !okAll {
					verdict = "NO"
				}
				r.AddRow(w.name, format.String(), mode.name, fmt.Sprint(total), fmt.Sprint(total-1),
					fmt.Sprint(ckptUsed), fmt.Sprint(repaired), verdict)
			}
		}
	}

	// Part 1b: mixed-format handoff. Session one runs instance A over a
	// text-format segmented directory and shuts down cleanly; session two
	// reopens the same directory with the binary format (old segments keep
	// their text headers, new ones are binary) and crashes mid-way through
	// instance B with a torn frame on disk. A checkpoint pass plus
	// RepairSegments must then recover both instances across the framing
	// switch with zero acknowledged appends lost.
	mixedOK := func() error {
		e, proc := travelWorkload()
		clean := &wal.MemLog{}
		base, err := e.CreateInstance(proc, nil, clean)
		if err == nil {
			err = base.Start()
		}
		if err != nil || !base.Finished() {
			return fmt.Errorf("baseline: %v", err)
		}
		baseTrail := fmt.Sprint(trailStrings(base))
		total := clean.Len()

		for crashAt := 1; crashAt < total; crashAt++ {
			dir := caseDir("mixed")

			// Session one: text era. Instance A runs to completion.
			slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4))
			if err != nil {
				return err
			}
			e1, proc1 := travelWorkload()
			instA, err := e1.CreateInstance(proc1, nil, slog)
			if err == nil {
				err = instA.Start()
			}
			if err != nil || !instA.Finished() {
				return fmt.Errorf("crashAt %d text era: %v", crashAt, err)
			}
			if err := slog.Close(); err != nil {
				return err
			}

			// Session two: reopen binary. Instance B crashes with a torn
			// frame in a binary segment while the text history sits below.
			slog2, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4), wal.SegmentFormat(wal.FormatBinary))
			if err != nil {
				return err
			}
			fl := wal.NewSegmentedFaultLog(slog2, crashAt, true)
			instB, err := e1.CreateInstance(proc1, nil, fl)
			if err != nil {
				return err
			}
			if err := instB.Start(); !errors.Is(err, wal.ErrCrash) {
				return fmt.Errorf("crashAt %d: want crash, got %v", crashAt, err)
			}
			ck := engine.NewCheckpointer(slog2)
			if err := ck.CheckpointNow(); err != nil {
				return err
			}
			if err := slog2.Close(); err != nil {
				return err
			}

			cp, err := wal.LoadCheckpoint(dir)
			if err != nil {
				return err
			}
			cover := 0
			if cp != nil {
				cover = cp.Cover
			}
			tail, dropped, err := wal.RepairSegments(dir, cover)
			if err != nil {
				return err
			}
			if dropped == 0 {
				return fmt.Errorf("crashAt %d: torn binary tail not detected", crashAt)
			}
			e3, _ := travelWorkload()
			insts, err := engine.RecoverAllFromCheckpoint(e3, cp, tail, nil)
			if err != nil {
				return err
			}
			doneN := 0
			if cp != nil {
				doneN = len(cp.Done)
			}
			if len(insts)+doneN != 2 {
				return fmt.Errorf("crashAt %d: recovered %d + done %d != 2", crashAt, len(insts), doneN)
			}
			for _, rec := range insts {
				if !rec.Finished() || fmt.Sprint(trailStrings(rec)) != baseTrail || !rec.Output().Equal(base.Output()) {
					return fmt.Errorf("crashAt %d: mixed-format recovery diverges from baseline", crashAt)
				}
			}
		}
		return nil
	}()
	mixedVerdict := "yes"
	if mixedOK != nil {
		mixedVerdict = "NO"
		r.Pass = false
		if r.Err == nil {
			r.Err = fmt.Errorf("E9 mixed-format handoff: %w", mixedOK)
		}
	}
	r.AddRow("mixed: text era then binary reopen, torn binary tail", "text+binary", "short write",
		"-", "-", "-", "-", mixedVerdict)

	// Part 2: the fallback ladder. A clean travel run checkpointed every 4
	// records leaves a chain of checkpoints (newest two retained); damaging
	// them rung by rung must degrade gracefully, and a leftover .tmp from
	// an interrupted checkpoint write must be ignored.
	ladderOK := func() error {
		e, proc := travelWorkload()
		clean := &wal.MemLog{}
		base, err := e.CreateInstance(proc, nil, clean)
		if err == nil {
			err = base.Start()
		}
		if err != nil {
			return err
		}
		baseTrail := fmt.Sprint(trailStrings(base))

		dir := caseDir("ladder")
		slog, err := wal.OpenSegmentedLog(dir)
		if err != nil {
			return err
		}
		ck := engine.NewCheckpointer(slog, engine.CheckpointEveryRecords(4))
		wl := &checkpointingLog{inner: slog, ck: ck, every: 4}
		e2, proc2 := travelWorkload()
		inst, err := e2.CreateInstance(proc2, nil, wl)
		if err == nil {
			err = inst.Start()
		}
		if err != nil || wl.err != nil {
			return fmt.Errorf("checkpointed run: %v / %v", err, wl.err)
		}
		if err := slog.Close(); err != nil {
			return err
		}
		cps, err := wal.ListCheckpoints(dir)
		if err != nil {
			return err
		}
		if len(cps) != 2 {
			return fmt.Errorf("retention kept %d checkpoints, want 2", len(cps))
		}

		// A leftover temp file from an interrupted checkpoint write must
		// not shadow the real newest checkpoint.
		if err := os.WriteFile(filepath.Join(dir, "ckpt-999999.ckpt.tmp"), []byte("garbage"), 0o644); err != nil {
			return err
		}
		cp, err := wal.LoadCheckpoint(dir)
		if err != nil || cp == nil {
			return fmt.Errorf("load with .tmp leftover: %v", err)
		}
		newest, err := wal.ReadCheckpoint(cps[1].Path)
		if err != nil {
			return err
		}
		if cp.Seq != newest.Seq {
			return fmt.Errorf(".tmp leftover changed checkpoint selection: got seq %d want %d", cp.Seq, newest.Seq)
		}

		// Tear the newest checkpoint: the ladder must fall back to the
		// previous one, whose tail segments retention kept on disk.
		raw, err := os.ReadFile(cps[1].Path)
		if err != nil {
			return err
		}
		if err := os.WriteFile(cps[1].Path, raw[:len(raw)/2], 0o644); err != nil {
			return err
		}
		before := fallbackCount()
		cp, err = wal.LoadCheckpoint(dir)
		if err != nil || cp == nil {
			return fmt.Errorf("fallback load: %v", err)
		}
		if cp.Seq != cps[0].Seq {
			return fmt.Errorf("fell back to seq %d, want %d", cp.Seq, cps[0].Seq)
		}
		if fallbackCount() <= before {
			return errors.New("fallback counter did not advance")
		}
		tail, _, err := wal.RepairSegments(dir, cp.Cover)
		if err != nil {
			return err
		}
		e3, _ := travelWorkload()
		insts, err := engine.RecoverAllFromCheckpoint(e3, cp, tail, nil)
		if err != nil {
			return err
		}
		if len(insts)+len(cp.Done) != 1 {
			return fmt.Errorf("recovered %d + done %d != 1", len(insts), len(cp.Done))
		}
		for _, rec := range insts {
			if !rec.Finished() || fmt.Sprint(trailStrings(rec)) != baseTrail || !rec.Output().Equal(base.Output()) {
				return errors.New("previous-checkpoint recovery diverges from baseline")
			}
		}
		return nil
	}()
	verdict := "yes"
	if ladderOK != nil {
		verdict = "NO"
		r.Pass = false
		r.Err = fmt.Errorf("E9 ladder: %w", ladderOK)
	}
	r.AddRow("ladder: .tmp ignored, torn newest -> previous", "text", "-", "-", "2", "1", "1", verdict)

	// Bottom rung: a run with a single checkpoint (nothing pruned yet)
	// whose checkpoint is damaged must recover by full replay.
	fullOK := func() error {
		e, proc := travelWorkload()
		clean := &wal.MemLog{}
		base, err := e.CreateInstance(proc, nil, clean)
		if err == nil {
			err = base.Start()
		}
		if err != nil {
			return err
		}
		baseTrail := fmt.Sprint(trailStrings(base))

		dir := caseDir("fullreplay")
		slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4))
		if err != nil {
			return err
		}
		e2, proc2 := travelWorkload()
		inst, err := e2.CreateInstance(proc2, nil, slog)
		if err == nil {
			err = inst.Start()
		}
		if err != nil {
			return err
		}
		ck := engine.NewCheckpointer(slog)
		if err := ck.CheckpointNow(); err != nil {
			return err
		}
		if err := slog.Close(); err != nil {
			return err
		}
		cps, err := wal.ListCheckpoints(dir)
		if err != nil || len(cps) != 1 {
			return fmt.Errorf("want exactly 1 checkpoint, got %v (%v)", cps, err)
		}
		raw, err := os.ReadFile(cps[0].Path)
		if err != nil {
			return err
		}
		raw[len(raw)/3] ^= 0x40 // flip a bit: CRC mismatch
		if err := os.WriteFile(cps[0].Path, raw, 0o644); err != nil {
			return err
		}
		before := fallbackCount()
		cp, err := wal.LoadCheckpoint(dir)
		if err != nil {
			return err
		}
		if cp != nil {
			return errors.New("damaged checkpoint not rejected")
		}
		if fallbackCount() <= before {
			return errors.New("fallback counter did not advance")
		}
		// With a single checkpoint no segment was ever pruned, so the
		// full-replay rung has the complete history.
		recs, _, err := wal.RepairSegments(dir, 0)
		if err != nil {
			return err
		}
		e3, _ := travelWorkload()
		insts, err := engine.RecoverAllFromCheckpoint(e3, nil, recs, nil)
		if err != nil || len(insts) != 1 {
			return fmt.Errorf("full replay: %v (%d instances)", err, len(insts))
		}
		rec := insts[0]
		if !rec.Finished() || fmt.Sprint(trailStrings(rec)) != baseTrail || !rec.Output().Equal(base.Output()) {
			return errors.New("full-replay recovery diverges from baseline")
		}
		return nil
	}()
	verdict = "yes"
	if fullOK != nil {
		verdict = "NO"
		r.Pass = false
		if r.Err == nil {
			r.Err = fmt.Errorf("E9 full-replay rung: %w", fullOK)
		}
	}
	r.AddRow("ladder: only ckpt damaged -> full replay", "text", "-", "-", "1", "0", "0", verdict)

	// Part 3: fleet over a group-committed segmented log, crashed at every
	// batch boundary (the E8 durability contract, extended to checkpoints).
	const fleet = 4
	const chainN = 5
	proc := Chain("e9", chainN)
	total := fleet * (2*chainN + 2)

	baseE := NewEngine()
	if err := baseE.RegisterProcess(proc); err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	baseRes, err := baseE.RunFleet(engine.FleetOptions{Process: proc.Name, N: 1})
	if err != nil || baseRes.Finished != 1 {
		r.Pass = false
		r.Err = fmt.Errorf("E9 fleet baseline: %v (%v)", err, baseRes)
		return r
	}
	baseOut := baseRes.Instances[0].Output()

	for _, mode := range []struct {
		name       string
		shortWrite bool
	}{{"clean crash", false}, {"short write", true}} {
		okAll := true
		ckptUsed := 0
		repaired := 0
		for crashAt := 1; crashAt < total && okAll; crashAt++ {
			dir := caseDir("fleet")
			slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(8))
			if err != nil {
				okAll = false
				break
			}
			g := wal.NewGroupCommitSegmented(slog,
				wal.GroupCrashAfter(crashAt, mode.shortWrite),
				wal.GroupWithMetricsRegistry(obs.NewRegistry()))
			track := &ackTrackingLog{inner: g}
			e := NewEngine()
			if err := e.RegisterProcess(proc); err != nil {
				okAll = false
				break
			}
			res, err := e.RunFleet(engine.FleetOptions{
				Process: proc.Name, N: fleet, Parallel: fleet, Log: track,
			})
			if err != nil || res.Failed == 0 || !errors.Is(res.Err, wal.ErrCrash) {
				okAll = false
				break
			}
			// One checkpoint pass over whatever sealed before the crash.
			// prev == nil, so no segment is pruned and the full history
			// stays readable for the durability check below.
			ck := engine.NewCheckpointer(slog)
			if err := ck.CheckpointNow(); err != nil {
				okAll = false
				break
			}
			if err := slog.Close(); err != nil {
				okAll = false
				break
			}
			all, dropped, err := wal.RepairSegments(dir, 0)
			if err != nil {
				okAll = false
				break
			}
			if dropped > 0 {
				repaired++
			}
			onDisk := make(map[string]bool, len(all))
			for _, rec := range all {
				onDisk[recKey(rec)] = true
			}
			track.mu.Lock()
			acked := append([]wal.Record(nil), track.acked...)
			track.mu.Unlock()
			for _, rec := range acked {
				if !onDisk[recKey(rec)] {
					okAll = false // an acknowledged append was lost
				}
			}
			if !okAll {
				break
			}
			cp, err := wal.LoadCheckpoint(dir)
			if err != nil {
				okAll = false
				break
			}
			cover := 0
			if cp != nil {
				ckptUsed++
				cover = cp.Cover
			}
			tail, _, err := wal.RepairSegments(dir, cover)
			if err != nil {
				okAll = false
				break
			}
			started := make(map[string]bool)
			for _, rec := range all {
				started[rec.Instance] = true
			}
			e2 := NewEngine()
			if err := e2.RegisterProcess(proc); err != nil {
				okAll = false
				break
			}
			insts, err := engine.RecoverAllFromCheckpoint(e2, cp, tail, nil)
			if err != nil {
				okAll = false
				break
			}
			doneN := 0
			if cp != nil {
				doneN = len(cp.Done)
			}
			if len(insts)+doneN != len(started) {
				okAll = false
				break
			}
			for _, inst := range insts {
				if !inst.Finished() || !inst.Output().Equal(baseOut) {
					okAll = false
					break
				}
			}
		}
		if !okAll {
			r.Pass = false
		}
		verdict := "yes"
		if !okAll {
			verdict = "NO"
		}
		r.AddRow(fmt.Sprintf("fleet %dx chain(%d) group commit", fleet, chainN), "text", mode.name,
			fmt.Sprint(total), fmt.Sprint(total-1), fmt.Sprint(ckptUsed), fmt.Sprint(repaired), verdict)
	}
	return r
}

// RunB10 measures what checkpoints buy at restart: recovery wall time and
// replayed record count as history length grows, with and without
// checkpoints. Each configuration runs N chain instances sequentially
// through a segmented log, crashing mid-way through the last instance;
// the checkpointed variant runs a deterministic checkpoint pass every 64
// appends (retention keeps two checkpoints and prunes covered segments,
// which the on-disk bytes column shows). The acceptance gate is the
// paper-level claim that restart work is bounded by the checkpoint
// period, not the history: at the largest history the checkpointed
// recovery must replay at least 10x fewer records than full replay.
func RunB10() *Report {
	r := &Report{
		ID:      "B10",
		Title:   "bounded restart: recovery time and replayed records vs. history length, with/without checkpoints",
		Columns: []string{"instances", "history records", "mode", "recovery wall", "records replayed", "wal bytes", "replay ratio x"},
		Pass:    true,
	}
	const chainN = 20
	proc := Chain("b10", chainN)
	recsPerInst := 2*chainN + 2

	root, err := os.MkdirTemp("", "wfbench-ckpt")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(root)

	// run executes n instances sequentially (crashing mid-way through the
	// last) over a fresh segmented log in dir, checkpointing every
	// ckptEvery appends when > 0.
	run := func(dir string, n, ckptEvery int) error {
		slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(64))
		if err != nil {
			return err
		}
		var log wal.Log = slog
		var wl *checkpointingLog
		if ckptEvery > 0 {
			ck := engine.NewCheckpointer(slog, engine.CheckpointEveryRecords(64))
			wl = &checkpointingLog{inner: slog, ck: ck, every: ckptEvery}
			log = wl
		}
		e := NewEngine()
		if err := e.RegisterProcess(proc); err != nil {
			return err
		}
		for i := 0; i < n-1; i++ {
			inst, err := e.CreateInstance(proc.Name, nil, log)
			if err == nil {
				err = inst.Start()
			}
			if err != nil {
				return err
			}
		}
		fl := wal.NewSegmentedFaultLog(slog, recsPerInst/2, true)
		inst, err := e.CreateInstance(proc.Name, nil, fl)
		if err != nil {
			return err
		}
		if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
			return fmt.Errorf("want crash, got %v", err)
		}
		if wl != nil {
			if wl.err != nil {
				return wl.err
			}
			// A final pass folds the last sealed segments, as the
			// background checkpointer would have before the crash.
			if err := wl.ck.CheckpointNow(); err != nil {
				return err
			}
		}
		return slog.Close()
	}

	for _, n := range []int{8, 32, 128} {
		history := n * recsPerInst

		// Without checkpoints: full replay of the whole history.
		dirA := filepath.Join(root, fmt.Sprintf("full-%d", n))
		if err := run(dirA, n, 0); err != nil {
			r.Pass = false
			r.Err = fmt.Errorf("B10 n=%d full: %w", n, err)
			return r
		}
		bytesA := segmentBytes(dirA)
		startA := time.Now()
		recsA, _, err := wal.RepairSegments(dirA, 0)
		var instsA []*engine.Instance
		if err == nil {
			eA := NewEngine()
			if rerr := eA.RegisterProcess(proc); rerr != nil {
				err = rerr
			} else {
				instsA, err = engine.RecoverAll(eA, recsA, nil)
			}
		}
		wallA := time.Since(startA)
		if err != nil || len(instsA) != n {
			r.Pass = false
			r.Err = fmt.Errorf("B10 n=%d full recovery: %v (%d instances)", n, err, len(instsA))
			return r
		}

		// With checkpoints: newest checkpoint + segment tail.
		dirB := filepath.Join(root, fmt.Sprintf("ckpt-%d", n))
		if err := run(dirB, n, 64); err != nil {
			r.Pass = false
			r.Err = fmt.Errorf("B10 n=%d ckpt: %w", n, err)
			return r
		}
		bytesB := segmentBytes(dirB)
		startB := time.Now()
		cp, err := wal.LoadCheckpoint(dirB)
		var tail []wal.Record
		var instsB []*engine.Instance
		if err == nil && cp != nil {
			tail, _, err = wal.RepairSegments(dirB, cp.Cover)
			if err == nil {
				eB := NewEngine()
				if rerr := eB.RegisterProcess(proc); rerr != nil {
					err = rerr
				} else {
					instsB, err = engine.RecoverAllFromCheckpoint(eB, cp, tail, nil)
				}
			}
		}
		wallB := time.Since(startB)
		if err != nil || cp == nil {
			r.Pass = false
			r.Err = fmt.Errorf("B10 n=%d ckpt recovery: %v", n, err)
			return r
		}
		if len(instsB)+len(cp.Done) != n {
			r.Pass = false
			r.Err = fmt.Errorf("B10 n=%d: recovered %d + done %d != %d", n, len(instsB), len(cp.Done), n)
			return r
		}
		replayedA := len(recsA)
		replayedB := len(cp.Records) + len(tail)
		ratio := float64(replayedA) / float64(replayedB)

		r.AddRow(fmt.Sprint(n), fmt.Sprint(history), "full replay",
			fmtNs(float64(wallA.Nanoseconds())), fmt.Sprint(replayedA), fmt.Sprint(bytesA), "1.0")
		r.AddRow(fmt.Sprint(n), fmt.Sprint(history), "checkpointed",
			fmtNs(float64(wallB.Nanoseconds())), fmt.Sprint(replayedB), fmt.Sprint(bytesB),
			fmt.Sprintf("%.1f", ratio))
		r.AddSample(Sample{Name: fmt.Sprintf("B10/n=%d/full", n),
			NsOp: float64(wallA.Nanoseconds()), Iters: 1,
			RecordsPerSec: float64(replayedA) / wallA.Seconds()})
		r.AddSample(Sample{Name: fmt.Sprintf("B10/n=%d/ckpt", n),
			NsOp: float64(wallB.Nanoseconds()), Iters: 1,
			RecordsPerSec: float64(replayedB) / wallB.Seconds()})
		if n >= 128 && ratio < 10 {
			r.Pass = false
			r.Err = fmt.Errorf("B10: n=%d replay ratio %.1fx, want >= 10x", n, ratio)
		}
	}
	return r
}
