package sim

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rm"
	"repro/internal/wal"
)

// e10Fleet is the E10 fleet size: enough instances that faults land
// before, between and after instance boundaries, small enough that the
// full op-boundary sweep stays fast.
const e10Fleet = 2

// sagaEventsFromRuns projects an instance's completed program executions
// onto the rm.Event history the saga guarantee quantifies over: every run
// of a step or compensation program becomes a commit (RC == 0) or abort
// event, in trail order. Runs of runtime helper programs (copy, nop) are
// not part of the observable history and are skipped.
func sagaEventsFromRuns(spec *saga.Spec, inst *engine.Instance) []rm.Event {
	names := make(map[string]bool, 2*len(spec.Steps))
	for _, st := range spec.Steps {
		names[st.Name] = true
		names[st.Compensation] = true
	}
	var events []rm.Event
	for _, pr := range inst.ProgramRuns() {
		if !names[pr.Program] {
			continue
		}
		kind := rm.EvCommit
		if pr.RC != 0 {
			kind = rm.EvAbort
		}
		events = append(events, rm.Event{Name: pr.Program, Kind: kind})
	}
	return events
}

// e10Backend opens one of the durable backends under a fault filesystem
// and exposes the handles the sweep needs.
type e10Backend struct {
	name string
	// open returns the group-commit front, a close function for the
	// underlying log (tolerant of sealed-log errors), and a repair
	// function reading back every surviving record.
	open func(dir string, fs wal.FS) (*wal.GroupCommitLog, func() error, func() ([]wal.Record, int, error), error)
}

func e10Backends() []e10Backend {
	return []e10Backend{
		{
			name: "group commit / file log",
			open: func(dir string, fs wal.FS) (*wal.GroupCommitLog, func() error, func() ([]wal.Record, int, error), error) {
				path := filepath.Join(dir, "chaos.wal")
				flog, err := wal.OpenFileLog(path, wal.WithFS(fs), wal.WithMetricsRegistry(obs.NewRegistry()))
				if err != nil {
					return nil, nil, nil, err
				}
				g := wal.NewGroupCommitLog(flog, wal.GroupWithMetricsRegistry(obs.NewRegistry()))
				repair := func() ([]wal.Record, int, error) { return wal.RepairFile(path) }
				return g, g.Close, repair, nil
			},
		},
		{
			name: "group commit / segmented",
			open: func(dir string, fs wal.FS) (*wal.GroupCommitLog, func() error, func() ([]wal.Record, int, error), error) {
				slog, err := wal.OpenSegmentedLog(dir,
					wal.SegmentMaxRecords(8), wal.SegmentFS(fs),
					wal.SegmentMetricsRegistry(obs.NewRegistry()))
				if err != nil {
					return nil, nil, nil, err
				}
				g := wal.NewGroupCommitSegmented(slog, wal.GroupWithMetricsRegistry(obs.NewRegistry()))
				repair := func() ([]wal.Record, int, error) { return wal.RepairSegments(dir, 0) }
				return g, g.Close, repair, nil
			},
		},
		{
			name: "group commit / segmented binary",
			open: func(dir string, fs wal.FS) (*wal.GroupCommitLog, func() error, func() ([]wal.Record, int, error), error) {
				slog, err := wal.OpenSegmentedLog(dir,
					wal.SegmentMaxRecords(8), wal.SegmentFS(fs),
					wal.SegmentFormat(wal.FormatBinary),
					wal.SegmentMetricsRegistry(obs.NewRegistry()))
				if err != nil {
					return nil, nil, nil, err
				}
				g := wal.NewGroupCommitSegmented(slog, wal.GroupWithMetricsRegistry(obs.NewRegistry()))
				repair := func() ([]wal.Record, int, error) { return wal.RepairSegments(dir, 0) }
				return g, g.Close, repair, nil
			},
		},
	}
}

// opTraceFS records the type (write vs sync) of every FS operation the
// clean run performs, so the sweep can schedule each fault kind only at
// boundaries where a matching operation still lies ahead (an EIO
// scheduled after the last write of the run would never fire).
type opTraceFS struct {
	inner wal.FS
	mu    sync.Mutex
	syncs []bool
}

func (fs *opTraceFS) Create(path string) (wal.File, error) {
	f, err := fs.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &opTraceFile{fs: fs, f: f}, nil
}

func (fs *opTraceFS) Rename(oldpath, newpath string) error {
	return fs.inner.Rename(oldpath, newpath)
}

func (fs *opTraceFS) record(isSync bool) {
	fs.mu.Lock()
	fs.syncs = append(fs.syncs, isSync)
	fs.mu.Unlock()
}

// lastMatch returns the highest 1-based boundary at which a fault of the
// given kind can still fire (0 if none).
func (fs *opTraceFS) lastMatch(kind wal.FaultKind) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	wantSync := kind == wal.FaultFsync
	for i := len(fs.syncs) - 1; i >= 0; i-- {
		if fs.syncs[i] == wantSync {
			return int64(i + 1)
		}
	}
	return 0
}

type opTraceFile struct {
	fs *opTraceFS
	f  wal.File
}

func (f *opTraceFile) Write(p []byte) (int, error) {
	f.fs.record(false)
	return f.f.Write(p)
}

func (f *opTraceFile) Sync() error {
	f.fs.record(true)
	return f.f.Sync()
}

func (f *opTraceFile) Close() error { return f.f.Close() }

// e10Run drives one travel-saga fleet over log, with a watchdog bounding
// the drain: a scheduler that deadlocks after a storage fault would hang
// the soak forever, so a run that does not come back within the deadline
// is itself a failure.
func e10Run(log wal.Log) (*engine.FleetResult, error) {
	e, proc := travelWorkload()
	type outcome struct {
		res *engine.FleetResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := e.RunFleet(engine.FleetOptions{
			Process: proc, N: e10Fleet, Parallel: 1, Log: log,
		})
		ch <- outcome{res, err}
	}()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-time.After(30 * time.Second):
		return nil, errors.New("fleet did not drain within 30s after fault (deadlock or leaked worker)")
	}
}

// RunE10 is the storage-fault chaos soak — the deterministic harness for
// the PR's fault domain. For each durable backend (group-committed
// FileLog, SegmentedLog, and SegmentedLog with binary-framed records) it
// first runs the travel-saga fleet over a
// count-only FaultFS to size the schedule, then replays the identical
// workload once per (fault kind x FS op boundary): EIO and ENOSPC write
// failures and post-write fsync failures, injected at every Write/Sync
// the clean run performs. Every iteration must uphold the hardening
// contract:
//
//   - the fleet drains in bounded time (no deadlock, no leaked worker);
//   - failures are typed: the first error wraps the injected sentinel or
//     ErrLogFailed, and once the log is sealed a probe append returns
//     ErrLogFailed — never a silent ack;
//   - zero acked-append loss: every append acknowledged before the fault
//     is present in the repaired on-disk log;
//   - recovery from the repaired records completes every surviving
//     instance with the baseline output, and the compensation-ordering
//     oracle holds — the recovered history still satisfies the §4.1 saga
//     guarantee (forward commits then reverse-order compensations).
//
// The soak ends with a goroutine-leak check across the whole sweep.
func RunE10() *Report {
	r := &Report{
		ID:      "E10",
		Title:   "storage-fault chaos soak: EIO/ENOSPC/fsync-fail at every FS op boundary, typed seal, no acked loss",
		Columns: []string{"backend", "fault", "op boundaries", "faulted runs", "sealed probes", "acks lost", "recovered ok"},
		Pass:    true,
	}
	goroutinesBefore := runtime.NumGoroutine()

	root, err := os.MkdirTemp("", "wal-chaos")
	if err != nil {
		r.Pass = false
		r.Err = err
		return r
	}
	defer os.RemoveAll(root)

	// Crash-free baseline: output container plus a sanity check that the
	// trail-derived history satisfies the guarantee (the oracle must not
	// be vacuous before we trust it on faulted runs).
	spec := TravelSaga()
	baseE, baseProc := travelWorkload()
	baseRes, err := baseE.RunFleet(engine.FleetOptions{Process: baseProc, N: 1})
	if err != nil || baseRes.Finished != 1 {
		r.Pass = false
		r.Err = fmt.Errorf("E10 baseline: %v (%v)", err, baseRes)
		return r
	}
	base := baseRes.Instances[0]
	if err := saga.CheckGuarantee(spec, sagaEventsFromRuns(spec, base)); err != nil {
		r.Pass = false
		r.Err = fmt.Errorf("E10 oracle self-check: %w", err)
		return r
	}

	iter := 0
	for _, backend := range e10Backends() {
		// Count-only pass: trace the FS op sequence of the clean fleet,
		// including the final flush/sync at Close. The sweep schedules a
		// fault at every boundary where the kind can still fire.
		trace := &opTraceFS{inner: wal.OSFS{}}
		dir := filepath.Join(root, fmt.Sprintf("count-%d", iter))
		os.MkdirAll(dir, 0o755)
		g, closeLog, _, err := backend.open(dir, trace)
		if err == nil {
			var res *engine.FleetResult
			res, err = e10Run(g)
			if err == nil && res.Finished != e10Fleet {
				err = fmt.Errorf("clean run finished %d of %d", res.Finished, e10Fleet)
			}
			if cerr := closeLog(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			r.Pass = false
			r.Err = fmt.Errorf("E10 %s count pass: %w", backend.name, err)
			return r
		}
		for _, kind := range []wal.FaultKind{wal.FaultEIO, wal.FaultENOSPC, wal.FaultFsync} {
			boundaries := trace.lastMatch(kind)
			if boundaries == 0 {
				r.Pass = false
				r.Err = fmt.Errorf("E10 %s: clean run performed no %v-matching FS op", backend.name, kind)
				return r
			}
			faulted := 0
			sealedProbes := 0
			acksLost := 0
			okAll := true
			var firstErr error
			for failAt := int64(1); failAt <= boundaries && okAll; failAt++ {
				iter++
				dir := filepath.Join(root, fmt.Sprintf("case-%d", iter))
				os.MkdirAll(dir, 0o755)
				fail := func(format string, args ...any) {
					okAll = false
					if firstErr == nil {
						firstErr = fmt.Errorf("%s/%s failAt=%d: %s",
							backend.name, kind, failAt, fmt.Sprintf(format, args...))
					}
				}

				ffs := wal.NewFaultFS(kind, failAt)
				g, closeLog, repair, err := backend.open(dir, ffs)
				if err != nil {
					fail("open: %v", err)
					break
				}
				track := &ackTrackingLog{inner: g}
				res, err := e10Run(track)
				if err != nil {
					fail("fleet: %v", err)
					break
				}
				if res.Failed > 0 {
					// Typed failure: the sentinel of the injected fault, or
					// the sealed-log error for instances after the first.
					var sentinel error
					switch kind {
					case wal.FaultEIO:
						sentinel = wal.ErrDiskIO
					case wal.FaultENOSPC:
						sentinel = wal.ErrDiskFull
					default:
						sentinel = wal.ErrFsyncFailed
					}
					if !errors.Is(res.Err, sentinel) && !errors.Is(res.Err, wal.ErrLogFailed) {
						fail("untyped failure: %v", res.Err)
					}
					// Sealed-log probe: the log must refuse to ack anything
					// after the fault (fsync-gate — a transient fault must
					// not let later appends ack over a possible hole).
					if err := track.Append(wal.Record{Instance: "probe", Type: "probe"}); errors.Is(err, wal.ErrLogFailed) {
						sealedProbes++
					} else {
						fail("post-fault append = %v, want ErrLogFailed", err)
					}
				}
				closeErr := closeLog()
				// The schedule came from the clean run, whose FS op prefix
				// the faulted run reproduces exactly, so every boundary must
				// fire — during the fleet run or, for the final flush/sync
				// ops, at Close (which must then surface the fault; acked
				// records were already durable from their own batch syncs).
				if !ffs.Fired() {
					fail("fault never fired")
					continue
				}
				faulted++
				if res.Failed == 0 && closeErr == nil {
					fail("fault fired but neither the fleet nor Close reported it")
				}

				// Durability oracle: every acknowledged append survives in
				// the repaired log.
				recs, _, err := repair()
				if err != nil {
					fail("repair: %v", err)
					continue
				}
				onDisk := make(map[string]bool, len(recs))
				for _, rec := range recs {
					onDisk[recKey(rec)] = true
				}
				track.mu.Lock()
				acked := append([]wal.Record(nil), track.acked...)
				track.mu.Unlock()
				for _, rec := range acked {
					if !onDisk[recKey(rec)] {
						acksLost++
						fail("acked append lost: %s", recKey(rec))
					}
				}

				// Recovery + compensation oracle: the surviving instances
				// complete with the baseline output, and their histories
				// still satisfy the saga guarantee.
				e2, _ := travelWorkload()
				insts, err := engine.RecoverAll(e2, recs, nil)
				if err != nil {
					fail("recover: %v", err)
					continue
				}
				for _, inst := range insts {
					if !inst.Finished() {
						fail("recovered instance %s not finished: %v", inst.ID(), inst.Err())
						continue
					}
					if !inst.Output().Equal(base.Output()) {
						fail("recovered instance %s output diverges from baseline", inst.ID())
					}
					if err := saga.CheckGuarantee(spec, sagaEventsFromRuns(spec, inst)); err != nil {
						fail("compensation oracle: %v", err)
					}
				}
			}
			if !okAll {
				r.Pass = false
				if r.Err == nil {
					r.Err = fmt.Errorf("E10 %v", firstErr)
				}
			}
			verdict := "yes"
			if !okAll {
				verdict = "NO"
			}
			r.AddRow(backend.name, kind.String(), fmt.Sprint(boundaries),
				fmt.Sprint(faulted), fmt.Sprint(sealedProbes), fmt.Sprint(acksLost), verdict)
		}
	}

	// Leak check across the whole sweep: transient worker goroutines must
	// have exited once every fleet drained.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+2 {
		r.Pass = false
		r.Err = fmt.Errorf("E10: %d goroutines before sweep, %d after — leak", goroutinesBefore, n)
	}
	return r
}
