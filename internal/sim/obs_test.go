package sim

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/fmtm"
	"repro/internal/obs"
	"repro/internal/rm"
	"repro/internal/wal"
)

// TestSagaRunMetrics pins the engine metrics of a known saga run: the
// travel saga with book_car aborting, i.e. the paper's §4.1 compensation
// scenario. The observable history is book_flight book_hotel book_car(ab)
// cancel_hotel cancel_flight — five program executions, four commits, one
// abort — plus the translator's copy_input runtime program, and the WAL
// append count must equal the log length.
func TestSagaRunMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	spec := TravelSaga()
	e := engine.New(engine.WithMetrics(reg))
	if err := fmtm.RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	inj := rm.NewInjector()
	inj.AbortAlways("book_car")
	rec := &rm.Recorder{}
	if err := fmtm.RegisterSaga(e, spec, fmtm.PureSagaBinding(spec), inj, rec); err != nil {
		t.Fatal(err)
	}
	p, err := fmtm.TranslateSaga(spec, fmtm.SagaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	log := &wal.MemLog{}
	inst, err := e.CreateInstance(spec.Name, nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("instance did not finish")
	}

	runs := inst.ProgramRuns()
	var aborted, committed int64
	for _, r := range runs {
		if r.RC == 0 {
			committed++
		} else {
			aborted++
		}
	}
	c := func(name string) int64 { return reg.Counter(name).Value() }
	if got := c("engine.program.invocations"); got != int64(len(runs)) {
		t.Errorf("invocations = %d, want %d (the completed program runs)", got, len(runs))
	}
	if got := c("engine.program.committed"); got != committed {
		t.Errorf("committed = %d, want %d", got, committed)
	}
	if got := c("engine.program.aborted"); got != aborted {
		t.Errorf("aborted = %d, want %d", got, aborted)
	}
	if aborted != 1 {
		t.Errorf("scenario drifted: aborted = %d, want exactly 1 (book_car)", aborted)
	}
	// The Figure 2 construction discards the unused branch via dead path
	// elimination, so a compensating run must eliminate at least the
	// skipped forward steps.
	if got := c("engine.deadpath.eliminations"); got == 0 {
		t.Error("deadpath.eliminations = 0, want > 0 on the compensation path")
	}
	// No transient failures are scripted, so the retry policy the
	// translator attaches must never fire.
	if got := c("engine.program.retries"); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
	if got := c("engine.wal.appends"); got != int64(log.Len()) {
		t.Errorf("wal.appends = %d, want %d (the log length)", got, log.Len())
	}
	if got := c("engine.instances.finished"); got != 1 {
		t.Errorf("instances.finished = %d, want 1", got)
	}
	if got := reg.Gauge("engine.queue.depth").Value(); got != 0 {
		t.Errorf("queue depth after completion = %d, want 0", got)
	}
}

// TestFileLogMetrics checks the WAL-side instrumentation: append and byte
// counters and the fsync latency histogram, against a fresh registry.
func TestFileLogMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	path := t.TempDir() + "/m.wal"
	flog, err := wal.OpenFileLog(path, wal.WithFsync(), wal.WithMetricsRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := flog.Append(wal.Record{Type: wal.RecCreated, Instance: "i", Process: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := flog.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("wal.file.appends").Value(); got != 3 {
		t.Errorf("wal.file.appends = %d, want 3", got)
	}
	if got := reg.Counter("wal.file.bytes").Value(); got <= 0 {
		t.Errorf("wal.file.bytes = %d, want > 0", got)
	}
	if h := reg.Snapshot().Histograms["wal.fsync_ns"]; h.Count != 3 || h.SumNs <= 0 {
		t.Errorf("wal.fsync_ns count=%d sum=%d, want 3 timed fsyncs", h.Count, h.SumNs)
	}
}
