package model

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func newTestTypes(t *testing.T) *Types {
	t.Helper()
	ts := NewTypes()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(ts.Register(&StructType{Name: "Money", Members: []Member{
		{Name: "amount", Basic: Float},
		{Name: "currency", Basic: String, Default: expr.String_("USD")},
	}}))
	must(ts.Register(&StructType{Name: "Order", Members: []Member{
		{Name: "id", Basic: Long},
		{Name: "total", Struct: "Money"},
		{Name: "paid", Basic: Bool},
	}}))
	must(ts.Register(&StructType{Name: "SagaState", Members: []Member{
		{Name: "State_1", Basic: Long, Default: expr.Int(-1)},
		{Name: "State_2", Basic: Long, Default: expr.Int(-1)},
	}}))
	return ts
}

func TestTypeRegistry(t *testing.T) {
	ts := newTestTypes(t)
	if _, ok := ts.Lookup("Order"); !ok {
		t.Fatal("Order not registered")
	}
	if _, ok := ts.Lookup(DefaultType); !ok {
		t.Fatal("Default type missing")
	}
	if got := len(ts.All()); got != 3 {
		t.Fatalf("All() = %d types, want 3 (Default excluded)", got)
	}
	if err := ts.CheckCycles(); err != nil {
		t.Fatalf("CheckCycles: %v", err)
	}
}

func TestTypeRegistryErrors(t *testing.T) {
	ts := NewTypes()
	cases := []*StructType{
		{Name: ""},
		{Name: DefaultType}, // duplicate
		{Name: "X", Members: []Member{{Name: ""}}},
		{Name: "X", Members: []Member{{Name: "RC", Basic: Long}}},
		{Name: "X", Members: []Member{{Name: "a", Basic: Long}, {Name: "a", Basic: Long}}},
		{Name: "X", Members: []Member{{Name: "a"}}},                                          // neither basic nor struct
		{Name: "X", Members: []Member{{Name: "a", Basic: Long, Struct: "Y"}}},                // both
		{Name: "X", Members: []Member{{Name: "a", Struct: "X"}}},                             // self
		{Name: "X", Members: []Member{{Name: "a", Basic: Long, Default: expr.String_("x")}}}, // bad default
	}
	for i, st := range cases {
		if err := ts.Register(st); err == nil {
			t.Errorf("case %d: Register(%v) succeeded, want error", i, st.Name)
		}
	}
}

func TestTypeCycleDetection(t *testing.T) {
	ts := NewTypes()
	if err := ts.Register(&StructType{Name: "A", Members: []Member{{Name: "b", Struct: "B"}}}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Register(&StructType{Name: "B", Members: []Member{{Name: "a", Struct: "A"}}}); err != nil {
		t.Fatal(err)
	}
	if err := ts.CheckCycles(); err == nil {
		t.Fatal("cycle not detected")
	}
	ts2 := NewTypes()
	if err := ts2.Register(&StructType{Name: "A", Members: []Member{{Name: "b", Struct: "Missing"}}}); err != nil {
		t.Fatal(err)
	}
	if err := ts2.CheckCycles(); err == nil {
		t.Fatal("dangling struct ref not detected")
	}
}

func TestResolvePath(t *testing.T) {
	ts := newTestTypes(t)
	cases := []struct {
		root, path string
		want       BasicKind
		ok         bool
	}{
		{"Order", "id", Long, true},
		{"Order", "total.amount", Float, true},
		{"Order", "total.currency", String, true},
		{"Order", "paid", Bool, true},
		{"Order", "RC", Long, true}, // implicit
		{"Order", "missing", 0, false},
		{"Order", "total", 0, false},          // ends at struct
		{"Order", "id.x", 0, false},           // continues past scalar
		{"Order", "total.amount.x", 0, false}, // continues past scalar
		{"Missing", "id", 0, false},
		{DefaultType, "RC", Long, true},
	}
	for _, c := range cases {
		got, err := ts.ResolvePath(c.root, strings.Split(c.path, "."))
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ResolvePath(%s, %s) = %v, %v; want %v", c.root, c.path, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ResolvePath(%s, %s) succeeded, want error", c.root, c.path)
		}
	}
	if _, err := ts.ResolvePath("Order", nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestContainerBasics(t *testing.T) {
	ts := newTestTypes(t)
	c := ts.MustContainer("Order")
	// Defaults.
	if v := c.MustGet("id"); v.AsInt() != 0 {
		t.Errorf("id default = %v", v)
	}
	if v := c.MustGet("total.currency"); v.AsString() != "USD" {
		t.Errorf("currency default = %v", v)
	}
	if c.RC() != 0 {
		t.Errorf("RC default = %d", c.RC())
	}
	// Set / Get.
	if err := c.Set("id", expr.Int(42)); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("total.amount", expr.Int(7)); err != nil { // int->float widening
		t.Fatal(err)
	}
	if v := c.MustGet("total.amount"); v.Kind() != expr.KindFloat || v.AsFloat() != 7 {
		t.Errorf("total.amount = %v", v)
	}
	if err := c.Set("id", expr.String_("x")); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := c.Set("missing", expr.Int(1)); err == nil {
		t.Error("unknown member accepted")
	}
	c.SetRC(12)
	if c.RC() != 12 {
		t.Error("SetRC failed")
	}
	// Conditions evaluate against containers.
	ok, err := expr.EvalBool(expr.MustParse("total.currency = \"USD\" AND RC = 12"), c)
	if err != nil || !ok {
		t.Errorf("container as env: %v %v", ok, err)
	}
}

func TestContainerCloneAndEqual(t *testing.T) {
	ts := newTestTypes(t)
	a := ts.MustContainer("Order")
	a.MustSet("id", expr.Int(1))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.MustSet("id", expr.Int(2))
	if a.Equal(b) {
		t.Fatal("clone aliases original")
	}
	if a.MustGet("id").AsInt() != 1 {
		t.Fatal("original mutated")
	}
	c := ts.MustContainer("Money")
	if a.Equal(c) {
		t.Fatal("different types equal")
	}
}

func TestContainerSnapshotRestore(t *testing.T) {
	ts := newTestTypes(t)
	a := ts.MustContainer("Order")
	a.MustSet("id", expr.Int(9))
	a.SetRC(3)
	snap := a.Snapshot()
	b := ts.MustContainer("Order")
	if err := b.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("restore mismatch: %s vs %s", a, b)
	}
	if err := b.Restore(map[string]expr.Value{"nope": expr.Int(1)}); err == nil {
		t.Error("restore of unknown path accepted")
	}
}

func TestContainerCopyFrom(t *testing.T) {
	ts := newTestTypes(t)
	src := ts.MustContainer("Order")
	src.MustSet("id", expr.Int(5))
	dst := ts.MustContainer("SagaState")
	if err := dst.CopyFrom(src, "id", "State_1"); err != nil {
		t.Fatal(err)
	}
	if dst.MustGet("State_1").AsInt() != 5 {
		t.Error("CopyFrom did not copy")
	}
	if err := dst.CopyFrom(src, "missing", "State_1"); err == nil {
		t.Error("missing source accepted")
	}
	if err := dst.CopyFrom(src, "id", "missing"); err == nil {
		t.Error("missing target accepted")
	}
}

// buildValidProcess returns a small but complete process exercising all
// construct kinds.
func buildValidProcess(t *testing.T) *Process {
	t.Helper()
	p := NewProcess("Demo")
	p.Types = newTestTypes(t)
	p.InputType = "Order"
	p.OutputType = "SagaState"
	inner := &Graph{
		InputType:  "Order",
		OutputType: "SagaState",
		Activities: []*Activity{
			{Name: "step1", Kind: KindProgram, Program: "p1", InputType: "Order", OutputType: "Order"},
			{Name: "step2", Kind: KindProgram, Program: "p2"},
		},
		Control: []*ControlConnector{
			{From: "step1", To: "step2", Condition: expr.MustParse("RC = 0")},
		},
		Data: []*DataConnector{
			{From: ScopeRef, To: "step1", Maps: []DataMap{{FromPath: "id", ToPath: "id"}}},
			{From: "step1", To: ScopeRef, Maps: []DataMap{{FromPath: "RC", ToPath: "State_1"}}},
		},
	}
	p.Activities = []*Activity{
		{Name: "A", Kind: KindProgram, Program: "prog_a", InputType: "Order", OutputType: "Order",
			Exit: expr.MustParse("RC = 0")},
		{Name: "B", Kind: KindBlock, Block: inner, InputType: "Order", OutputType: "SagaState"},
		{Name: "C", Kind: KindProgram, Program: "prog_c", Join: JoinOr,
			Start: StartManual, Staff: Staff{Role: "clerk"}, NotifySeconds: 60, NotifyRole: "manager"},
	}
	p.Control = []*ControlConnector{
		{From: "A", To: "B", Condition: expr.MustParse("RC = 0")},
		{From: "A", To: "C"},
		{From: "B", To: "C", Condition: expr.MustParse("State_1 = 0")},
	}
	p.Data = []*DataConnector{
		{From: ScopeRef, To: "A", Maps: []DataMap{{FromPath: "id", ToPath: "id"}}},
		{From: "A", To: "B", Maps: []DataMap{{FromPath: "id", ToPath: "id"}}},
		{From: "B", To: ScopeRef, Maps: []DataMap{{FromPath: "State_1", ToPath: "State_1"}}},
	}
	return p
}

func TestValidateOK(t *testing.T) {
	p := buildValidProcess(t)
	if err := p.Validate(nil); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateCatches(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(p *Process)
	}{
		{"empty process name", func(p *Process) { p.Name = "" }},
		{"unknown input type", func(p *Process) { p.InputType = "Nope" }},
		{"duplicate activity", func(p *Process) {
			p.Activities = append(p.Activities, &Activity{Name: "A", Kind: KindProgram, Program: "x"})
		}},
		{"program without name", func(p *Process) { p.Activities[0].Program = "" }},
		{"block without body", func(p *Process) { p.Activities[1].Block = nil }},
		{"bad exit condition ref", func(p *Process) { p.Activities[0].Exit = expr.MustParse("nope = 1") }},
		{"unknown connector source", func(p *Process) {
			p.Control = append(p.Control, &ControlConnector{From: "Zed", To: "C"})
		}},
		{"unknown connector target", func(p *Process) {
			p.Control = append(p.Control, &ControlConnector{From: "A", To: "Zed"})
		}},
		{"self loop", func(p *Process) {
			p.Control = append(p.Control, &ControlConnector{From: "C", To: "C"})
		}},
		{"duplicate connector", func(p *Process) {
			p.Control = append(p.Control, &ControlConnector{From: "A", To: "B"})
		}},
		{"cycle", func(p *Process) {
			p.Control = append(p.Control, &ControlConnector{From: "C", To: "A"})
		}},
		{"bad transition cond ref", func(p *Process) {
			p.Control[0].Condition = expr.MustParse("nonexistent = 0")
		}},
		{"data unknown source", func(p *Process) {
			p.Data = append(p.Data, &DataConnector{From: "Zed", To: "A", Maps: []DataMap{{FromPath: "RC", ToPath: "RC"}}})
		}},
		{"data unknown target", func(p *Process) {
			p.Data = append(p.Data, &DataConnector{From: "A", To: "Zed", Maps: []DataMap{{FromPath: "RC", ToPath: "RC"}}})
		}},
		{"data scope to scope", func(p *Process) {
			p.Data = append(p.Data, &DataConnector{From: ScopeRef, To: ScopeRef, Maps: []DataMap{{FromPath: "id", ToPath: "State_1"}}})
		}},
		{"data empty maps", func(p *Process) {
			p.Data = append(p.Data, &DataConnector{From: "A", To: "B"})
		}},
		{"data bad source path", func(p *Process) {
			p.Data = append(p.Data, &DataConnector{From: "A", To: "B", Maps: []DataMap{{FromPath: "zz", ToPath: "id"}}})
		}},
		{"data incompatible kinds", func(p *Process) {
			p.Data = append(p.Data, &DataConnector{From: "A", To: "B", Maps: []DataMap{{FromPath: "paid", ToPath: "id"}}})
		}},
		{"manual without staff", func(p *Process) {
			p.Activities[2].Staff = Staff{}
		}},
		{"notify without role", func(p *Process) {
			p.Activities[2].NotifyRole = ""
		}},
		{"negative deadline", func(p *Process) {
			p.Activities[2].NotifySeconds = -5
		}},
		{"self subprocess", func(p *Process) {
			p.Activities = append(p.Activities, &Activity{Name: "Z", Kind: KindProcess, Subprocess: "Demo"})
		}},
		{"block type mismatch", func(p *Process) {
			p.Activities[1].Block.InputType = "SagaState"
		}},
		{"inner graph error", func(p *Process) {
			p.Activities[1].Block.Control = append(p.Activities[1].Block.Control,
				&ControlConnector{From: "step2", To: "step1"})
		}},
	}
	for _, m := range mutations {
		p := buildValidProcess(t)
		m.mut(p)
		if err := p.Validate(nil); err == nil {
			t.Errorf("%s: Validate succeeded, want error", m.name)
		}
	}
}

func TestValidateSubprocessRegistry(t *testing.T) {
	p := buildValidProcess(t)
	p.Activities = append(p.Activities, &Activity{Name: "Sub", Kind: KindProcess, Subprocess: "Other"})
	p.Control = append(p.Control, &ControlConnector{From: "C", To: "Sub"})
	if err := p.Validate(nil); err != nil {
		t.Fatalf("nil registry should skip subprocess check: %v", err)
	}
	if err := p.Validate(map[string]bool{"Other": true, "Demo": true}); err != nil {
		t.Fatalf("known subprocess rejected: %v", err)
	}
	if err := p.Validate(map[string]bool{"Demo": true}); err == nil {
		t.Fatal("unknown subprocess accepted")
	}
}

func TestGraphQueries(t *testing.T) {
	p := buildValidProcess(t)
	starts := p.Starts()
	if len(starts) != 1 || starts[0].Name != "A" {
		t.Fatalf("Starts = %v", starts)
	}
	if got := len(p.Incoming("C")); got != 2 {
		t.Errorf("Incoming(C) = %d", got)
	}
	if got := len(p.Outgoing("A")); got != 2 {
		t.Errorf("Outgoing(A) = %d", got)
	}
	if p.Graph.Activity("B") == nil || p.Graph.Activity("zz") != nil {
		t.Error("Activity lookup wrong")
	}
	if got := len(p.DataInto("A")); got != 1 {
		t.Errorf("DataInto(A) = %d", got)
	}
	if got := len(p.DataInto(ScopeRef)); got != 1 {
		t.Errorf("DataInto(scope) = %d", got)
	}
}

func TestStringers(t *testing.T) {
	for _, k := range []ActivityKind{KindProgram, KindProcess, KindBlock, ActivityKind(99)} {
		if k.String() == "" {
			t.Error("empty kind string")
		}
	}
	if JoinAnd.String() != "AND" || JoinOr.String() != "OR" {
		t.Error("join strings")
	}
	if StartAutomatic.String() != "AUTOMATIC" || StartManual.String() != "MANUAL" {
		t.Error("start strings")
	}
	for _, b := range []BasicKind{Long, Float, String, Bool, BasicKind(77)} {
		if b.String() == "" {
			t.Error("empty basic kind string")
		}
	}
	cc := &ControlConnector{From: "a", To: "b"}
	if cc.CondString() != "TRUE" {
		t.Error("nil condition should render TRUE")
	}
	a := &Activity{Name: "x", Kind: KindProgram, Program: "p"}
	if a.In() != DefaultType || a.Out() != DefaultType {
		t.Error("container type defaults")
	}
}
