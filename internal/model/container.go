package model

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// Container is a run-time instance of a structure type: the input or output
// data container of an activity, block or process. Nested structure members
// are flattened to dotted paths internally. Every container additionally
// carries the implicit RC member (a Long, default 0).
//
// Containers implement expr.Env so conditions evaluate directly against
// them. A Container is not safe for concurrent mutation; the engine
// serializes access.
type Container struct {
	typ    *StructType
	types  *Types
	values map[string]expr.Value // dotted path -> value, fully populated with defaults
}

// NewContainer builds a container of the named type with every member set
// to its default value and RC set to 0.
func (ts *Types) NewContainer(typeName string) (*Container, error) {
	t, ok := ts.Lookup(typeName)
	if !ok {
		return nil, fmt.Errorf("model: unknown structure %q", typeName)
	}
	c := &Container{typ: t, types: ts, values: make(map[string]expr.Value)}
	if err := c.populate(t, nil); err != nil {
		return nil, err
	}
	c.values[RCMember] = expr.Int(0)
	return c, nil
}

// MustContainer is NewContainer that panics on error, for tests and
// translators that use registered types.
func (ts *Types) MustContainer(typeName string) *Container {
	c, err := ts.NewContainer(typeName)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Container) populate(t *StructType, prefix []string) error {
	for i := range t.Members {
		m := &t.Members[i]
		path := append(append([]string(nil), prefix...), m.Name)
		if m.IsStruct() {
			nested, ok := c.types.Lookup(m.Struct)
			if !ok {
				return fmt.Errorf("model: unknown structure %q", m.Struct)
			}
			if err := c.populate(nested, path); err != nil {
				return err
			}
			continue
		}
		def := m.Default
		if def.IsNull() {
			def = expr.ZeroOf(m.Basic.ValueKind())
		}
		c.values[joinPath(path)] = def
	}
	return nil
}

// Type returns the container's structure type.
func (c *Container) Type() *StructType { return c.typ }

// Lookup implements expr.Env over the container's members.
func (c *Container) Lookup(path []string) (expr.Value, bool) {
	v, ok := c.values[joinPath(path)]
	return v, ok
}

// Get returns the value at a dotted path such as "order.total" or "RC".
func (c *Container) Get(path string) (expr.Value, bool) {
	v, ok := c.values[path]
	return v, ok
}

// MustGet is Get that panics when the member does not exist.
func (c *Container) MustGet(path string) expr.Value {
	v, ok := c.values[path]
	if !ok {
		panic(fmt.Sprintf("model: container %q has no member %q", c.typ.Name, path))
	}
	return v
}

// RC returns the container's return code member.
func (c *Container) RC() int64 { return c.values[RCMember].AsInt() }

// SetRC sets the return code member.
func (c *Container) SetRC(rc int64) { c.values[RCMember] = expr.Int(rc) }

// Set assigns a member at a dotted path. The member must exist and the
// value's kind must match the member's declared kind (ints are accepted for
// float members and widened).
func (c *Container) Set(path string, v expr.Value) error {
	old, ok := c.values[path]
	if !ok {
		return fmt.Errorf("model: container %q has no member %q", c.typ.Name, path)
	}
	coerced, err := coerce(v, old.Kind())
	if err != nil {
		return fmt.Errorf("model: member %q of %q: %v", path, c.typ.Name, err)
	}
	c.values[path] = coerced
	return nil
}

// MustSet is Set that panics on error, for programs writing their declared
// outputs.
func (c *Container) MustSet(path string, v expr.Value) {
	if err := c.Set(path, v); err != nil {
		panic(err)
	}
}

func coerce(v expr.Value, want expr.Kind) (expr.Value, error) {
	if v.Kind() == want {
		return v, nil
	}
	if v.Kind() == expr.KindInt && want == expr.KindFloat {
		return expr.Float(v.AsFloat()), nil
	}
	return expr.Null, fmt.Errorf("cannot assign %s to %s member", v.Kind(), want)
}

// CopyFrom copies the member at fromPath in src into toPath in c. Kinds
// must be assignment-compatible.
func (c *Container) CopyFrom(src *Container, fromPath, toPath string) error {
	v, ok := src.Get(fromPath)
	if !ok {
		return fmt.Errorf("model: source container %q has no member %q", src.typ.Name, fromPath)
	}
	return c.Set(toPath, v)
}

// Clone returns a deep copy of the container.
func (c *Container) Clone() *Container {
	vals := make(map[string]expr.Value, len(c.values))
	for k, v := range c.values {
		vals[k] = v
	}
	return &Container{typ: c.typ, types: c.types, values: vals}
}

// Paths returns the container's member paths in sorted order (including
// RC), useful for serialization and debugging.
func (c *Container) Paths() []string {
	out := make([]string, 0, len(c.values))
	for k := range c.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the container as "Type{a=1, b="x"}" with sorted members.
func (c *Container) String() string {
	var sb strings.Builder
	sb.WriteString(c.typ.Name)
	sb.WriteByte('{')
	for i, p := range c.Paths() {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p)
		sb.WriteByte('=')
		sb.WriteString(c.values[p].String())
	}
	sb.WriteByte('}')
	return sb.String()
}

// Snapshot returns the container's members as a path→value map (a copy),
// used by the WAL to persist activity outputs.
func (c *Container) Snapshot() map[string]expr.Value {
	vals := make(map[string]expr.Value, len(c.values))
	for k, v := range c.values {
		vals[k] = v
	}
	return vals
}

// Restore overwrites the container's members from a snapshot map; unknown
// paths are rejected.
func (c *Container) Restore(vals map[string]expr.Value) error {
	for k, v := range vals {
		if k == RCMember {
			c.values[k] = v
			continue
		}
		if err := c.Set(k, v); err != nil {
			return err
		}
	}
	return nil
}

// Equal reports whether two containers have the same type name and member
// values.
func (c *Container) Equal(o *Container) bool {
	if c.typ.Name != o.typ.Name || len(c.values) != len(o.values) {
		return false
	}
	for k, v := range c.values {
		ov, ok := o.values[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

func joinPath(path []string) string { return strings.Join(path, ".") }
