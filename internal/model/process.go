package model

import (
	"fmt"

	"repro/internal/expr"
)

// ActivityKind distinguishes the three kinds of steps of §3.2: program
// activities execute a registered program, process activities execute
// another process, and blocks embed a subgraph (used for nesting, modular
// design and loops).
type ActivityKind uint8

// The activity kinds.
const (
	KindProgram ActivityKind = iota + 1
	KindProcess
	KindBlock
)

// String returns the FDL keyword for the kind.
func (k ActivityKind) String() string {
	switch k {
	case KindProgram:
		return "PROGRAM_ACTIVITY"
	case KindProcess:
		return "PROCESS_ACTIVITY"
	case KindBlock:
		return "BLOCK"
	default:
		return fmt.Sprintf("ActivityKind(%d)", uint8(k))
	}
}

// JoinKind is the start condition of an activity: AND requires all incoming
// control connectors to be true, OR requires at least one. In both cases
// the activity waits until every incoming connector has been evaluated
// (possibly to false by dead path elimination).
type JoinKind uint8

// The join kinds.
const (
	JoinAnd JoinKind = iota // default
	JoinOr
)

// String returns the FDL keyword for the join.
func (j JoinKind) String() string {
	if j == JoinOr {
		return "OR"
	}
	return "AND"
}

// StartMode says whether a ready activity starts automatically or must be
// selected by a user from a worklist (§3.3).
type StartMode uint8

// The start modes.
const (
	StartAutomatic StartMode = iota
	StartManual
)

// String returns the FDL keyword for the mode.
func (m StartMode) String() string {
	if m == StartManual {
		return "MANUAL"
	}
	return "AUTOMATIC"
}

// RetryPolicy bounds the engine-level re-execution of a program activity
// whose program reports a *transient* infrastructure failure (see
// engine.Transient). It is the workflow-layer analogue of the bounded
// retry semantics that Lanese's static/dynamic SAGAs give retriable
// subtransactions: the engine re-invokes the program up to MaxAttempts
// times, sleeping BackoffMS * 2^(attempt-1) milliseconds between attempts.
// Transactional aborts (RC != 0) are not errors and are never retried by
// this policy — they are handled by exit conditions and the compensation
// machinery of §4.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first;
	// values below 2 mean no retry.
	MaxAttempts int
	// BackoffMS is the base delay in milliseconds before the second
	// attempt; it doubles for every further attempt. Zero means retry
	// immediately.
	BackoffMS int64
}

// Attempts returns the effective attempt budget (at least 1).
func (r *RetryPolicy) Attempts() int {
	if r == nil || r.MaxAttempts < 2 {
		return 1
	}
	return r.MaxAttempts
}

// Staff assigns the people responsible for an activity (§3.3): either a
// role (all persons holding it are eligible) or a specific person. Empty
// Staff means the activity is fully automatic with no user mapping.
type Staff struct {
	Role   string
	Person string
}

// IsZero reports whether no staff assignment was made.
func (s Staff) IsZero() bool { return s.Role == "" && s.Person == "" }

// Activity is one step of a process (§3.2). Its zero value is not usable;
// populate Name, Kind and the kind-specific fields.
type Activity struct {
	Name        string
	Kind        ActivityKind
	Description string

	// Program is the registered program name for KindProgram.
	Program string
	// Subprocess is the process name for KindProcess.
	Subprocess string
	// Block is the embedded subgraph for KindBlock.
	Block *Graph

	// InputType and OutputType name the structure types of the activity's
	// data containers; empty means the Default type.
	InputType  string
	OutputType string

	// Join is the start condition over incoming control connectors.
	Join JoinKind
	// Exit is the exit condition, evaluated against the output container
	// when the activity finishes; false reschedules the activity (loop).
	// nil means TRUE (terminate immediately on finish).
	Exit expr.Node

	// Retry bounds engine-level re-execution on transient program errors
	// (program activities only); nil means a single attempt.
	Retry *RetryPolicy
	// DeadlineMS is the per-invocation wall-clock deadline in milliseconds
	// for the activity's program; an invocation that does not return in
	// time fails with engine.ErrDeadlineExceeded (and is retried if the
	// retry policy allows). Zero disables the deadline.
	DeadlineMS int64

	Start StartMode
	Staff Staff
	// NotifySeconds is the §3.3 notification deadline: if a ready manual
	// activity is not started within this many seconds, the NotifyRole is
	// notified. Zero disables notification.
	NotifySeconds int64
	NotifyRole    string
}

// In returns the activity's input container type name, defaulting to
// DefaultType.
func (a *Activity) In() string {
	if a.InputType == "" {
		return DefaultType
	}
	return a.InputType
}

// Out returns the activity's output container type name, defaulting to
// DefaultType.
func (a *Activity) Out() string {
	if a.OutputType == "" {
		return DefaultType
	}
	return a.OutputType
}

// ControlConnector is a directed edge of the flow of control. When the
// source activity terminates, Condition is evaluated against its output
// container; the connector then carries true or false to the target's
// start condition. A nil Condition means TRUE.
type ControlConnector struct {
	From, To  string
	Condition expr.Node
}

// CondString renders the connector condition, "TRUE" when nil.
func (c *ControlConnector) CondString() string {
	if c.Condition == nil {
		return "TRUE"
	}
	return c.Condition.String()
}

// DataMap is one member mapping of a data connector.
type DataMap struct {
	FromPath string // dotted path in the source container
	ToPath   string // dotted path in the target container
}

// ScopeRef is the reserved endpoint name referring to the enclosing scope's
// containers in data connectors: as a source it is the scope's input
// container, as a target the scope's output container.
const ScopeRef = ""

// DataConnector maps members between containers (§3.2 flow of data). From
// names a source activity (its output container) or ScopeRef (the enclosing
// process/block input container); To names a target activity (its input
// container) or ScopeRef (the enclosing scope's output container).
type DataConnector struct {
	From string
	To   string
	Maps []DataMap
}

// Graph is a set of activities wired by control and data connectors. It is
// the body of a process and of each block.
type Graph struct {
	Activities []*Activity
	Control    []*ControlConnector
	Data       []*DataConnector

	// InputType and OutputType name the container types of the graph's own
	// scope (process input/output or block input/output); empty means
	// Default.
	InputType  string
	OutputType string
}

// In returns the scope input container type name.
func (g *Graph) In() string {
	if g.InputType == "" {
		return DefaultType
	}
	return g.InputType
}

// Out returns the scope output container type name.
func (g *Graph) Out() string {
	if g.OutputType == "" {
		return DefaultType
	}
	return g.OutputType
}

// Activity returns the named activity in this graph, or nil.
func (g *Graph) Activity(name string) *Activity {
	for _, a := range g.Activities {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Starts returns the activities with no incoming control connectors — the
// starting activities of the graph.
func (g *Graph) Starts() []*Activity {
	hasIn := make(map[string]bool)
	for _, c := range g.Control {
		hasIn[c.To] = true
	}
	var out []*Activity
	for _, a := range g.Activities {
		if !hasIn[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// Incoming returns the control connectors targeting the named activity, in
// declaration order.
func (g *Graph) Incoming(name string) []*ControlConnector {
	var out []*ControlConnector
	for _, c := range g.Control {
		if c.To == name {
			out = append(out, c)
		}
	}
	return out
}

// Outgoing returns the control connectors leaving the named activity, in
// declaration order.
func (g *Graph) Outgoing(name string) []*ControlConnector {
	var out []*ControlConnector
	for _, c := range g.Control {
		if c.From == name {
			out = append(out, c)
		}
	}
	return out
}

// DataInto returns the data connectors whose target is the given endpoint
// (an activity name or ScopeRef).
func (g *Graph) DataInto(to string) []*DataConnector {
	var out []*DataConnector
	for _, d := range g.Data {
		if d.To == to {
			out = append(out, d)
		}
	}
	return out
}

// Process is a complete process template (§3.2): a named, versioned graph
// plus the structure types it uses.
type Process struct {
	Name        string
	Version     int
	Description string
	Types       *Types
	Graph
}

// NewProcess returns an empty process with a fresh type registry.
func NewProcess(name string) *Process {
	return &Process{Name: name, Version: 1, Types: NewTypes()}
}
