// Package model defines the workflow meta-model of the Workflow Management
// Coalition reference model as implemented by FlowMark and described in
// §3.2 of "Advanced Transaction Models in Workflow Contexts" (Alonso et
// al., ICDE 1996): processes, activities (program, process and block
// activities), control connectors with transition conditions, data
// connectors mapping between typed data containers, start conditions
// (AND/OR joins) and exit conditions.
//
// The model is purely structural; execution semantics live in the engine
// package, and the textual form lives in the fdl package.
package model

import (
	"fmt"

	"repro/internal/expr"
)

// BasicKind enumerates the scalar member types of containers.
type BasicKind uint8

// The basic data types of container members, mirroring FDL.
const (
	Long BasicKind = iota + 1
	Float
	String
	Bool
)

// String returns the FDL name of the kind.
func (k BasicKind) String() string {
	switch k {
	case Long:
		return "LONG"
	case Float:
		return "FLOAT"
	case String:
		return "STRING"
	case Bool:
		return "BOOL"
	default:
		return fmt.Sprintf("BasicKind(%d)", uint8(k))
	}
}

// ValueKind maps a basic kind to the expression value kind used at runtime.
func (k BasicKind) ValueKind() expr.Kind {
	switch k {
	case Long:
		return expr.KindInt
	case Float:
		return expr.KindFloat
	case String:
		return expr.KindString
	case Bool:
		return expr.KindBool
	default:
		return expr.KindNull
	}
}

// Member is a field of a structure type. Exactly one of Basic or Struct is
// set: a member is either scalar or a nested structure (by name, resolved
// against the type registry).
type Member struct {
	Name    string
	Basic   BasicKind  // scalar member kind, or 0 when Struct is set
	Struct  string     // nested structure type name, or ""
	Default expr.Value // default for scalar members; Null means the kind's zero
}

// IsStruct reports whether the member is a nested structure.
func (m *Member) IsStruct() bool { return m.Struct != "" }

// StructType is a named record type used for data containers.
type StructType struct {
	Name    string
	Members []Member
}

// Member returns the member with the given name, or nil.
func (t *StructType) Member(name string) *Member {
	for i := range t.Members {
		if t.Members[i].Name == name {
			return &t.Members[i]
		}
	}
	return nil
}

// Types is a registry of structure types, keyed by name.
type Types struct {
	byName map[string]*StructType
	order  []*StructType
}

// NewTypes returns an empty type registry with the predefined 'Default'
// structure (a single RC member) already registered. Every activity output
// container must be able to carry the RC return code, so the Default type
// is the canonical minimal container type.
func NewTypes() *Types {
	ts := &Types{byName: make(map[string]*StructType)}
	// The predefined default container type: just the return code.
	if err := ts.Register(&StructType{Name: DefaultType}); err != nil {
		panic(err) // unreachable: registry is empty
	}
	return ts
}

// DefaultType is the name of the predefined empty structure type. All
// containers of this type carry only the implicit RC member.
const DefaultType = "Default"

// RCMember is the name of the implicit return-code member present in every
// container. Programs report commit (0) or abort (non-zero) through it.
const RCMember = "RC"

// Register adds a structure type to the registry. It rejects duplicate
// names, empty names, members named RC, duplicate member names and unknown
// or recursively nested structure references (checked lazily in Resolve, and
// eagerly here for direct self reference).
func (ts *Types) Register(t *StructType) error {
	if t.Name == "" {
		return fmt.Errorf("model: structure with empty name")
	}
	if _, dup := ts.byName[t.Name]; dup {
		return fmt.Errorf("model: duplicate structure %q", t.Name)
	}
	seen := make(map[string]bool, len(t.Members))
	for i := range t.Members {
		m := &t.Members[i]
		if m.Name == "" {
			return fmt.Errorf("model: structure %q has a member with empty name", t.Name)
		}
		if m.Name == RCMember {
			return fmt.Errorf("model: structure %q declares reserved member %q", t.Name, RCMember)
		}
		if seen[m.Name] {
			return fmt.Errorf("model: structure %q has duplicate member %q", t.Name, m.Name)
		}
		seen[m.Name] = true
		if m.IsStruct() == (m.Basic != 0) {
			return fmt.Errorf("model: structure %q member %q must be either scalar or structure", t.Name, m.Name)
		}
		if m.IsStruct() && m.Struct == t.Name {
			return fmt.Errorf("model: structure %q directly contains itself", t.Name)
		}
		if !m.IsStruct() && !m.Default.IsNull() && m.Default.Kind() != m.Basic.ValueKind() {
			return fmt.Errorf("model: structure %q member %q default %s does not match type %s",
				t.Name, m.Name, m.Default, m.Basic)
		}
	}
	ts.byName[t.Name] = t
	ts.order = append(ts.order, t)
	return nil
}

// Lookup returns the structure type with the given name.
func (ts *Types) Lookup(name string) (*StructType, bool) {
	t, ok := ts.byName[name]
	return t, ok
}

// All returns the registered types in registration order, excluding the
// predefined Default type.
func (ts *Types) All() []*StructType {
	out := make([]*StructType, 0, len(ts.order))
	for _, t := range ts.order {
		if t.Name != DefaultType {
			out = append(out, t)
		}
	}
	return out
}

// CheckCycles verifies that no structure contains itself through any chain
// of nested members and that all referenced structures exist.
func (ts *Types) CheckCycles() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(ts.byName))
	var visit func(name string) error
	visit = func(name string) error {
		t, ok := ts.byName[name]
		if !ok {
			return fmt.Errorf("model: unknown structure %q", name)
		}
		switch color[name] {
		case grey:
			return fmt.Errorf("model: structure cycle through %q", name)
		case black:
			return nil
		}
		color[name] = grey
		for i := range t.Members {
			if t.Members[i].IsStruct() {
				if err := visit(t.Members[i].Struct); err != nil {
					return err
				}
			}
		}
		color[name] = black
		return nil
	}
	for _, t := range ts.order {
		if err := visit(t.Name); err != nil {
			return err
		}
	}
	return nil
}

// ResolvePath walks a dotted member path from a root structure type and
// returns the scalar kind at the end of the path. Paths must terminate at a
// scalar member; the implicit RC member resolves as Long at the top level.
func (ts *Types) ResolvePath(root string, path []string) (BasicKind, error) {
	if len(path) == 0 {
		return 0, fmt.Errorf("model: empty member path")
	}
	if len(path) == 1 && path[0] == RCMember {
		return Long, nil
	}
	cur, ok := ts.byName[root]
	if !ok {
		return 0, fmt.Errorf("model: unknown structure %q", root)
	}
	for i, seg := range path {
		m := cur.Member(seg)
		if m == nil {
			return 0, fmt.Errorf("model: structure %q has no member %q", cur.Name, seg)
		}
		if m.IsStruct() {
			next, ok := ts.byName[m.Struct]
			if !ok {
				return 0, fmt.Errorf("model: unknown structure %q", m.Struct)
			}
			cur = next
			continue
		}
		if i != len(path)-1 {
			return 0, fmt.Errorf("model: member %q of %q is scalar but path continues", seg, cur.Name)
		}
		return m.Basic, nil
	}
	return 0, fmt.Errorf("model: path %v ends at structure %q, not a scalar", path, cur.Name)
}
