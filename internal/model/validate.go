package model

import (
	"fmt"

	"repro/internal/expr"
)

// ValidationError collects all problems found in a process definition.
type ValidationError struct {
	Process string
	Issues  []string
}

// Error implements error.
func (e *ValidationError) Error() string {
	if len(e.Issues) == 1 {
		return fmt.Sprintf("model: process %q invalid: %s", e.Process, e.Issues[0])
	}
	return fmt.Sprintf("model: process %q invalid: %d issues, first: %s", e.Process, len(e.Issues), e.Issues[0])
}

// Validate checks the structural and semantic legality of the process
// definition: unique names, resolvable endpoints, acyclic control flow per
// scope, type-correct data maps and conditions that reference existing
// members. known lists the process names available for process activities;
// pass nil to skip subprocess resolution (e.g. when validating templates in
// isolation before import).
func (p *Process) Validate(known map[string]bool) error {
	v := &validator{p: p, known: known}
	if p.Name == "" {
		v.errf("empty process name")
	}
	if p.Types == nil {
		v.errf("nil type registry")
		return v.result()
	}
	if err := p.Types.CheckCycles(); err != nil {
		v.errf("%v", err)
	}
	v.checkGraph(&p.Graph, "process")
	return v.result()
}

type validator struct {
	p     *Process
	known map[string]bool
	iss   []string
}

func (v *validator) errf(format string, args ...any) {
	v.iss = append(v.iss, fmt.Sprintf(format, args...))
}

func (v *validator) result() error {
	if len(v.iss) == 0 {
		return nil
	}
	return &ValidationError{Process: v.p.Name, Issues: v.iss}
}

func (v *validator) checkType(name, where string) {
	if name == "" {
		return
	}
	if _, ok := v.p.Types.Lookup(name); !ok {
		v.errf("%s references unknown structure %q", where, name)
	}
}

func (v *validator) checkGraph(g *Graph, scope string) {
	v.checkType(g.InputType, scope+" input")
	v.checkType(g.OutputType, scope+" output")

	names := make(map[string]*Activity, len(g.Activities))
	for _, a := range g.Activities {
		where := fmt.Sprintf("%s activity %q", scope, a.Name)
		if a.Name == "" {
			v.errf("%s has an activity with empty name", scope)
			continue
		}
		if _, dup := names[a.Name]; dup {
			v.errf("%s: duplicate activity name", where)
			continue
		}
		names[a.Name] = a
		switch a.Kind {
		case KindProgram:
			if a.Program == "" {
				v.errf("%s: program activity without program", where)
			}
		case KindProcess:
			if a.Subprocess == "" {
				v.errf("%s: process activity without subprocess", where)
			} else if v.known != nil && !v.known[a.Subprocess] {
				v.errf("%s: unknown subprocess %q", where, a.Subprocess)
			}
			if a.Subprocess == v.p.Name {
				v.errf("%s: process activity invokes its own process (recursion not allowed)", where)
			}
		case KindBlock:
			if a.Block == nil {
				v.errf("%s: block without body", where)
			} else {
				// Block containers are the activity containers.
				if a.Block.InputType != a.InputType || a.Block.OutputType != a.OutputType {
					v.errf("%s: block scope types must equal the activity container types", where)
				}
				v.checkGraph(a.Block, where)
			}
		default:
			v.errf("%s: invalid kind %v", where, a.Kind)
		}
		v.checkType(a.InputType, where+" input")
		v.checkType(a.OutputType, where+" output")
		if a.Exit != nil {
			v.checkCond(a.Exit, a.Out(), where+" exit condition")
		}
		if a.Start == StartManual && a.Staff.IsZero() {
			v.errf("%s: manual start requires a staff assignment", where)
		}
		if a.NotifySeconds < 0 {
			v.errf("%s: negative notification deadline", where)
		}
		if a.Retry != nil {
			if a.Kind != KindProgram {
				v.errf("%s: retry policy on a non-program activity", where)
			}
			if a.Retry.MaxAttempts < 0 || a.Retry.BackoffMS < 0 {
				v.errf("%s: retry policy fields must be non-negative", where)
			}
		}
		if a.DeadlineMS < 0 {
			v.errf("%s: negative program deadline", where)
		}
		if a.DeadlineMS > 0 && a.Kind != KindProgram {
			v.errf("%s: program deadline on a non-program activity", where)
		}
		if a.NotifySeconds > 0 && a.NotifyRole == "" {
			v.errf("%s: notification deadline without a role to notify", where)
		}
	}

	// Control connectors.
	type edge struct{ from, to string }
	seen := make(map[edge]bool)
	for _, c := range g.Control {
		where := fmt.Sprintf("%s connector %q -> %q", scope, c.From, c.To)
		from, okF := names[c.From]
		if !okF {
			v.errf("%s: unknown source activity", where)
		}
		if _, okT := names[c.To]; !okT {
			v.errf("%s: unknown target activity", where)
		}
		if c.From == c.To {
			v.errf("%s: self loop", where)
		}
		if seen[edge{c.From, c.To}] {
			v.errf("%s: duplicate connector", where)
		}
		seen[edge{c.From, c.To}] = true
		if c.Condition != nil && okF {
			v.checkCond(c.Condition, from.Out(), where+" transition condition")
		}
	}
	v.checkAcyclic(g, scope, names)

	// Data connectors.
	for _, d := range g.Data {
		where := fmt.Sprintf("%s data connector %q -> %q", scope, d.From, d.To)
		var srcType, dstType string
		switch {
		case d.From == ScopeRef:
			srcType = g.In()
		case names[d.From] != nil:
			srcType = names[d.From].Out()
		default:
			v.errf("%s: unknown source", where)
			continue
		}
		switch {
		case d.To == ScopeRef:
			dstType = g.Out()
		case names[d.To] != nil:
			dstType = names[d.To].In()
		default:
			v.errf("%s: unknown target", where)
			continue
		}
		if d.From == ScopeRef && d.To == ScopeRef {
			v.errf("%s: maps scope input directly to scope output", where)
		}
		if len(d.Maps) == 0 {
			v.errf("%s: no member maps", where)
		}
		for _, m := range d.Maps {
			fk, err := v.p.Types.ResolvePath(srcType, splitPath(m.FromPath))
			if err != nil {
				v.errf("%s: source path %q: %v", where, m.FromPath, err)
				continue
			}
			tk, err := v.p.Types.ResolvePath(dstType, splitPath(m.ToPath))
			if err != nil {
				v.errf("%s: target path %q: %v", where, m.ToPath, err)
				continue
			}
			if fk != tk && !(fk == Long && tk == Float) {
				v.errf("%s: map %q(%s) -> %q(%s) is not assignment compatible",
					where, m.FromPath, fk, m.ToPath, tk)
			}
		}
	}
}

// checkCond verifies that every member referenced by the condition resolves
// to a scalar within the container type.
func (v *validator) checkCond(n expr.Node, containerType, where string) {
	for _, ref := range expr.Refs(n) {
		if _, err := v.p.Types.ResolvePath(containerType, ref); err != nil {
			v.errf("%s: %v", where, err)
		}
	}
}

// checkAcyclic verifies the control graph of one scope is a DAG (§3.2: a
// workflow model is an acyclic directed graph; loops are expressed with
// exit conditions, not back edges).
func (v *validator) checkAcyclic(g *Graph, scope string, names map[string]*Activity) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(names))
	var visit func(n string) bool
	visit = func(n string) bool {
		switch color[n] {
		case grey:
			return false
		case black:
			return true
		}
		color[n] = grey
		for _, c := range g.Outgoing(n) {
			if _, ok := names[c.To]; !ok {
				continue
			}
			if !visit(c.To) {
				return false
			}
		}
		color[n] = black
		return true
	}
	for name := range names {
		if !visit(name) {
			v.errf("%s: control flow contains a cycle through %q", scope, name)
			return
		}
	}
}

func splitPath(p string) []string {
	if p == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '.' {
			out = append(out, p[start:i])
			start = i + 1
		}
	}
	return out
}
