package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FS is the filesystem seam beneath the write paths of FileLog,
// SegmentedLog and WriteCheckpoint. Production code uses OSFS; fault
// tests substitute a FaultFS to inject storage errors at scheduled
// operation counts. The seam deliberately covers only the operations the
// WAL's durability argument depends on — creating files, writing and
// syncing them, and the atomic rename of a checkpoint — so a fault
// schedule enumerating FS operations enumerates exactly the points where
// a disk can betray the log.
type FS interface {
	// Create creates (or truncates) the named file for writing.
	Create(path string) (File, error)
	// Rename atomically replaces newpath with oldpath (checkpoint
	// publication).
	Rename(oldpath, newpath string) error
}

// File is the writable handle an FS hands out: sequential writes, an
// fsync barrier, and close. *os.File satisfies the same shape; faultFile
// wraps it with injection.
type File interface {
	io.Writer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Close closes the handle.
	Close() error
}

// OSFS is the real filesystem. The zero value is ready to use and is the
// default FS of every log.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Typed storage-fault sentinels. FaultFS returns them (wrapped) from the
// scheduled operation; the log layers above seal themselves with
// ErrLogFailed once any of them — or any real storage error — surfaces.
var (
	// ErrDiskIO is the injected equivalent of EIO: a write that the
	// device rejected outright.
	ErrDiskIO = errors.New("wal: injected I/O error (EIO)")
	// ErrDiskFull is the injected equivalent of ENOSPC: a write refused
	// for lack of space.
	ErrDiskFull = errors.New("wal: injected disk full (ENOSPC)")
	// ErrFsyncFailed is an fsync that returned an error after the write
	// itself succeeded — the fsync-gate case: the kernel may have dropped
	// the dirty pages, so the data must be treated as lost even though a
	// later fsync would "succeed".
	ErrFsyncFailed = errors.New("wal: injected fsync failure")
)

// ErrLogFailed marks a log sealed after a storage error. Once any write
// or sync fails, the log refuses every subsequent append with an error
// wrapping ErrLogFailed: acknowledging later records while earlier bytes
// may have been dropped from the page cache would convert one transient
// fault into silent mid-log corruption (acked-append loss on recovery).
// The engine reacts by quiescing affected instances to "failed" with the
// cause; the operator restarts onto a healthy volume and recovers.
var ErrLogFailed = errors.New("wal: log failed")

// FaultKind selects which operation a FaultFS fails and with which
// sentinel.
type FaultKind int

// The storage faults a FaultFS can inject.
const (
	// FaultEIO fails a Write with ErrDiskIO.
	FaultEIO FaultKind = iota
	// FaultENOSPC fails a Write with ErrDiskFull.
	FaultENOSPC
	// FaultFsync fails a Sync with ErrFsyncFailed after the preceding
	// writes succeeded.
	FaultFsync
)

// String names the fault for reports.
func (k FaultKind) String() string {
	switch k {
	case FaultEIO:
		return "EIO"
	case FaultENOSPC:
		return "ENOSPC"
	case FaultFsync:
		return "fsync-fail"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultFS wraps a real filesystem and injects one scheduled storage
// fault. Every Write and Sync on files created through it increments a
// shared operation counter; the first operation at or past FailAt whose
// type matches the fault kind returns the kind's sentinel instead of
// touching the disk (for Sync faults the write itself has already
// happened — the fsync-gate shape). The fault fires once by default: the
// "disk" recovers afterwards, which is exactly the case where an unsealed
// log would resume acking over a hole. FailAt <= 0 injects nothing and
// turns the FaultFS into a pure operation counter, which chaos sweeps use
// to size their schedules.
//
// FaultFS is safe for concurrent use.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	kind   FaultKind
	failAt int64
	sticky bool
	ops    int64
	fired  bool
}

// FaultOption configures a FaultFS.
type FaultOption func(*FaultFS)

// FaultSticky makes every matching operation from the scheduled one
// onward fail, modeling a disk that stays broken rather than a transient
// fault.
func FaultSticky() FaultOption {
	return func(fs *FaultFS) { fs.sticky = true }
}

// NewFaultFS returns a FaultFS over the real filesystem that fails the
// first kind-matching operation at or past the failAt-th FS operation
// (1-based). failAt <= 0 never fails (count-only mode).
func NewFaultFS(kind FaultKind, failAt int64, opts ...FaultOption) *FaultFS {
	fs := &FaultFS{inner: OSFS{}, kind: kind, failAt: failAt}
	for _, o := range opts {
		o(fs)
	}
	return fs
}

// Ops reports how many Write/Sync operations have passed through so far.
func (fs *FaultFS) Ops() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Fired reports whether the scheduled fault has been injected.
func (fs *FaultFS) Fired() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.fired
}

// Create implements FS.
func (fs *FaultFS) Create(path string) (File, error) {
	f, err := fs.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, f: f}, nil
}

// Rename implements FS.
func (fs *FaultFS) Rename(oldpath, newpath string) error {
	return fs.inner.Rename(oldpath, newpath)
}

// step counts one operation and decides whether it is the scheduled
// fault. isSync says whether the operation is a Sync (else a Write).
func (fs *FaultFS) step(isSync bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.ops++
	if fs.failAt <= 0 || fs.ops < fs.failAt {
		return nil
	}
	if fs.fired && !fs.sticky {
		return nil
	}
	wantSync := fs.kind == FaultFsync
	if isSync != wantSync {
		return nil
	}
	fs.fired = true
	switch fs.kind {
	case FaultEIO:
		return ErrDiskIO
	case FaultENOSPC:
		return ErrDiskFull
	default:
		return ErrFsyncFailed
	}
}

// faultFile is a File whose Write/Sync consult the FaultFS schedule.
type faultFile struct {
	fs *FaultFS
	f  File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.step(false); err != nil {
		return 0, err
	}
	return f.f.Write(p)
}

func (f *faultFile) Sync() error {
	// The write already reached the file; only the barrier fails — the
	// fsync-gate shape (data possibly dropped from the page cache).
	if err := f.fs.step(true); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error { return f.f.Close() }
