package wal

import (
	"os"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/obs"
)

// fleetHistory fabricates an interleaved three-instance history: i1
// finishes, i2 is mid-flight with a superseded started record, i3 is
// mid-flight with a pending (half-executed) one.
func fleetHistory() []Record {
	v := func(n int64) map[string]expr.Value {
		return map[string]expr.Value{"RC": expr.Int(n)}
	}
	return []Record{
		{Type: RecCreated, Instance: "i1", Process: "P", Values: v(0)},
		{Type: RecCreated, Instance: "i2", Process: "P", Values: v(0)},
		{Type: RecStartedActivity, Instance: "i1", Path: "A"},
		{Type: RecStartedActivity, Instance: "i2", Path: "A"},
		{Type: RecFinishedActivity, Instance: "i1", Path: "A", Values: v(1)},
		{Type: RecCreated, Instance: "i3", Process: "P", Values: v(0)},
		{Type: RecFinishedActivity, Instance: "i2", Path: "A", Values: v(2)},
		{Type: RecStartedActivity, Instance: "i3", Path: "A"},
		{Type: RecDone, Instance: "i1", Values: v(1)},
		{Type: RecStartedActivity, Instance: "i2", Path: "B"},
	}
}

func TestBuildCheckpointCompactsAndDropsFinished(t *testing.T) {
	cp := BuildCheckpoint(nil, fleetHistory(), 3)
	if cp.Seq != 1 || cp.Cover != 3 {
		t.Fatalf("seq/cover: %+v", cp)
	}
	if len(cp.Done) != 1 || cp.Done[0] != "i1" {
		t.Fatalf("done: %v", cp.Done)
	}
	for _, r := range cp.Records {
		if r.Instance == "i1" {
			t.Fatalf("finished instance kept: %+v", r)
		}
		// Compact semantics: i2's finished A supersedes its started A.
		if r.Instance == "i2" && r.Type == RecStartedActivity && r.Path == "A" {
			t.Fatalf("superseded started record kept: %+v", r)
		}
	}
	// i3's half-executed witness must survive.
	found := false
	for _, r := range cp.Records {
		if r.Instance == "i3" && r.Type == RecStartedActivity && r.Path == "A" {
			found = true
		}
	}
	if !found {
		t.Fatal("pending started witness lost")
	}
	// Chaining: a second checkpoint that finishes i2 moves it to Done and
	// keeps i1 there.
	more := []Record{
		{Type: RecFinishedActivity, Instance: "i2", Path: "B",
			Values: map[string]expr.Value{"RC": expr.Int(0)}},
		{Type: RecDone, Instance: "i2",
			Values: map[string]expr.Value{"RC": expr.Int(0)}},
	}
	cp2 := BuildCheckpoint(cp, more, 5)
	if cp2.Seq != 2 || cp2.Cover != 5 {
		t.Fatalf("cp2: %+v", cp2)
	}
	if strings.Join(cp2.Done, ",") != "i1,i2" {
		t.Fatalf("cp2 done: %v", cp2.Done)
	}
	for _, r := range cp2.Records {
		if r.Instance != "i3" {
			t.Fatalf("cp2 should hold only i3: %+v", r)
		}
	}
}

func TestCheckpointWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cp := BuildCheckpoint(nil, fleetHistory(), 7)
	path, err := WriteCheckpoint(dir, cp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != cp.Seq || got.Cover != cp.Cover ||
		strings.Join(got.Done, ",") != strings.Join(cp.Done, ",") ||
		len(got.Records) != len(cp.Records) {
		t.Fatalf("round trip: %+v vs %+v", got, cp)
	}
	for i := range cp.Records {
		if !recordsEqual(cp.Records[i], got.Records[i]) {
			t.Fatalf("record %d: %+v vs %+v", i, cp.Records[i], got.Records[i])
		}
	}
}

func TestLoadCheckpointFallbackLadder(t *testing.T) {
	dir := t.TempDir()
	if cp, err := LoadCheckpoint(dir); cp != nil || err != nil {
		t.Fatalf("empty dir: cp=%v err=%v", cp, err)
	}
	cp1 := BuildCheckpoint(nil, fleetHistory()[:6], 1)
	if _, err := WriteCheckpoint(dir, cp1); err != nil {
		t.Fatal(err)
	}
	cp2 := BuildCheckpoint(cp1, fleetHistory()[6:], 2)
	path2, err := WriteCheckpoint(dir, cp2)
	if err != nil {
		t.Fatal(err)
	}
	// Intact: newest wins.
	got, err := LoadCheckpoint(dir)
	if err != nil || got == nil || got.Seq != 2 {
		t.Fatalf("newest: %+v err=%v", got, err)
	}
	// Torn newest (crash mid-write simulated post hoc, or bit rot): fall
	// back to the previous checkpoint.
	data, _ := os.ReadFile(path2)
	if err := os.WriteFile(path2, data[:len(data)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	before := fallbackCount()
	got, err = LoadCheckpoint(dir)
	if err != nil || got == nil || got.Seq != 1 {
		t.Fatalf("fallback: %+v err=%v", got, err)
	}
	if fallbackCount() != before+1 {
		t.Fatal("fallback not counted")
	}
	// Both damaged: full replay (nil checkpoint), two more fallbacks.
	if err := os.WriteFile(ckptPath(dir, 1), []byte("garbage\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	got, err = LoadCheckpoint(dir)
	if got != nil || err != nil {
		t.Fatalf("ladder bottom: cp=%v err=%v", got, err)
	}
	// A leftover temp file from a crash mid-WriteCheckpoint is ignored.
	if err := os.WriteFile(ckptPath(dir, 9)+".tmp", []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	if infos, err := ListCheckpoints(dir); err != nil || len(infos) != 2 {
		t.Fatalf("tmp file visible: %v err=%v", infos, err)
	}
}

func TestReadCheckpointRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	cp := BuildCheckpoint(nil, fleetHistory(), 1)
	path, err := WriteCheckpoint(dir, cp)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := os.ReadFile(path)

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), clean...)), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(path); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	corrupt("empty file", func(b []byte) []byte { return nil })
	corrupt("flipped header bit", func(b []byte) []byte { b[12] ^= 0x40; return b })
	corrupt("flipped record bit", func(b []byte) []byte { b[len(b)-10] ^= 0x40; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)-20] })
	corrupt("surplus line", func(b []byte) []byte { return append(b, []byte("tail garbage\n")...) })
	corrupt("future version", func(b []byte) []byte {
		// Re-frame a header with version 99: easiest is to rewrite the file.
		return []byte(string(frameLine([]byte(`{"v":99,"seq":1,"cover":1,"n":0}`))) + "\n")
	})
}

// fallbackCount reads the global checkpoint-fallback counter.
func fallbackCount() int64 {
	return obs.Default.Counter("recover.checkpoint_fallbacks").Value()
}
