// Package wal implements the persistence substrate behind the paper's
// §3.3 claim that "in most WFMSs the execution of a process is persistent
// in the sense that forward recovery is always guaranteed". The engine
// appends a record whenever an instance is created, an activity completes
// (with its output container), or the instance finishes. After a crash the
// engine re-navigates the instance deterministically, consuming logged
// outputs instead of re-invoking the corresponding programs; activities
// that had started but never logged a completion are re-executed from the
// beginning — the paper's explicit caveat about non-failure-atomic
// activities.
//
// Two log implementations are provided: an in-memory log with optional
// crash injection (for recovery tests) and a file-backed log.
//
// # Durability
//
// FileLog frames every record as "crc8hex json\n": a CRC-32C checksum over
// the JSON body detects torn writes and bit rot on replay. Appends are
// buffered; with the WithFsync option every Append flushes the buffer and
// calls File.Sync, so a record handed back to the engine is on stable
// storage before navigation proceeds (the classic WAL contract — slower,
// but a kernel or power failure can lose at most the record being
// written). Without fsync a crash can lose the buffered tail; either way
// Close flushes and syncs. Recovery reads with ReadFileTolerant or
// RepairFile tolerate a torn or corrupt *final* record — the signature a
// crash mid-append leaves behind — by truncating to the valid prefix;
// corruption in the middle of the log (valid records after a bad line) is
// reported as an error because it means lost history, not a torn tail.
// FaultLog injects crashes and short writes at scripted record boundaries
// so the whole story is testable (see the crash-point soak experiment E7
// in internal/sim).
package wal

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
)

// RecordType discriminates log records.
type RecordType string

// The record types appended by the engine.
const (
	// RecCreated opens an instance: Process and Values (the input
	// container) are set.
	RecCreated RecordType = "created"
	// RecFinishedActivity records the completion of one activity
	// execution: Path, Iter and Values (the output container snapshot).
	RecFinishedActivity RecordType = "activity"
	// RecStartedActivity records that an activity began executing. It
	// carries no output; a started record without a matching finished
	// record marks a half-executed activity that recovery re-runs.
	RecStartedActivity RecordType = "started"
	// RecDone closes an instance: Values is the process output container.
	RecDone RecordType = "done"
)

// Record is one WAL entry.
type Record struct {
	Type     RecordType
	Instance string
	Process  string // RecCreated only
	Path     string // activity path within the instance
	Iter     int    // exit-condition iteration of the activity execution
	Values   map[string]expr.Value
}

// Log is an append-only record sink.
type Log interface {
	Append(rec Record) error
}

// ErrCrash is returned by a crash-injecting log when the configured crash
// point is reached; the engine treats it as a hard stop.
var ErrCrash = errors.New("wal: injected crash")

// MemLog is an in-memory log. CrashAfter > 0 makes the log return ErrCrash
// on the (CrashAfter+1)-th append, simulating a failure of the workflow
// server at that navigation point. MemLog is safe for concurrent use.
type MemLog struct {
	mu         sync.Mutex
	records    []Record
	CrashAfter int // 0 = never crash
}

// Append implements Log.
func (l *MemLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.CrashAfter > 0 && len(l.records) >= l.CrashAfter {
		return ErrCrash
	}
	l.records = append(l.records, cloneRecord(rec))
	return nil
}

// Records returns a copy of the appended records — what survives the
// "crash" and is handed to recovery.
func (l *MemLog) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	for i := range l.records {
		out[i] = cloneRecord(l.records[i])
	}
	return out
}

// Len reports the number of records appended so far.
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

func cloneRecord(r Record) Record {
	if r.Values != nil {
		vals := make(map[string]expr.Value, len(r.Values))
		for k, v := range r.Values {
			vals[k] = v
		}
		r.Values = vals
	}
	return r
}

// crcTable is the CRC-32C (Castagnoli) table used to frame file records.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameLine prefixes a marshaled record with its 8-hex-digit CRC-32C:
// "crc8hex json". The checksum covers the JSON body only.
func frameLine(body []byte) []byte {
	return appendTextFrame(make([]byte, 0, len(body)+9), body)
}

// appendTextFrame appends "crc8hex body" (no newline) to buf — frameLine
// without the allocation, for callers that reuse an encode buffer.
func appendTextFrame(buf, body []byte) []byte {
	const hexDigits = "0123456789abcdef"
	sum := crc32.Checksum(body, crcTable)
	for shift := 28; shift >= 0; shift -= 4 {
		buf = append(buf, hexDigits[(sum>>shift)&0xF])
	}
	buf = append(buf, ' ')
	return append(buf, body...)
}

// decodeCRC parses the 8-hex-digit checksum prefix of a framed line.
func decodeCRC(hexDigits []byte) (uint32, error) {
	var crc [4]byte
	if _, err := hex.Decode(crc[:], hexDigits); err != nil {
		return 0, errors.New("wal: malformed record checksum")
	}
	return uint32(crc[0])<<24 | uint32(crc[1])<<16 | uint32(crc[2])<<8 | uint32(crc[3]), nil
}

// crc32Checksum is the CRC-32C of a frame body.
func crc32Checksum(body []byte) uint32 { return crc32.Checksum(body, crcTable) }

// parseLine decodes one log line. Framed lines ("crc8hex json") are
// checksum-verified; legacy plain-JSON lines (first byte '{') are accepted
// unverified so pre-checksum logs stay readable.
func parseLine(line []byte) (Record, error) {
	if len(line) > 0 && line[0] == '{' {
		return Unmarshal(line)
	}
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, errors.New("wal: malformed record frame")
	}
	want, err := decodeCRC(line[:8])
	if err != nil {
		return Record{}, err
	}
	body := line[9:]
	if got := crc32Checksum(body); got != want {
		return Record{}, fmt.Errorf("wal: record checksum mismatch (want %08x, got %08x)", want, got)
	}
	return Unmarshal(body)
}

// FileLog appends CRC-framed JSON-line records to a file. It is safe for
// concurrent use. Close flushes buffered data and syncs the file. Appends
// are counted (records and bytes) and fsync latency is histogrammed in
// the metrics registry — obs.Default unless WithMetricsRegistry redirects
// it; metric names are listed in DESIGN.md ("Observability").
type FileLog struct {
	mu     sync.Mutex
	fs     FS
	f      File
	w      *bufio.Writer
	fsync  bool
	format Format
	enc    []byte // record encode scratch, reused under mu (zero-alloc path)
	failed error  // first storage error; non-nil seals the log

	appends  *obs.Counter   // wal.file.appends
	bytes    *obs.Counter   // wal.file.bytes
	fsyncNs  *obs.Histogram // wal.fsync_ns
	failures *obs.Counter   // wal.failures
}

// FileOption configures a FileLog.
type FileOption func(*FileLog)

// WithFsync makes every Append flush the write buffer and fsync the file,
// so each record is on stable storage before the engine navigates past it.
// Durable and slow; without it a crash can lose the buffered tail of the
// log (recovery then resumes from a shorter—but still consistent—prefix).
func WithFsync() FileOption {
	return func(l *FileLog) { l.fsync = true }
}

// WithMetricsRegistry points the log's instrumentation at reg instead of
// obs.Default.
func WithMetricsRegistry(reg *obs.Registry) FileOption {
	return func(l *FileLog) { l.bindMetrics(reg) }
}

// WithFS substitutes the filesystem beneath the log (default OSFS);
// fault tests pass a FaultFS to inject storage errors at scheduled
// operation counts.
func WithFS(fs FS) FileOption {
	return func(l *FileLog) { l.fs = fs }
}

// WithFormat selects the on-disk record framing (default FormatText).
// FormatBinary writes the magic file header at creation and frames every
// record as a length-prefixed CRC-32C binary frame; readers sniff the
// header, so mixed-format histories recover without configuration.
func WithFormat(f Format) FileOption {
	return func(l *FileLog) { l.format = f }
}

func (l *FileLog) bindMetrics(reg *obs.Registry) {
	l.appends = reg.Counter("wal.file.appends")
	l.bytes = reg.Counter("wal.file.bytes")
	l.fsyncNs = reg.Histogram("wal.fsync_ns")
	l.failures = reg.Counter("wal.failures")
}

// OpenFileLog creates (or truncates) a file-backed log.
func OpenFileLog(path string, opts ...FileOption) (*FileLog, error) {
	l := &FileLog{fs: OSFS{}}
	l.bindMetrics(obs.Default)
	for _, o := range opts {
		o(l)
	}
	f, err := l.fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriter(f)
	if l.format == FormatBinary {
		hdr := FileHeader(l.format)
		if _, err := l.w.Write(hdr); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.bytes.Add(int64(len(hdr)))
	}
	return l, nil
}

// sealLocked records the first storage error, counts it, and publishes a
// wal.failed event; the log is sealed from here on (see ErrLogFailed).
// It returns err so error paths can `return l.sealLocked(err)`.
func (l *FileLog) sealLocked(err error) error {
	if l.failed == nil {
		l.failed = err
		l.failures.Inc()
		if obs.DefaultBus.Active() {
			obs.DefaultBus.Publish(obs.Event{Kind: obs.EvWalFailed, Cause: err.Error()})
		}
	}
	return err
}

// sealedErrLocked is the error every operation on a sealed log returns:
// ErrLogFailed wrapping the original cause.
func (l *FileLog) sealedErrLocked() error {
	return fmt.Errorf("%w: %v", ErrLogFailed, l.failed)
}

// Failed reports the storage error that sealed the log, or nil.
func (l *FileLog) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Append implements Log. The record is encoded into a scratch buffer the
// log owns (reused under its mutex), so the steady-state binary append
// path with an idle event bus performs zero heap allocations — the hot
// path the B13 gate holds at 0 allocs/op.
func (l *FileLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.sealedErrLocked()
	}
	var err error
	l.enc, err = EncodeRecord(l.enc[:0], rec, l.format)
	if err != nil {
		return err
	}
	return l.appendEncodedLocked(l.enc)
}

// recFormat reports the log's record framing (immutable after open).
func (l *FileLog) recFormat() Format { return l.format }

// appendEncoded writes one fully framed record (a text line including its
// trailing newline, or one binary frame), honoring the log's fsync
// setting and counting metrics. SegmentedLog shares this path so a
// rotated segment is byte-for-byte what FileLog would have written.
func (l *FileLog) appendEncoded(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.sealedErrLocked()
	}
	return l.appendEncodedLocked(data)
}

func (l *FileLog) appendEncodedLocked(data []byte) error {
	n, err := l.w.Write(data)
	if err != nil {
		return l.sealLocked(fmt.Errorf("wal: %w", err))
	}
	if l.fsync {
		start := time.Now()
		if err := l.w.Flush(); err != nil {
			return l.sealLocked(fmt.Errorf("wal: %w", err))
		}
		if err := l.f.Sync(); err != nil {
			return l.sealLocked(fmt.Errorf("wal: %w", err))
		}
		dur := time.Since(start).Nanoseconds()
		l.fsyncNs.Observe(dur)
		if obs.DefaultBus.Active() {
			obs.DefaultBus.Publish(obs.Event{Kind: obs.EvWalFsync, N: 1, DurNs: dur})
		}
	}
	l.appends.Inc()
	l.bytes.Add(int64(n))
	return nil
}

// setFsync flips per-append fsync; GroupCommitLog uses it to take over
// durability at batch granularity.
func (l *FileLog) setFsync(on bool) {
	l.mu.Lock()
	l.fsync = on
	l.mu.Unlock()
}

// writeRaw writes bytes to the file without framing or a trailing newline;
// FaultLog uses it to plant torn records.
func (l *FileLog) writeRaw(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(b); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close flushes buffered records, syncs, and closes the underlying file.
// Closing a sealed log closes the file handle but still reports the
// sealed state — buffered data past the fault is not trustworthy and is
// not re-flushed.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		l.f.Close()
		return l.sealedErrLocked()
	}
	if err := l.w.Flush(); err != nil {
		l.sealLocked(fmt.Errorf("wal: %w", err))
		l.f.Close()
		return l.sealedErrLocked()
	}
	if err := l.f.Sync(); err != nil {
		l.sealLocked(fmt.Errorf("wal: %w", err))
		l.f.Close()
		return l.sealedErrLocked()
	}
	return l.f.Close()
}

// rawLog is the injection surface FaultLog needs: a real append, the
// ability to plant raw torn bytes, and the record framing to tear. FileLog
// and SegmentedLog both satisfy it.
type rawLog interface {
	Append(rec Record) error
	writeRaw(b []byte) error
	recFormat() Format
}

// FaultLog wraps a FileLog (or SegmentedLog) and injects a crash at a
// scripted record boundary, mirroring MemLog.CrashAfter for on-disk logs:
// the first CrashAfter appends succeed, every later Append returns
// ErrCrash. With ShortWrite the crashing append first writes a torn prefix
// of the framed record (no newline) to the file — the on-disk signature of
// a process dying mid-write — which tolerant recovery must discard.
type FaultLog struct {
	mu         sync.Mutex
	inner      rawLog
	crashAfter int
	shortWrite bool
	appended   int
	crashed    bool
}

// NewFaultLog wraps inner. crashAfter <= 0 never crashes.
func NewFaultLog(inner *FileLog, crashAfter int, shortWrite bool) *FaultLog {
	return &FaultLog{inner: inner, crashAfter: crashAfter, shortWrite: shortWrite}
}

// NewSegmentedFaultLog wraps a SegmentedLog with the same crash injection
// as NewFaultLog; the torn prefix lands in the active segment, so per-
// segment repair must discard it (the E9 soak in internal/sim).
func NewSegmentedFaultLog(inner *SegmentedLog, crashAfter int, shortWrite bool) *FaultLog {
	return &FaultLog{inner: inner, crashAfter: crashAfter, shortWrite: shortWrite}
}

// Append implements Log.
func (l *FaultLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.crashed {
		return ErrCrash
	}
	if l.crashAfter > 0 && l.appended >= l.crashAfter {
		l.crashed = true
		if l.shortWrite {
			if enc, err := EncodeRecord(nil, rec, l.inner.recFormat()); err == nil {
				if l.inner.recFormat() == FormatText {
					// Drop the newline so the planted prefix is always a
					// strict prefix of the framed line, never a complete
					// record that merely lacks a terminator.
					enc = enc[:len(enc)-1]
				}
				// Half a record, mid-body: enough bytes that the frame
				// header is intact but the checksum cannot match.
				n := len(enc)/2 + 10
				if n >= len(enc) {
					n = len(enc) - 1
				}
				l.inner.writeRaw(enc[:n])
			}
		}
		return ErrCrash
	}
	l.appended++
	return l.inner.Append(rec)
}

// jsonValue is the wire form of an expr.Value. Integers travel as strings
// to keep 64-bit precision.
type jsonValue struct {
	K string  `json:"k"`
	I string  `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

type jsonRecord struct {
	Type     RecordType           `json:"t"`
	Instance string               `json:"inst"`
	Process  string               `json:"proc,omitempty"`
	Path     string               `json:"path,omitempty"`
	Iter     int                  `json:"iter,omitempty"`
	Values   map[string]jsonValue `json:"vals,omitempty"`
}

// Marshal encodes a record as one JSON line (without the trailing newline).
func Marshal(rec Record) ([]byte, error) {
	jr := jsonRecord{
		Type: rec.Type, Instance: rec.Instance, Process: rec.Process,
		Path: rec.Path, Iter: rec.Iter,
	}
	if rec.Values != nil {
		jr.Values = make(map[string]jsonValue, len(rec.Values))
		for k, v := range rec.Values {
			jv, err := encodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("wal: member %q: %w", k, err)
			}
			jr.Values[k] = jv
		}
	}
	return json.Marshal(jr)
}

// Unmarshal decodes one JSON line into a record.
func Unmarshal(b []byte) (Record, error) {
	var jr jsonRecord
	if err := json.Unmarshal(b, &jr); err != nil {
		return Record{}, fmt.Errorf("wal: %w", err)
	}
	rec := Record{
		Type: jr.Type, Instance: jr.Instance, Process: jr.Process,
		Path: jr.Path, Iter: jr.Iter,
	}
	if jr.Values != nil {
		rec.Values = make(map[string]expr.Value, len(jr.Values))
		for k, jv := range jr.Values {
			v, err := decodeValue(jv)
			if err != nil {
				return Record{}, fmt.Errorf("wal: member %q: %w", k, err)
			}
			rec.Values[k] = v
		}
	}
	return rec, nil
}

func encodeValue(v expr.Value) (jsonValue, error) {
	switch v.Kind() {
	case expr.KindInt:
		return jsonValue{K: "I", I: strconv.FormatInt(v.AsInt(), 10)}, nil
	case expr.KindFloat:
		return jsonValue{K: "F", F: v.AsFloat()}, nil
	case expr.KindString:
		return jsonValue{K: "S", S: v.AsString()}, nil
	case expr.KindBool:
		return jsonValue{K: "B", B: v.AsBool()}, nil
	default:
		return jsonValue{}, fmt.Errorf("cannot encode %s value", v.Kind())
	}
}

func decodeValue(jv jsonValue) (expr.Value, error) {
	switch jv.K {
	case "I":
		i, err := strconv.ParseInt(jv.I, 10, 64)
		if err != nil {
			return expr.Null, err
		}
		return expr.Int(i), nil
	case "F":
		return expr.Float(jv.F), nil
	case "S":
		return expr.String_(jv.S), nil
	case "B":
		return expr.Bool(jv.B), nil
	default:
		return expr.Null, fmt.Errorf("unknown value kind %q", jv.K)
	}
}

// ReadAll strictly decodes a log stream written by FileLog in either
// on-disk format: the file header (or its absence) selects the framing —
// CRC-framed text lines (legacy plain-JSON lines are also accepted) or
// length-prefixed binary frames. Any undecodable or checksum-failing
// record is an error — use ReadAllTolerant to accept a log with a torn
// tail. Strict and tolerant reads share one scanning core (scanLog), so
// a log RepairFile pronounces clean always reads back strictly.
func ReadAll(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	recs, _, _, err := scanLog(data, true)
	return recs, err
}

// ReadFile reads a file-backed log from disk (strict; see ReadAll).
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return ReadAll(f)
}

// ReadAllTolerant decodes a log stream in either on-disk format,
// tolerating a torn or corrupt final record by dropping it. It returns
// the surviving records and the number of trailing bytes discarded (0
// when the log is clean). Corruption anywhere but the tail is still an
// error.
func ReadAllTolerant(r io.Reader) ([]Record, int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	recs, _, dropped, err := scanLog(data, false)
	return recs, dropped, err
}

// ReadFileTolerant reads a file-backed log, tolerating a torn tail (see
// ReadAllTolerant).
func ReadFileTolerant(path string) ([]Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return ReadAllTolerant(f)
}

// RepairFile implements truncate-and-resume recovery for a file log in
// either on-disk format: it reads the log tolerantly and, if a torn tail
// was found, truncates the file to the valid prefix (keeping a binary
// log's file header) so subsequent appends produce a clean log. It
// returns the surviving records and the number of bytes truncated.
func RepairFile(path string) ([]Record, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	recs, validLen, dropped, err := scanLog(data, false)
	if err != nil {
		return nil, 0, err
	}
	if dropped > 0 {
		if err := os.Truncate(path, int64(validLen)); err != nil {
			return nil, 0, fmt.Errorf("wal: %w", err)
		}
		obs.Default.Counter("wal.recovery.repairs").Inc()
		obs.Default.Counter("wal.recovery.dropped_bytes").Add(int64(dropped))
	}
	obs.Default.Counter("wal.recovery.records").Add(int64(len(recs)))
	return recs, dropped, nil
}

// Discard is a Log that drops every record; used by benchmarks to measure
// navigation without persistence (the B7 ablation).
var Discard Log = discard{}

type discard struct{}

func (discard) Append(Record) error { return nil }

// Compact reduces a log without changing what recovery reconstructs from
// it: a RecStartedActivity record whose (path, iter) later finished is
// dropped. Started records exist only to witness half-executed activities
// (recovery re-runs them from the beginning), and an execution with a
// logged completion is not half-executed. All RecFinishedActivity records
// are kept — replay consumes every iteration's output while re-navigating
// exit-condition loops. Compact returns a new slice; the input is not
// modified.
func Compact(records []Record) []Record {
	finished := make(map[string]map[int]bool)
	for _, r := range records {
		if r.Type != RecFinishedActivity {
			continue
		}
		m := finished[r.Path]
		if m == nil {
			m = make(map[int]bool)
			finished[r.Path] = m
		}
		m[r.Iter] = true
	}
	out := make([]Record, 0, len(records))
	for _, r := range records {
		if r.Type == RecStartedActivity && finished[r.Path][r.Iter] {
			continue
		}
		out = append(out, r)
	}
	return out
}
