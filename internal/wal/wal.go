// Package wal implements the persistence substrate behind the paper's
// §3.3 claim that "in most WFMSs the execution of a process is persistent
// in the sense that forward recovery is always guaranteed". The engine
// appends a record whenever an instance is created, an activity completes
// (with its output container), or the instance finishes. After a crash the
// engine re-navigates the instance deterministically, consuming logged
// outputs instead of re-invoking the corresponding programs; activities
// that had started but never logged a completion are re-executed from the
// beginning — the paper's explicit caveat about non-failure-atomic
// activities.
//
// Two log implementations are provided: an in-memory log with optional
// crash injection (for recovery tests) and a file-backed JSON-lines log.
package wal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"repro/internal/expr"
)

// RecordType discriminates log records.
type RecordType string

// The record types appended by the engine.
const (
	// RecCreated opens an instance: Process and Values (the input
	// container) are set.
	RecCreated RecordType = "created"
	// RecFinishedActivity records the completion of one activity
	// execution: Path, Iter and Values (the output container snapshot).
	RecFinishedActivity RecordType = "activity"
	// RecStartedActivity records that an activity began executing. It
	// carries no output; a started record without a matching finished
	// record marks a half-executed activity that recovery re-runs.
	RecStartedActivity RecordType = "started"
	// RecDone closes an instance: Values is the process output container.
	RecDone RecordType = "done"
)

// Record is one WAL entry.
type Record struct {
	Type     RecordType
	Instance string
	Process  string // RecCreated only
	Path     string // activity path within the instance
	Iter     int    // exit-condition iteration of the activity execution
	Values   map[string]expr.Value
}

// Log is an append-only record sink.
type Log interface {
	Append(rec Record) error
}

// ErrCrash is returned by a crash-injecting log when the configured crash
// point is reached; the engine treats it as a hard stop.
var ErrCrash = errors.New("wal: injected crash")

// MemLog is an in-memory log. CrashAfter > 0 makes the log return ErrCrash
// on the (CrashAfter+1)-th append, simulating a failure of the workflow
// server at that navigation point. MemLog is safe for concurrent use.
type MemLog struct {
	mu         sync.Mutex
	records    []Record
	CrashAfter int // 0 = never crash
}

// Append implements Log.
func (l *MemLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.CrashAfter > 0 && len(l.records) >= l.CrashAfter {
		return ErrCrash
	}
	l.records = append(l.records, cloneRecord(rec))
	return nil
}

// Records returns a copy of the appended records — what survives the
// "crash" and is handed to recovery.
func (l *MemLog) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.records))
	for i := range l.records {
		out[i] = cloneRecord(l.records[i])
	}
	return out
}

// Len reports the number of records appended so far.
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

func cloneRecord(r Record) Record {
	if r.Values != nil {
		vals := make(map[string]expr.Value, len(r.Values))
		for k, v := range r.Values {
			vals[k] = v
		}
		r.Values = vals
	}
	return r
}

// FileLog appends JSON-line records to a file. It is safe for concurrent
// use. Close flushes buffered data.
type FileLog struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenFileLog creates (or truncates) a file-backed log.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &FileLog{f: f, w: bufio.NewWriter(f)}, nil
}

// Append implements Log.
func (l *FileLog) Append(rec Record) error {
	b, err := Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(b); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close flushes and closes the underlying file.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	return l.f.Close()
}

// jsonValue is the wire form of an expr.Value. Integers travel as strings
// to keep 64-bit precision.
type jsonValue struct {
	K string  `json:"k"`
	I string  `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
	B bool    `json:"b,omitempty"`
}

type jsonRecord struct {
	Type     RecordType           `json:"t"`
	Instance string               `json:"inst"`
	Process  string               `json:"proc,omitempty"`
	Path     string               `json:"path,omitempty"`
	Iter     int                  `json:"iter,omitempty"`
	Values   map[string]jsonValue `json:"vals,omitempty"`
}

// Marshal encodes a record as one JSON line (without the trailing newline).
func Marshal(rec Record) ([]byte, error) {
	jr := jsonRecord{
		Type: rec.Type, Instance: rec.Instance, Process: rec.Process,
		Path: rec.Path, Iter: rec.Iter,
	}
	if rec.Values != nil {
		jr.Values = make(map[string]jsonValue, len(rec.Values))
		for k, v := range rec.Values {
			jv, err := encodeValue(v)
			if err != nil {
				return nil, fmt.Errorf("wal: member %q: %w", k, err)
			}
			jr.Values[k] = jv
		}
	}
	return json.Marshal(jr)
}

// Unmarshal decodes one JSON line into a record.
func Unmarshal(b []byte) (Record, error) {
	var jr jsonRecord
	if err := json.Unmarshal(b, &jr); err != nil {
		return Record{}, fmt.Errorf("wal: %w", err)
	}
	rec := Record{
		Type: jr.Type, Instance: jr.Instance, Process: jr.Process,
		Path: jr.Path, Iter: jr.Iter,
	}
	if jr.Values != nil {
		rec.Values = make(map[string]expr.Value, len(jr.Values))
		for k, jv := range jr.Values {
			v, err := decodeValue(jv)
			if err != nil {
				return Record{}, fmt.Errorf("wal: member %q: %w", k, err)
			}
			rec.Values[k] = v
		}
	}
	return rec, nil
}

func encodeValue(v expr.Value) (jsonValue, error) {
	switch v.Kind() {
	case expr.KindInt:
		return jsonValue{K: "I", I: strconv.FormatInt(v.AsInt(), 10)}, nil
	case expr.KindFloat:
		return jsonValue{K: "F", F: v.AsFloat()}, nil
	case expr.KindString:
		return jsonValue{K: "S", S: v.AsString()}, nil
	case expr.KindBool:
		return jsonValue{K: "B", B: v.AsBool()}, nil
	default:
		return jsonValue{}, fmt.Errorf("cannot encode %s value", v.Kind())
	}
}

func decodeValue(jv jsonValue) (expr.Value, error) {
	switch jv.K {
	case "I":
		i, err := strconv.ParseInt(jv.I, 10, 64)
		if err != nil {
			return expr.Null, err
		}
		return expr.Int(i), nil
	case "F":
		return expr.Float(jv.F), nil
	case "S":
		return expr.String_(jv.S), nil
	case "B":
		return expr.Bool(jv.B), nil
	default:
		return expr.Null, fmt.Errorf("unknown value kind %q", jv.K)
	}
}

// ReadAll decodes a JSON-lines log stream, e.g. a file written by FileLog.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec, err := Unmarshal(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("wal: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return out, nil
}

// ReadFile reads a file-backed log from disk.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return ReadAll(f)
}

// Discard is a Log that drops every record; used by benchmarks to measure
// navigation without persistence (the B7 ablation).
var Discard Log = discard{}

type discard struct{}

func (discard) Append(Record) error { return nil }

// Compact reduces a log without changing what recovery reconstructs from
// it: a RecStartedActivity record whose (path, iter) later finished is
// dropped. Started records exist only to witness half-executed activities
// (recovery re-runs them from the beginning), and an execution with a
// logged completion is not half-executed. All RecFinishedActivity records
// are kept — replay consumes every iteration's output while re-navigating
// exit-condition loops. Compact returns a new slice; the input is not
// modified.
func Compact(records []Record) []Record {
	finished := make(map[string]map[int]bool)
	for _, r := range records {
		if r.Type != RecFinishedActivity {
			continue
		}
		m := finished[r.Path]
		if m == nil {
			m = make(map[int]bool)
			finished[r.Path] = m
		}
		m[r.Iter] = true
	}
	out := make([]Record, 0, len(records))
	for _, r := range records {
		if r.Type == RecStartedActivity && finished[r.Path][r.Iter] {
			continue
		}
		out = append(out, r)
	}
	return out
}
