package wal

import (
	"bytes"
	"testing"

	"repro/internal/expr"
)

// FuzzReadRecords drives the WAL frame decoder with arbitrary bytes — both
// framings, since the scanner sniffs the file header. The decoder must
// never panic, a strictly-readable log must also read tolerantly with
// nothing dropped, and every record the decoder accepts must re-marshal in
// both formats (no unrepresentable values smuggled in off the wire).
func FuzzReadRecords(f *testing.F) {
	rec := Record{
		Type: RecFinishedActivity, Instance: "i1", Path: "A", Iter: 2,
		Values: map[string]expr.Value{"RC": expr.Int(0), "s": expr.String_("x")},
	}
	b, err := Marshal(rec)
	if err != nil {
		f.Fatal(err)
	}
	clean := append(frameLine(b), '\n')
	f.Add(append([]byte{}, clean...))
	f.Add(bytes.Repeat(clean, 3))
	f.Add(clean[:len(clean)/2])                                 // torn tail
	f.Add([]byte(`{"t":"created","inst":"i"}` + "\n"))          // legacy plain JSON
	f.Add([]byte("deadbeef {\"t\":\"done\",\"inst\":\"i\"}\n")) // checksum mismatch
	f.Add([]byte("\n\n"))
	f.Add([]byte{})

	// Binary-framing seeds: a clean one-record log, a multi-record log
	// whose payloads carry the PR 6 parity-bug byte classes (\r, \n, 0x00,
	// empty strings), a torn frame, a torn header, and a bad format byte.
	nasty := Record{
		Type: RecFinishedActivity, Instance: "i\r\n1", Path: "A\x00B", Iter: -3,
		Values: map[string]expr.Value{"": expr.String_(""), "crlf": expr.String_("a\r\nb\x00c")},
	}
	binLog := FileHeader(FormatBinary)
	binLog, err = AppendRecordBinary(binLog, rec)
	if err != nil {
		f.Fatal(err)
	}
	binLog, err = AppendRecordBinary(binLog, nasty)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte{}, binLog...))
	f.Add(binLog[:len(binLog)-3])          // torn binary tail
	f.Add(binLog[:fileHeaderLen-2])        // torn file header
	f.Add(append(FileHeader(7), clean...)) // unsupported format byte

	// Headered text log (format byte 0) and the same nasty payloads in
	// text framing.
	nb, err := Marshal(nasty)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(FileHeader(FormatText), clean...))
	f.Add(append(frameLine(nb), '\n'))

	f.Fuzz(func(t *testing.T, data []byte) {
		strict, serr := ReadAll(bytes.NewReader(data))
		tol, dropped, terr := ReadAllTolerant(bytes.NewReader(data))
		if serr == nil {
			if terr != nil {
				t.Fatalf("strict read ok but tolerant failed: %v", terr)
			}
			if dropped != 0 || len(tol) != len(strict) {
				t.Fatalf("clean log: tolerant dropped %d bytes, %d vs %d records",
					dropped, len(tol), len(strict))
			}
		}
		for _, r := range tol {
			if _, err := Marshal(r); err != nil {
				t.Fatalf("accepted record does not re-marshal as text: %v", err)
			}
			if _, err := MarshalBinary(r); err != nil {
				t.Fatalf("accepted record does not re-marshal as binary: %v", err)
			}
		}
	})
}
