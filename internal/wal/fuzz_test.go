package wal

import (
	"bytes"
	"testing"

	"repro/internal/expr"
)

// FuzzReadRecords drives the WAL frame decoder with arbitrary bytes. The
// decoder must never panic, a strictly-readable log must also read
// tolerantly with nothing dropped, and every record the decoder accepts
// must re-marshal (no unrepresentable values smuggled in off the wire).
func FuzzReadRecords(f *testing.F) {
	rec := Record{
		Type: RecFinishedActivity, Instance: "i1", Path: "A", Iter: 2,
		Values: map[string]expr.Value{"RC": expr.Int(0), "s": expr.String_("x")},
	}
	b, err := Marshal(rec)
	if err != nil {
		f.Fatal(err)
	}
	clean := append(frameLine(b), '\n')
	f.Add(append([]byte{}, clean...))
	f.Add(bytes.Repeat(clean, 3))
	f.Add(clean[:len(clean)/2])                                 // torn tail
	f.Add([]byte(`{"t":"created","inst":"i"}` + "\n"))          // legacy plain JSON
	f.Add([]byte("deadbeef {\"t\":\"done\",\"inst\":\"i\"}\n")) // checksum mismatch
	f.Add([]byte("\n\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		strict, serr := ReadAll(bytes.NewReader(data))
		tol, dropped, terr := ReadAllTolerant(bytes.NewReader(data))
		if serr == nil {
			if terr != nil {
				t.Fatalf("strict read ok but tolerant failed: %v", terr)
			}
			if dropped != 0 || len(tol) != len(strict) {
				t.Fatalf("clean log: tolerant dropped %d bytes, %d vs %d records",
					dropped, len(tol), len(strict))
			}
		}
		for _, r := range tol {
			if _, err := Marshal(r); err != nil {
				t.Fatalf("accepted record does not re-marshal: %v", err)
			}
		}
	})
}
