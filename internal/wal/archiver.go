package wal

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Archiver asynchronously copies sealed segments and completed
// checkpoints into a Store. It is owned by the layer that seals files —
// engine.Checkpointer enqueues every sealed segment and every checkpoint
// it writes — and runs one background goroutine so archival never sits
// on the append or checkpoint path. Each upload is bounded by a per-op
// timeout, retried with capped exponential backoff plus jitter, and
// verified after upload by reading the blob back and comparing its
// CRC-32C against the local bytes: only a verified blob makes its name
// Verified, and local pruning is gated on Verified — nothing is deleted
// locally until its archived copy is known good.
//
// Consecutive failures trip a circuit breaker: uploads pause for a
// cooldown, then a single probe either closes the breaker or re-opens
// it. A slow, flaky, or down archive therefore degrades gracefully —
// the queue (and local retention) grows, group commit and checkpointing
// never stall, and the wal.archive.* metrics and events surface the lag,
// queued bytes, retries and breaker state to /statusz and wftop.
//
// Verification state lives in memory: after a restart everything still
// on local disk re-enqueues and re-uploads (Put is an idempotent
// overwrite of identical bytes), re-establishing prune eligibility.
type Archiver struct {
	store Store

	opTimeout    time.Duration
	backoffBase  time.Duration
	backoffMax   time.Duration
	breakerAfter int
	cooldown     time.Duration

	mu       sync.Mutex
	queue    []archiveJob
	queued   map[string]bool // names queued or in flight
	verified map[string]bool
	inflight string
	fails    int  // consecutive failures
	open     bool // breaker open
	rng      *rand.Rand
	stop     chan struct{}
	stopped  chan struct{}
	wake     chan struct{}

	reg         *obs.Registry
	archived    *obs.Counter // wal.archive.archived
	bytes       *obs.Counter // wal.archive.bytes
	retries     *obs.Counter // wal.archive.retries
	drops       *obs.Counter // wal.archive.drops
	depth       *obs.Gauge   // wal.archive.queue.depth (lag, in blobs)
	queuedBytes *obs.Gauge   // wal.archive.queued_bytes
	breaker     *obs.Gauge   // wal.archive.breaker.open
}

// archiveJob is one file awaiting archival.
type archiveJob struct {
	name string
	path string
	size int64
}

// ArchiverOption configures an Archiver.
type ArchiverOption func(*Archiver)

// ArchiveOpTimeout bounds each store operation (default 2s).
func ArchiveOpTimeout(d time.Duration) ArchiverOption {
	return func(a *Archiver) {
		if d > 0 {
			a.opTimeout = d
		}
	}
}

// ArchiveBackoff sets the retry backoff's base and cap (defaults 50ms
// and 2s). The actual delay is the capped exponential with half-range
// jitter, so a fleet of archivers retrying against one recovering
// backend does not thunder.
func ArchiveBackoff(base, max time.Duration) ArchiverOption {
	return func(a *Archiver) {
		if base > 0 {
			a.backoffBase = base
		}
		if max > 0 {
			a.backoffMax = max
		}
	}
}

// ArchiveBreakerAfter opens the circuit breaker after n consecutive
// failed uploads (default 3).
func ArchiveBreakerAfter(n int) ArchiverOption {
	return func(a *Archiver) {
		if n > 0 {
			a.breakerAfter = n
		}
	}
}

// ArchiveBreakerCooldown sets how long an open breaker pauses uploads
// before probing again (default 1s).
func ArchiveBreakerCooldown(d time.Duration) ArchiverOption {
	return func(a *Archiver) {
		if d > 0 {
			a.cooldown = d
		}
	}
}

// ArchiveMetricsRegistry points the archiver's instrumentation at reg
// instead of obs.Default.
func ArchiveMetricsRegistry(reg *obs.Registry) ArchiverOption {
	return func(a *Archiver) { a.reg = reg }
}

// ArchiveSeed seeds the jitter source (tests pin it for reproducible
// backoff schedules).
func ArchiveSeed(seed int64) ArchiverOption {
	return func(a *Archiver) { a.rng = rand.New(rand.NewSource(seed)) }
}

// NewArchiver prepares an archiver over store. Start launches the
// background loop; Enqueue may be called before or after Start.
func NewArchiver(store Store, opts ...ArchiverOption) *Archiver {
	a := &Archiver{
		store:        store,
		opTimeout:    2 * time.Second,
		backoffBase:  50 * time.Millisecond,
		backoffMax:   2 * time.Second,
		breakerAfter: 3,
		cooldown:     time.Second,
		queued:       map[string]bool{},
		verified:     map[string]bool{},
		rng:          rand.New(rand.NewSource(1)),
		wake:         make(chan struct{}, 1),
		reg:          obs.Default,
	}
	for _, o := range opts {
		o(a)
	}
	a.archived = a.reg.Counter("wal.archive.archived")
	a.bytes = a.reg.Counter("wal.archive.bytes")
	a.retries = a.reg.Counter("wal.archive.retries")
	a.drops = a.reg.Counter("wal.archive.drops")
	a.depth = a.reg.Gauge("wal.archive.queue.depth")
	a.queuedBytes = a.reg.Gauge("wal.archive.queued_bytes")
	a.breaker = a.reg.Gauge("wal.archive.breaker.open")
	return a
}

// Store returns the backend blobs are archived to.
func (a *Archiver) Store() Store { return a.store }

// Enqueue schedules the file at path for archival under its base name.
// Already-verified or already-queued names are ignored, so callers may
// re-enqueue every sealed file each pass. Safe before Start.
func (a *Archiver) Enqueue(path string) {
	name := filepath.Base(path)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.verified[name] || a.queued[name] {
		return
	}
	size := int64(0)
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	a.queue = append(a.queue, archiveJob{name: name, path: path, size: size})
	a.queued[name] = true
	a.depth.Set(int64(len(a.queue)))
	a.queuedBytes.Add(size)
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// Verified reports whether the named blob's archived copy has been
// CRC-verified this process lifetime — the prune-eligibility gate.
func (a *Archiver) Verified(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.verified[name]
}

// Lag reports how many blobs are queued or in flight — the archival lag
// an unavailable backend grows.
func (a *Archiver) Lag() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.queue)
	if a.inflight != "" {
		n++
	}
	return n
}

// BreakerOpen reports whether the circuit breaker is currently open.
func (a *Archiver) BreakerOpen() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.open
}

// Start launches the background upload loop. Stop it with Stop.
func (a *Archiver) Start() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stop != nil {
		return
	}
	a.stop = make(chan struct{})
	a.stopped = make(chan struct{})
	go a.run(a.stop, a.stopped)
}

// Stop halts the background loop, leaving any unarchived queue behind
// (the files are still on local disk — pruning is gated on verification,
// so nothing is lost). Use Drain first for a best-effort flush.
func (a *Archiver) Stop() {
	a.mu.Lock()
	stop, stopped := a.stop, a.stopped
	a.stop, a.stopped = nil, nil
	a.mu.Unlock()
	if stop != nil {
		close(stop)
		<-stopped
	}
}

// Drain waits until the queue is empty (everything verified) or the
// timeout elapses, reporting whether it drained. A down archive makes
// Drain time out — callers treat that as degradation, not failure.
func (a *Archiver) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if a.Lag() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return a.Lag() == 0
		}
		time.Sleep(time.Millisecond)
	}
}

// run is the background loop: pop, upload+verify, back off on failure,
// honor the breaker.
func (a *Archiver) run(stop, stopped chan struct{}) {
	defer close(stopped)
	for {
		a.mu.Lock()
		var job archiveJob
		have := false
		if len(a.queue) > 0 {
			job = a.queue[0]
			a.queue = a.queue[1:]
			a.inflight = job.name
			have = true
			a.depth.Set(int64(len(a.queue)))
		}
		a.mu.Unlock()

		if !have {
			select {
			case <-stop:
				return
			case <-a.wake:
			}
			continue
		}

		err := a.attempt(job)
		a.mu.Lock()
		a.inflight = ""
		if err == nil {
			delete(a.queued, job.name)
			a.verified[job.name] = true
			a.queuedBytes.Add(-job.size)
			a.fails = 0
			wasOpen := a.open
			a.open = false
			a.breaker.Set(0)
			a.mu.Unlock()
			a.archived.Inc()
			a.bytes.Add(job.size)
			if obs.DefaultBus.Active() {
				if wasOpen {
					obs.DefaultBus.Publish(obs.Event{Kind: obs.EvArchiveBreakerClose})
				}
				obs.DefaultBus.Publish(obs.Event{Kind: obs.EvArchivePut, Cause: job.name, N: job.size})
			}
			continue
		}
		if os.IsNotExist(err) {
			// The local file vanished before it could be archived. Pruning is
			// gated on verification, so this means the caller deleted it
			// deliberately (or the whole directory is gone); drop the job.
			delete(a.queued, job.name)
			a.queuedBytes.Add(-job.size)
			a.mu.Unlock()
			a.drops.Inc()
			continue
		}
		// Failure: requeue at the front (uploads stay in seal order) and
		// back off, possibly tripping the breaker.
		a.queue = append([]archiveJob{job}, a.queue...)
		a.depth.Set(int64(len(a.queue)))
		a.fails++
		fails := a.fails
		opened := false
		if !a.open && fails >= a.breakerAfter {
			a.open = true
			opened = true
			a.breaker.Set(1)
		}
		wait := a.backoffFor(fails)
		if a.open {
			wait = a.cooldown
		}
		a.mu.Unlock()
		a.retries.Inc()
		if obs.DefaultBus.Active() {
			obs.DefaultBus.Publish(obs.Event{Kind: obs.EvArchiveRetry, Cause: err.Error(), N: int64(fails)})
			if opened {
				obs.DefaultBus.Publish(obs.Event{Kind: obs.EvArchiveBreakerOpen, N: int64(fails)})
			}
		}
		t := time.NewTimer(wait)
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
	}
}

// backoffFor computes the capped exponential backoff with half-range
// jitter for the n-th consecutive failure (n >= 1). Called with a.mu
// held (the rng is guarded by it).
func (a *Archiver) backoffFor(n int) time.Duration {
	d := a.backoffBase << uint(n-1)
	if d <= 0 || d > a.backoffMax {
		d = a.backoffMax
	}
	j := time.Duration(a.rng.Int63n(int64(d)/2 + 1))
	return d/2 + j
}

// attempt uploads one file and verifies the stored copy byte-for-byte
// via CRC-32C read-back.
func (a *Archiver) attempt(job archiveJob) error {
	data, err := os.ReadFile(job.path)
	if err != nil {
		return err
	}
	if err := a.withTimeout("put "+job.name, func() error {
		return a.store.Put(job.name, data)
	}); err != nil {
		return err
	}
	var got []byte
	if err := a.withTimeout("get "+job.name, func() error {
		var gerr error
		got, gerr = a.store.Get(job.name)
		return gerr
	}); err != nil {
		return err
	}
	if len(got) != len(data) || crc32Checksum(got) != crc32Checksum(data) {
		return fmt.Errorf("wal: archive verify %s: stored blob CRC mismatch (%d bytes stored, %d local)",
			job.name, len(got), len(data))
	}
	return nil
}

// withTimeout runs one store operation under the per-op deadline. The
// operation goroutine is left to finish on its own if it overruns — the
// Store contract makes a late Put harmless (idempotent overwrite).
func (a *Archiver) withTimeout(what string, op func() error) error {
	done := make(chan error, 1)
	go func() { done <- op() }()
	t := time.NewTimer(a.opTimeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return fmt.Errorf("%w: %s after %v", ErrStoreTimeout, what, a.opTimeout)
	}
}
