package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
)

func gcRecord(inst string, i int) Record {
	return Record{
		Type:     RecFinishedActivity,
		Instance: inst,
		Path:     fmt.Sprintf("a%d", i),
		Iter:     0,
		Values:   map[string]expr.Value{"RC": expr.Int(int64(i))},
	}
}

// TestGroupCommitSequential: with a single appender and no window, group
// commit degenerates to per-record fsync; every record must land on disk
// in order and be strictly readable.
func TestGroupCommitSequential(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	flog, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitLog(flog, GroupWithMetricsRegistry(obs.NewRegistry()))
	const n = 25
	for i := 0; i < n; i++ {
		if err := g.Append(gcRecord("i1", i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Path != fmt.Sprintf("a%d", i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}
}

// TestGroupCommitConcurrent hammers one GroupCommitLog from many
// goroutines (run under -race). Every acknowledged append must be on
// disk after Close, batching must actually happen (fewer batches than
// records), and each instance's records must appear in its append order.
func TestGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	flog, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g := NewGroupCommitLog(flog, GroupWithMetricsRegistry(reg))
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inst := fmt.Sprintf("i%d", w)
			for i := 0; i < perWriter; i++ {
				if err := g.Append(gcRecord(inst, i)); err != nil {
					t.Errorf("append %s/%d: %v", inst, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*perWriter {
		t.Fatalf("got %d records, want %d", len(recs), writers*perWriter)
	}
	next := make(map[string]int)
	for _, r := range recs {
		want := fmt.Sprintf("a%d", next[r.Instance])
		if r.Path != want {
			t.Fatalf("instance %s: got %s, want %s (per-instance order broken)", r.Instance, r.Path, want)
		}
		next[r.Instance]++
	}
	snap := reg.Snapshot()
	batches := snap.Counters["wal.group.batches"]
	if batches == 0 || snap.Counters["wal.group.records"] != writers*perWriter {
		t.Fatalf("metrics: batches=%d records=%d", batches, snap.Counters["wal.group.records"])
	}
	if testing.Short() {
		return
	}
	if batches >= writers*perWriter {
		t.Fatalf("no batching happened: %d batches for %d records", batches, writers*perWriter)
	}
}

// TestGroupCommitWindowAndMaxBatch: a window leader waits for followers;
// a full batch cuts the window short.
func TestGroupCommitWindowAndMaxBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	flog, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g := NewGroupCommitLog(flog,
		GroupWindow(20*time.Millisecond),
		GroupMaxBatch(4),
		GroupWithMetricsRegistry(reg))
	const writers = 4
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := g.Append(gcRecord(fmt.Sprintf("i%d", w), 0)); err != nil {
				t.Errorf("append: %v", err)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["wal.group.records"]; got != writers {
		t.Fatalf("records=%d, want %d", got, writers)
	}
	// All four writers fit one full batch, which must not have waited the
	// whole window per batch times four.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("appends took %v; full-batch cut of the window seems broken", elapsed)
	}
}

// TestGroupCommitClose: Append after Close fails with ErrLogClosed, and
// Close is idempotent.
func TestGroupCommitClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	flog, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGroupCommitLog(flog, GroupWithMetricsRegistry(obs.NewRegistry()))
	if err := g.Append(gcRecord("i1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := g.Append(gcRecord("i1", 1)); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after close: %v, want ErrLogClosed", err)
	}
}

// TestGroupCrashAfter: the batch that would push past the crash point
// fails whole — none of its appends are acknowledged — and every record
// acknowledged before the crash is strictly readable from the repaired
// file. Exercised in both clean-crash and short-write (torn tail) modes.
func TestGroupCrashAfter(t *testing.T) {
	for _, short := range []bool{false, true} {
		name := "clean"
		if short {
			name = "short-write"
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "gc.wal")
			flog, err := OpenFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			const crashAt = 5
			g := NewGroupCommitLog(flog,
				GroupCrashAfter(crashAt, short),
				GroupWithMetricsRegistry(obs.NewRegistry()))
			var acked []int
			var crashed bool
			for i := 0; i < 20; i++ {
				err := g.Append(gcRecord("i1", i))
				switch {
				case err == nil:
					if crashed {
						t.Fatalf("append %d succeeded after crash", i)
					}
					acked = append(acked, i)
				case errors.Is(err, ErrCrash):
					crashed = true
				default:
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if !crashed {
				t.Fatal("crash never fired")
			}
			if len(acked) > crashAt {
				t.Fatalf("%d appends acknowledged past crash point %d", len(acked), crashAt)
			}
			flog.Close()
			recs, _, err := RepairFile(path)
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			// Sequential appends → one record per batch → on-disk records
			// must be exactly the acknowledged prefix (short-write survivors
			// would only appear with multi-record batches).
			if len(recs) < len(acked) {
				t.Fatalf("repaired log has %d records, %d were acknowledged", len(recs), len(acked))
			}
			for i := range acked {
				if recs[i].Path != fmt.Sprintf("a%d", acked[i]) {
					t.Fatalf("record %d: got %s, want a%d", i, recs[i].Path, acked[i])
				}
			}
		})
	}
}

// TestGroupCrashAfterConcurrent: under concurrent appenders a crashing
// multi-record batch must not acknowledge any of its records, and every
// acknowledged record must survive RepairFile. This is the unit-level
// version of the E8 soak invariant.
func TestGroupCrashAfterConcurrent(t *testing.T) {
	for _, short := range []bool{false, true} {
		name := "clean"
		if short {
			name = "short-write"
		}
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "gc.wal")
			flog, err := OpenFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			g := NewGroupCommitLog(flog,
				GroupCrashAfter(40, short),
				GroupWithMetricsRegistry(obs.NewRegistry()))
			const writers = 8
			const perWriter = 20
			ackedCh := make(chan string, writers*perWriter)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					inst := fmt.Sprintf("i%d", w)
					for i := 0; i < perWriter; i++ {
						if err := g.Append(gcRecord(inst, i)); err != nil {
							return // crashed; later appends fail too
						}
						ackedCh <- inst + "/" + fmt.Sprintf("a%d", i)
					}
				}(w)
			}
			wg.Wait()
			close(ackedCh)
			flog.Close()
			recs, _, err := RepairFile(path)
			if err != nil {
				t.Fatalf("repair: %v", err)
			}
			onDisk := make(map[string]bool, len(recs))
			for _, r := range recs {
				onDisk[r.Instance+"/"+r.Path] = true
			}
			for key := range ackedCh {
				if !onDisk[key] {
					t.Fatalf("acknowledged append %s missing from repaired log", key)
				}
			}
		})
	}
}
