package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
)

// SegmentInfo identifies one on-disk segment file of a SegmentedLog.
// Indexes are dense and monotonically increasing; the file with the
// highest index is the active (append) segment, every lower index is
// sealed and immutable.
type SegmentInfo struct {
	Index int
	Path  string
}

// segPath names segment files so lexical order equals index order.
func segPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%06d.seg", index))
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is on stable storage (the standard crash-consistency
// step after creating segments or renaming checkpoints into place).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// SegmentedLog is a FileLog split across rotating segment files in one
// directory. Each segment uses the identical on-disk record format
// (text-framed lines or, with SegmentFormat(FormatBinary), headered
// binary frames — the format travels in each file's header, so a
// directory may mix formats across process generations), and RepairFile
// works per segment verbatim; a
// crash can tear at most the tail of the highest-index (active) segment,
// because rotation seals a segment with a flush+fsync before the next one
// is created. Rotation happens when the active segment exceeds a record
// or byte threshold. Sealed segments are immutable, which is what lets a
// background checkpointer read and later delete them while appenders keep
// writing — see Checkpoint and engine.Checkpointer.
//
// SegmentedLog is safe for concurrent use and implements Log. It also
// serves as the inner log of a GroupCommitLog (NewGroupCommitSegmented),
// in which case rotation happens only at batch boundaries, keeping every
// batch inside a single segment.
type SegmentedLog struct {
	mu         sync.Mutex
	dir        string
	fs         FS
	fsync      bool
	format     Format
	maxRecords int
	maxBytes   int64
	reg        *obs.Registry
	enc        []byte // record encode scratch, reused under mu
	failed     error  // first storage error; non-nil seals the log

	active        *FileLog
	activeIndex   int
	activeRecords int
	activeBytes   int64
	sealed        []SegmentInfo

	segGauge  *obs.Gauge   // wal.segments.active
	rotations *obs.Counter // wal.segments.rotations
}

// SegmentOption configures a SegmentedLog.
type SegmentOption func(*SegmentedLog)

// SegmentMaxRecords rotates the active segment after n records
// (default 1024).
func SegmentMaxRecords(n int) SegmentOption {
	return func(l *SegmentedLog) {
		if n > 0 {
			l.maxRecords = n
		}
	}
}

// SegmentMaxBytes rotates the active segment after n bytes (default 1 MiB).
func SegmentMaxBytes(n int64) SegmentOption {
	return func(l *SegmentedLog) {
		if n > 0 {
			l.maxBytes = n
		}
	}
}

// SegmentFsync makes every Append durable before it returns, like
// FileLog's WithFsync.
func SegmentFsync() SegmentOption {
	return func(l *SegmentedLog) { l.fsync = true }
}

// SegmentMetricsRegistry points the log's instrumentation at reg instead
// of obs.Default.
func SegmentMetricsRegistry(reg *obs.Registry) SegmentOption {
	return func(l *SegmentedLog) { l.reg = reg }
}

// SegmentFS substitutes the filesystem beneath every segment file
// (default OSFS); fault tests pass a FaultFS.
func SegmentFS(fs FS) SegmentOption {
	return func(l *SegmentedLog) { l.fs = fs }
}

// SegmentFormat selects the record framing of newly created segments
// (default FormatText). Existing segments keep whatever format their
// header declares; readers sniff per file, so reopening a text-era
// directory with FormatBinary yields a valid mixed-format history.
func SegmentFormat(f Format) SegmentOption {
	return func(l *SegmentedLog) { l.format = f }
}

// OpenSegmentedLog opens (creating if needed) a segment directory and
// starts a fresh active segment after any existing ones. Existing
// segments are never appended to — a reopened log treats them all as
// sealed, so a previous process's torn tail stays confined to a file
// that per-segment repair can truncate.
func OpenSegmentedLog(dir string, opts ...SegmentOption) (*SegmentedLog, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &SegmentedLog{dir: dir, fs: OSFS{}, maxRecords: 1024, maxBytes: 1 << 20, reg: obs.Default}
	for _, o := range opts {
		o(l)
	}
	l.segGauge = l.reg.Gauge("wal.segments.active")
	l.rotations = l.reg.Counter("wal.segments.rotations")
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	l.sealed = segs
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1].Index + 1
	}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *SegmentedLog) openSegmentLocked(index int) error {
	opts := []FileOption{WithMetricsRegistry(l.reg), WithFS(l.fs), WithFormat(l.format)}
	if l.fsync {
		opts = append(opts, WithFsync())
	}
	f, err := OpenFileLog(segPath(l.dir, index), opts...)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.activeIndex = index
	l.activeRecords = 0
	l.activeBytes = 0
	l.segGauge.Set(int64(len(l.sealed) + 1))
	return nil
}

// sealLocked latches the first storage error; every later operation on
// the sealed log returns ErrLogFailed wrapping it (see ErrLogFailed).
func (l *SegmentedLog) sealLocked(err error) error {
	if l.failed == nil {
		l.failed = err
	}
	return err
}

func (l *SegmentedLog) sealedErrLocked() error {
	return fmt.Errorf("%w: %v", ErrLogFailed, l.failed)
}

// Failed reports the storage error that sealed the log, or nil.
func (l *SegmentedLog) Failed() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Append implements Log, rotating afterwards if the active segment
// crossed a threshold. Records are encoded into a scratch buffer the log
// owns, so the steady-state binary append path allocates nothing.
func (l *SegmentedLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return ErrLogClosed
	}
	if l.failed != nil {
		return l.sealedErrLocked()
	}
	var err error
	l.enc, err = EncodeRecord(l.enc[:0], rec, l.format)
	if err != nil {
		return err
	}
	if err := l.active.appendEncoded(l.enc); err != nil {
		return l.sealLocked(err)
	}
	l.activeRecords++
	l.activeBytes += int64(len(l.enc))
	return l.maybeRotateLocked()
}

// recFormat reports the framing of newly created segments (immutable
// after open).
func (l *SegmentedLog) recFormat() Format { return l.format }

// writeBatch appends a pre-framed batch to the active segment in one
// durable write (GroupCommitLog's flush path), rotating afterwards if a
// threshold was crossed — so a batch never spans segments.
func (l *SegmentedLog) writeBatch(data []byte, records int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return ErrLogClosed
	}
	if l.failed != nil {
		return l.sealedErrLocked()
	}
	if err := l.active.writeBatch(data, records); err != nil {
		return l.sealLocked(err)
	}
	l.activeRecords += records
	l.activeBytes += int64(len(data))
	return l.maybeRotateLocked()
}

// writeRaw plants raw bytes in the active segment (fault injection).
func (l *SegmentedLog) writeRaw(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return ErrLogClosed
	}
	return l.active.writeRaw(b)
}

// setFsync flips per-append fsync on the log and its active segment;
// GroupCommitLog uses it to take over durability at batch granularity.
func (l *SegmentedLog) setFsync(on bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fsync = on
	if l.active != nil {
		l.active.setFsync(on)
	}
}

func (l *SegmentedLog) maybeRotateLocked() error {
	if l.activeRecords >= l.maxRecords || l.activeBytes >= l.maxBytes {
		return l.rotateLocked()
	}
	return nil
}

// Rotate seals the active segment (flush + fsync + close) and opens the
// next one. A rotation of an empty active segment is a no-op. The engine's
// Checkpointer rotates before checkpointing so the records it wants to
// cover sit in sealed, immutable files.
func (l *SegmentedLog) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return ErrLogClosed
	}
	return l.rotateLocked()
}

func (l *SegmentedLog) rotateLocked() error {
	if l.activeRecords == 0 {
		return nil
	}
	if err := l.active.Close(); err != nil {
		// A rotation seal (flush+fsync) that fails leaves records of the
		// closing segment undurable — same fsync-gate stakes as a failed
		// append, so the whole log seals.
		return l.sealLocked(err)
	}
	l.sealed = append(l.sealed, SegmentInfo{Index: l.activeIndex, Path: segPath(l.dir, l.activeIndex)})
	l.rotations.Inc()
	if obs.DefaultBus.Active() {
		obs.DefaultBus.Publish(obs.Event{Kind: obs.EvWalRotate, N: int64(l.activeIndex)})
	}
	return l.openSegmentLocked(l.activeIndex + 1)
}

// Close flushes, syncs and closes the active segment. Further appends
// return ErrLogClosed. Close is idempotent.
func (l *SegmentedLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.active.Close()
	l.active = nil
	if l.failed != nil {
		return l.sealedErrLocked()
	}
	if err != nil {
		l.sealLocked(err)
		return l.sealedErrLocked()
	}
	return nil
}

// Dir returns the segment directory.
func (l *SegmentedLog) Dir() string { return l.dir }

// SealedSegments returns a snapshot of the sealed (immutable) segments in
// index order.
func (l *SegmentedLog) SealedSegments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]SegmentInfo(nil), l.sealed...)
}

// ActiveRecords reports how many records the active segment holds — the
// record-count trigger input for engine.Checkpointer.
func (l *SegmentedLog) ActiveRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.activeRecords
}

// Prune deletes sealed segments with index <= upto — the retention pass
// run after a checkpoint has made them redundant. It returns how many
// files were removed.
func (l *SegmentedLog) Prune(upto int) (int, error) {
	return l.PruneEligible(upto, nil)
}

// PruneEligible is Prune gated by an eligibility predicate: a covered
// segment is deleted only when eligible returns true — the archive
// gate, where eligibility means "archived copy CRC-verified". Ineligible
// segments stay sealed on disk (local retention grows while the archive
// is degraded) and are re-offered on the next pass. A nil predicate
// admits everything.
func (l *SegmentedLog) PruneEligible(upto int, eligible func(SegmentInfo) bool) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	kept := l.sealed[:0]
	for _, s := range l.sealed {
		if s.Index <= upto && (eligible == nil || eligible(s)) {
			if err := os.Remove(s.Path); err != nil && !os.IsNotExist(err) {
				return removed, fmt.Errorf("wal: %w", err)
			}
			removed++
			continue
		}
		kept = append(kept, s)
	}
	l.sealed = kept
	if removed > 0 {
		if err := syncDir(l.dir); err != nil {
			return removed, err
		}
	}
	active := 0
	if l.active != nil {
		active = 1
	}
	l.segGauge.Set(int64(len(l.sealed) + active))
	return removed, nil
}

// ListSegments lists the segment files present in dir, in index order.
func ListSegments(dir string) ([]SegmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []SegmentInfo
	for _, ent := range ents {
		var idx int
		if n, err := fmt.Sscanf(ent.Name(), "wal-%06d.seg", &idx); n != 1 || err != nil {
			continue
		}
		out = append(out, SegmentInfo{Index: idx, Path: filepath.Join(dir, ent.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, nil
}

// ReadSegments strictly reads every record in the segments of dir with
// index > afterIndex, in order; each segment is decoded in the format its
// own header declares. Any torn or corrupt record is an error — recovery
// uses RepairSegments instead.
func ReadSegments(dir string, afterIndex int) ([]Record, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, s := range segs {
		if s.Index <= afterIndex {
			continue
		}
		recs, err := ReadFile(s.Path)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %d: %w", s.Index, err)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// RepairSegments implements truncate-and-resume recovery across a segment
// directory: every segment with index > afterIndex is repaired with
// RepairFile semantics — in whatever format its own header declares, so
// mixed-format directories recover without configuration — and its
// surviving records are concatenated in index order. A torn tail is tolerated only where a crash can put one —
// in the last segment that holds any records (rotation seals earlier
// segments with an fsync, and a just-rotated empty segment after the torn
// one is fine); a torn segment followed by records in a later segment is
// mid-log corruption and is an error. Returns the surviving records and
// the total bytes truncated.
func RepairSegments(dir string, afterIndex int) ([]Record, int, error) {
	return RepairSegmentsStore(dir, afterIndex, nil)
}

// RepairSegmentsStore is RepairSegments with the archive rung: when
// store is non-nil, the archived sealed segments supplement the local
// directory. A segment index present only in the archive (local copy
// pruned or lost) is fetched and strict-decoded; a local segment that
// repairs dirty (torn or structurally damaged) is replaced by its
// archived copy when one fetches and decodes clean — the archive only
// ever holds fully-sealed segments, so a clean archived copy is the
// authoritative content. Fetch errors and corrupt archived blobs fall
// back to whatever the local file yields (CRC rejection, never silent
// trust), so a down archive degrades to plain RepairSegments. Archive
// fetches are counted in recover.archive_fetches and published as
// wal.archive.fetch events.
func RepairSegmentsStore(dir string, afterIndex int, store Store) ([]Record, int, error) {
	segs, err := ListSegments(dir)
	if err != nil {
		return nil, 0, err
	}
	local := make(map[int]string, len(segs))
	indexes := make([]int, 0, len(segs))
	for _, s := range segs {
		local[s.Index] = s.Path
		if s.Index > afterIndex {
			indexes = append(indexes, s.Index)
		}
	}
	archived := map[int]string{}
	if store != nil {
		names, err := store.List()
		if err == nil {
			for _, name := range names {
				var idx int
				if n, err := fmt.Sscanf(name, "wal-%06d.seg", &idx); n == 1 && err == nil && filepath.Ext(name) == ".seg" {
					archived[idx] = name
					if idx > afterIndex {
						if _, ok := local[idx]; !ok {
							indexes = append(indexes, idx)
						}
					}
				}
			}
		}
	}
	sort.Ints(indexes)

	fetch := func(idx int) ([]Record, bool) {
		name, ok := archived[idx]
		if !ok {
			return nil, false
		}
		data, err := store.Get(name)
		if err != nil {
			return nil, false
		}
		recs, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return nil, false // corrupt archived blob: CRC-reject, use local
		}
		obs.Default.Counter("recover.archive_fetches").Inc()
		if obs.DefaultBus.Active() {
			obs.DefaultBus.Publish(obs.Event{Kind: obs.EvArchiveFetch,
				Cause: name, N: int64(len(data))})
		}
		return recs, true
	}

	var out []Record
	dropped := 0
	tornAt := -1 // index of a segment that lost a tail
	for _, idx := range indexes {
		path, haveLocal := local[idx]
		var recs []Record
		d := 0
		if haveLocal {
			var err error
			recs, d, err = RepairFile(path)
			if err != nil || d > 0 {
				// Damaged local segment: prefer the archived sealed copy,
				// which restores the full content a torn local file lost.
				if arecs, ok := fetch(idx); ok {
					recs, d = arecs, 0
				} else if err != nil {
					return nil, 0, fmt.Errorf("wal: segment %d: %w", idx, err)
				}
			}
		} else {
			arecs, ok := fetch(idx)
			if !ok {
				return nil, 0, fmt.Errorf("wal: segment %d: archived copy missing or corrupt and no local file", idx)
			}
			recs = arecs
		}
		if tornAt >= 0 && len(recs) > 0 {
			return nil, 0, fmt.Errorf("wal: segment %d torn but segment %d has records — mid-log corruption", tornAt, idx)
		}
		if d > 0 {
			tornAt = idx
		}
		dropped += d
		out = append(out, recs...)
	}
	return out, dropped, nil
}
