package wal

import (
	"testing"

	"repro/internal/expr"
)

func TestCompactDropsFinishedStarts(t *testing.T) {
	recs := []Record{
		{Type: RecCreated, Instance: "i", Process: "P", Values: map[string]expr.Value{"RC": expr.Int(0)}},
		{Type: RecStartedActivity, Instance: "i", Path: "A", Iter: 0}, // finished -> dropped
		{Type: RecFinishedActivity, Instance: "i", Path: "A", Iter: 0, Values: map[string]expr.Value{"RC": expr.Int(0)}},
		{Type: RecStartedActivity, Instance: "i", Path: "B", Iter: 0}, // finished -> dropped
		{Type: RecFinishedActivity, Instance: "i", Path: "B", Iter: 0, Values: map[string]expr.Value{"RC": expr.Int(1)}},
		{Type: RecStartedActivity, Instance: "i", Path: "B", Iter: 1}, // half-executed -> kept
	}
	out := Compact(recs)
	if len(out) != 4 {
		t.Fatalf("compacted to %d records, want 4: %+v", len(out), out)
	}
	if out[0].Type != RecCreated {
		t.Fatal("created record lost")
	}
	var keptHalf bool
	for _, r := range out {
		if r.Type == RecStartedActivity {
			if r.Path != "B" || r.Iter != 1 {
				t.Fatalf("wrong started record survived: %+v", r)
			}
			keptHalf = true
		}
	}
	if !keptHalf {
		t.Fatal("half-executed witness dropped")
	}
	// Input unchanged.
	if len(recs) != 6 {
		t.Fatal("input mutated")
	}
}

func TestCompactEmptyAndNoOp(t *testing.T) {
	if got := Compact(nil); len(got) != 0 {
		t.Fatal("nil input")
	}
	recs := []Record{
		{Type: RecCreated, Instance: "i", Process: "P"},
		{Type: RecStartedActivity, Instance: "i", Path: "A", Iter: 0},
	}
	out := Compact(recs)
	if len(out) != 2 {
		t.Fatalf("nothing should be dropped: %+v", out)
	}
}
