package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is the archive seam: a flat namespace of sealed, immutable blobs
// keyed by file base name ("wal-000001.seg", "ckpt-000002.ckpt"). The
// Archiver copies sealed segments and completed checkpoints into a Store
// and the recovery ladder's archive rung fetches them back. The
// interface is deliberately minimal — put/get/list/delete over whole
// blobs — so an S3-style object store, an embedded KV, or a plain
// directory (DirStore) all fit behind it, and a FaultStore can enumerate
// every operation the archival durability argument depends on.
//
// Contract: blobs are written at most once per name with identical
// content (sealed files never change), so Put may overwrite freely; Get
// must return exactly the bytes of the newest successful Put. A Store
// is allowed to be slow, flaky, or down — every caller treats errors as
// retryable degradation, never as data loss.
type Store interface {
	// Put stores data under name, replacing any existing blob.
	Put(name string, data []byte) error
	// Get returns the blob stored under name, or ErrStoreMiss.
	Get(name string) ([]byte, error)
	// List returns the stored blob names in lexical order.
	List() ([]string, error)
	// Delete removes the named blob; deleting an absent blob is a no-op.
	Delete(name string) error
}

// Typed archive-fault sentinels. FaultStore returns them from scheduled
// operations; DirStore maps a missing blob to ErrStoreMiss. Callers
// distinguish a miss (fall through the recovery ladder) from
// unavailability (retry/back off/trip the breaker).
var (
	// ErrStoreMiss is returned by Get for a name that holds no blob.
	ErrStoreMiss = errors.New("wal: archive blob not found")
	// ErrStoreUnavailable is the injected equivalent of a connection
	// refusal: the backend rejected the operation outright.
	ErrStoreUnavailable = errors.New("wal: archive unavailable")
	// ErrStoreTimeout is an archive operation that exceeded its deadline;
	// whether the backend applied it is unknown (puts are idempotent, so
	// the archiver simply retries).
	ErrStoreTimeout = errors.New("wal: archive operation timed out")
)

// DirStore is a Store over a local directory — the zero-config default
// backend for `wfrun -archive DIR`. Put is atomic (tmp + fsync + rename
// + directory fsync, the same publication discipline as WriteCheckpoint)
// so a crash mid-Put never leaves a visible torn blob.
type DirStore struct {
	dir string
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: archive dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *DirStore) Dir() string { return s.dir }

// Put implements Store with an atomic write-then-rename.
func (s *DirStore) Put(name string, data []byte) error {
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: archive put: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: archive put: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: archive put: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: archive put: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: archive put: %w", err)
	}
	return syncDir(s.dir)
}

// Get implements Store.
func (s *DirStore) Get(name string) ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrStoreMiss, name)
	}
	if err != nil {
		return nil, fmt.Errorf("wal: archive get: %w", err)
	}
	return data, nil
}

// List implements Store, ignoring temporaries left by a crashed Put.
func (s *DirStore) List() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: archive list: %w", err)
	}
	var out []string
	for _, ent := range ents {
		if ent.IsDir() || strings.HasSuffix(ent.Name(), ".tmp") {
			continue
		}
		out = append(out, ent.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (s *DirStore) Delete(name string) error {
	if err := os.Remove(filepath.Join(s.dir, name)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: archive delete: %w", err)
	}
	return nil
}

// StoreFaultKind selects which archive operation a FaultStore corrupts
// and how.
type StoreFaultKind int

// The archive faults a FaultStore can inject.
const (
	// StoreUnavailable fails any operation with ErrStoreUnavailable
	// without touching the inner store — the backend is down.
	StoreUnavailable StoreFaultKind = iota
	// StoreTimeout delays, then fails any operation with ErrStoreTimeout.
	// The inner store is not touched, modeling a request the backend
	// never saw (puts are idempotent, so retrying is always safe).
	StoreTimeout
	// StorePartialWrite makes a Put silently store a truncated blob and
	// report success — the fault CRC verification after upload exists to
	// catch.
	StorePartialWrite
	// StoreCorruptRead makes a Get return the blob with a flipped bit —
	// the fault fetch-time CRC verification exists to catch.
	StoreCorruptRead
)

// String names the fault for reports.
func (k StoreFaultKind) String() string {
	switch k {
	case StoreUnavailable:
		return "unavailable"
	case StoreTimeout:
		return "timeout"
	case StorePartialWrite:
		return "partial-write"
	case StoreCorruptRead:
		return "corrupt-read"
	default:
		return fmt.Sprintf("StoreFaultKind(%d)", int(k))
	}
}

// matches reports whether an operation class can carry this fault:
// unavailability and timeouts hit any operation, partial writes only a
// Put, corrupt reads only a Get.
func (k StoreFaultKind) matches(op storeOp) bool {
	switch k {
	case StorePartialWrite:
		return op == storePut
	case StoreCorruptRead:
		return op == storeGet
	default:
		return true
	}
}

// storeOp classifies a Store operation for fault matching.
type storeOp int

const (
	storePut storeOp = iota
	storeGet
	storeOther
)

// FaultStore wraps a Store and injects one scheduled typed fault — the
// FaultFS idiom lifted to the archive domain. Every Put/Get/List/Delete
// increments a shared operation counter; the first operation at or past
// FailAt whose class matches the fault kind misbehaves. The fault fires
// once by default (the backend recovers — exactly the case where an
// archiver must retry rather than give up); StoreSticky keeps it broken,
// modeling a dead backend. failAt <= 0 injects nothing and turns the
// FaultStore into a pure operation counter, which the E12 sweep uses to
// size its fault schedules.
//
// FaultStore is safe for concurrent use.
type FaultStore struct {
	inner Store

	mu     sync.Mutex
	kind   StoreFaultKind
	failAt int64
	sticky bool
	delay  time.Duration // StoreTimeout stall before the sentinel
	ops    int64
	fired  bool
}

// StoreFaultOption configures a FaultStore.
type StoreFaultOption func(*FaultStore)

// StoreSticky makes every matching operation from the scheduled one
// onward fail — a backend that stays down.
func StoreSticky() StoreFaultOption {
	return func(s *FaultStore) { s.sticky = true }
}

// StoreTimeoutDelay sets how long a StoreTimeout fault stalls before
// returning ErrStoreTimeout (default 10ms — long enough to overlap an
// archiver's per-op deadline in tests, short enough not to slow soaks).
func StoreTimeoutDelay(d time.Duration) StoreFaultOption {
	return func(s *FaultStore) {
		if d > 0 {
			s.delay = d
		}
	}
}

// NewFaultStore returns a FaultStore over inner that fails the first
// kind-matching operation at or past the failAt-th store operation
// (1-based). failAt <= 0 never fails (count-only mode).
func NewFaultStore(inner Store, kind StoreFaultKind, failAt int64, opts ...StoreFaultOption) *FaultStore {
	s := &FaultStore{inner: inner, kind: kind, failAt: failAt, delay: 10 * time.Millisecond}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Ops reports how many store operations have passed through so far.
func (s *FaultStore) Ops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops
}

// Fired reports whether the scheduled fault has been injected.
func (s *FaultStore) Fired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired
}

// step counts one operation and decides whether it is the scheduled
// fault.
func (s *FaultStore) step(op storeOp) (StoreFaultKind, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ops++
	if s.failAt <= 0 || s.ops < s.failAt {
		return 0, false
	}
	if s.fired && !s.sticky {
		return 0, false
	}
	if !s.kind.matches(op) {
		return 0, false
	}
	s.fired = true
	return s.kind, true
}

// Put implements Store.
func (s *FaultStore) Put(name string, data []byte) error {
	if kind, fire := s.step(storePut); fire {
		switch kind {
		case StoreUnavailable:
			return fmt.Errorf("%w: put %s", ErrStoreUnavailable, name)
		case StoreTimeout:
			time.Sleep(s.delay)
			return fmt.Errorf("%w: put %s", ErrStoreTimeout, name)
		case StorePartialWrite:
			// The nasty case: the backend acked a truncated object. Only
			// read-back verification can catch this.
			return s.inner.Put(name, data[:len(data)/2])
		}
	}
	return s.inner.Put(name, data)
}

// Get implements Store.
func (s *FaultStore) Get(name string) ([]byte, error) {
	if kind, fire := s.step(storeGet); fire {
		switch kind {
		case StoreUnavailable:
			return nil, fmt.Errorf("%w: get %s", ErrStoreUnavailable, name)
		case StoreTimeout:
			time.Sleep(s.delay)
			return nil, fmt.Errorf("%w: get %s", ErrStoreTimeout, name)
		case StoreCorruptRead:
			data, err := s.inner.Get(name)
			if err != nil {
				return nil, err
			}
			corrupt := append([]byte(nil), data...)
			if len(corrupt) > 0 {
				corrupt[len(corrupt)/2] ^= 0x40
			}
			return corrupt, nil
		}
	}
	return s.inner.Get(name)
}

// List implements Store.
func (s *FaultStore) List() ([]string, error) {
	if kind, fire := s.step(storeOther); fire {
		switch kind {
		case StoreUnavailable:
			return nil, fmt.Errorf("%w: list", ErrStoreUnavailable)
		case StoreTimeout:
			time.Sleep(s.delay)
			return nil, fmt.Errorf("%w: list", ErrStoreTimeout)
		}
	}
	return s.inner.List()
}

// Delete implements Store.
func (s *FaultStore) Delete(name string) error {
	if kind, fire := s.step(storeOther); fire {
		switch kind {
		case StoreUnavailable:
			return fmt.Errorf("%w: delete %s", ErrStoreUnavailable, name)
		case StoreTimeout:
			time.Sleep(s.delay)
			return fmt.Errorf("%w: delete %s", ErrStoreTimeout, name)
		}
	}
	return s.inner.Delete(name)
}
