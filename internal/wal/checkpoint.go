package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs"
)

// CheckpointVersion is the on-disk checkpoint format version this package
// writes and the only one it accepts. The version travels in the framed
// header line, so an incompatible future format is rejected (and the
// recovery ladder falls back) rather than misread.
const CheckpointVersion = 1

// Checkpoint is a crash-consistent summary of a log prefix: for every
// instance still live at the covered boundary, its compacted records
// (exactly Compact semantics — all finished-activity outputs plus any
// still-pending started witnesses); instances whose RecDone fell inside
// the prefix appear only in Done. Cover is the highest sealed segment
// index folded in; recovery seeds instances from Records and replays only
// segments with index > Cover (the tail). Checkpoints chain: each new one
// is built from its predecessor plus the newly sealed segments, so the
// covered prefix never needs to be re-read from segment files that
// retention has since deleted.
type Checkpoint struct {
	Seq     int      // monotonically increasing checkpoint number
	Cover   int      // highest sealed segment index summarized
	Done    []string // instances that finished within the covered prefix
	Records []Record // compacted records of the live instances
}

// CheckpointInfo identifies one on-disk checkpoint file.
type CheckpointInfo struct {
	Seq  int
	Path string
}

// ckptHeader is the framed first line of a checkpoint file.
type ckptHeader struct {
	V     int      `json:"v"`
	Seq   int      `json:"seq"`
	Cover int      `json:"cover"`
	Done  []string `json:"done,omitempty"`
	N     int      `json:"n"` // record lines that must follow
}

// ckptPath names checkpoint files so lexical order equals sequence order.
func ckptPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-%06d.ckpt", seq))
}

// BuildCheckpoint folds newly sealed records into a predecessor
// checkpoint (nil for the first). The result covers segment indexes up to
// cover: per instance, records are concatenated with the predecessor's in
// causal order, instances with a RecDone are moved to Done, and the rest
// are reduced with Compact — the same compaction recovery-equivalence
// contract, so Recover over checkpoint records reconstructs exactly the
// state a full replay would (asserted by the engine's property tests).
func BuildCheckpoint(prev *Checkpoint, sealedRecords []Record, cover int) *Checkpoint {
	seq := 1
	done := make(map[string]bool)
	var all []Record
	if prev != nil {
		seq = prev.Seq + 1
		for _, id := range prev.Done {
			done[id] = true
		}
		all = append(all, prev.Records...)
	}
	all = append(all, sealedRecords...)

	byInst := make(map[string][]Record)
	var order []string
	for _, r := range all {
		if _, seen := byInst[r.Instance]; !seen {
			order = append(order, r.Instance)
		}
		byInst[r.Instance] = append(byInst[r.Instance], r)
	}
	var out []Record
	for _, id := range order {
		recs := byInst[id]
		finished := false
		for _, r := range recs {
			if r.Type == RecDone {
				finished = true
				break
			}
		}
		if finished {
			done[id] = true
			continue
		}
		out = append(out, Compact(recs)...)
	}
	ids := make([]string, 0, len(done))
	for id := range done {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return &Checkpoint{Seq: seq, Cover: cover, Done: ids, Records: out}
}

// WriteCheckpoint writes cp to dir atomically: the CRC-framed bytes go to
// a temporary file that is fsynced, renamed to its final ckpt-NNNNNN.ckpt
// name, and made durable with a directory fsync. A crash mid-write leaves
// only a *.tmp file, which readers ignore — a visible checkpoint is
// always complete (bit rot and torn renames are still caught by the CRC
// frames and record count at read time, and the recovery ladder falls
// back). Returns the final path.
func WriteCheckpoint(dir string, cp *Checkpoint) (string, error) {
	return WriteCheckpointFS(OSFS{}, dir, cp)
}

// WriteCheckpointFS is WriteCheckpoint over an explicit filesystem —
// the seam fault tests use to fail a checkpoint's write, fsync, or
// publication rename with a FaultFS. A failed checkpoint write leaves at
// most a *.tmp file and never a visible damaged checkpoint.
func WriteCheckpointFS(fsys FS, dir string, cp *Checkpoint) (string, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return "", fmt.Errorf("wal: %w", err)
	}
	var buf bytes.Buffer
	hdr, err := json.Marshal(ckptHeader{
		V: CheckpointVersion, Seq: cp.Seq, Cover: cp.Cover,
		Done: cp.Done, N: len(cp.Records),
	})
	if err != nil {
		return "", fmt.Errorf("wal: %w", err)
	}
	buf.Write(frameLine(hdr))
	buf.WriteByte('\n')
	for _, rec := range cp.Records {
		b, err := Marshal(rec)
		if err != nil {
			return "", err
		}
		buf.Write(frameLine(b))
		buf.WriteByte('\n')
	}

	path := ckptPath(dir, cp.Seq)
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return "", fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("wal: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	obs.Default.Counter("wal.checkpoint.writes").Inc()
	obs.Default.Counter("wal.checkpoint.bytes").Add(int64(buf.Len()))
	dur := time.Since(start).Nanoseconds()
	obs.Default.Histogram("wal.checkpoint.duration_ns").Observe(dur)
	if obs.DefaultBus.Active() {
		obs.DefaultBus.Publish(obs.Event{Kind: obs.EvWalCheckpoint, N: int64(cp.Seq), DurNs: dur})
	}
	return path, nil
}

// ReadCheckpoint strictly reads one checkpoint file: the framed header
// must verify, declare a supported version, and be followed by exactly
// the declared number of CRC-clean record lines. Anything else — torn
// tail, checksum mismatch, missing or surplus records — is an error;
// callers fall down the recovery ladder (LoadCheckpoint) instead of
// trusting a damaged summary.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return ParseCheckpoint(data, filepath.Base(path))
}

// ParseCheckpoint strictly decodes checkpoint bytes (see ReadCheckpoint)
// — the shared core for local files and archive-fetched blobs, so a
// blob corrupted in the archive is CRC-rejected exactly like a damaged
// local file. name labels errors.
func ParseCheckpoint(data []byte, name string) (*Checkpoint, error) {
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends with a newline, so the final split element is
	// empty; any other empty line is malformed enough to reject implicitly
	// via the count check.
	var body [][]byte
	for _, ln := range lines {
		if len(ln) > 0 {
			body = append(body, ln)
		}
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("wal: checkpoint %s: empty file", name)
	}
	hl := body[0]
	if len(hl) < 10 || hl[8] != ' ' {
		return nil, fmt.Errorf("wal: checkpoint %s: malformed header frame", name)
	}
	if _, err := parseFrame(hl); err != nil {
		return nil, fmt.Errorf("wal: checkpoint %s: %w", name, err)
	}
	var hdr ckptHeader
	if err := json.Unmarshal(hl[9:], &hdr); err != nil {
		return nil, fmt.Errorf("wal: checkpoint %s: %w", name, err)
	}
	if hdr.V != CheckpointVersion {
		return nil, fmt.Errorf("wal: checkpoint %s: unsupported version %d", name, hdr.V)
	}
	if len(body)-1 != hdr.N {
		return nil, fmt.Errorf("wal: checkpoint %s: header declares %d records, found %d", name, hdr.N, len(body)-1)
	}
	cp := &Checkpoint{Seq: hdr.Seq, Cover: hdr.Cover, Done: hdr.Done}
	for i, ln := range body[1:] {
		rec, err := parseLine(ln)
		if err != nil {
			return nil, fmt.Errorf("wal: checkpoint %s: record %d: %w", name, i+1, err)
		}
		cp.Records = append(cp.Records, rec)
	}
	return cp, nil
}

// parseFrame verifies a framed line's checksum and returns its body.
func parseFrame(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("wal: malformed frame")
	}
	body := line[9:]
	want, err := decodeCRC(line[:8])
	if err != nil {
		return nil, err
	}
	if got := crc32Checksum(body); got != want {
		return nil, fmt.Errorf("wal: frame checksum mismatch")
	}
	return body, nil
}

// ListCheckpoints lists the checkpoint files present in dir in sequence
// order, ignoring temporaries left by a crash mid-WriteCheckpoint.
func ListCheckpoints(dir string) ([]CheckpointInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []CheckpointInfo
	for _, ent := range ents {
		var seq int
		if n, err := fmt.Sscanf(ent.Name(), "ckpt-%06d.ckpt", &seq); n != 1 || err != nil {
			continue
		}
		if filepath.Ext(ent.Name()) != ".ckpt" {
			continue
		}
		out = append(out, CheckpointInfo{Seq: seq, Path: filepath.Join(dir, ent.Name())})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// The recovery-ladder rungs LoadCheckpointStore reports — which source
// satisfied checkpoint recovery. wfrun -resume surfaces the rung in its
// summary line.
const (
	// SourceNewestCheckpoint: the newest local checkpoint read back clean.
	SourceNewestCheckpoint = "newest-checkpoint"
	// SourcePreviousCheckpoint: the newest was damaged; an older local
	// checkpoint was used.
	SourcePreviousCheckpoint = "previous-checkpoint"
	// SourceArchiveCheckpoint: no local checkpoint was usable; one was
	// fetched from the archive store and CRC-verified.
	SourceArchiveCheckpoint = "archive-checkpoint"
	// SourceFullReplay: no usable checkpoint anywhere; recover by full
	// replay of the segments.
	SourceFullReplay = "full-replay"
)

// LoadCheckpoint walks the recovery fallback ladder: it tries the newest
// checkpoint in dir, then each older one, returning the first that reads
// back clean. Every damaged checkpoint skipped increments the
// recover.checkpoint_fallbacks counter. (nil, nil) means no usable
// checkpoint — recover by full replay.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	cp, _, err := LoadCheckpointStore(dir, nil)
	return cp, err
}

// LoadCheckpointStore is LoadCheckpoint with the archive rung: when no
// local checkpoint is usable and store is non-nil, the archived
// checkpoints are tried newest-first — each fetched blob must decode
// CRC-clean (ParseCheckpoint) or it is skipped exactly like a damaged
// local file, counted in recover.checkpoint_fallbacks. An unavailable
// archive or an archive miss falls through to (nil, SourceFullReplay,
// nil): the archive tier can delay recovery's best rung, never block
// recovery. The returned source names the rung that satisfied the load.
func LoadCheckpointStore(dir string, store Store) (*Checkpoint, string, error) {
	infos, err := ListCheckpoints(dir)
	if err != nil {
		return nil, "", err
	}
	fallback := func(seq int, cause error) {
		obs.Default.Counter("recover.checkpoint_fallbacks").Inc()
		if obs.DefaultBus.Active() {
			obs.DefaultBus.Publish(obs.Event{Kind: obs.EvWalCheckpointFallback,
				N: int64(seq), Cause: cause.Error()})
		}
	}
	for i := len(infos) - 1; i >= 0; i-- {
		cp, err := ReadCheckpoint(infos[i].Path)
		if err == nil {
			src := SourceNewestCheckpoint
			if i < len(infos)-1 {
				src = SourcePreviousCheckpoint
			}
			return cp, src, nil
		}
		fallback(infos[i].Seq, err)
	}
	if store != nil {
		names, err := store.List()
		if err != nil {
			// A down archive is degradation, not failure: full replay still
			// recovers everything local retention holds.
			names = nil
		}
		type blob struct {
			seq  int
			name string
		}
		var blobs []blob
		for _, name := range names {
			var seq int
			if n, err := fmt.Sscanf(name, "ckpt-%06d.ckpt", &seq); n == 1 && err == nil && filepath.Ext(name) == ".ckpt" {
				blobs = append(blobs, blob{seq: seq, name: name})
			}
		}
		sort.Slice(blobs, func(i, j int) bool { return blobs[i].seq > blobs[j].seq })
		for _, b := range blobs {
			data, err := store.Get(b.name)
			if err != nil {
				fallback(b.seq, err)
				continue
			}
			cp, err := ParseCheckpoint(data, b.name)
			if err != nil {
				fallback(b.seq, err)
				continue
			}
			obs.Default.Counter("recover.archive_fetches").Inc()
			if obs.DefaultBus.Active() {
				obs.DefaultBus.Publish(obs.Event{Kind: obs.EvArchiveFetch,
					Cause: b.name, N: int64(len(data))})
			}
			return cp, SourceArchiveCheckpoint, nil
		}
	}
	return nil, SourceFullReplay, nil
}

// PruneCheckpoints deletes all but the newest keep checkpoint files in
// dir (retention keeps two: the newest plus its predecessor as the
// fallback rung). It returns the surviving checkpoints in sequence order.
func PruneCheckpoints(dir string, keep int) ([]CheckpointInfo, error) {
	return PruneCheckpointsEligible(dir, keep, nil)
}

// PruneCheckpointsEligible is PruneCheckpoints gated by an eligibility
// predicate: a checkpoint outside the newest keep is deleted only when
// eligible (keyed by file base name) returns true — the archive gate,
// where eligibility means "archived copy CRC-verified". Ineligible
// checkpoints survive (retention grows while the archive is degraded)
// and are re-offered on the next pass. A nil predicate admits
// everything. Survivors are returned in sequence order.
func PruneCheckpointsEligible(dir string, keep int, eligible func(name string) bool) ([]CheckpointInfo, error) {
	infos, err := ListCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	if keep < 1 {
		keep = 1
	}
	if len(infos) <= keep {
		return infos, nil
	}
	survivors := append([]CheckpointInfo(nil), infos[len(infos)-keep:]...)
	removed := false
	for _, ci := range infos[:len(infos)-keep] {
		if eligible != nil && !eligible(filepath.Base(ci.Path)) {
			survivors = append(survivors, ci)
			continue
		}
		if err := os.Remove(ci.Path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("wal: %w", err)
		}
		removed = true
	}
	if removed {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].Seq < survivors[j].Seq })
	return survivors, nil
}
