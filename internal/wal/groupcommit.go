package wal

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// ErrLogClosed is returned by Append on a log that has been closed.
var ErrLogClosed = errors.New("wal: log closed")

// GroupCommitLog batches appends from many concurrent instances into a
// single framed write + one fsync per flush. Append blocks until the
// batch containing its record is on stable storage, so the per-append
// durability contract is exactly FileLog-with-WithFsync — a nil return
// means the record survives any crash — while the fsync cost is shared
// by every record in the batch.
//
// Batching is leader-based with commit pipelining: the first appender
// into an open batch becomes its leader; while the previous batch's
// fsync is in flight the open batch keeps accumulating followers, so
// under load the batch size self-tunes to the fsync latency without any
// timer. GroupWindow adds an optional fixed accumulation window on top
// (useful when appenders are few and bursty); GroupMaxBatch bounds the
// batch size and cuts the window short when reached.
//
// The on-disk format is unchanged — batches carry exactly the frames the
// inner log would have written itself, in the inner log's format (text
// lines or binary frames) — so ReadFileTolerant / RepairFile recover a
// group-committed log exactly as a per-record one: a crash mid-flush
// tears at most the final record, and only records of the torn batch
// (none of which were acknowledged) can be lost. GroupCrashAfter injects
// such crashes at batch boundaries for the E8 soak.
//
// GroupCommitLog is safe for concurrent use.
type GroupCommitLog struct {
	inner    batchLog
	format   Format
	window   time.Duration
	maxBatch int

	crashAfter int
	shortWrite bool

	mu        sync.Mutex // guards cur, closed, crashed, failed, committed, lastBatch
	cur       *gcBatch
	closed    bool
	crashed   bool
	failed    error // first batch storage error; non-nil seals the log
	committed int   // records durably committed (crash-injection bookkeeping)
	lastBatch int   // size of the last committed batch (herd estimate)

	commitMu sync.Mutex // held while a batch's write+fsync is in flight

	batches      *obs.Counter   // wal.group.batches
	records      *obs.Counter   // wal.group.records
	batchRecords *obs.Histogram // wal.group.batch_records (size buckets)
	flushNs      *obs.Histogram // wal.group.flush_ns
}

// gcBatch is one open or in-flight batch. buf holds the framed bytes of
// every record admitted so far — taken from batchBufPool and returned
// after the flush, so steady-state batching reuses a small set of grown
// buffers instead of reallocating per batch; done is closed (after err
// is set) once the batch is durable or has failed.
type gcBatch struct {
	buf      []byte
	pooled   *[]byte // pool token holding buf's backing array
	count    int
	full     chan struct{} // closed when count reaches maxBatch
	fullOnce sync.Once
	done     chan struct{}
	err      error
}

// framePool recycles per-append record encode buffers (GroupCommitLog
// frames records outside its batch lock so encoding never serializes
// appenders); batchBufPool recycles whole batch buffers.
var (
	framePool    = sync.Pool{New: func() any { return new([]byte) }}
	batchBufPool = sync.Pool{New: func() any { return new([]byte) }}
)

// GroupOption configures a GroupCommitLog.
type GroupOption func(*GroupCommitLog)

// GroupWindow makes each batch leader wait d for followers before
// committing. The default (0) relies on commit pipelining alone, which
// adds no latency when appenders are scarce; a nonzero window trades
// latency for larger batches.
func GroupWindow(d time.Duration) GroupOption {
	return func(l *GroupCommitLog) { l.window = d }
}

// GroupMaxBatch caps the records per batch (default 64). A full batch
// stops waiting for its window and commits immediately.
func GroupMaxBatch(n int) GroupOption {
	return func(l *GroupCommitLog) {
		if n > 0 {
			l.maxBatch = n
		}
	}
}

// GroupWithMetricsRegistry points the log's instrumentation at reg
// instead of obs.Default.
func GroupWithMetricsRegistry(reg *obs.Registry) GroupOption {
	return func(l *GroupCommitLog) { l.bindMetrics(reg) }
}

// GroupCrashAfter injects a crash at the batch boundary where the
// cumulative record count would exceed crashAfter: the first crashAfter
// records may be durably committed, and the batch that would push past
// the limit fails with ErrCrash before any of it is synced (so none of
// its appends are acknowledged), as does every later Append. With
// shortWrite the crashing batch first leaves a torn prefix of its framed
// data in the file — complete lines plus a cut-off one — which tolerant
// recovery must discard or keep line-by-line. crashAfter <= 0 never
// crashes.
func GroupCrashAfter(crashAfter int, shortWrite bool) GroupOption {
	return func(l *GroupCommitLog) {
		l.crashAfter = crashAfter
		l.shortWrite = shortWrite
	}
}

// batchLog is what group commit needs from its backing log: a durable
// batched write, raw-byte injection for fault tests, fsync takeover, the
// record framing to batch in, and Close. FileLog and SegmentedLog both
// satisfy it.
type batchLog interface {
	writeBatch(data []byte, records int) error
	writeRaw(b []byte) error
	setFsync(on bool)
	recFormat() Format
	Close() error
}

// NewGroupCommitLog wraps inner, taking over its durability: inner's
// per-append fsync is disabled and every flush is synced at batch
// granularity instead. The caller must stop using inner directly and
// close the GroupCommitLog (not inner) when done.
func NewGroupCommitLog(inner *FileLog, opts ...GroupOption) *GroupCommitLog {
	return newGroupCommit(inner, opts)
}

// NewGroupCommitSegmented is NewGroupCommitLog over a SegmentedLog:
// batches amortize fsync exactly as with a FileLog, and the segmented
// inner log rotates only between batches, so a batch never spans segment
// files and a crash mid-flush still tears at most the active segment's
// tail.
func NewGroupCommitSegmented(inner *SegmentedLog, opts ...GroupOption) *GroupCommitLog {
	return newGroupCommit(inner, opts)
}

func newGroupCommit(inner batchLog, opts []GroupOption) *GroupCommitLog {
	inner.setFsync(false)
	l := &GroupCommitLog{inner: inner, format: inner.recFormat(), maxBatch: 64}
	l.bindMetrics(obs.Default)
	for _, o := range opts {
		o(l)
	}
	return l
}

func (l *GroupCommitLog) bindMetrics(reg *obs.Registry) {
	l.batches = reg.Counter("wal.group.batches")
	l.records = reg.Counter("wal.group.records")
	l.batchRecords = reg.SizeHistogram("wal.group.batch_records")
	l.flushNs = reg.Histogram("wal.group.flush_ns")
}

// Append implements Log. It returns only after the batch containing rec
// has been written and fsynced (nil), or has failed as a unit (the
// batch's error, ErrCrash under injection, ErrLogClosed after Close,
// ErrLogFailed once a previous batch's write or fsync failed and sealed
// the log).
func (l *GroupCommitLog) Append(rec Record) error {
	// Encode outside the batch lock into a pooled scratch buffer so
	// framing cost never serializes concurrent appenders.
	bp := framePool.Get().(*[]byte)
	enc, err := EncodeRecord((*bp)[:0], rec, l.format)
	if err != nil {
		framePool.Put(bp)
		return err
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		*bp = enc[:0]
		framePool.Put(bp)
		return ErrLogClosed
	}
	if l.crashed {
		l.mu.Unlock()
		*bp = enc[:0]
		framePool.Put(bp)
		return ErrCrash
	}
	if l.failed != nil {
		err := fmt.Errorf("%w: %v", ErrLogFailed, l.failed)
		l.mu.Unlock()
		*bp = enc[:0]
		framePool.Put(bp)
		return err
	}
	leader := l.cur == nil
	if leader {
		pooled := batchBufPool.Get().(*[]byte)
		l.cur = &gcBatch{buf: (*pooled)[:0], pooled: pooled,
			full: make(chan struct{}), done: make(chan struct{})}
	}
	batch := l.cur
	batch.buf = append(batch.buf, enc...)
	batch.count++
	if batch.count >= l.maxBatch {
		batch.fullOnce.Do(func() { close(batch.full) })
	}
	l.mu.Unlock()
	*bp = enc[:0]
	framePool.Put(bp)

	if !leader {
		<-batch.done
		return batch.err
	}
	l.commit(batch)
	return batch.err
}

// herdWait bounds how long a leader waits for the appenders woken by the
// previous commit to rejoin (see commit). It must stay well under a disk
// sync (~100µs+) so the wait is always amortized by the fsync it saves.
const herdWait = 100 * time.Microsecond

// commit runs on the batch's leader. The batch stays open — followers
// keep piling in — until the previous batch's fsync releases commitMu
// (plus the optional window); only then is it detached and flushed.
func (l *GroupCommitLog) commit(batch *gcBatch) {
	if l.window > 0 {
		t := time.NewTimer(l.window)
		select {
		case <-t.C:
		case <-batch.full:
			t.Stop()
		}
	}
	l.commitMu.Lock()

	// Collect the herd: the previous batch's waiters wake only after it
	// releases commitMu, so without this they would always miss the batch
	// now being committed and batch sizes would never grow past the
	// handful of appenders that happened to arrive mid-sync. Wait — by
	// yielding, bounded well under one disk sync — until as many records
	// as the last batch carried have rejoined. A lone sequential appender
	// (lastBatch <= 1) skips the wait entirely.
	l.mu.Lock()
	want := l.lastBatch
	l.mu.Unlock()
	if want > 1 {
		deadline := time.Now().Add(herdWait)
		for {
			l.mu.Lock()
			n := batch.count
			l.mu.Unlock()
			if n >= want || n >= l.maxBatch || !time.Now().Before(deadline) {
				break
			}
			runtime.Gosched()
		}
	}

	l.mu.Lock()
	l.cur = nil // later appends start a new batch behind this commit
	l.lastBatch = batch.count
	crash := l.crashed
	if !crash && l.crashAfter > 0 && l.committed+batch.count > l.crashAfter {
		l.crashed = true
		crash = true
	}
	if !crash {
		l.committed += batch.count
	}
	l.mu.Unlock()

	if crash {
		if l.shortWrite {
			data := batch.buf
			n := len(data)/2 + 10
			if n >= len(data) {
				n = len(data) - 1
			}
			l.inner.writeRaw(data[:n])
		}
		batch.err = ErrCrash
	} else {
		start := time.Now()
		batch.err = l.inner.writeBatch(batch.buf, batch.count)
		if batch.err != nil {
			// A batch whose write or fsync failed must fail every append it
			// carries — and seal the log: a later batch could sync fine while
			// this batch's bytes were dropped from the page cache, which
			// would ack records across a hole (acked-append loss on
			// recovery). See ErrLogFailed.
			l.mu.Lock()
			if l.failed == nil {
				l.failed = batch.err
			}
			l.mu.Unlock()
		}
		if batch.err == nil {
			dur := time.Since(start).Nanoseconds()
			l.flushNs.Observe(dur)
			l.batches.Inc()
			l.records.Add(int64(batch.count))
			l.batchRecords.Observe(int64(batch.count))
			if obs.DefaultBus.Active() {
				obs.DefaultBus.Publish(obs.Event{Kind: obs.EvWalFlush, N: int64(batch.count), DurNs: dur})
			}
		}
	}
	l.commitMu.Unlock()
	// The batch's bytes are on disk (or abandoned); recycle the buffer
	// before waking the followers, which only read batch.err.
	pooled := batch.pooled
	*pooled = batch.buf[:0]
	batch.buf, batch.pooled = nil, nil
	batchBufPool.Put(pooled)
	close(batch.done)
}

// Close drains the pending batch (hastening any window wait), then
// flushes, syncs and closes the underlying file. Appends issued after
// Close return ErrLogClosed. Close is idempotent.
func (l *GroupCommitLog) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	cur := l.cur
	l.mu.Unlock()
	if cur != nil {
		cur.fullOnce.Do(func() { close(cur.full) })
		<-cur.done
	}
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	return l.inner.Close()
}

// writeBatch appends pre-framed, newline-terminated lines in one write
// and makes them durable with a single flush+Sync, counting records
// appends and bytes as if each line had been appended individually.
// GroupCommitLog uses it to amortize fsync across a batch.
func (l *FileLog) writeBatch(data []byte, records int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.sealedErrLocked()
	}
	if _, err := l.w.Write(data); err != nil {
		return l.sealLocked(fmt.Errorf("wal: %w", err))
	}
	start := time.Now()
	if err := l.w.Flush(); err != nil {
		return l.sealLocked(fmt.Errorf("wal: %w", err))
	}
	if err := l.f.Sync(); err != nil {
		// The batch reached the file but its fsync failed: the kernel may
		// have dropped the dirty pages, so none of the batch's records may
		// be acknowledged — and no later batch either (fsync-gate).
		return l.sealLocked(fmt.Errorf("wal: %w", err))
	}
	l.fsyncNs.ObserveSince(start)
	l.appends.Add(int64(records))
	l.bytes.Add(int64(len(data)))
	return nil
}
