package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/expr"
)

// Format selects the on-disk record framing of a FileLog or SegmentedLog.
//
// FormatText is the historical framing: one "crc8hex json\n" line per
// record and no file header, so every log written before formats existed
// replays verbatim. FormatBinary writes an 8-byte file header (magic +
// format byte) followed by length-prefixed binary frames. Readers sniff
// the header: a file that starts with the magic is decoded per its format
// byte, anything else is text. The format is a property of a file, fixed
// at creation; a segment directory may mix per-file formats (a process
// upgraded mid-history), and recovery reads each segment by its own
// header.
type Format byte

// The supported on-disk record framings.
const (
	// FormatText frames records as "crc8hex json\n" lines (the default;
	// byte value 0 so the zero value of Format is the legacy framing).
	FormatText Format = 0
	// FormatBinary frames records as length-prefixed CRC-32C binary
	// frames behind a magic file header.
	FormatBinary Format = 1
)

// String names the format for tables and error messages.
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("Format(%d)", byte(f))
	}
}

// binaryMagic is the first 7 bytes of a headered log file. The leading
// 0xF5 byte can never begin a text log (those start with a hex digit, a
// '{' legacy line, or whitespace), so sniffing is unambiguous.
var binaryMagic = [7]byte{0xF5, 'W', 'A', 'L', 'H', 'D', 'R'}

// fileHeaderLen is the size of the magic-plus-format-byte file header.
const fileHeaderLen = 8

// FileHeader returns the 8-byte header written at the start of a log file
// whose records use format f: the magic followed by the format byte.
// FormatText logs normally carry no header (for legacy compatibility), but
// a headered text file is also accepted by the readers.
func FileHeader(f Format) []byte {
	h := make([]byte, 0, fileHeaderLen)
	h = append(h, binaryMagic[:]...)
	return append(h, byte(f))
}

// maxFrameBody bounds a binary frame's declared body length (64 MiB). A
// larger declared length is treated as frame corruption rather than an
// allocation request.
const maxFrameBody = 64 << 20

// binFrameHdr is the per-frame overhead: u32 little-endian body length
// followed by u32 little-endian CRC-32C of the body.
const binFrameHdr = 8

// Record type codes of the binary body. Unknown (test-only) types travel
// as binTypeOther followed by a length-prefixed string.
const (
	binTypeCreated  = 1
	binTypeActivity = 2
	binTypeStarted  = 3
	binTypeDone     = 4
	binTypeOther    = 0xFF
)

// Value kind codes of the binary body.
const (
	binKindInt    = 'I'
	binKindFloat  = 'F'
	binKindString = 'S'
	binKindBool   = 'B'
)

// appendUstr appends a uvarint length prefix and the string bytes.
func appendUstr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBinaryBody appends the frame body for rec: type code, the three
// length-prefixed identity strings, the zigzag-varint iteration, and the
// value map. The encodable value domain is exactly the text format's
// (Null and non-finite floats are rejected), so a record marshals in one
// format iff it marshals in the other.
func appendBinaryBody(dst []byte, rec Record) ([]byte, error) {
	switch rec.Type {
	case RecCreated:
		dst = append(dst, binTypeCreated)
	case RecFinishedActivity:
		dst = append(dst, binTypeActivity)
	case RecStartedActivity:
		dst = append(dst, binTypeStarted)
	case RecDone:
		dst = append(dst, binTypeDone)
	default:
		dst = append(dst, binTypeOther)
		dst = appendUstr(dst, string(rec.Type))
	}
	dst = appendUstr(dst, rec.Instance)
	dst = appendUstr(dst, rec.Process)
	dst = appendUstr(dst, rec.Path)
	dst = binary.AppendVarint(dst, int64(rec.Iter))
	dst = binary.AppendUvarint(dst, uint64(len(rec.Values)))
	for k, v := range rec.Values {
		dst = appendUstr(dst, k)
		switch v.Kind() {
		case expr.KindInt:
			dst = append(dst, binKindInt)
			dst = binary.AppendVarint(dst, v.AsInt())
		case expr.KindFloat:
			f := v.AsFloat()
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return dst, fmt.Errorf("wal: member %q: cannot encode non-finite FLOAT value", k)
			}
			dst = append(dst, binKindFloat)
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
		case expr.KindString:
			dst = append(dst, binKindString)
			dst = appendUstr(dst, v.AsString())
		case expr.KindBool:
			dst = append(dst, binKindBool)
			if v.AsBool() {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		default:
			return dst, fmt.Errorf("wal: member %q: cannot encode %s value", k, v.Kind())
		}
	}
	return dst, nil
}

// AppendRecordBinary appends one complete binary frame (length prefix,
// CRC-32C, body) for rec to dst and returns the extended slice. It
// allocates nothing when dst has spare capacity — the zero-allocation
// hot path FileLog and GroupCommitLog batch buffers rely on. On error
// dst is returned truncated to its original length.
func AppendRecordBinary(dst []byte, rec Record) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	bodyStart := len(dst)
	dst, err := appendBinaryBody(dst, rec)
	if err != nil {
		return dst[:start], err
	}
	body := dst[bodyStart:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, crcTable))
	return dst, nil
}

// MarshalBinary encodes rec as one binary frame body (without the length
// and CRC prefix) — the binary analogue of Marshal.
func MarshalBinary(rec Record) ([]byte, error) {
	return appendBinaryBody(nil, rec)
}

// binReader is a cursor over a frame body with sticky out-of-bounds
// detection, so decode error handling lives in one place.
type binReader struct {
	b   []byte
	off int
	bad bool
}

func (r *binReader) byteVal() byte {
	if r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint() int64 {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.bad || uint64(r.off)+n > uint64(len(r.b)) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *binReader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// UnmarshalBinary decodes one binary frame body into a record — the
// inverse of MarshalBinary. The accepted domain matches the text decoder:
// a record UnmarshalBinary accepts always re-marshals in both formats.
func UnmarshalBinary(b []byte) (Record, error) {
	r := &binReader{b: b}
	var rec Record
	switch tc := r.byteVal(); tc {
	case binTypeCreated:
		rec.Type = RecCreated
	case binTypeActivity:
		rec.Type = RecFinishedActivity
	case binTypeStarted:
		rec.Type = RecStartedActivity
	case binTypeDone:
		rec.Type = RecDone
	case binTypeOther:
		rec.Type = RecordType(r.str())
	default:
		return Record{}, fmt.Errorf("wal: unknown record type code %d", tc)
	}
	rec.Instance = r.str()
	rec.Process = r.str()
	rec.Path = r.str()
	rec.Iter = int(r.varint())
	nvals := r.uvarint()
	if r.bad {
		return Record{}, fmt.Errorf("wal: truncated binary record body")
	}
	if nvals > uint64(len(b)) {
		// Each value needs at least 2 body bytes; a larger count is
		// corruption, not an allocation request.
		return Record{}, fmt.Errorf("wal: implausible value count %d", nvals)
	}
	if nvals > 0 {
		rec.Values = make(map[string]expr.Value, nvals)
		for i := uint64(0); i < nvals; i++ {
			k := r.str()
			switch kind := r.byteVal(); kind {
			case binKindInt:
				rec.Values[k] = expr.Int(r.varint())
			case binKindFloat:
				f := math.Float64frombits(r.u64())
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return Record{}, fmt.Errorf("wal: member %q: non-finite FLOAT value", k)
				}
				rec.Values[k] = expr.Float(f)
			case binKindString:
				rec.Values[k] = expr.String_(r.str())
			case binKindBool:
				rec.Values[k] = expr.Bool(r.byteVal() != 0)
			default:
				if r.bad {
					return Record{}, fmt.Errorf("wal: truncated binary record body")
				}
				return Record{}, fmt.Errorf("wal: member %q: unknown value kind %q", k, kind)
			}
		}
	}
	if r.bad {
		return Record{}, fmt.Errorf("wal: truncated binary record body")
	}
	if r.off != len(b) {
		return Record{}, fmt.Errorf("wal: %d trailing bytes after binary record body", len(b)-r.off)
	}
	return rec, nil
}

// EncodeRecord appends rec to dst in format f — one full text line
// including its trailing newline, or one binary frame — and returns the
// extended slice. This is the single encode seam every log backend
// writes through; the binary path allocates nothing when dst has spare
// capacity.
func EncodeRecord(dst []byte, rec Record, f Format) ([]byte, error) {
	if f == FormatBinary {
		return AppendRecordBinary(dst, rec)
	}
	b, err := Marshal(rec)
	if err != nil {
		return dst, err
	}
	dst = appendTextFrame(dst, b)
	return append(dst, '\n'), nil
}

// scanBinary walks binary frames starting at off (just past the file
// header). Tolerant mode mirrors the text scanner's crash semantics: an
// incomplete frame at EOF, or a final frame whose CRC or body fails, is a
// torn tail and is dropped; a complete bad frame followed by further
// bytes is mid-log corruption and an error. A corrupted length field
// makes resynchronization impossible, so everything from the bad frame on
// is dropped as a tail — strict mode errors in every one of these cases,
// so a strictly readable log always reads tolerantly with nothing
// dropped.
func scanBinary(data []byte, off int, strict bool) (recs []Record, validLen, droppedBytes int, err error) {
	validLen = off
	frame := 0
	for off < len(data) {
		frame++
		rem := data[off:]
		if len(rem) < binFrameHdr {
			if strict {
				return nil, 0, 0, fmt.Errorf("wal: frame %d: truncated frame header", frame)
			}
			return recs, validLen, len(data) - validLen, nil
		}
		bodyLen := binary.LittleEndian.Uint32(rem)
		if bodyLen > maxFrameBody {
			if strict {
				return nil, 0, 0, fmt.Errorf("wal: frame %d: implausible body length %d", frame, bodyLen)
			}
			return recs, validLen, len(data) - validLen, nil
		}
		end := binFrameHdr + int(bodyLen)
		if len(rem) < end {
			if strict {
				return nil, 0, 0, fmt.Errorf("wal: frame %d: truncated body (%d of %d bytes)", frame, len(rem)-binFrameHdr, bodyLen)
			}
			return recs, validLen, len(data) - validLen, nil
		}
		body := rem[binFrameHdr:end]
		final := off+end == len(data)
		if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(rem[4:]); got != want {
			perr := fmt.Errorf("wal: frame %d: checksum mismatch (want %08x, got %08x)", frame, want, got)
			if strict {
				return nil, 0, 0, perr
			}
			if !final {
				return nil, 0, 0, fmt.Errorf("%w (followed by further frames — mid-log corruption)", perr)
			}
			return recs, validLen, len(data) - validLen, nil
		}
		rec, perr := UnmarshalBinary(body)
		if perr != nil {
			if strict {
				return nil, 0, 0, fmt.Errorf("wal: frame %d: %w", frame, perr)
			}
			if !final {
				return nil, 0, 0, fmt.Errorf("wal: frame %d: %w (followed by further frames — mid-log corruption)", frame, perr)
			}
			return recs, validLen, len(data) - validLen, nil
		}
		recs = append(recs, rec)
		off += end
		validLen = off
	}
	return recs, validLen, 0, nil
}

// scanLog sniffs the file header and walks the whole log in the format it
// declares (no header means text). It is the single scanning core behind
// the strict and tolerant readers — both walk the identical byte
// semantics with strictness as the only difference, so the two can never
// diverge on the same input (the PR 6 CRLF parity-bug class, fixed here
// by construction; the old strict reader also capped lines at 16 MiB
// while the tolerant one did not, so a repaired log could still fail a
// strict read-back).
func scanLog(data []byte, strict bool) (recs []Record, validLen, droppedBytes int, err error) {
	if len(data) == 0 {
		return nil, 0, 0, nil
	}
	if data[0] != binaryMagic[0] {
		return scanText(data, strict)
	}
	if len(data) < fileHeaderLen {
		if bytes.Equal(data, binaryMagic[:len(data)]) {
			// A crash can tear the header itself; the file holds no
			// records yet.
			if strict {
				return nil, 0, 0, fmt.Errorf("wal: truncated file header")
			}
			return nil, 0, len(data), nil
		}
		return nil, 0, 0, fmt.Errorf("wal: bad file magic")
	}
	if !bytes.Equal(data[:len(binaryMagic)], binaryMagic[:]) {
		return nil, 0, 0, fmt.Errorf("wal: bad file magic")
	}
	switch Format(data[fileHeaderLen-1]) {
	case FormatText:
		recs, validLen, droppedBytes, err = scanText(data[fileHeaderLen:], strict)
		return recs, validLen + fileHeaderLen, droppedBytes, err
	case FormatBinary:
		return scanBinary(data, fileHeaderLen, strict)
	default:
		return nil, 0, 0, fmt.Errorf("wal: unsupported log format %d", data[fileHeaderLen-1])
	}
}

// scanText walks text-framed log bytes; see scanLog. Only the final
// non-empty line may be torn or corrupt in tolerant mode; strict mode
// errors on any bad line.
func scanText(data []byte, strict bool) (recs []Record, validLen, droppedBytes int, err error) {
	off := 0
	lineNo := 0
	for off < len(data) {
		end := len(data)
		next := end
		if i := bytes.IndexByte(data[off:], '\n'); i >= 0 {
			end = off + i
			next = end + 1
		}
		line := data[off:end]
		lineNo++
		// Strip one trailing carriage return so a CRLF log reads the same
		// strictly and tolerantly.
		if n := len(line); n > 0 && line[n-1] == '\r' {
			line = line[:n-1]
		}
		if len(line) == 0 {
			off = next
			validLen = off
			continue
		}
		rec, perr := parseLine(line)
		if perr != nil {
			if strict {
				return nil, 0, 0, fmt.Errorf("wal: line %d: %w", lineNo, perr)
			}
			// Tolerated only as the final non-empty line.
			for rest := next; rest < len(data); {
				rend := len(data)
				rnext := rend
				if i := bytes.IndexByte(data[rest:], '\n'); i >= 0 {
					rend = rest + i
					rnext = rend + 1
				}
				rline := data[rest:rend]
				if n := len(rline); n > 0 && rline[n-1] == '\r' {
					rline = rline[:n-1]
				}
				if len(rline) > 0 {
					return nil, 0, 0, fmt.Errorf("wal: line %d: %w (followed by further records — mid-log corruption)", lineNo, perr)
				}
				rest = rnext
			}
			return recs, validLen, len(data) - validLen, nil
		}
		recs = append(recs, rec)
		off = next
		validLen = off
	}
	return recs, validLen, 0, nil
}
