package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFileLog writes the sample records to path through a FileLog.
func writeFileLog(t *testing.T, path string, recs []Record, opts ...FileOption) {
	t.Helper()
	l, err := OpenFileLog(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileLogLinesAreCRCFramed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "framed.wal")
	writeFileLog(t, path, sampleRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != len(sampleRecords()) {
		t.Fatalf("%d lines, want %d", len(lines), len(sampleRecords()))
	}
	for _, line := range lines {
		if len(line) < 10 || line[8] != ' ' || line[9] != '{' {
			t.Fatalf("line not CRC-framed: %q", line)
		}
	}
}

func TestChecksumDetectsBitRot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.wal")
	writeFileLog(t, path, sampleRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the JSON body of the last record: still valid
	// framing, wrong checksum.
	i := len(data) - 5
	data[i] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("bit rot not detected: %v", err)
	}
	// As tail corruption it is tolerated, dropping only the last record.
	recs, dropped, err := ReadFileTolerant(path)
	if err != nil || len(recs) != len(sampleRecords())-1 || dropped == 0 {
		t.Fatalf("tolerant read: %d records, %d dropped, %v", len(recs), dropped, err)
	}
}

func TestTornTailToleratedAndRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.wal")
	writeFileLog(t, path, sampleRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-way through the final record, no trailing newline —
	// the on-disk state a crash during the last write leaves behind.
	cut := len(data) - 12
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("strict read accepted a torn tail")
	}
	recs, dropped, err := ReadFileTolerant(path)
	if err != nil || len(recs) != len(sampleRecords())-1 || dropped == 0 {
		t.Fatalf("tolerant read: %d records, %d dropped, %v", len(recs), dropped, err)
	}
	// Truncate-and-resume: after RepairFile the log is strictly clean.
	recs2, truncated, err := RepairFile(path)
	if err != nil || len(recs2) != len(recs) || truncated == 0 {
		t.Fatalf("RepairFile: %d records, %d truncated, %v", len(recs2), truncated, err)
	}
	clean, err := ReadFile(path)
	if err != nil || len(clean) != len(recs) {
		t.Fatalf("log not clean after repair: %d records, %v", len(clean), err)
	}
	// Repairing a clean log is a no-op.
	if _, truncated, err := RepairFile(path); err != nil || truncated != 0 {
		t.Fatalf("repair of clean log: %d truncated, %v", truncated, err)
	}
}

func TestMidLogCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mid.wal")
	writeFileLog(t, path, sampleRecords())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the FIRST record: valid records follow, so this
	// is lost history, not a torn tail, and must not be silently dropped.
	data[15] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFileTolerant(path); err == nil {
		t.Fatal("mid-log corruption tolerated")
	}
	if _, _, err := RepairFile(path); err == nil {
		t.Fatal("mid-log corruption repaired away")
	}
}

func TestEmptyLogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.wal")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if recs, err := ReadFile(path); err != nil || len(recs) != 0 {
		t.Fatalf("strict: %d records, %v", len(recs), err)
	}
	if recs, dropped, err := ReadFileTolerant(path); err != nil || len(recs) != 0 || dropped != 0 {
		t.Fatalf("tolerant: %d records, %d dropped, %v", len(recs), dropped, err)
	}
	if _, truncated, err := RepairFile(path); err != nil || truncated != 0 {
		t.Fatalf("repair: %d truncated, %v", truncated, err)
	}
}

func TestLegacyPlainJSONLinesAccepted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.wal")
	var sb strings.Builder
	for _, rec := range sampleRecords() {
		b, err := Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil || len(recs) != len(sampleRecords()) {
		t.Fatalf("strict: %d records, %v", len(recs), err)
	}
	recs, dropped, err := ReadFileTolerant(path)
	if err != nil || len(recs) != len(sampleRecords()) || dropped != 0 {
		t.Fatalf("tolerant: %d records, %d dropped, %v", len(recs), dropped, err)
	}
	for i, rec := range recs {
		if !recordsEqual(rec, sampleRecords()[i]) {
			t.Fatalf("record %d mismatch: %+v", i, rec)
		}
	}
}

func TestFsyncAppendIsImmediatelyDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fsync.wal")
	l, err := OpenFileLog(path, WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
	// Without Close: the record must already be on disk.
	recs, err := ReadFile(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("after fsync append: %d records, %v", len(recs), err)
	}
}

func TestFaultLogCleanCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.wal")
	inner, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultLog(inner, 2, false)
	recs := sampleRecords()
	if err := fl.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := fl.Append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := fl.Append(recs[2]); !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	// Once crashed, the log stays dead.
	if err := fl.Append(recs[3]); !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash append: %v", err)
	}
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 2 {
		t.Fatalf("clean crash left %d records, %v", len(got), err)
	}
}

func TestFaultLogShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.wal")
	inner, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFaultLog(inner, 2, true)
	recs := sampleRecords()
	for i := 0; i < 2; i++ {
		if err := fl.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fl.Append(recs[2]); !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	if err := inner.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn half-record is on disk: strict read fails, tolerant read and
	// repair recover the 2-record prefix.
	if _, err := ReadFile(path); err == nil {
		t.Fatal("strict read accepted the torn record")
	}
	got, truncated, err := RepairFile(path)
	if err != nil || len(got) != 2 || truncated == 0 {
		t.Fatalf("repair: %d records, %d truncated, %v", len(got), truncated, err)
	}
	clean, err := ReadFile(path)
	if err != nil || len(clean) != 2 {
		t.Fatalf("log not clean after repair: %d records, %v", len(clean), err)
	}
}
