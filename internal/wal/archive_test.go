package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeBlobFile drops a file with the given contents into dir and
// returns its path.
func writeBlobFile(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestArchiveDirStoreRoundTrip(t *testing.T) {
	st, err := NewDirStore(filepath.Join(t.TempDir(), "arch"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("missing"); !errors.Is(err, ErrStoreMiss) {
		t.Fatalf("get missing: %v, want ErrStoreMiss", err)
	}
	if err := st.Put("b", []byte("bbb")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	// Overwrite is allowed (sealed blobs re-uploaded after restart).
	if err := st.Put("a", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("a")
	if err != nil || string(got) != "aaa" {
		t.Fatalf("get a: %q, %v", got, err)
	}
	// A crashed Put's temporary must not appear in listings.
	writeBlobFile(t, st.Dir(), "c.tmp", []byte("torn"))
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("list: %v", names)
	}
	if err := st.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("a"); err != nil { // absent delete is a no-op
		t.Fatal(err)
	}
	if _, err := st.Get("a"); !errors.Is(err, ErrStoreMiss) {
		t.Fatalf("get deleted: %v, want ErrStoreMiss", err)
	}
}

func TestArchiveFaultStoreSchedule(t *testing.T) {
	inner, err := NewDirStore(filepath.Join(t.TempDir(), "arch"))
	if err != nil {
		t.Fatal(err)
	}
	// Count-only mode: failAt <= 0 injects nothing.
	counter := NewFaultStore(inner, StoreUnavailable, 0)
	if err := counter.Put("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := counter.Get("a"); err != nil {
		t.Fatal(err)
	}
	if counter.Ops() != 2 || counter.Fired() {
		t.Fatalf("count-only: ops=%d fired=%v", counter.Ops(), counter.Fired())
	}

	// Transient fault: fires exactly once at the scheduled op.
	fs := NewFaultStore(inner, StoreUnavailable, 2)
	if err := fs.Put("a", []byte("x")); err != nil {
		t.Fatalf("op 1 should pass: %v", err)
	}
	if err := fs.Put("b", []byte("y")); !errors.Is(err, ErrStoreUnavailable) {
		t.Fatalf("op 2: %v, want ErrStoreUnavailable", err)
	}
	if err := fs.Put("b", []byte("y")); err != nil {
		t.Fatalf("transient fault fired twice: %v", err)
	}

	// Sticky fault: every matching op from failAt onward fails.
	sticky := NewFaultStore(inner, StoreUnavailable, 1, StoreSticky())
	for i := 0; i < 3; i++ {
		if _, err := sticky.Get("a"); !errors.Is(err, ErrStoreUnavailable) {
			t.Fatalf("sticky op %d: %v", i, err)
		}
	}

	// Kind/op matching: a corrupt-read fault scheduled at op 1 must wait
	// for the first Get, letting the Put through untouched.
	cr := NewFaultStore(inner, StoreCorruptRead, 1)
	if err := cr.Put("c", []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	got, err := cr.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == "hello world" {
		t.Fatal("corrupt-read fault did not corrupt")
	}
	if crc32Checksum(got) == crc32Checksum([]byte("hello world")) {
		t.Fatal("corruption not CRC-detectable")
	}
}

// newTestArchiver builds an archiver with fast test timings over store,
// isolating metrics in a private registry.
func newTestArchiver(store Store, opts ...ArchiverOption) (*Archiver, *obs.Registry) {
	reg := obs.NewRegistry()
	base := []ArchiverOption{
		ArchiveOpTimeout(200 * time.Millisecond),
		ArchiveBackoff(time.Millisecond, 4*time.Millisecond),
		ArchiveBreakerCooldown(2 * time.Millisecond),
		ArchiveMetricsRegistry(reg),
		ArchiveSeed(1),
	}
	return NewArchiver(store, append(base, opts...)...), reg
}

func TestArchiverUploadsAndVerifies(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	a, reg := newTestArchiver(st)
	p1 := writeBlobFile(t, dir, "wal-000001.seg", []byte("segment one\n"))
	p2 := writeBlobFile(t, dir, "ckpt-000001.ckpt", []byte("checkpoint one\n"))
	a.Enqueue(p1)
	a.Enqueue(p1) // duplicate enqueue is a no-op
	a.Enqueue(p2)
	if lag := a.Lag(); lag != 2 {
		t.Fatalf("pre-start lag = %d, want 2", lag)
	}
	a.Start()
	defer a.Stop()
	if !a.Drain(2 * time.Second) {
		t.Fatal("archiver did not drain")
	}
	for _, name := range []string{"wal-000001.seg", "ckpt-000001.ckpt"} {
		if !a.Verified(name) {
			t.Fatalf("%s not verified", name)
		}
		local, _ := os.ReadFile(filepath.Join(dir, name))
		arch, err := st.Get(name)
		if err != nil || string(arch) != string(local) {
			t.Fatalf("%s archived bytes differ: %v", name, err)
		}
	}
	if n := reg.Counter("wal.archive.archived").Value(); n != 2 {
		t.Fatalf("archived counter = %d, want 2", n)
	}
	if n := reg.Gauge("wal.archive.queue.depth").Value(); n != 0 {
		t.Fatalf("queue depth = %d, want 0", n)
	}
	if n := reg.Gauge("wal.archive.queued_bytes").Value(); n != 0 {
		t.Fatalf("queued bytes = %d, want 0", n)
	}
	// A second enqueue of a verified name is ignored even after the file
	// changes locally (sealed files never change).
	a.Enqueue(p1)
	if lag := a.Lag(); lag != 0 {
		t.Fatalf("verified re-enqueue lag = %d, want 0", lag)
	}
}

// flapStore fails every operation with ErrStoreUnavailable until the
// first failN operations have been rejected, then recovers — the shape a
// breaker must ride out and then close on.
type flapStore struct {
	inner Store
	mu    sync.Mutex
	failN int
}

func (s *flapStore) step() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failN > 0 {
		s.failN--
		return ErrStoreUnavailable
	}
	return nil
}

func (s *flapStore) Put(name string, data []byte) error {
	if err := s.step(); err != nil {
		return err
	}
	return s.inner.Put(name, data)
}

func (s *flapStore) Get(name string) ([]byte, error) {
	if err := s.step(); err != nil {
		return nil, err
	}
	return s.inner.Get(name)
}

func (s *flapStore) List() ([]string, error) {
	if err := s.step(); err != nil {
		return nil, err
	}
	return s.inner.List()
}

func (s *flapStore) Delete(name string) error {
	if err := s.step(); err != nil {
		return err
	}
	return s.inner.Delete(name)
}

func TestArchiverRetriesAndBreaker(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewDirStore(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	st := &flapStore{inner: inner, failN: 4}
	a, reg := newTestArchiver(st, ArchiveBreakerAfter(2))

	var mu sync.Mutex
	var kinds []string
	detach := obs.DefaultBus.Attach(func(ev obs.Event) {
		if strings.HasPrefix(ev.Kind, "wal.archive.") {
			mu.Lock()
			kinds = append(kinds, ev.Kind)
			mu.Unlock()
		}
	})
	defer detach()

	path := writeBlobFile(t, dir, "wal-000001.seg", []byte("records\n"))
	a.Enqueue(path)
	a.Start()
	defer a.Stop()
	if !a.Drain(2 * time.Second) {
		t.Fatal("archiver did not recover after backend came back")
	}
	if !a.Verified("wal-000001.seg") {
		t.Fatal("blob not verified after recovery")
	}
	if a.BreakerOpen() {
		t.Fatal("breaker still open after successful upload")
	}
	if n := reg.Counter("wal.archive.retries").Value(); n != 4 {
		t.Fatalf("retries = %d, want 4", n)
	}
	if n := reg.Gauge("wal.archive.breaker.open").Value(); n != 0 {
		t.Fatalf("breaker gauge = %d, want 0", n)
	}
	mu.Lock()
	defer mu.Unlock()
	var opened, closed, put bool
	for _, k := range kinds {
		switch k {
		case obs.EvArchiveBreakerOpen:
			opened = true
		case obs.EvArchiveBreakerClose:
			closed = true
		case obs.EvArchivePut:
			put = true
		}
	}
	if !opened || !closed || !put {
		t.Fatalf("events opened=%v closed=%v put=%v: %v", opened, closed, put, kinds)
	}
}

func TestArchiverPartialWriteCaughtByVerify(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewDirStore(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	// The first Put silently truncates the blob and reports success; only
	// the read-back CRC comparison can catch it.
	st := NewFaultStore(inner, StorePartialWrite, 1)
	a, reg := newTestArchiver(st)
	path := writeBlobFile(t, dir, "wal-000001.seg", []byte("full segment contents\n"))
	a.Enqueue(path)
	a.Start()
	defer a.Stop()
	if !a.Drain(2 * time.Second) {
		t.Fatal("archiver did not drain")
	}
	got, err := inner.Get("wal-000001.seg")
	if err != nil || string(got) != "full segment contents\n" {
		t.Fatalf("archived blob after retry: %q, %v", got, err)
	}
	if n := reg.Counter("wal.archive.retries").Value(); n < 1 {
		t.Fatal("partial write was not retried — verify missed it")
	}
}

func TestArchiverCorruptReadCaughtByVerify(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewDirStore(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	// The Put lands clean but the verify Get returns a flipped bit: the
	// archiver must not mark the blob verified on that evidence.
	st := NewFaultStore(inner, StoreCorruptRead, 2)
	a, reg := newTestArchiver(st)
	path := writeBlobFile(t, dir, "ckpt-000001.ckpt", []byte("checkpoint contents\n"))
	a.Enqueue(path)
	a.Start()
	defer a.Stop()
	if !a.Drain(2 * time.Second) {
		t.Fatal("archiver did not drain")
	}
	if !a.Verified("ckpt-000001.ckpt") {
		t.Fatal("blob not verified after the transient corrupt read")
	}
	if n := reg.Counter("wal.archive.retries").Value(); n < 1 {
		t.Fatal("corrupt read-back was not retried")
	}
}

func TestArchiverOpTimeout(t *testing.T) {
	dir := t.TempDir()
	inner, err := NewDirStore(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	// The faulted op stalls well past the archiver's deadline, so the
	// per-op timeout — not the store's eventual answer — drives the retry.
	st := NewFaultStore(inner, StoreTimeout, 1, StoreTimeoutDelay(300*time.Millisecond))
	a, reg := newTestArchiver(st, ArchiveOpTimeout(20*time.Millisecond))
	path := writeBlobFile(t, dir, "wal-000001.seg", []byte("records\n"))
	a.Enqueue(path)
	a.Start()
	defer a.Stop()
	if !a.Drain(3 * time.Second) {
		t.Fatal("archiver did not drain")
	}
	if n := reg.Counter("wal.archive.retries").Value(); n < 1 {
		t.Fatal("timed-out op was not retried")
	}
	if !a.Verified("wal-000001.seg") {
		t.Fatal("blob not verified after timeout recovery")
	}
}

func TestArchiverDropsVanishedFile(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(filepath.Join(dir, "arch"))
	if err != nil {
		t.Fatal(err)
	}
	a, reg := newTestArchiver(st)
	path := writeBlobFile(t, dir, "wal-000009.seg", []byte("doomed\n"))
	a.Enqueue(path)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	a.Start()
	defer a.Stop()
	if !a.Drain(2 * time.Second) {
		t.Fatal("archiver did not drain the vanished job")
	}
	if a.Verified("wal-000009.seg") {
		t.Fatal("vanished file marked verified")
	}
	if n := reg.Counter("wal.archive.drops").Value(); n != 1 {
		t.Fatalf("drops = %d, want 1", n)
	}
}

// archiveCheckpoint builds a small valid checkpoint and returns its
// serialized bytes plus the parsed form for comparison.
func archiveCheckpoint(t *testing.T, seq, cover int) ([]byte, *Checkpoint) {
	t.Helper()
	dir := t.TempDir()
	cp := BuildCheckpoint(nil, fleetHistory(), cover)
	cp.Seq = seq
	path, err := WriteCheckpoint(dir, cp)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, cp
}

// TestArchiveCheckpointRungFetchesAndRejectsCorrupt is the PR's pinned
// regression: the newest checkpoint exists only in the archive, and the
// archive hands back a corrupt blob for it. Recovery must CRC-reject the
// corrupt blob (counted in recover.checkpoint_fallbacks), fall through
// to the older archived checkpoint, and report the archive rung.
func TestArchiveCheckpointRungFetchesAndRejectsCorrupt(t *testing.T) {
	local := t.TempDir()
	st, err := NewDirStore(filepath.Join(t.TempDir(), "arch"))
	if err != nil {
		t.Fatal(err)
	}
	newest, _ := archiveCheckpoint(t, 2, 5)
	corrupt := append([]byte(nil), newest...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := st.Put("ckpt-000002.ckpt", corrupt); err != nil {
		t.Fatal(err)
	}
	older, olderCp := archiveCheckpoint(t, 1, 3)
	if err := st.Put("ckpt-000001.ckpt", older); err != nil {
		t.Fatal(err)
	}

	before := fallbackCount()
	fetches := obs.Default.Counter("recover.archive_fetches").Value()
	cp, src, err := LoadCheckpointStore(local, st)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceArchiveCheckpoint {
		t.Fatalf("source = %q, want %q", src, SourceArchiveCheckpoint)
	}
	if cp == nil || cp.Seq != olderCp.Seq || cp.Cover != olderCp.Cover {
		t.Fatalf("recovered checkpoint: %+v, want seq %d", cp, olderCp.Seq)
	}
	if got := fallbackCount() - before; got != 1 {
		t.Fatalf("checkpoint_fallbacks delta = %d, want 1 (the corrupt archived blob)", got)
	}
	if got := obs.Default.Counter("recover.archive_fetches").Value() - fetches; got != 1 {
		t.Fatalf("archive_fetches delta = %d, want 1", got)
	}

	// With every archived copy corrupt, the ladder lands on full replay.
	st2, err := NewDirStore(filepath.Join(t.TempDir(), "arch2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Put("ckpt-000002.ckpt", corrupt); err != nil {
		t.Fatal(err)
	}
	before = fallbackCount()
	cp, src, err = LoadCheckpointStore(t.TempDir(), st2)
	if err != nil || cp != nil {
		t.Fatalf("all-corrupt archive: cp=%v err=%v", cp, err)
	}
	if src != SourceFullReplay {
		t.Fatalf("source = %q, want %q", src, SourceFullReplay)
	}
	if got := fallbackCount() - before; got != 1 {
		t.Fatalf("checkpoint_fallbacks delta = %d, want 1", got)
	}
}

func TestArchiveCheckpointLadderPrefersLocal(t *testing.T) {
	local := t.TempDir()
	cp := BuildCheckpoint(nil, fleetHistory(), 3)
	if _, err := WriteCheckpoint(local, cp); err != nil {
		t.Fatal(err)
	}
	inner, err := NewDirStore(filepath.Join(t.TempDir(), "arch"))
	if err != nil {
		t.Fatal(err)
	}
	// Count-only FaultStore proves the archive is never consulted when a
	// local checkpoint reads back clean.
	st := NewFaultStore(inner, StoreUnavailable, 0)
	got, src, err := LoadCheckpointStore(local, st)
	if err != nil || got == nil {
		t.Fatalf("load: %v, %v", got, err)
	}
	if src != SourceNewestCheckpoint {
		t.Fatalf("source = %q, want %q", src, SourceNewestCheckpoint)
	}
	if st.Ops() != 0 {
		t.Fatalf("archive touched %d times with a clean local checkpoint", st.Ops())
	}
}

func TestArchiveCheckpointLadderSurvivesDownArchive(t *testing.T) {
	inner, err := NewDirStore(filepath.Join(t.TempDir(), "arch"))
	if err != nil {
		t.Fatal(err)
	}
	st := NewFaultStore(inner, StoreUnavailable, 1, StoreSticky())
	cp, src, err := LoadCheckpointStore(t.TempDir(), st)
	if err != nil {
		t.Fatalf("a down archive must degrade to full replay, not fail: %v", err)
	}
	if cp != nil || src != SourceFullReplay {
		t.Fatalf("cp=%v src=%q, want nil/%q", cp, src, SourceFullReplay)
	}
}

// sealedSegments writes a segmented log with three sealed segments plus
// an active tail and returns the dir and the full record set.
func sealedSegments(t *testing.T) (string, []Record) {
	t.Helper()
	dir := t.TempDir()
	l, err := OpenSegmentedLog(dir, SegmentMaxRecords(3))
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 10; i++ {
		rec := seqRecord("i1", i)
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, want
}

func TestArchiveRepairSegmentsStoreFetchesMissingAndDamaged(t *testing.T) {
	dir, want := sealedSegments(t)
	st, err := NewDirStore(filepath.Join(t.TempDir(), "arch"))
	if err != nil {
		t.Fatal(err)
	}
	// Archive every sealed segment, then damage the local copies: delete
	// segment 1 outright and corrupt a record in segment 2.
	for _, name := range []string{"wal-000001.seg", "wal-000002.seg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(name, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Remove(filepath.Join(dir, "wal-000001.seg")); err != nil {
		t.Fatal(err)
	}
	seg2 := filepath.Join(dir, "wal-000002.seg")
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(seg2, data, 0o666); err != nil {
		t.Fatal(err)
	}

	fetches := obs.Default.Counter("recover.archive_fetches").Value()
	got, dropped, err := RepairSegmentsStore(dir, 0, st)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (archived copies are clean)", dropped)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(want[i], got[i]) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, want[i], got[i])
		}
	}
	if d := obs.Default.Counter("recover.archive_fetches").Value() - fetches; d != 2 {
		t.Fatalf("archive_fetches delta = %d, want 2", d)
	}
}

func TestArchiveRepairSegmentsStoreRejectsCorruptBlob(t *testing.T) {
	dir, want := sealedSegments(t)
	st, err := NewDirStore(filepath.Join(t.TempDir(), "arch"))
	if err != nil {
		t.Fatal(err)
	}
	// The archived copy of segment 2 is itself corrupt; the local copy is
	// clean, so repair must prefer it and never import the bad blob.
	data, err := os.ReadFile(filepath.Join(dir, "wal-000002.seg"))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := st.Put("wal-000002.seg", corrupt); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := RepairSegmentsStore(dir, 0, st)
	if err != nil || dropped != 0 {
		t.Fatalf("repair: dropped=%d err=%v", dropped, err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}

	// Now lose the local copy too: a corrupt archived blob with no local
	// file is unrecoverable for that segment and must be a hard error.
	if err := os.Remove(filepath.Join(dir, "wal-000002.seg")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RepairSegmentsStore(dir, 0, st); err == nil {
		t.Fatal("missing local + corrupt archived blob accepted")
	}
}

func TestArchiveGatedPruneKeepsUnverified(t *testing.T) {
	dir, _ := sealedSegments(t)
	l, err := OpenSegmentedLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Only segment 1 is "archived": the eligibility gate must hold
	// segments 2 and 3 back even though the cover says they may go.
	removed, err := l.PruneEligible(3, func(s SegmentInfo) bool { return s.Index == 1 })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Index == 1 {
			t.Fatal("verified segment 1 survived the prune")
		}
	}

	// Checkpoint prune honors the same gate.
	cdir := t.TempDir()
	for seq := 1; seq <= 4; seq++ {
		cp := BuildCheckpoint(nil, fleetHistory(), seq)
		cp.Seq = seq
		if _, err := WriteCheckpoint(cdir, cp); err != nil {
			t.Fatal(err)
		}
	}
	survivors, err := PruneCheckpointsEligible(cdir, 2, func(name string) bool {
		return name == fmt.Sprintf("ckpt-%06d.ckpt", 1) // only the oldest is archived
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seq 1 was prune-eligible and pruned; 2 is unverified so it stays;
	// 3 and 4 are the retained pair.
	if len(survivors) != 3 {
		t.Fatalf("survivors = %d, want 3: %+v", len(survivors), survivors)
	}
	wantSeq := []int{2, 3, 4}
	for i, ci := range survivors {
		if ci.Seq != wantSeq[i] {
			t.Fatalf("survivor %d seq = %d, want %d", i, ci.Seq, wantSeq[i])
		}
	}
}
