package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
)

// TestMemLogConcurrent hammers one MemLog with concurrent appenders and
// readers; run under -race (CI does). Records must never be lost, torn,
// or aliased — Records hands back deep copies, so mutating a returned
// record's Values must not corrupt the log.
func TestMemLogConcurrent(t *testing.T) {
	log := &MemLog{}
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				err := log.Append(Record{
					Type:     RecFinishedActivity,
					Instance: "inst-1",
					Path:     fmt.Sprintf("w%d/a%d", w, i),
					Iter:     i,
					Values:   map[string]expr.Value{"RC": expr.Int(0)},
				})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	var readers sync.WaitGroup
	stop := make(chan struct{})
	for rdr := 0; rdr < 3; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				recs := log.Records()
				if len(recs) != log.Len() && len(recs) > log.Len() {
					t.Error("Records longer than Len")
					return
				}
				for i := range recs {
					// Mutate the copy: must not affect the log.
					recs[i].Values["RC"] = expr.Int(99)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := log.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	recs := log.Records()
	if len(recs) != writers*perWriter {
		t.Fatalf("Records = %d, want %d", len(recs), writers*perWriter)
	}
	for _, r := range recs {
		if v, ok := r.Values["RC"]; !ok || v.AsInt() != 0 {
			t.Fatalf("record %s: values aliased or corrupted: %v", r.Path, r.Values)
		}
	}
}

// TestMemLogConcurrentCrashPoint checks that a crash-scripted MemLog
// under concurrent appenders admits exactly CrashAfter records.
func TestMemLogConcurrentCrashPoint(t *testing.T) {
	log := &MemLog{CrashAfter: 100}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = log.Append(Record{Type: RecStartedActivity, Instance: "i"})
			}
		}()
	}
	wg.Wait()
	if got := log.Len(); got != 100 {
		t.Fatalf("Len = %d, want exactly CrashAfter=100", got)
	}
}
