package wal

import (
	"bytes"
	"errors"
	"path/filepath"

	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

func sampleRecords() []Record {
	return []Record{
		{Type: RecCreated, Instance: "i1", Process: "Demo",
			Values: map[string]expr.Value{"id": expr.Int(7), "RC": expr.Int(0)}},
		{Type: RecStartedActivity, Instance: "i1", Path: "A", Iter: 0},
		{Type: RecFinishedActivity, Instance: "i1", Path: "A", Iter: 0,
			Values: map[string]expr.Value{
				"RC": expr.Int(0), "name": expr.String_("x"),
				"score": expr.Float(1.25), "ok": expr.Bool(true),
			}},
		{Type: RecFinishedActivity, Instance: "i1", Path: "B/step1", Iter: 2,
			Values: map[string]expr.Value{"RC": expr.Int(-9223372036854775808)}},
		{Type: RecDone, Instance: "i1",
			Values: map[string]expr.Value{"RC": expr.Int(0)}},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		b, err := Marshal(rec)
		if err != nil {
			t.Fatalf("Marshal(%+v): %v", rec, err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("Unmarshal(%s): %v", b, err)
		}
		if !recordsEqual(rec, got) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", rec, got)
		}
	}
}

func recordsEqual(a, b Record) bool {
	if a.Type != b.Type || a.Instance != b.Instance || a.Process != b.Process ||
		a.Path != b.Path || a.Iter != b.Iter || len(a.Values) != len(b.Values) {
		return false
	}
	for k, v := range a.Values {
		if !v.Equal(b.Values[k]) {
			return false
		}
	}
	return true
}

func TestMarshalRejectsNull(t *testing.T) {
	_, err := Marshal(Record{Type: RecDone, Values: map[string]expr.Value{"x": expr.Null}})
	if err == nil {
		t.Fatal("null value marshaled")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Error("bad json accepted")
	}
	if _, err := Unmarshal([]byte(`{"t":"done","inst":"i","vals":{"x":{"k":"Z"}}}`)); err == nil {
		t.Error("unknown value kind accepted")
	}
	if _, err := Unmarshal([]byte(`{"t":"done","inst":"i","vals":{"x":{"k":"I","i":"abc"}}}`)); err == nil {
		t.Error("bad integer accepted")
	}
}

func TestMemLog(t *testing.T) {
	l := &MemLog{}
	for _, rec := range sampleRecords() {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	recs := l.Records()
	if len(recs) != 5 || !recordsEqual(recs[0], sampleRecords()[0]) {
		t.Fatal("Records mismatch")
	}
	// Returned slice is a copy.
	recs[0].Values["id"] = expr.Int(999)
	if l.Records()[0].Values["id"].AsInt() == 999 {
		t.Fatal("Records aliases internal state")
	}
}

func TestMemLogCrashInjection(t *testing.T) {
	l := &MemLog{CrashAfter: 2}
	recs := sampleRecords()
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[2]); !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	// Crash preserves the prefix.
	if l.Len() != 2 {
		t.Fatalf("Len after crash = %d", l.Len())
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range sampleRecords() {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestReadAllSkipsBlankAndReportsErrors(t *testing.T) {
	b, _ := Marshal(sampleRecords()[0])
	src := string(b) + "\n\n" + string(b) + "\n"
	recs, err := ReadAll(strings.NewReader(src))
	if err != nil || len(recs) != 2 {
		t.Fatalf("ReadAll: %d, %v", len(recs), err)
	}
	if _, err := ReadAll(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.wal")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDiscard(t *testing.T) {
	if err := Discard.Append(sampleRecords()[0]); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValueCodec round-trips randomly generated values through the
// wire encoding.
func TestQuickValueCodec(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool, pick uint8) bool {
		var v expr.Value
		switch pick % 4 {
		case 0:
			v = expr.Int(i)
		case 1:
			v = expr.Float(fl)
		case 2:
			v = expr.String_(s)
		case 3:
			v = expr.Bool(b)
		}
		rec := Record{Type: RecDone, Instance: "i", Values: map[string]expr.Value{"v": v}}
		data, err := Marshal(rec)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return got.Values["v"].Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMarshalIsOneLine(t *testing.T) {
	for _, rec := range sampleRecords() {
		b, err := Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.ContainsRune(b, '\n') {
			t.Fatalf("record contains newline: %s", b)
		}
	}
}
