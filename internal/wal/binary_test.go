package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/obs"
)

// parityRecords is the shared cross-format test corpus: every record type
// code, every value kind, and the payload byte classes the PR 6 CRLF bug
// taught us to distrust — \r, \n, 0x00, empty strings, and empty keys —
// plus negative iterations and a long field.
func parityRecords() []Record {
	return []Record{
		{Type: RecCreated, Instance: "i1", Process: "Travel", Values: map[string]expr.Value{
			"FROM": expr.String_("SJC"), "N": expr.Int(3),
		}},
		{Type: RecStartedActivity, Instance: "i1", Path: "Flight", Iter: 0},
		{Type: RecFinishedActivity, Instance: "i1", Path: "Flight", Iter: 2, Values: map[string]expr.Value{
			"RC": expr.Int(0), "price": expr.Float(412.5), "ok": expr.Bool(true), "note": expr.String_(""),
		}},
		{Type: RecDone, Instance: "i1", Values: map[string]expr.Value{"RC": expr.Int(0)}},
		{Type: "probe", Instance: "probe"}, // non-standard type (E10's seal probe)
		{Type: RecFinishedActivity, Instance: "i\r\n2", Path: "A\x00B", Iter: -7, Values: map[string]expr.Value{
			"":     expr.String_(""),
			"crlf": expr.String_("line1\r\nline2\rline3\nline4"),
			"nul":  expr.String_("a\x00b"),
			"neg":  expr.Int(-1 << 60),
			"f":    expr.Float(-0.0),
		}},
		{Type: RecFinishedActivity, Instance: "long", Path: strings.Repeat("p/", 500), Iter: 1, Values: map[string]expr.Value{
			"big": expr.String_(strings.Repeat("x", 1<<16)),
		}},
		{Type: RecDone, Instance: "empty-values", Values: map[string]expr.Value{}},
	}
}

// TestBinaryRoundTrip checks MarshalBinary/UnmarshalBinary invert each
// other over the full parity corpus.
func TestBinaryRoundTrip(t *testing.T) {
	for i, rec := range parityRecords() {
		body, err := MarshalBinary(rec)
		if err != nil {
			t.Fatalf("record %d: MarshalBinary: %v", i, err)
		}
		got, err := UnmarshalBinary(body)
		if err != nil {
			t.Fatalf("record %d: UnmarshalBinary: %v", i, err)
		}
		if !recordsEqual(rec, got) {
			t.Fatalf("record %d: round trip mismatch:\n in: %+v\nout: %+v", i, rec, got)
		}
	}
}

// TestCrossFormatParity is the satellite property test: every record
// Marshal'd in text decodes identically from binary and vice versa —
// encode in one format, decode, re-encode in the other, decode again, and
// all decoded views must match.
func TestCrossFormatParity(t *testing.T) {
	for i, rec := range parityRecords() {
		jb, err := Marshal(rec)
		if err != nil {
			t.Fatalf("record %d: Marshal: %v", i, err)
		}
		fromText, err := Unmarshal(jb)
		if err != nil {
			t.Fatalf("record %d: Unmarshal: %v", i, err)
		}
		bb, err := MarshalBinary(fromText) // text → binary conversion
		if err != nil {
			t.Fatalf("record %d: MarshalBinary(text-decoded): %v", i, err)
		}
		fromBinary, err := UnmarshalBinary(bb)
		if err != nil {
			t.Fatalf("record %d: UnmarshalBinary: %v", i, err)
		}
		if !recordsEqual(fromText, fromBinary) {
			t.Fatalf("record %d: text and binary decode differently:\ntext:   %+v\nbinary: %+v", i, fromText, fromBinary)
		}
		// And back: binary → text conversion decodes identically too.
		jb2, err := Marshal(fromBinary)
		if err != nil {
			t.Fatalf("record %d: Marshal(binary-decoded): %v", i, err)
		}
		back, err := Unmarshal(jb2)
		if err != nil {
			t.Fatalf("record %d: Unmarshal(round 2): %v", i, err)
		}
		if !recordsEqual(back, fromBinary) {
			t.Fatalf("record %d: binary→text conversion drifted: %+v vs %+v", i, back, fromBinary)
		}
	}
}

// TestEncodeDomainParity checks a record marshals in one format iff it
// marshals in the other — the invariant that keeps mixed-format logs
// lossless.
func TestEncodeDomainParity(t *testing.T) {
	bad := []Record{
		{Type: RecDone, Values: map[string]expr.Value{"n": expr.Value{}}}, // NULL value
	}
	for i, rec := range bad {
		_, terr := Marshal(rec)
		_, berr := MarshalBinary(rec)
		if (terr == nil) != (berr == nil) {
			t.Fatalf("record %d: encode domains diverge: text err %v, binary err %v", i, terr, berr)
		}
	}
}

// buildBinaryLog frames recs as a complete binary log file image.
func buildBinaryLog(t *testing.T, recs []Record) ([]byte, []int) {
	t.Helper()
	data := FileHeader(FormatBinary)
	bounds := []int{len(data)} // byte offset after the header and each frame
	for _, r := range recs {
		var err error
		data, err = AppendRecordBinary(data, r)
		if err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, len(data))
	}
	return data, bounds
}

// TestBinaryFileHeaderNegotiation checks the reader sniffs all three
// header shapes: headerless text, headered text (format byte 0), and
// headered binary.
func TestBinaryFileHeaderNegotiation(t *testing.T) {
	recs := parityRecords()
	jb, err := Marshal(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	textLog := append(frameLine(jb), '\n')
	headeredText := append(FileHeader(FormatText), textLog...)
	binLog, _ := buildBinaryLog(t, recs[:1])

	for name, data := range map[string][]byte{
		"bare text": textLog, "headered text": headeredText, "binary": binLog,
	} {
		got, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 || !recordsEqual(got[0], recs[0]) {
			t.Fatalf("%s: decoded %+v", name, got)
		}
	}

	if _, err := ReadAll(bytes.NewReader(FileHeader(9))); err == nil {
		t.Fatal("unsupported format byte read strictly without error")
	}
	if _, _, err := ReadAllTolerant(bytes.NewReader(FileHeader(9))); err == nil {
		t.Fatal("unsupported format byte read tolerantly without error")
	}
	bogus := append([]byte{0xF5, 'X'}, textLog...)
	if _, err := ReadAll(bytes.NewReader(bogus)); err == nil {
		t.Fatal("bad magic read without error")
	}
}

// TestBinaryTornTailSweep truncates a binary log at every byte offset.
// Tolerant reads must succeed everywhere, returning exactly the records
// whose frames are complete; strict reads must fail except at frame
// boundaries. This is the binary analogue of the E7 crash-point sweep.
func TestBinaryTornTailSweep(t *testing.T) {
	recs := parityRecords()[:4]
	data, bounds := buildBinaryLog(t, recs)
	isBoundary := func(n int) int {
		for i, b := range bounds {
			if n == b {
				return i // i complete records
			}
		}
		return -1
	}
	for cut := 0; cut <= len(data); cut++ {
		part := data[:cut]
		got, dropped, err := ReadAllTolerant(bytes.NewReader(part))
		if err != nil {
			t.Fatalf("cut %d: tolerant read failed: %v", cut, err)
		}
		want := 0
		for _, b := range bounds {
			if cut >= b {
				want++
			}
		}
		want-- // bounds[0] is the header, not a record
		if want < 0 {
			want = 0
		}
		if len(got) != want {
			t.Fatalf("cut %d: got %d records, want %d", cut, len(got), want)
		}
		if k := isBoundary(cut); k >= 0 || cut == 0 {
			if dropped != 0 {
				t.Fatalf("cut %d: clean boundary dropped %d bytes", cut, dropped)
			}
			if _, err := ReadAll(bytes.NewReader(part)); err != nil {
				t.Fatalf("cut %d: strict read at boundary failed: %v", cut, err)
			}
		} else {
			valid := 0 // a torn header has no valid prefix at all
			if cut >= bounds[0] {
				valid = bounds[want]
			}
			if dropped != cut-valid {
				t.Fatalf("cut %d: dropped %d bytes, want %d", cut, dropped, cut-valid)
			}
			if _, err := ReadAll(bytes.NewReader(part)); err == nil {
				t.Fatalf("cut %d: strict read of torn log succeeded", cut)
			}
		}
	}
}

// TestBinaryMidLogCorruption checks the text reader's torn-tail-vs-lost-
// history distinction carries over: a corrupt final frame is dropped, a
// corrupt frame with valid data after it is an error.
func TestBinaryMidLogCorruption(t *testing.T) {
	recs := parityRecords()[:3]
	data, bounds := buildBinaryLog(t, recs)

	// Flip a byte in the FINAL frame's body: torn tail, dropped.
	tail := append([]byte{}, data...)
	tail[bounds[3]-1] ^= 0xFF
	got, dropped, err := ReadAllTolerant(bytes.NewReader(tail))
	if err != nil {
		t.Fatalf("corrupt tail: %v", err)
	}
	if len(got) != 2 || dropped == 0 {
		t.Fatalf("corrupt tail: %d records, %d dropped", len(got), dropped)
	}

	// Flip a byte in the FIRST frame's body: mid-log corruption, error.
	mid := append([]byte{}, data...)
	mid[bounds[1]-1] ^= 0xFF
	if _, _, err := ReadAllTolerant(bytes.NewReader(mid)); err == nil {
		t.Fatal("mid-log corruption read tolerantly without error")
	}
	if _, err := ReadAll(bytes.NewReader(mid)); err == nil {
		t.Fatal("mid-log corruption read strictly without error")
	}
}

// TestBinaryRepairFile checks RepairFile truncates a torn binary log to
// its valid prefix — keeping the file header — and the repaired file then
// reads back strictly clean.
func TestBinaryRepairFile(t *testing.T) {
	recs := parityRecords()[:3]
	data, bounds := buildBinaryLog(t, recs)
	path := filepath.Join(t.TempDir(), "wal.bin")
	torn := data[:bounds[2]+5] // 2 complete frames + 5 bytes of the third
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got, dropped, err := RepairFile(path)
	if err != nil {
		t.Fatalf("RepairFile: %v", err)
	}
	if len(got) != 2 || dropped != 5 {
		t.Fatalf("RepairFile: %d records, %d dropped", len(got), dropped)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, data[:bounds[2]]) {
		t.Fatalf("repaired file is not the valid prefix (len %d, want %d)", len(after), bounds[2])
	}
	if _, err := ReadFile(path); err != nil {
		t.Fatalf("repaired file fails strict read: %v", err)
	}

	// Repairing a torn header leaves an empty (zero-record) log.
	if err := os.WriteFile(path, data[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	got, dropped, err = RepairFile(path)
	if err != nil || len(got) != 0 || dropped != 4 {
		t.Fatalf("torn header repair: recs %d dropped %d err %v", len(got), dropped, err)
	}
}

// TestStrictTolerantParityBothFormats writes the parity corpus through a
// real FileLog in each format and checks strict and tolerant reads agree
// exactly — the satellite audit for the PR 6 divergence class.
func TestStrictTolerantParityBothFormats(t *testing.T) {
	for _, format := range []Format{FormatText, FormatBinary} {
		t.Run(format.String(), func(t *testing.T) {
			recs := parityRecords()
			path := filepath.Join(t.TempDir(), "wal.log")
			l, err := OpenFileLog(path, WithFormat(format))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if err := l.Append(r); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			strict, serr := ReadFile(path)
			tol, dropped, terr := ReadFileTolerant(path)
			if serr != nil || terr != nil {
				t.Fatalf("read errors: strict %v tolerant %v", serr, terr)
			}
			if dropped != 0 {
				t.Fatalf("clean log dropped %d bytes tolerantly", dropped)
			}
			if len(strict) != len(recs) || len(tol) != len(recs) {
				t.Fatalf("record counts: strict %d tolerant %d want %d", len(strict), len(tol), len(recs))
			}
			for i := range recs {
				if !recordsEqual(strict[i], recs[i]) || !recordsEqual(tol[i], recs[i]) {
					t.Fatalf("record %d drifted through %s framing", i, format)
				}
			}
		})
	}
}

// TestLargeRecordStrictRead is the regression test for the strict-reader
// line cap: the old bufio.Scanner-based ReadAll refused lines over its
// buffer cap that the tolerant reader accepted, so a valid log could fail
// its post-repair strict read-back. Both readers now share one scanner.
func TestLargeRecordStrictRead(t *testing.T) {
	big := Record{Type: RecFinishedActivity, Instance: "i", Path: "A", Values: map[string]expr.Value{
		"blob": expr.String_(strings.Repeat("y", 17<<20)), // one ~17 MiB line
	}}
	jb, err := Marshal(big)
	if err != nil {
		t.Fatal(err)
	}
	data := append(frameLine(jb), '\n')
	strict, serr := ReadAll(bytes.NewReader(data))
	tol, dropped, terr := ReadAllTolerant(bytes.NewReader(data))
	if serr != nil || terr != nil {
		t.Fatalf("read errors: strict %v tolerant %v", serr, terr)
	}
	if len(strict) != 1 || len(tol) != 1 || dropped != 0 {
		t.Fatalf("large record: strict %d tolerant %d dropped %d", len(strict), len(tol), dropped)
	}
}

// TestFileAppendIdleBusZeroAlloc is the allocs/op regression gate from the
// ISSUE: with an idle event bus and no per-append fsync, the binary
// FileLog append path must not allocate (CI runs this test; B13 reports
// the same number).
func TestFileAppendIdleBusZeroAlloc(t *testing.T) {
	if obs.DefaultBus.Active() {
		t.Skip("event bus active; hot path intentionally allocates events")
	}
	path := filepath.Join(t.TempDir(), "wal.bin")
	l, err := OpenFileLog(path, WithFormat(FormatBinary))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rec := Record{Type: RecFinishedActivity, Instance: "inst-00042", Path: "Flight", Iter: 1,
		Values: map[string]expr.Value{"RC": expr.Int(0)}}
	// Warm up so the encode scratch reaches steady-state capacity.
	for i := 0; i < 64; i++ {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("idle-bus binary append allocates %.1f allocs/op, want 0", allocs)
	}
}
