package wal

import (
	"errors"
	"path/filepath"
	"testing"
)

func faultRec(i int) Record {
	return Record{Type: RecFinishedActivity, Instance: "i1", Path: "A", Iter: i}
}

// A FaultFS in count-only mode injects nothing and counts every
// write/sync op.
func TestFaultFSCountOnly(t *testing.T) {
	fs := NewFaultFS(FaultEIO, 0)
	l, err := OpenFileLog(filepath.Join(t.TempDir(), "w.log"), WithFsync(), WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(faultRec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Ops() == 0 || fs.Fired() {
		t.Fatalf("ops=%d fired=%v, want counted ops and no fault", fs.Ops(), fs.Fired())
	}
}

// An injected write fault fails the append with the typed sentinel and
// seals the log: every later append returns ErrLogFailed even though the
// "disk" recovered (one-shot fault).
func TestFileLogSealsAfterWriteFault(t *testing.T) {
	for _, kind := range []FaultKind{FaultEIO, FaultENOSPC} {
		t.Run(kind.String(), func(t *testing.T) {
			fs := NewFaultFS(kind, 3)
			l, err := OpenFileLog(filepath.Join(t.TempDir(), "w.log"), WithFsync(), WithFS(fs))
			if err != nil {
				t.Fatal(err)
			}
			var firstErr error
			n := 0
			for i := 0; i < 10 && firstErr == nil; i++ {
				firstErr = l.Append(faultRec(i))
				if firstErr == nil {
					n++
				}
			}
			want := error(ErrDiskIO)
			if kind == FaultENOSPC {
				want = ErrDiskFull
			}
			if !errors.Is(firstErr, want) {
				t.Fatalf("first failure = %v, want %v", firstErr, want)
			}
			if err := l.Append(faultRec(99)); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("append after fault = %v, want ErrLogFailed", err)
			}
			if l.Failed() == nil {
				t.Fatal("Failed() = nil on sealed log")
			}
			if err := l.Close(); !errors.Is(err, ErrLogFailed) {
				t.Fatalf("Close on sealed log = %v, want ErrLogFailed", err)
			}
		})
	}
}

// Regression for the group-commit ack path: a batch whose write succeeds
// but whose fsync fails must fail every append it carries, and the log
// must refuse all later appends — a later batch syncing fine would
// otherwise ack records over possibly-dropped earlier bytes.
func TestGroupCommitNoAckAfterFsyncFault(t *testing.T) {
	fs := NewFaultFS(FaultFsync, 1) // first sync op fails
	inner, err := OpenFileLog(filepath.Join(t.TempDir(), "w.log"), WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	l := NewGroupCommitLog(inner)
	if err := l.Append(faultRec(1)); !errors.Is(err, ErrFsyncFailed) {
		t.Fatalf("append in fsync-failed batch = %v, want ErrFsyncFailed", err)
	}
	// The disk has "recovered" (one-shot fault) — the log must still
	// refuse: ack here would be the fsync-gate bug.
	if err := l.Append(faultRec(2)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after fsync fault = %v, want ErrLogFailed", err)
	}
	l.Close()
}

// The same seal contract holds for a SegmentedLog: a fault in any
// segment write seals the whole log, and rotation cannot resurrect it.
func TestSegmentedLogSealsAfterFault(t *testing.T) {
	fs := NewFaultFS(FaultFsync, 4)
	l, err := OpenSegmentedLog(t.TempDir(), SegmentFsync(), SegmentFS(fs), SegmentMaxRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 20 && firstErr == nil; i++ {
		firstErr = l.Append(faultRec(i))
	}
	if !errors.Is(firstErr, ErrFsyncFailed) {
		t.Fatalf("first failure = %v, want ErrFsyncFailed", firstErr)
	}
	if err := l.Append(faultRec(99)); !errors.Is(err, ErrLogFailed) {
		t.Fatalf("append after fault = %v, want ErrLogFailed", err)
	}
	if l.Failed() == nil {
		t.Fatal("Failed() = nil on sealed log")
	}
	l.Close()
}

// Acked records survive a storage fault: everything appended before the
// fault reads back from disk after per-file repair (zero acked loss).
func TestFaultAckedRecordsSurvive(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.log")
	fs := NewFaultFS(FaultEIO, 7)
	l, err := OpenFileLog(path, WithFsync(), WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	for i := 0; i < 50; i++ {
		if err := l.Append(faultRec(i)); err != nil {
			break
		}
		acked++
	}
	if acked == 0 || acked == 50 {
		t.Fatalf("acked = %d, want a mid-log fault", acked)
	}
	l.Close()
	recs, _, err := RepairFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < acked {
		t.Fatalf("recovered %d records, acked %d — acked-append loss", len(recs), acked)
	}
}

// A checkpoint write through a faulty filesystem fails cleanly, leaving
// no visible (non-tmp) checkpoint that a reader could trust.
func TestWriteCheckpointFSFault(t *testing.T) {
	dir := t.TempDir()
	cp := &Checkpoint{Seq: 1, Cover: 0, Records: []Record{faultRec(1)}}
	for _, kind := range []FaultKind{FaultEIO, FaultFsync} {
		fs := NewFaultFS(kind, 1)
		if _, err := WriteCheckpointFS(fs, dir, cp); err == nil {
			t.Fatalf("%v: checkpoint write succeeded through fault", kind)
		}
		infos, err := ListCheckpoints(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 0 {
			t.Fatalf("%v: damaged checkpoint became visible: %v", kind, infos)
		}
	}
	// And a clean FS succeeds in the same directory afterwards.
	if _, err := WriteCheckpointFS(OSFS{}, dir, cp); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadCheckpoint(dir); err != nil || got == nil || got.Seq != 1 {
		t.Fatalf("recovered checkpoint = %+v, %v", got, err)
	}
}

// A sticky fault keeps failing matching operations; Fired reports it.
func TestFaultFSSticky(t *testing.T) {
	fs := NewFaultFS(FaultEIO, 1, FaultSticky())
	f, err := fs.Create(filepath.Join(t.TempDir(), "x"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("x")); !errors.Is(err, ErrDiskIO) {
			t.Fatalf("write %d = %v, want ErrDiskIO", i, err)
		}
	}
	if !fs.Fired() {
		t.Fatal("Fired() = false after injection")
	}
	f.Close()
}
