package wal

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/expr"
)

func seqRecord(inst string, i int) Record {
	return Record{
		Type: RecFinishedActivity, Instance: inst,
		Path: fmt.Sprintf("A%d", i), Iter: 0,
		Values: map[string]expr.Value{"RC": expr.Int(int64(i))},
	}
}

func TestSegmentedLogRotatesAndReadsBack(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentedLog(dir, SegmentMaxRecords(4), SegmentFsync())
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 11; i++ {
		rec := seqRecord("i1", i)
		want = append(want, rec)
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(l.SealedSegments()); got != 2 {
		t.Fatalf("sealed segments = %d, want 2 (11 records / 4 per segment)", got)
	}
	if l.ActiveRecords() != 3 {
		t.Fatalf("active records = %d, want 3", l.ActiveRecords())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegments(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !recordsEqual(want[i], got[i]) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, want[i], got[i])
		}
	}
	// Every segment is individually a valid FileLog file: RepairFile works
	// per segment verbatim.
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments on disk = %d, want 3", len(segs))
	}
	total := 0
	for _, s := range segs {
		recs, dropped, err := RepairFile(s.Path)
		if err != nil || dropped != 0 {
			t.Fatalf("segment %d: recs=%d dropped=%d err=%v", s.Index, len(recs), dropped, err)
		}
		total += len(recs)
	}
	if total != 11 {
		t.Fatalf("per-segment repair found %d records, want 11", total)
	}
}

func TestSegmentedLogReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentedLog(dir, SegmentMaxRecords(100))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append(seqRecord("i1", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenSegmentedLog(dir, SegmentMaxRecords(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(seqRecord("i1", 3)); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || segs[0].Index != 1 || segs[1].Index != 2 {
		t.Fatalf("segments after reopen: %+v", segs)
	}
	recs, dropped, err := RepairSegments(dir, 0)
	if err != nil || dropped != 0 || len(recs) != 4 {
		t.Fatalf("repair: recs=%d dropped=%d err=%v", len(recs), dropped, err)
	}
}

func TestSegmentedFaultLogTornTailRepaired(t *testing.T) {
	for _, short := range []bool{false, true} {
		dir := t.TempDir()
		l, err := OpenSegmentedLog(dir, SegmentMaxRecords(3), SegmentFsync())
		if err != nil {
			t.Fatal(err)
		}
		fl := NewSegmentedFaultLog(l, 5, short)
		var appended int
		for i := 0; i < 10; i++ {
			if err := fl.Append(seqRecord("i1", i)); err != nil {
				if err != ErrCrash {
					t.Fatal(err)
				}
				break
			}
			appended++
		}
		if appended != 5 {
			t.Fatalf("short=%v: appended %d, want 5", short, appended)
		}
		l.Close()
		recs, dropped, err := RepairSegments(dir, 0)
		if err != nil {
			t.Fatalf("short=%v: %v", short, err)
		}
		if len(recs) != 5 {
			t.Fatalf("short=%v: recovered %d records, want 5", short, len(recs))
		}
		if short && dropped == 0 {
			t.Fatalf("short write left no torn tail to drop")
		}
		if !short && dropped != 0 {
			t.Fatalf("clean crash dropped %d bytes", dropped)
		}
	}
}

func TestRepairSegmentsRejectsMidLogTear(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentedLog(dir, SegmentMaxRecords(2), SegmentFsync())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(seqRecord("i1", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Tear the tail of segment 1, which is followed by records in later
	// segments: that is lost history, not a crash signature.
	segs, _ := ListSegments(dir)
	data, _ := os.ReadFile(segs[0].Path)
	if err := os.WriteFile(segs[0].Path, data[:len(data)-7], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RepairSegments(dir, 0); err == nil {
		t.Fatal("mid-log segment tear not rejected")
	}
}

func TestRepairSegmentsToleratesEmptyActiveAfterRotation(t *testing.T) {
	// A crash can land between sealing a segment and the first append to
	// its successor: the last file is empty (or the torn one is followed
	// only by empty files). Recovery must accept that.
	dir := t.TempDir()
	l, err := OpenSegmentedLog(dir, SegmentMaxRecords(2), SegmentFsync())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(seqRecord("i1", i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate the half-done rotation: an empty next segment exists.
	if err := os.WriteFile(segPath(dir, 3), nil, 0o666); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err := RepairSegments(dir, 0)
	if err != nil || dropped != 0 || len(recs) != 4 {
		t.Fatalf("recs=%d dropped=%d err=%v", len(recs), dropped, err)
	}
	// And with a torn tail in the last non-empty segment too.
	data, _ := os.ReadFile(segPath(dir, 2))
	if err := os.WriteFile(segPath(dir, 2), data[:len(data)-5], 0o666); err != nil {
		t.Fatal(err)
	}
	recs, dropped, err = RepairSegments(dir, 0)
	if err != nil || dropped == 0 || len(recs) != 3 {
		t.Fatalf("torn-then-empty: recs=%d dropped=%d err=%v", len(recs), dropped, err)
	}
}

func TestSegmentedGroupCommitKeepsBatchesInOneSegment(t *testing.T) {
	dir := t.TempDir()
	sl, err := OpenSegmentedLog(dir, SegmentMaxRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	gl := NewGroupCommitSegmented(sl)
	for i := 0; i < 10; i++ {
		if err := gl.Append(seqRecord("i1", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := gl.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSegments(dir, 0)
	if err != nil || len(recs) != 10 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	segs, _ := ListSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("group-committed log never rotated: %d segments", len(segs))
	}
}

func TestSegmentedLogPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmentedLog(dir, SegmentMaxRecords(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := l.Append(seqRecord("i1", i)); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := l.Prune(2)
	if err != nil || removed != 2 {
		t.Fatalf("removed=%d err=%v", removed, err)
	}
	segs, _ := ListSegments(dir)
	for _, s := range segs {
		if s.Index <= 2 {
			t.Fatalf("segment %d survived pruning", s.Index)
		}
	}
	// The surviving records are exactly those after the pruned prefix.
	l.Close()
	recs, _, err := RepairSegments(dir, 2)
	if err != nil || len(recs) != 3 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}
