package obs

import (
	"strings"
	"testing"
)

// TestPrometheusHelpEscaping is the golden test of the 0.0.4 text
// exposition with hostile help strings: backslashes, embedded newlines
// and quotes must be escaped so the output stays line-oriented.
func TestPrometheusHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("evil.counter").Add(7)
	r.SetHelp("evil.counter", "path C:\\wal\nsecond line with \"quotes\"")
	r.Gauge("plain.gauge").Set(3)
	r.SetHelp("plain.gauge", "a well-behaved help string")
	h := r.Histogram("evil.hist")
	h.Observe(500)
	r.SetHelp("evil.hist", `ends with a backslash \`)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := []string{
		`# HELP evil_counter path C:\\wal\nsecond line with "quotes"`,
		"# TYPE evil_counter counter",
		"evil_counter 7",
		"# HELP plain_gauge a well-behaved help string",
		"# TYPE plain_gauge gauge",
		"plain_gauge 3",
		`# HELP evil_hist ends with a backslash \\`,
		"# TYPE evil_hist histogram",
		`evil_hist_bucket{le="1000"} 1`,
		`evil_hist_bucket{le="+Inf"} 1`,
		"evil_hist_count 1",
	}
	for _, want := range golden {
		if !strings.Contains(got, want+"\n") {
			t.Fatalf("exposition missing line %q:\n%s", want, got)
		}
	}
	// The escaping must keep every HELP comment on one physical line: a
	// raw newline inside help text would start a bogus exposition line.
	for _, line := range strings.Split(got, "\n") {
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "evil_") && !strings.HasPrefix(line, "plain_") {
			t.Fatalf("stray exposition line %q (unescaped newline?)", line)
		}
	}
	// Instruments without registered help get no HELP line at all.
	r2 := NewRegistry()
	r2.Counter("quiet").Inc()
	sb.Reset()
	if err := WritePrometheus(&sb, r2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "# HELP") {
		t.Fatalf("unexpected HELP line:\n%s", sb.String())
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{"a\nb", `a\nb`},
		{`say "hi"`, `say \"hi\"`},
		{`back\slash`, `back\\slash`},
		{"\\\n\"", `\\\n\"`},
	}
	for _, c := range cases {
		if got := escapeLabelValue(c.in); got != c.want {
			t.Errorf("escapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	// escapeHelp leaves quotes alone — HELP text is not quoted.
	if got := escapeHelp("a \"quoted\"\nword\\"); got != "a \"quoted\"\\nword\\\\" {
		t.Errorf("escapeHelp = %q", got)
	}
}
