package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Event is one typed, structured observability event published on a Bus.
// The engine and the WAL publish events at their instrumentation points
// (the taxonomy is listed in DESIGN.md "Observability"); subscribers tail
// them live (the /events SSE endpoint of cmd/wfrun) and the flight
// recorder retains the last N for post-mortem dumps. Fields are omitted
// from JSON when empty so a JSONL dump stays compact.
type Event struct {
	// Kind is the dotted event type, e.g. "instance.failed" or
	// "wal.flush". Kinds are a stable vocabulary (see the Ev* constants).
	Kind string `json:"kind"`
	// Instance is the process-instance ID, "" for events not tied to one
	// (WAL flushes, segment rotations, checkpoints).
	Instance string `json:"inst,omitempty"`
	// Path and Iter locate the activity execution within the instance,
	// exactly as in the audit trail.
	Path string `json:"path,omitempty"`
	Iter int    `json:"iter,omitempty"`
	// Program is the program name for activity events.
	Program string `json:"prog,omitempty"`
	// Cause carries the failure cause for failure/panic events.
	Cause string `json:"cause,omitempty"`
	// RC is the return code for activity completions.
	RC int64 `json:"rc,omitempty"`
	// N is the event's cardinal payload: batch size for wal.flush, queue
	// depth for fleet transitions, segment index for wal.rotate,
	// checkpoint sequence for wal.checkpoint, attempt number for
	// activity.retry.
	N int64 `json:"n,omitempty"`
	// Shard is the engine-shard index for shard.* events published by a
	// sharded fleet (engine.Fleet); 0 and omitted elsewhere. shard.rebalance
	// reports the target shard here and the home shard in N.
	Shard int `json:"shard,omitempty"`
	// DurNs attributes latency to the phase that ends with this event:
	// queue wait for activity.dispatch, program wall time for
	// activity.finished, backoff for activity.retry, sync time for
	// wal.fsync / wal.flush. 0 when not applicable.
	DurNs int64 `json:"dur_ns,omitempty"`
	// At is a monotonic timestamp in nanoseconds since process start
	// (obs.Now), so event inter-arrival and per-phase latency can be
	// computed live without wall-clock skew.
	At int64 `json:"at_ns"`
}

// epoch anchors the monotonic event clock.
var epoch = time.Now()

// Now returns the monotonic event timestamp: nanoseconds since process
// start. Differences between two Now values are immune to wall-clock
// adjustments (time.Since uses the runtime's monotonic reading).
func Now() int64 { return time.Since(epoch).Nanoseconds() }

// Bus is a lock-cheap publish/subscribe fan-out for Events. Publishing
// never blocks: channel subscribers have bounded queues and a publish
// that finds a queue full drops the event for that subscriber and
// advances an explicit drop counter instead of stalling the engine.
// Synchronous taps (Attach) are invoked inline — the flight recorder
// attaches this way so its ring buffer never misses an event.
//
// The hot path is one atomic load when nothing is attached, and an
// RWMutex read lock plus a non-blocking channel send per subscriber
// otherwise. Subscribe/Unsubscribe/Attach take the write lock and are
// safe to call from any goroutine at any time (see the churn race test).
type Bus struct {
	mu       sync.RWMutex
	subs     []*Subscription
	taps     []*tap
	attached atomic.Int64

	published atomic.Int64
	dropped   atomic.Int64
}

// tap is one synchronous observer.
type tap struct{ fn func(Event) }

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// DefaultBus is the process-wide event bus. The engine publishes here
// unless redirected (engine.WithBus); the WAL's flush/rotate/checkpoint
// events always publish here, mirroring how wal metrics default to
// obs.Default.
var DefaultBus = NewBus()

// Subscription is one bounded-queue bus subscriber. Receive from Events
// and Close when done; a full queue drops events (Drops counts them)
// rather than blocking the publisher.
type Subscription struct {
	ch     chan Event
	drops  atomic.Int64
	closed atomic.Bool
}

// Events is the subscriber's receive channel. It is closed by
// Subscription.Close (never by the bus), so a draining range loop ends
// when the subscriber itself unsubscribes.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Drops reports how many events were dropped because this subscriber's
// queue was full at publish time.
func (s *Subscription) Drops() int64 { return s.drops.Load() }

// Subscribe registers a subscriber with a queue of the given capacity
// (minimum 1). The caller must drain Events faster than the publish rate
// or accept drops.
func (b *Bus) Subscribe(buffer int) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{ch: make(chan Event, buffer)}
	b.mu.Lock()
	b.subs = append(b.subs, s)
	b.mu.Unlock()
	b.attached.Add(1)
	return s
}

// Unsubscribe detaches s and closes its channel. Safe to call while
// publishers are active and idempotent per subscription.
func (b *Bus) Unsubscribe(s *Subscription) {
	if s == nil || !s.closed.CompareAndSwap(false, true) {
		return
	}
	b.mu.Lock()
	for i, cur := range b.subs {
		if cur == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	// Close under the write lock: publishers hold the read lock while
	// sending, so no send can race the close.
	close(s.ch)
	b.mu.Unlock()
	b.attached.Add(-1)
}

// Attach registers a synchronous observer called inline on every publish
// (so it must be fast and must not block — the flight recorder's ring
// insert is the intended shape). The returned function detaches it.
func (b *Bus) Attach(fn func(Event)) (detach func()) {
	t := &tap{fn: fn}
	b.mu.Lock()
	b.taps = append(b.taps, t)
	b.mu.Unlock()
	b.attached.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			for i, cur := range b.taps {
				if cur == t {
					b.taps = append(b.taps[:i], b.taps[i+1:]...)
					break
				}
			}
			b.mu.Unlock()
			b.attached.Add(-1)
		})
	}
}

// Publish delivers ev to every attachment. With nothing attached it is a
// single atomic load; it never blocks regardless. A zero At is stamped
// with Now().
func (b *Bus) Publish(ev Event) {
	if b.attached.Load() == 0 {
		return
	}
	if ev.At == 0 {
		ev.At = Now()
	}
	b.mu.RLock()
	for _, t := range b.taps {
		t.fn(ev)
	}
	for _, s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			s.drops.Add(1)
			b.dropped.Add(1)
		}
	}
	b.mu.RUnlock()
	b.published.Add(1)
}

// Active reports whether anything is attached. Publishers that must
// assemble an event (map lookups, string formatting) check this first so
// the idle cost stays one atomic load.
func (b *Bus) Active() bool { return b.attached.Load() > 0 }

// Published reports how many events were delivered to at least one
// attachment (publishes with nothing attached are not counted — they
// cost one atomic load and carry no information).
func (b *Bus) Published() int64 { return b.published.Load() }

// Dropped reports the aggregate events dropped across all subscribers.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// Subscribers reports how many channel subscribers are attached.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// The event taxonomy. Instance lifecycle and activity events are
// published by the engine; wal.* by the log implementations; fleet.* by
// engine.RunFleet; shard.* by the sharded engine.Fleet. DESIGN.md
// "Observability" documents each kind's payload fields.
const (
	EvInstanceCreated  = "instance.created"  // CreateInstance returned; Program = template name
	EvInstanceStarted  = "instance.started"  // Start began navigating
	EvInstanceFinished = "instance.finished" // instance ran to completion
	EvInstanceFailed   = "instance.failed"   // instance degraded to failed; Cause set
	EvInstanceCanceled = "instance.canceled" // user intervention

	EvActivityDispatch = "activity.dispatch" // activity left the queue; DurNs = queue wait
	EvActivityFinished = "activity.finished" // completion; RC + DurNs = program wall time
	EvActivityRetry    = "activity.retry"    // transient failure retried; N = attempt, DurNs = backoff
	EvActivityPanic    = "activity.panic"    // program panicked; Cause set
	EvActivityDeadPath = "activity.deadpath" // dead path elimination
	EvActivityLoop     = "activity.loop"     // exit condition false, rescheduled
	EvCompensation     = "compensation.entered"

	EvWalFsync              = "wal.fsync"               // per-record durable append; DurNs = sync time
	EvWalFlush              = "wal.flush"               // group-commit batch flushed; N = records, DurNs = sync time
	EvWalRotate             = "wal.rotate"              // segment sealed; N = sealed index
	EvWalCheckpoint         = "wal.checkpoint"          // checkpoint written; N = sequence, DurNs = write time
	EvWalCheckpointFallback = "wal.checkpoint_fallback" // damaged checkpoint skipped on load
	EvWalFailed             = "wal.failed"              // storage error sealed the log; Cause set

	EvFleetEnqueue = "fleet.enqueue" // instance admitted, awaiting a worker; N = queue depth
	EvFleetActive  = "fleet.active"  // instance began executing; N = active count
	EvFleetDone    = "fleet.done"    // instance released its worker; N = active count
	EvFleetShed    = "fleet.shed"    // admission queue full, work rejected; N = sheds so far

	EvShardEnqueue   = "shard.enqueue"   // instance admitted to a shard; Shard set, N = shard queue depth
	EvShardActive    = "shard.active"    // instance began executing on its shard; Shard set, N = shard active count
	EvShardDone      = "shard.done"      // instance released its shard worker; Shard set, N = shard active count
	EvShardRebalance = "shard.rebalance" // hot home shard spilled an instance; Shard = target, N = home shard
	EvShardShed      = "shard.shed"      // every shard full, work rejected; Shard = home, N = fleet sheds so far

	EvBreakerOpen     = "breaker.open"      // failure rate tripped the breaker; Program set, Cause = last error
	EvBreakerHalfOpen = "breaker.half_open" // cooldown elapsed, probe admitted; Program set
	EvBreakerClose    = "breaker.close"     // probe succeeded, normal flow resumed; Program set
	EvRetryExhausted  = "retry.exhausted"   // retry budget empty, retry forgone; Program set

	EvArchivePut          = "wal.archive.put"           // blob archived and read-back CRC verified; Cause = blob name, N = bytes
	EvArchiveRetry        = "wal.archive.retry"         // archive op failed, will back off and retry; Cause = error, N = consecutive failures
	EvArchiveBreakerOpen  = "wal.archive.breaker_open"  // consecutive archive failures opened the breaker; N = failures
	EvArchiveBreakerClose = "wal.archive.breaker_close" // archive probe succeeded, uploads resumed
	EvArchiveFetch        = "wal.archive.fetch"         // recovery fetched a blob from the archive; Cause = blob name, N = bytes
)
