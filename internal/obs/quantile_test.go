package obs

import "testing"

func TestQuantileUniformDecade(t *testing.T) {
	// 100 observations spread uniformly over (1ms, 10ms]: every value
	// lands in the 10ms bucket, so the estimator interpolates between
	// the recorded min and the bucket bound.
	r := NewRegistry()
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * 90_000) // 90µs steps: 90µs..9ms
	}
	// Observations span two buckets: 1ms (11 values ≤ 1ms) and 10ms (89).
	p50 := h.Quantile(0.50)
	if p50 < 1_000_000 || p50 > 6_000_000 {
		t.Fatalf("p50 = %d, want within (1ms, 6ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= p50 || p99 > 9_000_000 {
		t.Fatalf("p99 = %d, want (p50, 9ms]", p99)
	}
}

func TestQuantileSingleBucketInterpolatesMinMax(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// All observations in the 100µs bucket, min 20µs, max 80µs: the
	// estimator must stay inside [min, max], not report the 100µs bound.
	for _, ns := range []int64{20_000, 40_000, 60_000, 80_000} {
		h.Observe(ns)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 20_000 || v > 80_000 {
			t.Fatalf("q=%v: %d outside [min, max]", q, v)
		}
	}
	if p0 := h.Quantile(0); p0 != 20_000 {
		t.Fatalf("q=0: %d, want min", p0)
	}
	if p100 := h.Quantile(1); p100 != 80_000 {
		t.Fatalf("q=1: %d, want max", p100)
	}
}

func TestQuantileBimodal(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations at 5µs, 10 slow at 500ms: p50 must sit in the
	// fast mode's bucket, p95/p99 in the slow mode's.
	for i := 0; i < 90; i++ {
		h.Observe(5_000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(500_000_000)
	}
	if p50 := h.Quantile(0.50); p50 > 10_000 {
		t.Fatalf("p50 = %d, want in the 10µs bucket", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 100_000_000 || p95 > 500_000_000 {
		t.Fatalf("p95 = %d, want in the slow mode", p95)
	}
	if p99 := h.Quantile(0.99); p99 < h.Quantile(0.95) || p99 > 500_000_000 {
		t.Fatalf("p99 = %d, want ≥ p95 and ≤ max", p99)
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, ns := range []int64{500, 5_000, 50_000, 500_000, 5_000_000, 50_000_000, 500_000_000, 5_000_000_000, 50_000_000_000} {
		h.Observe(ns) // one observation per bucket including +Inf
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
	// The +Inf bucket must be capped at the recorded max, not infinity.
	if p99 := h.Quantile(0.99); p99 > 50_000_000_000 {
		t.Fatalf("p99 = %d exceeds max", p99)
	}
}

func TestQuantileSizeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("batch")
	// Batch sizes: 50× size 1, 30× size 6, 20× size 40.
	for i := 0; i < 50; i++ {
		h.Observe(1)
	}
	for i := 0; i < 30; i++ {
		h.Observe(6)
	}
	for i := 0; i < 20; i++ {
		h.Observe(40)
	}
	if p50 := h.Quantile(0.50); p50 != 1 {
		t.Fatalf("p50 = %d, want 1", p50)
	}
	if p95 := h.Quantile(0.95); p95 < 32 || p95 > 40 {
		t.Fatalf("p95 = %d, want in (32, 40]", p95)
	}
}

func TestQuantileEmptyAndEdge(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	if v := h.Quantile(0.5); v != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", v)
	}
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 42 {
			t.Fatalf("single observation q=%v: %d, want 42", q, v)
		}
	}
	var snap HistogramSnapshot
	if v := snap.Quantile(0.5); v != 0 {
		t.Fatalf("zero snapshot quantile = %d", v)
	}
}

// TestQuantilePathologicalSnapshots feeds Quantile the inconsistent
// snapshots a counter reset or racing scrape can produce: a declared count
// with no bucket mass, bucket mass exceeding the count, and inverted
// Min/Max. The estimator must not panic and must stay inside [Min, Max].
func TestQuantilePathologicalSnapshots(t *testing.T) {
	cases := []HistogramSnapshot{
		{Count: 5, MinNs: 10, MaxNs: 20}, // no buckets at all
		{Count: 1, MinNs: 10, MaxNs: 20, Buckets: []BucketSnapshot{{LE: 100, Count: 9}}},
		{Count: 3, MinNs: 50, MaxNs: 10, Buckets: []BucketSnapshot{{LE: -1, Count: 3}}},
		{Count: 2, MinNs: 0, MaxNs: 0, Buckets: []BucketSnapshot{{LE: 10, Count: 2}}},
	}
	for i, snap := range cases {
		for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
			v := snap.Quantile(q)
			lo, hi := snap.MinNs, snap.MaxNs
			if lo > hi {
				lo, hi = hi, lo
			}
			if v < lo || v > hi {
				t.Fatalf("case %d q=%v: %d outside [%d, %d]", i, q, v, lo, hi)
			}
		}
	}
}
