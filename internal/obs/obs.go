// Package obs is the reproduction's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges with
// high-watermarks, and latency histograms with fixed nanosecond buckets)
// plus a lightweight span/trace model derived from the engine's audit
// trail. The paper's §3.3 positions monitoring and audit trails as the
// capability that distinguishes a WFMS from a bare transaction monitor;
// obs turns that capability into numbers a production system can ship:
// the engine and the WAL record into a Registry, cmd/wfrun dumps it or
// serves it over HTTP (Prometheus text format), and cmd/wfbench embeds
// snapshots in its machine-readable reports.
//
// Everything is safe for concurrent use and allocation-free on the hot
// path: instruments are looked up once (Registry.Counter et al. are
// get-or-create) and then updated with single atomic operations.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to remain monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value (queue depth, inflight workers). It
// tracks the high-watermark seen so far, so a dump-on-exit still shows how
// deep the queue ever got.
type Gauge struct{ v, max atomic.Int64 }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.bumpMax(g.v.Add(delta)) }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
	g.bumpMax(n)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-watermark.
func (g *Gauge) Max() int64 { return g.max.Load() }

func (g *Gauge) bumpMax(n int64) {
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// DefaultBuckets are the latency histogram bucket upper bounds in
// nanoseconds: decades from 1µs to 10s. Observations above the last bound
// land in the implicit +Inf bucket. Fixed buckets keep snapshots
// schema-stable across runs, which is what lets BENCH_*.json files be
// diffed between PRs.
var DefaultBuckets = []int64{
	1_000,          // 1µs
	10_000,         // 10µs
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
}

// SizeBuckets are the bucket upper bounds of size histograms (counts of
// things, not durations): powers of two from 1 to 128, sized for batch
// and queue cardinalities. Like DefaultBuckets they are fixed so
// snapshots stay schema-stable.
var SizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// Histogram accumulates observations into fixed buckets (DefaultBuckets
// for latency histograms, SizeBuckets for size histograms) plus
// count/sum/min/max. All updates are lock-free. Obtain histograms from a
// Registry (a zero-value Histogram mis-tracks its minimum and has no
// bucket bounds).
type Histogram struct {
	counts     [len9]atomic.Int64 // bounds + overflow
	count, sum atomic.Int64
	min, max   atomic.Int64
	bounds     []int64 // len == len9-1; DefaultBuckets or SizeBuckets
}

const len9 = 9 // len(DefaultBuckets) + 1 overflow bucket

func newHistogram(bounds []int64) *Histogram {
	h := &Histogram{bounds: bounds}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one observation (nanoseconds for latency histograms,
// a unitless count for size histograms).
func (h *Histogram) Observe(ns int64) {
	bounds := h.bounds
	if bounds == nil {
		bounds = DefaultBuckets
	}
	i := 0
	for i < len(bounds) && ns > bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.min.Load()
		if ns >= m || h.min.CompareAndSwap(m, ns) {
			break
		}
	}
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. Lookups are get-or-create and safe for concurrent use;
// callers on hot paths should look an instrument up once and keep the
// pointer.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

// SetHelp attaches a help string to the named instrument; the Prometheus
// exposition emits it as a # HELP line (with the 0.0.4 escaping applied
// at render time, so the text may contain backslashes and newlines).
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Help returns the help string attached to name ("" when unset).
func (r *Registry) Help(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

// Default is the process-wide registry. The engine and the WAL record here
// unless explicitly pointed elsewhere (engine.WithMetrics,
// wal.WithMetricsRegistry); cmd/wfrun -metrics dumps it.
var Default = NewRegistry()

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the latency histogram (DefaultBuckets bounds) with
// the given name, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.histogram(name, DefaultBuckets)
}

// SizeHistogram returns the size histogram (SizeBuckets bounds) with the
// given name, creating it if needed. A name keeps the bounds it was first
// created with; don't register the same name through both constructors.
func (r *Registry) SizeHistogram(name string) *Histogram {
	return r.histogram(name, SizeBuckets)
}

func (r *Registry) histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// GaugeSnapshot is the frozen state of one gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// BucketSnapshot is one histogram bucket: LE is the inclusive upper bound
// in nanoseconds (-1 for the +Inf overflow bucket) and Count the
// non-cumulative number of observations that landed in it.
type BucketSnapshot struct {
	LE    int64 `json:"le_ns"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	SumNs   int64            `json:"sum_ns"`
	MinNs   int64            `json:"min_ns"`
	MaxNs   int64            `json:"max_ns"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Snapshot is a frozen, JSON-serializable view of a registry. Map keys
// marshal in sorted order, so equal registries produce byte-identical
// JSON — the schema stability the benchmark trajectory relies on.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state. Instruments are read with
// individual atomic loads; a snapshot taken while writers are active is a
// consistent-enough monitoring view, not a transaction.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]GaugeSnapshot, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.SnapshotNow()
		}
	}
	return s
}

// SnapshotNow freezes this histogram's current state (the same view
// Registry.Snapshot embeds). Buckets are read with individual atomic
// loads, so a snapshot taken under concurrent writers is a monitoring
// view, not a transaction.
func (h *Histogram) SnapshotNow() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.Count(), SumNs: h.Sum(), MaxNs: h.max.Load()}
	if min := h.min.Load(); hs.Count > 0 && min != math.MaxInt64 {
		hs.MinNs = min
	}
	bounds := h.bounds
	if bounds == nil {
		bounds = DefaultBuckets
	}
	hs.Buckets = make([]BucketSnapshot, 0, len9)
	for i, le := range bounds {
		hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: le, Count: h.counts[i].Load()})
	}
	hs.Buckets = append(hs.Buckets, BucketSnapshot{LE: -1, Count: h.counts[len9-1].Load()})
	return hs
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
