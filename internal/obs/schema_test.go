package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestEventGoldenSchema pins the flight-recorder JSONL wire format.
// wfquery (internal/history) ingests these lines long after the process
// that wrote them is gone, so the encoding is a compatibility surface:
// renaming a field, changing its type, or reordering the struct must
// fail this test and force a FlightSchema bump, never silently change
// the bytes on disk.
func TestEventGoldenSchema(t *testing.T) {
	// Every field populated, including Shard — the PR 8 addition that
	// ingestion must not drop when demultiplexing sharded fleets.
	ev := Event{
		Kind:     EvShardRebalance,
		Instance: "wf-0007",
		Path:     "Compensation.C2",
		Iter:     3,
		Program:  "book_car",
		Cause:    "boom",
		RC:       4,
		N:        2,
		Shard:    5,
		DurNs:    1500,
		At:       123456789,
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"kind":"shard.rebalance","inst":"wf-0007","path":"Compensation.C2","iter":3,"prog":"book_car","cause":"boom","rc":4,"n":2,"shard":5,"dur_ns":1500,"at_ns":123456789}`
	if string(b) != golden {
		t.Fatalf("obs.Event wire format drifted:\n got %s\nwant %s\n(bump obs.FlightSchema and teach internal/history the new layout)", b, golden)
	}

	// Field-by-field pin: names, JSON tags and Go types, in order. A new
	// field must be added here deliberately (and history/v1 extended).
	want := []struct{ name, tag, typ string }{
		{"Kind", "kind", "string"},
		{"Instance", "inst,omitempty", "string"},
		{"Path", "path,omitempty", "string"},
		{"Iter", "iter,omitempty", "int"},
		{"Program", "prog,omitempty", "string"},
		{"Cause", "cause,omitempty", "string"},
		{"RC", "rc,omitempty", "int64"},
		{"N", "n,omitempty", "int64"},
		{"Shard", "shard,omitempty", "int"},
		{"DurNs", "dur_ns,omitempty", "int64"},
		{"At", "at_ns", "int64"},
	}
	rt := reflect.TypeOf(Event{})
	if rt.NumField() != len(want) {
		t.Fatalf("obs.Event has %d fields, golden schema pins %d — extend the golden test and history/v1 together", rt.NumField(), len(want))
	}
	for i, w := range want {
		f := rt.Field(i)
		if f.Name != w.name || f.Tag.Get("json") != w.tag || f.Type.String() != w.typ {
			t.Errorf("field %d = %s `json:%q` %s, want %s `json:%q` %s",
				i, f.Name, f.Tag.Get("json"), f.Type, w.name, w.tag, w.typ)
		}
	}

	// Zero-valued optional fields stay off the wire (dumps stay compact
	// and ingestion treats absence as zero).
	min, err := json.Marshal(Event{Kind: EvWalFlush, At: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(min) != `{"kind":"wal.flush","at_ns":7}` {
		t.Fatalf("omitempty contract drifted: %s", min)
	}
}

// TestDumpJSONLSchemaStamp pins the dump header: the first line of every
// flight-recorder dump names the schema so ingestion can hard-fail on
// vocabulary drift instead of misreading events.
func TestDumpJSONLSchemaStamp(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Event{Kind: EvInstanceFinished, Instance: "i1", At: 1})
	var buf bytes.Buffer
	if err := r.DumpJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("dump has %d lines, want header + 1 event:\n%s", len(lines), buf.String())
	}
	if lines[0] != `{"schema":"flight/v1"}` {
		t.Fatalf("header line = %s, want {\"schema\":\"flight/v1\"}", lines[0])
	}
}
