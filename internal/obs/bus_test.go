package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestBusDeliversInOrder(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(16)
	defer b.Unsubscribe(sub)
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: EvActivityFinished, N: int64(i)})
	}
	for i := 0; i < 10; i++ {
		ev := <-sub.Events()
		if ev.N != int64(i) {
			t.Fatalf("event %d: got N=%d", i, ev.N)
		}
		if ev.At == 0 {
			t.Fatalf("event %d: At not stamped", i)
		}
	}
	if got := b.Published(); got != 10 {
		t.Fatalf("published = %d, want 10", got)
	}
	if got := b.Dropped(); got != 0 {
		t.Fatalf("dropped = %d, want 0", got)
	}
}

func TestBusNeverBlocksAndCountsDrops(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(4)
	defer b.Unsubscribe(sub)
	// Nobody drains: the 5th..20th publishes must drop, not block. If
	// Publish blocked this test would deadlock (single goroutine).
	for i := 0; i < 20; i++ {
		b.Publish(Event{Kind: EvWalFlush})
	}
	if got := sub.Drops(); got != 16 {
		t.Fatalf("subscriber drops = %d, want 16", got)
	}
	if got := b.Dropped(); got != 16 {
		t.Fatalf("bus drops = %d, want 16", got)
	}
}

func TestBusIdleFastPathSkipsStamping(t *testing.T) {
	b := NewBus()
	b.Publish(Event{Kind: EvWalFsync})
	if got := b.Published(); got != 0 {
		t.Fatalf("published with no attachments = %d, want 0", got)
	}
}

func TestBusSynchronousTapSeesEverything(t *testing.T) {
	b := NewBus()
	var got []string
	detach := b.Attach(func(ev Event) { got = append(got, ev.Kind) })
	b.Publish(Event{Kind: EvInstanceCreated})
	b.Publish(Event{Kind: EvInstanceFinished})
	detach()
	detach() // idempotent
	b.Publish(Event{Kind: EvInstanceFailed})
	want := []string{EvInstanceCreated, EvInstanceFinished}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("tap saw %v, want %v", got, want)
	}
}

func TestBusUnsubscribeClosesChannel(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1)
	b.Publish(Event{Kind: EvFleetDone})
	b.Unsubscribe(sub)
	b.Unsubscribe(sub) // idempotent
	var kinds []string
	for ev := range sub.Events() {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 1 || kinds[0] != EvFleetDone {
		t.Fatalf("drained %v", kinds)
	}
	if b.Subscribers() != 0 {
		t.Fatalf("subscribers = %d after unsubscribe", b.Subscribers())
	}
}

// TestBusSubscriberChurnRace hammers subscribe/unsubscribe from many
// goroutines while others publish a fleet's worth of events. It exists
// to run under -race (the CI test job runs go test -race ./...): any
// locking mistake in Bus shows up as a race report or a send-on-closed
// panic here.
func TestBusSubscriberChurnRace(t *testing.T) {
	b := NewBus()
	const publishers, churners, events = 4, 8, 500
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				b.Publish(Event{Kind: EvActivityFinished, Instance: fmt.Sprintf("inst-%d", p), N: int64(i)})
			}
		}(p)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sub := b.Subscribe(8)
				// Drain a little, then leave; the publisher must drop,
				// never block or panic.
				for j := 0; j < 4; j++ {
					select {
					case <-sub.Events():
					default:
					}
				}
				detach := b.Attach(func(Event) {})
				detach()
				b.Unsubscribe(sub)
			}
		}()
	}
	wg.Wait()
	if b.Subscribers() != 0 {
		t.Fatalf("subscribers leaked: %d", b.Subscribers())
	}
}

func TestRecorderRingEvictsOldest(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Record(Event{Kind: EvActivityFinished, N: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 || r.Len() != 3 {
		t.Fatalf("retained %d events", len(evs))
	}
	for i, want := range []int64{3, 4, 5} {
		if evs[i].N != want {
			t.Fatalf("event %d: N=%d, want %d", i, evs[i].N, want)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("total = %d, want 5", r.Total())
	}
}

func TestRecorderDumpJSONL(t *testing.T) {
	r := NewRecorder(8)
	b := NewBus()
	detach := b.Attach(r.Record)
	defer detach()
	b.Publish(Event{Kind: EvInstanceCreated, Instance: "inst-1"})
	b.Publish(Event{Kind: EvInstanceFailed, Instance: "inst-1", Cause: "boom"})
	var buf bytes.Buffer
	if err := r.DumpJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty dump")
	}
	var header struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil || header.Schema != FlightSchema {
		t.Fatalf("first line %q is not the %s schema header (%v)", sc.Text(), FlightSchema, err)
	}
	var lines []Event
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if len(lines) != 2 {
		t.Fatalf("dumped %d event lines, want 2", len(lines))
	}
	if lines[0].Kind != EvInstanceCreated || lines[1].Kind != EvInstanceFailed {
		t.Fatalf("order: %s, %s", lines[0].Kind, lines[1].Kind)
	}
	if lines[1].Cause != "boom" {
		t.Fatalf("cause lost: %+v", lines[1])
	}
	if lines[0].At == 0 || lines[1].At < lines[0].At {
		t.Fatalf("timestamps not monotone: %d, %d", lines[0].At, lines[1].At)
	}
}

func TestEventJSONFieldNames(t *testing.T) {
	ev := Event{Kind: EvWalFlush, Instance: "inst-1", Path: "A", Iter: 2,
		Program: "p", Cause: "c", RC: 4, N: 8, DurNs: 16, At: 32}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"kind"`, `"inst"`, `"path"`, `"iter"`, `"prog"`, `"cause"`, `"rc"`, `"n"`, `"dur_ns"`, `"at_ns"`} {
		if !strings.Contains(string(b), key) {
			t.Fatalf("marshal missing %s: %s", key, b)
		}
	}
	// Zero-valued optional fields stay off the wire.
	b, _ = json.Marshal(Event{Kind: EvWalFsync, At: 1})
	if got := string(b); got != `{"kind":"wal.fsync","at_ns":1}` {
		t.Fatalf("sparse marshal: %s", got)
	}
}
