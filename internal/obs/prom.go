package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promName maps a dotted metric name to the Prometheus identifier charset:
// every character outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is (gauges additionally
// publish a <name>_max high-watermark series), histograms with cumulative
// le-labeled buckets plus _sum and _count. Series are sorted by name so
// the output is deterministic.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		g := snap.Gauges[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n# TYPE %s_max gauge\n%s_max %d\n",
			p, p, g.Value, p, p, g.Max); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		h := snap.Histograms[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.LE >= 0 {
				le = fmt.Sprint(b.LE)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", p, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", p, h.SumNs, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as indented JSON — the
// expvar-style view of the same data.
func WriteJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry over HTTP: Prometheus text format by
// default, the JSON snapshot with ?format=json. Mount it wherever the
// embedding process wants its /metrics endpoint (cmd/wfrun -metrics-addr).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}
