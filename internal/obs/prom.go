package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promName maps a dotted metric name to the Prometheus identifier charset:
// every character outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// escapeHelp applies the 0.0.4 escaping for # HELP text: backslash
// becomes \\ and line feed becomes \n (a literal backslash-n), so the
// comment stays a single line.
func escapeHelp(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeLabelValue applies the 0.0.4 escaping for label values: the HELP
// escapes plus double-quote, since values are rendered inside quotes.
func escapeLabelValue(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '"':
			sb.WriteString(`\"`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// writeHelp emits the # HELP line for the series p if the registry has
// help text registered under the instrument's dotted name n.
func writeHelp(w io.Writer, r *Registry, n, p string) error {
	h := r.Help(n)
	if h == "" {
		return nil
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", p, escapeHelp(h))
	return err
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as-is (gauges additionally
// publish a <name>_max high-watermark series), histograms with cumulative
// le-labeled buckets plus _sum and _count. Instruments with registered
// help text (Registry.SetHelp) get a # HELP line with the format's
// escaping rules applied (\ and newline in help text; \, newline and "
// in label values). Series are sorted by name so the output is
// deterministic.
func WritePrometheus(w io.Writer, r *Registry) error {
	snap := r.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		if err := writeHelp(w, r, n, p); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		g := snap.Gauges[n]
		if err := writeHelp(w, r, n, p); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n# TYPE %s_max gauge\n%s_max %d\n",
			p, p, g.Value, p, p, g.Max); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := promName(n)
		h := snap.Histograms[n]
		if err := writeHelp(w, r, n, p); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.LE >= 0 {
				le = fmt.Sprint(b.LE)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", p, escapeLabelValue(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", p, h.SumNs, p, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as indented JSON — the
// expvar-style view of the same data.
func WriteJSON(w io.Writer, r *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the registry over HTTP: Prometheus text format by
// default, the JSON snapshot with ?format=json. Mount it wherever the
// embedding process wants its /metrics endpoint (cmd/wfrun -metrics-addr).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}
