package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("q")
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 || g.Max() != 3 {
		t.Fatalf("gauge = %d max %d, want 2 max 3", g.Value(), g.Max())
	}
	g.Set(7)
	g.Set(1)
	if g.Value() != 1 || g.Max() != 7 {
		t.Fatalf("gauge = %d max %d, want 1 max 7", g.Value(), g.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// One observation per decade boundary (inclusive upper bound), plus an
	// overflow.
	for _, ns := range []int64{1_000, 10_000, 100_000, 1_000_000, 20_000_000_000} {
		h.Observe(ns)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.MinNs != 1_000 || s.MaxNs != 20_000_000_000 {
		t.Fatalf("min/max = %d/%d", s.MinNs, s.MaxNs)
	}
	wantCounts := map[int64]int64{1_000: 1, 10_000: 1, 100_000: 1, 1_000_000: 1, -1: 1}
	for _, b := range s.Buckets {
		if b.Count != wantCounts[b.LE] {
			t.Errorf("bucket le=%d count=%d, want %d", b.LE, b.Count, wantCounts[b.LE])
		}
	}
	if len(s.Buckets) != len(DefaultBuckets)+1 {
		t.Fatalf("bucket count = %d", len(s.Buckets))
	}
}

func TestSizeHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.SizeHistogram("batch")
	for _, n := range []int64{1, 2, 3, 64, 500} {
		h.Observe(n)
	}
	if r.SizeHistogram("batch") != h {
		t.Fatal("SizeHistogram is not get-or-create")
	}
	s := r.Snapshot().Histograms["batch"]
	if s.Count != 5 || s.MinNs != 1 || s.MaxNs != 500 {
		t.Fatalf("count/min/max = %d/%d/%d", s.Count, s.MinNs, s.MaxNs)
	}
	wantCounts := map[int64]int64{1: 1, 2: 1, 4: 1, 64: 1, -1: 1}
	for _, b := range s.Buckets {
		if b.Count != wantCounts[b.LE] {
			t.Errorf("bucket le=%d count=%d, want %d", b.LE, b.Count, wantCounts[b.LE])
		}
	}
	if len(s.Buckets) != len(SizeBuckets)+1 {
		t.Fatalf("bucket count = %d", len(s.Buckets))
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Histogram("never")
	s := r.Snapshot().Histograms["never"]
	if s.Count != 0 || s.MinNs != 0 || s.MaxNs != 0 || s.SumNs != 0 {
		t.Fatalf("empty histogram snapshot: %+v", s)
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run with -race. Totals must be exact — the registry promises
// lock-free but lossless accounting.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave lookups with updates so map access races are
			// exercised too.
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(w*perWorker + i + 1))
				r.Gauge("g").Add(-1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		// Concurrent snapshots must not race with writers.
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	if h.MinNs != 1 || h.MaxNs != workers*perWorker {
		t.Fatalf("histogram min/max = %d/%d, want 1/%d", h.MinNs, h.MaxNs, workers*perWorker)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != h.Count {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, h.Count)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.program.invocations").Add(3)
	r.Gauge("engine.queue.depth").Set(2)
	r.Histogram("wal.fsync_ns").Observe(5_000)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE engine_program_invocations counter",
		"engine_program_invocations 3",
		"engine_queue_depth 2",
		"engine_queue_depth_max 2",
		"# TYPE wal_fsync_ns histogram",
		`wal_fsync_ns_bucket{le="10000"} 1`,
		`wal_fsync_ns_bucket{le="+Inf"} 1`,
		"wal_fsync_ns_sum 5000",
		"wal_fsync_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	h := Handler(r)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x 1") {
		t.Fatalf("prom body: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("json body: %v", err)
	}
	if snap.Counters["x"] != 1 {
		t.Fatalf("json snapshot: %+v", snap)
	}
}

func TestTraceRenderAndJSON(t *testing.T) {
	root := &Span{Name: "p", Kind: "instance", Start: 0, End: 5, Status: "ok"}
	child := &Span{
		Name: "a", Kind: "activity", Path: "a", Start: 1, End: 4, Status: "ok",
		Attrs: map[string]string{"program": "ok", "rc": "0"},
	}
	child.AddEvent("ready", 1, "")
	root.Children = append(root.Children, child)
	tr := &Trace{TraceID: "inst-1", Process: "p", Root: root}
	out := tr.Render()
	if !strings.Contains(out, "p [instance] 0s..5s ok") || !strings.Contains(out, "  a [activity] 1s..4s ok program=ok rc=0 events=1") {
		t.Fatalf("render:\n%s", out)
	}
	b, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Root.Children[0].Duration() != 3 {
		t.Fatalf("round trip: %+v", back.Root)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(1)
	one, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	two, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(one) != string(two) {
		t.Fatalf("snapshot JSON unstable:\n%s\n%s", one, two)
	}
}
