package obs

// Quantile estimates the value at quantile q (0 ≤ q ≤ 1, e.g. 0.5 for
// the median, 0.99 for p99) from the snapshot's buckets, in the
// histogram's native unit (nanoseconds for latency histograms, a count
// for size histograms).
//
// The estimate interpolates linearly inside the bucket that contains the
// target rank, the standard fixed-bucket estimator (what Prometheus'
// histogram_quantile computes server-side). Because the decade/size
// bucket bounds are coarse the estimate is coarse too — accurate to the
// containing bucket, not beyond — but it is monotone in q and exact at
// the recorded Min/Max extremes, which the estimator uses to tighten the
// first and +Inf buckets. An empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.MinNs
	}
	if q >= 1 {
		return h.MaxNs
	}
	rank := q * float64(h.Count)
	var cum float64
	lower := float64(h.MinNs)
	for _, b := range h.Buckets {
		upper := float64(b.LE)
		if b.LE < 0 || upper > float64(h.MaxNs) {
			// The +Inf bucket — and any bucket beyond the recorded
			// maximum — cannot contain values above MaxNs.
			upper = float64(h.MaxNs)
		}
		if upper < lower {
			upper = lower
		}
		if b.Count > 0 {
			if cum+float64(b.Count) >= rank {
				frac := (rank - cum) / float64(b.Count)
				v := int64(lower + frac*(upper-lower))
				if v < h.MinNs {
					v = h.MinNs
				}
				if v > h.MaxNs {
					v = h.MaxNs
				}
				return v
			}
			cum += float64(b.Count)
		}
		if upper > lower {
			lower = upper
		}
	}
	return h.MaxNs
}

// Quantile estimates the value at quantile q from the histogram's
// current state; see HistogramSnapshot.Quantile for the estimator.
func (h *Histogram) Quantile(q float64) int64 { return h.SnapshotNow().Quantile(q) }
