package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Recorder is a fixed-size ring-buffer flight recorder: it retains the
// last N events and dumps them as JSONL on demand (or on failure — the
// CLIs dump it when a run fails). Attach it to a Bus synchronously so it
// never misses an event:
//
//	rec := obs.NewRecorder(1024)
//	detach := bus.Attach(rec.Record)
//	defer detach()
//
// The ring insert is a mutex-guarded copy of one small struct, cheap
// enough to sit on the publish path (B11 gates the overhead at <5%).
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int   // index of the next slot to overwrite
	total int64 // events ever recorded
}

// DefaultRecorderSize is the ring capacity used by the CLIs when the
// caller does not choose one: enough to hold the full event tail of a
// mid-size fleet while staying a few hundred KB of memory.
const DefaultRecorderSize = 4096

// NewRecorder returns a recorder retaining the last n events (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{ring: make([]Event, 0, n)}
}

// Record inserts ev, evicting the oldest retained event when full. It is
// safe for concurrent use and has the signature Bus.Attach expects.
func (r *Recorder) Record(ev Event) {
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[r.next] = ev
		r.next = (r.next + 1) % cap(r.ring)
	}
	r.total++
	r.mu.Unlock()
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Total reports how many events were ever recorded, including evicted
// ones; Total-Len is the number lost to the ring bound.
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events oldest-first. The slice is a copy;
// the caller may keep it.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) == cap(r.ring) {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}

// FlightSchema identifies the flight-recorder JSONL dump layout. The
// first line of every dump is a header object carrying it, so ingestion
// tooling (wfquery) can refuse files whose event vocabulary it does not
// understand instead of silently misreading them. Bump it when an
// obs.Event field changes name, type or meaning — the golden-schema test
// in schema_test.go pins the current wire format.
const FlightSchema = "flight/v1"

// DumpJSONL writes a schema header line followed by the retained events
// oldest-first, one JSON object per line — the flight-recorder dump
// format consumed by post-mortem tooling (wfquery ingestion) and
// uploaded as a CI artifact for soak runs.
func (r *Recorder) DumpJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"schema\":%q}\n", FlightSchema); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpFile writes the JSONL dump to path, truncating any existing file.
func (r *Recorder) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.DumpJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
