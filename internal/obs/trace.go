package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// This file defines the span/trace model: a tree of timed spans with
// point events attached, the shape distributed tracers (OpenTelemetry,
// Zipkin) standardized. Here a trace is *derived* from an instance's
// audit trail after the fact rather than emitted live — the audit trail
// already is a total order of timestamped events (§3.3 "monitoring"), so
// tracing costs the engine nothing beyond what auditing already pays.
// engine.(*Instance).Trace does the derivation.

// Span is one timed operation: the whole instance, or one activity
// execution (one exit-condition iteration). Start and End are engine
// clock values (seconds with the default wall clock; tests inject logical
// clocks, so durations can be exact in tests and coarse in production).
type Span struct {
	// Name is the display name: the process name for the instance span,
	// the activity name for activity spans.
	Name string `json:"name"`
	// Kind is "instance" or "activity".
	Kind string `json:"kind"`
	// Path is the full activity path within the instance ("" for the
	// instance span); Iter the exit-condition iteration.
	Path  string `json:"path,omitempty"`
	Iter  int    `json:"iter,omitempty"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
	// Status is "ok", "failed", or "open" (never completed — a crashed or
	// still-running execution).
	Status string `json:"status"`
	// Attrs carries span attributes: "program", "rc", "cause".
	Attrs map[string]string `json:"attrs,omitempty"`
	// Events are point-in-time occurrences within the span (ready, looped,
	// connector evaluations, work item flow, ...).
	Events []SpanEvent `json:"events,omitempty"`
	// Children are nested spans: activity spans under the instance span,
	// block/subprocess member executions under their owner's span.
	Children []*Span `json:"children,omitempty"`
}

// SpanEvent is a point event attached to a span.
type SpanEvent struct {
	Name   string `json:"name"`
	At     int64  `json:"at"`
	Detail string `json:"detail,omitempty"`
}

// Trace is a whole instance execution as a span tree.
type Trace struct {
	TraceID string `json:"trace_id"`
	Process string `json:"process"`
	Root    *Span  `json:"root"`
}

// Duration returns End - Start.
func (s *Span) Duration() int64 { return s.End - s.Start }

// AddEvent appends a point event.
func (s *Span) AddEvent(name string, at int64, detail string) {
	s.Events = append(s.Events, SpanEvent{Name: name, At: at, Detail: detail})
}

// JSON marshals the trace as indented JSON.
func (t *Trace) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// Render returns a human-readable tree, one span per line:
//
//	travel [instance] 0s..5s ok
//	  Forward [activity] 0s..3s ok program=copy_input
func (t *Trace) Render() string {
	var sb strings.Builder
	renderSpan(&sb, t.Root, 0)
	return sb.String()
}

func renderSpan(sb *strings.Builder, s *Span, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "%s [%s] %ds..%ds %s", s.Name, s.Kind, s.Start, s.End, s.Status)
	if p := s.Attrs["program"]; p != "" {
		fmt.Fprintf(sb, " program=%s", p)
	}
	if rc := s.Attrs["rc"]; rc != "" {
		fmt.Fprintf(sb, " rc=%s", rc)
	}
	if c := s.Attrs["cause"]; c != "" {
		fmt.Fprintf(sb, " cause=%q", c)
	}
	if s.Iter > 0 {
		fmt.Fprintf(sb, " iter=%d", s.Iter)
	}
	if n := len(s.Events); n > 0 {
		fmt.Fprintf(sb, " events=%d", n)
	}
	sb.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(sb, c, depth+1)
	}
}
