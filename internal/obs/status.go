package obs

// This file defines the wire types of cmd/wfrun's /statusz endpoint.
// They live in obs (not cmd/wfrun) so cmd/wftop decodes the same structs
// the server encodes — the schema cannot drift between the two binaries.

// Status is the /statusz JSON payload: a point-in-time operational view
// of a running wfrun process — per-instance state, fleet gauges,
// latency quantiles derived from histogram snapshots, and event-bus
// health. It complements /metrics (raw instruments) with the digested
// view a fleet monitor renders directly.
type Status struct {
	// UptimeNs is monotonic nanoseconds since process start (obs.Now).
	UptimeNs int64 `json:"uptime_ns"`
	// Instances lists every instance the engine has created, in creation
	// order.
	Instances []StatusInstance `json:"instances,omitempty"`
	// States counts instances by status ("created", "running",
	// "finished", "failed", "canceled").
	States map[string]int `json:"states,omitempty"`
	// Breakers maps program names to their circuit-breaker state
	// ("closed", "open", "half-open") when the run has breakers enabled.
	Breakers map[string]string `json:"breakers,omitempty"`
	// Counters and Gauges are the registry's current counter values and
	// gauge snapshots (same keys as the metrics snapshot).
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]GaugeSnapshot `json:"gauges,omitempty"`
	// Latencies maps histogram names to their quantile digests.
	Latencies map[string]LatencyQuantiles `json:"latencies,omitempty"`
	// Bus reports event-bus throughput and drop health.
	Bus BusStatus `json:"bus"`
}

// StatusInstance is one process instance's state in the /statusz payload.
type StatusInstance struct {
	ID      string `json:"id"`
	Process string `json:"process"`
	Status  string `json:"status"`
	Cause   string `json:"cause,omitempty"`
	// PendingWork is the number of posted-but-unfinished worklist items.
	PendingWork int `json:"pending_work,omitempty"`
}

// LatencyQuantiles is the digested view of one histogram: observation
// count and interpolated p50/p95/p99 (see HistogramSnapshot.Quantile),
// in the histogram's native unit.
type LatencyQuantiles struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// QuantilesOf digests a histogram snapshot into its quantile summary.
func QuantilesOf(h HistogramSnapshot) LatencyQuantiles {
	return LatencyQuantiles{
		Count: h.Count,
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// BusStatus is the event-bus health block of the /statusz payload.
type BusStatus struct {
	Published   int64 `json:"published"`
	Dropped     int64 `json:"dropped"`
	Subscribers int   `json:"subscribers"`
}

// StatusOf assembles the registry- and bus-derived parts of a Status:
// counters, gauges, latency quantiles for every histogram, bus health
// and uptime. The caller (cmd/wfrun) fills in Instances and States from
// the engine, which obs cannot import.
func StatusOf(r *Registry, bus *Bus) *Status {
	snap := r.Snapshot()
	st := &Status{
		UptimeNs: Now(),
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
	}
	if len(snap.Histograms) > 0 {
		st.Latencies = make(map[string]LatencyQuantiles, len(snap.Histograms))
		for name, h := range snap.Histograms {
			st.Latencies[name] = QuantilesOf(h)
		}
	}
	if bus != nil {
		st.Bus = BusStatus{
			Published:   bus.Published(),
			Dropped:     bus.Dropped(),
			Subscribers: bus.Subscribers(),
		}
	}
	return st
}

// Healthz is the /healthz JSON payload: liveness plus staleness of the
// durability pipeline. WalIdleNs / CheckpointIdleNs are nanoseconds
// since the last wal.flush|wal.fsync and wal.checkpoint event (-1 when
// never seen, which is healthy for configurations without that stage).
type Healthz struct {
	OK               bool  `json:"ok"`
	UptimeNs         int64 `json:"uptime_ns"`
	WalIdleNs        int64 `json:"wal_idle_ns"`
	CheckpointIdleNs int64 `json:"checkpoint_idle_ns"`
}
