package fmtm

import (
	"fmt"

	"repro/internal/atm/flexible"
	"repro/internal/expr"
	"repro/internal/model"
)

// resultType names the output structure of a generated flexible process:
// Result = 0 when some execution path committed, 1 when a terminal
// subtransaction aborted with no alternative left, -1 when execution died
// upstream (clean abort before any terminal activity ran). The name is
// prefixed with the process name so several generated processes can share
// one FDL file.
func resultType(spec *flexible.Spec) string { return spec.Name + "_Result" }

// TranslateFlexible converts a flexible transaction into a workflow
// process using the construction of §4.2 / Figure 4 (rules 1–7):
//
//  1. every subtransaction and compensating subtransaction becomes an
//     activity;
//  2. path order becomes control connectors;
//  3. pivots branch on "RC = 0" vs "RC <> 0";
//  4. retriable activities carry the exit condition "RC = 0" so they
//     repeat until the subtransaction commits;
//  5. maximal runs of compensatable subtransactions between decision
//     points collapse into a block whose output records per-activity
//     states;
//  6. each such block gets a mirrored compensation block (NOP start
//     activity + reversed connectors, exactly as in the saga
//     construction);
//  7. switching execution paths routes the failure connector through the
//     compensation blocks of everything committed since the divergence
//     point and on to the next alternative; dead path elimination
//     silences the abandoned branch.
func TranslateFlexible(spec *flexible.Spec) (*model.Process, error) {
	trie, err := flexible.BuildTrie(spec)
	if err != nil {
		return nil, err
	}
	if err := trie.CheckWellFormed(); err != nil {
		return nil, err
	}
	tr := &flexTranslator{
		spec: spec, trie: trie,
		p:          model.NewProcess(spec.Name),
		elemOfNode: make(map[*flexible.Node]*felement),
		usedNames:  make(map[string]bool),
		edgeSeen:   make(map[[2]string]bool),
	}
	tr.p.Description = fmt.Sprintf("flexible transaction %s compiled by Exotica/FMTM (Figure 4 construction)", spec.Name)
	// Reserve the subtransaction and compensation names so generated block
	// names never collide with them.
	for _, sub := range spec.Subs {
		tr.usedNames[sub.Name] = true
		if sub.Compensation != "" {
			tr.usedNames[sub.Compensation] = true
		}
	}
	if err := tr.p.Types.Register(&model.StructType{Name: resultType(spec), Members: []model.Member{
		{Name: "Result", Basic: model.Long, Default: expr.Int(-1)},
	}}); err != nil {
		return nil, err
	}
	tr.p.OutputType = resultType(spec)

	// Rule 5: partition the trie into elements (compensatable segments and
	// standalone activities), then materialize and wire them.
	for _, entry := range trie.Root.Children {
		tr.partition(entry)
	}
	for _, el := range tr.elems {
		if err := tr.materialize(el); err != nil {
			return nil, err
		}
	}
	for _, el := range tr.elems {
		if err := tr.wire(el); err != nil {
			return nil, err
		}
	}
	// Prune unreachable alternatives: a rescue path that no failure can
	// route to (e.g. an alternative shadowed by an all-retriable preferred
	// continuation) has no incoming connector, and in the workflow model an
	// activity without incoming connectors is a *start* activity — it would
	// run unconditionally. Keep only the activities reachable from the
	// entry element.
	tr.prune(tr.elemOfNode[trie.Root.Children[0]].name)
	// Alternatives and shared compensation blocks have several incoming
	// connectors of which at most one fires; they need OR start conditions.
	incoming := map[string]int{}
	for _, c := range tr.p.Control {
		incoming[c.To]++
	}
	for _, a := range tr.p.Activities {
		if incoming[a.Name] > 1 {
			a.Join = model.JoinOr
		}
	}
	if err := tr.p.Validate(nil); err != nil {
		return nil, fmt.Errorf("fmtm: generated flexible process invalid: %w", err)
	}
	return tr.p, nil
}

// felement is one unit of the generated root graph: a forward block over a
// compensatable segment (with a mirrored compensation block) or a single
// pivot/retriable activity.
type felement struct {
	nodes      []*flexible.Node
	isBlock    bool
	name       string
	compName   string // compensation block name; "" for activities
	statesType string // block state structure; "" for activities
	failable   bool
}

func (el *felement) successCond() expr.Node {
	if el.isBlock {
		return expr.MustParse(fmt.Sprintf("%s = 0", stateMember(len(el.nodes))))
	}
	return expr.MustParse("RC = 0")
}

func (el *felement) failCond() expr.Node {
	if el.isBlock {
		return expr.MustParse(fmt.Sprintf("%s <> 0", stateMember(len(el.nodes))))
	}
	return expr.MustParse("RC <> 0")
}

// successPath returns the member of the element's output container that
// signals commit (for the Result mapping of terminal elements).
func (el *felement) successPath() string {
	if el.isBlock {
		return stateMember(len(el.nodes))
	}
	return model.RCMember
}

type flexTranslator struct {
	spec       *flexible.Spec
	trie       *flexible.Trie
	p          *model.Process
	elems      []*felement
	elemOfNode map[*flexible.Node]*felement
	usedNames  map[string]bool
	edgeSeen   map[[2]string]bool
	blockSeq   int
}

func (tr *flexTranslator) uniqueName(base string) string {
	name := base
	for i := 2; tr.usedNames[name]; i++ {
		name = fmt.Sprintf("%s_%d", base, i)
	}
	tr.usedNames[name] = true
	return name
}

// partition walks the trie from entry, grouping maximal compensatable
// single-child runs into block elements and every other node into an
// activity element, recursing at divergences.
func (tr *flexTranslator) partition(entry *flexible.Node) {
	cur := entry
	for cur != nil {
		sub := tr.spec.Sub(cur.Sub)
		el := &felement{nodes: []*flexible.Node{cur}}
		if sub.Compensatable {
			el.isBlock = true
			for len(cur.Children) == 1 && tr.spec.Sub(cur.Children[0].Sub).Compensatable {
				cur = cur.Children[0]
				el.nodes = append(el.nodes, cur)
			}
		}
		for _, n := range el.nodes {
			if !tr.spec.Sub(n.Sub).Retriable {
				el.failable = true
			}
			tr.elemOfNode[n] = el
		}
		tr.elems = append(tr.elems, el)
		switch len(cur.Children) {
		case 0:
			return
		case 1:
			cur = cur.Children[0]
		default:
			for _, c := range cur.Children {
				tr.partition(c)
			}
			return
		}
	}
}

// materialize creates the element's activities (and blocks) in the root
// graph.
func (tr *flexTranslator) materialize(el *felement) error {
	if !el.isBlock {
		n := el.nodes[0]
		sub := tr.spec.Sub(n.Sub)
		el.name = tr.uniqueNodeName(n)
		a := &model.Activity{Name: el.name, Kind: model.KindProgram, Program: n.Sub}
		if sub.Retriable {
			a.Exit = expr.MustParse("RC = 0") // rule 4
			a.Retry = retriableRetry
		}
		tr.p.Activities = append(tr.p.Activities, a)
		tr.addResultMapping(el)
		return nil
	}

	tr.blockSeq++
	el.name = tr.uniqueName(fmt.Sprintf("Blk%d", tr.blockSeq))
	el.compName = tr.uniqueName(el.name + "_comp")
	el.statesType = tr.uniqueName(tr.spec.Name + "_" + el.name + "_States")

	m := len(el.nodes)
	members := make([]model.Member, m)
	for i := range members {
		members[i] = model.Member{Name: stateMember(i + 1), Basic: model.Long, Default: expr.Int(-1)}
	}
	if err := tr.p.Types.Register(&model.StructType{Name: el.statesType, Members: members}); err != nil {
		return err
	}

	// Forward block: the saga forward construction over the segment.
	fwd := &model.Graph{OutputType: el.statesType}
	for i, node := range el.nodes {
		a := &model.Activity{Name: node.Sub, Kind: model.KindProgram, Program: node.Sub}
		if tr.spec.Sub(node.Sub).Retriable {
			a.Exit = expr.MustParse("RC = 0")
			a.Retry = retriableRetry
		}
		fwd.Activities = append(fwd.Activities, a)
		fwd.Data = append(fwd.Data, &model.DataConnector{
			From: node.Sub, To: model.ScopeRef,
			Maps: []model.DataMap{{FromPath: model.RCMember, ToPath: stateMember(i + 1)}},
		})
		if i > 0 {
			fwd.Control = append(fwd.Control, &model.ControlConnector{
				From: el.nodes[i-1].Sub, To: node.Sub, Condition: expr.MustParse("RC = 0"),
			})
		}
	}

	// Compensation block: rule 6, mirroring the saga compensation block.
	comp := &model.Graph{InputType: el.statesType}
	comp.Activities = append(comp.Activities, &model.Activity{
		Name: nopActivityName, Kind: model.KindProgram, Program: CopyName,
		InputType: el.statesType, OutputType: el.statesType,
	})
	comp.Data = append(comp.Data, &model.DataConnector{
		From: model.ScopeRef, To: nopActivityName, Maps: stateMaps(m),
	})
	for i, node := range el.nodes {
		compensation := tr.spec.Sub(node.Sub).Compensation
		comp.Activities = append(comp.Activities, &model.Activity{
			Name: compensation, Kind: model.KindProgram, Program: compensation,
			Exit:  expr.MustParse("RC = 0"),
			Retry: retriableRetry,
			Join:  model.JoinOr,
		})
		cond := fmt.Sprintf("%s = 0", stateMember(i+1))
		if i+1 < m {
			cond = fmt.Sprintf("%s = 0 AND %s <> 0", stateMember(i+1), stateMember(i+2))
		}
		comp.Control = append(comp.Control, &model.ControlConnector{
			From: nopActivityName, To: compensation, Condition: expr.MustParse(cond),
		})
		if i > 0 {
			comp.Control = append(comp.Control, &model.ControlConnector{
				From: compensation, To: tr.spec.Sub(el.nodes[i-1].Sub).Compensation,
			})
		}
	}

	tr.p.Activities = append(tr.p.Activities,
		&model.Activity{Name: el.name, Kind: model.KindBlock, Block: fwd, OutputType: el.statesType},
		&model.Activity{Name: el.compName, Kind: model.KindBlock, Block: comp, InputType: el.statesType},
	)
	// The compensation block reads the forward block's states.
	tr.p.Data = append(tr.p.Data, &model.DataConnector{
		From: el.name, To: el.compName, Maps: stateMaps(m),
	})
	tr.addResultMapping(el)
	return nil
}

// uniqueNodeName names a standalone activity after its subtransaction,
// suffixing the trie node id when the same subtransaction appears at
// several trie positions.
func (tr *flexTranslator) uniqueNodeName(n *flexible.Node) string {
	if !tr.usedNames[n.Sub+"\x00act"] {
		tr.usedNames[n.Sub+"\x00act"] = true
		return n.Sub
	}
	return tr.uniqueName(fmt.Sprintf("%s_n%d", n.Sub, n.ID))
}

// addResultMapping maps a terminal element's success indicator to the
// process output.
func (tr *flexTranslator) addResultMapping(el *felement) {
	last := el.nodes[len(el.nodes)-1]
	if len(last.Children) > 0 {
		return
	}
	tr.p.Data = append(tr.p.Data, &model.DataConnector{
		From: el.name, To: model.ScopeRef,
		Maps: []model.DataMap{{FromPath: el.successPath(), ToPath: "Result"}},
	})
}

// prune removes every activity not reachable from the entry activity over
// control connectors, together with the connectors that reference it.
func (tr *flexTranslator) prune(entry string) {
	reach := map[string]bool{entry: true}
	for changed := true; changed; {
		changed = false
		for _, c := range tr.p.Control {
			if reach[c.From] && !reach[c.To] {
				reach[c.To] = true
				changed = true
			}
		}
	}
	var acts []*model.Activity
	for _, a := range tr.p.Activities {
		if reach[a.Name] {
			acts = append(acts, a)
		}
	}
	tr.p.Activities = acts
	var ctrl []*model.ControlConnector
	for _, c := range tr.p.Control {
		if reach[c.From] && reach[c.To] {
			ctrl = append(ctrl, c)
		}
	}
	tr.p.Control = ctrl
	var data []*model.DataConnector
	for _, d := range tr.p.Data {
		if (d.From == model.ScopeRef || reach[d.From]) && (d.To == model.ScopeRef || reach[d.To]) {
			data = append(data, d)
		}
	}
	tr.p.Data = data
}

func (tr *flexTranslator) addEdge(from, to string, cond expr.Node) {
	key := [2]string{from, to}
	if tr.edgeSeen[key] {
		return
	}
	tr.edgeSeen[key] = true
	tr.p.Control = append(tr.p.Control, &model.ControlConnector{From: from, To: to, Condition: cond})
}

// wire adds the element's success edge and its failure route (rule 7).
func (tr *flexTranslator) wire(el *felement) error {
	last := el.nodes[len(el.nodes)-1]
	if len(last.Children) > 0 {
		succ := tr.elemOfNode[last.Children[0]]
		tr.addEdge(el.name, succ.name, el.successCond())
	}
	if !el.failable {
		return nil
	}
	alt, compNodes := flexible.Fallback(el.nodes[0])
	// Compensation chain: the element's own compensation block first (a
	// failure inside a multi-step segment leaves a committed prefix), then
	// the compensation blocks of the committed segments between here and
	// the divergence, nearest first.
	var chain []string
	if el.isBlock && len(el.nodes) > 1 {
		chain = append(chain, el.compName)
	}
	for _, n := range compNodes {
		ce := tr.elemOfNode[n]
		if !ce.isBlock {
			return fmt.Errorf("fmtm: internal error: compensating non-block element %q", ce.name)
		}
		if len(chain) == 0 || chain[len(chain)-1] != ce.compName {
			chain = append(chain, ce.compName)
		}
	}
	var altName string
	if alt != nil {
		altName = tr.elemOfNode[alt].name
	}
	if len(chain) == 0 {
		if altName != "" {
			tr.addEdge(el.name, altName, el.failCond())
		}
		return nil
	}
	tr.addEdge(el.name, chain[0], el.failCond())
	for i := 0; i+1 < len(chain); i++ {
		tr.addEdge(chain[i], chain[i+1], nil)
	}
	if altName != "" {
		tr.addEdge(chain[len(chain)-1], altName, nil)
	}
	return nil
}
