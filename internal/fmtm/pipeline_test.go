package fmtm

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/rm"
)

const mixedSpec = `
// A saga and the paper's Figure 3 flexible transaction in one file.
SAGA 'travel'
  STEP 'book_flight' COMPENSATION 'cancel_flight'
  STEP 'book_hotel'  COMPENSATION 'cancel_hotel'
  STEP 'book_car'    COMPENSATION 'cancel_car'
END 'travel'

FLEXIBLE 'fig3'
  SUB 'F1' COMPENSATABLE COMPENSATION 'FC1'
  SUB 'F2' PIVOT
  SUB 'F3' RETRIABLE
  SUB 'F4' PIVOT
  SUB 'F5' COMPENSATABLE COMPENSATION 'FC5'
  SUB 'F6' COMPENSATABLE COMPENSATION 'FC6'
  SUB 'F7' RETRIABLE
  SUB 'F8' PIVOT
  PATH 'F1' 'F2' 'F4' 'F5' 'F6' 'F8'
  PATH 'F1' 'F2' 'F4' 'F7'
  PATH 'F1' 'F2' 'F3'
END 'fig3'
`

// TestPipeline is experiment E3: the full Figure 5 pipeline — parse,
// model check, translate, FDL export, FDL import with syntactic check,
// semantic check — and finally execution of the imported templates.
func TestPipeline(t *testing.T) {
	res, err := Pipeline(mixedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs.Sagas) != 1 || len(res.Specs.Flexible) != 1 {
		t.Fatalf("specs: %d sagas, %d flexible", len(res.Specs.Sagas), len(res.Specs.Flexible))
	}
	if !strings.Contains(res.FDL, "PROCESS 'travel'") || !strings.Contains(res.FDL, "PROCESS 'fig3'") {
		t.Fatalf("FDL missing processes:\n%s", res.FDL)
	}
	if !strings.Contains(res.FDL, "PROGRAM 'fmtm_nop'") {
		t.Fatal("FDL missing the NOP program registration")
	}
	if res.File.Process("travel") == nil || res.File.Process("fig3") == nil {
		t.Fatal("imported file missing processes")
	}

	// Execute both imported templates end to end.
	e := engine.New()
	if err := RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	inj := rm.NewInjector()
	inj.AbortAlways("book_car") // saga aborts at step 3
	inj.AbortAlways("F8")       // flexible switches to F7
	rec := &rm.Recorder{}
	sagaSpec := res.Specs.Sagas[0]
	if err := RegisterSaga(e, sagaSpec, PureSagaBinding(sagaSpec), inj, rec); err != nil {
		t.Fatal(err)
	}
	flexSpec := res.Specs.Flexible[0]
	if err := RegisterFlexible(e, flexSpec, PureFlexibleBinding(flexSpec), inj, rec); err != nil {
		t.Fatal(err)
	}
	if err := Install(e, res.File); err != nil {
		t.Fatal(err)
	}

	inst, err := e.CreateInstance("travel", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("travel did not finish")
	}
	wantSaga := "book_flight:commit book_hotel:commit book_car:abort cancel_hotel:commit cancel_flight:commit"
	if got := historyString(rec); got != wantSaga {
		t.Fatalf("saga history = %s", got)
	}

	rec.Reset()
	inst2, err := e.CreateInstance("fig3", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst2.Finished() {
		t.Fatal("fig3 did not finish")
	}
	wantFlex := "F1:commit F2:commit F4:commit F5:commit F6:commit F8:abort FC6:commit FC5:commit F7:commit"
	if got := historyString(rec); got != wantFlex {
		t.Fatalf("flexible history = %s", got)
	}
	if inst2.Output().MustGet("Result").AsInt() != 0 {
		t.Fatal("fig3 Result != 0")
	}
}

func TestPipelineRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"syntax", "SAGA 'x' STEP oops END 'x'"},
		{"saga missing compensation", "SAGA 'x' STEP 's' END 'x'"},
		{"unterminated", "SAGA 'x' STEP 's' COMPENSATION 'c'"},
		{"end mismatch", "SAGA 'x' STEP 's' COMPENSATION 'c' END 'y'"},
		{"unknown keyword", "PROCESS 'x' END 'x'"},
		{"flexible no type", "FLEXIBLE 'f' SUB 's' PATH 's' END 'f'"},
		{"flexible undeclared in path", "FLEXIBLE 'f' SUB 's' PIVOT PATH 'zz' END 'f'"},
		{"flexible ill-formed", `
FLEXIBLE 'f'
  SUB 'p1' PIVOT
  SUB 'p2' PIVOT
  PATH 'p1' 'p2'
END 'f'`},
		{"reserved saga name", "SAGA 'x' STEP 'NOP' COMPENSATION 'c' END 'x'"},
		{"comment unterminated", "/* SAGA"},
		{"bad char", "SAGA 'x' @ END 'x'"},
		{"empty path", "FLEXIBLE 'f' SUB 's' PIVOT PATH END 'f'"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Pipeline(c.src); err == nil {
				t.Fatalf("Pipeline accepted %q", c.src)
			}
		})
	}
}

func TestPipelineFDLRoundTripStable(t *testing.T) {
	res, err := Pipeline(mixedSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Re-import the emitted FDL a second time: text must be stable.
	res2, err := Pipeline(mixedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if res.FDL != res2.FDL {
		t.Fatal("pipeline output not deterministic")
	}
}

func TestSpecParserDetails(t *testing.T) {
	// Flexible with a compensatable+retriable subtransaction.
	src := `
FLEXIBLE 'f'
  SUB 'a' COMPENSATABLE RETRIABLE COMPENSATION 'ca'
  SUB 'p' PIVOT
  PATH 'a' 'p'
END 'f'`
	file, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	sub := file.Flexible[0].Sub("a")
	if !sub.Compensatable || !sub.Retriable || sub.Compensation != "ca" {
		t.Fatalf("sub = %+v", sub)
	}
	// Comments of both kinds parse.
	src2 := "// hi\n/* multi\nline */ SAGA 's' STEP 'a' COMPENSATION 'b' END 's'"
	if _, err := ParseSpec(src2); err != nil {
		t.Fatal(err)
	}
}
