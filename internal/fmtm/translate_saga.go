package fmtm

import (
	"fmt"

	"repro/internal/atm/saga"
	"repro/internal/expr"
	"repro/internal/model"
)

// Reserved activity names of the saga construction.
const (
	forwardBlockName      = "Forward"
	compensationBlockName = "Compensation"
	nopActivityName       = "NOP"
)

// sagaStatesType names the per-process state structure; prefixed with the
// process name so several generated processes can share one FDL file.
func sagaStatesType(spec *saga.Spec) string { return spec.Name + "_States" }

// SagaOptions tune the Figure 2 construction.
type SagaOptions struct {
	// CompensateCompleted builds the variant the paper mentions where
	// "users may require to compensate an already completed saga": the
	// compensation block is entered unconditionally and compensates every
	// executed step, including a fully committed saga.
	CompensateCompleted bool
}

// TranslateSaga converts a linear saga into a workflow process using
// exactly the construction of §4.1 / Figure 2:
//
//   - a Forward block holds one activity per subtransaction, chained by
//     control connectors with transition condition "RC = 0"; each activity
//     maps its return code into the block output member State_i
//     (default -1 = never executed, 0 = committed, non-zero = aborted), so
//     an abort dead-path-eliminates the rest of the chain and the block
//     output records exactly the executed prefix;
//   - a Compensation block receives those states through a data connector;
//     its NOP start activity has a control connector to every compensating
//     activity, conditioned so that compensation starts at the last
//     executed step; reversed connectors between the compensating
//     activities drive compensation in reverse execution order; each
//     compensating activity's exit condition "RC = 0" retries it until it
//     commits.
func TranslateSaga(spec *saga.Spec, opts SagaOptions) (*model.Process, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for _, st := range spec.Steps {
		for _, n := range []string{st.Name, st.Compensation} {
			switch n {
			case forwardBlockName, compensationBlockName, nopActivityName:
				return nil, fmt.Errorf("fmtm: saga %s: %q is a reserved activity name", spec.Name, n)
			}
		}
	}

	n := len(spec.Steps)
	p := model.NewProcess(spec.Name)
	p.Description = fmt.Sprintf("linear saga %s compiled by Exotica/FMTM (Figure 2 construction)", spec.Name)

	members := make([]model.Member, n)
	for i := range members {
		members[i] = model.Member{Name: stateMember(i + 1), Basic: model.Long, Default: expr.Int(-1)}
	}
	if err := p.Types.Register(&model.StructType{Name: sagaStatesType(spec), Members: members}); err != nil {
		return nil, err
	}
	p.OutputType = sagaStatesType(spec)

	// Forward block.
	fwd := &model.Graph{OutputType: sagaStatesType(spec)}
	for i, st := range spec.Steps {
		fwd.Activities = append(fwd.Activities, &model.Activity{
			Name: st.Name, Kind: model.KindProgram, Program: st.Name,
		})
		fwd.Data = append(fwd.Data, &model.DataConnector{
			From: st.Name, To: model.ScopeRef,
			Maps: []model.DataMap{{FromPath: model.RCMember, ToPath: stateMember(i + 1)}},
		})
		if i > 0 {
			fwd.Control = append(fwd.Control, &model.ControlConnector{
				From: spec.Steps[i-1].Name, To: st.Name, Condition: expr.MustParse("RC = 0"),
			})
		}
	}

	// Compensation block.
	comp := &model.Graph{InputType: sagaStatesType(spec)}
	comp.Activities = append(comp.Activities, &model.Activity{
		Name: nopActivityName, Kind: model.KindProgram, Program: CopyName,
		InputType: sagaStatesType(spec), OutputType: sagaStatesType(spec),
	})
	comp.Data = append(comp.Data, &model.DataConnector{
		From: model.ScopeRef, To: nopActivityName, Maps: stateMaps(n),
	})
	for i, st := range spec.Steps {
		comp.Activities = append(comp.Activities, &model.Activity{
			Name: st.Compensation, Kind: model.KindProgram, Program: st.Compensation,
			Exit:  expr.MustParse("RC = 0"), // compensations are retriable
			Retry: retriableRetry,
			Join:  model.JoinOr,
		})
		// The NOP fires the compensation of the last executed step: step i
		// committed but step i+1 did not run or aborted.
		cond := fmt.Sprintf("%s = 0", stateMember(i+1))
		if i+1 < n {
			cond = fmt.Sprintf("%s = 0 AND %s <> 0", stateMember(i+1), stateMember(i+2))
		}
		comp.Control = append(comp.Control, &model.ControlConnector{
			From: nopActivityName, To: st.Compensation, Condition: expr.MustParse(cond),
		})
		// Reverse chaining: after compensating step i+1, compensate step i.
		if i > 0 {
			comp.Control = append(comp.Control, &model.ControlConnector{
				From: st.Compensation, To: spec.Steps[i-1].Compensation,
			})
		}
	}

	p.Activities = []*model.Activity{
		{Name: forwardBlockName, Kind: model.KindBlock, Block: fwd, OutputType: sagaStatesType(spec)},
		{Name: compensationBlockName, Kind: model.KindBlock, Block: comp, InputType: sagaStatesType(spec)},
	}
	entry := &model.ControlConnector{From: forwardBlockName, To: compensationBlockName}
	if !opts.CompensateCompleted {
		// The saga aborted iff its last step did not commit.
		entry.Condition = expr.MustParse(fmt.Sprintf("%s <> 0", stateMember(n)))
	}
	p.Control = []*model.ControlConnector{entry}
	p.Data = []*model.DataConnector{
		{From: forwardBlockName, To: compensationBlockName, Maps: stateMaps(n)},
		{From: forwardBlockName, To: model.ScopeRef, Maps: stateMaps(n)},
	}
	if err := p.Validate(nil); err != nil {
		return nil, fmt.Errorf("fmtm: generated saga process invalid: %w", err)
	}
	return p, nil
}

func stateMember(i int) string { return fmt.Sprintf("State_%d", i) }

// retriableRetry is attached to every activity whose subtransaction is
// retriable — including compensations, which are retriable by definition.
// The "RC = 0" exit condition already re-runs transactional aborts; this
// policy additionally re-invokes the program on transient infrastructure
// failures (deadline misses, engine.Transient errors) before the instance
// is failed. No backoff: generated processes stay fast under test, and a
// caller needing paced retries can override Retry on the built model.
var retriableRetry = &model.RetryPolicy{MaxAttempts: 3}

func stateMaps(n int) []model.DataMap {
	maps := make([]model.DataMap, n)
	for i := range maps {
		maps[i] = model.DataMap{FromPath: stateMember(i + 1), ToPath: stateMember(i + 1)}
	}
	return maps
}
