package fmtm

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/model"
)

// PipelineResult carries the artifacts of one run of the Figure 5
// pipeline.
type PipelineResult struct {
	// Specs is the parsed and model-checked specification file.
	Specs *SpecFile
	// FDL is the definition-language text emitted by the pre-processor.
	FDL string
	// File is the re-imported FDL after the import stage's syntactic and
	// semantic checks — the source of executable process templates.
	File *fdl.File
}

// Pipeline runs the full Exotica/FMTM pipeline of Figure 5 on a
// specification text:
//
//	user spec ─parse/check─▶ translate (Figs. 2/4) ─▶ FDL export
//	      ─FDL import (syntax check)─▶ semantic check ─▶ process templates
//
// Each stage rejects invalid input with a diagnostic, mirroring the checks
// the paper attributes to the pre-processor, the import module and the
// translator.
func Pipeline(specText string) (*PipelineResult, error) {
	specs, err := ParseSpec(specText)
	if err != nil {
		return nil, fmt.Errorf("fmtm: specification stage: %w", err)
	}
	var processes []*model.Process
	for _, s := range specs.Sagas {
		p, err := TranslateSaga(s, SagaOptions{})
		if err != nil {
			return nil, fmt.Errorf("fmtm: translation stage: %w", err)
		}
		processes = append(processes, p)
	}
	for _, g := range specs.General {
		p, err := TranslateGeneralSaga(g, SagaOptions{})
		if err != nil {
			return nil, fmt.Errorf("fmtm: translation stage: %w", err)
		}
		processes = append(processes, p)
	}
	for _, f := range specs.Flexible {
		p, err := TranslateFlexible(f)
		if err != nil {
			return nil, fmt.Errorf("fmtm: translation stage: %w", err)
		}
		processes = append(processes, p)
	}
	file, err := buildFile(processes)
	if err != nil {
		return nil, fmt.Errorf("fmtm: FDL generation stage: %w", err)
	}
	text := fdl.Export(file)
	imported, err := fdl.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("fmtm: FDL import stage: %w", err)
	}
	if err := imported.Check(); err != nil {
		return nil, fmt.Errorf("fmtm: semantic check stage: %w", err)
	}
	return &PipelineResult{Specs: specs, FDL: text, File: imported}, nil
}

// buildFile merges the generated processes into one FDL file: a shared
// type registry, one PROGRAM registration per referenced program, and the
// process definitions.
func buildFile(processes []*model.Process) (*fdl.File, error) {
	file := &fdl.File{Types: model.NewTypes()}
	progSeen := map[string]bool{}
	for _, p := range processes {
		for _, t := range p.Types.All() {
			if err := file.Types.Register(t); err != nil {
				return nil, err
			}
		}
		collectPrograms(&p.Graph, progSeen, &file.Programs)
		// Re-home the process onto the shared registry.
		p.Types = file.Types
		file.Processes = append(file.Processes, p)
	}
	return file, nil
}

func collectPrograms(g *model.Graph, seen map[string]bool, out *[]*fdl.Program) {
	for _, a := range g.Activities {
		switch a.Kind {
		case model.KindProgram:
			if !seen[a.Program] {
				seen[a.Program] = true
				*out = append(*out, &fdl.Program{Name: a.Program, Description: "registered by Exotica/FMTM"})
			}
		case model.KindBlock:
			if a.Block != nil {
				collectPrograms(a.Block, seen, out)
			}
		}
	}
}

// Install registers every process of a checked FDL file with the engine.
// All programs the processes reference must already be registered (use
// RegisterRuntime plus RegisterSaga/RegisterFlexible, or register your own
// implementations).
func Install(e *engine.Engine, file *fdl.File) error {
	for _, p := range file.Processes {
		if err := e.RegisterProcess(p); err != nil {
			return err
		}
	}
	return nil
}
