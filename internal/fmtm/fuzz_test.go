package fmtm

import "testing"

// FuzzPipeline drives the whole Figure 5 pipeline with arbitrary
// specification text: it must never panic, and whatever it accepts must
// produce FDL that re-imports cleanly (the pipeline itself asserts this;
// here we assert it doesn't reject its own earlier output either).
func FuzzPipeline(f *testing.F) {
	f.Add("SAGA 't' STEP 'a' COMPENSATION 'ca' END 't'")
	f.Add(mixedSpec)
	f.Add("FLEXIBLE 'f' SUB 'p' PIVOT PATH 'p' END 'f'")
	f.Add("SAGA 'g' STEP 'a' COMPENSATION 'ca' STEP 'b' COMPENSATION 'cb' AFTER 'a' END 'g'")
	f.Add("SAGA")
	f.Add("'")
	f.Add("/*")
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Pipeline(src)
		if err != nil {
			return
		}
		if res.FDL == "" || len(res.File.Processes) == 0 {
			t.Fatalf("accepted spec produced empty output: %q", src)
		}
	})
}
