package fmtm

import (
	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/rm"
)

// CopyName is the program name of the pass-through no-operation used by
// generated compensation blocks (the "null activity" of Figure 2): it
// copies every member common to its input and output containers and
// commits. The conditions on its outgoing control connectors then decide
// where compensation starts.
const CopyName = "fmtm_nop"

// CopyProgram implements CopyName.
var CopyProgram engine.Program = engine.ProgramFunc(func(inv *engine.Invocation) error {
	for k, v := range inv.In.Snapshot() {
		if _, ok := inv.Out.Get(k); ok {
			if err := inv.Out.Set(k, v); err != nil {
				return err
			}
		}
	}
	inv.Out.SetRC(0)
	return nil
})

// RegisterRuntime registers the programs generated processes depend on
// (the pass-through NOP). Idempotent per engine only if called once;
// callers that build the engine themselves may also register CopyName
// directly.
func RegisterRuntime(e *engine.Engine) error {
	return e.RegisterProgram(CopyName, CopyProgram)
}

// RegisterSaga registers one engine program per saga step and
// compensation, backed by the given binding, injector and recorder.
func RegisterSaga(e *engine.Engine, spec *saga.Spec, b saga.Binding, dec rm.Decider, rec *rm.Recorder) error {
	if err := spec.Bind(b); err != nil {
		return err
	}
	for _, st := range spec.Steps {
		for _, name := range []string{st.Name, st.Compensation} {
			if err := e.RegisterProgram(name, rm.Program(b[name], dec, rec)); err != nil {
				return err
			}
		}
	}
	return nil
}

// RegisterGeneralSaga registers one engine program per step and
// compensation of a generalized saga.
func RegisterGeneralSaga(e *engine.Engine, spec *saga.GeneralSpec, b saga.Binding, dec rm.Decider, rec *rm.Recorder) error {
	if err := spec.Bind(b); err != nil {
		return err
	}
	for _, st := range spec.Steps {
		for _, name := range []string{st.Name, st.Compensation} {
			if err := e.RegisterProgram(name, rm.Program(b[name], dec, rec)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PureGeneralBinding binds every step and compensation of the generalized
// saga to a storage-free subtransaction.
func PureGeneralBinding(spec *saga.GeneralSpec) saga.Binding {
	b := saga.Binding{}
	for _, st := range spec.Steps {
		b[st.Name] = rm.Subtransaction{Name: st.Name}
		b[st.Compensation] = rm.Subtransaction{Name: st.Compensation}
	}
	return b
}

// RegisterFlexible registers one engine program per flexible
// subtransaction and compensation.
func RegisterFlexible(e *engine.Engine, spec *flexible.Spec, b flexible.Binding, dec rm.Decider, rec *rm.Recorder) error {
	if err := spec.Bind(b); err != nil {
		return err
	}
	for _, sub := range spec.Subs {
		if err := e.RegisterProgram(sub.Name, rm.Program(b[sub.Name], dec, rec)); err != nil {
			return err
		}
		if sub.Compensation != "" {
			if err := e.RegisterProgram(sub.Compensation, rm.Program(b[sub.Compensation], dec, rec)); err != nil {
				return err
			}
		}
	}
	return nil
}

// PureSagaBinding binds every step and compensation of the saga to a
// storage-free subtransaction — outcomes come entirely from the decider.
func PureSagaBinding(spec *saga.Spec) saga.Binding {
	b := saga.Binding{}
	for _, st := range spec.Steps {
		b[st.Name] = rm.Subtransaction{Name: st.Name}
		b[st.Compensation] = rm.Subtransaction{Name: st.Compensation}
	}
	return b
}

// PureFlexibleBinding binds every subtransaction and compensation of the
// flexible transaction to a storage-free subtransaction.
func PureFlexibleBinding(spec *flexible.Spec) flexible.Binding {
	b := flexible.Binding{}
	for _, sub := range spec.Subs {
		b[sub.Name] = rm.Subtransaction{Name: sub.Name}
		if sub.Compensation != "" {
			b[sub.Compensation] = rm.Subtransaction{Name: sub.Compensation}
		}
	}
	return b
}
