package fmtm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/rm"
)

// nStepSaga builds T1..Tn with compensations C1..Cn.
func nStepSaga(name string, n int) *saga.Spec {
	s := &saga.Spec{Name: name}
	for i := 1; i <= n; i++ {
		s.Steps = append(s.Steps, saga.Step{
			Name: fmt.Sprintf("T%d", i), Compensation: fmt.Sprintf("C%d", i),
		})
	}
	return s
}

func fig3Spec() *flexible.Spec {
	return &flexible.Spec{
		Name: "Fig3",
		Subs: []flexible.SubSpec{
			{Name: "T1", Compensatable: true, Compensation: "C1"},
			{Name: "T2"},
			{Name: "T3", Retriable: true},
			{Name: "T4"},
			{Name: "T5", Compensatable: true, Compensation: "C5"},
			{Name: "T6", Compensatable: true, Compensation: "C6"},
			{Name: "T7", Retriable: true},
			{Name: "T8"},
		},
		Paths: [][]string{
			{"T1", "T2", "T4", "T5", "T6", "T8"},
			{"T1", "T2", "T4", "T7"},
			{"T1", "T2", "T3"},
		},
	}
}

func historyString(rec *rm.Recorder) string {
	var parts []string
	for _, e := range rec.Events() {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, " ")
}

// runSagaWorkflow translates the saga and executes the generated process
// with injector-driven programs, returning the instance and history.
func runSagaWorkflow(t *testing.T, spec *saga.Spec, dec rm.Decider, opts SagaOptions) (*engine.Instance, *rm.Recorder) {
	t.Helper()
	e := engine.New()
	if err := RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	rec := &rm.Recorder{}
	if err := RegisterSaga(e, spec, PureSagaBinding(spec), dec, rec); err != nil {
		t.Fatal(err)
	}
	p, err := TranslateSaga(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance(spec.Name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("generated saga process did not finish")
	}
	return inst, rec
}

func TestSagaTranslationStructure(t *testing.T) {
	spec := nStepSaga("travel", 3)
	p, err := TranslateSaga(spec, SagaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fwd := p.Graph.Activity("Forward")
	comp := p.Graph.Activity("Compensation")
	if fwd == nil || comp == nil || fwd.Kind != model.KindBlock || comp.Kind != model.KindBlock {
		t.Fatal("Figure 2 blocks missing")
	}
	if len(fwd.Block.Activities) != 3 || len(fwd.Block.Control) != 2 {
		t.Fatalf("forward block shape: %d activities, %d connectors",
			len(fwd.Block.Activities), len(fwd.Block.Control))
	}
	if len(comp.Block.Activities) != 4 { // NOP + 3 compensations
		t.Fatalf("compensation block activities: %d", len(comp.Block.Activities))
	}
	// NOP has a connector to every compensation (3) plus the reverse chain (2).
	if len(comp.Block.Control) != 5 {
		t.Fatalf("compensation block connectors: %d", len(comp.Block.Control))
	}
	// Compensations are retriable and or-joined.
	c1 := comp.Block.Activity("C1")
	if c1.Exit == nil || c1.Exit.String() != "RC = 0" || c1.Join != model.JoinOr {
		t.Fatalf("C1 = %+v", c1)
	}
	// Reserved name rejection.
	badSpec := &saga.Spec{Name: "x", Steps: []saga.Step{{Name: "NOP", Compensation: "c"}}}
	if _, err := TranslateSaga(badSpec, SagaOptions{}); err == nil {
		t.Fatal("reserved step name accepted")
	}
}

// TestSagaTranslationGuarantee is experiment E1: the workflow encoding of
// a saga produces, for every abort point, exactly the history the saga
// guarantee requires — and it is identical to the native executor's.
func TestSagaTranslationGuarantee(t *testing.T) {
	for _, n := range []int{1, 3, 5, 10} {
		for abortAt := 0; abortAt <= n; abortAt++ { // 0 = no abort
			name := fmt.Sprintf("n%d_abort%d", n, abortAt)
			t.Run(name, func(t *testing.T) {
				spec := nStepSaga("s", n)
				mkInj := func() *rm.Injector {
					inj := rm.NewInjector()
					if abortAt > 0 {
						inj.AbortAlways(fmt.Sprintf("T%d", abortAt))
						// One transient compensation failure to exercise
						// the retriable exit condition.
						if abortAt > 1 {
							inj.AbortN(fmt.Sprintf("C%d", abortAt-1), 1)
						}
					}
					return inj
				}
				inst, rec := runSagaWorkflow(t, spec, mkInj(), SagaOptions{})
				if err := saga.CheckGuarantee(spec, rec.Events()); err != nil {
					t.Fatalf("workflow history violates the saga guarantee: %v\nhistory: %s",
						err, historyString(rec))
				}
				// The generated process's output records the states.
				out := inst.Output()
				if abortAt == 0 {
					if out.MustGet(stateMember(n)).AsInt() != 0 {
						t.Fatalf("State_%d = %v after full commit", n, out.MustGet(stateMember(n)))
					}
				} else if out.MustGet(stateMember(abortAt)).AsInt() != 1 {
					t.Fatalf("State_%d = %v, want 1 (aborted)", abortAt, out.MustGet(stateMember(abortAt)))
				}
				// Native baseline produces the identical history.
				nativeRec := &rm.Recorder{}
				ex := &saga.Executor{Decider: mkInj()}
				if _, err := ex.Execute(spec, PureSagaBinding(spec), nativeRec); err != nil {
					t.Fatal(err)
				}
				if got, want := historyString(rec), historyString(nativeRec); got != want {
					t.Fatalf("workflow and native histories diverge:\nworkflow: %s\nnative:   %s", got, want)
				}
			})
		}
	}
}

func TestSagaCompensateCompleted(t *testing.T) {
	spec := nStepSaga("s", 3)
	inst, rec := runSagaWorkflow(t, spec, rm.NewInjector(), SagaOptions{CompensateCompleted: true})
	want := "T1:commit T2:commit T3:commit C3:commit C2:commit C1:commit"
	if got := historyString(rec); got != want {
		t.Fatalf("history = %s, want %s", got, want)
	}
	_ = inst
}

// runFlexibleWorkflow translates the flexible transaction and executes it.
func runFlexibleWorkflow(t *testing.T, spec *flexible.Spec, dec rm.Decider) (*engine.Instance, *rm.Recorder) {
	t.Helper()
	e := engine.New()
	if err := RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	rec := &rm.Recorder{}
	if err := RegisterFlexible(e, spec, PureFlexibleBinding(spec), dec, rec); err != nil {
		t.Fatal(err)
	}
	p, err := TranslateFlexible(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance(spec.Name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("generated flexible process did not finish")
	}
	return inst, rec
}

func TestFlexibleTranslationStructure(t *testing.T) {
	spec := fig3Spec()

	p, err := TranslateFlexible(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4 shape: Blk1 = [T1], T2, T4, Blk2 = [T5 T6], T8, T7, T3 plus
	// two compensation blocks.
	var blocks, comps, acts int
	for _, a := range p.Activities {
		switch {
		case a.Kind == model.KindBlock && strings.HasSuffix(a.Name, "_comp"):
			comps++
		case a.Kind == model.KindBlock:
			blocks++
		default:
			acts++
		}
	}
	if blocks != 2 || comps != 2 || acts != 5 {
		t.Fatalf("shape: %d forward blocks, %d compensation blocks, %d activities", blocks, comps, acts)
	}
	// T3 and T7 carry the retriable exit condition (rule 4).
	for _, n := range []string{"T3", "T7"} {
		a := p.Graph.Activity(n)
		if a == nil || a.Exit == nil || a.Exit.String() != "RC = 0" {
			t.Fatalf("retriable %s: %+v", n, a)
		}
	}
	// T2 and T4 branch on commit/abort (rule 3): T4 has a success edge and
	// a failure edge.
	outs := p.Outgoing("T4")
	if len(outs) != 2 {
		t.Fatalf("T4 outgoing = %d", len(outs))
	}
}

// TestFlexibleFig3 is experiment E2: every appendix scenario of the
// paper's Figure 3/4 example, executed through the generated workflow
// process, yields exactly the native executor's history and outcome.
func TestFlexibleFig3(t *testing.T) {
	cases := []struct {
		name    string
		inject  func(*rm.Injector)
		result  int64 // expected Result member: 0 commit, 1 terminal abort, -1 dead
		history string
	}{
		{"all_commit_p1", func(*rm.Injector) {}, 0,
			"T1:commit T2:commit T4:commit T5:commit T6:commit T8:commit"},
		{"T1_aborts", func(i *rm.Injector) { i.AbortAlways("T1") }, -1,
			"T1:abort"},
		{"T2_aborts", func(i *rm.Injector) { i.AbortAlways("T2") }, -1,
			"T1:commit T2:abort C1:commit"},
		{"T4_aborts_T3", func(i *rm.Injector) { i.AbortAlways("T4"); i.AbortN("T3", 2) }, 0,
			"T1:commit T2:commit T4:abort T3:abort T3:abort T3:commit"},
		{"T5_aborts_T7", func(i *rm.Injector) { i.AbortAlways("T5") }, 0,
			"T1:commit T2:commit T4:commit T5:abort T7:commit"},
		{"T6_aborts_C5_T7", func(i *rm.Injector) { i.AbortAlways("T6") }, 0,
			"T1:commit T2:commit T4:commit T5:commit T6:abort C5:commit T7:commit"},
		{"T8_aborts_C6_C5_T7", func(i *rm.Injector) { i.AbortAlways("T8") }, 0,
			"T1:commit T2:commit T4:commit T5:commit T6:commit T8:abort C6:commit C5:commit T7:commit"},
		{"T8_aborts_T7_retries", func(i *rm.Injector) { i.AbortAlways("T8"); i.AbortN("T7", 1) }, 0,
			"T1:commit T2:commit T4:commit T5:commit T6:commit T8:abort C6:commit C5:commit T7:abort T7:commit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := fig3Spec()

			inj := rm.NewInjector()
			c.inject(inj)
			inst, rec := runFlexibleWorkflow(t, spec, inj)
			if got := historyString(rec); got != c.history {
				t.Fatalf("workflow history:\n got %s\nwant %s", got, c.history)
			}
			if got := inst.Output().MustGet("Result").AsInt(); got != c.result {
				t.Fatalf("Result = %d, want %d", got, c.result)
			}
			// Native baseline equality.
			inj2 := rm.NewInjector()
			c.inject(inj2)
			nativeRec := &rm.Recorder{}
			ex := &flexible.Executor{Decider: inj2}
			if _, err := ex.Execute(spec, PureFlexibleBinding(spec), nativeRec); err != nil {
				t.Fatal(err)
			}
			if got, want := historyString(rec), historyString(nativeRec); got != want {
				t.Fatalf("workflow and native diverge:\nworkflow: %s\nnative:   %s", got, want)
			}
		})
	}
}

// TestQuickSagaEquivalence: the workflow encoding and the native executor
// produce identical histories for random sagas and abort scripts.
func TestQuickSagaEquivalence(t *testing.T) {
	f := func(nRaw, abortRaw, flakyRaw uint8) bool {
		n := 1 + int(nRaw%8)
		spec := nStepSaga("q", n)
		mkInj := func() *rm.Injector {
			inj := rm.NewInjector()
			abortAt := int(abortRaw % uint8(n+2))
			if abortAt >= 1 && abortAt <= n {
				inj.AbortAlways(fmt.Sprintf("T%d", abortAt))
				inj.AbortN(fmt.Sprintf("C%d", 1+int(flakyRaw)%n), int(flakyRaw%3))
			}
			return inj
		}
		_, rec := runSagaWorkflow(t, spec, mkInj(), SagaOptions{})
		nativeRec := &rm.Recorder{}
		ex := &saga.Executor{Decider: mkInj()}
		if _, err := ex.Execute(spec, PureSagaBinding(spec), nativeRec); err != nil {
			return false
		}
		if historyString(rec) != historyString(nativeRec) {
			t.Logf("diverged:\nworkflow: %s\nnative:   %s", historyString(rec), historyString(nativeRec))
			return false
		}
		if err := saga.CheckGuarantee(spec, rec.Events()); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
