package fmtm

import (
	"fmt"
	"testing"

	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/rm"
)

func diamondSaga() *saga.GeneralSpec {
	return &saga.GeneralSpec{
		Name: "diamond",
		Steps: []saga.Step{
			{Name: "a", Compensation: "ca"},
			{Name: "b", Compensation: "cb"},
			{Name: "c", Compensation: "cc"},
			{Name: "d", Compensation: "cd"},
		},
		Deps: map[string][]string{"b": {"a"}, "c": {"a"}, "d": {"b", "c"}},
	}
}

func runGeneralWorkflow(t *testing.T, spec *saga.GeneralSpec, dec rm.Decider, opts SagaOptions) (*engine.Instance, *rm.Recorder) {
	t.Helper()
	e := engine.New()
	if err := RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	rec := &rm.Recorder{}
	if err := RegisterGeneralSaga(e, spec, PureGeneralBinding(spec), dec, rec); err != nil {
		t.Fatal(err)
	}
	p, err := TranslateGeneralSaga(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance(spec.Name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("generated general saga did not finish")
	}
	return inst, rec
}

func TestGeneralSagaTranslationStructure(t *testing.T) {
	p, err := TranslateGeneralSaga(diamondSaga(), SagaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fwd := p.Graph.Activity("Forward")
	if fwd == nil || len(fwd.Block.Activities) != 4 {
		t.Fatal("forward block wrong")
	}
	// Dependency edges: a->b, a->c, b->d, c->d.
	if got := len(fwd.Block.Control); got != 4 {
		t.Fatalf("forward connectors = %d", got)
	}
	comp := p.Graph.Activity("Compensation")
	// NOP->4 comps + 4 reversed edges.
	if got := len(comp.Block.Control); got != 8 {
		t.Fatalf("compensation connectors = %d", got)
	}
	// Entry condition is the abort disjunction.
	if cond := p.Control[0].CondString(); cond != "State_1 = 1 OR State_2 = 1 OR State_3 = 1 OR State_4 = 1" {
		t.Fatalf("entry condition: %s", cond)
	}
}

// TestGeneralSagaAllAbortPoints: abort every step; the workflow history
// must satisfy the generalized guarantee.
func TestGeneralSagaAllAbortPoints(t *testing.T) {
	spec := diamondSaga()
	for _, victim := range []string{"", "a", "b", "c", "d"} {
		name := victim
		if name == "" {
			name = "none"
		}
		t.Run("abort_"+name, func(t *testing.T) {
			inj := rm.NewInjector()
			if victim != "" {
				inj.AbortAlways(victim)
				inj.AbortN("ca", 1) // a flaky compensation
			}
			_, rec := runGeneralWorkflow(t, spec, inj, SagaOptions{})
			if err := saga.CheckGeneralGuarantee(spec, rec.Events()); err != nil {
				t.Fatalf("guarantee violated: %v\nhistory: %v", err, rec.Events())
			}
		})
	}
}

func TestGeneralSagaInFlightSiblingCommits(t *testing.T) {
	// When b aborts, its already-ready sibling c still executes (it was in
	// flight) and must be compensated — the concurrent-saga behaviour the
	// checker explicitly allows.
	spec := diamondSaga()
	inj := rm.NewInjector()
	inj.AbortAlways("b")
	_, rec := runGeneralWorkflow(t, spec, inj, SagaOptions{})
	events := rec.Events()
	var sawCCommit, sawCComp bool
	for _, ev := range events {
		if ev.Name == "c" && ev.Kind == rm.EvCommit {
			sawCCommit = true
		}
		if ev.Name == "cc" && ev.Kind == rm.EvCommit {
			sawCComp = true
		}
	}
	if !sawCCommit || !sawCComp {
		t.Fatalf("in-flight sibling not executed+compensated: %v", events)
	}
	if err := saga.CheckGeneralGuarantee(spec, events); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralSagaCompensateCompleted(t *testing.T) {
	spec := diamondSaga()
	_, rec := runGeneralWorkflow(t, spec, rm.NewInjector(), SagaOptions{CompensateCompleted: true})
	if err := saga.CheckGeneralGuarantee(spec, rec.Events()); err != nil {
		t.Fatal(err)
	}
	// All four compensated, cd before cb/cc before ca.
	pos := map[string]int{}
	for i, ev := range rec.Events() {
		if ev.Kind == rm.EvCommit {
			pos[ev.Name] = i
		}
	}
	if !(pos["cd"] < pos["cb"] && pos["cd"] < pos["cc"] && pos["cb"] < pos["ca"] && pos["cc"] < pos["ca"]) {
		t.Fatalf("compensation order wrong: %v", rec.Events())
	}
}

// TestGeneralSagaWideFan exercises a wide parallel saga: one root, many
// parallel workers, one join step.
func TestGeneralSagaWideFan(t *testing.T) {
	const width = 12
	spec := &saga.GeneralSpec{Name: "fan", Deps: map[string][]string{}}
	spec.Steps = append(spec.Steps, saga.Step{Name: "root", Compensation: "c_root"})
	var workers []string
	for i := 0; i < width; i++ {
		w := fmt.Sprintf("w%d", i)
		workers = append(workers, w)
		spec.Steps = append(spec.Steps, saga.Step{Name: w, Compensation: "c_" + w})
		spec.Deps[w] = []string{"root"}
	}
	spec.Steps = append(spec.Steps, saga.Step{Name: "join", Compensation: "c_join"})
	spec.Deps["join"] = workers

	// Abort the join: every worker and the root must be compensated.
	inj := rm.NewInjector()
	inj.AbortAlways("join")
	_, rec := runGeneralWorkflow(t, spec, inj, SagaOptions{})
	if err := saga.CheckGeneralGuarantee(spec, rec.Events()); err != nil {
		t.Fatalf("guarantee violated: %v", err)
	}
	commits := 0
	for _, ev := range rec.Events() {
		if ev.Kind == rm.EvCommit {
			commits++
		}
	}
	// root + width forward commits, then width+1 compensations.
	if commits != 2*(width+1) {
		t.Fatalf("commits = %d, want %d", commits, 2*(width+1))
	}
}

func TestGeneralSagaSpecLanguage(t *testing.T) {
	src := `
SAGA 'pipeline'
  STEP 'extract'   COMPENSATION 'undo_extract'
  STEP 'transform' COMPENSATION 'undo_transform' AFTER 'extract'
  STEP 'audit'     COMPENSATION 'undo_audit'     AFTER 'extract'
  STEP 'load'      COMPENSATION 'undo_load'      AFTER 'transform' 'audit'
END 'pipeline'
`
	res, err := Pipeline(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Specs.General) != 1 || len(res.Specs.Sagas) != 0 {
		t.Fatalf("specs: %+v", res.Specs)
	}
	g := res.Specs.General[0]
	if len(g.Deps["load"]) != 2 {
		t.Fatalf("deps: %v", g.Deps)
	}
	if res.File.Process("pipeline") == nil {
		t.Fatal("pipeline process missing from FDL")
	}
	// Execute it through the imported template with an abort at load.
	e := engine.New()
	if err := RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	inj := rm.NewInjector()
	inj.AbortAlways("load")
	rec := &rm.Recorder{}
	if err := RegisterGeneralSaga(e, g, PureGeneralBinding(g), inj, rec); err != nil {
		t.Fatal(err)
	}
	if err := Install(e, res.File); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("pipeline", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	if err := saga.CheckGeneralGuarantee(g, rec.Events()); err != nil {
		t.Fatalf("guarantee violated: %v\nhistory: %v", err, rec.Events())
	}
	// AFTER with missing names is rejected.
	if _, err := Pipeline("SAGA 'x' STEP 'a' COMPENSATION 'c' AFTER END 'x'"); err == nil {
		t.Fatal("AFTER without names accepted")
	}
	// Dependency on an unknown step is rejected by validation.
	if _, err := Pipeline("SAGA 'x' STEP 'a' COMPENSATION 'c' AFTER 'ghost' END 'x'"); err == nil {
		t.Fatal("unknown dependency accepted")
	}
}

func TestGeneralSagaLinearEquivalence(t *testing.T) {
	// A chain-shaped general saga behaves exactly like the linear
	// translation.
	gen := &saga.GeneralSpec{
		Name: "chain3",
		Steps: []saga.Step{
			{Name: "T1", Compensation: "C1"},
			{Name: "T2", Compensation: "C2"},
			{Name: "T3", Compensation: "C3"},
		},
		Deps: map[string][]string{"T2": {"T1"}, "T3": {"T2"}},
	}
	if !gen.Linear() {
		t.Fatal("chain not linear")
	}
	lin := &saga.Spec{Name: "chain3", Steps: gen.Steps}
	for abortAt := 0; abortAt <= 3; abortAt++ {
		mkInj := func() *rm.Injector {
			inj := rm.NewInjector()
			if abortAt > 0 {
				inj.AbortAlways(fmt.Sprintf("T%d", abortAt))
			}
			return inj
		}
		_, genRec := runGeneralWorkflow(t, gen, mkInj(), SagaOptions{})
		_, linRec := runSagaWorkflow(t, lin, mkInj(), SagaOptions{})
		if historyString(genRec) != historyString(linRec) {
			t.Fatalf("abort %d: general %s != linear %s", abortAt, historyString(genRec), historyString(linRec))
		}
	}
}
