package fmtm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/atm/saga"
	"repro/internal/engine"
	"repro/internal/fdl"
	"repro/internal/model"
	"repro/internal/rm"
)

// exportOne wraps a generated process into a one-process FDL file with its
// program registrations.
func exportOne(p *model.Process) *fdl.File {
	file := &fdl.File{Types: p.Types, Processes: []*model.Process{p}}
	seen := map[string]bool{}
	collectPrograms(&p.Graph, seen, &file.Programs)
	return file
}

// TestGeneratedFDLRoundTripStable: every translator's output survives
// export -> parse -> export textually unchanged, and the re-imported
// process passes the semantic checks. This exercises nested blocks, data
// connectors, exit conditions, OR joins and structure defaults in FDL.
func TestGeneratedFDLRoundTripStable(t *testing.T) {
	var procs []*model.Process
	p1, err := TranslateSaga(nStepSaga("lin", 4), SagaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := TranslateFlexible(fig3Spec())
	if err != nil {
		t.Fatal(err)
	}
	p3, err := TranslateGeneralSaga(diamondSaga(), SagaOptions{CompensateCompleted: true})
	if err != nil {
		t.Fatal(err)
	}
	procs = append(procs, p1, p2, p3)
	for _, p := range procs {
		file := exportOne(p)
		text := fdl.Export(file)
		re, err := fdl.Parse(text)
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", p.Name, err, text)
		}
		if err := re.Check(); err != nil {
			t.Fatalf("%s: re-check: %v", p.Name, err)
		}
		text2 := fdl.Export(re)
		if text != text2 {
			t.Fatalf("%s: export not stable", p.Name)
		}
	}
}

// TestQuickSagaFDLBehaviouralEquivalence: for random sagas, the process
// executed from the re-imported FDL behaves identically to the directly
// translated one.
func TestQuickSagaFDLBehaviouralEquivalence(t *testing.T) {
	f := func(nRaw, abortRaw uint8) bool {
		n := 1 + int(nRaw%7)
		spec := nStepSaga("q", n)
		direct, err := TranslateSaga(spec, SagaOptions{})
		if err != nil {
			return false
		}
		text := fdl.Export(exportOne(direct))
		re, err := fdl.Parse(text)
		if err != nil {
			t.Logf("re-parse: %v", err)
			return false
		}
		if err := re.Check(); err != nil {
			t.Logf("re-check: %v", err)
			return false
		}
		mkInj := func() *rm.Injector {
			inj := rm.NewInjector()
			if at := int(abortRaw % uint8(n+2)); at >= 1 && at <= n {
				inj.AbortAlways(spec.Steps[at-1].Name)
			}
			return inj
		}
		// Run the re-imported template and the direct one.
		recA := runSagaProcess(t, re.Processes[0], spec, mkInj())
		recB := runSagaProcess(t, direct, spec, mkInj())
		return historyString(recA) == historyString(recB)
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// runSagaProcess executes an arbitrary saga process template (direct or
// re-imported) with injector-driven step programs.
func runSagaProcess(t *testing.T, p *model.Process, spec *saga.Spec, dec rm.Decider) *rm.Recorder {
	t.Helper()
	e := engine.New()
	if err := RegisterRuntime(e); err != nil {
		t.Fatal(err)
	}
	rec := &rm.Recorder{}
	if err := RegisterSaga(e, spec, PureSagaBinding(spec), dec, rec); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance(p.Name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	return rec
}
