package fmtm

import (
	"fmt"
	"strings"

	"repro/internal/atm/saga"
	"repro/internal/expr"
	"repro/internal/model"
)

// TranslateGeneralSaga converts a generalized (parallel) saga into a
// workflow process by extending the Figure 2 construction to partial
// orders, as §4.1 says the original authors did for parallel and
// generalized sagas:
//
//   - the Forward block wires one activity per step along the dependency
//     edges with "RC = 0" transition conditions and AND joins, so
//     independent steps are concurrent in the model and an abort
//     dead-path-eliminates exactly the downstream steps;
//   - the Compensation block mirrors the dependency graph in reverse: the
//     NOP start activity triggers the compensation of every "maximal"
//     executed step (committed, with no committed dependents), and a
//     reversed connector per dependency edge delays each compensation
//     until the compensations of all committed dependents have finished —
//     the or-join semantics of §3.2 (start conditions evaluate only after
//     every incoming connector has a value) provide the synchronization;
//   - the blocks connect on the condition that some step aborted.
func TranslateGeneralSaga(spec *saga.GeneralSpec, opts SagaOptions) (*model.Process, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for _, st := range spec.Steps {
		for _, n := range []string{st.Name, st.Compensation} {
			switch n {
			case forwardBlockName, compensationBlockName, nopActivityName:
				return nil, fmt.Errorf("fmtm: saga %s: %q is a reserved activity name", spec.Name, n)
			}
		}
	}

	n := len(spec.Steps)
	statesType := spec.Name + "_States"
	idx := make(map[string]int, n) // step name -> 1-based state index
	for i, st := range spec.Steps {
		idx[st.Name] = i + 1
	}

	p := model.NewProcess(spec.Name)
	p.Description = fmt.Sprintf("generalized saga %s compiled by Exotica/FMTM (parallel Figure 2 construction)", spec.Name)
	members := make([]model.Member, n)
	for i := range members {
		members[i] = model.Member{Name: stateMember(i + 1), Basic: model.Long, Default: expr.Int(-1)}
	}
	if err := p.Types.Register(&model.StructType{Name: statesType, Members: members}); err != nil {
		return nil, err
	}
	p.OutputType = statesType

	// Forward block: the dependency DAG.
	fwd := &model.Graph{OutputType: statesType}
	for i, st := range spec.Steps {
		fwd.Activities = append(fwd.Activities, &model.Activity{
			Name: st.Name, Kind: model.KindProgram, Program: st.Name,
		})
		fwd.Data = append(fwd.Data, &model.DataConnector{
			From: st.Name, To: model.ScopeRef,
			Maps: []model.DataMap{{FromPath: model.RCMember, ToPath: stateMember(i + 1)}},
		})
		for _, d := range spec.Deps[st.Name] {
			fwd.Control = append(fwd.Control, &model.ControlConnector{
				From: d, To: st.Name, Condition: expr.MustParse("RC = 0"),
			})
		}
	}

	// Compensation block: the reversed DAG.
	comp := &model.Graph{InputType: statesType}
	comp.Activities = append(comp.Activities, &model.Activity{
		Name: nopActivityName, Kind: model.KindProgram, Program: CopyName,
		InputType: statesType, OutputType: statesType,
	})
	comp.Data = append(comp.Data, &model.DataConnector{
		From: model.ScopeRef, To: nopActivityName, Maps: stateMaps(n),
	})
	for _, st := range spec.Steps {
		comp.Activities = append(comp.Activities, &model.Activity{
			Name: st.Compensation, Kind: model.KindProgram, Program: st.Compensation,
			Exit:  expr.MustParse("RC = 0"),
			Retry: retriableRetry,
			Join:  model.JoinOr,
		})
		// NOP fires this compensation when the step committed and none of
		// its dependents did (it is a maximal committed step).
		conds := []string{fmt.Sprintf("%s = 0", stateMember(idx[st.Name]))}
		for _, dep := range dependentsOf(spec, st.Name) {
			conds = append(conds, fmt.Sprintf("%s <> 0", stateMember(idx[dep])))
		}
		comp.Control = append(comp.Control, &model.ControlConnector{
			From: nopActivityName, To: st.Compensation,
			Condition: expr.MustParse(strings.Join(conds, " AND ")),
		})
		// Reversed dependency edges: compensating a dependent enables the
		// compensation of its prerequisites.
		for _, d := range spec.Deps[st.Name] {
			comp.Control = append(comp.Control, &model.ControlConnector{
				From: st.Compensation, To: spec.Steps[idx[d]-1].Compensation,
			})
		}
	}

	p.Activities = []*model.Activity{
		{Name: forwardBlockName, Kind: model.KindBlock, Block: fwd, OutputType: statesType},
		{Name: compensationBlockName, Kind: model.KindBlock, Block: comp, InputType: statesType},
	}
	entry := &model.ControlConnector{From: forwardBlockName, To: compensationBlockName}
	if !opts.CompensateCompleted {
		// The saga aborted iff some step aborted.
		var aborts []string
		for i := 1; i <= n; i++ {
			aborts = append(aborts, fmt.Sprintf("%s = 1", stateMember(i)))
		}
		entry.Condition = expr.MustParse(strings.Join(aborts, " OR "))
	}
	p.Control = []*model.ControlConnector{entry}
	p.Data = []*model.DataConnector{
		{From: forwardBlockName, To: compensationBlockName, Maps: stateMaps(n)},
		{From: forwardBlockName, To: model.ScopeRef, Maps: stateMaps(n)},
	}
	if err := p.Validate(nil); err != nil {
		return nil, fmt.Errorf("fmtm: generated general saga process invalid: %w", err)
	}
	return p, nil
}

// dependentsOf returns the steps depending on name, in declaration order.
func dependentsOf(spec *saga.GeneralSpec, name string) []string {
	var out []string
	for _, st := range spec.Steps {
		for _, d := range spec.Deps[st.Name] {
			if d == name {
				out = append(out, st.Name)
				break
			}
		}
	}
	return out
}
