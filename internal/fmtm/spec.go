// Package fmtm implements Exotica/FMTM, the middleware module of §5 of
// "Advanced Transaction Models in Workflow Contexts": a pre-processor that
// converts high-level specifications of advanced transaction models into
// workflow processes. The user writes a saga or flexible-transaction
// specification; the pre-processor checks it against the model's rules,
// translates it into a process using the constructions of §4 (Figures 2
// and 4), emits FDL, and the FDL import path performs the syntactic and
// semantic checks of the Figure 5 pipeline before producing an executable
// process template.
//
// Specification syntax (single-quoted names, // and /* */ comments):
//
//	SAGA 'travel'
//	  STEP 'book_flight' COMPENSATION 'cancel_flight'
//	  STEP 'book_hotel'  COMPENSATION 'cancel_hotel'
//	END 'travel'
//
//	FLEXIBLE 'fig3'
//	  SUB 'T1' COMPENSATABLE COMPENSATION 'C1'
//	  SUB 'T2' PIVOT
//	  SUB 'T3' RETRIABLE
//	  PATH 'T1' 'T2' 'T3'
//	END 'fig3'
package fmtm

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/atm/flexible"
	"repro/internal/atm/saga"
)

// SpecFile is a parsed FMTM specification file: any number of saga,
// generalized (parallel) saga and flexible transaction specifications. A
// SAGA whose steps carry AFTER clauses parses as a generalized saga.
type SpecFile struct {
	Sagas    []*saga.Spec
	General  []*saga.GeneralSpec
	Flexible []*flexible.Spec
}

// ParseSpec parses an FMTM specification file and checks each
// specification against its model's rules (saga validation; flexible
// validation + well-formedness), per the paper: "The pre-processor checks
// that the user specification meets the format of the advanced transaction
// model specified."
func ParseSpec(src string) (*SpecFile, error) {
	p := &specParser{toks: nil}
	if err := p.scan(src); err != nil {
		return nil, err
	}
	file := &SpecFile{}
	for !p.eof() {
		switch {
		case p.peekKeyword("SAGA"):
			s, gen, err := p.parseSaga()
			if err != nil {
				return nil, err
			}
			if gen != nil {
				if err := gen.Validate(); err != nil {
					return nil, err
				}
				file.General = append(file.General, gen)
				break
			}
			if err := s.Validate(); err != nil {
				return nil, err
			}
			file.Sagas = append(file.Sagas, s)
		case p.peekKeyword("FLEXIBLE"):
			f, err := p.parseFlexible()
			if err != nil {
				return nil, err
			}
			trie, err := flexible.BuildTrie(f)
			if err != nil {
				return nil, err
			}
			if err := trie.CheckWellFormed(); err != nil {
				return nil, err
			}
			file.Flexible = append(file.Flexible, f)
		default:
			return nil, p.errf("expected SAGA or FLEXIBLE")
		}
	}
	if len(file.Sagas) == 0 && len(file.General) == 0 && len(file.Flexible) == 0 {
		return nil, fmt.Errorf("fmtm: empty specification")
	}
	return file, nil
}

type specTok struct {
	kw   string // upper-cased keyword, or "" for names
	name string
	line int
}

type specParser struct {
	toks []specTok
	pos  int
}

func (p *specParser) scan(src string) error {
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for {
				if i+1 >= len(src) {
					return fmt.Errorf("fmtm: line %d: unterminated comment", line)
				}
				if src[i] == '\n' {
					line++
				}
				if src[i] == '*' && src[i+1] == '/' {
					i += 2
					break
				}
				i++
			}
		case c == '\'':
			start := i + 1
			j := start
			for j < len(src) && src[j] != '\'' && src[j] != '\n' {
				j++
			}
			if j >= len(src) || src[j] != '\'' {
				return fmt.Errorf("fmtm: line %d: unterminated name", line)
			}
			p.toks = append(p.toks, specTok{name: src[start:j], line: line})
			i = j + 1
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) {
				r := rune(src[j])
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
					break
				}
				j++
			}
			p.toks = append(p.toks, specTok{kw: strings.ToUpper(src[i:j]), line: line})
			i = j
		default:
			return fmt.Errorf("fmtm: line %d: unexpected character %q", line, c)
		}
	}
	return nil
}

func (p *specParser) eof() bool { return p.pos >= len(p.toks) }

func (p *specParser) errf(format string, args ...any) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("fmtm: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *specParser) peekKeyword(kw string) bool {
	return !p.eof() && p.toks[p.pos].kw == kw
}

func (p *specParser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *specParser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *specParser) expectName() (string, error) {
	if p.eof() || p.toks[p.pos].kw != "" {
		return "", p.errf("expected a 'quoted name'")
	}
	n := p.toks[p.pos].name
	p.pos++
	return n, nil
}

func (p *specParser) expectEnd(name string) error {
	if err := p.expectKeyword("END"); err != nil {
		return err
	}
	got, err := p.expectName()
	if err != nil {
		return err
	}
	if got != name {
		return p.errf("END %q does not match %q", got, name)
	}
	return nil
}

// parseSaga parses a SAGA block. When any step carries an AFTER clause the
// result is a generalized (parallel) saga and the second return value is
// non-nil; otherwise the first is a linear saga.
func (p *specParser) parseSaga() (*saga.Spec, *saga.GeneralSpec, error) {
	p.pos++ // SAGA
	name, err := p.expectName()
	if err != nil {
		return nil, nil, err
	}
	s := &saga.Spec{Name: name}
	deps := map[string][]string{}
	hasDeps := false
	for p.peekKeyword("STEP") {
		p.pos++
		stepName, err := p.expectName()
		if err != nil {
			return nil, nil, err
		}
		if err := p.expectKeyword("COMPENSATION"); err != nil {
			return nil, nil, err
		}
		comp, err := p.expectName()
		if err != nil {
			return nil, nil, err
		}
		if p.acceptKeyword("AFTER") {
			hasDeps = true
			var after []string
			for !p.eof() && p.toks[p.pos].kw == "" {
				d, _ := p.expectName()
				after = append(after, d)
			}
			if len(after) == 0 {
				return nil, nil, p.errf("AFTER without step names")
			}
			deps[stepName] = after
		}
		s.Steps = append(s.Steps, saga.Step{Name: stepName, Compensation: comp})
	}
	if err := p.expectEnd(name); err != nil {
		return nil, nil, err
	}
	if hasDeps {
		return nil, &saga.GeneralSpec{Name: name, Steps: s.Steps, Deps: deps}, nil
	}
	return s, nil, nil
}

func (p *specParser) parseFlexible() (*flexible.Spec, error) {
	p.pos++ // FLEXIBLE
	name, err := p.expectName()
	if err != nil {
		return nil, err
	}
	f := &flexible.Spec{Name: name}
	for {
		switch {
		case p.peekKeyword("SUB"):
			p.pos++
			subName, err := p.expectName()
			if err != nil {
				return nil, err
			}
			sub := flexible.SubSpec{Name: subName}
			sawType := false
			for {
				switch {
				case p.acceptKeyword("COMPENSATABLE"):
					sub.Compensatable = true
					sawType = true
				case p.acceptKeyword("RETRIABLE"):
					sub.Retriable = true
					sawType = true
				case p.acceptKeyword("PIVOT"):
					sawType = true
				case p.acceptKeyword("COMPENSATION"):
					comp, err := p.expectName()
					if err != nil {
						return nil, err
					}
					sub.Compensation = comp
				default:
					goto doneSub
				}
			}
		doneSub:
			if !sawType {
				return nil, p.errf("subtransaction %q needs a type (COMPENSATABLE, RETRIABLE or PIVOT)", subName)
			}
			f.Subs = append(f.Subs, sub)
		case p.peekKeyword("PATH"):
			p.pos++
			var path []string
			for !p.eof() && p.toks[p.pos].kw == "" {
				n, _ := p.expectName()
				path = append(path, n)
			}
			if len(path) == 0 {
				return nil, p.errf("PATH without subtransactions")
			}
			f.Paths = append(f.Paths, path)
		default:
			if err := p.expectEnd(name); err != nil {
				return nil, err
			}
			return f, nil
		}
	}
}
