package expr

import "testing"

// FuzzParse drives the condition parser with arbitrary input: no panics,
// and accepted expressions print to a canonical form that re-parses to a
// tree with the identical canonical form.
func FuzzParse(f *testing.F) {
	f.Add("RC = 0")
	f.Add("a.b.c <> -42 AND NOT (x OR y)")
	f.Add(`s = "str with \"quotes\" and \\"`)
	f.Add("1.5e3 >= x")
	f.Add("((TRUE))")
	f.Add("NOT NOT NOT b")
	f.Add("=")
	f.Add("(")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		canon := n.String()
		n2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form unparseable: %q (from %q): %v", canon, src, err)
		}
		if canon2 := n2.String(); canon2 != canon {
			t.Fatalf("canonical form unstable: %q -> %q (from %q)", canon, canon2, src)
		}
	})
}
