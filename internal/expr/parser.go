package expr

import (
	"strconv"
	"strings"
)

// Parse parses a condition expression in FDL condition syntax.
//
// Grammar (operators case-insensitive, standard precedence):
//
//	expr   = or
//	or     = and { "OR" and }
//	and    = not { "AND" not }
//	not    = "NOT" not | cmp
//	cmp    = atom [ ("=" | "<>" | "<" | "<=" | ">" | ">=") atom ]
//	atom   = ident | int | float | string | "TRUE" | "FALSE" | "(" expr ")"
func Parse(src string) (Node, error) {
	p := &parser{lx: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.lx.errorf(p.tok.pos, "unexpected trailing input")
	}
	return n, nil
}

// MustParse is Parse that panics on error; for use with constant
// expressions in translators and tests.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	lx  lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) parseOr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.tok.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: OpNot, X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		op := p.tok.op
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAtom() (Node, error) {
	t := p.tok
	switch t.kind {
	case tokIdent:
		if err := p.advance(); err != nil {
			return nil, err
		}
		path := strings.Split(t.text, ".")
		for _, seg := range path {
			if seg == "" {
				return nil, p.lx.errorf(t.pos, "empty member path segment in %q", t.text)
			}
		}
		return &Ref{Path: path}, nil
	case tokInt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.lx.errorf(t.pos, "invalid integer %q", t.text)
		}
		return &Lit{Val: Int(v)}, nil
	case tokFloat:
		if err := p.advance(); err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.lx.errorf(t.pos, "invalid float %q", t.text)
		}
		return &Lit{Val: Float(v)}, nil
	case tokString:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: String_(t.text)}, nil
	case tokTrue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: Bool(true)}, nil
	case tokFalse:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Lit{Val: Bool(false)}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.lx.errorf(p.tok.pos, "expected ')'")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokEOF:
		return nil, p.lx.errorf(t.pos, "unexpected end of expression")
	default:
		return nil, p.lx.errorf(t.pos, "unexpected token")
	}
}
