// Package expr implements the condition expression language used by
// transition, start and exit conditions of workflow processes.
//
// The language is a small, side-effect-free boolean/arithmetic comparison
// language over the typed members of data containers, in the style of the
// FlowMark Definition Language condition syntax:
//
//	RC = 0 AND (State_2 <> 1 OR NOT Done)
//
// Identifiers are dotted member paths resolved against an Env (usually a
// data container). Literals are 64-bit integers, floats, double-quoted
// strings and the keywords TRUE and FALSE. Keywords are case-insensitive.
package expr
