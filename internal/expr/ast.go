package expr

import "strings"

// Node is an expression AST node. Nodes are immutable after parsing and can
// be shared between goroutines.
type Node interface {
	// String renders the node in canonical FDL condition syntax; the result
	// re-parses to an equivalent tree.
	String() string
	// precedence is used by String to decide on parenthesization.
	precedence() int
}

// Op identifies binary and unary operators.
type Op uint8

// Operators of the condition language.
const (
	OpInvalid Op = iota
	OpOr
	OpAnd
	OpNot
	OpEq // =
	OpNe // <>
	OpLt // <
	OpLe // <=
	OpGt // >
	OpGe // >=
)

// String renders the operator in FDL syntax.
func (o Op) String() string {
	switch o {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpNot:
		return "NOT"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

const (
	precOr = iota + 1
	precAnd
	precNot
	precCmp
	precAtom
)

// Binary is a binary operation: AND, OR or a comparison.
type Binary struct {
	Op   Op
	L, R Node
}

func (b *Binary) precedence() int {
	switch b.Op {
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	default:
		return precCmp
	}
}

// String implements Node.
func (b *Binary) String() string {
	var sb strings.Builder
	writeOperand(&sb, b.L, b.precedence(), false)
	sb.WriteByte(' ')
	sb.WriteString(b.Op.String())
	sb.WriteByte(' ')
	writeOperand(&sb, b.R, b.precedence(), true)
	return sb.String()
}

func writeOperand(sb *strings.Builder, n Node, parentPrec int, right bool) {
	p := n.precedence()
	need := p < parentPrec || (right && p == parentPrec && parentPrec >= precCmp)
	// AND/OR are associative; comparisons are non-associative so the right
	// operand of a comparison at equal precedence needs parentheses.
	if right && p == parentPrec && parentPrec < precCmp {
		need = false
	}
	if need {
		sb.WriteByte('(')
		sb.WriteString(n.String())
		sb.WriteByte(')')
		return
	}
	sb.WriteString(n.String())
}

// Unary is the NOT operation.
type Unary struct {
	Op Op // always OpNot
	X  Node
}

func (u *Unary) precedence() int { return precNot }

// String implements Node.
func (u *Unary) String() string {
	if u.X.precedence() < precNot {
		return "NOT (" + u.X.String() + ")"
	}
	return "NOT " + u.X.String()
}

// Lit is a literal value.
type Lit struct {
	Val Value
}

func (l *Lit) precedence() int { return precAtom }

// String implements Node.
func (l *Lit) String() string { return l.Val.String() }

// Ref is a reference to a container member, as a dotted path.
type Ref struct {
	Path []string
}

func (r *Ref) precedence() int { return precAtom }

// String implements Node.
func (r *Ref) String() string { return joinPath(r.Path) }

// True is the constant TRUE expression, handy as a default condition.
var True Node = &Lit{Val: Bool(true)}

// False is the constant FALSE expression.
var False Node = &Lit{Val: Bool(false)}
