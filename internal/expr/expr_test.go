package expr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func evalBool(t *testing.T, src string, env Env) bool {
	t.Helper()
	b, err := EvalBool(mustParse(t, src), env)
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", src, err)
	}
	return b
}

func TestParseAndEvalBasics(t *testing.T) {
	env := MapEnv{
		"RC":      Int(0),
		"State_2": Int(-1),
		"name":    String_("alice"),
		"score":   Float(1.5),
		"done":    Bool(true),
		"a.b.c":   Int(7),
	}
	cases := []struct {
		src  string
		want bool
	}{
		{"RC = 0", true},
		{"RC <> 0", false},
		{"State_2 = -1", true},
		{"State_2 < 0", true},
		{"State_2 >= 0", false},
		{"name = \"alice\"", true},
		{"name <> \"bob\"", true},
		{"score > 1", true},
		{"score <= 1.5", true},
		{"done", true},
		{"NOT done", false},
		{"TRUE", true},
		{"FALSE", false},
		{"RC = 0 AND done", true},
		{"RC <> 0 OR done", true},
		{"RC <> 0 OR NOT done", false},
		{"NOT (RC = 0 AND done)", false},
		{"a.b.c = 7", true},
		{"RC = 0 AND State_2 = -1 AND name = \"alice\"", true},
		{"RC = 0 OR State_2 = 0 AND FALSE", true}, // AND binds tighter
		{"(RC = 0 OR State_2 = 0) AND FALSE", false},
		{"RC = 0.0", true}, // int/float coercion
		{"score = 1.5", true},
		{"not done or true", true}, // case-insensitive keywords
	}
	for _, c := range cases {
		if got := evalBool(t, c.src, env); got != c.want {
			t.Errorf("eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"RC =",
		"= 0",
		"RC = 0 AND",
		"(RC = 0",
		"RC == 0 0",
		"\"unterminated",
		"RC = 0 extra",
		"a..b = 1",
		"RC ! 0",
		"NOT",
		"- ",
		"\"bad \\q escape\"",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	env := MapEnv{"n": Int(1), "s": String_("x"), "b": Bool(true)}
	bad := []string{
		"missing = 1", // unknown ref
		"n AND b",     // AND on int
		"NOT n",       // NOT on int
		"n < s",       // int vs string ordering
		"b > b",       // bool ordering
	}
	for _, src := range bad {
		if _, err := EvalBool(mustParse(t, src), env); err == nil {
			t.Errorf("EvalBool(%q) succeeded, want error", src)
		}
	}
	// Non-boolean condition result.
	if _, err := EvalBool(mustParse(t, "n"), env); err == nil {
		t.Error("EvalBool(\"n\") succeeded, want error for LONG condition")
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand references an unknown member; short-circuiting must
	// avoid evaluating it.
	env := MapEnv{"ok": Bool(true), "no": Bool(false)}
	if got := evalBool(t, "ok OR missing = 1", env); !got {
		t.Error("OR short-circuit failed")
	}
	if got := evalBool(t, "no AND missing = 1", env); got {
		t.Error("AND short-circuit failed")
	}
}

func TestStringEscapes(t *testing.T) {
	env := MapEnv{"s": String_("a\"b\n\tc\\d")}
	src := `s = "a\"b\n\tc\\d"`
	if !evalBool(t, src, env) {
		t.Errorf("escape round trip failed for %s", src)
	}
}

func TestCanonicalString(t *testing.T) {
	pairs := map[string]string{
		"RC=0":                       "RC = 0",
		"a = 1 AND b = 2 OR c = 3":   "a = 1 AND b = 2 OR c = 3",
		"a = 1 AND (b = 2 OR c = 3)": "a = 1 AND (b = 2 OR c = 3)",
		"NOT (a = 1)":                "NOT a = 1", // NOT binds a full comparison
		"NOT a":                      "NOT a",
		"((a = 1))":                  "a = 1",
		"x >= -3":                    "x >= -3",
		"s = \"hi\"":                 `s = "hi"`,
	}
	for src, want := range pairs {
		n := mustParse(t, src)
		if got := n.String(); got != want {
			t.Errorf("String(parse(%q)) = %q, want %q", src, got, want)
		}
	}
}

// genNode builds a random expression tree whose leaves reference env
// members, for the print/parse round-trip property.
func genNode(r *rand.Rand, depth int) Node {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &Ref{Path: []string{[]string{"a", "b", "RC", "State_1"}[r.Intn(4)]}}
		case 1:
			return &Lit{Val: Int(int64(r.Intn(21) - 10))}
		case 2:
			return &Lit{Val: Bool(r.Intn(2) == 0)}
		default:
			return &Lit{Val: String_(strings.Repeat("x", r.Intn(3)))}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &Unary{Op: OpNot, X: genBoolNode(r, depth-1)}
	case 1, 2:
		return &Binary{Op: OpAnd, L: genBoolNode(r, depth-1), R: genBoolNode(r, depth-1)}
	case 3, 4:
		return &Binary{Op: OpOr, L: genBoolNode(r, depth-1), R: genBoolNode(r, depth-1)}
	default:
		ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
		return &Binary{Op: ops[r.Intn(len(ops))], L: genNode(r, 0), R: genNode(r, 0)}
	}
}

func genBoolNode(r *rand.Rand, depth int) Node {
	if depth <= 0 {
		return &Lit{Val: Bool(r.Intn(2) == 0)}
	}
	n := genNode(r, depth)
	// Ensure boolean-typed subtree for NOT/AND/OR operands.
	switch n := n.(type) {
	case *Lit:
		if n.Val.Kind() != KindBool {
			return &Lit{Val: Bool(true)}
		}
	case *Ref:
		return &Lit{Val: Bool(false)}
	}
	return n
}

// TestQuickRoundTrip checks that printing a random tree and re-parsing it
// yields a tree that evaluates identically under a random environment.
func TestQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := genBoolNode(rr, 4)
		src := n.String()
		n2, err := Parse(src)
		if err != nil {
			t.Logf("re-parse of %q failed: %v", src, err)
			return false
		}
		env := MapEnv{
			"a":       Int(int64(rr.Intn(5) - 2)),
			"b":       Int(int64(rr.Intn(5) - 2)),
			"RC":      Int(int64(rr.Intn(3))),
			"State_1": Int(int64(rr.Intn(3) - 1)),
		}
		v1, err1 := Eval(n, env)
		v2, err2 := Eval(n2, env)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("eval divergence for %q: %v vs %v", src, err1, err2)
			return false
		}
		if err1 != nil {
			return true // both error: fine
		}
		if !v1.Equal(v2) {
			t.Logf("value divergence for %q: %v vs %v", src, v1, v2)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRefs(t *testing.T) {
	n := mustParse(t, "RC = 0 AND a.b <> 1 OR NOT (RC = 2) AND c > a.b")
	refs := Refs(n)
	got := make([]string, len(refs))
	for i, p := range refs {
		got[i] = strings.Join(p, ".")
	}
	want := []string{"RC", "a.b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Refs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Refs = %v, want %v", got, want)
		}
	}
}

func TestValueHelpers(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) != Float(3)")
	}
	if Int(3).Equal(String_("3")) {
		t.Error("Int(3) == String(\"3\")")
	}
	if !Null.Equal(Null) {
		t.Error("Null != Null")
	}
	if Null.Equal(Int(0)) {
		t.Error("Null == Int(0)")
	}
	if ZeroOf(KindInt) != Int(0) || ZeroOf(KindString) != String_("") || ZeroOf(KindBool) != Bool(false) {
		t.Error("ZeroOf wrong")
	}
	if _, err := Int(1).Compare(Null); err == nil {
		t.Error("Compare with Null should fail")
	}
	if c, err := String_("a").Compare(String_("b")); err != nil || c != -1 {
		t.Errorf("string compare: %d, %v", c, err)
	}
	for _, k := range []Kind{KindNull, KindInt, KindFloat, KindString, KindBool} {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
	if Float(2.5).String() != "2.5" || Int(-4).String() != "-4" || Bool(true).String() != "TRUE" {
		t.Error("Value.String formatting wrong")
	}
}
