package expr

import "fmt"

// EvalError describes a runtime evaluation failure (unknown reference or
// type mismatch).
type EvalError struct {
	Expr string
	Msg  string
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("expr: evaluating %q: %s", e.Expr, e.Msg)
}

// Eval evaluates the node against the environment and returns the resulting
// value. Conditions evaluate to booleans; atoms may evaluate to any kind.
func Eval(n Node, env Env) (Value, error) {
	v, err := eval(n, env)
	if err != nil {
		return Null, &EvalError{Expr: n.String(), Msg: err.Error()}
	}
	return v, nil
}

// EvalBool evaluates a condition and requires a boolean result.
func EvalBool(n Node, env Env) (bool, error) {
	v, err := Eval(n, env)
	if err != nil {
		return false, err
	}
	if v.Kind() != KindBool {
		return false, &EvalError{Expr: n.String(), Msg: fmt.Sprintf("condition yields %s, want BOOL", v.Kind())}
	}
	return v.AsBool(), nil
}

func eval(n Node, env Env) (Value, error) {
	switch n := n.(type) {
	case *Lit:
		return n.Val, nil
	case *Ref:
		v, ok := env.Lookup(n.Path)
		if !ok {
			return Null, fmt.Errorf("unknown member %q", n.String())
		}
		return v, nil
	case *Unary:
		x, err := eval(n.X, env)
		if err != nil {
			return Null, err
		}
		if x.Kind() != KindBool {
			return Null, fmt.Errorf("NOT applied to %s", x.Kind())
		}
		return Bool(!x.AsBool()), nil
	case *Binary:
		switch n.Op {
		case OpAnd, OpOr:
			l, err := eval(n.L, env)
			if err != nil {
				return Null, err
			}
			if l.Kind() != KindBool {
				return Null, fmt.Errorf("%s applied to %s", n.Op, l.Kind())
			}
			// Short circuit.
			if n.Op == OpAnd && !l.AsBool() {
				return Bool(false), nil
			}
			if n.Op == OpOr && l.AsBool() {
				return Bool(true), nil
			}
			r, err := eval(n.R, env)
			if err != nil {
				return Null, err
			}
			if r.Kind() != KindBool {
				return Null, fmt.Errorf("%s applied to %s", n.Op, r.Kind())
			}
			return r, nil
		case OpEq, OpNe:
			l, err := eval(n.L, env)
			if err != nil {
				return Null, err
			}
			r, err := eval(n.R, env)
			if err != nil {
				return Null, err
			}
			eq := l.Equal(r)
			if n.Op == OpNe {
				eq = !eq
			}
			return Bool(eq), nil
		case OpLt, OpLe, OpGt, OpGe:
			l, err := eval(n.L, env)
			if err != nil {
				return Null, err
			}
			r, err := eval(n.R, env)
			if err != nil {
				return Null, err
			}
			c, err := l.Compare(r)
			if err != nil {
				return Null, err
			}
			switch n.Op {
			case OpLt:
				return Bool(c < 0), nil
			case OpLe:
				return Bool(c <= 0), nil
			case OpGt:
				return Bool(c > 0), nil
			default:
				return Bool(c >= 0), nil
			}
		default:
			return Null, fmt.Errorf("invalid operator %v", n.Op)
		}
	default:
		return Null, fmt.Errorf("invalid node %T", n)
	}
}

// Refs returns the set of member paths referenced by the expression, in
// first-occurrence order. Translators use it to type-check generated
// conditions against container types.
func Refs(n Node) [][]string {
	var out [][]string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch n := n.(type) {
		case *Ref:
			key := n.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, n.Path)
			}
		case *Unary:
			walk(n.X)
		case *Binary:
			walk(n.L)
			walk(n.R)
		}
	}
	walk(n)
	return out
}
