package expr

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokOp // = <> < <= > >=
	tokLParen
	tokRParen
	tokAnd
	tokOr
	tokNot
	tokTrue
	tokFalse
)

type token struct {
	kind tokenKind
	text string
	op   Op
	pos  int
}

// SyntaxError describes a lexical or parse error with its byte offset in the
// source text.
type SyntaxError struct {
	Pos int
	Msg string
	Src string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Src)
}

type lexer struct {
	src string
	pos int
}

func (lx *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...), Src: lx.src}
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && isSpace(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch {
	case c == '(':
		lx.pos++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		lx.pos++
		return token{kind: tokRParen, pos: start}, nil
	case c == '=':
		lx.pos++
		return token{kind: tokOp, op: OpEq, pos: start}, nil
	case c == '<':
		lx.pos++
		if lx.pos < len(lx.src) {
			switch lx.src[lx.pos] {
			case '>':
				lx.pos++
				return token{kind: tokOp, op: OpNe, pos: start}, nil
			case '=':
				lx.pos++
				return token{kind: tokOp, op: OpLe, pos: start}, nil
			}
		}
		return token{kind: tokOp, op: OpLt, pos: start}, nil
	case c == '>':
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '=' {
			lx.pos++
			return token{kind: tokOp, op: OpGe, pos: start}, nil
		}
		return token{kind: tokOp, op: OpGt, pos: start}, nil
	case c == '"':
		return lx.lexString()
	case c == '-' || c >= '0' && c <= '9':
		return lx.lexNumber()
	case isIdentStart(rune(c)):
		return lx.lexIdent()
	default:
		return token{}, lx.errorf(start, "unexpected character %q", c)
	}
}

func (lx *lexer) lexString() (token, error) {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch c {
		case '"':
			lx.pos++
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		case '\\':
			lx.pos++
			if lx.pos >= len(lx.src) {
				return token{}, lx.errorf(start, "unterminated string")
			}
			esc := lx.src[lx.pos]
			switch esc {
			case '"', '\\':
				sb.WriteByte(esc)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				return token{}, lx.errorf(lx.pos, "unknown escape \\%c", esc)
			}
			lx.pos++
		default:
			sb.WriteByte(c)
			lx.pos++
		}
	}
	return token{}, lx.errorf(start, "unterminated string")
}

func (lx *lexer) lexNumber() (token, error) {
	start := lx.pos
	if lx.src[lx.pos] == '-' {
		lx.pos++
		if lx.pos >= len(lx.src) || lx.src[lx.pos] < '0' || lx.src[lx.pos] > '9' {
			return token{}, lx.errorf(start, "expected digits after '-'")
		}
	}
	isFloat := false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c >= '0' && c <= '9' {
			lx.pos++
			continue
		}
		if c == '.' && !isFloat {
			isFloat = true
			lx.pos++
			continue
		}
		if (c == 'e' || c == 'E') && lx.pos+1 < len(lx.src) {
			// exponent: e[+-]?digits
			p := lx.pos + 1
			if lx.src[p] == '+' || lx.src[p] == '-' {
				p++
			}
			if p < len(lx.src) && lx.src[p] >= '0' && lx.src[p] <= '9' {
				isFloat = true
				lx.pos = p
				continue
			}
		}
		break
	}
	text := lx.src[start:lx.pos]
	if isFloat {
		return token{kind: tokFloat, text: text, pos: start}, nil
	}
	return token{kind: tokInt, text: text, pos: start}, nil
}

func (lx *lexer) lexIdent() (token, error) {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	text := lx.src[start:lx.pos]
	switch strings.ToUpper(text) {
	case "AND":
		return token{kind: tokAnd, pos: start}, nil
	case "OR":
		return token{kind: tokOr, pos: start}, nil
	case "NOT":
		return token{kind: tokNot, pos: start}, nil
	case "TRUE":
		return token{kind: tokTrue, pos: start}, nil
	case "FALSE":
		return token{kind: tokFalse, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

// isIdentPart accepts letters, digits, underscore and '.' (member paths).
func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
