package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

// The possible kinds of a Value.
const (
	KindNull Kind = iota // absent / uninitialized
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the FDL type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "LONG"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar manipulated by the expression
// evaluator and stored in container members. The zero Value is Null.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the absent value.
var Null = Value{}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String_ returns a string value. (Named with a trailing underscore because
// Value already has a String method implementing fmt.Stringer.)
func String_(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is absent.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer payload; it is only meaningful when Kind is
// KindInt.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload, converting from an integer payload if
// necessary.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload; it is only meaningful when Kind is
// KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload; it is only meaningful when Kind is
// KindBool.
func (v Value) AsBool() bool { return v.b }

// String renders the value as an FDL literal. String values are quoted
// using exactly the escapes the condition lexer understands (\" \\ \n \t);
// all other bytes pass through raw, so the output always re-parses.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		// Keep the literal float-typed on re-parse: "2" or "-0" would come
		// back as integers.
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && s != "NaN" {
			s += ".0"
		}
		return s
	case KindString:
		return QuoteString(v.s)
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// QuoteString renders s as a double-quoted condition-language string
// literal using only the escapes the lexer accepts.
func QuoteString(s string) string {
	b := make([]byte, 0, len(s)+2)
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b = append(b, '\\', c)
		case '\n':
			b = append(b, '\\', 'n')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, c)
		}
	}
	return string(append(b, '"'))
}

// Equal reports deep equality of two values, with int/float numeric
// coercion (Int(1) equals Float(1.0)).
func (v Value) Equal(o Value) bool {
	if v.isNumeric() && o.isNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare orders two values: -1, 0, +1. It returns an error when the values
// are not mutually ordered (e.g. a string against an int, or any null).
func (v Value) Compare(o Value) (int, error) {
	if v.isNumeric() && o.isNumeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1, nil
		case a > b:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if v.kind == KindString && o.kind == KindString {
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("expr: cannot compare %s with %s", v.kind, o.kind)
}

// ZeroOf returns the default value for a kind: 0, 0.0, "", FALSE.
func ZeroOf(k Kind) Value {
	switch k {
	case KindInt:
		return Int(0)
	case KindFloat:
		return Float(0)
	case KindString:
		return String_("")
	case KindBool:
		return Bool(false)
	default:
		return Null
	}
}

// Env resolves identifier paths to values during evaluation. Data
// containers implement Env.
type Env interface {
	// Lookup resolves a dotted member path such as ["order", "total"].
	// It reports false when the path does not exist.
	Lookup(path []string) (Value, bool)
}

// MapEnv is a simple Env backed by a map from the joined dotted path to a
// value; convenient in tests.
type MapEnv map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(path []string) (Value, bool) {
	v, ok := m[joinPath(path)]
	return v, ok
}

func joinPath(path []string) string {
	switch len(path) {
	case 0:
		return ""
	case 1:
		return path[0]
	}
	n := len(path) - 1
	for _, p := range path {
		n += len(p)
	}
	b := make([]byte, 0, n)
	for i, p := range path {
		if i > 0 {
			b = append(b, '.')
		}
		b = append(b, p...)
	}
	return string(b)
}
