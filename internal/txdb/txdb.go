package txdb

import (
	"errors"
	"fmt"
	"sync"
)

// ErrDeadlock is returned by Get/Put/Delete when granting the lock would
// close a cycle in the waits-for graph; the caller must abort the
// transaction (it is the paper's "local database unilaterally aborts").
var ErrDeadlock = errors.New("txdb: deadlock detected")

// ErrTxDone is returned when a committed or aborted transaction is used.
var ErrTxDone = errors.New("txdb: transaction already finished")

type lockMode uint8

const (
	lockNone lockMode = iota
	lockShared
	lockExclusive
)

type lockState struct {
	holders map[int64]lockMode
}

// Store is one local database. It is safe for concurrent use by many
// transactions.
type Store struct {
	name string

	mu    sync.Mutex
	cond  *sync.Cond
	data  map[string]string
	locks map[string]*lockState
	// waits is the waits-for graph: waiter id -> the holder ids it waits on.
	waits  map[int64]map[int64]bool
	nextTx int64

	// stats
	commits, aborts, deadlocks int64
}

// Open creates an empty store with the given name.
func Open(name string) *Store {
	s := &Store{
		name:  name,
		data:  make(map[string]string),
		locks: make(map[string]*lockState),
		waits: make(map[int64]map[int64]bool),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Name returns the store's name.
func (s *Store) Name() string { return s.name }

// Stats reports the number of committed and aborted transactions and how
// many aborts were deadlock victims.
func (s *Store) Stats() (commits, aborts, deadlocks int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.aborts, s.deadlocks
}

// Len reports the number of keys (uncommitted writes included, since
// strict 2PL hides them from every other transaction anyway).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}

// Begin starts a transaction.
func (s *Store) Begin() *Tx {
	s.mu.Lock()
	s.nextTx++
	id := s.nextTx
	s.mu.Unlock()
	return &Tx{store: s, id: id, held: make(map[string]lockMode)}
}

type undoRec struct {
	key     string
	value   string
	existed bool
}

// Tx is a transaction. A Tx must be used from a single goroutine and must
// end with Commit or Abort.
type Tx struct {
	store *Store
	id    int64
	held  map[string]lockMode
	undo  []undoRec
	done  bool
}

// ID returns the transaction identifier within its store.
func (t *Tx) ID() int64 { return t.id }

// Get reads a key under a shared lock.
func (t *Tx) Get(key string) (string, bool, error) {
	if t.done {
		return "", false, ErrTxDone
	}
	if err := t.store.acquire(t, key, lockShared); err != nil {
		return "", false, err
	}
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	v, ok := t.store.data[key]
	return v, ok, nil
}

// Put writes a key under an exclusive lock, recording the before image.
func (t *Tx) Put(key, value string) error {
	if t.done {
		return ErrTxDone
	}
	if err := t.store.acquire(t, key, lockExclusive); err != nil {
		return err
	}
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	old, existed := t.store.data[key]
	t.undo = append(t.undo, undoRec{key: key, value: old, existed: existed})
	t.store.data[key] = value
	return nil
}

// Delete removes a key under an exclusive lock.
func (t *Tx) Delete(key string) error {
	if t.done {
		return ErrTxDone
	}
	if err := t.store.acquire(t, key, lockExclusive); err != nil {
		return err
	}
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	old, existed := t.store.data[key]
	if existed {
		t.undo = append(t.undo, undoRec{key: key, value: old, existed: true})
		delete(t.store.data, key)
	}
	return nil
}

// Commit makes the transaction's writes durable and releases all locks.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commits++
	s.releaseAllLocked(t)
	return nil
}

// Abort undoes the transaction's writes (before images, in reverse order)
// and releases all locks.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if u.existed {
			s.data[u.key] = u.value
		} else {
			delete(s.data, u.key)
		}
	}
	s.aborts++
	s.releaseAllLocked(t)
	return nil
}

func (s *Store) releaseAllLocked(t *Tx) {
	for key := range t.held {
		ls := s.locks[key]
		if ls != nil {
			delete(ls.holders, t.id)
			if len(ls.holders) == 0 {
				delete(s.locks, key)
			}
		}
	}
	delete(s.waits, t.id)
	s.cond.Broadcast()
}

// acquire blocks until the lock is granted or a deadlock is detected.
func (s *Store) acquire(t *Tx, key string, mode lockMode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.held[key] >= mode {
		return nil // already held at sufficient strength
	}
	for {
		ls := s.locks[key]
		if ls == nil {
			ls = &lockState{holders: make(map[int64]lockMode)}
			s.locks[key] = ls
		}
		if s.grantable(ls, t.id, mode) {
			ls.holders[t.id] = mode
			t.held[key] = mode
			delete(s.waits, t.id)
			return nil
		}
		// Record who we wait for and look for a cycle through us.
		blockers := make(map[int64]bool)
		for h := range ls.holders {
			if h != t.id {
				blockers[h] = true
			}
		}
		s.waits[t.id] = blockers
		if s.cycleFrom(t.id) {
			delete(s.waits, t.id)
			s.deadlocks++
			return fmt.Errorf("%w: store %s, key %q, tx %d", ErrDeadlock, s.name, key, t.id)
		}
		s.cond.Wait()
		delete(s.waits, t.id)
	}
}

// grantable implements S/X compatibility with upgrade: S is granted when no
// other transaction holds X; X is granted when no other transaction holds
// any lock (an S lock held by the requester upgrades).
func (s *Store) grantable(ls *lockState, tx int64, mode lockMode) bool {
	for h, m := range ls.holders {
		if h == tx {
			continue
		}
		if mode == lockExclusive || m == lockExclusive {
			return false
		}
	}
	return true
}

// cycleFrom reports whether the waits-for graph has a cycle reachable from
// the given transaction.
func (s *Store) cycleFrom(start int64) bool {
	seen := make(map[int64]bool)
	var stack []int64
	stack = append(stack, start)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for m := range s.waits[n] {
			if m == start {
				return true
			}
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// Do runs fn inside a transaction, committing on nil and aborting on error
// or panic. ErrDeadlock is passed through for the caller to retry.
func (s *Store) Do(fn func(tx *Tx) error) error {
	tx := s.Begin()
	defer func() {
		if !tx.done {
			_ = tx.Abort()
		}
	}()
	if err := fn(tx); err != nil {
		_ = tx.Abort()
		return err
	}
	return tx.Commit()
}

// DoRetry runs fn in a transaction, retrying on deadlock up to attempts
// times.
func (s *Store) DoRetry(attempts int, fn func(tx *Tx) error) error {
	var err error
	for i := 0; i < attempts; i++ {
		err = s.Do(fn)
		if !errors.Is(err, ErrDeadlock) {
			return err
		}
	}
	return err
}

// Multibase is a set of independent local databases keyed by name — the
// heterogeneous multidatabase environment of §4.2.
type Multibase struct {
	stores map[string]*Store
}

// NewMultibase creates one store per name.
func NewMultibase(names ...string) *Multibase {
	m := &Multibase{stores: make(map[string]*Store, len(names))}
	for _, n := range names {
		m.stores[n] = Open(n)
	}
	return m
}

// Store returns the named local database, or nil.
func (m *Multibase) Store(name string) *Store { return m.stores[name] }

// Names returns the database names (unordered).
func (m *Multibase) Names() []string {
	out := make([]string, 0, len(m.stores))
	for n := range m.stores {
		out = append(out, n)
	}
	return out
}
