package txdb

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicCRUD(t *testing.T) {
	s := Open("db1")
	if s.Name() != "db1" {
		t.Fatal("name")
	}
	tx := s.Begin()
	if _, ok, err := tx.Get("a"); err != nil || ok {
		t.Fatalf("empty get: %v %v", ok, err)
	}
	if err := tx.Put("a", "1"); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := tx.Get("a"); err != nil || !ok || v != "1" {
		t.Fatalf("read own write: %q %v %v", v, ok, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	if v, ok, _ := tx2.Get("a"); !ok || v != "1" {
		t.Fatalf("committed value: %q %v", v, ok)
	}
	if err := tx2.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx2.Get("a"); ok {
		t.Fatal("delete not visible to self")
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatal("store not empty")
	}
}

func TestAbortUndo(t *testing.T) {
	s := Open("db")
	if err := s.Do(func(tx *Tx) error { return tx.Put("a", "old") }); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	if err := tx.Put("a", "new1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("a", "new2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("b", "created"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	defer tx2.Abort()
	if v, ok, _ := tx2.Get("a"); !ok || v != "old" {
		t.Fatalf("a after abort: %q %v, want old", v, ok)
	}
	if _, ok, _ := tx2.Get("b"); ok {
		t.Fatal("b survived abort")
	}
}

func TestTxDoneErrors(t *testing.T) {
	s := Open("db")
	tx := s.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Error("double commit")
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Error("abort after commit")
	}
	if _, _, err := tx.Get("a"); !errors.Is(err, ErrTxDone) {
		t.Error("get after commit")
	}
	if err := tx.Put("a", "1"); !errors.Is(err, ErrTxDone) {
		t.Error("put after commit")
	}
	if err := tx.Delete("a"); !errors.Is(err, ErrTxDone) {
		t.Error("delete after commit")
	}
}

func TestSharedLocksAllowConcurrentReaders(t *testing.T) {
	s := Open("db")
	if err := s.Do(func(tx *Tx) error { return tx.Put("a", "1") }); err != nil {
		t.Fatal(err)
	}
	t1, t2 := s.Begin(), s.Begin()
	if _, _, err := t1.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := t2.Get("a"); err != nil {
		t.Fatal(err)
	}
	t1.Commit()
	t2.Commit()
}

func TestExclusiveBlocksUntilCommit(t *testing.T) {
	s := Open("db")
	writer := s.Begin()
	if err := writer.Put("a", "dirty"); err != nil {
		t.Fatal(err)
	}
	read := make(chan string)
	go func() {
		v := ""
		_ = s.Do(func(tx *Tx) error {
			got, _, err := tx.Get("a")
			v = got
			return err
		})
		read <- v
	}()
	// The reader must block; give it a moment, then commit.
	select {
	case v := <-read:
		t.Fatalf("reader saw %q before writer committed", v)
	default:
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	if v := <-read; v != "dirty" {
		t.Fatalf("reader saw %q after commit", v)
	}
}

func TestLockUpgrade(t *testing.T) {
	s := Open("db")
	tx := s.Begin()
	if _, _, err := tx.Get("a"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("a", "1"); err != nil { // S -> X upgrade, sole holder
		t.Fatal(err)
	}
	tx.Commit()
}

func TestDeadlockDetection(t *testing.T) {
	s := Open("db")
	if err := s.Do(func(tx *Tx) error {
		if err := tx.Put("a", "0"); err != nil {
			return err
		}
		return tx.Put("b", "0")
	}); err != nil {
		t.Fatal(err)
	}
	start := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			tx := s.Begin()
			defer func() {
				if !tx.done {
					tx.Abort()
				}
			}()
			k1, k2 := "a", "b"
			if i == 1 {
				k1, k2 = "b", "a"
			}
			if err := tx.Put(k1, "x"); err != nil {
				errs <- err
				tx.Abort()
				return
			}
			if err := tx.Put(k2, "y"); err != nil {
				errs <- err
				tx.Abort()
				return
			}
			errs <- tx.Commit()
		}(i)
	}
	close(start)
	wg.Wait()
	close(errs)
	var deadlocks, commits int
	for err := range errs {
		switch {
		case err == nil:
			commits++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// Either they serialized cleanly (0 deadlocks possible if one finished
	// before the other started) or exactly one was the victim.
	if commits < 1 {
		t.Fatalf("commits = %d, deadlock victims = %d", commits, deadlocks)
	}
	if deadlocks > 0 {
		_, _, dl := s.Stats()
		if dl < 1 {
			t.Error("deadlock not counted in stats")
		}
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	// Two transactions S-lock the same key, then both try to upgrade:
	// a classic conversion deadlock; one must be told to abort.
	s := Open("db")
	if err := s.Do(func(tx *Tx) error { return tx.Put("k", "0") }); err != nil {
		t.Fatal(err)
	}
	barrier := make(chan struct{})
	errs := make(chan error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tx := s.Begin()
			if _, _, err := tx.Get("k"); err != nil {
				errs <- err
				tx.Abort()
				return
			}
			<-barrier // both hold S now? (barrier closed after both reads)
			err := tx.Put("k", "1")
			if err != nil {
				tx.Abort()
				errs <- err
				return
			}
			errs <- tx.Commit()
		}()
	}
	// Let both goroutines take their S locks, then release the barrier.
	// S locks are compatible, so both Gets complete without the barrier.
	close(barrier)
	wg.Wait()
	close(errs)
	var deadlocks, ok int
	for err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected: %v", err)
		}
	}
	if ok < 1 {
		t.Fatalf("no transaction succeeded (ok=%d, deadlocks=%d)", ok, deadlocks)
	}
}

// TestBankTransferInvariant hammers the store with concurrent transfers;
// strict 2PL must preserve the total.
func TestBankTransferInvariant(t *testing.T) {
	s := Open("bank")
	const accounts = 8
	const total = 8000
	if err := s.Do(func(tx *Tx) error {
		for i := 0; i < accounts; i++ {
			if err := tx.Put(fmt.Sprintf("acct%d", i), strconv.Itoa(total/accounts)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				from := fmt.Sprintf("acct%d", (w+i)%accounts)
				to := fmt.Sprintf("acct%d", (w*3+i*7+1)%accounts)
				if from == to {
					continue
				}
				_ = s.DoRetry(20, func(tx *Tx) error {
					fv, _, err := tx.Get(from)
					if err != nil {
						return err
					}
					tv, _, err := tx.Get(to)
					if err != nil {
						return err
					}
					f, _ := strconv.Atoi(fv)
					g, _ := strconv.Atoi(tv)
					if f < 1 {
						return nil
					}
					if err := tx.Put(from, strconv.Itoa(f-1)); err != nil {
						return err
					}
					return tx.Put(to, strconv.Itoa(g+1))
				})
			}
		}(w)
	}
	wg.Wait()
	sum := 0
	if err := s.Do(func(tx *Tx) error {
		for i := 0; i < accounts; i++ {
			v, _, err := tx.Get(fmt.Sprintf("acct%d", i))
			if err != nil {
				return err
			}
			n, _ := strconv.Atoi(v)
			sum += n
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum != total {
		t.Fatalf("total = %d, want %d (atomicity violated)", sum, total)
	}
	commits, aborts, _ := s.Stats()
	if commits == 0 {
		t.Errorf("stats: commits=%d aborts=%d", commits, aborts)
	}
}

func TestDoAndDoRetry(t *testing.T) {
	s := Open("db")
	sentinel := errors.New("app error")
	if err := s.Do(func(tx *Tx) error {
		if err := tx.Put("a", "1"); err != nil {
			return err
		}
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("Do: %v", err)
	}
	// The failed Do aborted: no residue.
	if s.Len() != 0 {
		t.Fatal("aborted write survived")
	}
	attempts := 0
	err := s.DoRetry(3, func(tx *Tx) error {
		attempts++
		return fmt.Errorf("wrapped: %w", ErrDeadlock)
	})
	if !errors.Is(err, ErrDeadlock) || attempts != 3 {
		t.Fatalf("DoRetry: %v after %d attempts", err, attempts)
	}
}

func TestMultibase(t *testing.T) {
	m := NewMultibase("airline", "hotel", "car")
	if len(m.Names()) != 3 {
		t.Fatal("names")
	}
	if m.Store("airline") == nil || m.Store("ghost") != nil {
		t.Fatal("store lookup")
	}
	// Independence: a write in one store is invisible in another.
	if err := m.Store("airline").Do(func(tx *Tx) error { return tx.Put("k", "v") }); err != nil {
		t.Fatal(err)
	}
	if m.Store("hotel").Len() != 0 {
		t.Fatal("stores not independent")
	}
}

// TestQuickAbortRestoresState: random operation sequences applied in a
// transaction then aborted leave the store exactly as before.
func TestQuickAbortRestoresState(t *testing.T) {
	f := func(ops []uint8, seed uint8) bool {
		s := Open("q")
		// Seed committed state.
		_ = s.Do(func(tx *Tx) error {
			for i := 0; i < int(seed%8); i++ {
				if err := tx.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
					return err
				}
			}
			return nil
		})
		before := snapshot(s)
		tx := s.Begin()
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%10)
			switch op % 3 {
			case 0:
				if err := tx.Put(key, fmt.Sprintf("new%d", i)); err != nil {
					return false
				}
			case 1:
				if err := tx.Delete(key); err != nil {
					return false
				}
			case 2:
				if _, _, err := tx.Get(key); err != nil {
					return false
				}
			}
		}
		if err := tx.Abort(); err != nil {
			return false
		}
		after := snapshot(s)
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func snapshot(s *Store) map[string]string {
	out := map[string]string{}
	_ = s.Do(func(tx *Tx) error {
		for i := 0; i < 16; i++ {
			k := fmt.Sprintf("k%d", i)
			if v, ok, err := tx.Get(k); err == nil && ok {
				out[k] = v
			}
		}
		return nil
	})
	return out
}
