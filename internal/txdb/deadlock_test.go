package txdb

import (
	"errors"
	"sync"
	"testing"
)

// TestDeterministicOrderingDeadlock forces the classic two-key ordering
// deadlock with explicit synchronization: both transactions hold their
// first exclusive lock before either requests the second, so the waits-for
// cycle is guaranteed and exactly one transaction must be told to abort.
func TestDeterministicOrderingDeadlock(t *testing.T) {
	s := Open("db")
	if err := s.Do(func(tx *Tx) error {
		if err := tx.Put("a", "0"); err != nil {
			return err
		}
		return tx.Put("b", "0")
	}); err != nil {
		t.Fatal(err)
	}

	var barrier sync.WaitGroup
	barrier.Add(2)
	errs := make(chan error, 2)
	run := func(first, second string) {
		tx := s.Begin()
		if err := tx.Put(first, "x"); err != nil {
			barrier.Done()
			tx.Abort()
			errs <- err
			return
		}
		barrier.Done()
		barrier.Wait() // both first locks are now held
		err := tx.Put(second, "y")
		if err != nil {
			tx.Abort()
			errs <- err
			return
		}
		errs <- tx.Commit()
	}
	go run("a", "b")
	go run("b", "a")

	var deadlocks, commits int
	for i := 0; i < 2; i++ {
		switch err := <-errs; {
		case err == nil:
			commits++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || commits != 1 {
		t.Fatalf("deadlocks=%d commits=%d, want exactly one victim and one survivor", deadlocks, commits)
	}
	if _, _, dl := statsOf(s); dl != 1 {
		t.Fatalf("stats deadlocks = %d", dl)
	}
	// The store is usable afterwards and the survivor's writes are intact.
	if err := s.Do(func(tx *Tx) error {
		_, _, err := tx.Get("a")
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicConversionDeadlock forces the S->X upgrade deadlock:
// both transactions hold a shared lock on the same key before either
// upgrades.
func TestDeterministicConversionDeadlock(t *testing.T) {
	s := Open("db")
	if err := s.Do(func(tx *Tx) error { return tx.Put("k", "0") }); err != nil {
		t.Fatal(err)
	}
	var barrier sync.WaitGroup
	barrier.Add(2)
	errs := make(chan error, 2)
	run := func() {
		tx := s.Begin()
		if _, _, err := tx.Get("k"); err != nil {
			barrier.Done()
			tx.Abort()
			errs <- err
			return
		}
		barrier.Done()
		barrier.Wait() // both S locks held
		err := tx.Put("k", "1")
		if err != nil {
			tx.Abort()
			errs <- err
			return
		}
		errs <- tx.Commit()
	}
	go run()
	go run()
	var deadlocks, commits int
	for i := 0; i < 2; i++ {
		switch err := <-errs; {
		case err == nil:
			commits++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || commits != 1 {
		t.Fatalf("deadlocks=%d commits=%d", deadlocks, commits)
	}
	// The survivor's write won.
	var v string
	if err := s.Do(func(tx *Tx) error {
		got, _, err := tx.Get("k")
		v = got
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if v != "1" {
		t.Fatalf("k = %q, want the survivor's write", v)
	}
}

// TestThreeWayDeadlock builds a three-transaction cycle a->b->c->a.
func TestThreeWayDeadlock(t *testing.T) {
	s := Open("db")
	keys := []string{"a", "b", "c"}
	if err := s.Do(func(tx *Tx) error {
		for _, k := range keys {
			if err := tx.Put(k, "0"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var barrier sync.WaitGroup
	barrier.Add(3)
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			tx := s.Begin()
			if err := tx.Put(keys[i], "x"); err != nil {
				barrier.Done()
				tx.Abort()
				errs <- err
				return
			}
			barrier.Done()
			barrier.Wait()
			err := tx.Put(keys[(i+1)%3], "y")
			if err != nil {
				tx.Abort()
				errs <- err
				return
			}
			errs <- tx.Commit()
		}(i)
	}
	var deadlocks, commits int
	for i := 0; i < 3; i++ {
		switch err := <-errs; {
		case err == nil:
			commits++
		case errors.Is(err, ErrDeadlock):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	// At least one victim breaks the cycle; everyone else commits.
	if deadlocks < 1 || deadlocks+commits != 3 {
		t.Fatalf("deadlocks=%d commits=%d", deadlocks, commits)
	}
}

func TestTxID(t *testing.T) {
	s := Open("db")
	t1, t2 := s.Begin(), s.Begin()
	if t1.ID() == t2.ID() || t1.ID() == 0 {
		t.Fatalf("ids: %d %d", t1.ID(), t2.ID())
	}
	t1.Abort()
	t2.Abort()
}

func statsOf(s *Store) (int64, int64, int64) { return s.Stats() }
