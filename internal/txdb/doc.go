// Package txdb implements the local database substrate of the
// reproduction: an embedded transactional key-value store with strict
// two-phase locking, lock upgrades, waits-for-graph deadlock detection and
// before-image undo. Several independent Store instances stand in for the
// heterogeneous local databases of the multidatabase environments that
// flexible transactions target (§4.2): each store can unilaterally abort a
// transaction (deadlock victim) and knows nothing of the others.
//
// The paper's §2 observation that "most databases today use Strict 2PL for
// write operations" is taken literally: this store holds all locks to
// commit/abort and releases them atomically.
package txdb
