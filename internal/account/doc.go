// Package account implements the accounting capability the paper credits
// workflow systems with in §2/§3.3 ("support for organizational aspects,
// user interface, monitoring, accounting, simulation"): it derives
// per-activity and per-instance statistics from an instance's audit
// trail — executions, retries, dead paths, waiting time on worklists and
// execution time — using the event timestamps the engine records.
package account
