package account

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/engine"
)

// ActivityStats aggregates the executions of one activity path.
type ActivityStats struct {
	Path string
	// Executions counts completed executions (exit-condition retries each
	// count; a forced finish counts too).
	Executions int
	// Loops counts exit-condition reschedules.
	Loops int
	// DeadPath reports the activity was eliminated without running.
	DeadPath bool
	// Forced reports a user forced the activity to finish.
	Forced bool
	// WaitSeconds accumulates ready->started time (worklist latency for
	// manual activities; queueing for automatic ones).
	WaitSeconds int64
	// BusySeconds accumulates started->finished time.
	BusySeconds int64
	// Aborts counts completed executions with a non-zero return code.
	Aborts int
}

// InstanceStats is the accounting summary of one process instance.
type InstanceStats struct {
	InstanceID string
	Process    string
	// DurationSeconds spans the created event to the done event (or the
	// last event when the instance has not finished).
	DurationSeconds int64
	Finished        bool
	Canceled        bool
	Activities      []ActivityStats // sorted by path
}

// Summarize computes accounting statistics from an instance's audit trail.
func Summarize(inst *engine.Instance) InstanceStats {
	trail := inst.Trail()
	stats := InstanceStats{InstanceID: inst.ID(), Process: inst.ProcessName(), Finished: inst.Finished()}
	byPath := map[string]*ActivityStats{}
	get := func(path string) *ActivityStats {
		as := byPath[path]
		if as == nil {
			as = &ActivityStats{Path: path}
			byPath[path] = as
		}
		return as
	}
	readyAt := map[string]int64{}
	startedAt := map[string]int64{}
	var createdAt, lastAt int64
	for i, ev := range trail {
		if i == 0 {
			createdAt = ev.At
		}
		lastAt = ev.At
		switch ev.Kind {
		case engine.EvReady:
			readyAt[ev.Path] = ev.At
		case engine.EvStarted:
			startedAt[ev.Path] = ev.At
			if t, ok := readyAt[ev.Path]; ok {
				get(ev.Path).WaitSeconds += ev.At - t
				delete(readyAt, ev.Path)
			}
		case engine.EvFinished:
			as := get(ev.Path)
			as.Executions++
			if ev.RC != 0 {
				as.Aborts++
			}
			if t, ok := startedAt[ev.Path]; ok {
				as.BusySeconds += ev.At - t
				delete(startedAt, ev.Path)
			}
		case engine.EvLooped:
			get(ev.Path).Loops++
		case engine.EvDeadPath:
			get(ev.Path).DeadPath = true
		case engine.EvForced:
			get(ev.Path).Forced = true
		case engine.EvCanceled:
			stats.Canceled = true
		}
	}
	stats.DurationSeconds = lastAt - createdAt
	for _, as := range byPath {
		stats.Activities = append(stats.Activities, *as)
	}
	sort.Slice(stats.Activities, func(i, j int) bool {
		return stats.Activities[i].Path < stats.Activities[j].Path
	})
	return stats
}

// String renders the summary as an aligned accounting report.
func (s InstanceStats) String() string {
	var sb strings.Builder
	state := "running"
	switch {
	case s.Canceled:
		state = "canceled"
	case s.Finished:
		state = "finished"
	}
	fmt.Fprintf(&sb, "instance %s (process %s): %s, %ds\n", s.InstanceID, s.Process, state, s.DurationSeconds)
	fmt.Fprintf(&sb, "  %-30s %5s %5s %6s %5s %5s %s\n", "activity", "execs", "loops", "aborts", "wait", "busy", "flags")
	for _, a := range s.Activities {
		flags := ""
		if a.DeadPath {
			flags += "dead "
		}
		if a.Forced {
			flags += "forced"
		}
		fmt.Fprintf(&sb, "  %-30s %5d %5d %6d %4ds %4ds %s\n",
			a.Path, a.Executions, a.Loops, a.Aborts, a.WaitSeconds, a.BusySeconds, strings.TrimSpace(flags))
	}
	return sb.String()
}
