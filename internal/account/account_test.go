package account

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/org"
)

// buildEngine assembles an engine with a controllable clock that advances
// a fixed amount per program invocation, so durations are deterministic.
func buildEngine(t *testing.T, now *int64) *engine.Engine {
	t.Helper()
	dir := org.NewDirectory()
	if err := dir.AddPerson(org.Person{Name: "alice", Roles: []string{"clerk"}}); err != nil {
		t.Fatal(err)
	}
	e := engine.New(engine.WithOrganization(dir), engine.WithClock(func() int64 { return *now }))
	mustReg := func(name string, secs int64, rc int64, failFirst int) {
		t.Helper()
		remaining := failFirst
		err := e.RegisterProgram(name, engine.ProgramFunc(func(inv *engine.Invocation) error {
			*now += secs
			if remaining > 0 {
				remaining--
				inv.Out.SetRC(1)
				return nil
			}
			inv.Out.SetRC(rc)
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	mustReg("fast", 1, 0, 0)
	mustReg("slow", 10, 0, 0)
	mustReg("flaky", 2, 0, 2) // aborts twice (2s each), then commits
	mustReg("abort", 1, 1, 0)
	return e
}

func TestSummarizeDurationsAndRetries(t *testing.T) {
	now := int64(100)
	e := buildEngine(t, &now)
	p := model.NewProcess("Acct")
	p.Activities = []*model.Activity{
		{Name: "a", Kind: model.KindProgram, Program: "fast"},
		{Name: "b", Kind: model.KindProgram, Program: "slow"},
		{Name: "r", Kind: model.KindProgram, Program: "flaky", Exit: expr.MustParse("RC = 0")},
	}
	p.Control = []*model.ControlConnector{
		{From: "a", To: "b", Condition: expr.MustParse("RC = 0")},
		{From: "b", To: "r", Condition: expr.MustParse("RC = 0")},
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Acct", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	s := Summarize(inst)
	if !s.Finished || s.Canceled {
		t.Fatalf("state: %+v", s)
	}
	// Total: 1 + 10 + 3*2 = 17 seconds.
	if s.DurationSeconds != 17 {
		t.Fatalf("duration = %d, want 17", s.DurationSeconds)
	}
	byPath := map[string]ActivityStats{}
	for _, a := range s.Activities {
		byPath[a.Path] = a
	}
	if got := byPath["b"]; got.BusySeconds != 10 || got.Executions != 1 {
		t.Fatalf("b: %+v", got)
	}
	if got := byPath["r"]; got.Executions != 3 || got.Loops != 2 || got.Aborts != 2 || got.BusySeconds != 6 {
		t.Fatalf("r: %+v", got)
	}
	out := s.String()
	if !strings.Contains(out, "finished") || !strings.Contains(out, "r") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestSummarizeWorklistWait(t *testing.T) {
	now := int64(0)
	e := buildEngine(t, &now)
	p := model.NewProcess("Wait")
	p.Activities = []*model.Activity{{
		Name: "m", Kind: model.KindProgram, Program: "fast",
		Start: model.StartManual, Staff: model.Staff{Role: "clerk"},
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Wait", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	// The item sits on the worklist for 42 seconds before alice selects it.
	now += 42
	item := e.Worklists().List("alice")[0]
	if err := inst.SelectWork("alice", item.ID); err != nil {
		t.Fatal(err)
	}
	s := Summarize(inst)
	if len(s.Activities) != 1 || s.Activities[0].WaitSeconds != 42 {
		t.Fatalf("wait accounting: %+v", s.Activities)
	}
}

func TestSummarizeDeadPathAndAborts(t *testing.T) {
	now := int64(0)
	e := buildEngine(t, &now)
	p := model.NewProcess("Dead")
	p.Activities = []*model.Activity{
		{Name: "a", Kind: model.KindProgram, Program: "abort"},
		{Name: "b", Kind: model.KindProgram, Program: "fast"},
	}
	p.Control = []*model.ControlConnector{{From: "a", To: "b", Condition: expr.MustParse("RC = 0")}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.CreateInstance("Dead", nil, nil)
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	s := Summarize(inst)
	byPath := map[string]ActivityStats{}
	for _, a := range s.Activities {
		byPath[a.Path] = a
	}
	if byPath["a"].Aborts != 1 {
		t.Fatalf("a: %+v", byPath["a"])
	}
	if !byPath["b"].DeadPath || byPath["b"].Executions != 0 {
		t.Fatalf("b: %+v", byPath["b"])
	}
	if !strings.Contains(s.String(), "dead") {
		t.Fatal("dead flag not rendered")
	}
}

func TestSummarizeCanceled(t *testing.T) {
	now := int64(0)
	e := buildEngine(t, &now)
	p := model.NewProcess("Cxl")
	p.Activities = []*model.Activity{{
		Name: "m", Kind: model.KindProgram, Program: "fast",
		Start: model.StartManual, Staff: model.Staff{Role: "clerk"},
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, _ := e.CreateInstance("Cxl", nil, nil)
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Cancel(); err != nil {
		t.Fatal(err)
	}
	s := Summarize(inst)
	if !s.Canceled {
		t.Fatal("cancellation not accounted")
	}
	if !strings.Contains(s.String(), "canceled") {
		t.Fatal("canceled not rendered")
	}
}

func TestEngineInstanceMonitor(t *testing.T) {
	now := int64(0)
	e := buildEngine(t, &now)
	p := model.NewProcess("Mon")
	p.Activities = []*model.Activity{{Name: "a", Kind: model.KindProgram, Program: "fast"}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	i1, _ := e.CreateInstance("Mon", nil, nil)
	i2, _ := e.CreateInstance("Mon", nil, nil)
	if err := i1.Start(); err != nil {
		t.Fatal(err)
	}
	infos := e.Instances()
	if len(infos) != 2 {
		t.Fatalf("instances: %+v", infos)
	}
	if infos[0].Status != "finished" || infos[1].Status != "created" {
		t.Fatalf("statuses: %+v", infos)
	}
	_ = i2
}
