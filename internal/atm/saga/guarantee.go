package saga

import (
	"fmt"

	"repro/internal/rm"
)

// CheckGuarantee verifies that an observed history satisfies the saga
// guarantee of §4.1: the committed events form either
//
//	T1, T2, ..., Tn                          (the saga committed), or
//	T1, ..., Tj, Cj, ..., C2, C1  (0 <= j < n)  (the saga was compensated)
//
// Aborted attempts are permitted only as: the single forward abort of
// T(j+1) that triggered compensation, and aborted compensation attempts
// that are eventually followed by the same compensation committing
// (compensations are retriable).
func CheckGuarantee(spec *Spec, events []rm.Event) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	stepIdx := make(map[string]int, len(spec.Steps))
	compIdx := make(map[string]int, len(spec.Steps))
	for i, st := range spec.Steps {
		stepIdx[st.Name] = i + 1
		compIdx[st.Compensation] = i + 1
	}

	pos := 0
	// Forward phase: committed steps T1..Tj.
	j := 0
	for pos < len(events) {
		ev := events[pos]
		idx, isStep := stepIdx[ev.Name]
		if !isStep {
			break
		}
		if ev.Kind == rm.EvAbort {
			if idx != j+1 {
				return fmt.Errorf("saga %s: abort of %s out of order (expected step %d)", spec.Name, ev.Name, j+1)
			}
			pos++
			goto compensation
		}
		if idx != j+1 {
			return fmt.Errorf("saga %s: commit of %s out of order (expected step %d)", spec.Name, ev.Name, j+1)
		}
		j = idx
		pos++
	}
	if pos == len(events) {
		if j == len(spec.Steps) {
			return nil // T1..Tn committed
		}
		return fmt.Errorf("saga %s: history ends after %d of %d steps with no compensation", spec.Name, j, len(spec.Steps))
	}

compensation:
	// Compensation phase: Cj..C1, each possibly preceded by aborted
	// attempts of itself.
	for k := j; k >= 1; k-- {
		want := spec.Steps[k-1].Compensation
		committed := false
		for pos < len(events) {
			ev := events[pos]
			if ev.Name != want {
				break
			}
			pos++
			if ev.Kind == rm.EvCommit {
				committed = true
				break
			}
			// aborted compensation attempt: keep retrying
		}
		if !committed {
			return fmt.Errorf("saga %s: compensation %s (step %d) missing or did not commit", spec.Name, want, k)
		}
	}
	if pos != len(events) {
		return fmt.Errorf("saga %s: unexpected trailing event %v", spec.Name, events[pos])
	}
	return nil
}
