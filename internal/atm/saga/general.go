package saga

import (
	"fmt"

	"repro/internal/rm"
)

// GeneralSpec is a generalized (parallel) saga: a partial order of
// subtransactions instead of a sequence. §4.1 notes the linear construction
// "was later extended to parallel sagas and generalized sagas
// [GMGK+90, GMGK+91a, GMGK+91b] ... the same ideas apply to the more
// general case"; this type is that general case. Steps without
// dependencies may run concurrently; the saga commits when every step
// commits, and aborts by compensating every committed step, each
// compensation running only after the compensations of the step's
// committed dependents.
type GeneralSpec struct {
	Name  string
	Steps []Step
	// Deps maps a step name to the names of the steps that must commit
	// before it starts. Steps absent from the map have no prerequisites.
	Deps map[string][]string
}

// Validate checks the specification: valid step/compensation naming (as in
// linear sagas), dependency references resolve, and the dependency graph
// is acyclic.
func (s *GeneralSpec) Validate() error {
	lin := &Spec{Name: s.Name, Steps: s.Steps}
	if err := lin.Validate(); err != nil {
		return err
	}
	steps := make(map[string]bool, len(s.Steps))
	for _, st := range s.Steps {
		steps[st.Name] = true
	}
	for step, deps := range s.Deps {
		if !steps[step] {
			return fmt.Errorf("saga %s: dependency declared for unknown step %q", s.Name, step)
		}
		seen := make(map[string]bool, len(deps))
		for _, d := range deps {
			if !steps[d] {
				return fmt.Errorf("saga %s: step %q depends on unknown step %q", s.Name, step, d)
			}
			if d == step {
				return fmt.Errorf("saga %s: step %q depends on itself", s.Name, step)
			}
			if seen[d] {
				return fmt.Errorf("saga %s: step %q lists dependency %q twice", s.Name, step, d)
			}
			seen[d] = true
		}
	}
	// Cycle check.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(s.Steps))
	var visit func(n string) error
	visit = func(n string) error {
		switch color[n] {
		case grey:
			return fmt.Errorf("saga %s: dependency cycle through %q", s.Name, n)
		case black:
			return nil
		}
		color[n] = grey
		for _, d := range s.Deps[n] {
			if err := visit(d); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	for _, st := range s.Steps {
		if err := visit(st.Name); err != nil {
			return err
		}
	}
	return nil
}

// Linear reports whether the partial order is in fact the declaration
// sequence (each step depending exactly on its predecessor), in which case
// the spec is equivalent to a linear saga.
func (s *GeneralSpec) Linear() bool {
	for i, st := range s.Steps {
		deps := s.Deps[st.Name]
		if i == 0 {
			if len(deps) != 0 {
				return false
			}
			continue
		}
		if len(deps) != 1 || deps[0] != s.Steps[i-1].Name {
			return false
		}
	}
	return true
}

// step returns the step with the given name, or nil.
func (s *GeneralSpec) step(name string) *Step {
	for i := range s.Steps {
		if s.Steps[i].Name == name {
			return &s.Steps[i]
		}
	}
	return nil
}

// dependents returns the steps that list name as a prerequisite, in
// declaration order.
func (s *GeneralSpec) dependents(name string) []string {
	var out []string
	for _, st := range s.Steps {
		for _, d := range s.Deps[st.Name] {
			if d == name {
				out = append(out, st.Name)
				break
			}
		}
	}
	return out
}

// Bind checks that every step and compensation has a bound subtransaction.
func (s *GeneralSpec) Bind(b Binding) error {
	lin := &Spec{Name: s.Name, Steps: s.Steps}
	return lin.Bind(b)
}

// GeneralResult reports the outcome of a generalized saga execution.
type GeneralResult struct {
	Committed bool
	// Aborted lists the steps that aborted (several parallel steps can
	// abort in a concurrent execution; the sequential native executor
	// reports at most one).
	Aborted []string
}

// ExecuteGeneral runs the generalized saga natively and deterministically:
// repeatedly start the first declared step whose prerequisites committed;
// on the first abort, stop starting steps and compensate every committed
// step in reverse completion order (which respects the partial order).
// Compensations are retriable.
func (e *Executor) ExecuteGeneral(spec *GeneralSpec, b Binding, rec *rm.Recorder) (GeneralResult, error) {
	if err := spec.Validate(); err != nil {
		return GeneralResult{}, err
	}
	if err := spec.Bind(b); err != nil {
		return GeneralResult{}, err
	}
	committed := make(map[string]bool, len(spec.Steps))
	var completionOrder []string
	for len(completionOrder) < len(spec.Steps) {
		var next *Step
		for i := range spec.Steps {
			st := &spec.Steps[i]
			if committed[st.Name] {
				continue
			}
			ready := true
			for _, d := range spec.Deps[st.Name] {
				if !committed[d] {
					ready = false
					break
				}
			}
			if ready {
				next = st
				break
			}
		}
		if next == nil {
			return GeneralResult{}, fmt.Errorf("saga %s: no runnable step (internal)", spec.Name)
		}
		ok, err := rm.Exec(b[next.Name], e.Decider, rec)
		if err != nil {
			return GeneralResult{}, err
		}
		if !ok {
			if err := e.compensateGeneral(spec, b, completionOrder, rec); err != nil {
				return GeneralResult{}, err
			}
			return GeneralResult{Committed: false, Aborted: []string{next.Name}}, nil
		}
		committed[next.Name] = true
		completionOrder = append(completionOrder, next.Name)
	}
	return GeneralResult{Committed: true}, nil
}

func (e *Executor) compensateGeneral(spec *GeneralSpec, b Binding, completionOrder []string, rec *rm.Recorder) error {
	maxRetries := e.MaxCompensationRetries
	if maxRetries <= 0 {
		maxRetries = 1000
	}
	for i := len(completionOrder) - 1; i >= 0; i-- {
		comp := spec.step(completionOrder[i]).Compensation
		for attempt := 0; ; attempt++ {
			ok, err := rm.Exec(b[comp], e.Decider, rec)
			if err != nil {
				return err
			}
			if ok {
				break
			}
			if attempt >= maxRetries {
				return fmt.Errorf("saga %s: compensation %q did not commit after %d attempts",
					spec.Name, comp, attempt+1)
			}
		}
	}
	return nil
}

// CheckGeneralGuarantee verifies an observed history against the
// generalized saga guarantee:
//
//   - the forward phase executes each step at most once, every executed
//     step's prerequisites committed before it, and a step aborts at most
//     terminally (aborted steps commit nothing);
//   - if every step committed and nothing was compensated, the saga
//     committed;
//   - otherwise exactly the committed steps are compensated, each
//     compensation (after any number of aborted retries) commits, and the
//     compensation of a step happens only after the compensations of all
//     its committed dependents.
//
// Concurrent executions may abort several parallel steps and may commit
// steps after another step aborted (they were in flight); both are legal.
func CheckGeneralGuarantee(spec *GeneralSpec, events []rm.Event) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	compOf := make(map[string]string, len(spec.Steps)) // comp name -> step
	stepSet := make(map[string]bool, len(spec.Steps))
	for _, st := range spec.Steps {
		compOf[st.Compensation] = st.Name
		stepSet[st.Name] = true
	}

	committed := map[string]bool{}
	aborted := map[string]bool{}
	compensated := map[string]bool{}
	sawCompensation := false
	for idx, ev := range events {
		if stepSet[ev.Name] {
			if sawCompensation {
				return fmt.Errorf("saga %s: forward step %s after compensation began (event %d)", spec.Name, ev.Name, idx)
			}
			if committed[ev.Name] || aborted[ev.Name] {
				return fmt.Errorf("saga %s: step %s executed twice", spec.Name, ev.Name)
			}
			for _, d := range spec.Deps[ev.Name] {
				if !committed[d] {
					return fmt.Errorf("saga %s: step %s ran before its prerequisite %s committed", spec.Name, ev.Name, d)
				}
			}
			if ev.Kind == rm.EvCommit {
				committed[ev.Name] = true
			} else {
				aborted[ev.Name] = true
			}
			continue
		}
		step, isComp := compOf[ev.Name]
		if !isComp {
			return fmt.Errorf("saga %s: unknown event subject %q", spec.Name, ev.Name)
		}
		sawCompensation = true
		if !committed[step] {
			return fmt.Errorf("saga %s: compensation of %s, which never committed", spec.Name, step)
		}
		if compensated[step] {
			return fmt.Errorf("saga %s: %s compensated twice", spec.Name, step)
		}
		if ev.Kind == rm.EvAbort {
			continue // retriable compensation attempt
		}
		// Order: all committed dependents must already be compensated.
		for _, dep := range spec.dependents(step) {
			if committed[dep] && !compensated[dep] {
				return fmt.Errorf("saga %s: %s compensated before its dependent %s", spec.Name, step, dep)
			}
		}
		compensated[step] = true
	}

	if len(aborted) == 0 && !sawCompensation {
		if len(committed) != len(spec.Steps) {
			return fmt.Errorf("saga %s: history ends with %d of %d steps committed and no compensation",
				spec.Name, len(committed), len(spec.Steps))
		}
		return nil
	}
	// Aborted (or compensate-completed) saga: every committed step must be
	// compensated.
	for step := range committed {
		if !compensated[step] {
			return fmt.Errorf("saga %s: committed step %s was never compensated", spec.Name, step)
		}
	}
	return nil
}
