package saga

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rm"
	"repro/internal/txdb"
)

func travelSpec() *Spec {
	return &Spec{Name: "travel", Steps: []Step{
		{Name: "T1", Compensation: "C1"},
		{Name: "T2", Compensation: "C2"},
		{Name: "T3", Compensation: "C3"},
	}}
}

// bindPure binds every subtransaction to a storage-free unit.
func bindPure(spec *Spec) Binding {
	b := Binding{}
	for _, st := range spec.Steps {
		b[st.Name] = rm.Subtransaction{Name: st.Name}
		b[st.Compensation] = rm.Subtransaction{Name: st.Compensation}
	}
	return b
}

func historyString(rec *rm.Recorder) string {
	var parts []string
	for _, e := range rec.Events() {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, " ")
}

func TestValidate(t *testing.T) {
	if err := travelSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Spec{
		{},
		{Name: "s"},
		{Name: "s", Steps: []Step{{Name: "", Compensation: "c"}}},
		{Name: "s", Steps: []Step{{Name: "t", Compensation: ""}}},
		{Name: "s", Steps: []Step{{Name: "t", Compensation: "t"}}},
		{Name: "s", Steps: []Step{{Name: "t", Compensation: "c"}, {Name: "t", Compensation: "c2"}}},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBindMissing(t *testing.T) {
	spec := travelSpec()
	b := bindPure(spec)
	delete(b, "C2")
	if err := spec.Bind(b); err == nil {
		t.Fatal("missing compensation binding accepted")
	}
	delete(b, "T1")
	if err := spec.Bind(b); err == nil {
		t.Fatal("missing step binding accepted")
	}
}

func TestExecuteAllCommit(t *testing.T) {
	spec := travelSpec()
	rec := &rm.Recorder{}
	ex := &Executor{Decider: rm.NewInjector()}
	res, err := ex.Execute(spec, bindPure(spec), rec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.AbortedAt != 0 {
		t.Fatalf("result: %+v", res)
	}
	if got := historyString(rec); got != "T1:commit T2:commit T3:commit" {
		t.Fatalf("history: %s", got)
	}
	if err := CheckGuarantee(spec, rec.Events()); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteAbortEachPosition(t *testing.T) {
	// The E1 sweep in miniature: abort at each step j+1 and require the
	// history T1..Tj, T(j+1):abort, Cj..C1.
	for abortAt := 1; abortAt <= 3; abortAt++ {
		spec := travelSpec()
		inj := rm.NewInjector()
		inj.AbortAlways(fmt.Sprintf("T%d", abortAt))
		rec := &rm.Recorder{}
		ex := &Executor{Decider: inj}
		res, err := ex.Execute(spec, bindPure(spec), rec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed || res.AbortedAt != abortAt {
			t.Fatalf("abortAt=%d: result %+v", abortAt, res)
		}
		if err := CheckGuarantee(spec, rec.Events()); err != nil {
			t.Fatalf("abortAt=%d: %v\nhistory: %s", abortAt, err, historyString(rec))
		}
		// Spot check the exact shape for abort at 2: T1 C1 around the abort.
		if abortAt == 2 {
			want := "T1:commit T2:abort C1:commit"
			if got := historyString(rec); got != want {
				t.Fatalf("history = %s, want %s", got, want)
			}
		}
	}
}

func TestCompensationRetries(t *testing.T) {
	spec := travelSpec()
	inj := rm.NewInjector()
	inj.AbortAlways("T3")
	inj.AbortN("C2", 2) // compensation is retriable: fails twice, then commits
	rec := &rm.Recorder{}
	ex := &Executor{Decider: inj}
	res, err := ex.Execute(spec, bindPure(spec), rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed || res.AbortedAt != 3 {
		t.Fatalf("result: %+v", res)
	}
	want := "T1:commit T2:commit T3:abort C2:abort C2:abort C2:commit C1:commit"
	if got := historyString(rec); got != want {
		t.Fatalf("history = %s, want %s", got, want)
	}
	if err := CheckGuarantee(spec, rec.Events()); err != nil {
		t.Fatal(err)
	}
}

func TestCompensationRetryBound(t *testing.T) {
	spec := travelSpec()
	inj := rm.NewInjector()
	inj.AbortAlways("T2")
	inj.AbortAlways("C1")
	ex := &Executor{Decider: inj, MaxCompensationRetries: 5}
	if _, err := ex.Execute(spec, bindPure(spec), &rm.Recorder{}); err == nil {
		t.Fatal("unbounded compensation loop not surfaced")
	}
}

func TestCompensateCompletedSaga(t *testing.T) {
	spec := travelSpec()
	rec := &rm.Recorder{}
	ex := &Executor{Decider: rm.NewInjector()}
	if _, err := ex.Execute(spec, bindPure(spec), rec); err != nil {
		t.Fatal(err)
	}
	if err := ex.Compensate(spec, bindPure(spec), rec); err != nil {
		t.Fatal(err)
	}
	want := "T1:commit T2:commit T3:commit C3:commit C2:commit C1:commit"
	if got := historyString(rec); got != want {
		t.Fatalf("history = %s, want %s", got, want)
	}
}

func TestExecuteAgainstDatabases(t *testing.T) {
	// Steps write to real local databases; compensation must leave them
	// clean when the saga aborts.
	mb := txdb.NewMultibase("airline", "hotel", "car")
	spec := travelSpec()
	stores := map[string]*txdb.Store{
		"T1": mb.Store("airline"), "T2": mb.Store("hotel"), "T3": mb.Store("car"),
	}
	b := Binding{}
	for _, st := range spec.Steps {
		store := stores[st.Name]
		name := st.Name
		b[st.Name] = rm.Subtransaction{Name: st.Name, Store: store, Work: func(tx *txdb.Tx) error {
			return tx.Put("booking", name)
		}}
		b[st.Compensation] = rm.Subtransaction{Name: st.Compensation, Store: store, Work: func(tx *txdb.Tx) error {
			return tx.Delete("booking")
		}}
	}
	inj := rm.NewInjector()
	inj.AbortAlways("T3")
	ex := &Executor{Decider: inj}
	rec := &rm.Recorder{}
	res, err := ex.Execute(spec, b, rec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed {
		t.Fatal("saga should have aborted")
	}
	for _, s := range []string{"airline", "hotel", "car"} {
		if mb.Store(s).Len() != 0 {
			t.Errorf("%s still holds a booking after compensation", s)
		}
	}
}

func TestCheckGuaranteeRejects(t *testing.T) {
	spec := travelSpec()
	bad := [][]rm.Event{
		// Out of order forward commits.
		{{Name: "T2", Kind: rm.EvCommit}},
		// Missing compensation.
		{{Name: "T1", Kind: rm.EvCommit}, {Name: "T2", Kind: rm.EvAbort}},
		// Compensation in wrong order.
		{{Name: "T1", Kind: rm.EvCommit}, {Name: "T2", Kind: rm.EvCommit},
			{Name: "T3", Kind: rm.EvAbort},
			{Name: "C1", Kind: rm.EvCommit}, {Name: "C2", Kind: rm.EvCommit}},
		// Incomplete forward execution without abort.
		{{Name: "T1", Kind: rm.EvCommit}},
		// Trailing garbage after full commit.
		{{Name: "T1", Kind: rm.EvCommit}, {Name: "T2", Kind: rm.EvCommit},
			{Name: "T3", Kind: rm.EvCommit}, {Name: "C1", Kind: rm.EvCommit}},
		// Abort of a step that is not the next one.
		{{Name: "T1", Kind: rm.EvCommit}, {Name: "T3", Kind: rm.EvAbort}},
		// Compensation that never commits.
		{{Name: "T1", Kind: rm.EvCommit}, {Name: "T2", Kind: rm.EvAbort},
			{Name: "C1", Kind: rm.EvAbort}},
	}
	for i, events := range bad {
		if err := CheckGuarantee(spec, events); err == nil {
			t.Errorf("case %d accepted: %v", i, events)
		}
	}
}

// TestQuickGuaranteeHolds: for random saga sizes and abort scripts, the
// native executor always produces a history satisfying the guarantee.
func TestQuickGuaranteeHolds(t *testing.T) {
	f := func(nRaw uint8, abortAtRaw uint8, compFailsRaw uint8) bool {
		n := 1 + int(nRaw%10)
		spec := &Spec{Name: "q"}
		for i := 1; i <= n; i++ {
			spec.Steps = append(spec.Steps, Step{
				Name:         fmt.Sprintf("T%d", i),
				Compensation: fmt.Sprintf("C%d", i),
			})
		}
		inj := rm.NewInjector()
		abortAt := int(abortAtRaw % uint8(n+2)) // may exceed n: no abort
		if abortAt >= 1 && abortAt <= n {
			inj.AbortAlways(fmt.Sprintf("T%d", abortAt))
			// Some compensations fail a few times before committing.
			inj.AbortN(fmt.Sprintf("C%d", 1+int(compFailsRaw)%n), int(compFailsRaw%3))
		}
		rec := &rm.Recorder{}
		ex := &Executor{Decider: inj}
		res, err := ex.Execute(spec, bindPure(spec), rec)
		if err != nil {
			return false
		}
		if err := CheckGuarantee(spec, rec.Events()); err != nil {
			t.Logf("guarantee violated: %v", err)
			return false
		}
		if abortAt >= 1 && abortAt <= n {
			return !res.Committed && res.AbortedAt == abortAt
		}
		return res.Committed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
