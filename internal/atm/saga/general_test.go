package saga

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rm"
)

// diamondSpec: a -> (b, c) -> d, the smallest genuinely parallel saga.
func diamondSpec() *GeneralSpec {
	return &GeneralSpec{
		Name: "diamond",
		Steps: []Step{
			{Name: "a", Compensation: "ca"},
			{Name: "b", Compensation: "cb"},
			{Name: "c", Compensation: "cc"},
			{Name: "d", Compensation: "cd"},
		},
		Deps: map[string][]string{
			"b": {"a"}, "c": {"a"}, "d": {"b", "c"},
		},
	}
}

func bindGeneral(spec *GeneralSpec) Binding {
	b := Binding{}
	for _, st := range spec.Steps {
		b[st.Name] = rm.Subtransaction{Name: st.Name}
		b[st.Compensation] = rm.Subtransaction{Name: st.Compensation}
	}
	return b
}

func TestGeneralValidate(t *testing.T) {
	if err := diamondSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(s *GeneralSpec){
		func(s *GeneralSpec) { s.Deps["ghost"] = []string{"a"} },
		func(s *GeneralSpec) { s.Deps["b"] = []string{"ghost"} },
		func(s *GeneralSpec) { s.Deps["b"] = []string{"b"} },
		func(s *GeneralSpec) { s.Deps["b"] = []string{"a", "a"} },
		func(s *GeneralSpec) { s.Deps["a"] = []string{"d"} }, // cycle
		func(s *GeneralSpec) { s.Steps[0].Compensation = "" },
	}
	for i, mut := range mutations {
		s := diamondSpec()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGeneralLinear(t *testing.T) {
	lin := &GeneralSpec{
		Name:  "lin",
		Steps: []Step{{Name: "a", Compensation: "ca"}, {Name: "b", Compensation: "cb"}},
		Deps:  map[string][]string{"b": {"a"}},
	}
	if !lin.Linear() {
		t.Error("chain not recognized as linear")
	}
	if diamondSpec().Linear() {
		t.Error("diamond recognized as linear")
	}
}

func TestExecuteGeneralAllCommit(t *testing.T) {
	spec := diamondSpec()
	rec := &rm.Recorder{}
	ex := &Executor{Decider: rm.NewInjector()}
	res, err := ex.ExecuteGeneral(spec, bindGeneral(spec), rec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("result: %+v", res)
	}
	if err := CheckGeneralGuarantee(spec, rec.Events()); err != nil {
		t.Fatal(err)
	}
	// Deterministic order: a b c d.
	got := historyOf(rec)
	if got != "a:commit b:commit c:commit d:commit" {
		t.Fatalf("history: %s", got)
	}
}

func historyOf(rec *rm.Recorder) string {
	var parts []string
	for _, e := range rec.Events() {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, " ")
}

func TestExecuteGeneralAbort(t *testing.T) {
	for _, victim := range []string{"a", "b", "c", "d"} {
		spec := diamondSpec()
		inj := rm.NewInjector()
		inj.AbortAlways(victim)
		rec := &rm.Recorder{}
		ex := &Executor{Decider: inj}
		res, err := ex.ExecuteGeneral(spec, bindGeneral(spec), rec)
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed || len(res.Aborted) != 1 || res.Aborted[0] != victim {
			t.Fatalf("victim %s: result %+v", victim, res)
		}
		if err := CheckGeneralGuarantee(spec, rec.Events()); err != nil {
			t.Fatalf("victim %s: %v\nhistory: %s", victim, err, historyOf(rec))
		}
	}
	// Abort of d compensates c, b, a in reverse completion order.
	spec := diamondSpec()
	inj := rm.NewInjector()
	inj.AbortAlways("d")
	rec := &rm.Recorder{}
	ex := &Executor{Decider: inj}
	if _, err := ex.ExecuteGeneral(spec, bindGeneral(spec), rec); err != nil {
		t.Fatal(err)
	}
	want := "a:commit b:commit c:commit d:abort cc:commit cb:commit ca:commit"
	if got := historyOf(rec); got != want {
		t.Fatalf("history = %s, want %s", got, want)
	}
}

func TestCheckGeneralGuaranteeRejects(t *testing.T) {
	spec := diamondSpec()
	ev := func(name string, kind rm.EventKind) rm.Event { return rm.Event{Name: name, Kind: kind} }
	bad := [][]rm.Event{
		// b before its prerequisite a.
		{ev("b", rm.EvCommit)},
		// step executed twice.
		{ev("a", rm.EvCommit), ev("a", rm.EvCommit)},
		// committed but never compensated after abort.
		{ev("a", rm.EvCommit), ev("b", rm.EvAbort)},
		// compensation of a step that never committed.
		{ev("a", rm.EvCommit), ev("b", rm.EvAbort), ev("cb", rm.EvCommit)},
		// compensation order violated: a compensated before its committed
		// dependent b.
		{ev("a", rm.EvCommit), ev("b", rm.EvCommit), ev("c", rm.EvAbort),
			ev("ca", rm.EvCommit), ev("cb", rm.EvCommit)},
		// forward step after compensation began.
		{ev("a", rm.EvCommit), ev("b", rm.EvAbort), ev("ca", rm.EvCommit), ev("c", rm.EvCommit)},
		// incomplete commit without abort.
		{ev("a", rm.EvCommit), ev("b", rm.EvCommit)},
		// unknown subject.
		{ev("zz", rm.EvCommit)},
		// compensated twice.
		{ev("a", rm.EvCommit), ev("b", rm.EvAbort), ev("ca", rm.EvCommit), ev("ca", rm.EvCommit)},
	}
	for i, events := range bad {
		if err := CheckGeneralGuarantee(spec, events); err == nil {
			t.Errorf("case %d accepted: %v", i, events)
		}
	}
	// A concurrent-legal history: c commits after b aborted (in flight),
	// then compensation of c and a.
	okHist := []rm.Event{
		ev("a", rm.EvCommit), ev("b", rm.EvAbort), ev("c", rm.EvCommit),
		ev("cc", rm.EvAbort), ev("cc", rm.EvCommit), ev("ca", rm.EvCommit),
	}
	if err := CheckGeneralGuarantee(spec, okHist); err != nil {
		t.Fatalf("legal concurrent history rejected: %v", err)
	}
}

// TestQuickGeneralGuarantee: random DAG sagas with random aborts always
// satisfy the generalized guarantee under the native executor.
func TestQuickGeneralGuarantee(t *testing.T) {
	f := func(nRaw uint8, edges uint16, victimRaw uint8) bool {
		n := 2 + int(nRaw%7)
		spec := &GeneralSpec{Name: "q", Deps: map[string][]string{}}
		for i := 0; i < n; i++ {
			spec.Steps = append(spec.Steps, Step{
				Name: fmt.Sprintf("s%d", i), Compensation: fmt.Sprintf("cs%d", i),
			})
		}
		// Random forward edges i -> j (i < j) from the bits of edges.
		bit := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if edges&(1<<(bit%16)) != 0 {
					spec.Deps[fmt.Sprintf("s%d", j)] = append(spec.Deps[fmt.Sprintf("s%d", j)], fmt.Sprintf("s%d", i))
				}
				bit++
			}
		}
		if err := spec.Validate(); err != nil {
			t.Logf("generator produced invalid spec: %v", err)
			return false
		}
		inj := rm.NewInjector()
		victim := int(victimRaw) % (n + 2)
		if victim < n {
			inj.AbortAlways(fmt.Sprintf("s%d", victim))
		}
		rec := &rm.Recorder{}
		ex := &Executor{Decider: inj}
		res, err := ex.ExecuteGeneral(spec, bindGeneral(spec), rec)
		if err != nil {
			t.Log(err)
			return false
		}
		if err := CheckGeneralGuarantee(spec, rec.Events()); err != nil {
			t.Logf("guarantee violated: %v\nhistory: %s", err, historyOf(rec))
			return false
		}
		return res.Committed == (victim >= n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
