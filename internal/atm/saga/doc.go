// Package saga implements Linear Sagas (García-Molina & Salem, SIGMOD'87)
// as presented in §4.1 of "Advanced Transaction Models in Workflow
// Contexts": a long-lived transaction T = T1;...;Tn with compensating
// transactions C1..Cn and the guarantee that either T1..Tn executes, or
// T1..Tj;Cj;...;C1 for some 0 <= j < n.
//
// The package provides the saga specification shared with the fmtm
// translator, a native (non-workflow) executor that serves as the baseline
// the workflow encoding is compared against, and a checker for the saga
// guarantee over observed histories.
package saga
