package saga

import (
	"fmt"

	"repro/internal/rm"
)

// Step is one subtransaction of the saga with its compensating
// subtransaction. Compensation may be empty only in specifications that are
// never asked to compensate (the checker and executor treat missing
// compensation of an executed step as an error).
type Step struct {
	Name         string
	Compensation string
}

// Spec is a linear saga: an ordered list of steps.
type Spec struct {
	Name  string
	Steps []Step
}

// Validate checks the specification: a name, at least one step, unique
// non-empty step and compensation names.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("saga: empty saga name")
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("saga %s: no steps", s.Name)
	}
	seen := make(map[string]bool, 2*len(s.Steps))
	for i, st := range s.Steps {
		if st.Name == "" {
			return fmt.Errorf("saga %s: step %d has empty name", s.Name, i+1)
		}
		if st.Compensation == "" {
			return fmt.Errorf("saga %s: step %q has no compensation", s.Name, st.Name)
		}
		for _, n := range []string{st.Name, st.Compensation} {
			if seen[n] {
				return fmt.Errorf("saga %s: duplicate subtransaction name %q", s.Name, n)
			}
			seen[n] = true
		}
	}
	return nil
}

// Binding maps every subtransaction name (steps and compensations) of a
// spec to its executable subtransaction.
type Binding map[string]rm.Subtransaction

// Bind checks that every step and compensation of the spec has a bound
// subtransaction.
func (s *Spec) Bind(b Binding) error {
	for _, st := range s.Steps {
		if _, ok := b[st.Name]; !ok {
			return fmt.Errorf("saga %s: no binding for step %q", s.Name, st.Name)
		}
		if _, ok := b[st.Compensation]; !ok {
			return fmt.Errorf("saga %s: no binding for compensation %q", s.Name, st.Compensation)
		}
	}
	return nil
}

// Result reports the outcome of a saga execution.
type Result struct {
	// Committed is true when every step committed; false when the saga
	// aborted and was compensated.
	Committed bool
	// AbortedAt is the 1-based index of the step whose abort triggered
	// compensation (0 when Committed).
	AbortedAt int
}

// Executor runs sagas natively — the baseline the paper's workflow
// implementation (Figure 2) is measured against. Compensations are treated
// as retriable: an aborted compensation is retried until it commits, with a
// bound to surface scripting mistakes.
type Executor struct {
	Decider rm.Decider
	// MaxCompensationRetries bounds compensation retries (default 1000).
	MaxCompensationRetries int
}

// Execute runs the saga against the binding, appending the observable
// history to rec: forward steps in order; on the first abort, the
// compensations of all committed steps in reverse order.
func (e *Executor) Execute(spec *Spec, b Binding, rec *rm.Recorder) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	if err := spec.Bind(b); err != nil {
		return Result{}, err
	}
	committedPrefix := 0
	for i, st := range spec.Steps {
		ok, err := rm.Exec(b[st.Name], e.Decider, rec)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			// Step i+1 aborted: compensate T_j..T_1 for j = i.
			if err := e.compensate(spec, b, committedPrefix, rec); err != nil {
				return Result{}, err
			}
			return Result{Committed: false, AbortedAt: i + 1}, nil
		}
		committedPrefix = i + 1
	}
	return Result{Committed: true}, nil
}

// Compensate undoes an already committed saga — the paper notes "users may
// require to compensate an already completed saga", in which case all
// steps are compensated.
func (e *Executor) Compensate(spec *Spec, b Binding, rec *rm.Recorder) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if err := spec.Bind(b); err != nil {
		return err
	}
	return e.compensate(spec, b, len(spec.Steps), rec)
}

func (e *Executor) compensate(spec *Spec, b Binding, prefix int, rec *rm.Recorder) error {
	maxRetries := e.MaxCompensationRetries
	if maxRetries <= 0 {
		maxRetries = 1000
	}
	for i := prefix - 1; i >= 0; i-- {
		comp := spec.Steps[i].Compensation
		// Compensations must succeed; retry until they commit.
		for attempt := 0; ; attempt++ {
			ok, err := rm.Exec(b[comp], e.Decider, rec)
			if err != nil {
				return err
			}
			if ok {
				break
			}
			if attempt >= maxRetries {
				return fmt.Errorf("saga %s: compensation %q did not commit after %d attempts",
					spec.Name, comp, attempt+1)
			}
		}
	}
	return nil
}
