// Package flexible implements Flexible Transactions for heterogeneous
// multidatabase environments (Elmagarmid et al.; Mehrotra et al. MRSK92;
// Zhang et al. ZNBB94) as presented in §4.2 of "Advanced Transaction
// Models in Workflow Contexts".
//
// A flexible transaction is a set of typed subtransactions —
// compensatable, retriable, or pivot (neither) — together with
// preference-ordered alternative execution paths. If a subtransaction
// aborts, execution switches to the next viable path after compensating
// the compensatable subtransactions committed since the divergence point.
// A well-formed flexible transaction is atomic: it either eventually
// commits along some path or all its effects are undone.
//
// The package provides the specification shared with the fmtm translator,
// the path-trie analysis with the well-formedness check, and a native
// (non-workflow) executor used as the baseline for the paper's workflow
// encoding (Figure 4).
package flexible
