package flexible

import (
	"fmt"

	"repro/internal/rm"
)

// Binding maps every subtransaction and compensation name of a spec to its
// executable unit of work.
type Binding map[string]rm.Subtransaction

// Bind checks that every subtransaction and compensation has a binding.
func (s *Spec) Bind(b Binding) error {
	for _, sub := range s.Subs {
		if _, ok := b[sub.Name]; !ok {
			return fmt.Errorf("flexible %s: no binding for %q", s.Name, sub.Name)
		}
		if sub.Compensation != "" {
			if _, ok := b[sub.Compensation]; !ok {
				return fmt.Errorf("flexible %s: no binding for compensation %q", s.Name, sub.Compensation)
			}
		}
	}
	return nil
}

// Result reports the outcome of a flexible transaction execution.
type Result struct {
	// Committed is true when some execution path completed.
	Committed bool
	// Path is the committed path (subtransaction names in order); nil when
	// the transaction aborted.
	Path []string
	// Switches counts path switches (fallbacks taken).
	Switches int
}

// Executor runs flexible transactions natively, mirroring the appendix
// semantics: the most preferred continuation is attempted first; a
// retriable subtransaction is re-executed until it commits; an abort of a
// non-retriable subtransaction compensates back to the divergence point of
// the next alternative and continues there; when no alternative remains,
// everything committed is compensated and the transaction aborts.
type Executor struct {
	Decider rm.Decider
	// MaxRetries bounds retriable and compensation retry loops (default
	// 1000) to surface scripting mistakes.
	MaxRetries int
}

func (e *Executor) maxRetries() int {
	if e.MaxRetries <= 0 {
		return 1000
	}
	return e.MaxRetries
}

// Execute runs the flexible transaction against the binding, appending the
// observable history to rec.
func (e *Executor) Execute(spec *Spec, b Binding, rec *rm.Recorder) (Result, error) {
	trie, err := BuildTrie(spec)
	if err != nil {
		return Result{}, err
	}
	if err := trie.CheckWellFormed(); err != nil {
		return Result{}, err
	}
	if err := spec.Bind(b); err != nil {
		return Result{}, err
	}

	res := Result{}
	next := trie.Root.Children[0]
	for next != nil {
		n := next
		sub := spec.Sub(n.Sub)
		committed, err := e.execSub(b[n.Sub], sub.Retriable, rec)
		if err != nil {
			return Result{}, err
		}
		if committed {
			if len(n.Children) == 0 {
				res.Committed = true
				res.Path = PathTo(n)
				return res, nil
			}
			next = n.Children[0]
			continue
		}
		// Abort of a non-retriable subtransaction: compensate back to the
		// next alternative's divergence point and continue there (or abort
		// globally).
		alt, toComp := Fallback(n)
		for _, c := range toComp {
			if err := e.compensate(spec, b, c, rec); err != nil {
				return Result{}, err
			}
		}
		if alt == nil {
			return Result{Committed: false, Switches: res.Switches}, nil
		}
		res.Switches++
		next = alt
	}
	// Unreachable: the loop always exits through a return above.
	return res, nil
}

func (e *Executor) execSub(sub rm.Subtransaction, retriable bool, rec *rm.Recorder) (bool, error) {
	for attempt := 0; ; attempt++ {
		committed, err := rm.Exec(sub, e.Decider, rec)
		if err != nil {
			return false, err
		}
		if committed {
			return true, nil
		}
		if !retriable {
			return false, nil
		}
		if attempt >= e.maxRetries() {
			return false, fmt.Errorf("flexible: retriable %q did not commit after %d attempts", sub.Name, attempt+1)
		}
	}
}

func (e *Executor) compensate(spec *Spec, b Binding, n *Node, rec *rm.Recorder) error {
	sub := spec.Sub(n.Sub)
	comp := b[sub.Compensation]
	for attempt := 0; ; attempt++ {
		committed, err := rm.Exec(comp, e.Decider, rec)
		if err != nil {
			return err
		}
		if committed {
			return nil
		}
		if attempt >= e.maxRetries() {
			return fmt.Errorf("flexible: compensation %q did not commit after %d attempts", comp.Name, attempt+1)
		}
	}
}
