package flexible

import (
	"fmt"
)

// SubSpec declares one subtransaction. Pivot subtransactions are those
// that are neither compensatable nor retriable; a subtransaction may be
// both compensatable and retriable (§4.2).
type SubSpec struct {
	Name          string
	Compensatable bool
	Retriable     bool
	// Compensation is the name of the compensating subtransaction;
	// required exactly when Compensatable.
	Compensation string
}

// Pivot reports whether the subtransaction is a pivot.
func (s SubSpec) Pivot() bool { return !s.Compensatable && !s.Retriable }

// Kind renders the subtransaction type as in the paper's prose.
func (s SubSpec) Kind() string {
	switch {
	case s.Compensatable && s.Retriable:
		return "compensatable+retriable"
	case s.Compensatable:
		return "compensatable"
	case s.Retriable:
		return "retriable"
	default:
		return "pivot"
	}
}

// Spec is a flexible transaction: declared subtransactions plus the
// preference-ordered execution paths (most preferred first), as in the
// paper's Figure 3 example p1 > p2 > p3.
type Spec struct {
	Name  string
	Subs  []SubSpec
	Paths [][]string
}

// Sub returns the declaration of the named subtransaction, or nil.
func (s *Spec) Sub(name string) *SubSpec {
	for i := range s.Subs {
		if s.Subs[i].Name == name {
			return &s.Subs[i]
		}
	}
	return nil
}

// Validate checks structural sanity: unique names, compensations declared
// exactly for compensatable subtransactions, non-empty paths over declared
// subtransactions, no duplicate subtransaction within a path, every
// declared subtransaction used by some path, and no path a proper prefix
// of another (a prefix path would make "success" ambiguous at a
// divergence). It does not check well-formedness; see CheckWellFormed.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("flexible: empty transaction name")
	}
	if len(s.Subs) == 0 {
		return fmt.Errorf("flexible %s: no subtransactions", s.Name)
	}
	if len(s.Paths) == 0 {
		return fmt.Errorf("flexible %s: no execution paths", s.Name)
	}
	names := make(map[string]bool, 2*len(s.Subs))
	for _, sub := range s.Subs {
		if sub.Name == "" {
			return fmt.Errorf("flexible %s: subtransaction with empty name", s.Name)
		}
		if names[sub.Name] {
			return fmt.Errorf("flexible %s: duplicate name %q", s.Name, sub.Name)
		}
		names[sub.Name] = true
		if sub.Compensatable != (sub.Compensation != "") {
			return fmt.Errorf("flexible %s: subtransaction %q must declare a compensation iff compensatable", s.Name, sub.Name)
		}
		if sub.Compensation != "" {
			if names[sub.Compensation] {
				return fmt.Errorf("flexible %s: duplicate name %q", s.Name, sub.Compensation)
			}
			names[sub.Compensation] = true
		}
	}
	used := make(map[string]bool)
	for pi, path := range s.Paths {
		if len(path) == 0 {
			return fmt.Errorf("flexible %s: path %d is empty", s.Name, pi+1)
		}
		inPath := make(map[string]bool, len(path))
		for _, n := range path {
			if s.Sub(n) == nil {
				return fmt.Errorf("flexible %s: path %d uses undeclared subtransaction %q", s.Name, pi+1, n)
			}
			if inPath[n] {
				return fmt.Errorf("flexible %s: path %d repeats subtransaction %q", s.Name, pi+1, n)
			}
			inPath[n] = true
			used[n] = true
		}
	}
	for _, sub := range s.Subs {
		if !used[sub.Name] {
			return fmt.Errorf("flexible %s: subtransaction %q appears in no path", s.Name, sub.Name)
		}
	}
	for i, a := range s.Paths {
		for j, b := range s.Paths {
			if i == j {
				continue
			}
			if isPrefix(a, b) {
				return fmt.Errorf("flexible %s: path %d is a prefix of path %d", s.Name, i+1, j+1)
			}
		}
	}
	return nil
}

func isPrefix(a, b []string) bool {
	if len(a) > len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckStrict applies the original MRSK92 restrictions, stricter than
// ZNBB94 well-formedness: each path contains at most one pivot, every
// subtransaction before the pivot is compensatable, and every
// subtransaction after the pivot is retriable.
func (s *Spec) CheckStrict() error {
	for pi, path := range s.Paths {
		pivotAt := -1
		for i, n := range path {
			sub := s.Sub(n)
			if sub == nil {
				return fmt.Errorf("flexible %s: path %d uses undeclared %q", s.Name, pi+1, n)
			}
			if sub.Pivot() {
				if pivotAt >= 0 {
					return fmt.Errorf("flexible %s: path %d has more than one pivot (%s)", s.Name, pi+1, n)
				}
				pivotAt = i
				continue
			}
			if pivotAt < 0 && !sub.Compensatable {
				return fmt.Errorf("flexible %s: path %d: %q before the pivot is not compensatable", s.Name, pi+1, n)
			}
			if pivotAt >= 0 && !sub.Retriable {
				return fmt.Errorf("flexible %s: path %d: %q after the pivot is not retriable", s.Name, pi+1, n)
			}
		}
	}
	return nil
}
