package flexible

import "fmt"

// Node is a position in the path trie of a flexible transaction: the state
// after the subtransactions on the root-to-node chain have committed.
// Children are ordered by path preference — the first child is the
// preferred continuation, later siblings are the alternatives tried after
// failures (§4.2's optional execution paths).
type Node struct {
	// Sub is the subtransaction whose commit enters this node ("" at the
	// root).
	Sub      string
	Parent   *Node
	Children []*Node
	// ID is a stable preorder number; translators use it to derive unique
	// activity names when the same subtransaction appears at different
	// trie positions.
	ID int
}

// Trie is the path trie plus its specification.
type Trie struct {
	Spec *Spec
	Root *Node
	// nodes in preorder.
	nodes []*Node
}

// BuildTrie folds the preference-ordered paths into a trie. Children at
// each divergence appear in the order the paths introduce them, which is
// exactly the preference order.
func BuildTrie(spec *Spec) (*Trie, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := &Node{}
	for _, path := range spec.Paths {
		cur := root
		for _, sub := range path {
			var next *Node
			for _, c := range cur.Children {
				if c.Sub == sub {
					next = c
					break
				}
			}
			if next == nil {
				next = &Node{Sub: sub, Parent: cur}
				cur.Children = append(cur.Children, next)
			}
			cur = next
		}
	}
	t := &Trie{Spec: spec, Root: root}
	t.number(root)
	return t, nil
}

func (t *Trie) number(n *Node) {
	n.ID = len(t.nodes)
	t.nodes = append(t.nodes, n)
	for _, c := range n.Children {
		t.number(c)
	}
}

// Nodes returns the trie nodes in preorder (root first).
func (t *Trie) Nodes() []*Node { return t.nodes }

// PathTo returns the subtransaction names on the chain root → n.
func PathTo(n *Node) []string {
	var rev []string
	for cur := n; cur != nil && cur.Parent != nil; cur = cur.Parent {
		rev = append(rev, cur.Sub)
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// NextSibling returns the next lower-preference alternative at n's
// decision point, or nil.
func NextSibling(n *Node) *Node {
	if n.Parent == nil {
		return nil
	}
	sib := n.Parent.Children
	for i, c := range sib {
		if c == n {
			if i+1 < len(sib) {
				return sib[i+1]
			}
			return nil
		}
	}
	return nil
}

// Fallback computes where execution continues when the subtransaction
// entering n aborts: the next alternative node to attempt (nil when the
// whole flexible transaction aborts) and the committed ancestor nodes that
// must be compensated first, nearest first — i.e. in reverse order of
// their execution, as in the Sagas of Figure 2. The failed subtransaction
// itself committed nothing, so it never appears in the compensation list.
func Fallback(n *Node) (next *Node, compensate []*Node) {
	cur := n
	for {
		if s := NextSibling(cur); s != nil {
			return s, compensate
		}
		cur = cur.Parent
		if cur == nil || cur.Parent == nil {
			// Reached the root with no alternative left: global abort
			// after compensating every committed ancestor.
			return nil, compensate
		}
		compensate = append(compensate, cur)
	}
}

// CheckWellFormed verifies the ZNBB94-style atomicity condition on the
// trie: for every node whose subtransaction can abort (it is not
// retriable), every committed ancestor that its failure would force to be
// undone must be compensatable. Because Fallback's compensation list
// reaches the root exactly when no alternative remains, this single check
// simultaneously guarantees (a) clean global abort is possible whenever it
// can happen, and (b) once a pivot commits, every reachable failure still
// leads to some alternative — so the transaction eventually commits.
func (t *Trie) CheckWellFormed() error {
	for _, n := range t.nodes {
		if n.Parent == nil {
			continue
		}
		sub := t.Spec.Sub(n.Sub)
		if sub == nil {
			return fmt.Errorf("flexible %s: trie references undeclared %q", t.Spec.Name, n.Sub)
		}
		if sub.Retriable {
			continue // cannot abort for good
		}
		_, comp := Fallback(n)
		for _, c := range comp {
			cs := t.Spec.Sub(c.Sub)
			if !cs.Compensatable {
				return fmt.Errorf(
					"flexible %s: not well-formed: abort of %q requires compensating %q (%s), which is not compensatable",
					t.Spec.Name, n.Sub, c.Sub, cs.Kind())
			}
		}
	}
	return nil
}

// Segments groups the trie into maximal runs of consecutive compensatable
// nodes along single-child chains — §4.2 rule 5: "all compensatable
// subtransactions in the path between two pivot subtransactions that are
// not a bifurcation point [...] are grouped together into a single block".
// The translator turns each segment into a forward block with a mirrored
// compensation block. Every non-compensatable node (and every compensatable
// node that is a bifurcation point start) forms its own single-node
// segment with Compensatable=false handled by the caller via the spec.
type Segment struct {
	// Nodes of the segment in execution order. For a compensatable run
	// len > 0; otherwise exactly one node.
	Nodes []*Node
}

// SegmentsFrom partitions the children chain starting at n (which must
// have exactly the nodes of interest downstream) — helper used by the
// translator; exposed for testing. A segment extends while the node is
// compensatable, has exactly one child, and that child is also
// compensatable.
func SegmentsFrom(spec *Spec, first *Node) []Segment {
	var out []Segment
	cur := first
	for cur != nil {
		sub := spec.Sub(cur.Sub)
		if sub.Compensatable {
			seg := Segment{Nodes: []*Node{cur}}
			for len(cur.Children) == 1 {
				next := cur.Children[0]
				if !spec.Sub(next.Sub).Compensatable {
					break
				}
				seg.Nodes = append(seg.Nodes, next)
				cur = next
			}
			out = append(out, seg)
		} else {
			out = append(out, Segment{Nodes: []*Node{cur}})
		}
		if len(cur.Children) != 1 {
			break // divergence or leaf: the caller recurses per child
		}
		cur = cur.Children[0]
	}
	return out
}
