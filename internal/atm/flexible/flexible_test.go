package flexible

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rm"
)

// Fig3 is the paper's Figure 3 flexible transaction: T1, T5, T6
// compensatable; T2, T4, T8 pivot; T3, T7 retriable. Paths (preference
// order): p1 = T1 T2 T4 T5 T6 T8, p2 = T1 T2 T4 T7, p3 = T1 T2 T3.
//
// (The paper's prose lists T3 as both compensatable and retriable — a typo
// it itself acknowledges by noting a subtransaction can be both; the
// execution semantics it describes only use T3's retriability, which is
// what we model.)
func Fig3() *Spec {
	return &Spec{
		Name: "Fig3",
		Subs: []SubSpec{
			{Name: "T1", Compensatable: true, Compensation: "C1"},
			{Name: "T2"}, // pivot
			{Name: "T3", Retriable: true},
			{Name: "T4"}, // pivot
			{Name: "T5", Compensatable: true, Compensation: "C5"},
			{Name: "T6", Compensatable: true, Compensation: "C6"},
			{Name: "T7", Retriable: true},
			{Name: "T8"}, // pivot
		},
		Paths: [][]string{
			{"T1", "T2", "T4", "T5", "T6", "T8"},
			{"T1", "T2", "T4", "T7"},
			{"T1", "T2", "T3"},
		},
	}
}

func bindPure(spec *Spec) Binding {
	b := Binding{}
	for _, sub := range spec.Subs {
		b[sub.Name] = rm.Subtransaction{Name: sub.Name}
		if sub.Compensation != "" {
			b[sub.Compensation] = rm.Subtransaction{Name: sub.Compensation}
		}
	}
	return b
}

func history(rec *rm.Recorder) string {
	var parts []string
	for _, e := range rec.Events() {
		parts = append(parts, e.String())
	}
	return strings.Join(parts, " ")
}

func TestSpecValidate(t *testing.T) {
	if err := Fig3().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(s *Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Subs = nil },
		func(s *Spec) { s.Paths = nil },
		func(s *Spec) { s.Subs[0].Name = "" },
		func(s *Spec) { s.Subs = append(s.Subs, SubSpec{Name: "T1"}) },
		func(s *Spec) { s.Subs[0].Compensation = "" },                     // compensatable without compensation
		func(s *Spec) { s.Subs[1].Compensation = "Cx" },                   // compensation on non-compensatable
		func(s *Spec) { s.Subs = append(s.Subs, SubSpec{Name: "C1"}) },    // clash with compensation name
		func(s *Spec) { s.Paths = append(s.Paths, []string{}) },           // empty path
		func(s *Spec) { s.Paths = append(s.Paths, []string{"ghost"}) },    // undeclared
		func(s *Spec) { s.Paths = append(s.Paths, []string{"T1", "T1"}) }, // repeat in path
		func(s *Spec) { s.Paths = append(s.Paths, []string{"T1", "T2"}) }, // prefix of p1
		func(s *Spec) { s.Subs = append(s.Subs, SubSpec{Name: "unused", Retriable: true}) },
	}
	for i, mut := range mutations {
		s := Fig3()
		mut(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	// A compensation on a non-compensatable sub is caught by the iff rule.
	s := Fig3()
	s.Subs[1].Compensatable = false
	s.Subs[1].Compensation = "CX"
	if err := s.Validate(); err == nil {
		t.Error("compensation on pivot accepted")
	}
}

func TestSubKindAndPivot(t *testing.T) {
	spec := Fig3()
	if !spec.Sub("T2").Pivot() || spec.Sub("T1").Pivot() || spec.Sub("T3").Pivot() {
		t.Fatal("pivot detection wrong")
	}
	kinds := map[string]string{
		"T1": "compensatable", "T2": "pivot", "T3": "retriable",
	}
	for n, want := range kinds {
		if got := spec.Sub(n).Kind(); got != want {
			t.Errorf("Kind(%s) = %s, want %s", n, got, want)
		}
	}
	both := SubSpec{Name: "x", Compensatable: true, Retriable: true, Compensation: "cx"}
	if both.Kind() != "compensatable+retriable" {
		t.Error("both kind")
	}
	if spec.Sub("nope") != nil {
		t.Error("phantom sub")
	}
}

func TestTrieShape(t *testing.T) {
	trie, err := BuildTrie(Fig3())
	if err != nil {
		t.Fatal(err)
	}
	root := trie.Root
	if len(root.Children) != 1 || root.Children[0].Sub != "T1" {
		t.Fatalf("root children: %+v", root.Children)
	}
	t1 := root.Children[0]
	t2 := t1.Children[0]
	if len(t2.Children) != 2 || t2.Children[0].Sub != "T4" || t2.Children[1].Sub != "T3" {
		t.Fatalf("T2 children wrong (preference order): %v", subNames(t2.Children))
	}
	t4 := t2.Children[0]
	if len(t4.Children) != 2 || t4.Children[0].Sub != "T5" || t4.Children[1].Sub != "T7" {
		t.Fatalf("T4 children wrong: %v", subNames(t4.Children))
	}
	if got := len(trie.Nodes()); got != 9 { // root + 8 subs
		t.Fatalf("nodes = %d", got)
	}
	// PathTo reconstructs the chain.
	t8 := t4.Children[0].Children[0].Children[0]
	if got := strings.Join(PathTo(t8), " "); got != "T1 T2 T4 T5 T6 T8" {
		t.Fatalf("PathTo(T8) = %s", got)
	}
}

func subNames(ns []*Node) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Sub)
	}
	return out
}

func TestFallback(t *testing.T) {
	trie, err := BuildTrie(Fig3())
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string) *Node {
		for _, n := range trie.Nodes() {
			if n.Sub == name {
				return n
			}
		}
		t.Fatalf("node %s not found", name)
		return nil
	}
	cases := []struct {
		fail string
		alt  string // "" = global abort
		comp string // space-joined compensated subs, nearest first
	}{
		{"T1", "", ""},
		{"T2", "", "T1"},
		{"T4", "T3", ""},
		{"T5", "T7", ""},
		{"T6", "T7", "T5"},
		{"T8", "T7", "T6 T5"},
	}
	for _, c := range cases {
		alt, comp := Fallback(find(c.fail))
		gotAlt := ""
		if alt != nil {
			gotAlt = alt.Sub
		}
		if gotAlt != c.alt {
			t.Errorf("Fallback(%s) alt = %q, want %q", c.fail, gotAlt, c.alt)
		}
		if got := strings.Join(subNames(comp), " "); got != c.comp {
			t.Errorf("Fallback(%s) comp = %q, want %q", c.fail, got, c.comp)
		}
	}
}

func TestWellFormed(t *testing.T) {
	trie, err := BuildTrie(Fig3())
	if err != nil {
		t.Fatal(err)
	}
	if err := trie.CheckWellFormed(); err != nil {
		t.Fatalf("Fig3 should be well-formed: %v", err)
	}
	// Make T5 non-compensatable: T8's abort would need to undo it.
	bad := Fig3()
	bad.Subs[4] = SubSpec{Name: "T5"} // pivot now
	trie2, err := BuildTrie(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := trie2.CheckWellFormed(); err == nil {
		t.Fatal("ill-formed spec accepted")
	}
	// A lone pivot with no alternatives is fine (clean abort, nothing
	// committed before it).
	lone := &Spec{Name: "lone", Subs: []SubSpec{{Name: "P"}}, Paths: [][]string{{"P"}}}
	trie3, err := BuildTrie(lone)
	if err != nil {
		t.Fatal(err)
	}
	if err := trie3.CheckWellFormed(); err != nil {
		t.Fatalf("lone pivot: %v", err)
	}
	// Two pivots in sequence with no alternative: the second pivot's abort
	// would require compensating the first — ill-formed.
	two := &Spec{Name: "two", Subs: []SubSpec{{Name: "P1"}, {Name: "P2"}}, Paths: [][]string{{"P1", "P2"}}}
	trie4, err := BuildTrie(two)
	if err != nil {
		t.Fatal(err)
	}
	if err := trie4.CheckWellFormed(); err == nil {
		t.Fatal("two sequential pivots accepted")
	}
}

func TestCheckStrict(t *testing.T) {
	// Fig3 violates MRSK92 (multiple pivots per path) but satisfies
	// ZNBB94; the paper explains exactly this relaxation.
	if err := Fig3().CheckStrict(); err == nil {
		t.Fatal("Fig3 satisfies the strict MRSK92 rules unexpectedly")
	}
	ok := &Spec{
		Name: "strictOK",
		Subs: []SubSpec{
			{Name: "A", Compensatable: true, Compensation: "CA"},
			{Name: "P"},
			{Name: "R", Retriable: true},
		},
		Paths: [][]string{{"A", "P", "R"}},
	}
	if err := ok.CheckStrict(); err != nil {
		t.Fatal(err)
	}
}

// appendix scenarios: inject each abort of the appendix and compare the
// observable history with the paper's described behaviour.
func TestFig3AppendixScenarios(t *testing.T) {
	cases := []struct {
		name      string
		inject    func(inj *rm.Injector)
		committed bool
		path      string
		history   string
	}{
		{
			name:      "all_commit_p1",
			inject:    func(*rm.Injector) {},
			committed: true,
			path:      "T1 T2 T4 T5 T6 T8",
			history:   "T1:commit T2:commit T4:commit T5:commit T6:commit T8:commit",
		},
		{
			name:      "T1_aborts_clean_abort",
			inject:    func(i *rm.Injector) { i.AbortAlways("T1") },
			committed: false,
			history:   "T1:abort",
		},
		{
			name:      "T2_aborts_compensate_T1",
			inject:    func(i *rm.Injector) { i.AbortAlways("T2") },
			committed: false,
			history:   "T1:commit T2:abort C1:commit",
		},
		{
			name:      "T4_aborts_T3_retried",
			inject:    func(i *rm.Injector) { i.AbortAlways("T4"); i.AbortN("T3", 2) },
			committed: true,
			path:      "T1 T2 T3",
			history:   "T1:commit T2:commit T4:abort T3:abort T3:abort T3:commit",
		},
		{
			name:      "T5_aborts_T7",
			inject:    func(i *rm.Injector) { i.AbortAlways("T5") },
			committed: true,
			path:      "T1 T2 T4 T7",
			history:   "T1:commit T2:commit T4:commit T5:abort T7:commit",
		},
		{
			name:      "T6_aborts_compensate_T5_then_T7",
			inject:    func(i *rm.Injector) { i.AbortAlways("T6") },
			committed: true,
			path:      "T1 T2 T4 T7",
			history:   "T1:commit T2:commit T4:commit T5:commit T6:abort C5:commit T7:commit",
		},
		{
			name:      "T8_aborts_compensate_T6_T5_then_T7",
			inject:    func(i *rm.Injector) { i.AbortAlways("T8") },
			committed: true,
			path:      "T1 T2 T4 T7",
			history:   "T1:commit T2:commit T4:commit T5:commit T6:commit T8:abort C6:commit C5:commit T7:commit",
		},
		{
			name:      "T8_aborts_T7_retried",
			inject:    func(i *rm.Injector) { i.AbortAlways("T8"); i.AbortN("T7", 1) },
			committed: true,
			path:      "T1 T2 T4 T7",
			history:   "T1:commit T2:commit T4:commit T5:commit T6:commit T8:abort C6:commit C5:commit T7:abort T7:commit",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec := Fig3()
			inj := rm.NewInjector()
			c.inject(inj)
			rec := &rm.Recorder{}
			ex := &Executor{Decider: inj}
			res, err := ex.Execute(spec, bindPure(spec), rec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed != c.committed {
				t.Fatalf("committed = %v, want %v", res.Committed, c.committed)
			}
			if got := strings.Join(res.Path, " "); got != c.path {
				t.Fatalf("path = %q, want %q", got, c.path)
			}
			if got := history(rec); got != c.history {
				t.Fatalf("history = %s\nwant      %s", got, c.history)
			}
		})
	}
}

func TestExecutorRetriableBound(t *testing.T) {
	spec := Fig3()
	inj := rm.NewInjector()
	inj.AbortAlways("T4")
	inj.AbortAlways("T3") // retriable that never commits: scripting mistake
	ex := &Executor{Decider: inj, MaxRetries: 10}
	if _, err := ex.Execute(spec, bindPure(spec), &rm.Recorder{}); err == nil {
		t.Fatal("unbounded retry not surfaced")
	}
}

func TestExecutorCompensationBound(t *testing.T) {
	spec := Fig3()
	inj := rm.NewInjector()
	inj.AbortAlways("T2")
	inj.AbortAlways("C1")
	ex := &Executor{Decider: inj, MaxRetries: 10}
	if _, err := ex.Execute(spec, bindPure(spec), &rm.Recorder{}); err == nil {
		t.Fatal("unbounded compensation not surfaced")
	}
}

func TestBindMissing(t *testing.T) {
	spec := Fig3()
	b := bindPure(spec)
	delete(b, "C5")
	if err := spec.Bind(b); err == nil {
		t.Fatal("missing compensation binding accepted")
	}
	delete(b, "T2")
	if err := spec.Bind(b); err == nil {
		t.Fatal("missing sub binding accepted")
	}
}

func TestSegmentsFrom(t *testing.T) {
	trie, err := BuildTrie(Fig3())
	if err != nil {
		t.Fatal(err)
	}
	// From T5: [T5 T6] form one compensatable segment, then T8 alone.
	var t5 *Node
	for _, n := range trie.Nodes() {
		if n.Sub == "T5" {
			t5 = n
		}
	}
	segs := SegmentsFrom(trie.Spec, t5)
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	if got := strings.Join(subNames(segs[0].Nodes), " "); got != "T5 T6" {
		t.Fatalf("segment 0 = %s", got)
	}
	if got := strings.Join(subNames(segs[1].Nodes), " "); got != "T8" {
		t.Fatalf("segment 1 = %s", got)
	}
}

// TestQuickAtomicity: for randomly generated well-formed specs and random
// abort scripts, execution either commits along some declared path or
// aborts with every committed compensatable compensated (checked through
// the history: commits of compensatables not on the final path must be
// followed by their compensation).
func TestQuickAtomicity(t *testing.T) {
	f := func(seed int64) bool {
		spec, inj := genSpec(seed)
		trie, err := BuildTrie(spec)
		if err != nil {
			return true // generator made an invalid spec; skip
		}
		if err := trie.CheckWellFormed(); err != nil {
			return true // skip ill-formed
		}
		rec := &rm.Recorder{}
		ex := &Executor{Decider: inj, MaxRetries: 100}
		res, err := ex.Execute(spec, bindPure(spec), rec)
		if err != nil {
			// The random script may abort a retriable subtransaction
			// forever; the bounded retry loop surfaces that as an error by
			// design. Such runs prove nothing about atomicity — skip.
			if strings.Contains(err.Error(), "did not commit after") {
				return true
			}
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Atomicity over the observable history.
		onPath := map[string]bool{}
		for _, n := range res.Path {
			onPath[n] = true
		}
		compensated := map[string]bool{}
		committed := map[string]bool{}
		for _, e := range rec.Events() {
			if e.Kind != rm.EvCommit {
				continue
			}
			if sub := spec.Sub(e.Name); sub != nil {
				committed[e.Name] = true
			} else {
				// a compensation committed: find its subject
				for _, s := range spec.Subs {
					if s.Compensation == e.Name {
						compensated[s.Name] = true
					}
				}
			}
		}
		for name := range committed {
			if onPath[name] || compensated[name] {
				continue
			}
			sub := spec.Sub(name)
			if sub.Compensatable {
				t.Logf("seed %d: committed %s neither on final path nor compensated\nhistory: %s",
					seed, name, history(rec))
				return false
			}
			// Non-compensatable committed off the final path can only be
			// an ancestor shared with the final path... which IS on the
			// path. So this is a violation too — unless the transaction
			// aborted, which well-formedness forbids after a pivot commit.
			if res.Committed {
				t.Logf("seed %d: pivot %s committed off the committed path", seed, name)
				return false
			}
			t.Logf("seed %d: aborted with committed pivot %s", seed, name)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// genSpec builds a random spec (sometimes ill-formed; callers skip those)
// and a random abort script.
func genSpec(seed int64) (*Spec, *rm.Injector) {
	r := newRand(seed)
	nSubs := 3 + r.Intn(6)
	spec := &Spec{Name: fmt.Sprintf("gen%d", seed)}
	for i := 0; i < nSubs; i++ {
		sub := SubSpec{Name: fmt.Sprintf("S%d", i)}
		switch r.Intn(3) {
		case 0:
			sub.Compensatable = true
			sub.Compensation = fmt.Sprintf("CS%d", i)
		case 1:
			sub.Retriable = true
		}
		spec.Subs = append(spec.Subs, sub)
	}
	// Random paths: permutation prefixes sharing a common start.
	nPaths := 1 + r.Intn(3)
	for p := 0; p < nPaths; p++ {
		var path []string
		used := map[int]bool{}
		ln := 1 + r.Intn(nSubs)
		for i := 0; i < ln; i++ {
			k := r.Intn(nSubs)
			if used[k] {
				continue
			}
			used[k] = true
			path = append(path, fmt.Sprintf("S%d", k))
		}
		if len(path) > 0 {
			spec.Paths = append(spec.Paths, path)
		}
	}
	inj := rm.NewInjector()
	for i := 0; i < nSubs; i++ {
		name := fmt.Sprintf("S%d", i)
		switch r.Intn(4) {
		case 0:
			inj.AbortAlways(name)
		case 1:
			inj.AbortN(name, 1+r.Intn(2))
		}
	}
	return spec, inj
}

func newRand(seed int64) *quickRand {
	return &quickRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// quickRand is a tiny splitmix-style generator to avoid importing math/rand
// twice with conflicting names in this file.
type quickRand struct{ state uint64 }

func (q *quickRand) next() uint64 {
	q.state += 0x9e3779b97f4a7c15
	z := q.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (q *quickRand) Intn(n int) int { return int(q.next() % uint64(n)) }
