package org

import (
	"fmt"
	"sort"
	"sync"
)

// WorkItem is a manual activity offered to eligible persons. The same item
// appears on every eligible person's worklist; as soon as one person
// selects it, it disappears from all other worklists (§3.3 — the paper's
// load-balancing behaviour).
type WorkItem struct {
	ID       int64
	Activity string // activity path within the process instance
	Instance string // process instance id
	Eligible []string
	// ReadyAt is the engine's logical or wall-clock timestamp (seconds)
	// when the item was posted; used for deadline notifications.
	ReadyAt int64
	// NotifyAfter and NotifyRole configure the escalation deadline; zero
	// disables it.
	NotifyAfter int64
	NotifyRole  string
}

// Notification is an escalation event: a work item missed its deadline and
// the persons holding NotifyRole were informed.
type Notification struct {
	Item     WorkItem
	Notified []string
	At       int64
}

// Worklists manages the pending work items of an organization. It is safe
// for concurrent use.
type Worklists struct {
	dir *Directory

	mu       sync.Mutex
	nextID   int64
	items    map[int64]*WorkItem
	byPerson map[string]map[int64]bool
	notified map[int64]bool
	notes    []Notification
}

// NewWorklists returns an empty worklist manager over the directory.
func NewWorklists(dir *Directory) *Worklists {
	return &Worklists{
		dir:      dir,
		items:    make(map[int64]*WorkItem),
		byPerson: make(map[string]map[int64]bool),
		notified: make(map[int64]bool),
	}
}

// Post offers a work item to every person eligible for the staff
// assignment and returns the item with its assigned ID.
func (w *Worklists) Post(item WorkItem, role, person string) (WorkItem, error) {
	eligible, err := w.dir.Resolve(role, person)
	if err != nil {
		return WorkItem{}, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	item.ID = w.nextID
	item.Eligible = eligible
	cp := item
	w.items[item.ID] = &cp
	for _, p := range eligible {
		m := w.byPerson[p]
		if m == nil {
			m = make(map[int64]bool)
			w.byPerson[p] = m
		}
		m[item.ID] = true
	}
	return item, nil
}

// List returns the work items currently on a person's worklist, ordered by
// item ID.
func (w *Worklists) List(person string) []WorkItem {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]int64, 0, len(w.byPerson[person]))
	for id := range w.byPerson[person] {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]WorkItem, 0, len(ids))
	for _, id := range ids {
		out = append(out, *w.items[id])
	}
	return out
}

// Select claims the work item for the person: it is removed from every
// worklist it appeared on. Selecting an item not on the person's list (or
// already claimed by someone else) fails.
func (w *Worklists) Select(person string, id int64) (WorkItem, error) {
	return w.selectChecked(person, id, nil)
}

// SelectFor is Select restricted to items of one process instance: when
// the item belongs to a different instance, nothing is claimed and the
// item stays on every worklist. The engine uses it so that selecting
// through the wrong instance handle cannot destroy the work item.
func (w *Worklists) SelectFor(person string, id int64, instance string) (WorkItem, error) {
	return w.selectChecked(person, id, &instance)
}

func (w *Worklists) selectChecked(person string, id int64, instance *string) (WorkItem, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	item, ok := w.items[id]
	if !ok {
		return WorkItem{}, fmt.Errorf("org: work item %d does not exist or was already selected", id)
	}
	if !w.byPerson[person][id] {
		return WorkItem{}, fmt.Errorf("org: work item %d is not on %s's worklist", id, person)
	}
	if instance != nil && item.Instance != *instance {
		return WorkItem{}, fmt.Errorf("org: work item %d belongs to instance %s", id, item.Instance)
	}
	for _, p := range item.Eligible {
		delete(w.byPerson[p], id)
	}
	delete(w.items, id)
	delete(w.notified, id)
	return *item, nil
}

// Withdraw removes an unselected work item from every worklist without
// anyone executing it — the engine uses it when a user forces an activity
// to finish or cancels the process instance (§3.3 user intervention).
func (w *Worklists) Withdraw(id int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	item, ok := w.items[id]
	if !ok {
		return fmt.Errorf("org: work item %d does not exist or was already selected", id)
	}
	for _, p := range item.Eligible {
		delete(w.byPerson[p], id)
	}
	delete(w.items, id)
	delete(w.notified, id)
	return nil
}

// Pending reports the number of unselected work items.
func (w *Worklists) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.items)
}

// CheckDeadlines fires the notification for every pending item whose
// deadline elapsed at time now (same clock as WorkItem.ReadyAt). Each item
// notifies at most once. The resulting notifications are returned and also
// recorded (see Notifications).
func (w *Worklists) CheckDeadlines(now int64) []Notification {
	w.mu.Lock()
	defer w.mu.Unlock()
	var fired []Notification
	ids := make([]int64, 0, len(w.items))
	for id := range w.items {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		item := w.items[id]
		if item.NotifyAfter <= 0 || w.notified[id] {
			continue
		}
		if now-item.ReadyAt < item.NotifyAfter {
			continue
		}
		w.notified[id] = true
		n := Notification{Item: *item, Notified: w.dir.InRole(item.NotifyRole), At: now}
		w.notes = append(w.notes, n)
		fired = append(fired, n)
	}
	return fired
}

// Notifications returns all notifications fired so far.
func (w *Worklists) Notifications() []Notification {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Notification(nil), w.notes...)
}
