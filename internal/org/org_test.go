package org

import (
	"sync"
	"testing"
)

func newTestDir(t *testing.T) *Directory {
	t.Helper()
	d := NewDirectory()
	adds := []Person{
		{Name: "carol", Roles: []string{"manager"}},
		{Name: "alice", Roles: []string{"clerk", "reviewer"}, Manager: "carol"},
		{Name: "bob", Roles: []string{"clerk"}, Manager: "carol"},
	}
	for _, p := range adds {
		if err := d.AddPerson(p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDirectoryBasics(t *testing.T) {
	d := newTestDir(t)
	if p, ok := d.Person("alice"); !ok || p.Level != 1 || p.Manager != "carol" {
		t.Fatalf("alice: %+v %v", p, ok)
	}
	if _, ok := d.Person("zed"); ok {
		t.Fatal("phantom person")
	}
	clerks := d.InRole("clerk")
	if len(clerks) != 2 || clerks[0] != "alice" || clerks[1] != "bob" {
		t.Fatalf("clerks: %v", clerks)
	}
	if m, ok := d.Manager("bob"); !ok || m != "carol" {
		t.Fatalf("manager of bob: %q %v", m, ok)
	}
	if _, ok := d.Manager("carol"); ok {
		t.Fatal("carol should have no manager")
	}
	// Mutating a returned copy must not affect the directory.
	p, _ := d.Person("alice")
	p.Roles[0] = "hacked"
	if d.InRole("clerk")[0] != "alice" {
		t.Fatal("directory aliased by returned copy")
	}
}

func TestDirectoryErrors(t *testing.T) {
	d := newTestDir(t)
	if err := d.AddPerson(Person{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if err := d.AddPerson(Person{Name: "alice"}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := d.AddPerson(Person{Name: "dan", Manager: "ghost"}); err == nil {
		t.Error("unknown manager accepted")
	}
}

func TestResolve(t *testing.T) {
	d := newTestDir(t)
	if got, err := d.Resolve("clerk", ""); err != nil || len(got) != 2 {
		t.Fatalf("Resolve role: %v %v", got, err)
	}
	if got, err := d.Resolve("", "bob"); err != nil || len(got) != 1 || got[0] != "bob" {
		t.Fatalf("Resolve person: %v %v", got, err)
	}
	// Person assignment wins over role.
	if got, _ := d.Resolve("clerk", "bob"); len(got) != 1 {
		t.Fatalf("person should win: %v", got)
	}
	if _, err := d.Resolve("ghostrole", ""); err == nil {
		t.Error("empty role accepted")
	}
	if _, err := d.Resolve("", "ghost"); err == nil {
		t.Error("unknown person accepted")
	}
	if _, err := d.Resolve("", ""); err == nil {
		t.Error("empty assignment accepted")
	}
}

func TestWorklistSharedItem(t *testing.T) {
	d := newTestDir(t)
	w := NewWorklists(d)
	item, err := w.Post(WorkItem{Activity: "approve", Instance: "i1"}, "clerk", "")
	if err != nil {
		t.Fatal(err)
	}
	// The item is on both clerks' lists (§3.3).
	if la, lb := w.List("alice"), w.List("bob"); len(la) != 1 || len(lb) != 1 {
		t.Fatalf("lists: alice=%d bob=%d", len(la), len(lb))
	}
	if len(w.List("carol")) != 0 {
		t.Fatal("carol should not see clerk work")
	}
	// First selection wins and removes it everywhere.
	got, err := w.Select("bob", item.ID)
	if err != nil || got.Activity != "approve" {
		t.Fatalf("select: %+v %v", got, err)
	}
	if len(w.List("alice")) != 0 || len(w.List("bob")) != 0 {
		t.Fatal("item not removed from all worklists")
	}
	if _, err := w.Select("alice", item.ID); err == nil {
		t.Fatal("double selection accepted")
	}
	if w.Pending() != 0 {
		t.Fatal("pending count wrong")
	}
}

func TestWorklistSelectErrors(t *testing.T) {
	d := newTestDir(t)
	w := NewWorklists(d)
	item, err := w.Post(WorkItem{Activity: "a"}, "", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Select("bob", item.ID); err == nil {
		t.Fatal("bob selected alice's item")
	}
	if _, err := w.Select("alice", 999); err == nil {
		t.Fatal("nonexistent item selected")
	}
	if _, err := w.Post(WorkItem{Activity: "x"}, "nobody-role", ""); err == nil {
		t.Fatal("unresolvable staff accepted")
	}
}

func TestDeadlineNotification(t *testing.T) {
	d := newTestDir(t)
	w := NewWorklists(d)
	_, err := w.Post(WorkItem{
		Activity: "approve", ReadyAt: 100, NotifyAfter: 60, NotifyRole: "manager",
	}, "clerk", "")
	if err != nil {
		t.Fatal(err)
	}
	if got := w.CheckDeadlines(150); len(got) != 0 {
		t.Fatalf("notified too early: %v", got)
	}
	got := w.CheckDeadlines(160)
	if len(got) != 1 {
		t.Fatalf("notifications: %v", got)
	}
	if len(got[0].Notified) != 1 || got[0].Notified[0] != "carol" {
		t.Fatalf("notified: %v", got[0].Notified)
	}
	// At most once.
	if got := w.CheckDeadlines(1000); len(got) != 0 {
		t.Fatal("double notification")
	}
	if len(w.Notifications()) != 1 {
		t.Fatal("notification log wrong")
	}
	// Selecting clears deadline state.
	item2, _ := w.Post(WorkItem{Activity: "b", ReadyAt: 0, NotifyAfter: 10, NotifyRole: "manager"}, "clerk", "")
	if _, err := w.Select("alice", item2.ID); err != nil {
		t.Fatal(err)
	}
	if got := w.CheckDeadlines(100); len(got) != 0 {
		t.Fatal("selected item still notifies")
	}
}

func TestWorklistConcurrentSelect(t *testing.T) {
	d := newTestDir(t)
	w := NewWorklists(d)
	const n = 50
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		item, err := w.Post(WorkItem{Activity: "a"}, "clerk", "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = item.ID
	}
	var wg sync.WaitGroup
	wins := make(chan string, 2*n)
	for _, person := range []string{"alice", "bob"} {
		wg.Add(1)
		go func(person string) {
			defer wg.Done()
			for _, id := range ids {
				if _, err := w.Select(person, id); err == nil {
					wins <- person
				}
			}
		}(person)
	}
	wg.Wait()
	close(wins)
	total := 0
	for range wins {
		total++
	}
	if total != n {
		t.Fatalf("each item must be selected exactly once: %d selections of %d items", total, n)
	}
	if w.Pending() != 0 {
		t.Fatal("items left pending")
	}
}

func TestSelectForInstanceCheck(t *testing.T) {
	d := newTestDir(t)
	w := NewWorklists(d)
	item, err := w.Post(WorkItem{Activity: "a", Instance: "inst-1"}, "clerk", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.SelectFor("alice", item.ID, "inst-2"); err == nil {
		t.Fatal("wrong instance accepted")
	}
	if w.Pending() != 1 {
		t.Fatal("item consumed by failed SelectFor")
	}
	got, err := w.SelectFor("alice", item.ID, "inst-1")
	if err != nil || got.Activity != "a" {
		t.Fatalf("SelectFor: %+v %v", got, err)
	}
	if w.Pending() != 0 {
		t.Fatal("item not claimed")
	}
}
