package org

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Person is a member of the organization. A person can hold several roles
// and reports to at most one manager (the hierarchy).
type Person struct {
	Name    string
	Roles   []string
	Manager string // name of the manager, "" for the top of the hierarchy
	Level   int    // hierarchical level, 0 = top
}

// Directory is the organization database: persons, the roles they hold and
// the reporting structure. It is safe for concurrent use.
type Directory struct {
	mu      sync.RWMutex
	persons map[string]*Person
	byRole  map[string][]string // role -> sorted person names
}

// NewDirectory returns an empty organization directory.
func NewDirectory() *Directory {
	return &Directory{
		persons: make(map[string]*Person),
		byRole:  make(map[string][]string),
	}
}

// AddPerson registers a person. The name must be unique and non-empty; the
// manager, when named, must already exist (add top-down).
func (d *Directory) AddPerson(p Person) error {
	if p.Name == "" {
		return errors.New("org: person with empty name")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.persons[p.Name]; dup {
		return fmt.Errorf("org: duplicate person %q", p.Name)
	}
	if p.Manager != "" {
		m, ok := d.persons[p.Manager]
		if !ok {
			return fmt.Errorf("org: manager %q of %q not found", p.Manager, p.Name)
		}
		p.Level = m.Level + 1
	}
	cp := p
	cp.Roles = append([]string(nil), p.Roles...)
	d.persons[p.Name] = &cp
	for _, r := range cp.Roles {
		d.byRole[r] = insertSorted(d.byRole[r], p.Name)
	}
	return nil
}

// Person returns a copy of the named person's record.
func (d *Directory) Person(name string) (Person, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.persons[name]
	if !ok {
		return Person{}, false
	}
	cp := *p
	cp.Roles = append([]string(nil), p.Roles...)
	return cp, true
}

// InRole returns the sorted names of all persons holding the role.
func (d *Directory) InRole(role string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.byRole[role]...)
}

// Manager returns the manager of the named person.
func (d *Directory) Manager(name string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.persons[name]
	if !ok || p.Manager == "" {
		return "", false
	}
	return p.Manager, true
}

// Resolve maps a staff assignment to the eligible persons: a person
// assignment resolves to that person, a role assignment to everyone holding
// the role. An error is returned when nobody is eligible (the §3.3
// notification hook would fire in a real deployment).
func (d *Directory) Resolve(role, person string) ([]string, error) {
	if person != "" {
		if _, ok := d.Person(person); !ok {
			return nil, fmt.Errorf("org: unknown person %q", person)
		}
		return []string{person}, nil
	}
	if role != "" {
		ps := d.InRole(role)
		if len(ps) == 0 {
			return nil, fmt.Errorf("org: no person holds role %q", role)
		}
		return ps, nil
	}
	return nil, errors.New("org: empty staff assignment")
}

func insertSorted(s []string, v string) []string {
	i := sort.SearchStrings(s, v)
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
