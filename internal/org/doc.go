// Package org implements the organizational model of §3.3 of the paper:
// the description of an organization in terms of persons, roles and
// hierarchical levels, the resolution of activity staff assignments to
// eligible persons, per-person worklists where the same work item may
// appear simultaneously on several lists until one person selects it, and
// deadline notifications for work items that sit unselected too long.
//
// These are exactly the workflow features the paper points out are absent
// from every advanced transaction model.
package org
