package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// oneShotProcess builds a single program activity carrying the given
// retry policy and deadline.
func oneShotProcess(name, prog string, rp *model.RetryPolicy, deadlineMS int64) *model.Process {
	p := model.NewProcess(name)
	p.Activities = []*model.Activity{{
		Name: "A", Kind: model.KindProgram, Program: prog,
		Retry: rp, DeadlineMS: deadlineMS,
	}}
	return p
}

func TestPanicIsolation(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProgram("panic", ProgramFunc(func(inv *Invocation) error {
		panic("kaboom")
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(oneShotProcess("Panics", "panic", nil, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(chainProcess("Healthy")); err != nil {
		t.Fatal(err)
	}

	inst, err := e.CreateInstance("Panics", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = inst.Start() // must return, not unwind the test
	if err == nil {
		t.Fatal("panicking program did not fail the instance")
	}
	af := inst.Failure()
	if af == nil {
		t.Fatalf("Failure() = nil, Err() = %v", inst.Err())
	}
	var pe *PanicError
	if !errors.As(af.Cause, &pe) || fmt.Sprint(pe.Value) != "kaboom" {
		t.Fatalf("cause = %v, want PanicError(kaboom)", af.Cause)
	}
	if pe.Stack == "" {
		t.Error("panic stack not captured")
	}
	if af.Attempts != 1 {
		t.Errorf("panic retried: attempts = %d", af.Attempts) // panics are fatal
	}

	// The failure is visible on the monitor with its cause...
	var row *InstanceInfo
	infos := e.Instances()
	for i := range infos {
		if infos[i].ID == inst.ID() {
			row = &infos[i]
		}
	}
	if row == nil || row.Status != "failed" || !strings.Contains(row.Cause, "kaboom") {
		t.Fatalf("monitor row = %+v", row)
	}
	// ...and on the audit trail.
	var failed bool
	for _, ev := range inst.Trail() {
		if ev.Kind == EvFailed && strings.Contains(ev.Cause, "kaboom") {
			failed = true
		}
	}
	if !failed {
		t.Error("no EvFailed event on the trail")
	}

	// Sibling instances and the engine itself keep working.
	sibling := runToEnd(t, e, "Healthy", nil)
	if !sibling.Finished() {
		t.Fatal("engine unusable after a program panic")
	}
}

func TestDeadlineFailsActivity(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProgram("hang", ProgramFunc(func(inv *Invocation) error {
		time.Sleep(200 * time.Millisecond)
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(oneShotProcess("Hangs", "hang", nil, 10)); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Hangs", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("deadline miss did not fail the instance")
	}
	af := inst.Failure()
	if af == nil || !errors.Is(af.Cause, ErrDeadlineExceeded) {
		t.Fatalf("failure = %v, want deadline exceeded", inst.Err())
	}
	if status, cause := inst.StatusInfo(); status != "failed" || !strings.Contains(cause, "deadline") {
		t.Fatalf("status = %q cause = %q", status, cause)
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	var slept []time.Duration
	e := newTestEngine(t, WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	var attempts []int
	if err := e.RegisterProgram("flaky", ProgramFunc(func(inv *Invocation) error {
		attempts = append(attempts, inv.Attempt)
		if inv.Attempt < 3 {
			return Transient(errors.New("resource manager unavailable"))
		}
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	rp := &model.RetryPolicy{MaxAttempts: 3, BackoffMS: 5}
	if err := e.RegisterProcess(oneShotProcess("Flaky", "flaky", rp, 0)); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Flaky", nil)
	if !inst.Finished() {
		t.Fatalf("retried instance not finished: %v", inst.Err())
	}
	if fmt.Sprint(attempts) != "[1 2 3]" {
		t.Fatalf("attempts = %v", attempts)
	}
	// Exponential backoff: base 5ms, doubled before the third attempt.
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("backoff = %v, want %v", slept, want)
	}
}

func TestTransientRetryExhausted(t *testing.T) {
	e := newTestEngine(t, WithSleep(func(time.Duration) {}))
	if err := e.RegisterProgram("down", ProgramFunc(func(inv *Invocation) error {
		return Transient(errors.New("still down"))
	})); err != nil {
		t.Fatal(err)
	}
	rp := &model.RetryPolicy{MaxAttempts: 2, BackoffMS: 1}
	if err := e.RegisterProcess(oneShotProcess("Down", "down", rp, 0)); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Down", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("exhausted retries did not fail the instance")
	}
	af := inst.Failure()
	if af == nil || af.Attempts != 2 || !IsTransient(af.Cause) {
		t.Fatalf("failure = %+v", af)
	}
	if !strings.Contains(af.Error(), "after 2 attempts") {
		t.Fatalf("message = %q", af.Error())
	}
}

func TestFatalErrorNotRetried(t *testing.T) {
	e := newTestEngine(t, WithSleep(func(time.Duration) {
		t.Error("backoff slept for a fatal error")
	}))
	calls := 0
	if err := e.RegisterProgram("fatal", ProgramFunc(func(inv *Invocation) error {
		calls++
		return errors.New("config missing") // not wrapped with Transient
	})); err != nil {
		t.Fatal(err)
	}
	rp := &model.RetryPolicy{MaxAttempts: 5, BackoffMS: 1}
	if err := e.RegisterProcess(oneShotProcess("Fatal", "fatal", rp, 0)); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Fatal", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("fatal error did not fail the instance")
	}
	if calls != 1 {
		t.Fatalf("fatal error invoked %d times", calls)
	}
	if af := inst.Failure(); af == nil || af.Attempts != 1 {
		t.Fatalf("failure = %+v", af)
	}
}

func TestRetriedAttemptGetsFreshOutput(t *testing.T) {
	e := newTestEngine(t, WithSleep(func(time.Duration) {}))
	if err := e.RegisterProgram("dirty", ProgramFunc(func(inv *Invocation) error {
		if inv.Attempt == 1 {
			// Scribble on the output, then fail: the retry must not see it.
			inv.Out.SetRC(99)
			return Transient(errors.New("torn"))
		}
		if rc := inv.Out.RC(); rc != 0 {
			return fmt.Errorf("stale output leaked into retry: RC=%d", rc)
		}
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	rp := &model.RetryPolicy{MaxAttempts: 2}
	if err := e.RegisterProcess(oneShotProcess("Dirty", "dirty", rp, 0)); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Dirty", nil)
	if !inst.Finished() {
		t.Fatalf("instance failed: %v", inst.Err())
	}
}

// TestConcurrentPanicIsolation drives a panicking branch through the
// worker pool: the instance fails with the panic recorded, other branches
// drain, and a later instance on the same engine still completes. Run
// under -race this also checks the completion plumbing.
func TestConcurrentPanicIsolation(t *testing.T) {
	e := New(WithConcurrency(4))
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProgram("slow", ProgramFunc(func(inv *Invocation) error {
		time.Sleep(5 * time.Millisecond)
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	p := fanProcess(4)
	p.Activities[2].Program = "panicky" // one branch of the fan
	if err := e.RegisterProgram("panicky", ProgramFunc(func(inv *Invocation) error {
		panic("worker down")
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Fan", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("panicking branch did not fail the instance")
	}
	af := inst.Failure()
	var pe *PanicError
	if af == nil || !errors.As(af.Cause, &pe) {
		t.Fatalf("failure = %v", inst.Err())
	}

	// The pool and engine survive: a clean fan on the same engine finishes.
	p2 := fanProcess(4)
	p2.Name = "Fan2"
	if err := e.RegisterProcess(p2); err != nil {
		t.Fatal(err)
	}
	inst2, err := e.CreateInstance("Fan2", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.Start(); err != nil || !inst2.Finished() {
		t.Fatalf("engine unusable after worker panic: %v", err)
	}
}

// TestMonitorDuringConcurrentRun polls Engine.Instances from another
// goroutine while instances execute on a worker pool; under -race this
// fails if monitor reads race with navigation writes.
func TestMonitorDuringConcurrentRun(t *testing.T) {
	e := New(WithConcurrency(3))
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProgram("slow", ProgramFunc(func(inv *Invocation) error {
		time.Sleep(time.Millisecond)
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(fanProcess(6)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, info := range e.Instances() {
					if info.Status == "failed" {
						t.Errorf("unexpected failure: %+v", info)
					}
				}
			}
		}
	}()
	for i := 0; i < 5; i++ {
		inst, err := e.CreateInstance("Fan", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); err != nil || !inst.Finished() {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}
