package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/wal"
)

// randomDAG builds a random process: n activities, forward edges with
// probability pEdge, random transition conditions and joins. Every graph it
// returns passes Validate.
func randomDAG(r *rand.Rand, name string, n int, pEdge float64) *model.Process {
	p := model.NewProcess(name)
	for i := 0; i < n; i++ {
		a := &model.Activity{
			Name: fmt.Sprintf("A%d", i), Kind: model.KindProgram, Program: "coin",
		}
		if r.Intn(2) == 0 {
			a.Join = model.JoinOr
		}
		p.Activities = append(p.Activities, a)
	}
	conds := []string{"RC = 0", "RC <> 0", "TRUE", "RC = 0", "RC = 0"}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() >= pEdge {
				continue
			}
			var cond expr.Node
			if c := conds[r.Intn(len(conds))]; c != "TRUE" {
				cond = expr.MustParse(c)
			}
			p.Control = append(p.Control, &model.ControlConnector{
				From: fmt.Sprintf("A%d", i), To: fmt.Sprintf("A%d", j), Condition: cond,
			})
		}
	}
	return p
}

// coinProgram commits or aborts pseudo-randomly but deterministically per
// (instance, path, iter).
type coinProgram struct{ seed int64 }

func (c *coinProgram) Run(inv *Invocation) error {
	h := int64(0)
	for _, b := range inv.Path {
		h = h*131 + int64(b)
	}
	r := rand.New(rand.NewSource(c.seed ^ h ^ int64(inv.Iter)))
	inv.Out.SetRC(int64(r.Intn(2)))
	return nil
}

// TestPropertyRandomDAGsComplete is experiment E5: on random DAGs with
// random conditions, joins and abort outcomes, navigation always drives
// every activity to terminated — dead path elimination guarantees progress
// and the synchronizing or-join never deadlocks.
func TestPropertyRandomDAGsComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		pEdge := 0.1 + 0.5*r.Float64()
		proc := randomDAG(r, "Rand", n, pEdge)
		if err := proc.Validate(nil); err != nil {
			t.Logf("seed %d: generator produced invalid process: %v", seed, err)
			return false
		}
		e := New()
		if err := e.RegisterProgram("coin", &coinProgram{seed: seed}); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterProcess(proc); err != nil {
			t.Logf("seed %d: register: %v", seed, err)
			return false
		}
		inst, err := e.CreateInstance("Rand", nil, nil)
		if err != nil {
			t.Logf("seed %d: create: %v", seed, err)
			return false
		}
		if err := inst.Start(); err != nil {
			t.Logf("seed %d: start: %v", seed, err)
			return false
		}
		if !inst.Finished() {
			t.Logf("seed %d: instance stuck", seed)
			return false
		}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("A%d", i)
			if s, ok := inst.ActivityState(name); !ok || s != StateTerminated {
				t.Logf("seed %d: %s in state %v", seed, name, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterministicReplay: recovering from a crash at a random
// point always reproduces the crash-free program-run history.
func TestPropertyDeterministicReplay(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8)
		proc := randomDAG(r, "Rand", n, 0.4)

		mkEngine := func() *Engine {
			e := New()
			if err := e.RegisterProgram("coin", &coinProgram{seed: seed}); err != nil {
				t.Fatal(err)
			}
			if err := e.RegisterProcess(proc); err != nil {
				t.Fatal(err)
			}
			return e
		}
		// Crash-free baseline.
		base := mkEngine()
		cleanLog := &wal.MemLog{}
		inst0, err := base.CreateInstance("Rand", nil, cleanLog)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst0.Start(); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprint(inst0.ProgramRuns())

		if cleanLog.Len() < 2 {
			return true
		}
		crashAt := 1 + r.Intn(cleanLog.Len()-1)
		e := mkEngine()
		log := &wal.MemLog{CrashAfter: crashAt}
		inst, err := e.CreateInstance("Rand", nil, log)
		if err != nil {
			t.Fatal(err)
		}
		_ = inst.Start() // expected to crash (or finish if crashAt beyond writes)
		e2 := mkEngine()
		rec, err := Recover(e2, log.Records(), nil)
		if err != nil {
			t.Logf("seed %d: recover: %v", seed, err)
			return false
		}
		if !rec.Finished() {
			t.Logf("seed %d: recovered instance stuck", seed)
			return false
		}
		got := fmt.Sprint(rec.ProgramRuns())
		if got != want {
			t.Logf("seed %d: runs diverge\n got %s\nwant %s", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDPENeverRunsFalseStarts: a program never executes when its
// start condition evaluated false (soundness of dead path elimination).
func TestPropertyDPENeverRunsFalseStarts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		proc := randomDAG(r, "Rand", n, 0.5)
		e := New()
		if err := e.RegisterProgram("coin", &coinProgram{seed: seed}); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterProcess(proc); err != nil {
			t.Fatal(err)
		}
		inst, err := e.CreateInstance("Rand", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); err != nil {
			t.Fatal(err)
		}
		// Reconstruct connector values from the trail and check each
		// started activity's join was satisfied.
		connVal := map[string]map[string]bool{} // to -> from -> val
		started := map[string]bool{}
		for _, ev := range inst.Trail() {
			switch ev.Kind {
			case EvConnector:
				m := connVal[ev.To]
				if m == nil {
					m = map[string]bool{}
					connVal[ev.To] = m
				}
				m[ev.From] = ev.Value
			case EvStarted:
				started[ev.Path] = true
			}
		}
		for name := range started {
			act := proc.Graph.Activity(name)
			incoming := proc.Incoming(name)
			if len(incoming) == 0 {
				continue
			}
			anyTrue, allTrue := false, true
			for _, c := range incoming {
				if connVal[name][c.From] {
					anyTrue = true
				} else {
					allTrue = false
				}
			}
			ok := allTrue
			if act.Join == model.JoinOr {
				ok = anyTrue
			}
			if !ok {
				t.Logf("seed %d: %s started with unsatisfied join", seed, name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
