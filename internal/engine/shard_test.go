package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

func TestShardForDeterministicInRange(t *testing.T) {
	for shards := 1; shards <= 9; shards++ {
		for i := 0; i < 1000; i++ {
			id := fmt.Sprintf("inst-%d", i)
			got := ShardFor(id, shards)
			if got < 0 || got >= shards {
				t.Fatalf("ShardFor(%q, %d) = %d, out of range", id, shards, got)
			}
			if again := ShardFor(id, shards); again != got {
				t.Fatalf("ShardFor(%q, %d) unstable: %d then %d", id, shards, got, again)
			}
		}
	}
}

// TestShardPlacementMinimalMovement is the consistent-hash property the
// fleet's resharding story rests on: growing the shard count from N to
// N+1 moves only ~1/(N+1) of the instances, and every instance that
// moves lands on the new shard — none shuffle between existing shards.
func TestShardPlacementMinimalMovement(t *testing.T) {
	const keys = 20000
	for _, n := range []int{1, 2, 3, 4, 8} {
		moved := 0
		for i := 0; i < keys; i++ {
			id := fmt.Sprintf("inst-%d", i)
			before, after := ShardFor(id, n), ShardFor(id, n+1)
			if before == after {
				continue
			}
			if after != n {
				t.Fatalf("key %q moved %d -> %d growing %d -> %d shards; moves may only target the new shard %d",
					id, before, after, n, n+1, n)
			}
			moved++
		}
		frac, ideal := float64(moved)/keys, 1/float64(n+1)
		if frac < ideal/2 || frac > ideal*2 {
			t.Fatalf("%d -> %d shards moved %.4f of keys, want ~%.4f", n, n+1, frac, ideal)
		}
	}
}

func TestShardDirNaming(t *testing.T) {
	root := t.TempDir()
	for _, i := range []int{0, 3, 11} {
		if err := os.MkdirAll(filepath.Join(root, ShardDirName(i)), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	// Non-shard entries are ignored.
	if err := os.MkdirAll(filepath.Join(root, "ckpt"), 0o755); err != nil {
		t.Fatal(err)
	}
	dirs, err := ShardDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(root, "shard-00"),
		filepath.Join(root, "shard-03"),
		filepath.Join(root, "shard-11"),
	}
	if len(dirs) != len(want) {
		t.Fatalf("ShardDirs = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("ShardDirs[%d] = %q, want %q", i, dirs[i], want[i])
		}
	}
}

func TestFleetRunFinishesAndRecovers(t *testing.T) {
	const n = 20
	root := t.TempDir()
	e := newTestEngine(t)
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(e, FleetConfig{
		Shards: 4, Dir: root, Parallel: 2, MaxQueue: 4,
		GroupCommit: true, SegmentMaxRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run("Chain", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Launched != n || res.Finished != n || res.Failed != 0 {
		t.Fatalf("result = %+v", res)
	}
	st := f.Stats()
	var placed int64
	for _, sh := range st.Shards {
		placed += sh.Placed
		if sh.Queued != 0 || sh.Active != 0 {
			t.Fatalf("shard %d not drained: %+v", sh.ID, sh)
		}
	}
	if placed != n {
		t.Fatalf("placed %d, want %d", placed, n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Bursty submission may overflow-rebalance a hash-skewed shard, but
	// nothing may shed with blocking admission.
	if st.Shed != 0 {
		t.Fatalf("unexpected shed: %+v", st)
	}

	e2 := newTestEngine(t)
	if err := e2.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	insts, err := RecoverFleet(e2, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != n {
		t.Fatalf("recovered %d instances, want %d", len(insts), n)
	}
	for _, inst := range insts {
		if !inst.Finished() {
			t.Fatalf("recovered %s not finished", inst.ID())
		}
	}
}

// TestRecoverFleetMatchesSingleLogRecovery pins the demultiplexing
// contract: recovering a shard-directory layout reproduces, instance by
// instance, exactly what single-shared-log recovery produces for the
// same fleet workload.
func TestRecoverFleetMatchesSingleLogRecovery(t *testing.T) {
	const n = 24
	trailsOf := func(insts []*Instance) map[string][]string {
		m := make(map[string][]string, len(insts))
		for _, inst := range insts {
			m[inst.ID()] = trailStrings(inst)
		}
		return m
	}

	// Reference: one shared group-commit segmented log for the fleet.
	dirA := t.TempDir()
	e1 := newTestEngine(t)
	if err := e1.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	slog, err := wal.OpenSegmentedLog(dirA, wal.SegmentMaxRecords(16))
	if err != nil {
		t.Fatal(err)
	}
	g := wal.NewGroupCommitSegmented(slog)
	if _, err := e1.RunFleet(FleetOptions{Process: "Chain", N: n, Parallel: 4, Log: g}); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := wal.ReadSegments(dirA, 0)
	if err != nil {
		t.Fatal(err)
	}
	e2 := newTestEngine(t)
	if err := e2.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	single, err := RecoverAll(e2, recs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := trailsOf(single)

	// Same workload through a 4-shard fleet, recovered from shard-NN/.
	dirB := t.TempDir()
	e3 := newTestEngine(t)
	if err := e3.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(e3, FleetConfig{
		Shards: 4, Dir: dirB, Parallel: 4, MaxQueue: 8,
		GroupCommit: true, SegmentMaxRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run("Chain", n, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	e4 := newTestEngine(t)
	if err := e4.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	sharded, err := RecoverFleet(e4, dirB, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := trailsOf(sharded)

	if len(got) != len(want) {
		t.Fatalf("sharded recovery found %d instances, single-log %d", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("instance %s missing from sharded recovery", id)
		}
		if len(g) != len(w) {
			t.Fatalf("instance %s trail length %d != %d", id, len(g), len(w))
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("instance %s trail[%d] = %q, want %q", id, i, g[i], w[i])
			}
		}
	}
}

// TestFleetPlaceRebalance drives the placement policy directly: a hot
// home shard spills to a strictly cooler peer, a full home overflows to
// any admitting peer, and a saturated fleet sheds.
func TestFleetPlaceRebalance(t *testing.T) {
	e := newTestEngine(t)
	f, err := NewFleet(e, FleetConfig{Shards: 2, Parallel: 1, MaxQueue: 1, HotQueue: 1, Shed: true})
	if err != nil {
		t.Fatal(err)
	}
	// An id whose consistent-hash home is shard 0.
	home0 := ""
	for i := 0; ; i++ {
		id := fmt.Sprintf("k-%d", i)
		if ShardFor(id, 2) == 0 {
			home0 = id
			break
		}
	}

	// Cool home: placement follows the hash.
	sh, err := f.place(home0)
	if err != nil || sh.ID != 0 {
		t.Fatalf("place on cool home = shard %v, err %v", sh, err)
	}
	sh.sched.Unadmit()

	// Hot home, cooler peer: proactive spill to shard 1.
	f.shards[0].inflight.Store(1)
	sh, err = f.place(home0)
	if err != nil || sh.ID != 1 {
		t.Fatalf("place on hot home = shard %v, err %v; want spill to 1", sh, err)
	}
	sh.sched.Unadmit()
	if f.Stats().Rebalanced != 1 {
		t.Fatalf("rebalanced = %d, want 1", f.Stats().Rebalanced)
	}

	// Hot home but peer no cooler: stay home while the queue admits.
	f.shards[1].inflight.Store(1)
	sh, err = f.place(home0)
	if err != nil || sh.ID != 0 {
		t.Fatalf("place with equal load = shard %v, err %v; want home 0", sh, err)
	}
	sh.sched.Unadmit()

	// Saturated fleet: fill both shards' admission slots, then shed.
	for i := 0; i < 2; i++ { // Parallel + MaxQueue slots per shard
		f.shards[0].sched.Admit()
		f.shards[1].sched.Admit()
	}
	if _, err := f.place(home0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("place on saturated fleet err = %v, want ErrOverloaded", err)
	}
	if f.Stats().Shed != 1 {
		t.Fatalf("shed = %d, want 1", f.Stats().Shed)
	}
}

// TestFleetSubmitShedLeavesNoRecords mirrors the RunFleet guarantee: a
// shed submission never creates an instance, so it leaves no WAL
// records and no engine ID hole visible to recovery.
func TestFleetSubmitShedLeavesNoRecords(t *testing.T) {
	root := t.TempDir()
	e := newTestEngine(t)
	block := make(chan struct{})
	if err := e.RegisterProgram("hold", ProgramFunc(func(inv *Invocation) error {
		<-block
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(chainProcess("Hold", "hold", "ok", "ok")); err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(e, FleetConfig{Shards: 2, Dir: root, Parallel: 1, Shed: true})
	if err != nil {
		t.Fatal(err)
	}
	// Two submissions occupy both shards' single workers (rebalance
	// guarantees one per shard); the third must shed.
	for i := 0; i < 2; i++ {
		if _, err := f.Submit("Hold", nil, nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := f.Submit("Hold", nil, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit on full fleet err = %v, want ErrOverloaded", err)
	}
	close(block)
	f.Drain()
	st := f.Stats()
	if st.Shed != 1 || st.Shards[0].Placed+st.Shards[1].Placed != 2 {
		t.Fatalf("stats = %+v, want 2 placed, 1 shed", st)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := newTestEngine(t)
	if err := e2.RegisterProgram("hold", ProgramFunc(func(inv *Invocation) error {
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e2.RegisterProcess(chainProcess("Hold", "hold", "ok", "ok")); err != nil {
		t.Fatal(err)
	}
	insts, err := RecoverFleet(e2, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("recovered %d instances, want exactly the 2 admitted", len(insts))
	}
}
