package engine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Trace derives a span tree from the instance's audit trail — the §3.3
// monitoring record viewed the way a distributed tracer would draw it.
// The instance is the root span; every activity execution (one
// exit-condition iteration) is a child span opened by its EvStarted event
// and closed by EvFinished or EvFailed. Block and subprocess member
// executions nest under their owner's span, because member paths extend
// the owner's path ("Forward#0/book_flight" nests under Forward's
// iteration 0). Events that are not executions — ready, looped,
// connector evaluations, work item flow, dead path eliminations — attach
// as point events to the nearest enclosing span.
//
// Timestamps are the engine clock (seconds by default), so production
// traces are coarse but tests with logical clocks get exact durations.
// Call Trace from the navigator goroutine or after the instance settled;
// like Trail, it is not synchronized with active navigation.
func (inst *Instance) Trace() *obs.Trace {
	trail := inst.trail
	status, cause := inst.StatusInfo()
	root := &obs.Span{Name: inst.proc.Name, Kind: "instance", Status: "open"}
	if len(trail) > 0 {
		root.Start = trail[0].At
		root.End = trail[len(trail)-1].At
	}
	switch status {
	case "finished":
		root.Status = "ok"
	case "failed":
		root.Status = "failed"
		root.Attrs = map[string]string{"cause": cause}
	}

	// Open and closed spans are both kept by execution key (path#iter):
	// late events for a closed execution (EvLooped follows EvFinished)
	// still find their span.
	spans := make(map[string]*obs.Span)
	key := func(path string, iter int) string { return fmt.Sprintf("%s#%d", path, iter) }
	// parentOf returns the span to attach a child or event for the given
	// path to: the owning activity execution's span, or the root. The
	// scope path of a nested execution is exactly the owner's key —
	// childPath builds "ownerPath#iter/member".
	parentOf := func(path string) *obs.Span {
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			if p := spans[path[:i]]; p != nil {
				return p
			}
		}
		return root
	}
	for _, ev := range trail {
		switch ev.Kind {
		case EvCreated, EvDone, EvCanceled:
			// Instance-level lifecycle: already reflected in the root span.
			if ev.Kind == EvCanceled {
				root.AddEvent("canceled", ev.At, "")
			}
		case EvStarted:
			sp := &obs.Span{
				Name: ev.Path[strings.LastIndexByte(ev.Path, '/')+1:],
				Kind: "activity", Path: ev.Path, Iter: ev.Iter,
				Start: ev.At, End: ev.At, Status: "open",
			}
			if ev.Program != "" {
				sp.Attrs = map[string]string{"program": ev.Program}
			}
			spans[key(ev.Path, ev.Iter)] = sp
			parent := parentOf(ev.Path)
			parent.Children = append(parent.Children, sp)
		case EvFinished:
			if sp := spans[key(ev.Path, ev.Iter)]; sp != nil {
				sp.End = ev.At
				sp.Status = "ok"
				if sp.Attrs == nil {
					sp.Attrs = make(map[string]string, 1)
				}
				sp.Attrs["rc"] = strconv.FormatInt(ev.RC, 10)
			}
		case EvFailed:
			if sp := spans[key(ev.Path, ev.Iter)]; sp != nil {
				sp.End = ev.At
				sp.Status = "failed"
				if sp.Attrs == nil {
					sp.Attrs = make(map[string]string, 1)
				}
				sp.Attrs["cause"] = ev.Cause
			} else {
				root.AddEvent("failed", ev.At, ev.Path+": "+ev.Cause)
			}
		case EvConnector:
			detail := fmt.Sprintf("%s -> %s = %v", ev.From, ev.To, ev.Value)
			parentOf(ev.From).AddEvent("connector", ev.At, detail)
		default:
			// Point events on the execution's own span when it exists
			// (looped, terminated), otherwise on the enclosing span (ready,
			// dead-path, work-posted — the execution never started).
			target := spans[key(ev.Path, ev.Iter)]
			if target == nil {
				target = parentOf(ev.Path)
			}
			detail := ""
			if target == root {
				detail = ev.Path
			}
			target.AddEvent(ev.Kind.String(), ev.At, detail)
		}
	}
	return &obs.Trace{TraceID: inst.id, Process: inst.proc.Name, Root: root}
}
