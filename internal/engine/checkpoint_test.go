package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wal"
)

// genFleetHistory runs n instances of the recovery process on one engine,
// crashing a random subset mid-flight, and returns the per-instance
// record slices plus a randomized interleaving of them (per-instance
// order preserved — what a shared group-commit log would hold).
func genFleetHistory(t *testing.T, r *rand.Rand, n int) (map[string][]wal.Record, []wal.Record) {
	t.Helper()
	e, _ := newRecoveryEngine(t)
	perInst := make(map[string][]wal.Record)
	var ids []string
	for i := 0; i < n; i++ {
		log := &wal.MemLog{}
		if r.Intn(2) == 0 {
			log.CrashAfter = 1 + r.Intn(10) // mid-flight at a random point
		}
		inst, err := e.CreateInstance("Rec", nil, log)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); err != nil && !errors.Is(err, wal.ErrCrash) {
			t.Fatal(err)
		}
		perInst[inst.ID()] = log.Records()
		ids = append(ids, inst.ID())
	}
	// Randomized merge: repeatedly pick an instance with records left.
	pos := make(map[string]int)
	var merged []wal.Record
	for {
		var live []string
		for _, id := range ids {
			if pos[id] < len(perInst[id]) {
				live = append(live, id)
			}
		}
		if len(live) == 0 {
			break
		}
		id := live[r.Intn(len(live))]
		merged = append(merged, perInst[id][pos[id]])
		pos[id]++
	}
	return perInst, merged
}

func snapshotsByID(insts []*Instance) map[string]*InstanceSnapshot {
	out := make(map[string]*InstanceSnapshot, len(insts))
	for _, inst := range insts {
		out[inst.ID()] = inst.Snapshot()
	}
	return out
}

// TestCheckpointRecoveryEquivalence is the Compact/checkpoint divergence
// property test: for randomized interleaved fleet histories, recovery by
// full replay, recovery over Compact-ed per-instance records, and
// checkpoint-based recovery (BuildCheckpoint over a random prefix, written
// to disk and read back, plus tail replay) must reconstruct identical
// instances.
func TestCheckpointRecoveryEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		perInst, merged := genFleetHistory(t, r, 3+r.Intn(4))

		// Path A: full replay of the interleaved history.
		eA, _ := newRecoveryEngine(t)
		instsA, err := RecoverAll(eA, merged, nil)
		if err != nil {
			t.Fatalf("seed %d: full replay: %v", seed, err)
		}
		snapA := snapshotsByID(instsA)

		// Path B: Recover(Compact(recs)) per instance.
		eB, _ := newRecoveryEngine(t)
		for id, recs := range perInst {
			inst, err := Recover(eB, wal.Compact(recs), nil)
			if err != nil {
				t.Fatalf("seed %d: compacted recover %s: %v", seed, id, err)
			}
			if !inst.Snapshot().Equal(snapA[id]) {
				t.Fatalf("seed %d: Recover(Compact) diverges for %s:\n%+v\nvs\n%+v",
					seed, id, inst.Snapshot(), snapA[id])
			}
		}

		// Path C: checkpoint a random prefix (through the on-disk format),
		// replay only the tail.
		k := r.Intn(len(merged) + 1)
		cp := wal.BuildCheckpoint(nil, merged[:k], 1)
		dir := t.TempDir()
		if _, err := wal.WriteCheckpoint(dir, cp); err != nil {
			t.Fatal(err)
		}
		loaded, err := wal.LoadCheckpoint(dir)
		if err != nil || loaded == nil {
			t.Fatalf("seed %d: reload checkpoint: %v", seed, err)
		}
		eC, _ := newRecoveryEngine(t)
		instsC, err := RecoverAllFromCheckpoint(eC, loaded, merged[k:], nil)
		if err != nil {
			t.Fatalf("seed %d: checkpoint recovery (k=%d): %v", seed, k, err)
		}
		snapC := snapshotsByID(instsC)
		doneC := make(map[string]bool)
		for _, id := range loaded.Done {
			doneC[id] = true
		}
		for id, want := range snapA {
			got, recovered := snapC[id]
			switch {
			case recovered && doneC[id]:
				t.Fatalf("seed %d: %s both recovered and marked done", seed, id)
			case doneC[id]:
				// Finished inside the covered prefix: not resurrected, but it
				// must indeed have finished.
				if want.Status != "finished" {
					t.Fatalf("seed %d: %s marked done but full replay says %s", seed, id, want.Status)
				}
			case !recovered:
				t.Fatalf("seed %d: instance %s lost by checkpoint recovery (k=%d)", seed, id, k)
			case !got.Equal(want):
				t.Fatalf("seed %d: checkpoint recovery diverges for %s (k=%d):\n%+v\nvs\n%+v",
					seed, id, k, got, want)
			}
		}
	}
}

// TestRecoverAllFromCheckpointNil: a nil checkpoint is the full-replay
// rung of the ladder.
func TestRecoverAllFromCheckpointNil(t *testing.T) {
	_, merged := genFleetHistory(t, rand.New(rand.NewSource(1)), 3)
	eA, _ := newRecoveryEngine(t)
	instsA, err := RecoverAll(eA, merged, nil)
	if err != nil {
		t.Fatal(err)
	}
	eB, _ := newRecoveryEngine(t)
	instsB, err := RecoverAllFromCheckpoint(eB, nil, merged, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(instsA) != len(instsB) {
		t.Fatalf("recovered %d vs %d", len(instsA), len(instsB))
	}
	snapA := snapshotsByID(instsA)
	for id, got := range snapshotsByID(instsB) {
		if !got.Equal(snapA[id]) {
			t.Fatalf("%s diverges", id)
		}
	}
}

// TestCheckpointerRetention drives instances through a segmented log with
// synchronous checkpoint passes and verifies the retention rules: at most
// two checkpoints on disk, segments covered by the older one deleted, and
// ladder recovery (newest checkpoint + tail) reproducing the crash-free
// state while replaying far fewer records than the full history.
func TestCheckpointerRetention(t *testing.T) {
	dir := t.TempDir()
	slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(4))
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(slog, CheckpointEveryRecords(4))

	e, _ := newRecoveryEngine(t)
	for i := 0; i < 5; i++ {
		inst, err := e.CreateInstance("Rec", nil, slog)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); err != nil {
			t.Fatal(err)
		}
		if err := ck.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	// Crash a final instance mid-flight.
	fl := wal.NewSegmentedFaultLog(slog, 3, true)
	crashInst, err := e.CreateInstance("Rec", nil, fl)
	if err != nil {
		t.Fatal(err)
	}
	if err := crashInst.Start(); !errors.Is(err, wal.ErrCrash) {
		t.Fatalf("want crash, got %v", err)
	}
	if err := slog.Close(); err != nil {
		t.Fatal(err)
	}

	cps, err := wal.ListCheckpoints(dir)
	if err != nil || len(cps) == 0 || len(cps) > 2 {
		t.Fatalf("checkpoints on disk: %v err=%v", cps, err)
	}
	older, err := wal.ReadCheckpoint(cps[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 2 {
		for _, s := range segs {
			if s.Index <= older.Cover {
				t.Fatalf("segment %d covered by checkpoint %d not pruned", s.Index, older.Seq)
			}
		}
	}

	cp, err := wal.LoadCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatalf("load: %v", err)
	}
	tail, _, err := wal.RepairSegments(dir, cp.Cover)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := newRecoveryEngine(t)
	insts, err := RecoverAllFromCheckpoint(e2, cp, tail, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every instance is accounted for: finished ones either in Done (their
	// RecDone fell inside the covered prefix) or recovered to completion
	// from snapshot + tail; the crashed one is re-seeded and finishes with
	// the baseline trail.
	if len(insts)+len(cp.Done) != 6 {
		t.Fatalf("recovered %d + done %d != 6 (done=%v)", len(insts), len(cp.Done), cp.Done)
	}
	if len(cp.Done) < 3 {
		t.Fatalf("checkpoint retained too much: done=%v", cp.Done)
	}
	want := baselineTrail(t)
	foundCrashed := false
	for _, inst := range insts {
		if !inst.Finished() {
			t.Fatalf("recovered instance %s did not finish", inst.ID())
		}
		if inst.ID() == crashInst.ID() {
			foundCrashed = true
			if fmt.Sprint(trailStrings(inst)) != fmt.Sprint(want) {
				t.Fatalf("trail diverges:\ngot:  %v\nwant: %v", trailStrings(inst), want)
			}
		}
	}
	if !foundCrashed {
		t.Fatal("crashed instance not recovered")
	}
	replayed := len(cp.Records) + len(tail)
	full := 6 * 11 // six instances, eleven records each in a clean history
	if replayed*2 > full {
		t.Fatalf("checkpointed recovery replayed %d records; full history is ~%d", replayed, full)
	}
}

// TestCheckpointerBackground smoke-tests the Start/Stop loop against a
// group-committed fleet log: appenders never stall, and Stop leaves a
// checkpoint covering everything sealed.
func TestCheckpointerBackground(t *testing.T) {
	dir := t.TempDir()
	slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(8))
	if err != nil {
		t.Fatal(err)
	}
	gl := wal.NewGroupCommitSegmented(slog)
	ck := NewCheckpointer(slog, CheckpointInterval(time.Millisecond), CheckpointEveryRecords(8))
	ck.Start()

	e, _ := newRecoveryEngine(t)
	res, err := e.RunFleet(FleetOptions{Process: "Rec", N: 12, Parallel: 4, Log: gl})
	if err != nil || res.Err != nil || res.Finished != 12 {
		t.Fatalf("fleet: %+v (%v)", res, err)
	}
	if err := ck.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := gl.Close(); err != nil {
		t.Fatal(err)
	}
	cp, err := wal.LoadCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatalf("no checkpoint after Stop: %v", err)
	}
	tail, _, err := wal.RepairSegments(dir, cp.Cover)
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := newRecoveryEngine(t)
	insts, err := RecoverAllFromCheckpoint(e2, cp, tail, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts)+len(cp.Done) != 12 {
		t.Fatalf("recovered %d + done %d != 12", len(insts), len(cp.Done))
	}
	for _, inst := range insts {
		if !inst.Finished() {
			t.Fatalf("instance %s not finished after recovery", inst.ID())
		}
	}
}

// TestCheckpointRotationBoundary is the sealed-segment off-by-one audit:
// when rotations land between (and during) checkpoint passes, every sealed
// segment must be folded into exactly one checkpoint — records neither
// lost at the cover boundary nor folded twice — and segment retention must
// keep exactly the previous checkpoint's tail, deleting the segment whose
// index equals prev.Cover but never prev.Cover+1. Records are distinct
// finished activities so Compact keeps all of them and any duplicate or
// gap is visible in the checkpoint's record list.
func TestCheckpointRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	slog, err := wal.OpenSegmentedLog(dir, wal.SegmentMaxRecords(3))
	if err != nil {
		t.Fatal(err)
	}
	ck := NewCheckpointer(slog, CheckpointEveryRecords(2))

	next := 0
	appendN := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			rec := wal.Record{Type: wal.RecFinishedActivity, Instance: "x",
				Path: fmt.Sprintf("A%03d", next), Iter: 0}
			if next == 0 {
				rec = wal.Record{Type: wal.RecCreated, Instance: "x", Process: "P"}
			}
			if err := slog.Append(rec); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	// wantRecords checks cp holds the created record plus every finished
	// activity with index < n, each exactly once, in causal order.
	wantRecords := func(cp *wal.Checkpoint, n int) {
		t.Helper()
		if len(cp.Records) != n {
			t.Fatalf("seq %d: %d records folded, want %d (lost or double-folded at cover %d)",
				cp.Seq, len(cp.Records), n, cp.Cover)
		}
		for i, r := range cp.Records {
			want := fmt.Sprintf("A%03d", i)
			if i == 0 {
				if r.Type != wal.RecCreated {
					t.Fatalf("seq %d: record 0 is %+v, want created", cp.Seq, r)
				}
				continue
			}
			if r.Type != wal.RecFinishedActivity || r.Path != want {
				t.Fatalf("seq %d: record %d is %s/%s, want %s", cp.Seq, i, r.Type, r.Path, want)
			}
		}
	}

	// Pass 1: 5 appends → segment 1 auto-seals at 3 records, active holds
	// 2; the record trigger rotates mid-pass, so the pass folds BOTH a
	// previously sealed segment and one sealed by its own rotation.
	appendN(5)
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	cp, err := wal.LoadCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatalf("load after pass 1: %v", err)
	}
	wantRecords(cp, 5)
	sealedMax := 0
	for _, s := range slog.SealedSegments() {
		if s.Index > sealedMax {
			sealedMax = s.Index
		}
	}
	if cp.Cover != sealedMax {
		t.Fatalf("pass 1: cover %d, sealed max %d", cp.Cover, sealedMax)
	}
	cover1 := cp.Cover

	// A pass with one active record and nothing newly sealed must write
	// nothing (no empty-fold checkpoint advancing Cover past real data).
	appendN(1)
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	if cps, _ := wal.ListCheckpoints(dir); len(cps) != 1 {
		t.Fatalf("idle pass wrote a checkpoint: %v", cps)
	}

	// Pass 2: another record arms the rotate trigger; the new checkpoint
	// chains from cp1 and must fold exactly the segments in (cover1, new].
	appendN(1)
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	cp, err = wal.LoadCheckpoint(dir)
	if err != nil || cp == nil || cp.Seq != 2 {
		t.Fatalf("load after pass 2: %+v err=%v", cp, err)
	}
	wantRecords(cp, 7)
	if cp.Cover <= cover1 {
		t.Fatalf("pass 2: cover did not advance (%d -> %d)", cover1, cp.Cover)
	}

	// Pass 3 triggers pruning (two checkpoints already on disk). Segments
	// with index <= cp2.Cover are redundant for both retained rungs;
	// index == cp2.Cover+1 is cp2's tail and must survive.
	cover2 := cp.Cover
	appendN(2)
	if err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	cps, err := wal.ListCheckpoints(dir)
	if err != nil || len(cps) != 2 {
		t.Fatalf("retention: %v err=%v", cps, err)
	}
	if cps[0].Seq != 2 || cps[1].Seq != 3 {
		t.Fatalf("retained wrong checkpoints: %+v", cps)
	}
	segs, err := wal.ListSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Index <= cover2 {
			t.Fatalf("segment %d (<= prev cover %d) survived pruning", s.Index, cover2)
		}
	}
	minLeft := segs[0].Index
	for _, s := range segs {
		if s.Index < minLeft {
			minLeft = s.Index
		}
	}
	if minLeft != cover2+1 {
		t.Fatalf("previous checkpoint's tail pruned: oldest segment %d, want %d", minLeft, cover2+1)
	}

	// The ladder still works end to end: newest checkpoint + repaired tail
	// reads back every record exactly once.
	if err := slog.Close(); err != nil {
		t.Fatal(err)
	}
	cp, err = wal.LoadCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatal(err)
	}
	tail, _, err := wal.RepairSegments(dir, cp.Cover)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]int)
	for _, r := range append(append([]wal.Record{}, cp.Records...), tail...) {
		key := string(r.Type) + "/" + r.Path
		seen[key]++
	}
	if len(seen) != next {
		t.Fatalf("checkpoint+tail hold %d distinct records, want %d", len(seen), next)
	}
	for key, n := range seen {
		if n != 1 {
			t.Fatalf("record %s appears %d times across checkpoint+tail", key, n)
		}
	}
}
