package engine

import (
	"errors"
	"fmt"
)

// This file implements the engine's failure semantics: the paper's §3.3
// forward-recovery guarantee only holds if a misbehaving application
// program cannot take the workflow server down with it. Program
// invocations are therefore isolated — a panic, an error return or a
// missed deadline fails the *activity* (and, after the retry budget is
// exhausted, the *instance*, with a recorded cause), never the process or
// sibling instances.

// ErrDeadlineExceeded reports that a program invocation did not return
// within its activity's DeadlineMS. It is classified as transient: a hung
// external application may well answer on a later attempt, so the
// activity's retry policy applies.
var ErrDeadlineExceeded = errors.New("engine: program deadline exceeded")

// transientError marks an error as transient (retriable).
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps an error to classify it as a transient infrastructure
// failure: the engine may re-invoke the program under the activity's
// RetryPolicy. Errors not wrapped this way (and panics) are fatal — the
// activity fails immediately. Returns nil for a nil error.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether the error is classified transient: wrapped
// with Transient, or a deadline miss.
func IsTransient(err error) bool {
	if errors.Is(err, ErrDeadlineExceeded) {
		return true
	}
	var t *transientError
	return errors.As(err, &t)
}

// PanicError is the recorded cause when a program panics; the panic is
// confined to the invocation.
type PanicError struct {
	Value any    // the recovered panic value
	Stack string // goroutine stack at the panic site
}

// Error implements error.
func (p *PanicError) Error() string { return fmt.Sprintf("program panicked: %v", p.Value) }

// ActivityFailure is the recorded cause of a failed instance: the program
// activity that could not complete, how often it was attempted, and the
// final error. Instance.Err returns it (wrapped errors remain inspectable
// with errors.Is/As) and Engine.Instances surfaces its message as the
// instance's failure cause.
type ActivityFailure struct {
	Path     string // activity path within the instance
	Program  string // registered program name
	Iter     int    // exit-condition iteration
	Attempts int    // invocation attempts made (>= 1)
	Cause    error  // last attempt's error
}

// Error implements error.
func (f *ActivityFailure) Error() string {
	if f.Attempts > 1 {
		return fmt.Sprintf("engine: program %q at %s failed after %d attempts: %v",
			f.Program, f.Path, f.Attempts, f.Cause)
	}
	return fmt.Sprintf("engine: program %q at %s: %v", f.Program, f.Path, f.Cause)
}

// Unwrap exposes the underlying cause.
func (f *ActivityFailure) Unwrap() error { return f.Cause }
