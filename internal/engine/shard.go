package engine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/wal"
)

// ErrFleetStopped is returned by Fleet.Submit when the fleet's Stop
// channel closed while the submission was waiting for admission: the
// fleet is draining gracefully and admits no new work.
var ErrFleetStopped = errors.New("engine: fleet stopped, admission closed")

// ShardFor places an instance ID on one of shards buckets using jump
// consistent hashing (Lamping & Veach, "A Fast, Minimal Memory,
// Consistent Hash Algorithm") over an FNV-1a 64 digest of the ID. Jump
// hashing gives placement the property the fleet's resharding story
// depends on: growing the shard count from N to N+1 moves only
// ~1/(N+1) of the instances, and every instance that moves lands on the
// new shard — nothing shuffles between existing shards (verified by the
// placement property test).
func ShardFor(instanceID string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(instanceID))
	return jumpHash(h.Sum64(), shards)
}

// jumpHash is the Lamping–Veach jump consistent hash: stateless,
// O(ln buckets), minimal key movement as buckets grows.
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ShardDirName is the on-disk subdirectory of shard i within a fleet
// root: "shard-00", "shard-01", ... Recovery discovers shards by this
// naming (ShardDirs).
func ShardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// ShardDirs lists the shard-NN subdirectories of a fleet root in shard
// order. An empty result with a nil error means root holds no shard
// layout.
func ShardDirs(root string) ([]string, error) {
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("engine: reading fleet root: %w", err)
	}
	var dirs []string
	for _, ent := range ents {
		var i int
		if !ent.IsDir() {
			continue
		}
		if n, err := fmt.Sscanf(ent.Name(), "shard-%02d", &i); n != 1 || err != nil {
			continue
		}
		dirs = append(dirs, filepath.Join(root, ent.Name()))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// FleetConfig configures a sharded Fleet (NewFleet).
type FleetConfig struct {
	// Shards is the number of engine shards (>= 1).
	Shards int
	// Dir is the fleet root directory; shard i owns Dir/shard-NN with its
	// own segmented WAL and checkpoints. Empty runs every shard on an
	// in-memory log — no durability, no checkpointing; benchmarks and
	// tests only.
	Dir string
	// Parallel bounds concurrent instances per shard (default 1). Total
	// fleet concurrency is Shards*Parallel: adding a shard adds workers
	// and a WAL, which is the scaling claim B14 measures.
	Parallel int
	// MaxQueue bounds each shard's admission queue beyond its Parallel
	// worker slots (0 = no queue).
	MaxQueue int
	// HotQueue is the per-shard in-flight depth (queued + active) at
	// which the shard counts as hot and new arrivals spill to the
	// least-loaded peer before its queue is even full. 0 disables the
	// proactive spill; overflow rebalancing on a full queue still applies
	// unless NoRebalance is set.
	HotQueue int
	// Shed enables load shedding: when the home shard and every rebalance
	// target are full, Submit rejects with ErrOverloaded instead of
	// blocking. The shed instance is never created and leaves no WAL
	// record.
	Shed bool
	// NoRebalance pins every instance to its consistent-hash home shard;
	// a full home shard then blocks (or sheds) rather than spilling to a
	// peer.
	NoRebalance bool
	// GroupCommit layers a GroupCommitLog over each shard's segmented log
	// so concurrent appenders within the shard share fsyncs. Requires Dir.
	GroupCommit bool
	// Fsync makes each shard's log durable: per-record fsync on the
	// segmented log, or batch-level fsync when GroupCommit is set.
	Fsync bool
	// Format selects the record framing for new shard segments
	// (wal.FormatText default).
	Format wal.Format
	// SegmentMaxRecords rotates a shard's active segment after n records
	// (0 = the wal package default).
	SegmentMaxRecords int
	// CheckpointEveryRecords starts a background Checkpointer per shard
	// that checkpoints after every n appended records (0 = no
	// checkpointer). Requires Dir.
	CheckpointEveryRecords int
	// ArchiveDir enables the archive tier: each shard's sealed segments
	// and checkpoints archive asynchronously to a wal.DirStore under
	// ArchiveDir/shard-NN, and local pruning becomes archive-gated.
	// Requires CheckpointEveryRecords (the Checkpointer owns the
	// archiver's enqueue points).
	ArchiveDir string
	// ArchiveStore, when non-nil, overrides the store each shard archives
	// to — the archive fault-injection seam (E12 wraps a FaultStore per
	// shard this way). Takes precedence over ArchiveDir.
	ArchiveStore func(shard int) wal.Store
	// ArchiveOpts supplies extra Archiver options per shard (timeouts,
	// backoff, breaker thresholds; soaks pin seeds here).
	ArchiveOpts func(shard int) []wal.ArchiverOption
	// GroupOpts, when non-nil, supplies extra GroupCommitLog options for
	// a shard — the fault-injection seam (the E11 soak crashes one
	// shard's group commit with wal.GroupCrashAfter this way).
	GroupOpts func(shard int) []wal.GroupOption
	// WrapLog, when non-nil, wraps the log a shard's instances append to
	// — the observation seam (soaks interpose ack-tracking here). The
	// wrapper sees the shard's outermost log (group commit when enabled).
	WrapLog func(shard int, log wal.Log) wal.Log
	// Stop, when non-nil, is a graceful-drain signal: once closed, Submit
	// admits no new instances (ErrFleetStopped) and Run returns after
	// in-flight instances complete.
	Stop <-chan struct{}
}

// Shard is one engine shard of a Fleet: a bounded scheduler plus a
// private WAL (and optional Checkpointer) under its own shard-NN
// directory. Instances placed on a shard execute on its workers and
// append only to its log, so each shard directory is a self-contained
// recovery unit — RecoverFleet replays them independently.
type Shard struct {
	// ID is the shard index (0-based); its directory is ShardDirName(ID).
	ID int

	sched *Scheduler
	slog  *wal.SegmentedLog
	glog  *wal.GroupCommitLog
	log   wal.Log // outermost log instances append to (after WrapLog)
	ckpt  *Checkpointer
	arch  *wal.Archiver

	queue  *obs.Gauge // engine.shard.NN.queue.depth
	active *obs.Gauge // engine.shard.NN.active

	inflight atomic.Int64 // admitted (queued + active)
	placed   atomic.Int64
	finished atomic.Int64
	failed   atomic.Int64
}

// Log exposes the log instances of this shard append to (nil only
// before the fleet finished construction).
func (sh *Shard) Log() wal.Log { return sh.log }

// Archiver exposes the shard's archive uploader (nil when the fleet has
// no archive tier) — monitoring and tests drain or inspect it here.
func (sh *Shard) Archiver() *wal.Archiver { return sh.arch }

// Fleet partitions process instances across N engine shards by
// consistent-hash placement on instance ID (ShardFor). Each shard owns
// its own segmented WAL, optional group commit and Checkpointer, and a
// bounded admission queue, removing the single-scheduler/single-WAL
// throughput ceiling: shards share nothing on the append path, so
// records/sec scales with shard count (the B14 table gates near-linear
// scaling to 4 shards). When a shard's queue runs hot, admission
// rebalances new arrivals to the least-loaded peer *before* the
// instance is created, so every instance's records still land wholly
// inside one shard directory and per-shard recovery stays exact.
//
// A Fleet is one-shot like the Scheduler underneath: Submit until done,
// then Drain (or use Run), then Close.
type Fleet struct {
	e   *Engine
	cfg FleetConfig

	shards     []*Shard
	rebalanced atomic.Int64
	shed       atomic.Int64
	closed     bool
}

// NewFleet builds a sharded fleet over e. With cfg.Dir set, each shard
// opens (or reopens) its segmented log and checkpoint directory under
// Dir/shard-NN; Close releases them.
func NewFleet(e *Engine, cfg FleetConfig) (*Fleet, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("engine: fleet shards %d, want >= 1", cfg.Shards)
	}
	if cfg.Parallel < 1 {
		cfg.Parallel = 1
	}
	if cfg.Dir == "" && (cfg.GroupCommit || cfg.Fsync || cfg.CheckpointEveryRecords > 0) {
		return nil, errors.New("engine: fleet durability options require a directory")
	}
	if (cfg.ArchiveDir != "" || cfg.ArchiveStore != nil) && cfg.CheckpointEveryRecords <= 0 {
		return nil, errors.New("engine: fleet archive tier requires CheckpointEveryRecords")
	}
	f := &Fleet{e: e, cfg: cfg}
	reg := e.Metrics()
	for i := 0; i < cfg.Shards; i++ {
		sh := &Shard{
			ID:     i,
			sched:  NewBoundedScheduler(cfg.Parallel, cfg.MaxQueue),
			queue:  reg.Gauge(fmt.Sprintf("engine.shard.%02d.queue.depth", i)),
			active: reg.Gauge(fmt.Sprintf("engine.shard.%02d.active", i)),
		}
		if cfg.Dir != "" {
			dir := filepath.Join(cfg.Dir, ShardDirName(i))
			if err := os.MkdirAll(dir, 0o755); err != nil {
				f.Close()
				return nil, fmt.Errorf("engine: shard %d dir: %w", i, err)
			}
			sopts := []wal.SegmentOption{wal.SegmentFormat(cfg.Format)}
			if cfg.SegmentMaxRecords > 0 {
				sopts = append(sopts, wal.SegmentMaxRecords(cfg.SegmentMaxRecords))
			}
			if cfg.Fsync && !cfg.GroupCommit {
				sopts = append(sopts, wal.SegmentFsync())
			}
			slog, err := wal.OpenSegmentedLog(dir, sopts...)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("engine: shard %d log: %w", i, err)
			}
			sh.slog = slog
			sh.log = slog
			if cfg.GroupCommit {
				var gopts []wal.GroupOption
				if cfg.GroupOpts != nil {
					gopts = cfg.GroupOpts(i)
				}
				sh.glog = wal.NewGroupCommitSegmented(slog, gopts...)
				sh.log = sh.glog
			}
			if cfg.CheckpointEveryRecords > 0 {
				copts := []CheckpointerOption{
					CheckpointDir(dir),
					CheckpointEveryRecords(cfg.CheckpointEveryRecords),
				}
				if cfg.ArchiveStore != nil || cfg.ArchiveDir != "" {
					store := wal.Store(nil)
					if cfg.ArchiveStore != nil {
						store = cfg.ArchiveStore(i)
					} else {
						ds, err := wal.NewDirStore(filepath.Join(cfg.ArchiveDir, ShardDirName(i)))
						if err != nil {
							f.Close()
							return nil, fmt.Errorf("engine: shard %d archive: %w", i, err)
						}
						store = ds
					}
					var aopts []wal.ArchiverOption
					if cfg.ArchiveOpts != nil {
						aopts = cfg.ArchiveOpts(i)
					}
					sh.arch = wal.NewArchiver(store, aopts...)
					sh.arch.Start()
					copts = append(copts, CheckpointArchive(sh.arch))
				}
				sh.ckpt = NewCheckpointer(slog, copts...)
				sh.ckpt.Start()
			}
		} else {
			sh.log = &wal.MemLog{}
		}
		if cfg.WrapLog != nil {
			sh.log = cfg.WrapLog(i, sh.log)
		}
		f.shards = append(f.shards, sh)
	}
	return f, nil
}

// Shards exposes the fleet's shards in index order (monitoring and
// tests; do not submit to a shard's scheduler directly).
func (f *Fleet) Shards() []*Shard { return f.shards }

// hot reports whether sh's in-flight depth has crossed the proactive
// spill threshold.
func (f *Fleet) hot(sh *Shard) bool {
	return f.cfg.HotQueue > 0 && sh.inflight.Load() >= int64(f.cfg.HotQueue)
}

// byLoad returns the fleet's shards except home, least loaded first —
// the rebalance candidate order.
func (f *Fleet) byLoad(home *Shard) []*Shard {
	out := make([]*Shard, 0, len(f.shards)-1)
	for _, sh := range f.shards {
		if sh != home {
			out = append(out, sh)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].inflight.Load() < out[j].inflight.Load()
	})
	return out
}

// place reserves an admission slot for a new instance: on the home
// shard when it is cool, otherwise on the least-loaded peer that will
// admit (rebalance), degrading to shed or blocking per the config. The
// returned shard holds one admission reservation.
func (f *Fleet) place(id string) (*Shard, error) {
	home := f.shards[ShardFor(id, len(f.shards))]
	rebalance := !f.cfg.NoRebalance && len(f.shards) > 1

	// Proactive spill: a hot home shard loses new arrivals to a strictly
	// cooler peer even though its queue could still admit them.
	if rebalance && f.hot(home) {
		for _, sh := range f.byLoad(home) {
			if sh.inflight.Load() < home.inflight.Load() && sh.sched.TryAdmit() {
				f.noteRebalance(id, home, sh)
				return sh, nil
			}
			break // only the least-loaded peer is a spill candidate
		}
	}
	if home.sched.TryAdmit() {
		return home, nil
	}
	// Overflow rebalance: the home queue is full; try peers least loaded
	// first.
	if rebalance {
		for _, sh := range f.byLoad(home) {
			if sh.sched.TryAdmit() {
				f.noteRebalance(id, home, sh)
				return sh, nil
			}
		}
	}
	if f.cfg.Shed {
		n := f.shed.Add(1)
		f.e.metrics.fleetShed.Inc()
		if f.e.bus.Active() {
			f.e.bus.Publish(obs.Event{Kind: obs.EvShardShed, Shard: home.ID, N: n})
		}
		return nil, ErrOverloaded
	}
	if f.cfg.Stop != nil {
		if !home.sched.AdmitStop(f.cfg.Stop) {
			return nil, ErrFleetStopped
		}
		return home, nil
	}
	home.sched.Admit()
	return home, nil
}

func (f *Fleet) noteRebalance(id string, home, target *Shard) {
	f.rebalanced.Add(1)
	f.e.metrics.fleetRebalanced.Inc()
	if f.e.bus.Active() {
		f.e.bus.Publish(obs.Event{Kind: obs.EvShardRebalance, Instance: id,
			Shard: target.ID, N: int64(home.ID)})
	}
}

// Submit places one instance of process on a shard and schedules it,
// returning the created instance immediately — execution is
// asynchronous; Drain (or Run) waits for completion. Placement is the
// consistent-hash home shard unless it runs hot or full, in which case
// the instance rebalances to the least-loaded admitting peer (counted
// in Stats and published as a shard.rebalance event). With Shed,
// ErrOverloaded is returned when every shard is full; otherwise Submit
// blocks on the home shard (backpressure). done, when non-nil, runs on
// the shard worker after the instance completes; its error is nil only
// for normal completion.
func (f *Fleet) Submit(process string, input map[string]expr.Value, done func(*Instance, error)) (*Instance, error) {
	if f.cfg.Stop != nil {
		select {
		case <-f.cfg.Stop:
			return nil, ErrFleetStopped
		default:
		}
	}
	id := f.e.NewInstanceID()
	sh, err := f.place(id)
	if err != nil {
		return nil, err
	}
	inst, err := f.e.CreateInstanceID(process, id, input, sh.log)
	if err != nil {
		sh.sched.Unadmit()
		return nil, err
	}
	sh.inflight.Add(1)
	sh.placed.Add(1)
	sh.queue.Add(1)
	f.e.metrics.fleetQueue.Add(1)
	if f.e.bus.Active() {
		f.e.bus.Publish(obs.Event{Kind: obs.EvShardEnqueue, Instance: inst.ID(),
			Shard: sh.ID, N: sh.queue.Value()})
	}
	sh.sched.Go(func() {
		sh.queue.Add(-1)
		sh.active.Add(1)
		f.e.metrics.fleetQueue.Add(-1)
		f.e.metrics.fleetActive.Add(1)
		if f.e.bus.Active() {
			f.e.bus.Publish(obs.Event{Kind: obs.EvShardActive, Instance: inst.ID(),
				Shard: sh.ID, N: sh.active.Value()})
		}
		defer func() {
			sh.active.Add(-1)
			sh.inflight.Add(-1)
			f.e.metrics.fleetActive.Add(-1)
			if f.e.bus.Active() {
				f.e.bus.Publish(obs.Event{Kind: obs.EvShardDone, Instance: inst.ID(),
					Shard: sh.ID, N: sh.active.Value()})
			}
		}()
		err := inst.Start()
		if err == nil && !inst.Finished() {
			if err = inst.Err(); err == nil {
				status, cause := inst.StatusInfo()
				err = fmt.Errorf("engine: instance %s ended %s (%s)", inst.ID(), status, cause)
			}
		}
		if err == nil {
			sh.finished.Add(1)
		} else {
			sh.failed.Add(1)
		}
		if done != nil {
			done(inst, err)
		}
	})
	return inst, nil
}

// Run executes n instances of process through the sharded fleet and
// blocks until it drains — the sharded counterpart of RunFleet,
// aggregated into the same FleetResult shape. input, when non-nil,
// supplies the i-th instance's input container values.
func (f *Fleet) Run(process string, n int, input func(i int) map[string]expr.Value) (*FleetResult, error) {
	if _, ok := f.e.Process(process); !ok {
		return nil, fmt.Errorf("engine: unknown process %q", process)
	}
	if n < 1 {
		return nil, fmt.Errorf("engine: fleet size %d, want >= 1", n)
	}
	res := &FleetResult{Instances: make([]*Instance, 0, n)}
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < n; i++ {
		var in map[string]expr.Value
		if input != nil {
			in = input(i)
		}
		inst, err := f.Submit(process, in, func(_ *Instance, err error) {
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				res.Finished++
				return
			}
			res.Failed++
			if res.Err == nil {
				res.Err = err
			}
		})
		switch {
		case errors.Is(err, ErrOverloaded):
			res.Shed++
			continue
		case errors.Is(err, ErrFleetStopped):
			res.Stopped = true
		case err != nil:
			mu.Lock()
			res.Failed++
			if res.Err == nil {
				res.Err = err
			}
			mu.Unlock()
			continue
		}
		if res.Stopped {
			break
		}
		res.Launched++
		res.Instances = append(res.Instances, inst)
	}
	f.Drain()
	res.Elapsed = time.Since(start)
	return res, nil
}

// Drain blocks until every submitted instance has finished executing.
func (f *Fleet) Drain() {
	for _, sh := range f.shards {
		sh.sched.Wait()
	}
}

// Close stops every shard's Checkpointer and closes its logs (group
// commit first, then the segmented log underneath), returning the first
// error. Idempotent.
func (f *Fleet) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	var first error
	for _, sh := range f.shards {
		if sh == nil {
			continue
		}
		if sh.ckpt != nil {
			sh.ckpt.Stop()
		}
		if sh.arch != nil {
			// Stop after the checkpointer's final pass so its last
			// checkpoint is enqueued; whatever has not uploaded yet is
			// still on local disk (pruning is verification-gated), so a
			// non-empty queue at shutdown loses nothing.
			sh.arch.Stop()
		}
		if sh.glog != nil {
			if err := sh.glog.Close(); err != nil && first == nil {
				first = err
			}
		} else if sh.slog != nil {
			if err := sh.slog.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// ShardStats is a monitoring snapshot of one shard.
type ShardStats struct {
	ID       int
	Placed   int64 // instances created against this shard's log
	Queued   int64 // admitted, waiting for a worker
	Active   int64 // executing now
	Finished int64
	Failed   int64
}

// FleetStats is a point-in-time snapshot of a Fleet.
type FleetStats struct {
	Shards     []ShardStats
	Rebalanced int64 // instances spilled off their home shard
	Shed       int64 // instances rejected with every shard full
}

// Stats snapshots the fleet (safe while instances are running).
func (f *Fleet) Stats() FleetStats {
	st := FleetStats{Rebalanced: f.rebalanced.Load(), Shed: f.shed.Load()}
	for _, sh := range f.shards {
		st.Shards = append(st.Shards, ShardStats{
			ID:       sh.ID,
			Placed:   sh.placed.Load(),
			Queued:   sh.queue.Value(),
			Active:   sh.active.Value(),
			Finished: sh.finished.Load(),
			Failed:   sh.failed.Load(),
		})
	}
	return st
}

// RecoverFleet recovers every instance of a sharded fleet from its root
// directory. Each shard-NN subdirectory is an independent recovery unit
// — placement happens before instance creation, so an instance's
// records live wholly inside one shard — and recovery walks the shards
// in index order, climbing the same ladder per shard as single-log
// recovery: newest readable checkpoint (none → full replay),
// RepairSegments over the tail, RecoverAllFromCheckpoint. The
// concatenation reproduces exactly what RecoverAll over one shared log
// would have produced, modulo instance order across shards (shard
// index, then first appearance within the shard).
//
// newLog, when non-nil, supplies the fresh log each recovered instance
// writes. Recovery stops at the first shard that fails, returning the
// instances recovered so far alongside the error.
func RecoverFleet(e *Engine, root string, newLog func(instanceID string) wal.Log) ([]*Instance, error) {
	insts, _, err := RecoverFleetStore(e, root, nil, newLog)
	return insts, err
}

// RecoverFleetStore is RecoverFleet with the archive rung: store, when
// non-nil, supplies each shard's archive backend (keyed by the shard
// directory's base name, e.g. "shard-00"), and the per-shard ladder
// extends to fetching a checkpoint or sealed segment from the archive
// when the local copy is missing or damaged — every fetched blob is
// CRC-verified, and a miss or corrupt blob falls through to the next
// rung exactly like local damage. The returned map reports, per shard
// directory, which ladder rung satisfied that shard's checkpoint load
// (wal.SourceNewestCheckpoint … wal.SourceFullReplay) — wfrun -resume
// surfaces it in its summary line.
func RecoverFleetStore(e *Engine, root string, store func(shardDir string) wal.Store, newLog func(instanceID string) wal.Log) ([]*Instance, map[string]string, error) {
	dirs, err := ShardDirs(root)
	if err != nil {
		return nil, nil, err
	}
	if len(dirs) == 0 {
		return nil, nil, fmt.Errorf("engine: no shard-NN directories under %s", root)
	}
	rungs := make(map[string]string, len(dirs))
	var out []*Instance
	for _, dir := range dirs {
		var st wal.Store
		if store != nil {
			st = store(filepath.Base(dir))
		}
		cp, src, err := wal.LoadCheckpointStore(dir, st)
		if err != nil {
			return out, rungs, fmt.Errorf("engine: shard %s checkpoint: %w", dir, err)
		}
		rungs[filepath.Base(dir)] = src
		cover := 0
		if cp != nil {
			cover = cp.Cover
		}
		tail, _, err := wal.RepairSegmentsStore(dir, cover, st)
		if err != nil {
			return out, rungs, fmt.Errorf("engine: shard %s repair: %w", dir, err)
		}
		insts, err := RecoverAllFromCheckpoint(e, cp, tail, newLog)
		out = append(out, insts...)
		if err != nil {
			return out, rungs, fmt.Errorf("engine: recovering shard %s: %w", dir, err)
		}
	}
	return out, rungs, nil
}
