package engine

import "fmt"

// EventKind classifies audit-trail events.
type EventKind uint8

// The audit trail event kinds.
const (
	EvCreated EventKind = iota + 1
	EvReady
	EvStarted
	EvFinished
	EvLooped // exit condition false, activity rescheduled
	EvTerminated
	EvDeadPath // terminated by dead path elimination
	EvConnector
	EvWorkPosted
	EvWorkSelected
	EvForced   // a user forced the activity to finish without running it
	EvCanceled // the instance was canceled by a user
	EvFailed   // a program activity failed fatally; Cause records why
	EvDone
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvCreated:
		return "created"
	case EvReady:
		return "ready"
	case EvStarted:
		return "started"
	case EvFinished:
		return "finished"
	case EvLooped:
		return "looped"
	case EvTerminated:
		return "terminated"
	case EvDeadPath:
		return "dead-path"
	case EvConnector:
		return "connector"
	case EvWorkPosted:
		return "work-posted"
	case EvWorkSelected:
		return "work-selected"
	case EvForced:
		return "forced"
	case EvCanceled:
		return "canceled"
	case EvFailed:
		return "failed"
	case EvDone:
		return "done"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry of an instance's audit trail — the §3.3 monitoring
// and audit capability. The trail doubles as the observable history the
// experiments check against the paper's appendix traces.
type Event struct {
	Kind    EventKind
	Path    string // activity path ("" for instance-level events)
	Iter    int
	Program string // program name for Started/Finished on program activities
	RC      int64  // return code for Finished
	From    string // connector source (EvConnector)
	To      string // connector target (EvConnector)
	Value   bool   // connector truth value (EvConnector)
	Cause   string // failure cause message (EvFailed)
	// At is the engine clock (seconds) when the event was recorded; with
	// the default clock it is wall time, tests inject logical clocks. The
	// accounting package derives activity and instance durations from it.
	At int64
}

// String renders the event compactly, e.g. "finished Forward#0/T2 rc=0".
func (ev Event) String() string {
	switch ev.Kind {
	case EvConnector:
		return fmt.Sprintf("connector %s -> %s = %v", ev.From, ev.To, ev.Value)
	case EvFinished:
		return fmt.Sprintf("finished %s#%d rc=%d", ev.Path, ev.Iter, ev.RC)
	case EvFailed:
		return fmt.Sprintf("failed %s#%d: %s", ev.Path, ev.Iter, ev.Cause)
	case EvCreated, EvDone:
		return ev.Kind.String()
	default:
		if ev.Iter > 0 {
			return fmt.Sprintf("%s %s#%d", ev.Kind, ev.Path, ev.Iter)
		}
		return fmt.Sprintf("%s %s", ev.Kind, ev.Path)
	}
}
