package engine

import (
	"sort"

	"repro/internal/expr"
)

// ActivitySnapshot is the persistent-state view of one activity instance
// inside an InstanceSnapshot: its stored navigation state, loop iteration
// counter, and dead-path mark.
type ActivitySnapshot struct {
	Path  string
	State string
	Iter  int
	Dead  bool
}

// InstanceSnapshot captures the externally observable persistent state of
// an instance: status, activity states with their loop iteration
// counters, the root output container values, and the audit-trail
// high-water mark. It is the equality oracle of the checkpoint subsystem:
// recovery — whether by full replay or seeded from a checkpoint — must
// reproduce the snapshot a crash-free run reaches (restore is implemented
// as deterministic re-navigation over compacted records, see
// RecoverFromCheckpoint; the property tests and the E9 soak assert
// snapshot equality across every recovery path).
type InstanceSnapshot struct {
	ID      string
	Process string
	Status  string
	Cause   string
	// Output holds the root output container's values.
	Output map[string]expr.Value
	// Activities is sorted by path.
	Activities []ActivitySnapshot
	// TrailLen is the audit-trail high-water mark.
	TrailLen int
}

// Snapshot captures the instance's persistent state. Like Output and
// Trail it is a monitoring view: call it after the instance has stopped
// (finished, failed, or crashed) for a stable result.
func (inst *Instance) Snapshot() *InstanceSnapshot {
	status, cause := inst.StatusInfo()
	s := &InstanceSnapshot{
		ID:       inst.id,
		Process:  inst.proc.Name,
		Status:   status,
		Cause:    cause,
		Output:   inst.root.output.Snapshot(),
		TrailLen: len(inst.Trail()),
	}
	for _, ai := range inst.Activities() {
		s.Activities = append(s.Activities, ActivitySnapshot{
			Path: ai.Path, State: ai.State.String(), Iter: ai.Iter, Dead: ai.Dead,
		})
	}
	sort.Slice(s.Activities, func(i, j int) bool { return s.Activities[i].Path < s.Activities[j].Path })
	return s
}

// Equal reports whether two snapshots describe identical persistent
// state.
func (s *InstanceSnapshot) Equal(o *InstanceSnapshot) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.ID != o.ID || s.Process != o.Process || s.Status != o.Status ||
		s.Cause != o.Cause || s.TrailLen != o.TrailLen ||
		len(s.Output) != len(o.Output) || len(s.Activities) != len(o.Activities) {
		return false
	}
	for k, v := range s.Output {
		ov, ok := o.Output[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	for i := range s.Activities {
		if s.Activities[i] != o.Activities[i] {
			return false
		}
	}
	return true
}
