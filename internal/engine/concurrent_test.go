package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/model"
)

// fanProcess builds A -> (W1..Ww) -> Z.
func fanProcess(width int) *model.Process {
	p := model.NewProcess("Fan")
	p.Activities = append(p.Activities, &model.Activity{Name: "A", Kind: model.KindProgram, Program: "ok"})
	for i := 0; i < width; i++ {
		w := "W" + string(rune('a'+i))
		p.Activities = append(p.Activities, &model.Activity{Name: w, Kind: model.KindProgram, Program: "slow"})
		p.Control = append(p.Control,
			&model.ControlConnector{From: "A", To: w, Condition: expr.MustParse("RC = 0")},
			&model.ControlConnector{From: w, To: "Z", Condition: expr.MustParse("RC = 0")},
		)
	}
	p.Activities = append(p.Activities, &model.Activity{Name: "Z", Kind: model.KindProgram, Program: "ok"})
	return p
}

func TestConcurrentFanOut(t *testing.T) {
	const width = 6
	const delay = 20 * time.Millisecond
	var peak, cur atomic.Int32

	mkEngine := func(conc int) *Engine {
		e := New(WithConcurrency(conc))
		if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterProgram("slow", ProgramFunc(func(inv *Invocation) error {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(delay)
			cur.Add(-1)
			inv.Out.SetRC(0)
			return nil
		})); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterProcess(fanProcess(width)); err != nil {
			t.Fatal(err)
		}
		return e
	}

	// Sequential baseline.
	peak.Store(0)
	e1 := mkEngine(1)
	start := time.Now()
	inst1, err := e1.CreateInstance("Fan", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst1.Start(); err != nil {
		t.Fatal(err)
	}
	seqElapsed := time.Since(start)
	if !inst1.Finished() || peak.Load() != 1 {
		t.Fatalf("sequential run: finished=%v peak=%d", inst1.Finished(), peak.Load())
	}

	// Concurrent run: workers overlap.
	peak.Store(0)
	e2 := mkEngine(width)
	start = time.Now()
	inst2, err := e2.CreateInstance("Fan", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.Start(); err != nil {
		t.Fatal(err)
	}
	concElapsed := time.Since(start)
	if !inst2.Finished() {
		t.Fatal("concurrent run not finished")
	}
	if got := peak.Load(); got < 2 {
		t.Fatalf("no overlap observed: peak concurrency = %d", got)
	}
	// Same work done.
	if len(inst2.ProgramRuns()) != len(inst1.ProgramRuns()) {
		t.Fatalf("program runs differ: %d vs %d", len(inst2.ProgramRuns()), len(inst1.ProgramRuns()))
	}
	// Wall clock: width sequential sleeps vs overlapped ones. Allow a wide
	// margin to avoid scheduler flakes; overlap alone is the hard claim.
	if concElapsed > seqElapsed {
		t.Logf("note: concurrent (%v) not faster than sequential (%v) on this machine", concElapsed, seqElapsed)
	}
}

func TestConcurrentPoolBound(t *testing.T) {
	const width = 8
	const poolSize = 2
	var peak, cur atomic.Int32
	e := New(WithConcurrency(poolSize))
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProgram("slow", ProgramFunc(func(inv *Invocation) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		cur.Add(-1)
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(fanProcess(width)); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Fan", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	if got := peak.Load(); got > poolSize {
		t.Fatalf("pool bound violated: peak = %d > %d", got, poolSize)
	}
}

func TestConcurrentProgramErrorDrains(t *testing.T) {
	// One worker fails; the instance must fail without leaking goroutines
	// or deadlocking on in-flight completions.
	e := New(WithConcurrency(4))
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("worker exploded")
	calls := atomic.Int32{}
	if err := e.RegisterProgram("slow", ProgramFunc(func(inv *Invocation) error {
		if calls.Add(1) == 2 {
			return boom
		}
		time.Sleep(2 * time.Millisecond)
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(fanProcess(6)); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Fan", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); !errors.Is(err, boom) {
		t.Fatalf("want worker error, got %v", err)
	}
	if inst.Finished() {
		t.Fatal("failed instance reported finished")
	}
}

func TestConcurrentDeterministicOutcome(t *testing.T) {
	// Outcomes (not trail order) are deterministic: the same fan process
	// run concurrently many times always commits everything.
	e := New(WithConcurrency(4))
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProgram("slow", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(fanProcess(5)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		inst, err := e.CreateInstance("Fan", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); err != nil {
			t.Fatal(err)
		}
		if !inst.Finished() || len(inst.ProgramRuns()) != 7 {
			t.Fatalf("iteration %d: finished=%v runs=%d", i, inst.Finished(), len(inst.ProgramRuns()))
		}
		if s, _ := inst.ActivityState("Z"); s != StateTerminated {
			t.Fatal("join activity not terminated")
		}
	}
}

// TestPropertyConcurrentSameRunSet: on random DAGs, the concurrent
// scheduler executes exactly the same set of (path, program, rc) runs as
// the sequential one — only the interleaving may differ.
func TestPropertyConcurrentSameRunSet(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		runs := func(conc int) map[string]int {
			e := New(WithConcurrency(conc))
			if err := e.RegisterProgram("coin", &coinProgram{seed: seed}); err != nil {
				t.Fatal(err)
			}
			r := randFor(seed)
			proc := randomDAG(r, "Rand", 3+r.Intn(10), 0.4)
			if err := e.RegisterProcess(proc); err != nil {
				t.Fatal(err)
			}
			inst, err := e.CreateInstance("Rand", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Start(); err != nil {
				t.Fatal(err)
			}
			if !inst.Finished() {
				t.Fatalf("seed %d conc %d: stuck", seed, conc)
			}
			set := map[string]int{}
			for _, pr := range inst.ProgramRuns() {
				set[fmt.Sprintf("%s#%d:%d", pr.Path, pr.Iter, pr.RC)]++
			}
			return set
		}
		seq := runs(1)
		conc := runs(4)
		if len(seq) != len(conc) {
			t.Fatalf("seed %d: run sets differ in size: %v vs %v", seed, seq, conc)
		}
		for k, v := range seq {
			if conc[k] != v {
				t.Fatalf("seed %d: run %s count %d vs %d", seed, k, v, conc[k])
			}
		}
	}
}

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
