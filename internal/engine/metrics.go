package engine

import "repro/internal/obs"

// engineMetrics caches instrument handles so the navigation hot path pays
// one atomic add per event instead of a registry lookup. The metric names
// are part of the observable surface and documented in DESIGN.md
// ("Observability"); renaming one is a breaking change for dashboards.
type engineMetrics struct {
	reg *obs.Registry

	instCreated  *obs.Counter // engine.instances.created
	instFinished *obs.Counter // engine.instances.finished
	instFailed   *obs.Counter // engine.instances.failed
	instCanceled *obs.Counter // engine.instances.canceled

	navSteps   *obs.Counter // engine.navigation.steps
	queueDepth *obs.Gauge   // engine.queue.depth
	inflight   *obs.Gauge   // engine.inflight.workers

	invocations *obs.Counter   // engine.program.invocations
	committed   *obs.Counter   // engine.program.committed
	aborted     *obs.Counter   // engine.program.aborted
	progFailed  *obs.Counter   // engine.program.failed
	retries     *obs.Counter   // engine.program.retries
	panics      *obs.Counter   // engine.program.panics
	programNs   *obs.Histogram // engine.program.ns
	backoffNs   *obs.Histogram // engine.program.backoff_ns

	deadPaths  *obs.Counter // engine.deadpath.eliminations
	loops      *obs.Counter // engine.loops
	walAppends *obs.Counter // engine.wal.appends

	fleetQueue      *obs.Gauge   // engine.fleet.queue.depth
	fleetActive     *obs.Gauge   // engine.fleet.active
	fleetShed       *obs.Counter // engine.fleet.shed
	fleetRebalanced *obs.Counter // engine.fleet.rebalanced (hot-shard spills)

	breakerOpen    *obs.Gauge   // engine.breaker.open (breakers currently open)
	breakerTrips   *obs.Counter // engine.breaker.trips
	retryBudget    *obs.Gauge   // engine.retry.budget (tokens remaining)
	retriesForgone *obs.Counter // engine.retry.forgone (budget-exhausted retries)

	recReplayed *obs.Counter // recover.records_replayed
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		reg:             reg,
		instCreated:     reg.Counter("engine.instances.created"),
		instFinished:    reg.Counter("engine.instances.finished"),
		instFailed:      reg.Counter("engine.instances.failed"),
		instCanceled:    reg.Counter("engine.instances.canceled"),
		navSteps:        reg.Counter("engine.navigation.steps"),
		queueDepth:      reg.Gauge("engine.queue.depth"),
		inflight:        reg.Gauge("engine.inflight.workers"),
		invocations:     reg.Counter("engine.program.invocations"),
		committed:       reg.Counter("engine.program.committed"),
		aborted:         reg.Counter("engine.program.aborted"),
		progFailed:      reg.Counter("engine.program.failed"),
		retries:         reg.Counter("engine.program.retries"),
		panics:          reg.Counter("engine.program.panics"),
		programNs:       reg.Histogram("engine.program.ns"),
		backoffNs:       reg.Histogram("engine.program.backoff_ns"),
		deadPaths:       reg.Counter("engine.deadpath.eliminations"),
		loops:           reg.Counter("engine.loops"),
		walAppends:      reg.Counter("engine.wal.appends"),
		fleetQueue:      reg.Gauge("engine.fleet.queue.depth"),
		fleetActive:     reg.Gauge("engine.fleet.active"),
		fleetShed:       reg.Counter("engine.fleet.shed"),
		fleetRebalanced: reg.Counter("engine.fleet.rebalanced"),
		breakerOpen:     reg.Gauge("engine.breaker.open"),
		breakerTrips:    reg.Counter("engine.breaker.trips"),
		retryBudget:     reg.Gauge("engine.retry.budget"),
		retriesForgone:  reg.Counter("engine.retry.forgone"),
		recReplayed:     reg.Counter("recover.records_replayed"),
	}
}
