package engine

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/wal"
)

// RecoverFromCheckpoint rebuilds one instance from its checkpointed
// snapshot records plus the tail records logged after the checkpoint was
// taken. The snapshot is the instance's compacted history (wal.Compact
// semantics, produced by wal.BuildCheckpoint), so seeding is the same
// deterministic re-navigation Recover performs — logged completions are
// consumed from the replay map without re-invoking programs, and only
// half-executed activities re-run — but over O(live) records instead of
// the full history. Compensation ordering is preserved across the
// snapshot boundary because the compacted records retain every completed
// iteration's output in causal order.
func RecoverFromCheckpoint(e *Engine, snapshot, tail []wal.Record, newLog wal.Log) (*Instance, error) {
	recs := make([]wal.Record, 0, len(snapshot)+len(tail))
	recs = append(recs, snapshot...)
	recs = append(recs, tail...)
	return Recover(e, recs, newLog)
}

// RecoverAllFromCheckpoint recovers a fleet from a checkpoint plus the
// replayed tail (the records of segments newer than cp.Cover, e.g. from
// wal.RepairSegments). Instances live at the checkpoint are seeded from
// their snapshot records and continued with their tail records; instances
// created after the checkpoint are recovered from the tail alone;
// instances in cp.Done finished inside the covered prefix and are not
// resurrected. A nil cp degrades to RecoverAll over the tail — the bottom
// rung of the fallback ladder (full replay). newLog, when non-nil,
// supplies the fresh log for each recovered instance.
func RecoverAllFromCheckpoint(e *Engine, cp *wal.Checkpoint, tail []wal.Record, newLog func(instanceID string) wal.Log) ([]*Instance, error) {
	if cp == nil {
		return RecoverAll(e, tail, newLog)
	}
	done := make(map[string]bool, len(cp.Done))
	for _, id := range cp.Done {
		done[id] = true
	}
	byInst := make(map[string][]wal.Record)
	var order []string
	add := func(rec wal.Record) {
		if _, seen := byInst[rec.Instance]; !seen {
			order = append(order, rec.Instance)
		}
		byInst[rec.Instance] = append(byInst[rec.Instance], rec)
	}
	for _, rec := range cp.Records {
		add(rec)
	}
	for _, rec := range tail {
		if done[rec.Instance] {
			// A finished instance appends nothing after its RecDone; tail
			// records here mean the checkpoint and the log disagree.
			return nil, fmt.Errorf("engine: tail records for instance %s, which the checkpoint marks finished", rec.Instance)
		}
		add(rec)
	}
	out := make([]*Instance, 0, len(order))
	for _, id := range order {
		var log wal.Log
		if newLog != nil {
			log = newLog(id)
		}
		inst, err := Recover(e, byInst[id], log)
		if err != nil {
			return out, fmt.Errorf("engine: recovering %s from checkpoint: %w", id, err)
		}
		out = append(out, inst)
	}
	return out, nil
}

// Checkpointer periodically folds a SegmentedLog's sealed segments into
// checkpoints and prunes what they make redundant. Each pass: optionally
// rotate when the active segment has accumulated enough records
// (CheckpointEveryRecords), read the segments sealed since the previous
// checkpoint, write the successor checkpoint (wal.BuildCheckpoint — the
// same compaction semantics as wal.Compact), keep the newest two
// checkpoints, and delete the segments wholly covered by the older
// retained one, so the previous-checkpoint rung of the recovery ladder
// always has its tail segments on disk.
//
// The checkpointer reads only sealed, immutable files and takes the log's
// lock only for the brief rotate/list/prune calls, so a fleet appending
// through a GroupCommitLog never stalls behind a checkpoint write.
type Checkpointer struct {
	log          *wal.SegmentedLog
	dir          string
	interval     time.Duration
	everyRecords int
	arch         *wal.Archiver

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
	err     error
}

// CheckpointerOption configures a Checkpointer.
type CheckpointerOption func(*Checkpointer)

// CheckpointInterval sets how often the background loop runs a pass
// (default 100ms).
func CheckpointInterval(d time.Duration) CheckpointerOption {
	return func(c *Checkpointer) {
		if d > 0 {
			c.interval = d
		}
	}
}

// CheckpointEveryRecords makes a pass rotate the active segment once it
// holds at least n records, so long-lived fleets checkpoint by work done
// rather than wall clock. 0 (the default) never forces a rotation — only
// segments sealed by the log's own size thresholds are folded in.
func CheckpointEveryRecords(n int) CheckpointerOption {
	return func(c *Checkpointer) { c.everyRecords = n }
}

// CheckpointDir stores checkpoint files in dir instead of the log's own
// segment directory.
func CheckpointDir(dir string) CheckpointerOption {
	return func(c *Checkpointer) { c.dir = dir }
}

// CheckpointArchive attaches an Archiver: every pass enqueues the log's
// sealed segments and the surviving checkpoints for upload, and pruning
// becomes archive-gated — a segment or checkpoint is deleted locally
// only once its archived copy has CRC-verified (wal.Archiver.Verified).
// A slow or down archive therefore grows local retention instead of
// stalling checkpointing; the checkpoint pass itself never waits on the
// store. The caller owns the archiver's lifecycle (Start/Stop).
func CheckpointArchive(a *wal.Archiver) CheckpointerOption {
	return func(c *Checkpointer) { c.arch = a }
}

// NewCheckpointer prepares a checkpointer for log. Run passes manually
// with CheckpointNow, or Start the background loop.
func NewCheckpointer(log *wal.SegmentedLog, opts ...CheckpointerOption) *Checkpointer {
	c := &Checkpointer{log: log, dir: log.Dir(), interval: 100 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Dir returns the directory checkpoints are written to.
func (c *Checkpointer) Dir() string { return c.dir }

// CheckpointNow runs one synchronous pass: rotate if the record trigger
// fires, fold newly sealed segments into a new checkpoint, and prune. A
// pass with nothing newly sealed writes nothing and returns nil.
func (c *Checkpointer) CheckpointNow() error {
	if c.everyRecords > 0 && c.log.ActiveRecords() >= c.everyRecords {
		if err := c.log.Rotate(); err != nil {
			return err
		}
	}
	prev, err := wal.LoadCheckpoint(c.dir)
	if err != nil {
		return err
	}
	cover := 0
	if prev != nil {
		cover = prev.Cover
	}
	var recs []wal.Record
	maxIdx := cover
	for _, s := range c.log.SealedSegments() {
		if c.arch != nil {
			c.arch.Enqueue(s.Path) // idempotent: verified/queued names are skipped
		}
		if s.Index <= cover {
			continue
		}
		rs, err := wal.ReadFile(s.Path) // sealed segments are clean: strict read
		if err != nil {
			return fmt.Errorf("engine: checkpointing segment %d: %w", s.Index, err)
		}
		recs = append(recs, rs...)
		maxIdx = s.Index
	}
	if maxIdx == cover {
		// Nothing newly sealed — but still run retention: a crash between a
		// previous pass's checkpoint write and its prune would otherwise
		// leave orphaned covered segments (and surplus checkpoints) on disk
		// until new work seals a segment, and with an archiver attached a
		// blob verified since the last pass only becomes prune-eligible
		// here.
		return c.retention()
	}
	cp := wal.BuildCheckpoint(prev, recs, maxIdx)
	path, err := wal.WriteCheckpoint(c.dir, cp)
	if err != nil {
		return err
	}
	if c.arch != nil {
		c.arch.Enqueue(path)
	}
	return c.retention()
}

// retention prunes checkpoints beyond the retained two and the segments
// wholly covered by the older retained checkpoint: segments in
// (older.Cover, newest.Cover] stay on disk as the previous-checkpoint
// rung's tail. With an archiver attached both prunes are gated on
// verified archived copies, and every survivor is (re-)enqueued so a
// recovering archive eventually unblocks retention.
func (c *Checkpointer) retention() error {
	var ckptOK func(name string) bool
	var segOK func(wal.SegmentInfo) bool
	if c.arch != nil {
		ckptOK = func(name string) bool { return c.arch.Verified(name) }
		segOK = func(s wal.SegmentInfo) bool { return c.arch.Verified(filepath.Base(s.Path)) }
	}
	survivors, err := wal.PruneCheckpointsEligible(c.dir, 2, ckptOK)
	if err != nil {
		return err
	}
	if c.arch != nil {
		for _, ci := range survivors {
			c.arch.Enqueue(ci.Path)
		}
	}
	if len(survivors) < 2 {
		return nil
	}
	older, err := wal.ReadCheckpoint(survivors[len(survivors)-2].Path)
	if err != nil {
		// A damaged older checkpoint can't vouch for what it covers; leave
		// the segments for the recovery ladder to sort out.
		return nil
	}
	_, err = c.log.PruneEligible(older.Cover, segOK)
	return err
}

// Start launches the background loop. Stop it with Stop.
func (c *Checkpointer) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.stopped = make(chan struct{})
	go c.run(c.stop, c.stopped)
}

func (c *Checkpointer) run(stop, stopped chan struct{}) {
	t := time.NewTicker(c.interval)
	defer t.Stop()
	defer close(stopped)
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			if err := c.CheckpointNow(); err != nil {
				c.mu.Lock()
				if c.err == nil {
					c.err = err
				}
				c.mu.Unlock()
			}
		}
	}
}

// Stop halts the background loop, runs one final pass (so a clean
// shutdown leaves a checkpoint covering everything sealed), and returns
// the first error the loop or the final pass hit.
func (c *Checkpointer) Stop() error {
	c.mu.Lock()
	stop, stopped := c.stop, c.stopped
	c.stop, c.stopped = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-stopped
	}
	err := c.CheckpointNow()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		err = c.err
		c.err = nil
	}
	return err
}
