// Package engine implements the workflow navigation engine: the FlowMark
// runtime semantics of §3.2 of "Advanced Transaction Models in Workflow
// Contexts". It executes process templates defined with the model package,
// honoring activity states (ready / running / finished / terminated),
// AND/OR start conditions evaluated only after every incoming control
// connector has a truth value, transition conditions, exit-condition loops,
// dead path elimination, nested blocks and process activities, container
// data flow, manual activities with worklists, and write-ahead logging with
// forward recovery.
//
// Navigation is deterministic: the engine pumps a FIFO queue of navigation
// tasks and invokes programs synchronously, so the same template with the
// same program outcomes always yields the same audit trail. Determinism is
// what makes log replay (see Recover) exact.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/org"
	"repro/internal/wal"
)

// Invocation is the context handed to a program when its activity runs.
type Invocation struct {
	InstanceID string
	// Path identifies the activity execution within the instance, e.g.
	// "Forward#0/book_flight". Block and subprocess segments carry their
	// iteration number.
	Path string
	// Iter is the activity's own exit-condition iteration (0 on the first
	// execution).
	Iter int
	// In is the activity input container (read-only by convention).
	In *model.Container
	// Out is the output container the program fills in; set RC to 0 for
	// commit and non-zero for abort.
	Out *model.Container
	// Attempt is the 1-based invocation attempt under the activity's
	// retry policy (1 unless a previous attempt failed transiently).
	Attempt int
}

// Program is an application registered with the engine and invoked by
// program activities. Returning an error signals an infrastructure failure
// (the instance stops with that error); transactional aborts are reported
// through Out's RC member instead.
type Program interface {
	Run(inv *Invocation) error
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(inv *Invocation) error

// Run implements Program.
func (f ProgramFunc) Run(inv *Invocation) error { return f(inv) }

// NOP is the no-operation program used by generated compensation blocks
// (the "null activity" of Figure 2); it commits immediately.
var NOP Program = ProgramFunc(func(inv *Invocation) error {
	inv.Out.SetRC(0)
	return nil
})

// NOPName is the program name under which translators expect NOP to be
// registered.
const NOPName = "nop"

// Engine holds the registered programs, process templates and the optional
// organizational directory. It is safe for concurrent use; individual
// instances are single-threaded.
type Engine struct {
	mu        sync.RWMutex
	programs  map[string]Program
	processes map[string]*model.Process

	dir       *org.Directory
	worklists *org.Worklists

	clock       func() int64
	sleep       func(time.Duration)
	concurrency int
	nextID      atomic.Int64
	metrics     *engineMetrics
	bus         *obs.Bus

	breakerFactory func(program string) Breaker
	breakerMu      sync.Mutex
	breakers       map[string]Breaker
	retryBudget    *RetryBudget

	trailObs func(inst *Instance, ev Event)

	instMu    sync.Mutex
	instances []*Instance
}

// Option configures an Engine.
type Option func(*Engine)

// WithOrganization attaches an organization directory; manual activities
// post work items to its worklists.
func WithOrganization(dir *org.Directory) Option {
	return func(e *Engine) {
		e.dir = dir
		e.worklists = org.NewWorklists(dir)
	}
}

// WithClock replaces the engine clock (seconds) used for work item
// deadlines; the default is wall-clock time.
func WithClock(clock func() int64) Option {
	return func(e *Engine) { e.clock = clock }
}

// WithSleep replaces the sleep function used for retry backoff between
// program invocation attempts; the default is time.Sleep. Tests inject a
// recording no-op sleep so backoff schedules can be asserted without
// slowing the suite down.
func WithSleep(sleep func(time.Duration)) Option {
	return func(e *Engine) { e.sleep = sleep }
}

// WithConcurrency sets the program worker pool size of new instances.
// With n <= 1 (the default), navigation is fully sequential and
// deterministic — recovered instances reproduce the identical audit
// trail. With n > 1, independent program activities execute concurrently
// on a pool of n workers; navigation itself remains single-threaded, so
// the §3.2 semantics are unchanged, but the interleaving of parallel
// branches (and therefore trail order) is non-deterministic.
func WithConcurrency(n int) Option {
	return func(e *Engine) { e.concurrency = n }
}

// WithMetrics points the engine's instrumentation at the given registry
// instead of obs.Default — tests assert exact counts against a fresh
// registry, embedders can segregate engines. The metric names are listed
// in DESIGN.md ("Observability").
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) { e.metrics = newEngineMetrics(reg) }
}

// WithBus points the engine's real-time event publishing at the given
// bus instead of obs.DefaultBus — tests subscribe to a private bus,
// embedders can segregate engines. The event taxonomy is listed in
// DESIGN.md ("Observability"). Publishing costs one atomic load while
// nothing is subscribed or attached to the bus.
func WithBus(b *obs.Bus) Option {
	return func(e *Engine) { e.bus = b }
}

// WithTrailObserver registers fn to be called synchronously after every
// audit-trail append, on the goroutine that navigates the instance (with
// the default concurrency of 1 that is the instance's single navigator
// goroutine, so fn may call inst.Snapshot for a consistent view). It is
// the as-of-T seam of the queryable-history layer: because recovery is
// deterministic re-navigation that reproduces the identical trail,
// replaying an instance under an observer revisits every historical
// trail boundary in order — internal/history captures "state of X as of
// boundary k" here, and the E13 soak runs the same observer on a live
// instance as the equality oracle.
func WithTrailObserver(fn func(inst *Instance, ev Event)) Option {
	return func(e *Engine) { e.trailObs = fn }
}

// New returns an engine with the NOP program pre-registered.
func New(opts ...Option) *Engine {
	e := &Engine{
		programs:  map[string]Program{NOPName: NOP},
		processes: make(map[string]*model.Process),
		clock:     func() int64 { return time.Now().Unix() },
		sleep:     time.Sleep,
	}
	for _, o := range opts {
		o(e)
	}
	if e.metrics == nil {
		e.metrics = newEngineMetrics(obs.Default)
	}
	if e.bus == nil {
		e.bus = obs.DefaultBus
	}
	return e
}

// Metrics returns the registry this engine records into.
func (e *Engine) Metrics() *obs.Registry { return e.metrics.reg }

// Bus returns the event bus this engine publishes into.
func (e *Engine) Bus() *obs.Bus { return e.bus }

// RegisterProgram makes a program invocable from program activities. As in
// FlowMark, "once a program is registered it can be invoked from any
// activity".
func (e *Engine) RegisterProgram(name string, p Program) error {
	if name == "" || p == nil {
		return errors.New("engine: program must have a name and an implementation")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.programs[name]; dup {
		return fmt.Errorf("engine: program %q already registered", name)
	}
	e.programs[name] = p
	return nil
}

// Program returns the registered program, or nil.
func (e *Engine) Program(name string) Program {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.programs[name]
}

// RegisterProcess validates and installs a process template. Subprocess
// references are resolved against the templates registered so far plus the
// new one, so register bottom-up.
func (e *Engine) RegisterProcess(p *model.Process) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.processes[p.Name]; dup {
		return fmt.Errorf("engine: process %q already registered", p.Name)
	}
	known := make(map[string]bool, len(e.processes)+1)
	for name := range e.processes {
		known[name] = true
	}
	known[p.Name] = true
	if err := p.Validate(known); err != nil {
		return err
	}
	if err := e.checkProgramsRegistered(&p.Graph, p.Name); err != nil {
		return err
	}
	e.processes[p.Name] = p
	return nil
}

func (e *Engine) checkProgramsRegistered(g *model.Graph, proc string) error {
	for _, a := range g.Activities {
		switch a.Kind {
		case model.KindProgram:
			if _, ok := e.programs[a.Program]; !ok {
				return fmt.Errorf("engine: process %q activity %q uses unregistered program %q",
					proc, a.Name, a.Program)
			}
		case model.KindBlock:
			if a.Block != nil {
				if err := e.checkProgramsRegistered(a.Block, proc); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Process returns a registered process template.
func (e *Engine) Process(name string) (*model.Process, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.processes[name]
	return p, ok
}

// Worklists exposes the engine's worklist manager (nil when no organization
// was attached).
func (e *Engine) Worklists() *org.Worklists { return e.worklists }

// Directory exposes the attached organization directory (nil when absent).
func (e *Engine) Directory() *org.Directory { return e.dir }

// CreateInstance instantiates a registered process template. input provides
// initial values for the process input container (nil for all defaults);
// log receives the navigation records (pass nil for an in-memory log).
func (e *Engine) CreateInstance(process string, input map[string]expr.Value, log wal.Log) (*Instance, error) {
	return e.CreateInstanceID(process, e.NewInstanceID(), input, log)
}

// NewInstanceID reserves and returns the next engine-assigned instance
// ID ("inst-N") without creating an instance. Sharded placement needs
// the ID before creation — a Fleet hashes the ID to pick the shard and
// must create the instance against that shard's log (ShardFor).
func (e *Engine) NewInstanceID() string {
	return fmt.Sprintf("inst-%d", e.nextID.Add(1))
}

// CreateInstanceID is CreateInstance with a caller-supplied instance ID,
// normally one reserved via NewInstanceID. The caller owns uniqueness:
// reusing a live ID corrupts log demultiplexing and recovery.
func (e *Engine) CreateInstanceID(process, id string, input map[string]expr.Value, log wal.Log) (*Instance, error) {
	e.mu.RLock()
	p, ok := e.processes[process]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown process %q", process)
	}
	if hasManual(&p.Graph) && e.worklists == nil {
		return nil, fmt.Errorf("engine: process %q has manual activities but no organization is attached", process)
	}
	if log == nil {
		log = &wal.MemLog{}
	}
	in, err := p.Types.NewContainer(p.In())
	if err != nil {
		return nil, err
	}
	for k, v := range input {
		if err := in.Set(k, v); err != nil {
			return nil, err
		}
	}
	inst := newInstance(e, id, p, in, log)
	e.metrics.instCreated.Inc()
	e.bus.Publish(obs.Event{Kind: obs.EvInstanceCreated, Instance: id, Program: process})
	e.instMu.Lock()
	e.instances = append(e.instances, inst)
	e.instMu.Unlock()
	return inst, nil
}

// InstanceInfo is one row of the engine's instance monitor (§3.3
// monitoring).
type InstanceInfo struct {
	ID      string
	Process string
	// Status: "created" (not started), "running" (started, waiting on
	// manual work or mid-navigation), "finished", or "failed".
	Status string
	// Cause is the failure cause message for "failed" instances, "".
	// otherwise.
	Cause       string
	PendingWork int
}

// Instances returns a monitoring snapshot of every instance created by
// this engine, in creation order. It is safe to call from any goroutine,
// including while instances are being driven concurrently — instance
// status is read under the per-instance status lock.
func (e *Engine) Instances() []InstanceInfo {
	e.instMu.Lock()
	insts := append([]*Instance(nil), e.instances...)
	e.instMu.Unlock()
	out := make([]InstanceInfo, 0, len(insts))
	for _, inst := range insts {
		status, cause := inst.StatusInfo()
		out = append(out, InstanceInfo{
			ID: inst.id, Process: inst.proc.Name,
			Status: status, Cause: cause, PendingWork: inst.PendingWork(),
		})
	}
	return out
}

func hasManual(g *model.Graph) bool {
	for _, a := range g.Activities {
		if a.Start == model.StartManual {
			return true
		}
		if a.Kind == model.KindBlock && a.Block != nil && hasManual(a.Block) {
			return true
		}
	}
	return false
}
