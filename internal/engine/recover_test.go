package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/wal"
)

// countingProgram counts real executions per path so recovery tests can
// verify which activities were replayed from the log vs. re-executed.
// Fleet tests invoke it from parallel workers, hence the mutex.
type countingProgram struct {
	mu   sync.Mutex
	runs map[string]int
	rc   func(path string) int64
}

func (c *countingProgram) Run(inv *Invocation) error {
	c.mu.Lock()
	c.runs[inv.Path]++
	c.mu.Unlock()
	rc := int64(0)
	if c.rc != nil {
		rc = c.rc(inv.Path)
	}
	inv.Out.SetRC(rc)
	return nil
}

// recoveryProcess builds a 5-step chain with a block in the middle so the
// crash sweep covers program, block and data-flow records.
func recoveryProcess() *model.Process {
	p := model.NewProcess("Rec")
	if err := p.Types.Register(&model.StructType{Name: "States", Members: []model.Member{
		{Name: "State_1", Basic: model.Long, Default: expr.Int(-1)},
	}}); err != nil {
		panic(err)
	}
	p.OutputType = "States"
	inner := &model.Graph{
		OutputType: "States",
		Activities: []*model.Activity{
			{Name: "m1", Kind: model.KindProgram, Program: "count"},
			{Name: "m2", Kind: model.KindProgram, Program: "count"},
		},
		Control: []*model.ControlConnector{{From: "m1", To: "m2", Condition: expr.MustParse("RC = 0")}},
		Data: []*model.DataConnector{
			{From: "m2", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "RC", ToPath: "State_1"}}},
		},
	}
	p.Activities = []*model.Activity{
		{Name: "A", Kind: model.KindProgram, Program: "count"},
		{Name: "B", Kind: model.KindBlock, Block: inner, OutputType: "States"},
		{Name: "C", Kind: model.KindProgram, Program: "count"},
	}
	p.Control = []*model.ControlConnector{
		{From: "A", To: "B", Condition: expr.MustParse("RC = 0")},
		{From: "B", To: "C", Condition: expr.MustParse("State_1 = 0")},
	}
	p.Data = []*model.DataConnector{
		{From: "B", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "State_1", ToPath: "State_1"}}},
	}
	return p
}

func newRecoveryEngine(t *testing.T) (*Engine, *countingProgram) {
	t.Helper()
	e := New()
	cp := &countingProgram{runs: map[string]int{}}
	if err := e.RegisterProgram("count", cp); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(recoveryProcess()); err != nil {
		t.Fatal(err)
	}
	return e, cp
}

// baselineTrail runs the process crash-free and returns the trail strings.
func baselineTrail(t *testing.T) []string {
	t.Helper()
	e, _ := newRecoveryEngine(t)
	inst, err := e.CreateInstance("Rec", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	return trailStrings(inst)
}

func trailStrings(inst *Instance) []string {
	var out []string
	for _, ev := range inst.Trail() {
		out = append(out, ev.String())
	}
	return out
}

// TestRecoverySweep is experiment E4: crash the instance at every possible
// log point, recover, and require the resumed execution to complete with an
// audit trail identical to the crash-free run.
func TestRecoverySweep(t *testing.T) {
	want := baselineTrail(t)

	// Determine the total number of log records in a clean run.
	e0, _ := newRecoveryEngine(t)
	cleanLog := &wal.MemLog{}
	inst0, err := e0.CreateInstance("Rec", nil, cleanLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst0.Start(); err != nil {
		t.Fatal(err)
	}
	total := cleanLog.Len()
	if total < 8 {
		t.Fatalf("expected a substantial log, got %d records", total)
	}

	for crashAt := 1; crashAt < total; crashAt++ {
		t.Run(fmt.Sprintf("crash_after_%d", crashAt), func(t *testing.T) {
			e, _ := newRecoveryEngine(t)
			log := &wal.MemLog{CrashAfter: crashAt}
			inst, err := e.CreateInstance("Rec", nil, log)
			if err != nil {
				t.Fatal(err)
			}
			err = inst.Start()
			if !errors.Is(err, wal.ErrCrash) {
				t.Fatalf("expected injected crash, got %v", err)
			}
			if inst.Finished() {
				t.Fatal("crashed instance reported finished")
			}
			// Recover on a fresh engine (simulating a restarted server).
			e2, cp2 := newRecoveryEngine(t)
			rec, err := Recover(e2, log.Records(), nil)
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if !rec.Finished() {
				t.Fatal("recovered instance did not finish")
			}
			got := trailStrings(rec)
			if len(got) != len(want) {
				t.Fatalf("trail length %d != baseline %d\ngot: %v", len(got), len(want), got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trail[%d] = %q, want %q", i, got[i], want[i])
				}
			}
			// Logged completions must not re-execute; the rest re-run
			// exactly once.
			for path, n := range cp2.runs {
				if n != 1 {
					t.Errorf("activity %s executed %d times after recovery", path, n)
				}
			}
			if rec.Output().MustGet("State_1").AsInt() != 0 {
				t.Error("recovered output wrong")
			}
		})
	}
}

// TestRecoveryReusesLoggedOutputs verifies that activities whose completion
// was logged are not re-executed (their programs never run again).
func TestRecoveryReusesLoggedOutputs(t *testing.T) {
	e, _ := newRecoveryEngine(t)
	// Crash after A completed (record 1 = created, 2 = A started, 3 = A
	// finished).
	log := &wal.MemLog{CrashAfter: 3}
	inst, err := e.CreateInstance("Rec", nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
		t.Fatalf("want crash, got %v", err)
	}

	e2, cp2 := newRecoveryEngine(t)
	rec, err := Recover(e2, log.Records(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Finished() {
		t.Fatal("not finished")
	}
	if cp2.runs["A"] != 0 {
		t.Errorf("A re-executed %d times despite logged completion", cp2.runs["A"])
	}
	if cp2.runs["B#0/m1"] != 1 || cp2.runs["C"] != 1 {
		t.Errorf("unlogged activities not re-executed: %v", cp2.runs)
	}
}

// TestRecoveryRerunsHalfExecuted verifies the paper's caveat: an activity
// that started but never logged completion is rescheduled from the
// beginning.
func TestRecoveryRerunsHalfExecuted(t *testing.T) {
	e, cp := newRecoveryEngine(t)
	// Record 4 is "B#0/m1 started": crash right after it, i.e. mid-flight.
	log := &wal.MemLog{CrashAfter: 4}
	inst, err := e.CreateInstance("Rec", nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
		t.Fatalf("want crash, got %v", err)
	}
	if cp.runs["B#0/m1"] != 1 {
		t.Fatalf("m1 should have executed before the crash: %v", cp.runs)
	}

	e2, cp2 := newRecoveryEngine(t)
	rec, err := Recover(e2, log.Records(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Finished() {
		t.Fatal("not finished")
	}
	if cp2.runs["B#0/m1"] != 1 {
		t.Errorf("half-executed m1 not re-run from the beginning: %v", cp2.runs)
	}
}

// TestRecoveryThroughFileLog exercises the file-backed log end to end.
func TestRecoveryThroughFileLog(t *testing.T) {
	path := t.TempDir() + "/rec.wal"
	e, _ := newRecoveryEngine(t)
	flog, err := wal.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Rec", nil, flog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := flog.Close(); err != nil {
		t.Fatal(err)
	}
	records, err := wal.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	e2, cp2 := newRecoveryEngine(t)
	rec, err := Recover(e2, records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Finished() {
		t.Fatal("not finished")
	}
	// Everything was logged: nothing re-executes.
	for path, n := range cp2.runs {
		t.Errorf("unexpected re-execution of %s (%d)", path, n)
	}
}

// TestRecoveryAfterTornTail crashes the instance mid-append through a
// short-writing FaultLog, repairs the torn file (truncate-and-resume), and
// recovers from the surviving prefix: the crash-free trail and output must
// be reproduced exactly.
func TestRecoveryAfterTornTail(t *testing.T) {
	want := baselineTrail(t)
	path := t.TempDir() + "/torn.wal"

	e, _ := newRecoveryEngine(t)
	flog, err := wal.OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	fl := wal.NewFaultLog(flog, 5, true) // torn 6th record lands on disk
	inst, err := e.CreateInstance("Rec", nil, fl)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
		t.Fatalf("want crash, got %v", err)
	}
	if err := flog.Close(); err != nil {
		t.Fatal(err)
	}

	records, truncated, err := wal.RepairFile(path)
	if err != nil || len(records) != 5 || truncated == 0 {
		t.Fatalf("repair: %d records, %d truncated, %v", len(records), truncated, err)
	}
	e2, _ := newRecoveryEngine(t)
	rec, err := Recover(e2, records, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Finished() {
		t.Fatal("not finished")
	}
	got := trailStrings(rec)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("trail after torn-tail recovery:\ngot:  %v\nwant: %v", got, want)
	}
	if rec.Output().MustGet("State_1").AsInt() != 0 {
		t.Error("recovered output wrong")
	}
}

// TestRecoveryFromCompactedLog: compaction must not change what recovery
// reconstructs.
func TestRecoveryFromCompactedLog(t *testing.T) {
	e, _ := newRecoveryEngine(t)
	log := &wal.MemLog{CrashAfter: 7}
	inst, err := e.CreateInstance("Rec", nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
		t.Fatalf("want crash, got %v", err)
	}
	full := log.Records()
	compacted := wal.Compact(full)
	if len(compacted) >= len(full) {
		t.Fatalf("compaction removed nothing: %d -> %d", len(full), len(compacted))
	}
	eA, _ := newRecoveryEngine(t)
	recA, err := Recover(eA, full, nil)
	if err != nil || !recA.Finished() {
		t.Fatalf("full recover: %v", err)
	}
	eB, _ := newRecoveryEngine(t)
	recB, err := Recover(eB, compacted, nil)
	if err != nil || !recB.Finished() {
		t.Fatalf("compacted recover: %v", err)
	}
	a, b := trailStrings(recA), trailStrings(recB)
	if len(a) != len(b) {
		t.Fatalf("trails differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trail[%d]: %q vs %q", i, a[i], b[i])
		}
	}
	if !recA.Output().Equal(recB.Output()) {
		t.Fatal("outputs differ")
	}
}

func TestRecoverErrors(t *testing.T) {
	e, _ := newRecoveryEngine(t)
	if _, err := Recover(e, nil, nil); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := Recover(e, []wal.Record{{Type: wal.RecDone, Instance: "x"}}, nil); err == nil {
		t.Error("log without created record accepted")
	}
	if _, err := Recover(e, []wal.Record{{Type: wal.RecCreated, Instance: "x", Process: "Ghost"}}, nil); err == nil {
		t.Error("unknown process accepted")
	}
	recs := []wal.Record{
		{Type: wal.RecCreated, Instance: "x", Process: "Rec", Values: map[string]expr.Value{"RC": expr.Int(0)}},
		{Type: wal.RecFinishedActivity, Instance: "other", Path: "A", Values: map[string]expr.Value{"RC": expr.Int(0)}},
	}
	if _, err := Recover(e, recs, nil); err == nil {
		t.Error("mixed-instance log accepted")
	}
}
