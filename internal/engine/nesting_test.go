package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/wal"
)

// nestedProcess builds two levels of block nesting:
//
//	root: A -> Outer[ s1 -> Inner[ deep1 -> deep2 ] -> s2 ] -> Z
//
// with data threaded root input -> deep2 -> root output.
func nestedProcess() *model.Process {
	p := model.NewProcess("Nested")
	if err := p.Types.Register(&model.StructType{Name: "IO", Members: []model.Member{
		{Name: "x", Basic: model.Long},
	}}); err != nil {
		panic(err)
	}
	p.InputType, p.OutputType = "IO", "IO"

	inner := &model.Graph{InputType: "IO", OutputType: "IO",
		Activities: []*model.Activity{
			{Name: "deep1", Kind: model.KindProgram, Program: "ok"},
			{Name: "deep2", Kind: model.KindProgram, Program: "ok", InputType: "IO", OutputType: "IO"},
		},
		Control: []*model.ControlConnector{
			{From: "deep1", To: "deep2", Condition: expr.MustParse("RC = 0")},
		},
		Data: []*model.DataConnector{
			{From: model.ScopeRef, To: "deep2", Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
			{From: "deep2", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
		},
	}
	outer := &model.Graph{InputType: "IO", OutputType: "IO",
		Activities: []*model.Activity{
			{Name: "s1", Kind: model.KindProgram, Program: "ok"},
			{Name: "Inner", Kind: model.KindBlock, Block: inner, InputType: "IO", OutputType: "IO"},
			{Name: "s2", Kind: model.KindProgram, Program: "ok"},
		},
		Control: []*model.ControlConnector{
			{From: "s1", To: "Inner", Condition: expr.MustParse("RC = 0")},
			{From: "Inner", To: "s2", Condition: expr.MustParse("x >= 0")},
		},
		Data: []*model.DataConnector{
			{From: model.ScopeRef, To: "Inner", Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
			{From: "Inner", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
		},
	}
	p.Activities = []*model.Activity{
		{Name: "A", Kind: model.KindProgram, Program: "ok"},
		{Name: "Outer", Kind: model.KindBlock, Block: outer, InputType: "IO", OutputType: "IO"},
		{Name: "Z", Kind: model.KindProgram, Program: "ok"},
	}
	p.Control = []*model.ControlConnector{
		{From: "A", To: "Outer", Condition: expr.MustParse("RC = 0")},
		{From: "Outer", To: "Z", Condition: expr.MustParse("RC = 0")},
	}
	p.Data = []*model.DataConnector{
		{From: model.ScopeRef, To: "Outer", Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
		{From: "Outer", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
	}
	return p
}

func TestNestedBlocks(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(nestedProcess()); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Nested", map[string]expr.Value{"x": expr.Int(5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	// x threads root -> Outer -> Inner -> deep2 -> back out.
	if got := inst.Output().MustGet("x").AsInt(); got != 5 {
		t.Fatalf("x = %d, want 5", got)
	}
	// Paths reflect the nesting.
	want := []string{"A", "Outer#0/Inner#0/deep1", "Outer#0/Inner#0/deep2", "Outer#0/s1", "Outer#0/s2", "Z"}
	var got []string
	for _, r := range inst.ProgramRuns() {
		got = append(got, r.Path)
	}
	// Order: A, s1, deep1, deep2, s2, Z — compare as sets through the
	// monitoring API and order through the runs list.
	if len(got) != 6 {
		t.Fatalf("runs = %v", got)
	}
	if got[0] != "A" || got[len(got)-1] != "Z" {
		t.Fatalf("run order: %v", got)
	}
	infos := inst.Activities()
	byPath := map[string]ActivityInfo{}
	for _, ai := range infos {
		byPath[ai.Path] = ai
	}
	for _, w := range want {
		ai, ok := byPath[w]
		if !ok {
			t.Fatalf("monitoring misses %s: %v", w, infos)
		}
		if ai.State != StateTerminated || ai.Dead {
			t.Fatalf("%s: %+v", w, ai)
		}
	}
	if byPath["Outer"].Kind != model.KindBlock || byPath["Outer#0/Inner"].Kind != model.KindBlock {
		t.Fatal("block kinds wrong in monitoring snapshot")
	}
}

func TestNestedBlockRecoverySweep(t *testing.T) {
	// Forward recovery through two levels of nesting, crash at every point.
	baselineEng := newTestEngine(t)
	if err := baselineEng.RegisterProcess(nestedProcess()); err != nil {
		t.Fatal(err)
	}
	cleanLog := &wal.MemLog{}
	inst0, err := baselineEng.CreateInstance("Nested", map[string]expr.Value{"x": expr.Int(3)}, cleanLog)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst0.Start(); err != nil {
		t.Fatal(err)
	}
	baseline := strings.Join(trailStrings(inst0), "|")

	for crashAt := 1; crashAt < cleanLog.Len(); crashAt++ {
		e := newTestEngine(t)
		if err := e.RegisterProcess(nestedProcess()); err != nil {
			t.Fatal(err)
		}
		log := &wal.MemLog{CrashAfter: crashAt}
		inst, err := e.CreateInstance("Nested", map[string]expr.Value{"x": expr.Int(3)}, log)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Start(); !errors.Is(err, wal.ErrCrash) {
			t.Fatalf("crash %d: %v", crashAt, err)
		}
		e2 := newTestEngine(t)
		if err := e2.RegisterProcess(nestedProcess()); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(e2, log.Records(), nil)
		if err != nil || !rec.Finished() {
			t.Fatalf("crash %d: recover: %v", crashAt, err)
		}
		if got := strings.Join(trailStrings(rec), "|"); got != baseline {
			t.Fatalf("crash %d: trail diverged", crashAt)
		}
		if rec.Output().MustGet("x").AsInt() != 3 {
			t.Fatalf("crash %d: output lost", crashAt)
		}
	}
}

func TestSubprocessInsideBlock(t *testing.T) {
	e := newTestEngine(t)
	child := model.NewProcess("Leaf")
	child.Activities = []*model.Activity{{Name: "w", Kind: model.KindProgram, Program: "ok"}}
	if err := e.RegisterProcess(child); err != nil {
		t.Fatal(err)
	}
	parent := model.NewProcess("Wrap")
	blk := &model.Graph{
		Activities: []*model.Activity{
			{Name: "call", Kind: model.KindProcess, Subprocess: "Leaf"},
		},
	}
	parent.Activities = []*model.Activity{{Name: "B", Kind: model.KindBlock, Block: blk}}
	if err := e.RegisterProcess(parent); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Wrap", nil)
	runs := inst.ProgramRuns()
	if len(runs) != 1 || runs[0].Path != "B#0/call#0/w" {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestDeadBlockNeverStartsInner(t *testing.T) {
	e := newTestEngine(t)
	p := model.NewProcess("DeadBlock")
	blk := &model.Graph{
		Activities: []*model.Activity{{Name: "inner", Kind: model.KindProgram, Program: "ok"}},
	}
	p.Activities = []*model.Activity{
		{Name: "A", Kind: model.KindProgram, Program: "abort"},
		{Name: "B", Kind: model.KindBlock, Block: blk},
	}
	p.Control = []*model.ControlConnector{
		{From: "A", To: "B", Condition: expr.MustParse("RC = 0")},
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "DeadBlock", nil)
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	// Inner activity was never instantiated.
	if _, ok := inst.ActivityState("B#0/inner"); ok {
		t.Fatal("dead block instantiated its inner scope")
	}
	if s, _ := inst.ActivityState("B"); s != StateTerminated {
		t.Fatal("dead block not terminated")
	}
}

// capturingProgram records the input container member "v" it saw.
type capturingProgram struct{ seen []int64 }

func (c *capturingProgram) Run(inv *Invocation) error {
	if v, ok := inv.In.Get("v"); ok {
		c.seen = append(c.seen, v.AsInt())
	}
	inv.Out.SetRC(0)
	return nil
}

func TestDataFromDeadSourceLeavesDefaults(t *testing.T) {
	// D is dead-path-eliminated; the data connector D -> C must contribute
	// nothing, so C sees the declared default of its input container.
	e := newTestEngine(t)
	cap := &capturingProgram{}
	if err := e.RegisterProgram("capture", cap); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("Defaults")
	if err := p.Types.Register(&model.StructType{Name: "V", Members: []model.Member{
		{Name: "v", Basic: model.Long, Default: expr.Int(77)},
	}}); err != nil {
		t.Fatal(err)
	}
	p.Activities = []*model.Activity{
		{Name: "A", Kind: model.KindProgram, Program: "abort"},
		{Name: "D", Kind: model.KindProgram, Program: "ok", OutputType: "V"}, // dead: A aborts
		{Name: "B", Kind: model.KindProgram, Program: "ok"},
		{Name: "C", Kind: model.KindProgram, Program: "capture", InputType: "V", Join: model.JoinOr},
	}
	p.Control = []*model.ControlConnector{
		{From: "A", To: "D", Condition: expr.MustParse("RC = 0")},
		{From: "D", To: "C"},
		{From: "B", To: "C"},
	}
	p.Data = []*model.DataConnector{
		{From: "D", To: "C", Maps: []model.DataMap{{FromPath: "v", ToPath: "v"}}},
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Defaults", nil)
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	if s, _ := inst.ActivityState("C"); s != StateTerminated {
		t.Fatal("C did not run")
	}
	if len(cap.seen) != 1 || cap.seen[0] != 77 {
		t.Fatalf("C saw %v, want the declared default 77", cap.seen)
	}
}

func TestExitConditionErrorFailsInstance(t *testing.T) {
	e := newTestEngine(t)
	// An ordering comparison between LONG and STRING is a runtime type
	// error; the instance must fail rather than loop or hang.
	p := model.NewProcess("BadExit")
	p.Activities = []*model.Activity{{
		Name: "A", Kind: model.KindProgram, Program: "ok",
		Exit: expr.MustParse(`RC > "x"`),
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("BadExit", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("type error in exit condition not surfaced")
	}
	if inst.Finished() {
		t.Fatal("failed instance reported finished")
	}
}

func TestBlockIterationPathsDistinct(t *testing.T) {
	// Ensure block iterations produce distinct monitoring paths (B#0, B#1).
	e := New()
	flaky := &flakyProgram{failures: map[string]int{"L#0/s": 0}}
	if err := e.RegisterProgram("flaky", flaky); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("Iter")
	if err := p.Types.Register(&model.StructType{Name: "S", Members: []model.Member{
		{Name: "n", Basic: model.Long, Default: expr.Int(-1)},
	}}); err != nil {
		t.Fatal(err)
	}
	iterCount := 0
	if err := e.RegisterProgram("count_iters", ProgramFunc(func(inv *Invocation) error {
		iterCount++
		if iterCount < 3 {
			inv.Out.SetRC(1)
		} else {
			inv.Out.SetRC(0)
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	blk := &model.Graph{
		OutputType: "S",
		Activities: []*model.Activity{{Name: "s", Kind: model.KindProgram, Program: "count_iters"}},
		Data: []*model.DataConnector{
			{From: "s", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "RC", ToPath: "n"}}},
		},
	}
	p.Activities = []*model.Activity{{
		Name: "L", Kind: model.KindBlock, Block: blk, OutputType: "S",
		Exit: expr.MustParse("n = 0"),
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Iter", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"L#0/s", "L#1/s", "L#2/s"} {
		if _, ok := inst.ActivityState(path); !ok {
			t.Fatalf("missing iteration path %s; have %v", path, pathsOf(inst))
		}
	}
}

func pathsOf(inst *Instance) []string {
	var out []string
	for _, ai := range inst.Activities() {
		out = append(out, fmt.Sprintf("%s(%v)", ai.Path, ai.State))
	}
	return out
}
