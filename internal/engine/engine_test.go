package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/org"
)

// okProgram commits and copies the input member "x" (when present in both
// containers) to its output, for data-flow checks.
func okProgram(inv *Invocation) error {
	if v, ok := inv.In.Get("x"); ok {
		if _, has := inv.Out.Get("x"); has {
			return inv.Out.Set("x", v)
		}
	}
	inv.Out.SetRC(0)
	return nil
}

// abortProgram aborts (RC=1).
func abortProgram(inv *Invocation) error {
	inv.Out.SetRC(1)
	return nil
}

func newTestEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e := New(opts...)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(e.RegisterProgram("ok", ProgramFunc(okProgram)))
	must(e.RegisterProgram("abort", ProgramFunc(abortProgram)))
	must(e.RegisterProgram("boom", ProgramFunc(func(inv *Invocation) error {
		return errors.New("infrastructure failure")
	})))
	return e
}

// chainProcess builds A -> B -> C with RC=0 transition conditions.
func chainProcess(name string, progs ...string) *model.Process {
	p := model.NewProcess(name)
	names := []string{"A", "B", "C"}
	for i, n := range names {
		prog := "ok"
		if i < len(progs) {
			prog = progs[i]
		}
		p.Activities = append(p.Activities, &model.Activity{Name: n, Kind: model.KindProgram, Program: prog})
	}
	p.Control = []*model.ControlConnector{
		{From: "A", To: "B", Condition: expr.MustParse("RC = 0")},
		{From: "B", To: "C", Condition: expr.MustParse("RC = 0")},
	}
	return p
}

func runToEnd(t *testing.T, e *Engine, procName string, input map[string]expr.Value) *Instance {
	t.Helper()
	inst, err := e.CreateInstance(procName, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return inst
}

func programsInOrder(inst *Instance) []string {
	var out []string
	for _, r := range inst.ProgramRuns() {
		out = append(out, fmt.Sprintf("%s:%d", r.Path, r.RC))
	}
	return out
}

func TestChainAllCommit(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Chain", nil)
	if !inst.Finished() {
		t.Fatal("instance not finished")
	}
	got := programsInOrder(inst)
	want := []string{"A:0", "B:0", "C:0"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("runs = %v, want %v", got, want)
	}
	for _, n := range []string{"A", "B", "C"} {
		if s, ok := inst.ActivityState(n); !ok || s != StateTerminated {
			t.Errorf("state(%s) = %v", n, s)
		}
	}
}

func TestDeadPathElimination(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(chainProcess("Chain", "ok", "abort", "ok")); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Chain", nil)
	if !inst.Finished() {
		t.Fatal("instance not finished despite dead paths")
	}
	got := programsInOrder(inst)
	want := []string{"A:0", "B:1"} // C never runs
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("runs = %v, want %v", got, want)
	}
	// C was terminated by DPE.
	var sawDead bool
	for _, ev := range inst.Trail() {
		if ev.Kind == EvDeadPath && ev.Path == "C" {
			sawDead = true
		}
	}
	if !sawDead {
		t.Fatal("no dead-path event for C")
	}
}

// diamond builds A -> (B, C) -> D with configurable conditions and join.
func diamond(name, condAB, condAC string, join model.JoinKind) *model.Process {
	p := model.NewProcess(name)
	for _, n := range []string{"A", "B", "C", "D"} {
		p.Activities = append(p.Activities, &model.Activity{Name: n, Kind: model.KindProgram, Program: "ok"})
	}
	p.Graph.Activity("D").Join = join
	p.Control = []*model.ControlConnector{
		{From: "A", To: "B", Condition: expr.MustParse(condAB)},
		{From: "A", To: "C", Condition: expr.MustParse(condAC)},
		{From: "B", To: "D", Condition: expr.MustParse("RC = 0")},
		{From: "C", To: "D", Condition: expr.MustParse("RC = 0")},
	}
	return p
}

func TestAndJoin(t *testing.T) {
	e := newTestEngine(t)
	// One branch dead: D must be dead-path eliminated under AND.
	if err := e.RegisterProcess(diamond("D1", "RC = 0", "RC <> 0", model.JoinAnd)); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "D1", nil)
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	if s, _ := inst.ActivityState("D"); s != StateTerminated {
		t.Fatal("D not terminated")
	}
	got := strings.Join(programsInOrder(inst), ",")
	if got != "A:0,B:0" {
		t.Fatalf("runs = %s", got)
	}
}

func TestOrJoin(t *testing.T) {
	e := newTestEngine(t)
	// One branch dead: D still runs under OR (after ALL connectors are
	// evaluated — the synchronizing or-join of §3.2).
	if err := e.RegisterProcess(diamond("D2", "RC = 0", "RC <> 0", model.JoinOr)); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "D2", nil)
	got := strings.Join(programsInOrder(inst), ",")
	if got != "A:0,B:0,D:0" {
		t.Fatalf("runs = %s", got)
	}
}

func TestOrJoinAllFalse(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(diamond("D3", "RC <> 0", "RC <> 0", model.JoinOr)); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "D3", nil)
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	got := strings.Join(programsInOrder(inst), ",")
	if got != "A:0" {
		t.Fatalf("runs = %s", got)
	}
}

func TestBothBranchesAndJoin(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(diamond("D4", "RC = 0", "RC = 0", model.JoinAnd)); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "D4", nil)
	got := strings.Join(programsInOrder(inst), ",")
	if got != "A:0,B:0,C:0,D:0" {
		t.Fatalf("runs = %s", got)
	}
}

// flakyProgram aborts the first n invocations per activity path, then
// commits.
type flakyProgram struct {
	failures map[string]int
}

func (f *flakyProgram) Run(inv *Invocation) error {
	if f.failures[inv.Path] > 0 {
		f.failures[inv.Path]--
		inv.Out.SetRC(1)
		return nil
	}
	inv.Out.SetRC(0)
	return nil
}

func TestExitConditionLoop(t *testing.T) {
	e := New()
	flaky := &flakyProgram{failures: map[string]int{"R": 2}}
	if err := e.RegisterProgram("flaky", flaky); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("Retry")
	p.Activities = []*model.Activity{{
		Name: "R", Kind: model.KindProgram, Program: "flaky",
		Exit: expr.MustParse("RC = 0"), // §3.2: retried until the exit condition holds
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Retry", nil)
	runs := inst.ProgramRuns()
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	if runs[0].RC != 1 || runs[1].RC != 1 || runs[2].RC != 0 {
		t.Fatalf("rcs = %+v", runs)
	}
	if runs[2].Iter != 2 {
		t.Fatalf("final iter = %d", runs[2].Iter)
	}
}

// sagaStateTypes registers a State_1..State_n structure.
func sagaStateTypes(p *model.Process, n int) {
	members := make([]model.Member, n)
	for i := range members {
		members[i] = model.Member{Name: fmt.Sprintf("State_%d", i+1), Basic: model.Long, Default: expr.Int(-1)}
	}
	if err := p.Types.Register(&model.StructType{Name: "States", Members: members}); err != nil {
		panic(err)
	}
}

// blockProcess wraps a two-step chain in a block whose output records the
// steps' return codes, as the saga forward block of Figure 2 does.
func blockProcess(name string, progs [2]string) *model.Process {
	p := model.NewProcess(name)
	sagaStateTypes(p, 2)
	p.OutputType = "States"
	inner := &model.Graph{
		OutputType: "States",
		Activities: []*model.Activity{
			{Name: "s1", Kind: model.KindProgram, Program: progs[0]},
			{Name: "s2", Kind: model.KindProgram, Program: progs[1]},
		},
		Control: []*model.ControlConnector{
			{From: "s1", To: "s2", Condition: expr.MustParse("RC = 0")},
		},
		Data: []*model.DataConnector{
			{From: "s1", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "RC", ToPath: "State_1"}}},
			{From: "s2", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "RC", ToPath: "State_2"}}},
		},
	}
	p.Activities = []*model.Activity{
		{Name: "B", Kind: model.KindBlock, Block: inner, OutputType: "States"},
	}
	p.Data = []*model.DataConnector{
		{From: "B", To: model.ScopeRef, Maps: []model.DataMap{
			{FromPath: "State_1", ToPath: "State_1"}, {FromPath: "State_2", ToPath: "State_2"},
		}},
	}
	return p
}

func TestBlockStateMapping(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(blockProcess("BP", [2]string{"ok", "ok"})); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "BP", nil)
	out := inst.Output()
	if out.MustGet("State_1").AsInt() != 0 || out.MustGet("State_2").AsInt() != 0 {
		t.Fatalf("output = %s", out)
	}
}

func TestBlockDeadPathLeavesDefault(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(blockProcess("BP2", [2]string{"abort", "ok"})); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "BP2", nil)
	out := inst.Output()
	// s1 aborted (State_1 = 1), s2 never ran (State_2 stays at default -1).
	if out.MustGet("State_1").AsInt() != 1 {
		t.Fatalf("State_1 = %v", out.MustGet("State_1"))
	}
	if out.MustGet("State_2").AsInt() != -1 {
		t.Fatalf("State_2 = %v", out.MustGet("State_2"))
	}
}

func TestBlockLoop(t *testing.T) {
	// A block whose exit condition retries the whole block until its inner
	// activity commits: inner scopes must be fresh per iteration.
	e := New()
	flaky := &flakyProgram{failures: map[string]int{}}
	// Fail the first two block iterations (paths differ per iteration).
	flaky.failures["L#0/s"] = 1
	flaky.failures["L#1/s"] = 1
	if err := e.RegisterProgram("flaky", flaky); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("BlockLoop")
	sagaStateTypes(p, 1)
	inner := &model.Graph{
		OutputType: "States",
		Activities: []*model.Activity{{Name: "s", Kind: model.KindProgram, Program: "flaky"}},
		Data: []*model.DataConnector{
			{From: "s", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "RC", ToPath: "State_1"}}},
		},
	}
	p.Activities = []*model.Activity{{
		Name: "L", Kind: model.KindBlock, Block: inner, OutputType: "States",
		Exit: expr.MustParse("State_1 = 0"),
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "BlockLoop", nil)
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	runs := inst.ProgramRuns()
	if len(runs) != 3 {
		t.Fatalf("inner runs = %d, want 3 (two failed block iterations + success)", len(runs))
	}
	if runs[0].Path != "L#0/s" || runs[1].Path != "L#1/s" || runs[2].Path != "L#2/s" {
		t.Fatalf("paths = %+v", runs)
	}
}

func TestSubprocess(t *testing.T) {
	e := newTestEngine(t)
	child := model.NewProcess("Child")
	child.Types.Register(&model.StructType{Name: "IO", Members: []model.Member{{Name: "x", Basic: model.Long}}})
	child.InputType, child.OutputType = "IO", "IO"
	child.Activities = []*model.Activity{{Name: "w", Kind: model.KindProgram, Program: "ok", InputType: "IO", OutputType: "IO"}}
	child.Data = []*model.DataConnector{
		{From: model.ScopeRef, To: "w", Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
		{From: "w", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
	}
	if err := e.RegisterProcess(child); err != nil {
		t.Fatal(err)
	}

	parent := model.NewProcess("Parent")
	parent.Types.Register(&model.StructType{Name: "IO", Members: []model.Member{{Name: "x", Basic: model.Long}}})
	parent.InputType, parent.OutputType = "IO", "IO"
	parent.Activities = []*model.Activity{{
		Name: "S", Kind: model.KindProcess, Subprocess: "Child", InputType: "IO", OutputType: "IO",
	}}
	parent.Data = []*model.DataConnector{
		{From: model.ScopeRef, To: "S", Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
		{From: "S", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
	}
	if err := e.RegisterProcess(parent); err != nil {
		t.Fatal(err)
	}

	inst := runToEnd(t, e, "Parent", map[string]expr.Value{"x": expr.Int(41)})
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	if got := inst.Output().MustGet("x").AsInt(); got != 41 {
		t.Fatalf("x = %d, want 41 (flow through subprocess)", got)
	}
	runs := inst.ProgramRuns()
	if len(runs) != 1 || runs[0].Path != "S#0/w" {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestDataFlowActToAct(t *testing.T) {
	e := newTestEngine(t)
	p := model.NewProcess("Flow")
	p.Types.Register(&model.StructType{Name: "IO", Members: []model.Member{{Name: "x", Basic: model.Long}}})
	p.InputType, p.OutputType = "IO", "IO"
	p.Activities = []*model.Activity{
		{Name: "A", Kind: model.KindProgram, Program: "ok", InputType: "IO", OutputType: "IO"},
		{Name: "B", Kind: model.KindProgram, Program: "ok", InputType: "IO", OutputType: "IO"},
	}
	p.Control = []*model.ControlConnector{{From: "A", To: "B"}}
	p.Data = []*model.DataConnector{
		{From: model.ScopeRef, To: "A", Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
		{From: "A", To: "B", Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
		{From: "B", To: model.ScopeRef, Maps: []model.DataMap{{FromPath: "x", ToPath: "x"}}},
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Flow", map[string]expr.Value{"x": expr.Int(7)})
	if got := inst.Output().MustGet("x").AsInt(); got != 7 {
		t.Fatalf("x = %d", got)
	}
}

func TestProgramErrorFailsInstance(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(chainProcess("Boom", "ok", "boom", "ok")); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Boom", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("program error not surfaced")
	}
	if inst.Finished() {
		t.Fatal("failed instance reported finished")
	}
}

func TestRegisterErrors(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProgram("", nil); err == nil {
		t.Error("empty program registration accepted")
	}
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err == nil {
		t.Error("duplicate program accepted")
	}
	// Unregistered program in process.
	p := chainProcess("X", "ghost", "ok", "ok")
	if err := e.RegisterProcess(p); err == nil {
		t.Error("process with unregistered program accepted")
	}
	// Duplicate process.
	if err := e.RegisterProcess(chainProcess("Dup")); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(chainProcess("Dup")); err == nil {
		t.Error("duplicate process accepted")
	}
	// Unknown process instance.
	if _, err := e.CreateInstance("Ghost", nil, nil); err == nil {
		t.Error("instance of unknown process accepted")
	}
	// Bad input member.
	if _, err := e.CreateInstance("Dup", map[string]expr.Value{"zz": expr.Int(1)}, nil); err == nil {
		t.Error("bad input member accepted")
	}
	// Double start.
	inst, _ := e.CreateInstance("Dup", nil, nil)
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Error("double start accepted")
	}
}

func TestManualActivityWorklistFlow(t *testing.T) {
	dir := org.NewDirectory()
	if err := dir.AddPerson(org.Person{Name: "carol", Roles: []string{"manager"}}); err != nil {
		t.Fatal(err)
	}
	if err := dir.AddPerson(org.Person{Name: "alice", Roles: []string{"clerk"}, Manager: "carol"}); err != nil {
		t.Fatal(err)
	}
	if err := dir.AddPerson(org.Person{Name: "bob", Roles: []string{"clerk"}, Manager: "carol"}); err != nil {
		t.Fatal(err)
	}
	now := int64(1000)
	e := New(WithOrganization(dir), WithClock(func() int64 { return now }))
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}

	p := model.NewProcess("Approval")
	p.Activities = []*model.Activity{
		{Name: "prepare", Kind: model.KindProgram, Program: "ok"},
		{Name: "approve", Kind: model.KindProgram, Program: "ok",
			Start: model.StartManual, Staff: model.Staff{Role: "clerk"},
			NotifySeconds: 60, NotifyRole: "manager"},
	}
	p.Control = []*model.ControlConnector{{From: "prepare", To: "approve", Condition: expr.MustParse("RC = 0")}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}

	inst, err := e.CreateInstance("Approval", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if inst.Finished() {
		t.Fatal("finished before manual step")
	}
	if inst.PendingWork() != 1 {
		t.Fatalf("pending work = %d", inst.PendingWork())
	}
	// Both clerks see the item.
	la, lb := e.Worklists().List("alice"), e.Worklists().List("bob")
	if len(la) != 1 || len(lb) != 1 {
		t.Fatalf("worklists: alice=%d bob=%d", len(la), len(lb))
	}
	// Deadline notification fires for the manager.
	now = 1061
	notes := e.Worklists().CheckDeadlines(now)
	if len(notes) != 1 || notes[0].Notified[0] != "carol" {
		t.Fatalf("notifications: %+v", notes)
	}
	// Bob selects and the process completes.
	if err := inst.SelectWork("bob", la[0].ID); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("not finished after manual completion")
	}
	if len(e.Worklists().List("alice")) != 0 {
		t.Fatal("item still on alice's list")
	}
}

func TestManualWithoutOrganizationRejected(t *testing.T) {
	e := newTestEngine(t)
	p := model.NewProcess("M")
	p.Activities = []*model.Activity{{
		Name: "m", Kind: model.KindProgram, Program: "ok",
		Start: model.StartManual, Staff: model.Staff{Role: "clerk"},
	}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateInstance("M", nil, nil); err == nil {
		t.Fatal("manual process without organization accepted")
	}
}

func TestEmptyProcessFinishesImmediately(t *testing.T) {
	e := newTestEngine(t)
	p := model.NewProcess("Empty")
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Empty", nil)
	if !inst.Finished() {
		t.Fatal("empty process did not finish")
	}
}

func TestParallelStartActivities(t *testing.T) {
	e := newTestEngine(t)
	p := model.NewProcess("Par")
	for _, n := range []string{"A", "B", "C"} {
		p.Activities = append(p.Activities, &model.Activity{Name: n, Kind: model.KindProgram, Program: "ok"})
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Par", nil)
	if got := len(inst.ProgramRuns()); got != 3 {
		t.Fatalf("runs = %d", got)
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{StateWaiting, StateReady, StateRunning, StateTerminated, State(42)} {
		if s.String() == "" {
			t.Error("empty state name")
		}
	}
	for k := EvCreated; k <= EvDone+1; k++ {
		if k.String() == "" {
			t.Error("empty event kind name")
		}
	}
	ev := Event{Kind: EvConnector, From: "a", To: "b", Value: true}
	if !strings.Contains(ev.String(), "a -> b") {
		t.Error("connector event string")
	}
	if (Event{Kind: EvFinished, Path: "x", RC: 1}).String() == "" {
		t.Error("finished event string")
	}
	if (Event{Kind: EvStarted, Path: "x", Iter: 2}).String() == "" {
		t.Error("started event string")
	}
}

// TestIndirectRecursionImpossible documents that cross-template recursion
// cannot be constructed: subprocess references must already be registered,
// so registration order is forcibly topological, and self-invocation is
// rejected by validation.
func TestIndirectRecursionImpossible(t *testing.T) {
	e := newTestEngine(t)
	// B references A before A exists: rejected.
	b := model.NewProcess("B")
	b.Activities = []*model.Activity{{Name: "callA", Kind: model.KindProcess, Subprocess: "A"}}
	if err := e.RegisterProcess(b); err == nil {
		t.Fatal("forward reference accepted")
	}
	// Self reference: rejected.
	a := model.NewProcess("A")
	a.Activities = []*model.Activity{{Name: "callA", Kind: model.KindProcess, Subprocess: "A"}}
	if err := e.RegisterProcess(a); err == nil {
		t.Fatal("self reference accepted")
	}
}

func TestInstanceAccessors(t *testing.T) {
	e := newTestEngine(t)
	if err := e.RegisterProcess(chainProcess("Acc")); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Acc", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ID() == "" || inst.ProcessName() != "Acc" {
		t.Fatalf("accessors: %q %q", inst.ID(), inst.ProcessName())
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if inst.Err() != nil {
		t.Fatal(inst.Err())
	}
	if e.Directory() != nil {
		t.Fatal("no directory expected")
	}
}
