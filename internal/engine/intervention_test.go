package engine

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/org"
)

func approvalEngine(t *testing.T) *Engine {
	t.Helper()
	dir := org.NewDirectory()
	if err := dir.AddPerson(org.Person{Name: "alice", Roles: []string{"clerk"}}); err != nil {
		t.Fatal(err)
	}
	e := New(WithOrganization(dir), WithClock(func() int64 { return 0 }))
	if err := e.RegisterProgram("ok", ProgramFunc(okProgram)); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("Approval")
	p.Activities = []*model.Activity{
		{Name: "approve", Kind: model.KindProgram, Program: "ok",
			Start: model.StartManual, Staff: model.Staff{Role: "clerk"}},
		{Name: "ship", Kind: model.KindProgram, Program: "ok"},
		{Name: "reject_letter", Kind: model.KindProgram, Program: "ok"},
	}
	p.Control = []*model.ControlConnector{
		{From: "approve", To: "ship", Condition: expr.MustParse("RC = 0")},
		{From: "approve", To: "reject_letter", Condition: expr.MustParse("RC <> 0")},
	}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestForceFinishApproves(t *testing.T) {
	e := approvalEngine(t)
	inst, err := e.CreateInstance("Approval", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if inst.PendingWork() != 1 {
		t.Fatal("no pending work")
	}
	// A supervisor forces the approval through with RC=0.
	if err := inst.ForceFinish("approve", 0); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	// The worklist item is gone and the RC=0 branch ran.
	if len(e.Worklists().List("alice")) != 0 {
		t.Fatal("work item not withdrawn")
	}
	runs := inst.ProgramRuns()
	if len(runs) != 1 || runs[0].Path != "ship" {
		t.Fatalf("runs = %+v (approve must not run its program)", runs)
	}
	var sawForced bool
	for _, ev := range inst.Trail() {
		if ev.Kind == EvForced && ev.Path == "approve" {
			sawForced = true
		}
	}
	if !sawForced {
		t.Fatal("no forced event")
	}
}

func TestForceFinishRejectBranch(t *testing.T) {
	e := approvalEngine(t)
	inst, _ := e.CreateInstance("Approval", nil, nil)
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	// Forcing with a non-zero RC drives the rejection branch.
	if err := inst.ForceFinish("approve", 1); err != nil {
		t.Fatal(err)
	}
	runs := inst.ProgramRuns()
	if len(runs) != 1 || runs[0].Path != "reject_letter" {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestForceFinishErrors(t *testing.T) {
	e := approvalEngine(t)
	inst, _ := e.CreateInstance("Approval", nil, nil)
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.ForceFinish("ghost", 0); err == nil {
		t.Error("unknown path accepted")
	}
	if err := inst.ForceFinish("ship", 0); err == nil {
		t.Error("non-manual activity accepted")
	}
	if err := inst.ForceFinish("approve", 0); err != nil {
		t.Fatal(err)
	}
	// Second force on the same (now terminated) activity fails.
	if err := inst.ForceFinish("approve", 0); err == nil {
		t.Error("terminated activity accepted")
	}
}

func TestCancelInstance(t *testing.T) {
	e := approvalEngine(t)
	inst, _ := e.CreateInstance("Approval", nil, nil)
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Cancel(); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Fatal("canceled instance not finished")
	}
	if inst.PendingWork() != 0 || len(e.Worklists().List("alice")) != 0 {
		t.Fatal("work items survived cancellation")
	}
	// Nothing executed.
	if len(inst.ProgramRuns()) != 0 {
		t.Fatalf("programs ran: %+v", inst.ProgramRuns())
	}
	var sawCancel bool
	for _, ev := range inst.Trail() {
		if ev.Kind == EvCanceled {
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatal("no canceled event")
	}
	// Double cancel and post-finish cancel fail.
	if err := inst.Cancel(); err == nil {
		t.Error("double cancel accepted")
	}
	// Selecting work after cancellation fails (item gone).
	if err := inst.SelectWork("alice", 1); err == nil {
		t.Error("select after cancel accepted")
	}
}

func TestCancelBeforeStart(t *testing.T) {
	e := approvalEngine(t)
	inst, _ := e.CreateInstance("Approval", nil, nil)
	if err := inst.Cancel(); err == nil {
		t.Error("cancel before start accepted")
	}
}

// TestSelectWorkWrongInstancePreservesItem: selecting a work item through
// the wrong instance handle must fail without consuming the item (the
// other instance can still proceed).
func TestSelectWorkWrongInstancePreservesItem(t *testing.T) {
	e := approvalEngine(t)
	i1, _ := e.CreateInstance("Approval", nil, nil)
	i2, _ := e.CreateInstance("Approval", nil, nil)
	if err := i1.Start(); err != nil {
		t.Fatal(err)
	}
	if err := i2.Start(); err != nil {
		t.Fatal(err)
	}
	items := e.Worklists().List("alice")
	if len(items) != 2 {
		t.Fatalf("items = %d", len(items))
	}
	// items[0] belongs to i1; select it through i2.
	var i1Item int64
	for _, it := range items {
		if it.Instance == i1.ID() {
			i1Item = it.ID
		}
	}
	if err := i2.SelectWork("alice", i1Item); err == nil {
		t.Fatal("cross-instance selection accepted")
	}
	// The item survived and the right instance can still select it.
	if len(e.Worklists().List("alice")) != 2 {
		t.Fatal("cross-instance selection destroyed the work item")
	}
	if err := i1.SelectWork("alice", i1Item); err != nil {
		t.Fatal(err)
	}
	if !i1.Finished() {
		t.Fatal("i1 not finished")
	}
}
