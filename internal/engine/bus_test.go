package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// collectEvents drains a subscription after the run has completed.
func collectEvents(sub *obs.Subscription, bus *obs.Bus) []obs.Event {
	bus.Unsubscribe(sub)
	var out []obs.Event
	for ev := range sub.Events() {
		out = append(out, ev)
	}
	return out
}

func kindsOf(evs []obs.Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

func TestBusPublishesInstanceLifecycle(t *testing.T) {
	bus := obs.NewBus()
	sub := bus.Subscribe(256)
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()), WithBus(bus))
	if e.Bus() != bus {
		t.Fatal("Bus() accessor")
	}
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Chain", nil)

	evs := collectEvents(sub, bus)
	kinds := kindsOf(evs)
	want := []string{
		obs.EvInstanceCreated,
		obs.EvInstanceStarted,
		obs.EvActivityDispatch, obs.EvActivityFinished, // A
		obs.EvActivityDispatch, obs.EvActivityFinished, // B
		obs.EvActivityDispatch, obs.EvActivityFinished, // C
		obs.EvInstanceFinished,
	}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("event kinds:\n got %v\nwant %v", kinds, want)
	}
	if evs[0].Program != "Chain" {
		t.Fatalf("instance.created program = %q, want template name", evs[0].Program)
	}
	prevAt := int64(0)
	for i, ev := range evs {
		if ev.Instance != inst.ID() {
			t.Fatalf("event %d instance = %q, want %q", i, ev.Instance, inst.ID())
		}
		if ev.At < prevAt {
			t.Fatalf("event %d timestamp went backwards: %d < %d", i, ev.At, prevAt)
		}
		prevAt = ev.At
	}
	// Latency attribution: dispatches carry the queue wait, finishes the
	// program wall time; both are non-negative and the finish of A names
	// its path and program.
	fin := evs[3]
	if fin.Path != "A" || fin.Program != "ok" || fin.DurNs < 0 || fin.RC != 0 {
		t.Fatalf("activity.finished = %+v", fin)
	}
	if disp := evs[2]; disp.Path != "A" || disp.DurNs < 0 {
		t.Fatalf("activity.dispatch = %+v", disp)
	}
	if bus.Dropped() != 0 {
		t.Fatalf("dropped = %d", bus.Dropped())
	}
}

func TestBusPublishesRetryAndLoop(t *testing.T) {
	bus := obs.NewBus()
	sub := bus.Subscribe(256)
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()), WithBus(bus),
		WithSleep(func(d time.Duration) {}))
	fails := 2
	if err := e.RegisterProgram("flaky", ProgramFunc(func(inv *Invocation) error {
		if fails > 0 {
			fails--
			return Transient(fmt.Errorf("try again"))
		}
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(oneShotProcess("Flaky", "flaky",
		&model.RetryPolicy{MaxAttempts: 5, BackoffMS: 1}, 0)); err != nil {
		t.Fatal(err)
	}
	runToEnd(t, e, "Flaky", nil)

	var retries []obs.Event
	for _, ev := range collectEvents(sub, bus) {
		if ev.Kind == obs.EvActivityRetry {
			retries = append(retries, ev)
		}
	}
	if len(retries) != 2 {
		t.Fatalf("retry events = %d, want 2", len(retries))
	}
	if retries[0].N != 1 || retries[1].N != 2 {
		t.Fatalf("retry attempts = %d, %d", retries[0].N, retries[1].N)
	}
	if retries[0].DurNs <= 0 || retries[1].DurNs != 2*retries[0].DurNs {
		t.Fatalf("retry backoff = %d, %d (want exponential)", retries[0].DurNs, retries[1].DurNs)
	}
	if !strings.Contains(retries[0].Cause, "try again") {
		t.Fatalf("retry cause = %q", retries[0].Cause)
	}
}

// TestFlightRecorderCapturesForcedFailure is the PR's forced-failure
// acceptance check: after a fatal program failure, the flight recorder's
// JSONL dump must hold the failing instance's last events, ending in the
// instance.failed record (the bus mirror of the trail's EvFailed) with
// its cause.
func TestFlightRecorderCapturesForcedFailure(t *testing.T) {
	bus := obs.NewBus()
	rec := obs.NewRecorder(64)
	detach := bus.Attach(rec.Record)
	defer detach()
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()), WithBus(bus))
	if err := e.RegisterProcess(chainProcess("Doomed", "ok", "boom")); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Doomed", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("instance did not fail")
	}

	var buf bytes.Buffer
	if err := rec.DumpJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var dumped []obs.Event
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev obs.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		dumped = append(dumped, ev)
	}
	if len(dumped) == 0 {
		t.Fatal("empty dump")
	}
	// The tail must belong to the failing instance and include the
	// dispatch of the failing activity followed by instance.failed.
	last := dumped[len(dumped)-1]
	if last.Kind != obs.EvInstanceFailed || last.Instance != inst.ID() {
		t.Fatalf("last dumped event = %+v, want instance.failed for %s", last, inst.ID())
	}
	if last.Path != "B" || last.Program != "boom" || !strings.Contains(last.Cause, "infrastructure failure") {
		t.Fatalf("failure event lost its attribution: %+v", last)
	}
	var sawDispatchB bool
	for _, ev := range dumped {
		if ev.Kind == obs.EvActivityDispatch && ev.Path == "B" && ev.Instance == inst.ID() {
			sawDispatchB = true
		}
	}
	if !sawDispatchB {
		t.Fatal("dump lacks the failing activity's dispatch event")
	}
}

func TestBusPublishesCompensationEntry(t *testing.T) {
	bus := obs.NewBus()
	sub := bus.Subscribe(256)
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()), WithBus(bus))
	p := model.NewProcess("Saga")
	comp := &model.Graph{Activities: []*model.Activity{
		{Name: "undo", Kind: model.KindProgram, Program: "ok"},
	}}
	p.Activities = []*model.Activity{
		{Name: "Forward", Kind: model.KindProgram, Program: "ok"},
		{Name: "Compensation", Kind: model.KindBlock, Block: comp},
	}
	p.Control = []*model.ControlConnector{{From: "Forward", To: "Compensation"}}
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	runToEnd(t, e, "Saga", nil)
	var entered []obs.Event
	for _, ev := range collectEvents(sub, bus) {
		if ev.Kind == obs.EvCompensation {
			entered = append(entered, ev)
		}
	}
	if len(entered) != 1 || entered[0].Path != "Compensation" {
		t.Fatalf("compensation.entered events = %+v", entered)
	}
}

// TestFleetPublishWithSubscriberChurn runs a fleet while goroutines
// subscribe and unsubscribe aggressively — the engine-level companion of
// the obs-level churn test, exercised under -race by the CI race job.
func TestFleetPublishWithSubscriberChurn(t *testing.T) {
	bus := obs.NewBus()
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()), WithBus(bus))
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub := bus.Subscribe(4)
				for i := 0; i < 8; i++ {
					select {
					case <-sub.Events():
					default:
					}
				}
				bus.Unsubscribe(sub)
			}
		}()
	}
	res, err := e.RunFleet(FleetOptions{Process: "Chain", N: 24, Parallel: 4})
	close(stop)
	wg.Wait()
	if err != nil || res.Finished != 24 {
		t.Fatalf("fleet under churn: res=%+v err=%v", res, err)
	}
}

// TestFleetQueueTransitionEvents pins the fleet.* taxonomy: every
// instance is enqueued, activated and released exactly once.
func TestFleetQueueTransitionEvents(t *testing.T) {
	bus := obs.NewBus()
	sub := bus.Subscribe(4096)
	e := newTestEngine(t, WithMetrics(obs.NewRegistry()), WithBus(bus))
	if err := e.RegisterProcess(chainProcess("Chain")); err != nil {
		t.Fatal(err)
	}
	const n = 8
	if _, err := e.RunFleet(FleetOptions{Process: "Chain", N: n, Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range collectEvents(sub, bus) {
		counts[ev.Kind]++
	}
	for _, kind := range []string{obs.EvFleetEnqueue, obs.EvFleetActive, obs.EvFleetDone} {
		if counts[kind] != n {
			t.Fatalf("%s events = %d, want %d (all: %v)", kind, counts[kind], n, counts)
		}
	}
	if bus.Dropped() != 0 {
		t.Fatalf("dropped = %d with a %d-deep subscriber", bus.Dropped(), 4096)
	}
}
