package engine

import (
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/wal"
)

// Recover rebuilds a crashed process instance from its WAL records and
// resumes it (§3.3: "Once the failures have been repaired, the process
// execution is resumed from the point where the failure occurred").
//
// Navigation is deterministic, so recovery re-runs the instance from the
// beginning while substituting logged outputs for the program invocations
// that had completed before the crash; programs whose completion was never
// logged are re-executed from the beginning — the paper's caveat about
// activities that are not failure atomic. The resumed instance writes a
// fresh log (newLog) covering the whole execution, so recovery can itself
// be recovered.
//
// The engine must have the same process templates and programs registered
// as the crashed one.
func Recover(e *Engine, records []wal.Record, newLog wal.Log) (*Instance, error) {
	if len(records) == 0 {
		return nil, errors.New("engine: empty log, nothing to recover")
	}
	created := records[0]
	if created.Type != wal.RecCreated {
		return nil, fmt.Errorf("engine: log does not begin with a %q record", wal.RecCreated)
	}
	p, ok := e.Process(created.Process)
	if !ok {
		return nil, fmt.Errorf("engine: process %q of the crashed instance is not registered", created.Process)
	}
	if newLog == nil {
		newLog = &wal.MemLog{}
	}
	in, err := p.Types.NewContainer(p.In())
	if err != nil {
		return nil, err
	}
	if err := in.Restore(created.Values); err != nil {
		return nil, fmt.Errorf("engine: restoring input container: %w", err)
	}

	inst := newInstance(e, created.Instance, p, in, newLog)
	inst.replay = make(map[string]map[int]map[string]expr.Value)
	for _, rec := range records[1:] {
		if rec.Instance != created.Instance {
			return nil, fmt.Errorf("engine: log mixes instances %q and %q", created.Instance, rec.Instance)
		}
		if rec.Type != wal.RecFinishedActivity {
			continue
		}
		byIter := inst.replay[rec.Path]
		if byIter == nil {
			byIter = make(map[int]map[string]expr.Value)
			inst.replay[rec.Path] = byIter
		}
		byIter[rec.Iter] = rec.Values
	}
	if err := inst.Start(); err != nil {
		return inst, err
	}
	return inst, nil
}
