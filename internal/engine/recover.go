package engine

import (
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/wal"
)

// Recover rebuilds a crashed process instance from its WAL records and
// resumes it (§3.3: "Once the failures have been repaired, the process
// execution is resumed from the point where the failure occurred").
//
// Navigation is deterministic, so recovery re-runs the instance from the
// beginning while substituting logged outputs for the program invocations
// that had completed before the crash; programs whose completion was never
// logged are re-executed from the beginning — the paper's caveat about
// activities that are not failure atomic. The resumed instance writes a
// fresh log (newLog) covering the whole execution, so recovery can itself
// be recovered.
//
// The engine must have the same process templates and programs registered
// as the crashed one.
func Recover(e *Engine, records []wal.Record, newLog wal.Log) (*Instance, error) {
	if len(records) == 0 {
		return nil, errors.New("engine: empty log, nothing to recover")
	}
	created := records[0]
	if created.Type != wal.RecCreated {
		return nil, fmt.Errorf("engine: log does not begin with a %q record", wal.RecCreated)
	}
	p, ok := e.Process(created.Process)
	if !ok {
		return nil, fmt.Errorf("engine: process %q of the crashed instance is not registered", created.Process)
	}
	if newLog == nil {
		newLog = &wal.MemLog{}
	}
	in, err := p.Types.NewContainer(p.In())
	if err != nil {
		return nil, err
	}
	if err := in.Restore(created.Values); err != nil {
		return nil, fmt.Errorf("engine: restoring input container: %w", err)
	}

	e.metrics.recReplayed.Add(int64(len(records)))
	inst := newInstance(e, created.Instance, p, in, newLog)
	inst.replay = make(map[string]map[int]map[string]expr.Value)
	for _, rec := range records[1:] {
		if rec.Instance != created.Instance {
			return nil, fmt.Errorf("engine: log mixes instances %q and %q", created.Instance, rec.Instance)
		}
		if rec.Type != wal.RecFinishedActivity {
			continue
		}
		byIter := inst.replay[rec.Path]
		if byIter == nil {
			byIter = make(map[int]map[string]expr.Value)
			inst.replay[rec.Path] = byIter
		}
		byIter[rec.Iter] = rec.Values
	}
	if err := inst.Start(); err != nil {
		return inst, err
	}
	return inst, nil
}

// RecoverAll recovers every instance found in a log that interleaves
// records from a whole fleet — what a shared GroupCommitLog leaves
// behind. The records are demultiplexed by instance ID (each instance
// appends sequentially, so its subsequence is causally ordered and
// begins with its RecCreated record even though the fleet's records
// interleave) and each instance is recovered in order of first
// appearance via Recover. newLog, when non-nil, supplies the fresh log
// for each recovered instance (nil gives each an in-memory log).
//
// Recovery stops at the first instance that fails to recover, returning
// the instances recovered so far alongside the error.
func RecoverAll(e *Engine, records []wal.Record, newLog func(instanceID string) wal.Log) ([]*Instance, error) {
	byInst := make(map[string][]wal.Record)
	var order []string
	for _, rec := range records {
		if rec.Instance == "" {
			return nil, errors.New("engine: record without an instance ID")
		}
		if _, seen := byInst[rec.Instance]; !seen {
			order = append(order, rec.Instance)
		}
		byInst[rec.Instance] = append(byInst[rec.Instance], rec)
	}
	out := make([]*Instance, 0, len(order))
	for _, id := range order {
		var log wal.Log
		if newLog != nil {
			log = newLog(id)
		}
		inst, err := Recover(e, byInst[id], log)
		if err != nil {
			return out, fmt.Errorf("engine: recovering %s: %w", id, err)
		}
		out = append(out, inst)
	}
	return out, nil
}
