package engine

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Scheduler is a bounded worker pool with backpressure: Submit blocks
// while all workers are busy, so a producer can never race ahead of the
// pool's capacity. It is the fleet-level counterpart of the per-instance
// program pool (WithConcurrency) — that pool parallelizes activities
// inside one instance, the Scheduler parallelizes whole instances.
//
// A Scheduler is one-shot: Submit until done, then Wait; submitting
// after Wait has returned is a programming error.
type Scheduler struct {
	slots chan struct{}
	wg    sync.WaitGroup
}

// NewScheduler returns a pool of n workers (n < 1 is treated as 1).
func NewScheduler(n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	return &Scheduler{slots: make(chan struct{}, n)}
}

// Submit runs fn on a pool worker, blocking until a worker is free —
// the fleet's admission backpressure.
func (s *Scheduler) Submit(fn func()) {
	s.slots <- struct{}{}
	s.wg.Add(1)
	go func() {
		defer func() {
			<-s.slots
			s.wg.Done()
		}()
		fn()
	}()
}

// Wait blocks until every submitted task has finished.
func (s *Scheduler) Wait() { s.wg.Wait() }

// FleetOptions configures one RunFleet call.
type FleetOptions struct {
	// Process is the registered process template every instance runs.
	Process string
	// N is the fleet size (number of instances). Must be >= 1.
	N int
	// Parallel bounds how many instances execute at once (default 1).
	Parallel int
	// Input, when non-nil, supplies the input container values for the
	// i-th instance (0-based); nil runs every instance on defaults.
	Input func(i int) map[string]expr.Value
	// Log is the shared navigation log for the whole fleet — typically a
	// *wal.GroupCommitLog so concurrent instances share fsyncs. nil gives
	// each instance its own in-memory log. A shared on-disk log
	// interleaves instances; RecoverAll demultiplexes it.
	Log wal.Log
}

// FleetResult aggregates one fleet execution.
type FleetResult struct {
	// Launched counts instances actually created (== N unless creation
	// failed mid-fleet).
	Launched int
	// Finished counts instances that ran to normal completion.
	Finished int
	// Failed counts instances that stopped on an error or degraded to
	// status "failed" (Launched == Finished + Failed).
	Failed int
	// Elapsed is the wall-clock time from first admission to last
	// completion.
	Elapsed time.Duration
	// Instances holds every launched instance, in launch order.
	Instances []*Instance
	// Err is the first instance error observed (nil when Failed == 0).
	Err error
}

// RunFleet executes a fleet of N instances of one process against a
// bounded Scheduler of Parallel workers and blocks until the whole fleet
// has drained. This is the throughput shape of the paper's Figure 5
// pipeline — "many concurrent instances of an executable template" — as
// one call. Admission has backpressure (never more than Parallel
// instances in flight) and is observable: engine.fleet.queue.depth
// gauges instances admitted but waiting for a worker, engine.fleet.active
// gauges instances executing.
//
// The returned error reports configuration problems (unknown process,
// bad N); per-instance failures land in FleetResult.Failed / Err with
// the fleet running to completion regardless.
func (e *Engine) RunFleet(opts FleetOptions) (*FleetResult, error) {
	if _, ok := e.Process(opts.Process); !ok {
		return nil, fmt.Errorf("engine: unknown process %q", opts.Process)
	}
	if opts.N < 1 {
		return nil, fmt.Errorf("engine: fleet size %d, want >= 1", opts.N)
	}
	parallel := opts.Parallel
	if parallel < 1 {
		parallel = 1
	}

	sched := NewScheduler(parallel)
	res := &FleetResult{Instances: make([]*Instance, 0, opts.N)}
	var resMu sync.Mutex
	start := time.Now()
	for i := 0; i < opts.N; i++ {
		var input map[string]expr.Value
		if opts.Input != nil {
			input = opts.Input(i)
		}
		inst, err := e.CreateInstance(opts.Process, input, opts.Log)
		if err != nil {
			resMu.Lock()
			res.Failed++
			if res.Err == nil {
				res.Err = err
			}
			resMu.Unlock()
			continue
		}
		resMu.Lock()
		res.Launched++
		res.Instances = append(res.Instances, inst)
		resMu.Unlock()
		e.metrics.fleetQueue.Add(1)
		if e.bus.Active() {
			e.bus.Publish(obs.Event{Kind: obs.EvFleetEnqueue, Instance: inst.ID(),
				N: e.metrics.fleetQueue.Value()})
		}
		sched.Submit(func() {
			e.metrics.fleetQueue.Add(-1)
			e.metrics.fleetActive.Add(1)
			if e.bus.Active() {
				e.bus.Publish(obs.Event{Kind: obs.EvFleetActive, Instance: inst.ID(),
					N: e.metrics.fleetActive.Value()})
			}
			defer func() {
				e.metrics.fleetActive.Add(-1)
				if e.bus.Active() {
					e.bus.Publish(obs.Event{Kind: obs.EvFleetDone, Instance: inst.ID(),
						N: e.metrics.fleetActive.Value()})
				}
			}()
			err := inst.Start()
			if err == nil && inst.Finished() {
				resMu.Lock()
				res.Finished++
				resMu.Unlock()
				return
			}
			if err == nil {
				err = inst.Err()
			}
			if err == nil {
				status, cause := inst.StatusInfo()
				err = fmt.Errorf("engine: instance %s ended %s (%s)", inst.ID(), status, cause)
			}
			resMu.Lock()
			res.Failed++
			if res.Err == nil {
				res.Err = err
			}
			resMu.Unlock()
		})
	}
	sched.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}
