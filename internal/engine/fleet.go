package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/wal"
)

// ErrOverloaded is returned by TrySubmit when the admission queue is
// full: the newest work is rejected (shed) rather than queued, so under
// sustained overload the work that is admitted still sees bounded queue
// wait — the p99 of accepted work stays near the no-overload baseline
// instead of growing with the backlog (measured by the B12 table in
// internal/sim).
var ErrOverloaded = errors.New("engine: overloaded, admission queue full")

// Scheduler is a bounded worker pool with admission control. Admission
// has two stages: an admission slot (worker slots plus an optional
// bounded queue, see NewBoundedScheduler) and a worker slot. Submit
// blocks for admission — classic backpressure, a producer can never race
// ahead of the pool — while TrySubmit rejects with ErrOverloaded when the
// queue is full (load shedding, reject-newest) and SubmitCtx abandons the
// wait when its context is canceled. It is the fleet-level counterpart of
// the per-instance program pool (WithConcurrency) — that pool
// parallelizes activities inside one instance, the Scheduler parallelizes
// whole instances.
//
// A Scheduler is one-shot: Submit until done, then Wait; submitting
// after Wait has returned is a programming error.
type Scheduler struct {
	workers chan struct{} // execution slots
	admit   chan struct{} // admission slots: workers + queue bound
	wg      sync.WaitGroup
	shed    atomic.Int64
}

// NewScheduler returns a pool of n workers with no admission queue
// beyond the worker slots (n < 1 is treated as 1): Submit blocks while
// all workers are busy, exactly the pre-admission-control behavior.
func NewScheduler(n int) *Scheduler {
	return NewBoundedScheduler(n, 0)
}

// NewBoundedScheduler returns a pool of workers execution slots whose
// admission queue holds at most maxQueue tasks beyond the ones
// executing. A full queue blocks Submit, rejects TrySubmit with
// ErrOverloaded, and leaves SubmitCtx waiting until space or
// cancellation.
func NewBoundedScheduler(workers, maxQueue int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Scheduler{
		workers: make(chan struct{}, workers),
		admit:   make(chan struct{}, workers+maxQueue),
	}
}

// Admit blocks until an admission slot is free — Submit's backpressure
// as a standalone step, for callers that must reserve admission before
// the task's resources exist (RunFleet reserves before creating the
// instance so a shed instance never logs a WAL record). The reservation
// is consumed by Go or returned with Unadmit.
func (s *Scheduler) Admit() { s.admit <- struct{}{} }

// TryAdmit reserves an admission slot without blocking. false means the
// queue is full; the rejection is counted (Sheds).
func (s *Scheduler) TryAdmit() bool {
	select {
	case s.admit <- struct{}{}:
		return true
	default:
		s.shed.Add(1)
		return false
	}
}

// AdmitStop is Admit that abandons the wait when stop is closed; it
// reports whether admission was granted.
func (s *Scheduler) AdmitStop(stop <-chan struct{}) bool {
	select {
	case s.admit <- struct{}{}:
		return true
	case <-stop:
		return false
	}
}

// Unadmit returns an unused admission reservation (e.g. the task's
// setup failed after TryAdmit succeeded).
func (s *Scheduler) Unadmit() { <-s.admit }

// Go runs fn on a pool worker under a reservation previously made with
// Admit, TryAdmit or AdmitStop.
func (s *Scheduler) Go(fn func()) {
	s.wg.Add(1)
	go func() {
		s.workers <- struct{}{}
		defer func() {
			<-s.workers
			<-s.admit
			s.wg.Done()
		}()
		fn()
	}()
}

// Submit runs fn on a pool worker, blocking until admission is granted —
// the fleet's admission backpressure.
func (s *Scheduler) Submit(fn func()) {
	s.Admit()
	s.Go(fn)
}

// TrySubmit runs fn on a pool worker if an admission slot is free and
// returns ErrOverloaded otherwise — the load-shedding admission path.
func (s *Scheduler) TrySubmit(fn func()) error {
	if !s.TryAdmit() {
		return ErrOverloaded
	}
	s.Go(fn)
	return nil
}

// SubmitCtx is Submit that abandons the admission wait when ctx is
// canceled, returning the context's error; fn is then never started and
// no goroutine leaks.
func (s *Scheduler) SubmitCtx(ctx context.Context, fn func()) error {
	select {
	case s.admit <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.Go(fn)
	return nil
}

// Sheds reports how many submissions were rejected with ErrOverloaded.
func (s *Scheduler) Sheds() int64 { return s.shed.Load() }

// Wait blocks until every submitted task has finished.
func (s *Scheduler) Wait() { s.wg.Wait() }

// FleetOptions configures one RunFleet call.
type FleetOptions struct {
	// Process is the registered process template every instance runs.
	Process string
	// N is the fleet size (number of instances). Must be >= 1.
	N int
	// Parallel bounds how many instances execute at once (default 1).
	Parallel int
	// Input, when non-nil, supplies the input container values for the
	// i-th instance (0-based); nil runs every instance on defaults.
	Input func(i int) map[string]expr.Value
	// Log is the shared navigation log for the whole fleet — typically a
	// *wal.GroupCommitLog so concurrent instances share fsyncs. nil gives
	// each instance its own in-memory log. A shared on-disk log
	// interleaves instances; RecoverAll demultiplexes it.
	Log wal.Log
	// MaxQueue bounds the admission queue beyond the Parallel worker
	// slots (0 = no queue). Without Shed a full queue blocks admission
	// (backpressure); with Shed it rejects.
	MaxQueue int
	// Shed enables load shedding: an instance arriving at a full
	// admission queue is rejected (counted in FleetResult.Shed, the
	// engine.fleet.shed counter, and a fleet.shed bus event) instead of
	// waiting. The shed instance is never created, so it leaves no WAL
	// records.
	Shed bool
	// Stop, when non-nil, is a graceful-drain signal: once closed,
	// RunFleet stops admitting new instances — in-flight ones run to
	// completion, the rest are never created — and returns normally.
	Stop <-chan struct{}
}

// FleetResult aggregates one fleet execution.
type FleetResult struct {
	// Launched counts instances actually created (== N unless creation
	// failed mid-fleet).
	Launched int
	// Finished counts instances that ran to normal completion.
	Finished int
	// Failed counts instances that stopped on an error or degraded to
	// status "failed" (Launched == Finished + Failed).
	Failed int
	// Elapsed is the wall-clock time from first admission to last
	// completion.
	Elapsed time.Duration
	// Instances holds every launched instance, in launch order.
	Instances []*Instance
	// Shed counts instances rejected at admission (Shed option). They are
	// not part of Launched.
	Shed int
	// Stopped reports that a Stop signal cut admission short; instances
	// never admitted appear in no other count.
	Stopped bool
	// Err is the first instance error observed (nil when Failed == 0).
	Err error
}

// RunFleet executes a fleet of N instances of one process against a
// bounded Scheduler of Parallel workers and blocks until the whole fleet
// has drained. This is the throughput shape of the paper's Figure 5
// pipeline — "many concurrent instances of an executable template" — as
// one call. Admission has backpressure (never more than Parallel
// instances in flight, at most MaxQueue more waiting) and is observable:
// engine.fleet.queue.depth gauges instances admitted but waiting for a
// worker, engine.fleet.active gauges instances executing,
// engine.fleet.shed counts instances rejected under the Shed policy. A
// Stop channel drains the fleet gracefully (see FleetOptions.Stop).
//
// The returned error reports configuration problems (unknown process,
// bad N); per-instance failures land in FleetResult.Failed / Err with
// the fleet running to completion regardless.
func (e *Engine) RunFleet(opts FleetOptions) (*FleetResult, error) {
	if _, ok := e.Process(opts.Process); !ok {
		return nil, fmt.Errorf("engine: unknown process %q", opts.Process)
	}
	if opts.N < 1 {
		return nil, fmt.Errorf("engine: fleet size %d, want >= 1", opts.N)
	}
	parallel := opts.Parallel
	if parallel < 1 {
		parallel = 1
	}

	sched := NewBoundedScheduler(parallel, opts.MaxQueue)
	res := &FleetResult{Instances: make([]*Instance, 0, opts.N)}
	var resMu sync.Mutex
	start := time.Now()
	for i := 0; i < opts.N; i++ {
		// Admission is reserved before the instance exists: a shed or
		// drained instance must leave no trace (no WAL record, no ID).
		if opts.Stop != nil {
			select {
			case <-opts.Stop:
				res.Stopped = true
			default:
			}
			if res.Stopped {
				break
			}
		}
		if opts.Shed {
			if !sched.TryAdmit() {
				res.Shed++
				e.metrics.fleetShed.Inc()
				if e.bus.Active() {
					e.bus.Publish(obs.Event{Kind: obs.EvFleetShed, N: int64(res.Shed)})
				}
				continue
			}
		} else if opts.Stop != nil {
			if !sched.AdmitStop(opts.Stop) {
				res.Stopped = true
				break
			}
		} else {
			sched.Admit()
		}
		var input map[string]expr.Value
		if opts.Input != nil {
			input = opts.Input(i)
		}
		inst, err := e.CreateInstance(opts.Process, input, opts.Log)
		if err != nil {
			sched.Unadmit()
			resMu.Lock()
			res.Failed++
			if res.Err == nil {
				res.Err = err
			}
			resMu.Unlock()
			continue
		}
		resMu.Lock()
		res.Launched++
		res.Instances = append(res.Instances, inst)
		resMu.Unlock()
		e.metrics.fleetQueue.Add(1)
		if e.bus.Active() {
			e.bus.Publish(obs.Event{Kind: obs.EvFleetEnqueue, Instance: inst.ID(),
				N: e.metrics.fleetQueue.Value()})
		}
		sched.Go(func() {
			e.metrics.fleetQueue.Add(-1)
			e.metrics.fleetActive.Add(1)
			if e.bus.Active() {
				e.bus.Publish(obs.Event{Kind: obs.EvFleetActive, Instance: inst.ID(),
					N: e.metrics.fleetActive.Value()})
			}
			defer func() {
				e.metrics.fleetActive.Add(-1)
				if e.bus.Active() {
					e.bus.Publish(obs.Event{Kind: obs.EvFleetDone, Instance: inst.ID(),
						N: e.metrics.fleetActive.Value()})
				}
			}()
			err := inst.Start()
			if err == nil && inst.Finished() {
				resMu.Lock()
				res.Finished++
				resMu.Unlock()
				return
			}
			if err == nil {
				err = inst.Err()
			}
			if err == nil {
				status, cause := inst.StatusInfo()
				err = fmt.Errorf("engine: instance %s ended %s (%s)", inst.ID(), status, cause)
			}
			resMu.Lock()
			res.Failed++
			if res.Err == nil {
				res.Err = err
			}
			resMu.Unlock()
		})
	}
	sched.Wait()
	res.Elapsed = time.Since(start)
	return res, nil
}
