package engine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wal"
)

func counter(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	return reg.Counter(name).Value()
}

// TestMetricsChainRun pins the exact metric counts of a clean A -> B -> C
// run: every number here is derivable from the navigation semantics, so a
// drift means either the instrumentation or the engine changed.
func TestMetricsChainRun(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, WithMetrics(reg))
	if e.Metrics() != reg {
		t.Fatal("Metrics() accessor broken")
	}
	if err := e.RegisterProcess(chainProcess("P")); err != nil {
		t.Fatal(err)
	}
	log := &wal.MemLog{}
	inst, err := e.CreateInstance("P", nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{
		"engine.instances.created":     1,
		"engine.instances.finished":    1,
		"engine.instances.failed":      0,
		"engine.navigation.steps":      3, // A, B, C
		"engine.program.invocations":   3,
		"engine.program.committed":     3,
		"engine.program.aborted":       0,
		"engine.program.retries":       0,
		"engine.program.panics":        0,
		"engine.deadpath.eliminations": 0,
		"engine.loops":                 0,
		// created + 3x(started+finished) + done
		"engine.wal.appends": 8,
	}
	for name, w := range want {
		if got := counter(t, reg, name); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
	if int64(log.Len()) != counter(t, reg, "engine.wal.appends") {
		t.Errorf("wal.appends = %d but log has %d records",
			counter(t, reg, "engine.wal.appends"), log.Len())
	}
	if d := reg.Gauge("engine.queue.depth"); d.Value() != 0 || d.Max() < 1 {
		t.Errorf("queue depth = %d max %d, want 0 with max >= 1", d.Value(), d.Max())
	}
	if h := reg.Snapshot().Histograms["engine.program.ns"]; h.Count != 3 {
		t.Errorf("program.ns count = %d, want 3", h.Count)
	}
}

// TestMetricsAbortDeadPathAndLoop covers the outcome split: an aborting
// activity dead-path-eliminates its successors, and an exit-condition
// loop re-executes its activity.
func TestMetricsAbortDeadPathAndLoop(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, WithMetrics(reg))
	// A aborts -> B and C are eliminated.
	if err := e.RegisterProcess(chainProcess("Abort", "abort")); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Abort", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if got := counter(t, reg, "engine.program.aborted"); got != 1 {
		t.Errorf("aborted = %d, want 1", got)
	}
	if got := counter(t, reg, "engine.deadpath.eliminations"); got != 2 {
		t.Errorf("deadpath.eliminations = %d, want 2", got)
	}

	// An activity whose exit condition fails once: two executions, one loop.
	loop := model.NewProcess("Loop")
	loop.Activities = append(loop.Activities, &model.Activity{
		Name: "L", Kind: model.KindProgram, Program: "iter",
		Exit: expr.MustParse("RC = 0"),
	})
	if err := e.RegisterProgram("iter", ProgramFunc(func(inv *Invocation) error {
		if inv.Iter == 0 {
			inv.Out.SetRC(1)
		} else {
			inv.Out.SetRC(0)
		}
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(loop); err != nil {
		t.Fatal(err)
	}
	inst, err = e.CreateInstance("Loop", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if got := counter(t, reg, "engine.loops"); got != 1 {
		t.Errorf("loops = %d, want 1", got)
	}
}

// TestMetricsRetriesBackoffAndPanic pins the fault-tolerance metrics: a
// program that fails transiently twice before committing yields two
// retries and two backoff observations; a panicking program counts a
// panic and a failed invocation.
func TestMetricsRetriesBackoffAndPanic(t *testing.T) {
	reg := obs.NewRegistry()
	var slept []time.Duration
	e := newTestEngine(t,
		WithMetrics(reg),
		WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	calls := 0
	if err := e.RegisterProgram("flaky", ProgramFunc(func(inv *Invocation) error {
		calls++
		if calls < 3 {
			return Transient(errors.New("transient outage"))
		}
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	p := model.NewProcess("Flaky")
	p.Activities = append(p.Activities, &model.Activity{
		Name: "F", Kind: model.KindProgram, Program: "flaky",
		Retry: &model.RetryPolicy{MaxAttempts: 3, BackoffMS: 10},
	})
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst, err := e.CreateInstance("Flaky", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if got := counter(t, reg, "engine.program.retries"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if got := counter(t, reg, "engine.program.committed"); got != 1 {
		t.Errorf("committed = %d, want 1", got)
	}
	bo := reg.Snapshot().Histograms["engine.program.backoff_ns"]
	if bo.Count != 2 || bo.SumNs != (10*time.Millisecond+20*time.Millisecond).Nanoseconds() {
		t.Errorf("backoff_ns count=%d sum=%d, want 2 observations of 10ms+20ms", bo.Count, bo.SumNs)
	}
	if len(slept) != 2 {
		t.Errorf("sleeps = %v, want 2", slept)
	}

	// Panic: fatal, no retry.
	if err := e.RegisterProgram("kaboom", ProgramFunc(func(inv *Invocation) error {
		panic("kaboom")
	})); err != nil {
		t.Fatal(err)
	}
	pp := model.NewProcess("Panic")
	pp.Activities = append(pp.Activities, &model.Activity{Name: "K", Kind: model.KindProgram, Program: "kaboom"})
	if err := e.RegisterProcess(pp); err != nil {
		t.Fatal(err)
	}
	inst, err = e.CreateInstance("Panic", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err == nil {
		t.Fatal("panicking instance did not fail")
	}
	if got := counter(t, reg, "engine.program.panics"); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	if got := counter(t, reg, "engine.program.failed"); got != 1 {
		t.Errorf("program.failed = %d, want 1", got)
	}
	if got := counter(t, reg, "engine.instances.failed"); got != 1 {
		t.Errorf("instances.failed = %d, want 1", got)
	}
}

// TestTraceFromTrail checks the span tree derived from a finished chain
// run: instance root, one closed span per activity, rc attributes, and a
// failure trace carrying the cause.
func TestTraceFromTrail(t *testing.T) {
	clock := int64(0)
	e := newTestEngine(t, WithClock(func() int64 { clock++; return clock }))
	if err := e.RegisterProcess(chainProcess("P")); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "P", nil)
	tr := inst.Trace()
	if tr.TraceID != inst.ID() || tr.Process != "P" {
		t.Fatalf("trace header: %+v", tr)
	}
	root := tr.Root
	if root.Status != "ok" || root.Kind != "instance" || len(root.Children) != 3 {
		t.Fatalf("root: status=%s children=%d", root.Status, len(root.Children))
	}
	for i, name := range []string{"A", "B", "C"} {
		sp := root.Children[i]
		if sp.Name != name || sp.Status != "ok" || sp.Attrs["rc"] != "0" || sp.Attrs["program"] != "ok" {
			t.Errorf("span %d: %+v", i, sp)
		}
		if sp.End < sp.Start || sp.Duration() < 0 {
			t.Errorf("span %s: start=%d end=%d", name, sp.Start, sp.End)
		}
	}
	// Logical clock strictly increases, so spans must be ordered.
	if !(root.Start < root.Children[0].Start && root.Children[0].End <= root.Children[1].Start) {
		t.Errorf("span timing out of order: %v", tr.Render())
	}
	if !strings.Contains(tr.Render(), "A [activity]") {
		t.Errorf("render: %s", tr.Render())
	}

	// Failed run: the failing activity's span records the cause.
	if err := e.RegisterProcess(chainProcess("F", "ok", "boom")); err != nil {
		t.Fatal(err)
	}
	inst2, err := e.CreateInstance("F", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst2.Start(); err == nil {
		t.Fatal("expected failure")
	}
	tr2 := inst2.Trace()
	if tr2.Root.Status != "failed" || tr2.Root.Attrs["cause"] == "" {
		t.Fatalf("failed root: %+v", tr2.Root)
	}
	var failedSpan *obs.Span
	for _, sp := range tr2.Root.Children {
		if sp.Name == "B" {
			failedSpan = sp
		}
	}
	if failedSpan == nil || failedSpan.Status != "failed" || !strings.Contains(failedSpan.Attrs["cause"], "infrastructure failure") {
		t.Fatalf("failed span: %+v", failedSpan)
	}
}

// TestTraceNesting checks that block member executions nest under the
// block activity's span.
func TestTraceNesting(t *testing.T) {
	e := newTestEngine(t)
	inner := &model.Graph{}
	inner.Activities = append(inner.Activities, &model.Activity{Name: "I", Kind: model.KindProgram, Program: "ok"})
	p := model.NewProcess("Nested")
	p.Activities = append(p.Activities, &model.Activity{Name: "Blk", Kind: model.KindBlock, Block: inner})
	if err := e.RegisterProcess(p); err != nil {
		t.Fatal(err)
	}
	inst := runToEnd(t, e, "Nested", nil)
	tr := inst.Trace()
	if len(tr.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1 (the block)", len(tr.Root.Children))
	}
	blk := tr.Root.Children[0]
	if blk.Name != "Blk" || len(blk.Children) != 1 || blk.Children[0].Path != "Blk#0/I" {
		t.Fatalf("block span: %+v children %+v", blk, blk.Children)
	}
}
