package engine

import (
	"sync"

	"repro/internal/obs"
)

// This file wires overload protection around program invocation: circuit
// breakers (one per registered program, i.e. per resource manager) and a
// global retry-token budget. Both are injected — the engine defines only
// the seams — so the policy lives with its owner (rm.Breaker implements
// the breaker automaton; rm.BreakerSet builds the factory) and the
// engine's deterministic navigation stays dependency-free.

// Breaker is the engine's view of a per-program circuit breaker. Allow
// is consulted before every invocation attempt: a non-nil error fails
// the attempt fast without invoking the program (the error is treated as
// transient, so the activity's retry policy — backoff, attempts, the
// retry budget — still applies and a later attempt can pass once the
// breaker half-opens). Record is fed every attempt's infrastructure
// outcome; a transactional abort (RC != 0) is a successful invocation
// and is recorded as success. rm.Breaker satisfies the interface.
type Breaker interface {
	Allow() error
	Record(failure bool)
}

// WithBreakerFactory installs a circuit-breaker factory: the engine
// calls it once per distinct program name (lazily, at first invocation)
// and consults the returned breaker around every attempt of that
// program. A nil return from the factory leaves that program
// unprotected. See rm.NewBreakerSet for the standard implementation,
// which also publishes breaker.* transition events and maintains the
// engine.breaker.* metrics.
func WithBreakerFactory(f func(program string) Breaker) Option {
	return func(e *Engine) { e.breakerFactory = f }
}

// WithRetryBudget attaches a global retry-token budget: once the fleet's
// recent retry volume exhausts it, further transient failures fail their
// activity instead of retrying (counted by engine.retry.forgone and a
// retry.exhausted event). The budget may be shared across engines.
func WithRetryBudget(b *RetryBudget) Option {
	return func(e *Engine) { e.retryBudget = b }
}

// breakerFor returns the (lazily created) breaker guarding program, or
// nil when breakers are not configured.
func (e *Engine) breakerFor(program string) Breaker {
	if e.breakerFactory == nil {
		return nil
	}
	e.breakerMu.Lock()
	defer e.breakerMu.Unlock()
	if e.breakers == nil {
		e.breakers = make(map[string]Breaker)
	}
	br, ok := e.breakers[program]
	if !ok {
		br = e.breakerFactory(program)
		e.breakers[program] = br
	}
	return br
}

// RetryBudget is a global token bucket damping retry storms: every
// successful invocation deposits DepositRatio tokens (capped at the
// bucket's capacity), every retry withdraws one. Under isolated
// transient failures the bucket stays near full and retries proceed as
// usual; under correlated failure — a dead resource manager failing
// every instance at once — the bucket drains and further retries are
// forgone, so the workers spend their time on instances that can still
// make progress instead of synchronized backoff-and-fail cycles.
//
// RetryBudget is safe for concurrent use and may be shared by several
// engines (one budget per host is the deployment shape that stops
// cross-engine storms).
type RetryBudget struct {
	mu       sync.Mutex
	capacity float64
	ratio    float64
	tokens   float64
}

// NewRetryBudget returns a full bucket holding capacity tokens that
// refills at depositRatio tokens per successful invocation. capacity < 1
// is treated as 1; depositRatio <= 0 defaults to 0.1 (one retry earned
// per ten successes — the classic 10% retry-overhead ceiling).
func NewRetryBudget(capacity int, depositRatio float64) *RetryBudget {
	if capacity < 1 {
		capacity = 1
	}
	if depositRatio <= 0 {
		depositRatio = 0.1
	}
	return &RetryBudget{
		capacity: float64(capacity),
		ratio:    depositRatio,
		tokens:   float64(capacity),
	}
}

// Deposit credits one successful invocation.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.capacity {
		b.tokens = b.capacity
	}
	b.mu.Unlock()
}

// Withdraw takes one retry token, reporting false (and taking nothing)
// when the budget is exhausted.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Remaining reports the whole tokens left.
func (b *RetryBudget) Remaining() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return int(b.tokens)
}

// recordRetryBudgetGauge mirrors the budget into the engine.retry.budget
// gauge after a deposit or withdrawal.
func (e *Engine) recordRetryBudgetGauge() {
	if e.retryBudget != nil {
		e.metrics.retryBudget.Set(int64(e.retryBudget.Remaining()))
	}
}

// publishRetryExhausted emits the retry.exhausted event for a forgone
// retry of program at path.
func (inst *Instance) publishRetryExhausted(path, program string, attempt int) {
	inst.eng.metrics.retriesForgone.Inc()
	if bus := inst.eng.bus; bus.Active() {
		bus.Publish(obs.Event{Kind: obs.EvRetryExhausted, Instance: inst.id,
			Path: path, Program: program, N: int64(attempt)})
	}
}
