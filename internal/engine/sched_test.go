package engine

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// A bounded scheduler rejects the newest work once the admission queue
// (workers + MaxQueue) is full, and counts the rejections.
func TestSchedulerTrySubmitSheds(t *testing.T) {
	s := NewBoundedScheduler(1, 1)
	gate := make(chan struct{})
	if err := s.TrySubmit(func() { <-gate }); err != nil {
		t.Fatalf("first admission: %v", err)
	}
	if err := s.TrySubmit(func() { <-gate }); err != nil {
		t.Fatalf("queued admission: %v", err)
	}
	if err := s.TrySubmit(func() { t.Error("shed task ran") }); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded TrySubmit = %v, want ErrOverloaded", err)
	}
	if got := s.Sheds(); got != 1 {
		t.Fatalf("Sheds = %d, want 1", got)
	}
	close(gate)
	s.Wait()
}

// SubmitCtx abandons the admission wait on cancellation without starting
// the task or leaking a goroutine.
func TestSchedulerSubmitCtxCancel(t *testing.T) {
	s := NewBoundedScheduler(1, 0)
	gate := make(chan struct{})
	s.Submit(func() { <-gate })

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.SubmitCtx(ctx, func() { t.Error("canceled task ran") })
	}()
	time.Sleep(10 * time.Millisecond) // let SubmitCtx block on admission
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitCtx = %v, want context.Canceled", err)
	}
	close(gate)
	s.Wait()
	// The canceled submission must leave nothing behind: goroutine count
	// settles back to (at most) the pre-cancel level.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}

	// A SubmitCtx that is admitted runs normally.
	ran := make(chan struct{})
	if err := s.SubmitCtx(context.Background(), func() { close(ran) }); err != nil {
		t.Fatal(err)
	}
	<-ran
	s.Wait()
}

// Backpressure under cancellation at the fleet level: closing the Stop
// channel while the producer is blocked in admission drains the fleet —
// in-flight instances finish, no new ones are created, and the
// fleet.queue gauge returns to zero.
func TestRunFleetStopDrains(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, WithMetrics(reg))
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	if err := e.RegisterProgram("block", ProgramFunc(func(inv *Invocation) error {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(chainProcess("Block", "block", "ok", "ok")); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	resCh := make(chan *FleetResult, 1)
	go func() {
		res, err := e.RunFleet(FleetOptions{
			Process: "Block", N: 1000, Parallel: 2, Stop: stop,
		})
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()
	<-started // at least one instance is executing; producer is piling up
	close(stop)
	close(gate)
	res := <-resCh
	if !res.Stopped {
		t.Fatal("Stopped = false after drain")
	}
	if res.Launched >= 1000 {
		t.Fatalf("drain admitted the whole fleet (%d)", res.Launched)
	}
	if res.Launched != res.Finished+res.Failed {
		t.Fatalf("accounting broken: %+v", res)
	}
	snap := reg.Snapshot()
	if q := snap.Gauges["engine.fleet.queue.depth"]; q.Value != 0 {
		t.Fatalf("fleet.queue.depth = %+v, want 0 after drain", q)
	}
	if a := snap.Gauges["engine.fleet.active"]; a.Value != 0 {
		t.Fatalf("fleet.active = %+v, want 0 after drain", a)
	}
}

// Load shedding in RunFleet: rejected instances are counted (result,
// metric, event) and never created — no WAL records, no instance IDs.
func TestRunFleetShed(t *testing.T) {
	reg := obs.NewRegistry()
	bus := obs.NewBus()
	e := newTestEngine(t, WithMetrics(reg), WithBus(bus))
	var shedEvents atomic.Int64
	detach := bus.Attach(func(ev obs.Event) {
		if ev.Kind == obs.EvFleetShed {
			shedEvents.Add(1)
		}
	})
	defer detach()
	if err := e.RegisterProgram("slow", ProgramFunc(func(inv *Invocation) error {
		time.Sleep(2 * time.Millisecond)
		inv.Out.SetRC(0)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterProcess(chainProcess("Slow", "slow", "slow", "slow")); err != nil {
		t.Fatal(err)
	}
	const n = 40
	res, err := e.RunFleet(FleetOptions{
		Process: "Slow", N: n, Parallel: 1, MaxQueue: 0, Shed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("no instances shed at 0-queue admission with a slow program")
	}
	if res.Shed+res.Launched != n {
		t.Fatalf("accounting broken: shed %d + launched %d != %d", res.Shed, res.Launched, n)
	}
	if res.Failed != 0 {
		t.Fatalf("shed fleet failed instances: %+v", res)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["engine.fleet.shed"]; got != int64(res.Shed) {
		t.Fatalf("fleet.shed counter = %d, want %d", got, res.Shed)
	}
	if got := snap.Counters["engine.instances.created"]; got != int64(res.Launched) {
		t.Fatalf("created counter = %d, want %d (shed instances must not be created)", got, res.Launched)
	}
	if got := shedEvents.Load(); got != int64(res.Shed) {
		t.Fatalf("fleet.shed events = %d, want %d", got, res.Shed)
	}
}
