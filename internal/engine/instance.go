package engine

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/expr"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/org"
	"repro/internal/wal"
)

// State is the lifecycle state of an activity instance (§3.2). Finished is
// transient — the engine immediately evaluates the exit condition and moves
// the activity to Terminated or back to Ready — so it never rests in a
// stored state.
type State uint8

// The stored activity states.
const (
	StateWaiting State = iota // start condition not yet decided
	StateReady
	StateRunning
	StateTerminated
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateTerminated:
		return "terminated"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// scope is one executing graph: the root process, a block iteration or a
// subprocess invocation. Its path prefixes the paths of its activities.
type scope struct {
	inst      *Instance
	graph     *model.Graph
	types     *model.Types
	path      string // "" for root, "B#0", "B#0/S#1", ...
	input     *model.Container
	output    *model.Container
	acts      map[string]*actState
	owner     *actState // block/process activity owning this scope (nil for root)
	remaining int

	// Adjacency indexes over graph connectors, built once per scope so
	// navigation is O(V+E) instead of rescanning the connector lists for
	// every activity.
	incoming map[string][]*model.ControlConnector
	outgoing map[string][]*model.ControlConnector
	dataInto map[string][]*model.DataConnector // keyed by target endpoint
	dataOut  map[string][]*model.DataConnector // activity -> scope-sink connectors
}

// actState is the run-time state of one activity within a scope.
type actState struct {
	act    *model.Activity
	sc     *scope
	joined string // cached scope-qualified path (see path())
	state  State
	dead   bool
	iter   int
	connIn map[string]bool // resolved incoming connector values by source name
	output *model.Container
	workID int64
	forced bool // the current completion was forced by a user (no program ran)

	// Monotonic phase stamps for live latency attribution (obs.Now
	// nanoseconds): readyNs is when the activity last became ready, so
	// dispatch events carry the queue wait; progNs is the last program
	// invocation's wall time, carried on the finish event. progNs is
	// written by executeAttempts (a worker goroutine in concurrent mode)
	// and read by finishActivity after the completion channel
	// synchronizes the two.
	readyNs int64
	progNs  int64
}

// path returns the activity's scope-qualified path. The join is computed
// once and cached: path() is called on every navigation step (WAL record,
// trail event, bus publish), and re-concatenating would make each step
// allocate even when nothing is listening.
func (as *actState) path() string {
	if as.joined == "" {
		if as.sc.path == "" {
			as.joined = as.act.Name
		} else {
			as.joined = as.sc.path + "/" + as.act.Name
		}
	}
	return as.joined
}

// Instance is one execution of a process template. Instances are not safe
// for concurrent use; drive them from a single goroutine.
type Instance struct {
	eng  *Engine
	id   string
	proc *model.Process
	log  wal.Log

	root   *scope
	byPath map[string]*actState
	queue  []*actState
	trail  []Event

	// replay memoizes completed activity executions during recovery:
	// path -> iter -> output snapshot.
	replay map[string]map[int]map[string]expr.Value

	// stMu guards the status fields below for cross-goroutine monitors
	// (Engine.Instances, Err, Finished, PendingWork). All writes happen on
	// the navigator goroutine, which may therefore read them directly; any
	// other goroutine must go through the locked accessors.
	stMu          sync.Mutex
	started       bool
	done          bool
	err           error
	pendingManual int

	// Concurrent-mode state: when concurrency > 1, program bodies run on a
	// worker pool of that size and completions flow through the channel.
	// Navigation itself stays on one goroutine either way.
	concurrency int
	inflight    int
	completions chan completion
	pool        chan struct{}
}

func newInstance(e *Engine, id string, p *model.Process, input *model.Container, log wal.Log) *Instance {
	inst := &Instance{
		eng: e, id: id, proc: p, log: log,
		byPath:      make(map[string]*actState),
		concurrency: e.concurrency,
	}
	if inst.concurrency > 1 {
		inst.completions = make(chan completion, inst.concurrency)
		inst.pool = make(chan struct{}, inst.concurrency)
	}
	inst.root = inst.newScope(&p.Graph, p.Types, "", input, nil)
	return inst
}

func (inst *Instance) newScope(g *model.Graph, types *model.Types, path string, input *model.Container, owner *actState) *scope {
	sc := &scope{
		inst: inst, graph: g, types: types, path: path,
		input: input, owner: owner,
		acts:      make(map[string]*actState, len(g.Activities)),
		remaining: len(g.Activities),
	}
	sc.output = types.MustContainer(g.Out())
	for _, a := range g.Activities {
		as := &actState{act: a, sc: sc, connIn: make(map[string]bool)}
		sc.acts[a.Name] = as
		inst.byPath[as.path()] = as
	}
	sc.incoming = make(map[string][]*model.ControlConnector)
	sc.outgoing = make(map[string][]*model.ControlConnector)
	for _, c := range g.Control {
		sc.incoming[c.To] = append(sc.incoming[c.To], c)
		sc.outgoing[c.From] = append(sc.outgoing[c.From], c)
	}
	sc.dataInto = make(map[string][]*model.DataConnector)
	sc.dataOut = make(map[string][]*model.DataConnector)
	for _, d := range g.Data {
		sc.dataInto[d.To] = append(sc.dataInto[d.To], d)
		if d.To == model.ScopeRef {
			sc.dataOut[d.From] = append(sc.dataOut[d.From], d)
		}
	}
	return sc
}

// ID returns the instance identifier.
func (inst *Instance) ID() string { return inst.id }

// ProcessName returns the name of the instantiated template.
func (inst *Instance) ProcessName() string { return inst.proc.Name }

// Finished reports whether every activity has terminated and the process
// output is final. Safe for concurrent use.
func (inst *Instance) Finished() bool {
	inst.stMu.Lock()
	defer inst.stMu.Unlock()
	return inst.done
}

// Err returns the instance's failure, if any (including wal.ErrCrash when a
// crash was injected). For a program activity that failed fatally the error
// is an *ActivityFailure carrying the path, program, attempt count and
// cause. Safe for concurrent use.
func (inst *Instance) Err() error {
	inst.stMu.Lock()
	defer inst.stMu.Unlock()
	return inst.err
}

// Failure returns the activity failure that stopped the instance, or nil
// when the instance did not fail or failed for a non-activity reason (e.g.
// a WAL error). Safe for concurrent use.
func (inst *Instance) Failure() *ActivityFailure {
	var af *ActivityFailure
	if errors.As(inst.Err(), &af) {
		return af
	}
	return nil
}

// StatusInfo returns the monitoring status ("created", "running",
// "finished" or "failed") and, for failed instances, the recorded cause
// message. Safe for concurrent use.
func (inst *Instance) StatusInfo() (status, cause string) {
	inst.stMu.Lock()
	defer inst.stMu.Unlock()
	switch {
	case inst.err != nil:
		return "failed", inst.err.Error()
	case inst.done:
		return "finished", ""
	case inst.started:
		return "running", ""
	default:
		return "created", ""
	}
}

// Output returns a copy of the process output container; call it after
// Finished reports true.
func (inst *Instance) Output() *model.Container { return inst.root.output.Clone() }

// Trail returns the audit trail so far.
func (inst *Instance) Trail() []Event { return append([]Event(nil), inst.trail...) }

// PendingWork reports how many manual activities are waiting on worklists.
// Safe for concurrent use.
func (inst *Instance) PendingWork() int {
	inst.stMu.Lock()
	defer inst.stMu.Unlock()
	return inst.pendingManual
}

// ProgramRun summarizes one completed program-activity execution, in
// completion order — the observable history the transaction-model
// experiments assert on.
type ProgramRun struct {
	Path    string
	Program string
	Iter    int
	RC      int64
}

// ProgramRuns extracts the completed program executions from the trail.
func (inst *Instance) ProgramRuns() []ProgramRun {
	var out []ProgramRun
	for _, ev := range inst.trail {
		if ev.Kind == EvFinished && ev.Program != "" {
			out = append(out, ProgramRun{Path: ev.Path, Program: ev.Program, Iter: ev.Iter, RC: ev.RC})
		}
	}
	return out
}

// ActivityState reports the stored state of the activity at the given path.
func (inst *Instance) ActivityState(path string) (State, bool) {
	as, ok := inst.byPath[path]
	if !ok {
		return 0, false
	}
	return as.state, true
}

// ActivityInfo is a monitoring snapshot of one activity instance — the
// §3.3 monitoring capability ("activities ... are associated with users
// who can monitor their progress").
type ActivityInfo struct {
	Path string
	Kind model.ActivityKind
	// State is the stored state; Dead marks termination by dead path
	// elimination.
	State State
	Dead  bool
	Iter  int
	// Manual reports whether the activity starts from a worklist.
	Manual bool
}

// Activities returns a monitoring snapshot of every activity instance
// created so far (inner scopes appear once their block or subprocess has
// started), sorted by path.
func (inst *Instance) Activities() []ActivityInfo {
	out := make([]ActivityInfo, 0, len(inst.byPath))
	for path, as := range inst.byPath {
		out = append(out, ActivityInfo{
			Path: path, Kind: as.act.Kind, State: as.state, Dead: as.dead,
			Iter: as.iter, Manual: as.act.Start == model.StartManual,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Start begins navigation: the activities without incoming control
// connectors become ready and automatic activities execute until the
// instance finishes, fails, or only manual work remains.
func (inst *Instance) Start() error {
	if inst.started {
		return errors.New("engine: instance already started")
	}
	inst.markStarted()
	inst.appendLog(wal.Record{
		Type: wal.RecCreated, Instance: inst.id, Process: inst.proc.Name,
		Values: inst.root.input.Snapshot(),
	})
	inst.event(Event{Kind: EvCreated})
	if inst.err == nil {
		inst.startScope(inst.root)
		inst.pump()
	}
	return inst.err
}

// SelectWork lets a person select a posted work item belonging to this
// instance; the activity executes and navigation continues.
func (inst *Instance) SelectWork(person string, itemID int64) error {
	if inst.eng.worklists == nil {
		return errors.New("engine: no organization attached")
	}
	if inst.err != nil {
		return inst.err
	}
	// SelectFor verifies the item belongs to this instance *before*
	// claiming it, so a selection through the wrong instance handle leaves
	// the item on every worklist.
	item, err := inst.eng.worklists.SelectFor(person, itemID, inst.id)
	if err != nil {
		return err
	}
	as, ok := inst.byPath[item.Activity]
	if !ok || as.state != StateReady {
		return fmt.Errorf("engine: work item %d targets activity %q in state %v", itemID, item.Activity, as.state)
	}
	inst.addPending(-1)
	inst.event(Event{Kind: EvWorkSelected, Path: as.path(), Iter: as.iter})
	inst.enqueue(as)
	inst.pump()
	return inst.err
}

// ForceFinish completes a ready manual activity on a user's behalf without
// invoking its program — §3.3: "The user can stop an activity, restart it,
// force it to finish, and so forth, independently of the rest of the
// process." The work item is withdrawn from every worklist and the
// activity finishes with the given return code (its output container
// otherwise holds the declared defaults), after which navigation continues
// normally: transition conditions see the forced RC.
func (inst *Instance) ForceFinish(path string, rc int64) error {
	if inst.err != nil {
		return inst.err
	}
	as, ok := inst.byPath[path]
	if !ok {
		return fmt.Errorf("engine: no activity at %q", path)
	}
	if as.state != StateReady || as.act.Start != model.StartManual {
		return fmt.Errorf("engine: activity %q is not a ready manual activity", path)
	}
	if err := inst.eng.worklists.Withdraw(as.workID); err != nil {
		return err
	}
	inst.addPending(-1)
	inst.event(Event{Kind: EvForced, Path: path, Iter: as.iter, RC: rc})
	out, err := as.sc.types.NewContainer(as.act.Out())
	if err != nil {
		inst.fail(err)
		return inst.err
	}
	out.SetRC(rc)
	as.state = StateRunning
	as.forced = true
	inst.finishActivity(as, out)
	as.forced = false
	inst.pump()
	return inst.err
}

// Cancel terminates the process instance by user intervention: pending
// work items are withdrawn, queued automatic activities are dropped, every
// non-terminated activity is marked terminated, and the instance finishes
// with its current output container. Canceling a finished or failed
// instance is an error.
func (inst *Instance) Cancel() error {
	if inst.err != nil {
		return inst.err
	}
	if inst.done {
		return errors.New("engine: instance already finished")
	}
	if !inst.started {
		return errors.New("engine: instance not started")
	}
	inst.event(Event{Kind: EvCanceled})
	inst.eng.metrics.instCanceled.Inc()
	inst.eng.metrics.queueDepth.Add(-int64(len(inst.queue)))
	inst.queue = nil
	for _, as := range inst.byPath {
		if as.state == StateTerminated {
			continue
		}
		if as.state == StateReady && as.act.Start == model.StartManual && as.workID != 0 {
			if err := inst.eng.worklists.Withdraw(as.workID); err == nil {
				inst.addPending(-1)
			}
		}
		as.state = StateTerminated
		as.dead = true
	}
	inst.appendLog(wal.Record{
		Type: wal.RecDone, Instance: inst.id, Values: inst.root.output.Snapshot(),
	})
	if inst.err != nil {
		return inst.err
	}
	inst.markDone()
	inst.event(Event{Kind: EvDone})
	return nil
}

func (inst *Instance) fail(err error) {
	inst.stMu.Lock()
	first := inst.err == nil
	if first {
		inst.err = err
	}
	inst.stMu.Unlock()
	if first {
		inst.eng.metrics.instFailed.Inc()
	}
}

// failActivity records a fatal program-activity failure: the cause goes to
// the audit trail (EvFailed) and becomes the instance error, degrading the
// instance to the "failed" monitoring status. Navigation stops but the
// engine and its other instances are unaffected.
func (inst *Instance) failActivity(af *ActivityFailure) {
	inst.event(Event{Kind: EvFailed, Path: af.Path, Iter: af.Iter, Program: af.Program, Cause: af.Cause.Error()})
	inst.fail(af)
}

// markStarted / markDone / addPending update monitor-visible status under
// the status lock; they are only called from the navigator goroutine.
func (inst *Instance) markStarted() {
	inst.stMu.Lock()
	inst.started = true
	inst.stMu.Unlock()
}

func (inst *Instance) markDone() {
	inst.stMu.Lock()
	inst.done = true
	inst.stMu.Unlock()
}

func (inst *Instance) addPending(d int) {
	inst.stMu.Lock()
	inst.pendingManual += d
	inst.stMu.Unlock()
}

func (inst *Instance) appendLog(rec wal.Record) {
	if err := inst.log.Append(rec); err != nil {
		inst.fail(err)
		return
	}
	inst.eng.metrics.walAppends.Inc()
}

func (inst *Instance) event(ev Event) {
	ev.At = inst.eng.clock()
	inst.trail = append(inst.trail, ev)
	inst.publishTrail(ev)
	if inst.eng.trailObs != nil {
		inst.eng.trailObs(inst, ev)
	}
}

// compensationActivityName is the well-known name the Figure 2/4
// translations give the compensation block (internal/fmtm); dispatching
// a block by this name is the observable "compensation entered" moment.
const compensationActivityName = "Compensation"

// publishTrail mirrors the externally interesting audit-trail events
// onto the engine's real-time bus, enriched with the monotonic phase
// stamps that trail events (wall-clock seconds) cannot carry. It is a
// single atomic load when nothing is listening.
func (inst *Instance) publishTrail(ev Event) {
	bus := inst.eng.bus
	if !bus.Active() {
		return
	}
	switch ev.Kind {
	case EvCreated:
		bus.Publish(obs.Event{Kind: obs.EvInstanceStarted, Instance: inst.id})
	case EvStarted:
		var wait int64
		as := inst.byPath[ev.Path]
		if as != nil && as.readyNs > 0 {
			wait = obs.Now() - as.readyNs
		}
		bus.Publish(obs.Event{Kind: obs.EvActivityDispatch, Instance: inst.id,
			Path: ev.Path, Iter: ev.Iter, Program: ev.Program, DurNs: wait})
		if as != nil && as.act.Kind == model.KindBlock && as.act.Name == compensationActivityName {
			bus.Publish(obs.Event{Kind: obs.EvCompensation, Instance: inst.id, Path: ev.Path, Iter: ev.Iter})
		}
	case EvFinished:
		var dur int64
		if as := inst.byPath[ev.Path]; as != nil {
			dur = as.progNs
		}
		bus.Publish(obs.Event{Kind: obs.EvActivityFinished, Instance: inst.id,
			Path: ev.Path, Iter: ev.Iter, Program: ev.Program, RC: ev.RC, DurNs: dur})
	case EvLooped:
		bus.Publish(obs.Event{Kind: obs.EvActivityLoop, Instance: inst.id, Path: ev.Path, Iter: ev.Iter})
	case EvDeadPath:
		bus.Publish(obs.Event{Kind: obs.EvActivityDeadPath, Instance: inst.id, Path: ev.Path, Iter: ev.Iter})
	case EvFailed:
		bus.Publish(obs.Event{Kind: obs.EvInstanceFailed, Instance: inst.id,
			Path: ev.Path, Iter: ev.Iter, Program: ev.Program, Cause: ev.Cause})
	case EvDone:
		bus.Publish(obs.Event{Kind: obs.EvInstanceFinished, Instance: inst.id})
	case EvCanceled:
		bus.Publish(obs.Event{Kind: obs.EvInstanceCanceled, Instance: inst.id})
	}
}

func (inst *Instance) enqueue(as *actState) {
	inst.queue = append(inst.queue, as)
	inst.eng.metrics.queueDepth.Add(1)
}

// completion carries a finished asynchronous program invocation back to
// the navigator goroutine.
type completion struct {
	as  *actState
	out *model.Container
	err error
}

// pump drives navigation. Everything except program bodies runs on the
// calling (navigator) goroutine; in concurrent mode program bodies execute
// on a bounded worker pool and their completions are folded back in here,
// so navigation state needs no locking.
func (inst *Instance) pump() {
	for {
		for inst.err == nil && len(inst.queue) > 0 {
			as := inst.queue[0]
			inst.queue = inst.queue[1:]
			inst.eng.metrics.queueDepth.Add(-1)
			if as.state != StateReady {
				continue // stale entry (e.g. scope was reset)
			}
			inst.eng.metrics.navSteps.Inc()
			inst.runActivity(as)
		}
		if inst.inflight == 0 {
			return
		}
		// Queue drained (or the instance failed) with programs in flight:
		// wait for the next completion. On failure we still drain so no
		// goroutine leaks.
		c := <-inst.completions
		inst.inflight--
		inst.eng.metrics.inflight.Add(-1)
		if inst.err != nil {
			continue
		}
		if c.err != nil {
			var af *ActivityFailure
			if errors.As(c.err, &af) {
				inst.failActivity(af)
			} else {
				inst.fail(c.err)
			}
			continue
		}
		inst.finishActivity(c.as, c.out)
	}
}

func (inst *Instance) startScope(sc *scope) {
	if sc.remaining == 0 {
		inst.scopeDone(sc)
		return
	}
	for _, a := range sc.graph.Starts() {
		inst.setReady(sc.acts[a.Name])
		if inst.err != nil {
			return
		}
	}
}

func (inst *Instance) setReady(as *actState) {
	as.state = StateReady
	as.readyNs = obs.Now()
	inst.event(Event{Kind: EvReady, Path: as.path(), Iter: as.iter})
	if as.act.Start == model.StartManual {
		inst.postWork(as)
		return
	}
	inst.enqueue(as)
}

func (inst *Instance) postWork(as *actState) {
	if inst.eng.worklists == nil {
		inst.fail(fmt.Errorf("engine: manual activity %q requires an organization", as.path()))
		return
	}
	item, err := inst.eng.worklists.Post(org.WorkItem{
		Activity: as.path(), Instance: inst.id,
		ReadyAt:     inst.eng.clock(),
		NotifyAfter: as.act.NotifySeconds, NotifyRole: as.act.NotifyRole,
	}, as.act.Staff.Role, as.act.Staff.Person)
	if err != nil {
		inst.fail(err)
		return
	}
	as.workID = item.ID
	inst.addPending(1)
	inst.event(Event{Kind: EvWorkPosted, Path: as.path(), Iter: as.iter})
}

func (inst *Instance) runActivity(as *actState) {
	as.state = StateRunning
	path := as.path()
	inst.event(Event{Kind: EvStarted, Path: path, Iter: as.iter, Program: as.act.Program})

	switch as.act.Kind {
	case model.KindProgram:
		// Recovery path: a logged completion replaces the program
		// invocation. Blocks and subprocesses always re-navigate (their
		// member completions replay individually), so a recovered run
		// produces the identical audit trail.
		if vals := inst.replayHit(path, as.iter); vals != nil {
			out := as.sc.types.MustContainer(as.act.Out())
			if err := out.Restore(vals); err != nil {
				inst.fail(err)
				return
			}
			inst.finishActivity(as, out)
			return
		}
		inst.runProgram(as)
	case model.KindBlock:
		in := inst.buildInput(as)
		if inst.err != nil {
			return
		}
		inner := inst.newScope(as.act.Block, as.sc.types, childPath(as, as.iter), in, as)
		inst.startScope(inner)
	case model.KindProcess:
		inst.runSubprocess(as)
	default:
		inst.fail(fmt.Errorf("engine: activity %q has invalid kind", path))
	}
}

func childPath(as *actState, iter int) string {
	return fmt.Sprintf("%s#%d", as.path(), iter)
}

func (inst *Instance) runProgram(as *actState) {
	prog := inst.eng.Program(as.act.Program)
	if prog == nil {
		inst.fail(fmt.Errorf("engine: program %q not registered", as.act.Program))
		return
	}
	in := inst.buildInput(as)
	if inst.err != nil {
		return
	}
	inst.appendLog(wal.Record{
		Type: wal.RecStartedActivity, Instance: inst.id, Path: as.path(), Iter: as.iter,
	})
	if inst.err != nil {
		return
	}
	if inst.concurrency > 1 {
		// Concurrent mode: run the program body on the worker pool; the
		// completion is folded back into navigation by pump. The attempt
		// loop only touches state that is immutable while the activity
		// runs, so it is safe on the worker goroutine.
		inst.inflight++
		inst.eng.metrics.inflight.Add(1)
		pool := inst.pool
		go func() {
			pool <- struct{}{}
			out, err := inst.executeAttempts(prog, as, in)
			<-pool
			inst.completions <- completion{as: as, out: out, err: err}
		}()
		return
	}
	final, err := inst.executeAttempts(prog, as, in)
	if err != nil {
		var af *ActivityFailure
		if errors.As(err, &af) {
			inst.failActivity(af)
		} else {
			inst.fail(err)
		}
		return
	}
	inst.finishActivity(as, final)
}

// executeAttempts drives the fault-tolerant invocation of one program
// activity: each attempt runs with panic isolation and the activity's
// optional deadline against a fresh output container (a failed attempt
// must not leak partial output into the next one); transient errors are
// retried under the activity's RetryPolicy with exponential backoff, and
// the final error is an *ActivityFailure recording the cause. It is called
// on the navigator goroutine in sequential mode and on a worker goroutine
// in concurrent mode — everything it touches is immutable while the
// activity is running.
func (inst *Instance) executeAttempts(prog Program, as *actState, in *model.Container) (*model.Container, error) {
	m := inst.eng.metrics
	budget := as.act.Retry.Attempts()
	br := inst.eng.breakerFor(as.act.Program)
	var lastErr error
	attempts := 0
	start := time.Now()
	for attempt := 1; attempt <= budget; attempt++ {
		out, err := as.sc.types.NewContainer(as.act.Out())
		if err != nil {
			return nil, err // infrastructure failure, not a program fault
		}
		inv := &Invocation{
			InstanceID: inst.id, Path: as.path(), Iter: as.iter,
			In: in, Out: out, Attempt: attempt,
		}
		attempts = attempt
		if attempt > 1 {
			m.retries.Inc()
		}
		blocked := false
		if br != nil {
			if berr := br.Allow(); berr != nil {
				// Fail fast without invoking: the breaker has seen this
				// program failing at a rate where another call is wasted
				// work. Transient, so backoff + a later attempt (or the
				// half-open probe) still gets a chance.
				blocked = true
				lastErr = Transient(berr)
			}
		}
		if !blocked {
			if err := invokeGuarded(prog, inv, as.act.DeadlineMS); err == nil {
				if br != nil {
					br.Record(false)
				}
				if rb := inst.eng.retryBudget; rb != nil {
					rb.Deposit()
					inst.eng.recordRetryBudgetGauge()
				}
				m.invocations.Inc()
				if out.RC() == 0 {
					m.committed.Inc()
				} else {
					m.aborted.Inc()
				}
				as.progNs = time.Since(start).Nanoseconds()
				m.programNs.Observe(as.progNs)
				return out, nil
			} else {
				lastErr = err
				if br != nil {
					br.Record(true)
				}
			}
			var pe *PanicError
			if errors.As(lastErr, &pe) {
				m.panics.Inc()
				if bus := inst.eng.bus; bus.Active() {
					bus.Publish(obs.Event{Kind: obs.EvActivityPanic, Instance: inst.id,
						Path: as.path(), Iter: as.iter, Program: as.act.Program,
						N: int64(attempt), Cause: lastErr.Error()})
				}
			}
		}
		if !IsTransient(lastErr) || attempt == budget {
			break
		}
		if rb := inst.eng.retryBudget; rb != nil {
			if !rb.Withdraw() {
				// Budget exhausted: forgo the retry so correlated failures
				// cannot multiply into a retry storm; the activity fails
				// with the last error.
				inst.publishRetryExhausted(as.path(), as.act.Program, attempt)
				break
			}
			inst.eng.recordRetryBudgetGauge()
		}
		var backoff time.Duration
		if rp := as.act.Retry; rp != nil && rp.BackoffMS > 0 {
			backoff = time.Duration(rp.BackoffMS<<(attempt-1)) * time.Millisecond
			m.backoffNs.Observe(backoff.Nanoseconds())
		}
		if bus := inst.eng.bus; bus.Active() {
			bus.Publish(obs.Event{Kind: obs.EvActivityRetry, Instance: inst.id,
				Path: as.path(), Iter: as.iter, Program: as.act.Program,
				N: int64(attempt), DurNs: backoff.Nanoseconds(), Cause: lastErr.Error()})
		}
		if backoff > 0 {
			inst.eng.sleep(backoff)
		}
	}
	m.invocations.Inc()
	m.progFailed.Inc()
	as.progNs = time.Since(start).Nanoseconds()
	m.programNs.Observe(as.progNs)
	return nil, &ActivityFailure{
		Path: as.path(), Program: as.act.Program, Iter: as.iter,
		Attempts: attempts, Cause: lastErr,
	}
}

// invokeGuarded runs one invocation attempt with panic isolation and an
// optional wall-clock deadline. A panic inside the program becomes a
// *PanicError (fatal); a missed deadline becomes ErrDeadlineExceeded
// (transient). When the deadline fires, the runaway invocation keeps
// executing on its abandoned goroutine against an output container the
// engine will never read again — the documented cost of preempting
// programs that cannot be cancelled.
func invokeGuarded(prog Program, inv *Invocation, deadlineMS int64) error {
	if deadlineMS <= 0 {
		return runIsolated(prog, inv)
	}
	done := make(chan error, 1)
	go func() { done <- runIsolated(prog, inv) }()
	timer := time.NewTimer(time.Duration(deadlineMS) * time.Millisecond)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return ErrDeadlineExceeded
	}
}

// runIsolated confines a program panic to the invocation that caused it.
func runIsolated(prog Program, inv *Invocation) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return prog.Run(inv)
}

func (inst *Instance) runSubprocess(as *actState) {
	tpl, ok := inst.eng.Process(as.act.Subprocess)
	if !ok {
		inst.fail(fmt.Errorf("engine: subprocess %q not registered", as.act.Subprocess))
		return
	}
	in := inst.buildInput(as)
	if inst.err != nil {
		return
	}
	subIn, err := tpl.Types.NewContainer(tpl.In())
	if err != nil {
		inst.fail(err)
		return
	}
	copyCommon(subIn, in)
	inner := inst.newScope(&tpl.Graph, tpl.Types, childPath(as, as.iter), subIn, as)
	inst.startScope(inner)
}

// copyCommon copies members present in both containers with compatible
// kinds; the bridge between a process activity's containers and the
// subprocess's own type registry.
func copyCommon(dst, src *model.Container) {
	for k, v := range src.Snapshot() {
		if _, ok := dst.Get(k); ok {
			_ = dst.Set(k, v) // incompatible kinds are skipped by design
		}
	}
}

// buildInput materializes an activity's input container by pulling the
// data connectors that target it: scope input and the stored outputs of
// terminated source activities. Connectors from activities that never ran
// (dead paths) contribute nothing — the target sees declared defaults.
func (inst *Instance) buildInput(as *actState) *model.Container {
	in, err := as.sc.types.NewContainer(as.act.In())
	if err != nil {
		inst.fail(err)
		return nil
	}
	for _, d := range as.sc.dataInto[as.act.Name] {
		var src *model.Container
		if d.From == model.ScopeRef {
			src = as.sc.input
		} else if srcAs := as.sc.acts[d.From]; srcAs != nil {
			src = srcAs.output // nil when dead or not yet run
		}
		if src == nil {
			continue
		}
		for _, m := range d.Maps {
			if err := in.CopyFrom(src, m.FromPath, m.ToPath); err != nil {
				inst.fail(err)
				return nil
			}
		}
	}
	return in
}

// finishActivity handles the transient finished state: log the completion,
// evaluate the exit condition, loop or terminate.
func (inst *Instance) finishActivity(as *actState, out *model.Container) {
	path := as.path()
	inst.appendLog(wal.Record{
		Type: wal.RecFinishedActivity, Instance: inst.id, Path: path, Iter: as.iter,
		Values: out.Snapshot(),
	})
	if inst.err != nil {
		return
	}
	program := as.act.Program
	if as.forced {
		program = "" // forced completions are not program executions
	}
	inst.event(Event{Kind: EvFinished, Path: path, Iter: as.iter, Program: program, RC: out.RC()})

	if as.act.Exit != nil {
		ok, err := expr.EvalBool(as.act.Exit, out)
		if err != nil {
			inst.fail(err)
			return
		}
		if !ok {
			// §3.2: "If false, the activity is rescheduled for execution."
			inst.eng.metrics.loops.Inc()
			inst.event(Event{Kind: EvLooped, Path: path, Iter: as.iter})
			as.iter++
			inst.setReady(as)
			return
		}
	}
	inst.terminateActivity(as, out, false)
}

// terminateActivity moves the activity to terminated, propagates connector
// truth values (false for dead activities — dead path elimination) and
// completes the scope when it was the last one.
func (inst *Instance) terminateActivity(as *actState, out *model.Container, dead bool) {
	as.state = StateTerminated
	as.dead = dead
	as.output = out
	if dead {
		inst.eng.metrics.deadPaths.Inc()
		inst.event(Event{Kind: EvDeadPath, Path: as.path(), Iter: as.iter})
	} else {
		inst.event(Event{Kind: EvTerminated, Path: as.path(), Iter: as.iter})
		inst.applyScopeOutput(as, out)
		if inst.err != nil {
			return
		}
	}
	for _, c := range as.sc.outgoing[as.act.Name] {
		val := false
		if !dead {
			if c.Condition == nil {
				val = true
			} else {
				v, err := expr.EvalBool(c.Condition, out)
				if err != nil {
					inst.fail(err)
					return
				}
				val = v
			}
		}
		inst.event(Event{Kind: EvConnector, From: joinScoped(as.sc.path, c.From), To: joinScoped(as.sc.path, c.To), Value: val})
		tgt := as.sc.acts[c.To]
		tgt.connIn[as.act.Name] = val
		inst.checkStart(tgt)
		if inst.err != nil {
			return
		}
	}
	as.sc.remaining--
	if as.sc.remaining == 0 {
		inst.scopeDone(as.sc)
	}
}

func joinScoped(scopePath, name string) string {
	if scopePath == "" {
		return name
	}
	return scopePath + "/" + name
}

// applyScopeOutput pushes the activity's outputs into the scope output
// container along data connectors targeting the scope sink.
func (inst *Instance) applyScopeOutput(as *actState, out *model.Container) {
	for _, d := range as.sc.dataOut[as.act.Name] {
		for _, m := range d.Maps {
			if err := as.sc.output.CopyFrom(out, m.FromPath, m.ToPath); err != nil {
				inst.fail(err)
				return
			}
		}
	}
}

// checkStart applies the start condition once every incoming control
// connector has a truth value: AND needs all true, OR needs at least one.
// A false start condition triggers dead path elimination.
func (inst *Instance) checkStart(as *actState) {
	if as.state != StateWaiting {
		return
	}
	incoming := as.sc.incoming[as.act.Name]
	if len(as.connIn) < len(incoming) {
		return // §3.2: wait until all incoming connectors are evaluated
	}
	anyTrue, allTrue := false, true
	for _, c := range incoming {
		if as.connIn[c.From] {
			anyTrue = true
		} else {
			allTrue = false
		}
	}
	start := allTrue
	if as.act.Join == model.JoinOr {
		start = anyTrue
	}
	if start {
		inst.setReady(as)
		return
	}
	// Dead path elimination: the activity will never execute; it is marked
	// terminated and its outgoing connectors evaluate to false.
	inst.terminateActivity(as, nil, true)
}

// scopeDone fires when every activity of a scope has terminated: the root
// scope completes the instance; a block or subprocess scope completes its
// owning activity.
func (inst *Instance) scopeDone(sc *scope) {
	if sc.owner == nil {
		inst.appendLog(wal.Record{
			Type: wal.RecDone, Instance: inst.id, Values: sc.output.Snapshot(),
		})
		if inst.err != nil {
			return
		}
		inst.markDone()
		inst.eng.metrics.instFinished.Inc()
		inst.event(Event{Kind: EvDone})
		return
	}
	owner := sc.owner
	if owner.act.Kind == model.KindProcess {
		// Bridge the subprocess output back into the owner's container.
		out, err := owner.sc.types.NewContainer(owner.act.Out())
		if err != nil {
			inst.fail(err)
			return
		}
		copyCommon(out, sc.output)
		inst.finishActivity(owner, out)
		return
	}
	inst.finishActivity(owner, sc.output)
}

func (inst *Instance) replayHit(path string, iter int) map[string]expr.Value {
	if inst.replay == nil {
		return nil
	}
	byIter, ok := inst.replay[path]
	if !ok {
		return nil
	}
	return byIter[iter]
}
